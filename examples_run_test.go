package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes each example binary end to end — the
// examples are user-facing documentation, so they must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four binaries")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{"CONSTANTS(WORK)", "(identical, as it must be)"}},
		{"./examples/loopbounds", []string{"trip count 510", "runtime test"}},
		{"./examples/cloning", []string{"SOLVE_1", "verified identical"}},
		{"./examples/subscripts", []string{"3 linear, 1 nonlinear"}},
	}
	for _, c := range cases {
		out, err := exec.Command("go", "run", c.dir).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.dir, err, out)
		}
		for _, want := range c.want {
			if !strings.Contains(string(out), want) {
				t.Errorf("%s: output missing %q:\n%s", c.dir, want, out)
			}
		}
	}
}
