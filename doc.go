// Package repro reproduces "Interprocedural Constant Propagation"
// (Callahan, Cooper, Kennedy, Torczon; SIGPLAN 1986) together with the
// empirical study of its jump function implementations (Grove, Torczon;
// PLDI 1993).
//
// The public API lives in repro/ipcp; the command-line tools are
// cmd/ipcp (the analyzer), cmd/ipcp-tables (regenerates the paper's
// tables and figure), and cmd/f77gen (workload generation). See
// README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record.
package repro
