GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check bench bench-go bench-check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-fuzz the two native targets; both are seeded from
# internal/core/testdata/*.f and must stay crash-free.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) ./ipcp

# The full gate: what CI (and a pre-commit run) should pass. race runs
# the whole suite under the race detector, including the parallel
# pipeline tests (ipcp.TestParallelMatchesSerial and friends).
check: vet build race fuzz

# Write the benchmark baseline: ns/op, allocs/op, and MB/s per exhibit
# plus the serial-vs-parallel sweep speedup, as BENCH_ipcp.json.
bench:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json

# The raw Go benchmarks (per-exhibit and parallelism sweeps).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the baseline and gate on the sweep speedup. The gate is
# skipped automatically on machines with fewer than 4 CPUs.
bench-check:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json -min-speedup 2

clean:
	$(GO) clean -testcache
