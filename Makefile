GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-fuzz the two native targets; both are seeded from
# internal/core/testdata/*.f and must stay crash-free.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) ./ipcp

# The full gate: what CI (and a pre-commit run) should pass.
check: vet build race fuzz

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean -testcache
