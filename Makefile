GO ?= go
FUZZTIME ?= 10s
SOAK_DURATION ?= 30s
SOAK_CLIENTS ?= 12
SOAK_KILLS ?= 12

.PHONY: all build vet test race fuzz check bench bench-go bench-check bench-smoke bench-ablation trace serve coord soak soak-cluster soak-jobs clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-fuzz the native targets: FuzzDomainLaws throws arbitrary
# element vectors at every registered abstract domain's lattice laws
# (meet commutativity/associativity/idempotence, ⊤/⊥ identities,
# widening descent); the analysis fuzzers are seeded from
# internal/core/testdata/*.f (FuzzSessionDelta additionally checks that
# any session edit sequence matches a cold analysis of the final text);
# the job-manifest fuzzer is seeded with handwritten batch JSON. All
# must stay crash-free.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDomainLaws -fuzztime=$(FUZZTIME) ./internal/domain
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) ./ipcp
	$(GO) test -run='^$$' -fuzz=FuzzSessionDelta -fuzztime=$(FUZZTIME) ./ipcp
	$(GO) test -run='^$$' -fuzz=FuzzJobManifest -fuzztime=$(FUZZTIME) ./internal/serve

# The full gate: what CI (and a pre-commit run) should pass. race runs
# the whole suite under the race detector, including the parallel
# pipeline tests (ipcp.TestParallelMatchesSerial and friends).
check: vet build race fuzz

# Write the benchmark baseline: ns/op, allocs/op, and MB/s per exhibit
# plus the serial-vs-parallel sweep speedup, as BENCH_ipcp.json.
bench:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json

# The raw Go benchmarks (per-exhibit and parallelism sweeps).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the baseline and gate it three ways: the parallel sweep
# speedup (skipped below 4 CPUs), the incremental-analysis warm/cold
# ratios, and allocations per op against the committed baseline (fails
# if table2/analyze-serial allocs grow more than 10%).
bench-check:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json.new -min-speedup 2 -baseline BENCH_ipcp.json
	mv BENCH_ipcp.json.new BENCH_ipcp.json

# Only the solver ablation: worklist vs binding-graph propagation per
# jump-function kind, with jf_evals_per_op (the paper's §3.1.5 cost
# unit) reported alongside ns/op and allocs/op.
bench-ablation:
	$(GO) test -run='^$$' -bench=BenchmarkPropagationSolvers -benchmem .

# A fast CI smoke of the benchmark harness: few iterations, same
# exhibits and gates minus the timing-sensitive ones.
bench-smoke:
	$(GO) run ./cmd/ipcp-bench -quick -out /tmp/bench-smoke.json -baseline BENCH_ipcp.json

# Print one representative analysis's per-phase trace as JSON: the
# machine-readable counterpart of `ipcp -trace` (CI validates this
# document's schema; see docs/architecture.md for the phase table).
trace:
	$(GO) run ./cmd/ipcp-bench -trace

# Run the crash-only analysis service on :8077 (see docs/robustness.md
# for the endpoint and tuning reference).
serve:
	$(GO) run ./cmd/ipcp-serve

# Chaos soak: hammer a live server with $(SOAK_CLIENTS) concurrent
# clients for $(SOAK_DURATION) while faults cycle through every pipeline
# phase. Passes only if the server never exits, answers every request
# with well-formed JSON from the documented status set, trips and
# recovers its circuit breaker, and drains back to the baseline
# goroutine count.
soak:
	IPCP_SOAK_DURATION=$(SOAK_DURATION) IPCP_SOAK_CLIENTS=$(SOAK_CLIENTS) \
		$(GO) test -count=1 -run TestChaosSoak -v ./internal/serve

# Run the sharded coordinator on :8076 against three local backends
# started by hand (see docs/robustness.md for the multi-node runbook).
coord:
	$(GO) run ./cmd/ipcp-coord -backends 127.0.0.1:8077,127.0.0.1:8078,127.0.0.1:8079

# Multi-node chaos soak: three real backends behind the coordinator,
# one hard-killed and restarted at a time while probabilistic analyzer
# faults fire, under the race detector. Passes only if every 200 is
# byte-identical to the single-node reference, availability over valid
# programs stays >= 99%, reroutes and hedges both engaged, and the
# whole fleet drains back to the baseline goroutine count.
soak-cluster:
	IPCP_SOAK_DURATION=$(SOAK_DURATION) IPCP_SOAK_CLIENTS=$(SOAK_CLIENTS) \
		$(GO) test -count=1 -race -run TestClusterChaosSoak -v ./internal/cluster

# Durable-queue crash soak: one acknowledged batch, $(SOAK_KILLS)
# hard-kill/reboot cycles on the same WAL directory while it executes,
# under the race detector. Passes only if every acked job reaches a
# terminal state, every completed result is byte-identical to the
# synchronous single-shot reference, and the poison pills quarantine
# instead of retrying forever.
soak-jobs:
	IPCP_JOBS_SOAK_KILLS=$(SOAK_KILLS) \
		$(GO) test -count=1 -race -run TestJobsCrashSoak -v ./internal/serve

clean:
	$(GO) clean -testcache
