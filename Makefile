GO ?= go
FUZZTIME ?= 10s
SOAK_DURATION ?= 30s
SOAK_CLIENTS ?= 12

.PHONY: all build vet test race fuzz check bench bench-go bench-check serve soak clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-fuzz the two native targets; both are seeded from
# internal/core/testdata/*.f and must stay crash-free.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) ./ipcp

# The full gate: what CI (and a pre-commit run) should pass. race runs
# the whole suite under the race detector, including the parallel
# pipeline tests (ipcp.TestParallelMatchesSerial and friends).
check: vet build race fuzz

# Write the benchmark baseline: ns/op, allocs/op, and MB/s per exhibit
# plus the serial-vs-parallel sweep speedup, as BENCH_ipcp.json.
bench:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json

# The raw Go benchmarks (per-exhibit and parallelism sweeps).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the baseline and gate on the sweep speedup. The gate is
# skipped automatically on machines with fewer than 4 CPUs.
bench-check:
	$(GO) run ./cmd/ipcp-bench -out BENCH_ipcp.json -min-speedup 2

# Run the crash-only analysis service on :8077 (see docs/robustness.md
# for the endpoint and tuning reference).
serve:
	$(GO) run ./cmd/ipcp-serve

# Chaos soak: hammer a live server with $(SOAK_CLIENTS) concurrent
# clients for $(SOAK_DURATION) while faults cycle through every pipeline
# phase. Passes only if the server never exits, answers every request
# with well-formed JSON from the documented status set, trips and
# recovers its circuit breaker, and drains back to the baseline
# goroutine count.
soak:
	IPCP_SOAK_DURATION=$(SOAK_DURATION) IPCP_SOAK_CLIENTS=$(SOAK_CLIENTS) \
		$(GO) test -count=1 -run TestChaosSoak -v ./internal/serve

clean:
	$(GO) clean -testcache
