package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// The full measurement run takes tens of seconds (each exhibit runs
// under the benchmark harness for about a second), so the unit tests
// cover the argument handling and the baseline document shape; `make
// bench` exercises the real run.

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-no-such-flag"}, &out, &errb); got != 1 {
		t.Fatalf("status = %d, want 1", got)
	}
	if !strings.Contains(errb.String(), "no-such-flag") {
		t.Fatalf("stderr %q does not mention the bad flag", errb.String())
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"extra"}, &out, &errb); got != 1 {
		t.Fatalf("status = %d, want 1", got)
	}
	if !strings.Contains(errb.String(), "unexpected argument") {
		t.Fatalf("stderr %q does not flag the argument", errb.String())
	}
}

func TestBaselineRoundTrips(t *testing.T) {
	base := Baseline{
		GoVersion:  "go1.24.0",
		GoMaxProcs: 4,
		CPUs:       4,
		Exhibits: []Exhibit{
			{Name: "figure1/meet", Iterations: 100, NsPerOp: 12.5, AllocsPerOp: 0},
			{Name: "table2/analyze-serial", Iterations: 10, NsPerOp: 1e6, AllocsPerOp: 900, BytesPerOp: 4096, MBPerSec: 3.2},
		},
		Sweep: Sweep{Workers: 4, SerialNs: 4e9, ParallelNs: 1e9, Speedup: 4},
	}
	blob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var got Baseline
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Sweep.Speedup != 4 || len(got.Exhibits) != 2 || got.Exhibits[1].MBPerSec != 3.2 {
		t.Fatalf("round trip mangled the document: %+v", got)
	}
	if got.CPUs != 4 {
		t.Fatalf("CPUs did not round trip: %+v", got)
	}
}

// TestSingleCPUSweepNote pins the honesty contract for single-CPU
// baselines: a sweep that was not re-measured must say so and claim
// exactly 1.0, never a noise-derived speedup.
func TestSingleCPUSweepNote(t *testing.T) {
	s := Sweep{Workers: 1, SerialNs: 1e9, ParallelNs: 1e9, Speedup: 1,
		Note: "single CPU: the parallel sweep resolves to the serial path; not re-measured"}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Sweep
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Note == "" || got.Speedup != 1 || got.SerialNs != got.ParallelNs {
		t.Fatalf("single-CPU sweep document mangled: %+v", got)
	}
}
