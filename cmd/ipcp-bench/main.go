// Command ipcp-bench measures the analysis pipeline and writes a
// machine-readable baseline, BENCH_ipcp.json, so regressions show up as
// a diff rather than a feeling. It records ns/op, allocs/op, and (for
// byte-oriented phases) MB/s per exhibit, plus the wall-clock time of
// the full Table 2 sweep run serially and in parallel and the resulting
// speedup.
//
// Usage:
//
//	ipcp-bench                      # write BENCH_ipcp.json in the cwd
//	ipcp-bench -out path.json
//	ipcp-bench -min-speedup 2      # also gate on sweep speedup (needs >= 4 CPUs)
//	ipcp-bench -baseline BENCH_ipcp.json  # fail on >10% alloc regression
//	ipcp-bench -quick               # short iterations for CI smoke runs
//	ipcp-bench -trace               # print one analysis's per-phase trace as JSON and exit
//
// Gates:
//
//   - With 4 or more CPUs the parallel sweep must beat the serial one
//     (speedup > 1.0), always; -min-speedup raises that floor. Below 4
//     CPUs the gate is skipped with a notice: on a one- or two-core
//     machine the parallel sweep cannot be expected to win, and the
//     paper's determinism guarantee (identical output at every
//     parallelism) is what the tests enforce instead.
//   - With -baseline, the allocs/op of table2/analyze-serial must not
//     grow more than 10% over the committed baseline.
//   - The incremental-analysis exhibits must show their designed wins
//     (warm-identical >= 5x over cold, warm-one-edit >= 2x, and the
//     session delta edit >= 4x over warm-one-edit); skipped under
//     -quick, whose short runs are too noisy to gate on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/report"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/suite"
	"repro/ipcp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exhibit is one benchmark's measurement.
type Exhibit struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// JFEvalsPerOp is the jump-function evaluation count of one
	// iteration — the paper's propagation cost unit. Set on the solver
	// and configuration ablation exhibits, where it is deterministic
	// (measured once, not averaged).
	JFEvalsPerOp float64 `json:"jf_evals_per_op,omitempty"`
	// SubstPerOp is the substitutable-use count of one analysis — the
	// paper's effectiveness metric. Set on the configuration ablation
	// exhibits, where the point is how MOD information or a tightened
	// expression budget moves effectiveness, not just cost.
	SubstPerOp float64 `json:"subst_per_op,omitempty"`
	// FactsPerOp is the number of entry facts an abstract domain proved
	// (formals plus globals, all procedures). Set on the domain/*
	// exhibits.
	FactsPerOp float64 `json:"facts_per_op,omitempty"`
}

// Sweep records the serial-vs-parallel Table 2 sweep comparison.
// Workers is the resolved worker count the parallel sweep actually ran
// with (Parallelism 0 resolves to one worker per CPU), so a baseline
// taken on a small machine cannot masquerade as a parallelism result.
type Sweep struct {
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Note explains measurements that were elided rather than taken: on
	// a single-CPU machine the "parallel" sweep resolves to the serial
	// code path, so re-measuring it records scheduler noise as a bogus
	// speedup (or slowdown); the baseline pins 1.0 instead.
	Note string `json:"note,omitempty"`
}

// Baseline is the BENCH_ipcp.json document.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	CPUs       int       `json:"cpus"`
	Exhibits   []Exhibit `json:"exhibits"`
	Sweep      Sweep     `json:"sweep"`
}

func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "ipcp-bench: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("ipcp-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "BENCH_ipcp.json", "where to write the baseline ('-' for stdout)")
		minSpeedup = fs.Float64("min-speedup", 0, "fail unless the parallel sweep is at least this much faster (0 = no gate; skipped below 4 CPUs)")
		baseline   = fs.String("baseline", "", "committed baseline JSON to gate allocation regressions against")
		quickFlag  = fs.Bool("quick", false, "short fixed-iteration runs for CI smoke tests (no perf gates)")
		traceFlag  = fs.Bool("trace", false, "print one analysis's per-phase trace as JSON and exit (no benchmarks)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ipcp-bench: unexpected argument %q\n", fs.Arg(0))
		return 1
	}
	quick = *quickFlag
	if *traceFlag {
		return traceMode(stdout, stderr)
	}

	base, err := measure(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := stdout.Write(blob); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d exhibits, sweep speedup %.2fx on %d workers)\n",
			*out, len(base.Exhibits), base.Sweep.Speedup, base.Sweep.Workers)
	}

	// Speedup gate: with enough cores the parallel sweep must actually
	// win (floor 1.0), and -min-speedup raises the bar from there. The
	// floor applies even without -min-speedup, so a parallelism
	// regression cannot hide behind a forgotten flag.
	floor := 1.0
	if *minSpeedup > floor {
		floor = *minSpeedup
	}
	if base.GoMaxProcs < 4 {
		fmt.Fprintf(stdout, "speedup gate skipped: GOMAXPROCS=%d < 4\n", base.GoMaxProcs)
	} else if base.Sweep.Speedup < floor {
		fmt.Fprintf(stderr, "ipcp-bench: sweep speedup %.2fx below required %.2fx\n",
			base.Sweep.Speedup, floor)
		return 1
	} else {
		fmt.Fprintf(stdout, "speedup gate passed: %.2fx >= %.2fx\n", base.Sweep.Speedup, floor)
	}

	if *baseline != "" {
		if err := gateAllocs(stdout, *baseline, base); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
	}
	if !quick {
		if err := gateMemo(stdout, base); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
	}
	return 0
}

// TraceDoc is the -trace output: one representative analysis's
// per-phase statistics, the machine-readable counterpart of `ipcp
// -trace` (and the document CI's schema check validates).
type TraceDoc struct {
	Program string           `json:"program"`
	Config  string           `json:"config"`
	Phases  []ipcp.PhaseStat `json:"phases"`
}

// traceMode analyzes the Table 2 program once at the benchmark's serial
// configuration and writes its phase trace as JSON.
func traceMode(stdout, stderr io.Writer) int {
	spec, ok := suite.ByName("spec77")
	if !ok {
		fmt.Fprintln(stderr, "ipcp-bench: no suite program spec77")
		return 1
	}
	cfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	res, err := ipcp.Analyze("spec77.f", suite.Source(spec), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}
	doc := TraceDoc{Program: "spec77", Config: "polynomial", Phases: res.PhaseStats}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}
	if _, err := stdout.Write(append(blob, '\n')); err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}
	return 0
}

// findExhibit returns the named exhibit, or nil.
func findExhibit(b *Baseline, name string) *Exhibit {
	for i := range b.Exhibits {
		if b.Exhibits[i].Name == name {
			return &b.Exhibits[i]
		}
	}
	return nil
}

// gateAllocs fails when the hot analysis path allocates more than 10%
// over the committed baseline, or — in full (non-quick) runs, whose
// counts come from the testing harness rather than noisy MemStats
// deltas — when it exceeds the absolute post-arena ceiling. ns/op is
// too machine-dependent to gate in CI; allocation counts are
// deterministic enough to hold the line.
func gateAllocs(stdout io.Writer, path string, cur *Baseline) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("alloc gate: %w", err)
	}
	var committed Baseline
	if err := json.Unmarshal(blob, &committed); err != nil {
		return fmt.Errorf("alloc gate: parse %s: %w", path, err)
	}
	const name = "table2/analyze-serial"
	// absCap is the arena-era ceiling: the flat-IR pipeline analyzes the
	// Table 2 program in ~35k allocations, so crossing 50k means a
	// structural regression (a map or pointer-tree crept back into a hot
	// path), not drift.
	const absCap = 50000
	was, now := findExhibit(&committed, name), findExhibit(cur, name)
	if was == nil || was.AllocsPerOp == 0 {
		return fmt.Errorf("alloc gate: %s has no %s allocs baseline", path, name)
	}
	if now == nil {
		return fmt.Errorf("alloc gate: current run has no %s exhibit", name)
	}
	limit := was.AllocsPerOp + was.AllocsPerOp/10
	if now.AllocsPerOp > limit {
		return fmt.Errorf("alloc gate: %s allocs/op %d exceeds baseline %d by more than 10%%",
			name, now.AllocsPerOp, was.AllocsPerOp)
	}
	if !quick && now.AllocsPerOp >= absCap {
		return fmt.Errorf("alloc gate: %s allocs/op %d exceeds absolute cap %d",
			name, now.AllocsPerOp, absCap)
	}
	fmt.Fprintf(stdout, "alloc gate passed: %s %d allocs/op (baseline %d, limit %d, cap %d)\n",
		name, now.AllocsPerOp, was.AllocsPerOp, limit, absCap)
	return nil
}

// gateMemo asserts the incremental-analysis exhibits deliver their
// designed wins: a warm identical re-analysis at least 5x cheaper than
// a cold one, re-analysis after one edited unit at least 2x, and a
// session delta edit of the same one-unit change at least 4x cheaper
// again than the cache-keyed warm-one-edit path — the session's whole
// reason to exist is closing the warm-one-edit/warm-identical gap.
// (The delta floor was 5x when warm-one-edit spent more of its budget
// in propagation; the domain-generic evaluator's monomorphic transfer
// functions sped the solve phase, which warm-one-edit runs over the
// whole program and a delta edit barely touches, so the ratio
// compressed even as both absolute times improved.)
func gateMemo(stdout io.Writer, base *Baseline) error {
	cold := findExhibit(base, "memo/cold")
	warm := findExhibit(base, "memo/warm-identical")
	edit := findExhibit(base, "memo/warm-one-edit")
	delta := findExhibit(base, "memo/warm-one-edit-delta")
	if cold == nil || warm == nil || edit == nil || delta == nil {
		return fmt.Errorf("memo gate: exhibits missing")
	}
	if warm.NsPerOp <= 0 || edit.NsPerOp <= 0 || delta.NsPerOp <= 0 {
		return fmt.Errorf("memo gate: degenerate timings")
	}
	warmX := cold.NsPerOp / warm.NsPerOp
	editX := cold.NsPerOp / edit.NsPerOp
	deltaX := edit.NsPerOp / delta.NsPerOp
	if warmX < 5 {
		return fmt.Errorf("memo gate: warm-identical only %.2fx faster than cold (need >= 5x)", warmX)
	}
	if editX < 2 {
		return fmt.Errorf("memo gate: warm-one-edit only %.2fx faster than cold (need >= 2x)", editX)
	}
	if deltaX < 4 {
		return fmt.Errorf("memo gate: warm-one-edit-delta only %.2fx faster than warm-one-edit (need >= 4x)", deltaX)
	}
	fmt.Fprintf(stdout, "memo gate passed: warm-identical %.1fx, warm-one-edit %.1fx over cold, delta edit %.1fx over warm-one-edit\n",
		warmX, editX, deltaX)
	return nil
}

// quick selects short fixed-iteration runs (CI smoke mode) over the
// full testing.Benchmark calibration.
var quick bool

// bench runs one benchmark body — "do the work n times, or fail" — and
// converts the measurement into an Exhibit. bytes, when non-zero, is
// the input size an iteration processes, and yields MB/s.
func bench(name string, bytes int64, f func(n int) error) Exhibit {
	if quick {
		return quickBench(name, bytes, f)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if bytes > 0 {
			b.SetBytes(bytes)
		}
		if err := f(b.N); err != nil {
			b.Fatal(err)
		}
	})
	e := Exhibit{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if bytes > 0 && r.T > 0 {
		e.MBPerSec = float64(bytes*int64(r.N)) / 1e6 / r.T.Seconds()
	}
	return e
}

// quickBench is bench without the harness: one warm-up iteration, then
// a short timed run with manual allocation accounting. The numbers are
// noisy — quick mode exists to prove the harness runs end to end in CI,
// not to gate performance.
func quickBench(name string, bytes int64, f func(n int) error) Exhibit {
	const n = 3
	if err := f(1); err != nil {
		panic(fmt.Sprintf("%s: %v", name, err))
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := f(n); err != nil {
		panic(fmt.Sprintf("%s: %v", name, err))
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	e := Exhibit{
		Name:        name,
		Iterations:  n,
		NsPerOp:     float64(dur.Nanoseconds()) / n,
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}
	if bytes > 0 && dur > 0 {
		e.MBPerSec = float64(bytes*n) / 1e6 / dur.Seconds()
	}
	return e
}

// analyzeExhibit measures the whole public pipeline (parse, sem, jump
// functions, propagation) on one suite program at a given parallelism.
func analyzeExhibit(name, progName string, cfg ipcp.Config) (Exhibit, error) {
	spec, ok := suite.ByName(progName)
	if !ok {
		return Exhibit{}, fmt.Errorf("no suite program %s", progName)
	}
	src := suite.Source(spec)
	if _, err := ipcp.Analyze(progName+".f", src, cfg); err != nil {
		return Exhibit{}, err
	}
	return bench(name, int64(len(src)), func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := ipcp.Analyze(progName+".f", src, cfg); err != nil {
				return err
			}
		}
		return nil
	}), nil
}

// editUnit returns src with one novel statement inserted into its last
// program unit — a distinct program each call, sharing every other
// unit's text with the original. This is the "developer edited one
// subroutine and re-analyzed" scenario, with a fresh constant per call
// so no previous analysis of the edited text can be a whole-result hit.
func editUnit(src string, seq int) string {
	i := strings.LastIndex(src, "\nEND")
	if i < 0 {
		return src
	}
	return fmt.Sprintf("%s\nNQZED = %d%s", src[:i], 1000+seq, src[i:])
}

// memoExhibits measures the incremental-analysis cache on the Table 2
// program: a cold analysis populating a fresh cache each iteration, a
// warm re-analysis of identical source against a primed cache, and a
// warm re-analysis after an edit to one unit.
func memoExhibits() ([]Exhibit, error) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		return nil, fmt.Errorf("no suite program spec77")
	}
	src := suite.Source(spec)
	cfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	analyze := func(text string, cache *ipcp.Cache) error {
		c := cfg
		c.Cache = cache
		_, err := ipcp.Analyze("spec77.f", text, c)
		return err
	}

	var out []Exhibit
	out = append(out, bench("memo/cold", int64(len(src)), func(n int) error {
		for i := 0; i < n; i++ {
			if err := analyze(src, ipcp.NewCache(ipcp.CacheOptions{})); err != nil {
				return err
			}
		}
		return nil
	}))

	warmCache := ipcp.NewCache(ipcp.CacheOptions{})
	if err := analyze(src, warmCache); err != nil {
		return nil, err
	}
	out = append(out, bench("memo/warm-identical", int64(len(src)), func(n int) error {
		for i := 0; i < n; i++ {
			if err := analyze(src, warmCache); err != nil {
				return err
			}
		}
		return nil
	}))

	editCache := ipcp.NewCache(ipcp.CacheOptions{MaxBytes: 256 << 20})
	if err := analyze(src, editCache); err != nil {
		return nil, err
	}
	seq := 0
	out = append(out, bench("memo/warm-one-edit", int64(len(src)), func(n int) error {
		for i := 0; i < n; i++ {
			seq++
			if err := analyze(editUnit(src, seq), editCache); err != nil {
				return err
			}
		}
		return nil
	}))
	return out, nil
}

// sessionExhibits measures the compiler-daemon session path.
//
// memo/warm-one-edit-delta is the same scenario as memo/warm-one-edit —
// one novel statement in spec77's last unit, re-analyzed — expressed as
// a delta edit against a resident session instead of a whole-text
// re-submission against the SHA-keyed cache: no re-splitting, no
// re-hashing, re-parse of exactly one unit, artifact invalidation
// limited to the edited unit's transitive callers, and value-context
// replay for the procedures propagation revisits with unchanged
// incoming tuples.
//
// session/edit-blast-radius-{1,n} ablate the invalidation itself on a
// synthetic linear call chain MAIN -> C1 -> … -> Cdepth: an edit to
// MAIN (no callers) invalidates one unit, an edit to the deepest
// callee invalidates the entire transitive-caller chain. The spread
// between the two is what blast-radius invalidation buys over
// rebuild-everything.
func sessionExhibits() ([]Exhibit, error) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		return nil, fmt.Errorf("no suite program spec77")
	}
	src := suite.Source(spec)
	cfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	ctx := context.Background()

	s, err := ipcp.OpenSession(ctx, "spec77.f", src, cfg)
	if err != nil {
		return nil, fmt.Errorf("session open: %w", err)
	}
	chunks, ok := memo.Split("spec77.f", src)
	if !ok || len(chunks) != s.NumUnits() {
		return nil, fmt.Errorf("spec77 split: %d chunks vs %d session units", len(chunks), s.NumUnits())
	}
	last := len(chunks) - 1
	seq := 0
	deltaEdit := func() error {
		seq++
		info, err := s.Edit(ctx, []ipcp.UnitEdit{{Op: "replace", Index: last, Text: editUnit(chunks[last].Text, seq)}})
		if err != nil {
			return err
		}
		if !info.FastPath {
			return fmt.Errorf("session edit fell off the fast path")
		}
		return nil
	}
	if err := deltaEdit(); err != nil {
		return nil, fmt.Errorf("memo/warm-one-edit-delta: %w", err)
	}
	var out []Exhibit
	out = append(out, bench("memo/warm-one-edit-delta", int64(len(src)), func(n int) error {
		for i := 0; i < n; i++ {
			if err := deltaEdit(); err != nil {
				return err
			}
		}
		return nil
	}))

	const depth = 16
	var b strings.Builder
	mainText := func(k int) string {
		return fmt.Sprintf("PROGRAM MAIN\nINTEGER K\nK = %d\nCALL C1(K, 2)\nEND\n\n", k)
	}
	leafText := func(extra int) string {
		return fmt.Sprintf("SUBROUTINE C%d(A, B)\nINTEGER A, B\nPRINT *, A + B + %d\nEND\n", depth, extra)
	}
	b.WriteString(mainText(1000))
	for i := 1; i < depth; i++ {
		fmt.Fprintf(&b, "SUBROUTINE C%d(A, B)\nINTEGER A, B\nCALL C%d(A + 1, B)\nEND\n\n", i, i+1)
	}
	b.WriteString(leafText(0))
	chain, err := ipcp.OpenSession(ctx, "chain.f", b.String(), cfg)
	if err != nil {
		return nil, fmt.Errorf("chain session open: %w", err)
	}
	blastEdit := func(name string, index int, text func(int) string, wantBlast int) func() error {
		return func() error {
			seq++
			info, err := chain.Edit(ctx, []ipcp.UnitEdit{{Op: "replace", Index: index, Text: text(seq)}})
			if err != nil {
				return err
			}
			if !info.FastPath || info.UnitsInvalidated != wantBlast {
				return fmt.Errorf("%s: fast=%t blast=%d (want fast, blast %d)", name, info.FastPath, info.UnitsInvalidated, wantBlast)
			}
			return nil
		}
	}
	srcLen := int64(b.Len())
	for _, bx := range []struct {
		name string
		edit func() error
	}{
		{"session/edit-blast-radius-1", blastEdit("blast-1", 0, mainText, 1)},
		{"session/edit-blast-radius-n", blastEdit("blast-n", depth, leafText, depth+1)},
	} {
		if err := bx.edit(); err != nil {
			return nil, fmt.Errorf("%s: %w", bx.name, err)
		}
		edit := bx.edit
		out = append(out, bench(bx.name, srcLen, func(n int) error {
			for i := 0; i < n; i++ {
				if err := edit(); err != nil {
					return err
				}
			}
			return nil
		}))
	}
	return out, nil
}

// solverExhibits measures the §4 solver ablation: propagation re-run
// over prebuilt jump functions (Analysis.RunSolver), worklist vs
// binding graph, for each forward jump-function kind the comparison is
// meaningful for. The jump-function evaluation count of one solve is
// deterministic, so it is measured once and recorded as
// jf_evals_per_op rather than averaged out of the timed loop.
func solverExhibits() ([]Exhibit, error) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		return nil, fmt.Errorf("no suite program spec77")
	}
	var diags source.ErrorList
	f := parser.ParseSource("spec77.f", suite.Source(spec), &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("spec77: %s", diags.Error())
	}

	solvers := []struct {
		slug string
		kind core.SolverKind
	}{
		{"worklist", core.SolverWorklist},
		{"binding", core.SolverBinding},
	}
	var out []Exhibit
	for _, kind := range []jump.Kind{jump.Literal, jump.PassThrough, jump.Polynomial} {
		c := core.Config{
			Jump:        jump.Config{Kind: kind, UseMOD: true, UseReturnJFs: true},
			Parallelism: 1,
		}
		a := core.AnalyzeProgram(prog, c)
		for _, s := range solvers {
			_, evals, err := a.RunSolver(s.kind)
			if err != nil {
				return nil, fmt.Errorf("solver/%s-%s: %w", s.slug, kind, err)
			}
			e := bench(fmt.Sprintf("solver/%s-%s", s.slug, kind), 0, func(n int) error {
				for i := 0; i < n; i++ {
					if _, _, err := a.RunSolver(s.kind); err != nil {
						return err
					}
				}
				return nil
			})
			e.JFEvalsPerOp = float64(evals)
			out = append(out, e)
		}
	}
	return out, nil
}

// measureOnce runs f exactly once with allocation accounting. The
// configuration-ablation exhibits use it: their payload is the
// deterministic effect sizes (jump-function evaluations, substitutable
// uses), and a single run per (program, configuration) cell keeps the
// full ablation sweep affordable. The timing is correspondingly noisy —
// a breadth record, not a perf gate.
func measureOnce(name string, f func() (*ipcp.Result, error)) (Exhibit, *ipcp.Result) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := f()
	dur := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", name, err))
	}
	runtime.ReadMemStats(&m1)
	return Exhibit{
		Name:        name,
		Iterations:  1,
		NsPerOp:     float64(dur.Nanoseconds()),
		AllocsPerOp: int64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  int64(m1.TotalAlloc - m0.TotalAlloc),
	}, res
}

// domainExhibits measures the non-constant abstract domains end to end
// on the Table 2 program — the same pipeline as table2/analyze-serial
// with only Config.Domain changed, so the per-domain transfer cost is
// directly comparable. facts_per_op records how much each domain
// proves.
func domainExhibits() ([]Exhibit, error) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		return nil, fmt.Errorf("no suite program spec77")
	}
	src := suite.Source(spec)
	var out []Exhibit
	for _, dom := range []string{"interval", "parity", "taint", "cond-const"} {
		cfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1, Domain: dom}
		res, err := ipcp.Analyze("spec77.f", src, cfg)
		if err != nil {
			return nil, fmt.Errorf("domain/%s: %w", dom, err)
		}
		facts := 0
		for _, fs := range res.Facts() {
			facts += len(fs)
		}
		e := bench("domain/"+dom, int64(len(src)), func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := ipcp.Analyze("spec77.f", src, cfg); err != nil {
					return err
				}
			}
			return nil
		})
		e.FactsPerOp = float64(facts)
		out = append(out, e)
	}
	return out, nil
}

// ablationExhibits sweeps two configuration axes over every suite
// program: interprocedural MOD information on/off, and the
// jump-function expression-size budget at 8 and 4 nodes (the suite's
// polynomial jump functions top out under 8 nodes, so 8 shows the
// budget costing nothing and 4 shows where truncation starts buying
// evaluations at the price of substitutions). Each
// cell is one deterministic analysis (see measureOnce) recording the
// paper's cost unit (jf_evals_per_op) and effectiveness metric
// (subst_per_op), so the baseline diff shows what each axis buys on
// each program.
func ablationExhibits() ([]Exhibit, error) {
	base := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	cells := []struct {
		slug string
		cfg  func() ipcp.Config
	}{
		{"mod-on", func() ipcp.Config { return base }},
		{"mod-off", func() ipcp.Config { c := base; c.UseMOD = false; return c }},
		{"exprsize-8", func() ipcp.Config { c := base; c.Budget.MaxJFExprSize = 8; return c }},
		{"exprsize-4", func() ipcp.Config { c := base; c.Budget.MaxJFExprSize = 4; return c }},
	}
	var out []Exhibit
	for _, spec := range suite.Programs() {
		src := suite.Source(spec)
		for _, cell := range cells {
			name := fmt.Sprintf("ablation/%s/%s", cell.slug, spec.Name)
			cfg := cell.cfg()
			e, res := measureOnce(name, func() (*ipcp.Result, error) {
				return ipcp.Analyze(spec.Name+".f", src, cfg)
			})
			evals, _, _ := res.Stats()
			e.JFEvalsPerOp = float64(evals)
			e.SubstPerOp = float64(res.SubstitutionCount())
			out = append(out, e)
		}
	}
	return out, nil
}

// sweepOnce times one full uncached Table 2 sweep.
func sweepOnce(parallelism int) (time.Duration, error) {
	start := time.Now()
	if _, err := report.ComputeTable2With(parallelism); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// sweepBest returns the faster of two sweep runs, damping scheduler and
// GC noise without inflating the harness runtime (quick mode runs just
// one).
func sweepBest(parallelism int) (time.Duration, error) {
	best, err := sweepOnce(parallelism)
	if err != nil {
		return 0, err
	}
	if quick {
		return best, nil
	}
	again, err := sweepOnce(parallelism)
	if err != nil {
		return 0, err
	}
	if again < best {
		best = again
	}
	return best, nil
}

func measure(stderr io.Writer) (*Baseline, error) {
	base := &Baseline{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}

	// Figure 1: lattice meets — the solver's innermost operation.
	base.Exhibits = append(base.Exhibits, bench("figure1/meet", 0, func(n int) error {
		vals := []lattice.Value{
			lattice.TopValue(), lattice.BottomValue(),
			lattice.ConstValue(1), lattice.ConstValue(2), lattice.ConstValue(-7),
		}
		for i := 0; i < n; i++ {
			v := lattice.TopValue()
			for _, w := range vals {
				v = lattice.Meet(v, w)
			}
			if !v.IsBottom() {
				return fmt.Errorf("meet chain should bottom out")
			}
		}
		return nil
	}))

	// Table 1: suite synthesis and characterization throughput.
	specs := suite.Programs()
	var totalBytes int64
	for _, spec := range specs {
		totalBytes += int64(len(suite.Source(spec)))
	}
	base.Exhibits = append(base.Exhibits, bench("table1/characterize", totalBytes, func(n int) error {
		for i := 0; i < n; i++ {
			for _, spec := range specs {
				src := suite.Source(spec)
				if suite.Characterize(spec.Name, src).Procs == 0 {
					return fmt.Errorf("empty characterization")
				}
			}
		}
		return nil
	}))

	// Tables 2/3: the full pipeline on a representative large program,
	// serially and with the per-procedure worker pool.
	serialCfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	measurements := []struct {
		name string
		cfg  ipcp.Config
	}{
		{"table2/analyze-serial", serialCfg},
	}
	// Parallelism 0 resolves to one worker per CPU; with a single CPU
	// that is the serial path again, and a duplicate exhibit would just
	// be noise with a misleading name.
	if base.GoMaxProcs > 1 {
		parallelCfg := serialCfg
		parallelCfg.Parallelism = 0
		measurements = append(measurements, struct {
			name string
			cfg  ipcp.Config
		}{"table2/analyze-parallel", parallelCfg})
	} else {
		fmt.Fprintf(stderr, "ipcp-bench: GOMAXPROCS=1: skipping table2/analyze-parallel (identical to serial path)\n")
	}
	for _, m := range measurements {
		e, err := analyzeExhibit(m.name, "spec77", m.cfg)
		if err != nil {
			return nil, err
		}
		base.Exhibits = append(base.Exhibits, e)
	}
	completeCfg := serialCfg
	completeCfg.Complete = true
	e, err := analyzeExhibit("table3/complete", "matrix300", completeCfg)
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, e)

	// Incremental analysis: cold vs warm re-analysis through the cache.
	memos, err := memoExhibits()
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, memos...)

	// Compiler-daemon sessions: the delta-edit counterpart of the memo
	// exhibits, plus the blast-radius ablation.
	sessions, err := sessionExhibits()
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, sessions...)

	// §4 solver ablation: worklist vs binding graph per jump-function
	// kind, over prebuilt jump functions.
	solvers, err := solverExhibits()
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, solvers...)

	// Abstract domains: the monotone framework's non-constant
	// instances through the same pipeline as table2/analyze-serial.
	domains, err := domainExhibits()
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, domains...)

	// Configuration ablation: MOD on/off and the expression-size
	// budget, one deterministic cell per suite program.
	ablations, err := ablationExhibits()
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, ablations...)

	// The sweep comparison: all (program, configuration) cells of
	// Table 2, serial vs one worker per CPU.
	base.Sweep.Workers = base.GoMaxProcs
	serial, err := sweepBest(1)
	if err != nil {
		return nil, err
	}
	base.Sweep.SerialNs = serial.Nanoseconds()
	if base.GoMaxProcs <= 1 {
		base.Sweep.ParallelNs = serial.Nanoseconds()
		base.Sweep.Speedup = 1.0
		base.Sweep.Note = "single CPU: the parallel sweep resolves to the serial path; not re-measured"
		fmt.Fprintf(stderr, "ipcp-bench: GOMAXPROCS=1: %s\n", base.Sweep.Note)
		return base, nil
	}
	parallel, err := sweepBest(0)
	if err != nil {
		return nil, err
	}
	base.Sweep.ParallelNs = parallel.Nanoseconds()
	if parallel > 0 {
		base.Sweep.Speedup = float64(serial) / float64(parallel)
	}
	return base, nil
}
