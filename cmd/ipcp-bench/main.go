// Command ipcp-bench measures the analysis pipeline and writes a
// machine-readable baseline, BENCH_ipcp.json, so regressions show up as
// a diff rather than a feeling. It records ns/op, allocs/op, and (for
// byte-oriented phases) MB/s per exhibit, plus the wall-clock time of
// the full Table 2 sweep run serially and in parallel and the resulting
// speedup.
//
// Usage:
//
//	ipcp-bench                      # write BENCH_ipcp.json in the cwd
//	ipcp-bench -out path.json
//	ipcp-bench -min-speedup 2      # also gate on sweep speedup (needs >= 4 CPUs)
//
// The speedup gate is skipped with a notice when GOMAXPROCS < 4: on a
// one- or two-core machine the parallel sweep cannot be expected to win,
// and the paper's determinism guarantee (identical output at every
// parallelism) is what the tests enforce instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/report"
	"repro/internal/suite"
	"repro/ipcp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exhibit is one benchmark's measurement.
type Exhibit struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Sweep records the serial-vs-parallel Table 2 sweep comparison.
// Workers is the resolved worker count the parallel sweep actually ran
// with (Parallelism 0 resolves to one worker per CPU), so a baseline
// taken on a small machine cannot masquerade as a parallelism result.
type Sweep struct {
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Note explains measurements that were elided rather than taken: on
	// a single-CPU machine the "parallel" sweep resolves to the serial
	// code path, so re-measuring it records scheduler noise as a bogus
	// speedup (or slowdown); the baseline pins 1.0 instead.
	Note string `json:"note,omitempty"`
}

// Baseline is the BENCH_ipcp.json document.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	CPUs       int       `json:"cpus"`
	Exhibits   []Exhibit `json:"exhibits"`
	Sweep      Sweep     `json:"sweep"`
}

func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "ipcp-bench: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("ipcp-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "BENCH_ipcp.json", "where to write the baseline ('-' for stdout)")
		minSpeedup = fs.Float64("min-speedup", 0, "fail unless the parallel sweep is at least this much faster (0 = no gate; skipped below 4 CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ipcp-bench: unexpected argument %q\n", fs.Arg(0))
		return 1
	}

	base, err := measure(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "ipcp-bench:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := stdout.Write(blob); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(stderr, "ipcp-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d exhibits, sweep speedup %.2fx on %d workers)\n",
			*out, len(base.Exhibits), base.Sweep.Speedup, base.Sweep.Workers)
	}

	if *minSpeedup > 0 {
		if base.GoMaxProcs < 4 {
			fmt.Fprintf(stdout, "speedup gate skipped: GOMAXPROCS=%d < 4\n", base.GoMaxProcs)
		} else if base.Sweep.Speedup < *minSpeedup {
			fmt.Fprintf(stderr, "ipcp-bench: sweep speedup %.2fx below required %.2fx\n",
				base.Sweep.Speedup, *minSpeedup)
			return 1
		} else {
			fmt.Fprintf(stdout, "speedup gate passed: %.2fx >= %.2fx\n", base.Sweep.Speedup, *minSpeedup)
		}
	}
	return 0
}

// bench runs one benchmark function under the testing harness and
// converts its result into an Exhibit. bytes, when non-zero, is the
// input size an iteration processes, and yields MB/s.
func bench(name string, bytes int64, f func(b *testing.B)) Exhibit {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if bytes > 0 {
			b.SetBytes(bytes)
		}
		f(b)
	})
	e := Exhibit{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if bytes > 0 && r.T > 0 {
		e.MBPerSec = float64(bytes*int64(r.N)) / 1e6 / r.T.Seconds()
	}
	return e
}

// analyzeExhibit measures the whole public pipeline (parse, sem, jump
// functions, propagation) on one suite program at a given parallelism.
func analyzeExhibit(name, progName string, cfg ipcp.Config) (Exhibit, error) {
	spec, ok := suite.ByName(progName)
	if !ok {
		return Exhibit{}, fmt.Errorf("no suite program %s", progName)
	}
	src := suite.Source(spec)
	if _, err := ipcp.Analyze(progName+".f", src, cfg); err != nil {
		return Exhibit{}, err
	}
	return bench(name, int64(len(src)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ipcp.Analyze(progName+".f", src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// sweepOnce times one full uncached Table 2 sweep.
func sweepOnce(parallelism int) (time.Duration, error) {
	start := time.Now()
	if _, err := report.ComputeTable2With(parallelism); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// sweepBest returns the faster of two sweep runs, damping scheduler and
// GC noise without inflating the harness runtime.
func sweepBest(parallelism int) (time.Duration, error) {
	best, err := sweepOnce(parallelism)
	if err != nil {
		return 0, err
	}
	again, err := sweepOnce(parallelism)
	if err != nil {
		return 0, err
	}
	if again < best {
		best = again
	}
	return best, nil
}

func measure(stderr io.Writer) (*Baseline, error) {
	base := &Baseline{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}

	// Figure 1: lattice meets — the solver's innermost operation.
	base.Exhibits = append(base.Exhibits, bench("figure1/meet", 0, func(b *testing.B) {
		vals := []lattice.Value{
			lattice.TopValue(), lattice.BottomValue(),
			lattice.ConstValue(1), lattice.ConstValue(2), lattice.ConstValue(-7),
		}
		for i := 0; i < b.N; i++ {
			v := lattice.TopValue()
			for _, w := range vals {
				v = lattice.Meet(v, w)
			}
			if !v.IsBottom() {
				b.Fatal("meet chain should bottom out")
			}
		}
	}))

	// Table 1: suite synthesis and characterization throughput.
	specs := suite.Programs()
	var totalBytes int64
	for _, spec := range specs {
		totalBytes += int64(len(suite.Source(spec)))
	}
	base.Exhibits = append(base.Exhibits, bench("table1/characterize", totalBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				src := suite.Source(spec)
				if suite.Characterize(spec.Name, src).Procs == 0 {
					b.Fatal("empty characterization")
				}
			}
		}
	}))

	// Tables 2/3: the full pipeline on a representative large program,
	// serially and with the per-procedure worker pool.
	serialCfg := ipcp.Config{Kind: ipcp.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	measurements := []struct {
		name string
		cfg  ipcp.Config
	}{
		{"table2/analyze-serial", serialCfg},
	}
	// Parallelism 0 resolves to one worker per CPU; with a single CPU
	// that is the serial path again, and a duplicate exhibit would just
	// be noise with a misleading name.
	if base.GoMaxProcs > 1 {
		parallelCfg := serialCfg
		parallelCfg.Parallelism = 0
		measurements = append(measurements, struct {
			name string
			cfg  ipcp.Config
		}{"table2/analyze-parallel", parallelCfg})
	} else {
		fmt.Fprintf(stderr, "ipcp-bench: GOMAXPROCS=1: skipping table2/analyze-parallel (identical to serial path)\n")
	}
	for _, m := range measurements {
		e, err := analyzeExhibit(m.name, "spec77", m.cfg)
		if err != nil {
			return nil, err
		}
		base.Exhibits = append(base.Exhibits, e)
	}
	completeCfg := serialCfg
	completeCfg.Complete = true
	e, err := analyzeExhibit("table3/complete", "matrix300", completeCfg)
	if err != nil {
		return nil, err
	}
	base.Exhibits = append(base.Exhibits, e)

	// The sweep comparison: all (program, configuration) cells of
	// Table 2, serial vs one worker per CPU.
	base.Sweep.Workers = base.GoMaxProcs
	serial, err := sweepBest(1)
	if err != nil {
		return nil, err
	}
	base.Sweep.SerialNs = serial.Nanoseconds()
	if base.GoMaxProcs <= 1 {
		base.Sweep.ParallelNs = serial.Nanoseconds()
		base.Sweep.Speedup = 1.0
		base.Sweep.Note = "single CPU: the parallel sweep resolves to the serial path; not re-measured"
		fmt.Fprintf(stderr, "ipcp-bench: GOMAXPROCS=1: %s\n", base.Sweep.Note)
		return base, nil
	}
	parallel, err := sweepBest(0)
	if err != nil {
		return nil, err
	}
	base.Sweep.ParallelNs = parallel.Nanoseconds()
	if parallel > 0 {
		base.Sweep.Speedup = float64(serial) / float64(parallel)
	}
	return base, nil
}
