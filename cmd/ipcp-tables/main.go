// Command ipcp-tables regenerates the paper's exhibits — Figure 1 and
// Tables 1–3 — over the synthesized benchmark suite.
//
// Usage:
//
//	ipcp-tables             # everything
//	ipcp-tables -figure1
//	ipcp-tables -table1 -table3
//	ipcp-tables -dump ocean # print a suite program's source
//
// Every failure exits with status 1 and a one-line diagnostic; the
// command never prints a stack trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive
// every error path in-process. It never panics: internal faults are
// reported as a one-line diagnostic and exit status 1.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "ipcp-tables: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("ipcp-tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig1     = fs.Bool("figure1", false, "print Figure 1 (the lattice)")
		t1       = fs.Bool("table1", false, "print Table 1 (program characteristics)")
		t2       = fs.Bool("table2", false, "print Table 2 (jump function comparison)")
		t3       = fs.Bool("table3", false, "print Table 3 (technique comparison)")
		dump     = fs.String("dump", "", "print the synthesized source of one suite program")
		check    = fs.Bool("check", false, "verify the paper's qualitative claims against fresh tables")
		csv      = fs.String("csv", "", "emit a table as CSV: table2|table3")
		parallel = fs.Int("parallel", 0, "sweep worker goroutines (0 = one per CPU, 1 = serial; tables are identical)")
	)
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the one-line diagnostic and usage.
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ipcp-tables: unexpected argument %q\n", fs.Arg(0))
		return 1
	}

	if *dump != "" {
		spec, ok := suite.ByName(*dump)
		if !ok {
			fmt.Fprintf(stderr, "ipcp-tables: unknown program %q (have %v)\n", *dump, suite.Names())
			return 1
		}
		fmt.Fprint(stdout, suite.Source(spec))
		return 0
	}

	if *check {
		if err := report.Check(stdout); err != nil {
			fmt.Fprintln(stderr, "ipcp-tables:", err)
			return 1
		}
		return 0
	}
	if *csv != "" {
		var err error
		switch *csv {
		case "table2":
			err = report.Table2CSV(stdout)
		case "table3":
			err = report.Table3CSV(stdout)
		default:
			err = fmt.Errorf("unknown -csv table %q", *csv)
		}
		if err != nil {
			fmt.Fprintln(stderr, "ipcp-tables:", err)
			return 1
		}
		return 0
	}

	any := *fig1 || *t1 || *t2 || *t3
	failed := false
	emit := func(on bool, f func() error) {
		if failed || (any && !on) {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintln(stderr, "ipcp-tables:", err)
			failed = true
			return
		}
		fmt.Fprintln(stdout)
	}
	table2 := func() error { return report.Table2(stdout) }
	table3 := func() error { return report.Table3(stdout) }
	if *parallel != 0 {
		// An explicit worker count bypasses the cached sweep.
		table2 = func() error { return report.Table2With(stdout, *parallel) }
		table3 = func() error { return report.Table3With(stdout, *parallel) }
	}
	emit(*fig1, func() error { return report.Figure1(stdout) })
	emit(*t1, func() error { return report.Table1(stdout) })
	emit(*t2, table2)
	emit(*t3, table3)
	if failed {
		return 1
	}
	return 0
}
