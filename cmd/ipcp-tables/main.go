// Command ipcp-tables regenerates the paper's exhibits — Figure 1 and
// Tables 1–3 — over the synthesized benchmark suite.
//
// Usage:
//
//	ipcp-tables             # everything
//	ipcp-tables -figure1
//	ipcp-tables -table1 -table3
//	ipcp-tables -dump ocean # print a suite program's source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/suite"
)

func main() {
	var (
		fig1  = flag.Bool("figure1", false, "print Figure 1 (the lattice)")
		t1    = flag.Bool("table1", false, "print Table 1 (program characteristics)")
		t2    = flag.Bool("table2", false, "print Table 2 (jump function comparison)")
		t3    = flag.Bool("table3", false, "print Table 3 (technique comparison)")
		dump  = flag.String("dump", "", "print the synthesized source of one suite program")
		check = flag.Bool("check", false, "verify the paper's qualitative claims against fresh tables")
		csv   = flag.String("csv", "", "emit a table as CSV: table2|table3")
	)
	flag.Parse()

	if *dump != "" {
		spec, ok := suite.ByName(*dump)
		if !ok {
			fmt.Fprintf(os.Stderr, "ipcp-tables: unknown program %q (have %v)\n", *dump, suite.Names())
			os.Exit(2)
		}
		fmt.Print(suite.Source(spec))
		return
	}

	if *check {
		if err := report.Check(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ipcp-tables:", err)
			os.Exit(1)
		}
		return
	}
	if *csv != "" {
		var err error
		switch *csv {
		case "table2":
			err = report.Table2CSV(os.Stdout)
		case "table3":
			err = report.Table3CSV(os.Stdout)
		default:
			err = fmt.Errorf("unknown -csv table %q", *csv)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcp-tables:", err)
			os.Exit(1)
		}
		return
	}

	any := *fig1 || *t1 || *t2 || *t3
	run := func(on bool, f func() error) {
		if !any || on {
			if err := f(); err != nil {
				fmt.Fprintln(os.Stderr, "ipcp-tables:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	run(*fig1, func() error { return report.Figure1(os.Stdout) })
	run(*t1, func() error { return report.Table1(os.Stdout) })
	run(*t2, func() error { return report.Table2(os.Stdout) })
	run(*t3, func() error { return report.Table3(os.Stdout) })
}
