package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTablesCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ipcp-tables")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestTablesFigure1(t *testing.T) {
	bin := buildTablesCLI(t)
	out, err := exec.Command(bin, "-figure1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 1") || !strings.Contains(string(out), "⊥") {
		t.Errorf("figure output:\n%s", out)
	}
}

func TestTablesTable1(t *testing.T) {
	bin := buildTablesCLI(t)
	out, err := exec.Command(bin, "-table1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, prog := range []string{"adm", "ocean", "trfd"} {
		if !strings.Contains(string(out), prog) {
			t.Errorf("Table 1 missing %s:\n%s", prog, out)
		}
	}
}

func TestTablesDump(t *testing.T) {
	bin := buildTablesCLI(t)
	out, err := exec.Command(bin, "-dump", "trfd").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PROGRAM MAIN") {
		t.Errorf("dump output:\n%s", out)
	}
	if err := exec.Command(bin, "-dump", "bogus").Run(); err == nil {
		t.Error("unknown dump target should fail")
	}
}

func TestF77GenCLI(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "f77gen")
	out, err := exec.Command("go", "build", "-o", bin, "../f77gen").CombinedOutput()
	if err != nil {
		t.Fatalf("go build f77gen: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-seed", "3", "-procs", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PROGRAM MAIN") {
		t.Errorf("f77gen output:\n%s", out)
	}
	out2, _ := exec.Command(bin, "-seed", "3", "-procs", "2").CombinedOutput()
	if string(out) != string(out2) {
		t.Error("f77gen must be deterministic")
	}
	out3, err := exec.Command(bin, "-suite", "trfd").CombinedOutput()
	if err != nil || !strings.Contains(string(out3), "PROGRAM MAIN") {
		t.Errorf("f77gen -suite: %v\n%s", err, out3)
	}
}

func TestTablesCheckAndCSV(t *testing.T) {
	bin := buildTablesCLI(t)
	out, err := exec.Command(bin, "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("-check failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all reproduction claims hold") {
		t.Errorf("check output:\n%s", out)
	}
	out, err = exec.Command(bin, "-csv", "table3").CombinedOutput()
	if err != nil {
		t.Fatalf("-csv: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "program,poly_nomod") {
		t.Errorf("csv output:\n%s", out)
	}
	if err := exec.Command(bin, "-csv", "bogus").Run(); err == nil {
		t.Error("unknown csv table should fail")
	}
}
