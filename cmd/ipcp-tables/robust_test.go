package main

// Error-path contract tests: every failure exits with status 1 and a
// one-line diagnostic — never a stack trace.

import (
	"bytes"
	"strings"
	"testing"
)

// runTables drives run() in-process and returns (status, stdout, stderr).
func runTables(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func assertTablesFailure(t *testing.T, status int, stderr string) {
	t.Helper()
	if status != 1 {
		t.Errorf("exit status = %d, want 1", status)
	}
	if strings.TrimSpace(stderr) == "" {
		t.Error("no diagnostic on stderr")
	}
	if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "runtime.gopanic") {
		t.Errorf("stderr contains a stack trace:\n%s", stderr)
	}
}

func TestTablesUnknownFlag(t *testing.T) {
	status, _, stderr := runTables("-definitely-not-a-flag")
	assertTablesFailure(t, status, stderr)
}

func TestTablesUnknownDump(t *testing.T) {
	status, _, stderr := runTables("-dump", "bogus")
	assertTablesFailure(t, status, stderr)
	if !strings.Contains(stderr, "bogus") {
		t.Errorf("diagnostic does not name the program: %q", stderr)
	}
}

func TestTablesUnknownCSV(t *testing.T) {
	status, _, stderr := runTables("-csv", "bogus")
	assertTablesFailure(t, status, stderr)
}

func TestTablesUnexpectedArgument(t *testing.T) {
	status, _, stderr := runTables("stray")
	assertTablesFailure(t, status, stderr)
}

func TestTablesFigure1Status(t *testing.T) {
	status, stdout, stderr := runTables("-figure1")
	if status != 0 {
		t.Fatalf("exit status = %d, stderr: %s", status, stderr)
	}
	if !strings.Contains(stdout, "Figure 1") {
		t.Errorf("stdout:\n%s", stdout)
	}
}
