package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's stdout while run is still
// writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^\s]+)`)

// TestServeAnalyzeAndDrain boots the binary in-process on an ephemeral
// port, analyzes one program over real HTTP, then cancels the context
// and expects a graceful exit with a shutdown summary.
func TestServeAnalyzeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "5s"}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := `{"source": "PROGRAM MAIN\nINTEGER K\nK = 2 + 3\nCALL WORK(K, 7)\nEND\nSUBROUTINE WORK(N, M)\nINTEGER N, M\nPRINT *, N + M\nEND\n"}`
	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var ar struct {
		Status    string                       `json:"status"`
		Constants map[string][]json.RawMessage `json:"constants"`
	}
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, data)
	}
	if ar.Status != "ok" || len(ar.Constants["WORK"]) != 2 {
		t.Fatalf("response: %s", data)
	}

	cancel()
	select {
	case status := <-done:
		if status != 0 {
			t.Fatalf("run exited %d; stderr=%q", status, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "served 1 requests") {
		t.Fatalf("shutdown summary missing from stdout: %q", out)
	}
}

// TestBadFlags: unparseable flags and stray arguments exit 2 without
// binding a socket.
func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if status := run(context.Background(), []string{"-nope"}, &stdout, &stderr); status != 2 {
		t.Fatalf("bad flag: exit %d", status)
	}
	if status := run(context.Background(), []string{"extra"}, &stdout, &stderr); status != 2 {
		t.Fatalf("stray arg: exit %d", status)
	}
}
