package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
)

// syncBuffer lets the test read run's stdout while run is still
// writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^\s]+)`)

// TestServeAnalyzeAndDrain boots the binary in-process on an ephemeral
// port, analyzes one program over real HTTP, then cancels the context
// and expects a graceful exit with a shutdown summary.
func TestServeAnalyzeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "5s"}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := `{"source": "PROGRAM MAIN\nINTEGER K\nK = 2 + 3\nCALL WORK(K, 7)\nEND\nSUBROUTINE WORK(N, M)\nINTEGER N, M\nPRINT *, N + M\nEND\n"}`
	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var ar struct {
		Status    string                       `json:"status"`
		Constants map[string][]json.RawMessage `json:"constants"`
	}
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, data)
	}
	if ar.Status != "ok" || len(ar.Constants["WORK"]) != 2 {
		t.Fatalf("response: %s", data)
	}

	cancel()
	select {
	case status := <-done:
		if status != 0 {
			t.Fatalf("run exited %d; stderr=%q", status, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "served 1 requests") {
		t.Fatalf("shutdown summary missing from stdout: %q", out)
	}
}

// TestDrainOnSIGTERM drives the full graceful-drain sequencing the
// runbook promises: with an analysis in flight, a shutdown signal must
// (1) flip /readyz to 503 while the listener still accepts
// connections, (2) let the in-flight request finish with its real
// answer, and (3) only then exit.
func TestDrainOnSIGTERM(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	hold := make(chan struct{})
	defer guard.Set("solve", func() error { <-hold; return nil })()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "30s", "-drain-grace", "2s"}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	// One request in flight, parked on the armed solve fail point.
	body := `{"source": "PROGRAM MAIN\nINTEGER K\nK = 2 + 3\nCALL WORK(K, 7)\nEND\nSUBROUTINE WORK(N, M)\nINTEGER N, M\nPRINT *, N + M\nEND\n"}`
	type result struct {
		status int
		body   []byte
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inFlight <- result{status: resp.StatusCode, body: data}
	}()
	waitFor(t, deadlineIn(5*time.Second), func() bool {
		var st struct {
			InFlight int64 `json:"in_flight"`
		}
		return getJSON(t, base+"/statsz", &st) == nil && st.InFlight >= 1
	}, "request never showed up in flight")

	if code := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before signal = %d, want 200", code)
	}

	// "SIGTERM": main wires SIGTERM to this context's cancellation.
	cancel()

	// Within the drain grace the listener must still accept and answer
	// /readyz with 503 — the flip precedes the close.
	waitFor(t, deadlineIn(4*time.Second), func() bool {
		return getStatus(t, base+"/readyz") == http.StatusServiceUnavailable
	}, "/readyz never flipped to 503 while still accepting")
	if code := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", code)
	}

	// Release the parked analysis: it must complete with its real
	// answer even though the drain began while it ran.
	close(hold)
	select {
	case r := <-inFlight:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK || !strings.Contains(string(r.body), `"status": "ok"`) {
			t.Fatalf("in-flight request: status %d body %s", r.status, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case status := <-done:
		if status != 0 {
			t.Fatalf("run exited %d; stderr=%q", status, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after drain")
	}
}

func deadlineIn(d time.Duration) time.Time { return time.Now().Add(d) }

func waitFor(t *testing.T, deadline time.Time, cond func() bool, msg string) {
	t.Helper()
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestBadFlags: unparseable flags and stray arguments exit 2 without
// binding a socket.
func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if status := run(context.Background(), []string{"-nope"}, &stdout, &stderr); status != 2 {
		t.Fatalf("bad flag: exit %d", status)
	}
	if status := run(context.Background(), []string{"extra"}, &stdout, &stderr); status != 2 {
		t.Fatalf("stray arg: exit %d", status)
	}
}
