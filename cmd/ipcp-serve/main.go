// Command ipcp-serve exposes the analyzer as a crash-only HTTP
// analysis service (see internal/serve and docs/robustness.md).
//
// Usage:
//
//	ipcp-serve [flags]
//
// Endpoints:
//
//	POST /v1/analyze        analyze an F77s program (JSON in, JSON out)
//	POST /v1/sessions       open a compiler-daemon session (delta edits)
//	POST /v1/sessions/{id}/edit   apply unit deltas, re-analyze incrementally
//	GET  /v1/sessions/{id}/result current analysis result (byte-identical
//	                              to /v1/analyze for equal text and config)
//	POST /v1/jobs           submit a durable batch (with -jobs-dir)
//	GET  /v1/jobs/{id}      poll a job; /result replays its exact bytes
//	GET  /v1/jobs/watch     NDJSON stream of job state changes
//	GET  /healthz           liveness (always 200 while the process runs)
//	GET  /readyz            readiness (503 once draining)
//	GET  /statsz            counters, gauges, breaker and job-queue snapshots
//
// Flags tune the availability machinery:
//
//	-addr :8077                 listen address
//	-concurrency N              analyses running at once (default GOMAXPROCS)
//	-queue N                    admitted requests waiting beyond that (default 2N)
//	-timeout 10s                per-request wall-clock budget, retries included
//	-drain 5s                   graceful-shutdown drain budget
//	-drain-grace 0              after a shutdown signal, time to keep accepting
//	                            (answering /readyz 503) before connections drain,
//	                            so load balancers can route away first
//	-retries 3                  max re-runs of a transiently failed analysis
//	-breaker-threshold 5        consecutive internal failures that trip the circuit
//	-breaker-cooldown 2s        open time before the circuit half-opens
//	-parallel 1                 per-request analysis worker count
//	-analysis-cache 67108864    incremental-analysis cache byte budget (0 disables)
//	-result-cache 33554432      whole-response result cache byte budget (0 disables)
//	-sessions 32                resident compiler-daemon sessions (0 disables)
//	-session-bytes 268435456    session memory budget (LRU eviction past it)
//	-session-ttl 10m            idle-session expiry
//	-pprof                      register net/http/pprof under /debug/pprof/ (off by default)
//
// The durable batch/async job API (write-ahead-logged queue with
// per-tenant fair scheduling; see docs/robustness.md):
//
//	-jobs-dir DIR               WAL directory; empty (default) disables /v1/jobs
//	-jobs-workers N             concurrent job executions (default concurrency/2)
//	-jobs-attempts 3            transient failures before poison quarantine
//	-jobs-ttl 10m               default job TTL (-jobs-max-ttl 1h caps requests)
//	-jobs-retention 30m         how long terminal jobs stay pollable
//	-jobs-queue 1024            per-tenant queued-jobs quota (429 past it)
//
// A crash (kill -9) between a job's 202 and its completion loses
// nothing: on restart the WAL replays, pending jobs re-execute, and
// finished jobs keep their exact recorded bytes.
// SIGINT/SIGTERM begin a graceful drain: readiness flips, in-flight
// requests get the drain budget to finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/ipcp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive it
// in-process; it returns when ctx is cancelled (graceful drain) or the
// listener fails.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ipcp-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8077", "listen address")
		concurrency = fs.Int("concurrency", 0, "analyses running at once (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "admitted requests waiting beyond -concurrency (0 = 2x)")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request wall-clock budget")
		drain       = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
		drainGrace  = fs.Duration("drain-grace", 0, "time to keep accepting (not ready) after a shutdown signal")
		retries     = fs.Int("retries", 3, "max re-runs of a transiently failed analysis")
		brThreshold = fs.Int("breaker-threshold", 5, "consecutive internal failures that trip the circuit")
		brCooldown  = fs.Duration("breaker-cooldown", 2*time.Second, "open time before the circuit half-opens")
		parallel    = fs.Int("parallel", 1, "per-request analysis worker count")
		memoCache   = fs.Int64("analysis-cache", 64<<20, "incremental-analysis cache byte budget (0 disables)")
		resultCache = fs.Int64("result-cache", 32<<20, "whole-response result cache byte budget (0 disables)")
		pprofOn     = fs.Bool("pprof", false, "register net/http/pprof handlers under /debug/pprof/")

		sessions     = fs.Int("sessions", 32, "resident compiler-daemon sessions (0 disables /v1/sessions)")
		sessionBytes = fs.Int64("session-bytes", 256<<20, "session memory budget in bytes (LRU eviction past it)")
		sessionTTL   = fs.Duration("session-ttl", 10*time.Minute, "idle-session expiry")

		jobsDir       = fs.String("jobs-dir", "", "durable job WAL directory (empty disables /v1/jobs)")
		jobsWorkers   = fs.Int("jobs-workers", 0, "concurrent job executions (0 = concurrency/2)")
		jobsAttempts  = fs.Int("jobs-attempts", 3, "transient failures before a job is poisoned")
		jobsTTL       = fs.Duration("jobs-ttl", 10*time.Minute, "default job TTL")
		jobsMaxTTL    = fs.Duration("jobs-max-ttl", time.Hour, "largest TTL a submission may request")
		jobsRetention = fs.Duration("jobs-retention", 30*time.Minute, "how long terminal jobs stay pollable")
		jobsQueue     = fs.Int("jobs-queue", 1024, "per-tenant queued-jobs quota")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ipcp-serve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	s, err := serve.New(serve.Config{
		MaxConcurrency:      *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
		MaxRetries:          *retries,
		BreakerThreshold:    *brThreshold,
		BreakerCooldown:     *brCooldown,
		AnalysisParallelism: *parallel,
		AnalysisCacheBytes:  disabledIfZero(*memoCache),
		ResultCacheBytes:    disabledIfZero(*resultCache),
		EnablePprof:         *pprofOn,
		SessionLimit:        disabledIfZeroInt(*sessions),
		SessionBytes:        *sessionBytes,
		SessionTTL:          *sessionTTL,
		JobsDir:             *jobsDir,
		JobWorkers:          *jobsWorkers,
		JobPolicy: ipcp.JobPolicy{
			MaxAttempts: *jobsAttempts,
			DefaultTTL:  *jobsTTL,
			MaxTTL:      *jobsMaxTTL,
			Retention:   *jobsRetention,
		},
		JobQuota: ipcp.TenantQuota{MaxQueued: *jobsQueue},
	})
	if err != nil {
		fmt.Fprintf(stderr, "ipcp-serve: %v\n", err)
		return 1
	}
	if *jobsDir != "" {
		fmt.Fprintf(stdout, "ipcp-serve: durable job queue in %s\n", *jobsDir)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ipcp-serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ipcp-serve: listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	select {
	case err := <-serveErr:
		// The listener died out from under us — nothing to drain.
		fmt.Fprintf(stderr, "ipcp-serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ipcp-serve: draining")
	if *drainGrace > 0 {
		// Flip readiness while the listener still accepts: a load
		// balancer polling /readyz sees the 503 and routes away before
		// any connection is refused. Shutdown then closes the listener
		// and waits out the in-flight work.
		s.BeginDrain()
		time.Sleep(*drainGrace)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(stderr, "ipcp-serve: drain incomplete: %v\n", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "ipcp-serve: %v\n", err)
		return 1
	}
	st := s.Stats()
	fmt.Fprintf(stdout, "ipcp-serve: served %d requests (%d ok, %d degraded, %d shed, %d input errors, %d internal failures, breaker trips %d)\n",
		st.Requests, st.OK, st.Degraded, st.Shed, st.InputErrors, st.InternalFails, st.Breaker.Trips)
	if st.ResultCache != nil && st.AnalysisCache != nil {
		fmt.Fprintf(stdout, "ipcp-serve: result cache %d hits / %d misses, analysis cache %d hits / %d misses\n",
			st.ResultCache.Hits, st.ResultCache.Misses, st.AnalysisCache.Hits, st.AnalysisCache.Misses)
	}
	if st.Sessions != nil {
		fmt.Fprintf(stdout, "ipcp-serve: sessions %d opened (%d edits, %d fast, %d rebuilds, %d contexts reused; %d evicted, %d expired)\n",
			st.Sessions.Opens, st.Sessions.Edits, st.Sessions.FastEdits, st.Sessions.FullRebuilds,
			st.Sessions.ContextsReused, st.Sessions.EvictedLRU+st.Sessions.EvictedBytes, st.Sessions.ExpiredTTL)
	}
	if st.Jobs != nil {
		fmt.Fprintf(stdout, "ipcp-serve: jobs %d submitted (%d done, %d poisoned, %d expired, %d canceled; %d checkpointed for next boot)\n",
			st.Jobs.Submitted, st.Jobs.Done, st.Jobs.Poisoned, st.Jobs.Expired, st.Jobs.Canceled, st.Jobs.Queued)
	}
	return 0
}

// disabledIfZero maps the flag convention (0 = off) onto the Config
// convention (negative = off, 0 = default).
func disabledIfZero(n int64) int64 {
	if n == 0 {
		return -1
	}
	return n
}

func disabledIfZeroInt(n int) int {
	if n == 0 {
		return -1
	}
	return n
}
