// Command ipcp-coord fronts a fleet of ipcp-serve backends as one
// fault-tolerant analysis endpoint (see internal/cluster and
// docs/robustness.md).
//
// Usage:
//
//	ipcp-coord -backends host1:8077,host2:8077,... [flags]
//
// Endpoints (the same surface as one ipcp-serve, plus the fleet view):
//
//	POST /v1/analyze        route, hedge, and fail over across the backends
//	POST /v1/jobs           route a durable batch to one backend, whole
//	GET  /v1/jobs           every backend's retained jobs, merged
//	GET  /v1/jobs/{id}      owner-routed poll (fleet-wide search on a miss);
//	                        /result relays the owner's bytes verbatim
//	GET  /v1/jobs/watch     NDJSON aggregation of the fleet's job states
//	POST /v1/sessions       route a compiler-daemon session open by its
//	                        program's fingerprint; the winner owns the session
//	POST /v1/sessions/{id}/edit   owner-routed delta edit (relayed verbatim)
//	GET  /v1/sessions/{id}/result owner-routed result fetch
//	GET  /healthz           liveness (always 200 while the process runs)
//	GET  /readyz            readiness (503 while draining or with no healthy backend)
//	GET  /statsz            routing counters plus every backend's health and stats
//
// Job submissions require backends started with -jobs-dir; the
// coordinator holds no durable state of its own — job and session
// ownership is re-learned by broadcast after a coordinator restart,
// and when the whole fleet sheds or drains, the backends' own
// Retry-After hints are relayed to clients unchanged. A session lives
// in one backend's memory, so losing that backend orphans it: edits
// answer a retryable 503 while the owner is unreachable (404 once it
// is authoritatively gone), and the client re-opens on a survivor.
//
// Flags tune the fault-tolerance machinery:
//
//	-addr :8076                 listen address
//	-backends …                 comma-separated ipcp-serve base URLs (required)
//	-health-interval 500ms      /readyz probe period per backend
//	-timeout 30s                per-request budget across every failover and hedge
//	-max-attempts 0             backend attempts per request, hedges included (0 = #backends+1)
//	-hedge-after 0              fixed hedge delay (0 = adaptive p95 of recent latencies)
//	-max-inflight 32            concurrently proxied requests per backend
//	-breaker-threshold 3        consecutive failures that open a backend's circuit
//	-breaker-cooldown 2s        open time before a backend's circuit half-opens
//	-drain 5s                   graceful-shutdown drain budget
//
// SIGINT/SIGTERM begin a graceful drain: readiness flips, in-flight
// proxied requests get the drain budget to finish, then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive it
// in-process; it returns when ctx is cancelled (graceful drain) or the
// listener fails.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ipcp-coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8076", "listen address")
		backends       = fs.String("backends", "", "comma-separated ipcp-serve base URLs (required)")
		healthInterval = fs.Duration("health-interval", 500*time.Millisecond, "/readyz probe period per backend")
		timeout        = fs.Duration("timeout", 30*time.Second, "per-request budget across every failover and hedge")
		maxAttempts    = fs.Int("max-attempts", 0, "backend attempts per request, hedges included (0 = #backends+1)")
		hedgeAfter     = fs.Duration("hedge-after", 0, "fixed hedge delay (0 = adaptive p95 of recent latencies)")
		maxInflight    = fs.Int("max-inflight", 32, "concurrently proxied requests per backend")
		brThreshold    = fs.Int("breaker-threshold", 3, "consecutive failures that open a backend's circuit")
		brCooldown     = fs.Duration("breaker-cooldown", 2*time.Second, "open time before a backend's circuit half-opens")
		drain          = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ipcp-coord: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	c, err := cluster.New(cluster.Config{
		Backends:              urls,
		HealthInterval:        *healthInterval,
		RequestTimeout:        *timeout,
		MaxAttempts:           *maxAttempts,
		HedgeAfter:            *hedgeAfter,
		MaxInFlightPerBackend: *maxInflight,
		BreakerThreshold:      *brThreshold,
		BreakerCooldown:       *brCooldown,
		DrainTimeout:          *drain,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ipcp-coord: %v (pass -backends)\n", err)
		return 2
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ipcp-coord: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ipcp-coord: listening on %s, fronting %d backends\n", l.Addr(), len(urls))

	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(l) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ipcp-coord: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ipcp-coord: draining")
	if err := c.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(stderr, "ipcp-coord: drain incomplete: %v\n", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "ipcp-coord: %v\n", err)
		return 1
	}
	st := c.Stats()
	fmt.Fprintf(stdout, "ipcp-coord: served %d requests (%d ok, %d reroutes, %d hedges started / %d won, %d unavailable)\n",
		st.Requests, st.OK, st.Reroutes, st.HedgesStarted, st.HedgesWon, st.Unavailable)
	if st.JobSubmits > 0 || st.JobLookups > 0 {
		fmt.Fprintf(stdout, "ipcp-coord: jobs %d batches routed, %d lookups (%d fleet-wide searches)\n",
			st.JobSubmits, st.JobLookups, st.JobBroadcasts)
	}
	if st.SessionOpens > 0 || st.SessionLookups > 0 {
		fmt.Fprintf(stdout, "ipcp-coord: sessions %d opened, %d owner-routed lookups (%d fleet-wide searches)\n",
			st.SessionOpens, st.SessionLookups, st.SessionBroadcasts)
	}
	return 0
}
