package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's stdout while run is still
// writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^\s,]+)`)

// TestCoordProxiesAndDrains boots the coordinator in-process against a
// fake backend, proxies one request over real HTTP, then cancels the
// context and expects a graceful exit with a shutdown summary.
func TestCoordProxiesAndDrains(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/statsz":
			io.WriteString(w, "{}\n")
		case "/v1/analyze":
			io.Copy(io.Discard, r.Body)
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"status":"ok"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", backend.URL}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := `{"source": "PROGRAM MAIN\nINTEGER K\nK = 2 + 3\nEND\n"}`
	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if string(data) != `{"status":"ok"}` {
		t.Fatalf("proxied body altered: %q", data)
	}

	// The fleet view is live over real HTTP too.
	resp, err = http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Backends []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
		OK int64 `json:"ok"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("bad /statsz body: %v\n%s", err, data)
	}
	if len(stats.Backends) != 1 || stats.Backends[0].URL != backend.URL || stats.OK != 1 {
		t.Fatalf("fleet view: %s", data)
	}

	cancel()
	select {
	case status := <-done:
		if status != 0 {
			t.Fatalf("run exited %d; stderr=%q", status, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "served 1 requests") {
		t.Fatalf("shutdown summary missing from stdout: %q", out)
	}
}

// TestCoordBadFlags: unparseable flags, stray arguments, and a missing
// -backends all exit 2 without binding a socket.
func TestCoordBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if status := run(context.Background(), []string{"-nope"}, &stdout, &stderr); status != 2 {
		t.Fatalf("bad flag: exit %d", status)
	}
	if status := run(context.Background(), []string{"extra"}, &stdout, &stderr); status != 2 {
		t.Fatalf("stray arg: exit %d", status)
	}
	if status := run(context.Background(), nil, &stdout, &stderr); status != 2 {
		t.Fatalf("missing -backends: exit %d", status)
	}
	if !strings.Contains(stderr.String(), "-backends") {
		t.Fatalf("missing-backends error not actionable: %q", stderr.String())
	}
}
