package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the ipcp binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ipcp")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const demoProgram = `PROGRAM MAIN
INTEGER N
CALL SETUP(N)
CALL WORK(N)
END
SUBROUTINE SETUP(K)
INTEGER K
K = 100
END
SUBROUTINE WORK(M)
INTEGER M
PRINT *, M
END
`

func TestCLIAnalyze(t *testing.T) {
	bin := buildCLI(t)
	file := filepath.Join(t.TempDir(), "demo.f")
	if err := os.WriteFile(file, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-stats", file).CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "CONSTANTS(WORK): (M, 100)") {
		t.Errorf("missing CONSTANTS line:\n%s", s)
	}
	if !strings.Contains(s, "stats:") {
		t.Errorf("missing stats line:\n%s", s)
	}
}

func TestCLIStdinAndTransform(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-transform", "-")
	cmd.Stdin = strings.NewReader(demoProgram)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp -transform: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PRINT *, 100") {
		t.Errorf("transform did not substitute:\n%s", out)
	}
}

func TestCLIJumpFunctionFlag(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-jf", "literal", "-")
	cmd.Stdin = strings.NewReader(demoProgram)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp -jf literal: %v\n%s", err, out)
	}
	// SETUP's out-parameter constant needs return jump functions; WORK's
	// constant arrives through the actual N which is not a literal.
	if strings.Contains(string(out), "CONSTANTS(WORK)") {
		t.Errorf("literal jump function should miss WORK's constant:\n%s", out)
	}
}

func TestCLICloneFlag(t *testing.T) {
	bin := buildCLI(t)
	src := `PROGRAM MAIN
CALL S(1)
CALL S(2)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	cmd := exec.Command(bin, "-clone", "-")
	cmd.Stdin = strings.NewReader(src)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp -clone: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cloned: S →") {
		t.Errorf("missing clone report:\n%s", out)
	}
	if !strings.Contains(string(out), "CONSTANTS(S_1)") {
		t.Errorf("missing clone constants:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)

	// Bad flag value.
	cmd := exec.Command(bin, "-jf", "bogus", "-")
	cmd.Stdin = strings.NewReader(demoProgram)
	if err := cmd.Run(); err == nil {
		t.Error("bad -jf value should fail")
	}

	// Invalid program.
	cmd = exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("PROGRAM P\nCALL NOPE(1)\nEND\n")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Error("invalid program should fail")
	}
	if !strings.Contains(string(out), "undefined procedure") {
		t.Errorf("missing diagnostic:\n%s", out)
	}

	// Missing file.
	if err := exec.Command(bin, "/nonexistent/x.f").Run(); err == nil {
		t.Error("missing file should fail")
	}

	// No arguments.
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no arguments should fail")
	}
}

func TestCLIJumpDump(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-jumps", "-")
	cmd.Stdin = strings.NewReader(demoProgram)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp -jumps: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "site MAIN→SETUP@0") {
		t.Errorf("missing site line:\n%s", s)
	}
	if !strings.Contains(s, "returns SETUP: R[K]=100") {
		t.Errorf("missing return jump function:\n%s", s)
	}
}

func TestCLIDomainFlag(t *testing.T) {
	bin := buildCLI(t)
	src := `PROGRAM MAIN
CALL S(3)
CALL S(7)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	file := filepath.Join(t.TempDir(), "ranges.f")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-domain", "interval", file).CombinedOutput()
	if err != nil {
		t.Fatalf("ipcp -domain interval: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "domain: interval") || !strings.Contains(s, "FACTS(S): (N, [3,7])") {
		t.Errorf("interval output missing facts:\n%s", s)
	}

	out, err = exec.Command(bin, "-domain", "bogus", file).CombinedOutput()
	if err == nil {
		t.Fatalf("ipcp -domain bogus succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), `unknown domain "bogus"`) {
		t.Errorf("bogus-domain diagnostic = %q", out)
	}
}
