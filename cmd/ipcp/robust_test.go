package main

// Error-path contract tests: every failure exits with status 1 and a
// one-line diagnostic — never a stack trace. These drive run()
// in-process (no subprocess), so the fault-injection hooks work too.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/guard"
)

const goodSrc = `PROGRAM MAIN
CALL WORK(7)
END
SUBROUTINE WORK(N)
INTEGER N
PRINT *, N
END
`

// failingReader models an unreadable stdin.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("stdin unreadable") }

// runCLI drives run() in-process and returns (status, stdout, stderr).
// A nil stdin is unreadable; a non-nil one supplies program text.
func runCLI(t *testing.T, stdin *string, args ...string) (int, string, string) {
	t.Helper()
	var in interface{ Read([]byte) (int, error) } = failingReader{}
	if stdin != nil {
		in = strings.NewReader(*stdin)
	}
	var out, errb bytes.Buffer
	status := run(args, in, &out, &errb)
	return status, out.String(), errb.String()
}

// assertOneLineFailure checks the failure contract: exit status 1, a
// non-empty diagnostic, and no stack trace.
func assertOneLineFailure(t *testing.T, status int, stderr string) {
	t.Helper()
	if status != 1 {
		t.Errorf("exit status = %d, want 1", status)
	}
	if strings.TrimSpace(stderr) == "" {
		t.Error("no diagnostic on stderr")
	}
	if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "runtime.gopanic") {
		t.Errorf("stderr contains a stack trace:\n%s", stderr)
	}
}

func TestMissingFileDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil, filepath.Join(t.TempDir(), "nope.f"))
	assertOneLineFailure(t, status, stderr)
	if !strings.Contains(stderr, "nope.f") {
		t.Errorf("diagnostic does not name the file: %q", stderr)
	}
	if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 {
		t.Errorf("diagnostic spans %d lines, want 1: %q", n+1, stderr)
	}
}

func TestDirectoryAsFileDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil, t.TempDir())
	assertOneLineFailure(t, status, stderr)
}

func TestUnreadableStdinDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil, "-")
	assertOneLineFailure(t, status, stderr)
	if !strings.Contains(stderr, "stdin unreadable") {
		t.Errorf("diagnostic does not surface the read error: %q", stderr)
	}
}

func TestEmptyStdinDiagnostic(t *testing.T) {
	empty := ""
	status, _, stderr := runCLI(t, &empty, "-")
	assertOneLineFailure(t, status, stderr)
	if !strings.Contains(stderr, "no program units") {
		t.Errorf("diagnostic: %q", stderr)
	}
}

func TestMalformedSourceDiagnostic(t *testing.T) {
	bad := "PROGRAM MAIN\nX = )((\nEND\n"
	status, _, stderr := runCLI(t, &bad, "-")
	assertOneLineFailure(t, status, stderr)
}

func TestUnknownFlagDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil, "-definitely-not-a-flag", "x.f")
	assertOneLineFailure(t, status, stderr)
}

func TestUnknownJumpFunctionDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil, "-jf", "magic", "x.f")
	assertOneLineFailure(t, status, stderr)
}

func TestUnknownSolverDiagnostic(t *testing.T) {
	src := goodSrc
	status, _, stderr := runCLI(t, &src, "-solver", "quantum", "-")
	assertOneLineFailure(t, status, stderr)
}

func TestNoArgumentsDiagnostic(t *testing.T) {
	status, _, stderr := runCLI(t, nil)
	assertOneLineFailure(t, status, stderr)
}

// TestInternalPanicIsOneLine: an analyzer bug (simulated via fault
// injection) must surface as a one-line internal-error diagnostic, not
// a crash dump.
func TestInternalPanicIsOneLine(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("sem", func() error { return errors.New("injected sem fault") })
	defer remove()
	src := goodSrc
	status, _, stderr := runCLI(t, &src, "-")
	assertOneLineFailure(t, status, stderr)
	if !strings.Contains(stderr, "internal error") {
		t.Errorf("diagnostic does not say internal error: %q", stderr)
	}
}

func TestSuccessStatusZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.f")
	if err := os.WriteFile(path, []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	status, stdout, stderr := runCLI(t, nil, path)
	if status != 0 {
		t.Fatalf("exit status = %d, stderr: %s", status, stderr)
	}
	if !strings.Contains(stdout, "CONSTANTS(WORK)") {
		t.Errorf("stdout missing CONSTANTS(WORK):\n%s", stdout)
	}
}

// TestBudgetFlagsDegradeOnStderr: budget exhaustion is not a failure —
// the run succeeds with a degradation warning on stderr.
func TestBudgetFlagsDegradeOnStderr(t *testing.T) {
	// Two formals at the call site guarantee the solver needs more than
	// one jump-function evaluation, so -maxsteps 1 must exhaust.
	src := `PROGRAM MAIN
CALL WORK(7, 9)
END
SUBROUTINE WORK(N, M)
INTEGER N, M
PRINT *, N + M
END
`
	status, stdout, stderr := runCLI(t, &src, "-maxsteps", "1", "-")
	if status != 0 {
		t.Fatalf("exit status = %d (budget exhaustion must degrade, not fail), stderr: %s", status, stderr)
	}
	if !strings.Contains(stderr, "degraded [solver-steps]") {
		t.Errorf("stderr missing degradation warning:\n%s", stderr)
	}
	if !strings.Contains(stdout, "substitutable") {
		t.Errorf("stdout missing summary:\n%s", stdout)
	}
}

func TestTimeoutFlagAccepted(t *testing.T) {
	src := goodSrc
	status, _, stderr := runCLI(t, &src, "-timeout", "30s", "-")
	if status != 0 {
		t.Fatalf("exit status = %d, stderr: %s", status, stderr)
	}
}
