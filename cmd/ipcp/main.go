// Command ipcp runs interprocedural constant propagation over an F77s
// source file and reports the CONSTANTS sets, the substitution count,
// and (optionally) the transformed source.
//
// Usage:
//
//	ipcp [flags] file.f
//	ipcp [flags] -            # read program from stdin
//
// Flags select the paper's experimental axes:
//
//	-jf literal|intra|passthrough|polynomial   forward jump function
//	-mod=false                                  disable MOD information
//	-ret=false                                  disable return jump functions
//	-complete                                   iterate with dead code elimination
//	-solver worklist|binding                    propagation algorithm
//	-domain const|interval|parity|taint|cond-const
//	                                            abstract domain to propagate
//	-transform                                  print the transformed source
//	-stats                                      print solver statistics
//	-trace                                      print per-phase timing to stderr
//
// Resource budgets (the analysis degrades soundly when exhausted,
// reporting each step on stderr):
//
//	-timeout 5s      wall-clock budget
//	-maxsteps N      cap on solver jump-function evaluations
//	-maxrounds N     cap on complete-propagation rounds
//	-maxexpr N       cap on jump-function expression size
//
// Every failure exits with status 1 and a one-line diagnostic; the
// command never prints a stack trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/ipcp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive
// every error path in-process. It never panics: internal faults are
// reported as a one-line diagnostic and exit status 1.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "ipcp: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("ipcp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jf        = fs.String("jf", "passthrough", "jump function: literal|intra|passthrough|polynomial")
		useMod    = fs.Bool("mod", true, "use interprocedural MOD information")
		useRet    = fs.Bool("ret", true, "use return jump functions")
		fullSubst = fs.Bool("fullsubst", false, "keep symbolic return jump function results (extension)")
		complete  = fs.Bool("complete", false, "iterate propagation with dead code elimination")
		gated     = fs.Bool("gated", false, "gated-SSA jump functions (subsumes -complete in one round; extension)")
		doClone   = fs.Bool("clone", false, "procedure cloning guided by constants (extension)")
		solver    = fs.String("solver", "worklist", "solver: worklist|binding")
		domName   = fs.String("domain", "", "abstract domain: "+strings.Join(ipcp.Domains(), "|")+" (default const)")
		transform = fs.Bool("transform", false, "print the transformed source")
		jumps     = fs.Bool("jumps", false, "print the constructed jump functions")
		stats     = fs.Bool("stats", false, "print solver statistics")
		trace     = fs.Bool("trace", false, "print per-phase wall time and counters to stderr")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget (0 = unlimited; exhaustion degrades, never fails)")
		maxSteps  = fs.Int("maxsteps", 0, "cap on solver jump-function evaluations (0 = unlimited)")
		maxRounds = fs.Int("maxrounds", 0, "cap on complete-propagation rounds (0 = driver default)")
		maxExpr   = fs.Int("maxexpr", 0, "cap on jump-function expression size in nodes (0 = unlimited)")
		parallel  = fs.Int("parallel", 0, "analysis worker goroutines (0 = one per CPU, 1 = serial; output is identical)")
	)
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the one-line diagnostic and usage.
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ipcp [flags] file.f  (use - for stdin)")
		fs.PrintDefaults()
		return 1
	}

	name := fs.Arg(0)
	var src []byte
	var err error
	if name == "-" {
		src, err = io.ReadAll(stdin)
		name = "<stdin>"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ipcp:", err)
		return 1
	}

	cfg := ipcp.Config{
		UseMOD: *useMod, UseReturnJFs: *useRet, FullSubstitution: *fullSubst,
		Complete: *complete, Gated: *gated,
		Budget:      ipcp.Budget{MaxSolverSteps: *maxSteps, MaxRounds: *maxRounds, MaxJFExprSize: *maxExpr},
		Parallelism: *parallel,
		Domain:      *domName,
	}
	switch *jf {
	case "literal":
		cfg.Kind = ipcp.Literal
	case "intra":
		cfg.Kind = ipcp.Intraprocedural
	case "passthrough":
		cfg.Kind = ipcp.PassThrough
	case "polynomial":
		cfg.Kind = ipcp.Polynomial
	default:
		fmt.Fprintf(stderr, "ipcp: unknown jump function %q\n", *jf)
		return 1
	}
	switch *solver {
	case "worklist":
		cfg.Solver = ipcp.Worklist
	case "binding":
		cfg.Solver = ipcp.BindingGraph
	default:
		fmt.Fprintf(stderr, "ipcp: unknown solver %q\n", *solver)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *ipcp.Result
	var cloneInfo *ipcp.CloneInfo
	if *doClone {
		res, cloneInfo, err = ipcp.AnalyzeWithCloningContext(ctx, name, string(src), cfg, 3)
	} else {
		res, err = ipcp.AnalyzeContext(ctx, name, string(src), cfg)
	}
	if err != nil {
		// *ipcp.InternalError stringifies to one line (phase + value);
		// the stack stays inside the error value.
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(res.Procedures()) == 0 {
		fmt.Fprintln(stderr, "ipcp: no program units found")
		return 1
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(stderr, w)
	}
	if *trace {
		printTrace(stderr, res.PhaseStats)
	}
	if cloneInfo != nil {
		for _, c := range cloneInfo.Cloned {
			fmt.Fprintf(stdout, "cloned: %s\n", c)
		}
	}

	if *transform {
		fmt.Fprint(stdout, res.TransformedSource())
		return 0
	}
	if *jumps {
		for _, line := range res.JumpFunctions() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	fmt.Fprintf(stdout, "configuration: %s jump functions, MOD=%v, return JFs=%v, complete=%v\n",
		cfg.Kind, cfg.UseMOD, cfg.UseReturnJFs, cfg.Complete)
	if dom := res.Domain(); dom != "const" {
		fmt.Fprintf(stdout, "domain: %s\n", dom)
		for _, proc := range res.Procedures() {
			fs := res.FactsOf(proc)
			if len(fs) == 0 {
				continue
			}
			fmt.Fprintf(stdout, "FACTS(%s):", proc)
			for _, f := range fs {
				tag := ""
				if f.IsGlobal {
					tag = fmt.Sprintf(" [/%s/]", f.Block)
				}
				fmt.Fprintf(stdout, " (%s, %s)%s", f.Name, f.Value, tag)
			}
			fmt.Fprintln(stdout)
		}
	}
	total := 0
	for _, proc := range res.Procedures() {
		ks := res.ConstantsOf(proc)
		if len(ks) == 0 {
			continue
		}
		fmt.Fprintf(stdout, "CONSTANTS(%s):", proc)
		for _, k := range ks {
			tag := ""
			if k.IsGlobal {
				tag = fmt.Sprintf(" [/%s/]", k.Block)
			}
			fmt.Fprintf(stdout, " (%s, %d)%s", k.Name, k.Value, tag)
			total++
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "%d constant parameter/global entries; %d uses substitutable\n",
		total, res.SubstitutionCount())
	if *stats {
		jfe, low, rounds := res.Stats()
		fmt.Fprintf(stdout, "stats: %d jump function evaluations, %d lattice lowerings, %d round(s)\n", jfe, low, rounds)
	}
	return 0
}

// printTrace renders Result.PhaseStats as an aligned table, one phase
// per line in execution order.
func printTrace(w io.Writer, stats []ipcp.PhaseStat) {
	fmt.Fprintf(w, "%-9s %14s %6s %8s %6s %6s\n", "phase", "wall", "runs", "units", "memo", "degr")
	for _, s := range stats {
		fmt.Fprintf(w, "%-9s %14s %6d %8d %6d %6d\n",
			s.Phase, time.Duration(s.WallNs), s.Runs, s.Units, s.MemoHits, s.Degradations)
	}
}
