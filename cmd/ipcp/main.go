// Command ipcp runs interprocedural constant propagation over an F77s
// source file and reports the CONSTANTS sets, the substitution count,
// and (optionally) the transformed source.
//
// Usage:
//
//	ipcp [flags] file.f
//	ipcp [flags] -            # read program from stdin
//
// Flags select the paper's experimental axes:
//
//	-jf literal|intra|passthrough|polynomial   forward jump function
//	-mod=false                                  disable MOD information
//	-ret=false                                  disable return jump functions
//	-complete                                   iterate with dead code elimination
//	-solver worklist|binding                    propagation algorithm
//	-transform                                  print the transformed source
//	-stats                                      print solver statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/ipcp"
)

func main() {
	var (
		jf        = flag.String("jf", "passthrough", "jump function: literal|intra|passthrough|polynomial")
		useMod    = flag.Bool("mod", true, "use interprocedural MOD information")
		useRet    = flag.Bool("ret", true, "use return jump functions")
		fullSubst = flag.Bool("fullsubst", false, "keep symbolic return jump function results (extension)")
		complete  = flag.Bool("complete", false, "iterate propagation with dead code elimination")
		gated     = flag.Bool("gated", false, "gated-SSA jump functions (subsumes -complete in one round; extension)")
		doClone   = flag.Bool("clone", false, "procedure cloning guided by constants (extension)")
		solver    = flag.String("solver", "worklist", "solver: worklist|binding")
		transform = flag.Bool("transform", false, "print the transformed source")
		jumps     = flag.Bool("jumps", false, "print the constructed jump functions")
		stats     = flag.Bool("stats", false, "print solver statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipcp [flags] file.f  (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	name := flag.Arg(0)
	var src []byte
	var err error
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "<stdin>"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcp:", err)
		os.Exit(1)
	}

	cfg := ipcp.Config{UseMOD: *useMod, UseReturnJFs: *useRet, FullSubstitution: *fullSubst, Complete: *complete, Gated: *gated}
	switch *jf {
	case "literal":
		cfg.Kind = ipcp.Literal
	case "intra":
		cfg.Kind = ipcp.Intraprocedural
	case "passthrough":
		cfg.Kind = ipcp.PassThrough
	case "polynomial":
		cfg.Kind = ipcp.Polynomial
	default:
		fmt.Fprintf(os.Stderr, "ipcp: unknown jump function %q\n", *jf)
		os.Exit(2)
	}
	switch *solver {
	case "worklist":
		cfg.Solver = ipcp.Worklist
	case "binding":
		cfg.Solver = ipcp.BindingGraph
	default:
		fmt.Fprintf(os.Stderr, "ipcp: unknown solver %q\n", *solver)
		os.Exit(2)
	}

	var res *ipcp.Result
	var cloneInfo *ipcp.CloneInfo
	if *doClone {
		res, cloneInfo, err = ipcp.AnalyzeWithCloning(name, string(src), cfg, 3)
	} else {
		res, err = ipcp.Analyze(name, string(src), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	if cloneInfo != nil {
		for _, c := range cloneInfo.Cloned {
			fmt.Printf("cloned: %s\n", c)
		}
	}

	if *transform {
		fmt.Print(res.TransformedSource())
		return
	}
	if *jumps {
		for _, line := range res.JumpFunctions() {
			fmt.Println(line)
		}
		return
	}

	fmt.Printf("configuration: %s jump functions, MOD=%v, return JFs=%v, complete=%v\n",
		cfg.Kind, cfg.UseMOD, cfg.UseReturnJFs, cfg.Complete)
	total := 0
	for _, proc := range res.Procedures() {
		ks := res.ConstantsOf(proc)
		if len(ks) == 0 {
			continue
		}
		fmt.Printf("CONSTANTS(%s):", proc)
		for _, k := range ks {
			tag := ""
			if k.IsGlobal {
				tag = fmt.Sprintf(" [/%s/]", k.Block)
			}
			fmt.Printf(" (%s, %d)%s", k.Name, k.Value, tag)
			total++
		}
		fmt.Println()
	}
	fmt.Printf("%d constant parameter/global entries; %d uses substitutable\n",
		total, res.SubstitutionCount())
	if *stats {
		jfe, low, rounds := res.Stats()
		fmt.Printf("stats: %d jump function evaluations, %d lattice lowerings, %d round(s)\n", jfe, low, rounds)
	}
}
