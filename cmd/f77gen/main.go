// Command f77gen emits workload programs: either a named program from
// the paper's synthesized benchmark suite, or a random valid F77s
// program from the seeded generator (the same one the property tests
// and benchmark sweeps use).
//
// Usage:
//
//	f77gen -suite ocean           # synthesize a suite program
//	f77gen -seed 42 -procs 8      # random program
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/suite"
)

func main() {
	var (
		suiteName = flag.String("suite", "", "emit a named suite program (one of: "+fmt.Sprint(suite.Names())+")")
		seed      = flag.Int64("seed", 1, "random generator seed")
		procs     = flag.Int("procs", 4, "number of procedures besides MAIN")
		stmts     = flag.Int("stmts", 8, "approximate statements per procedure")
		globals   = flag.Int("globals", 2, "number of COMMON integers")
		reads     = flag.Bool("reads", false, "include READ statements (runtime inputs)")
	)
	flag.Parse()

	if *suiteName != "" {
		spec, ok := suite.ByName(*suiteName)
		if !ok {
			fmt.Fprintf(os.Stderr, "f77gen: unknown suite program %q\n", *suiteName)
			os.Exit(2)
		}
		fmt.Print(suite.Source(spec))
		return
	}
	fmt.Print(gen.Program(gen.Config{
		Seed:         *seed,
		NumProcs:     *procs,
		StmtsPerProc: *stmts,
		Globals:      *globals,
		WithReads:    *reads,
	}))
}
