package symbolic

import "repro/internal/lattice"

// Env supplies lattice values for Param and Global leaves during jump
// function evaluation.
type Env func(leaf *Expr) lattice.Value

// Eval evaluates a jump function under an environment, with the
// optimistic SCCP convention: ⊤ inputs yield ⊤ (the input may still
// become a constant), ⊥ or opaque inputs yield ⊥, and all-constant
// inputs fold. Boolean-valued expressions evaluate to ⊥ — only integer
// constants are propagated, as in the paper.
func Eval(e *Expr, env Env) lattice.Value {
	switch e.Op {
	case OpConst:
		return lattice.ConstValue(e.K)
	case OpBool:
		return lattice.BottomValue()
	case OpOpaque:
		return lattice.BottomValue()
	case OpParam, OpGlobal:
		return env(e)
	case OpNeg:
		v := Eval(e.Args[0], env)
		if c, ok := v.IsConst(); ok {
			return lattice.ConstValue(-c)
		}
		return v
	case OpAbs:
		v := Eval(e.Args[0], env)
		if c, ok := v.IsConst(); ok {
			if c < 0 {
				c = -c
			}
			return lattice.ConstValue(c)
		}
		return v
	case OpNot, OpAnd, OpOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return lattice.BottomValue()
	case OpGamma:
		if v, ok := EvalBool(e.Args[0], env); ok {
			if v {
				return Eval(e.Args[1], env)
			}
			return Eval(e.Args[2], env)
		}
		// Predicate unknown: the value is the meet of both arms.
		return lattice.Meet(Eval(e.Args[1], env), Eval(e.Args[2], env))
	default: // binary arithmetic
		x := Eval(e.Args[0], env)
		y := Eval(e.Args[1], env)
		if x.IsBottom() || y.IsBottom() {
			return lattice.BottomValue()
		}
		if x.IsTop() || y.IsTop() {
			return lattice.TopValue()
		}
		// Both sides are constants here; ConstOK keeps a malformed
		// environment value recoverable (⊥) rather than panicking.
		xc, xok := x.ConstOK()
		yc, yok := y.ConstOK()
		if !xok || !yok {
			return lattice.BottomValue()
		}
		if v, ok := IntBinop(e.Op, xc, yc); ok {
			return lattice.ConstValue(v)
		}
		return lattice.BottomValue()
	}
}

// EvalBool evaluates a boolean-valued expression under an environment,
// reporting whether its truth value is determined (all relevant inputs
// are known constants).
func EvalBool(e *Expr, env Env) (bool, bool) {
	switch e.Op {
	case OpBool:
		return e.B, true
	case OpNot:
		if v, ok := EvalBool(e.Args[0], env); ok {
			return !v, true
		}
	case OpAnd:
		l, lok := EvalBool(e.Args[0], env)
		r, rok := EvalBool(e.Args[1], env)
		switch {
		case lok && !l:
			return false, true
		case rok && !r:
			return false, true
		case lok && rok:
			return l && r, true
		}
	case OpOr:
		l, lok := EvalBool(e.Args[0], env)
		r, rok := EvalBool(e.Args[1], env)
		switch {
		case lok && l:
			return true, true
		case rok && r:
			return true, true
		case lok && rok:
			return l || r, true
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		x := Eval(e.Args[0], env)
		y := Eval(e.Args[1], env)
		xc, xok := x.IsConst()
		yc, yok := y.IsConst()
		if xok && yok {
			return IntCompare(e.Op, xc, yc), true
		}
	}
	return false, false
}

// Substitute rewrites e, replacing each Param/Global leaf by repl(leaf)
// (which must return a non-nil expression, possibly the leaf itself).
// Interior nodes are rebuilt through the builder, so folding reapplies:
// substituting constants into a polynomial jump function evaluates it.
func (b *Builder) Substitute(e *Expr, repl func(leaf *Expr) *Expr) *Expr {
	switch e.Op {
	// Re-intern leaves through b rather than returning e: e may come
	// from a different worker's builder (e.g. a callee return summary
	// built in parallel), and a foreign *Expr would corrupt b's
	// hash-consing, which keys interior nodes on argument ids. Opaque
	// identities are process-unique (per-procedure bases plus identity),
	// so re-interning by K preserves distinctness.
	case OpConst:
		return b.Const(e.K)
	case OpBool:
		return b.Bool(e.B)
	case OpOpaque:
		return b.Opaque(e.K)
	case OpParam, OpGlobal:
		return repl(e)
	case OpNeg:
		return b.Neg(b.Substitute(e.Args[0], repl))
	case OpNot:
		return b.Not(b.Substitute(e.Args[0], repl))
	case OpAbs:
		return b.Abs(b.Substitute(e.Args[0], repl))
	case OpGamma:
		return b.Gamma(
			b.Substitute(e.Args[0], repl),
			b.Substitute(e.Args[1], repl),
			b.Substitute(e.Args[2], repl))
	default:
		x := b.Substitute(e.Args[0], repl)
		y := b.Substitute(e.Args[1], repl)
		return b.Binary(e.Op, x, y)
	}
}

// ConstEnv returns an Env over a value map, defaulting to def for
// leaves not present.
func ConstEnv(vals map[*Expr]lattice.Value, def lattice.Value) Env {
	return func(leaf *Expr) lattice.Value {
		if v, ok := vals[leaf]; ok {
			return v
		}
		return def
	}
}
