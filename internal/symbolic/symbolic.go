// Package symbolic implements hash-consed symbolic expressions over a
// procedure's entry values (formal parameters and COMMON globals).
//
// These expressions are the currency of the jump-function framework:
//   - a *forward jump function* J_s^y is a symbolic expression giving
//     the value of actual y at call site s in terms of the caller's
//     entry values;
//   - a *return jump function* R_p^x is a symbolic expression giving
//     the value of formal x on return from p in terms of p's entry
//     values.
//
// Expressions are interned in a Builder, so pointer equality is
// structural equality — this is what makes the value-numbering-based
// construction of §3 cheap. Construction folds integer constants and
// applies simple algebraic identities.
//
// Representation: a Builder is an arena. Nodes live in fixed-size
// chunks of a slab (so *Expr handles stay stable while the pool grows
// without per-node heap allocation), every node carries a dense uint32
// pool id, and interior nodes are deduplicated through an
// open-addressed table keyed on the packed {op, kid0, kid1, kid2}
// struct — no per-intern map churn, no allocation on an intern hit.
// Args and support slices are carved out of shared backing slabs.
// Pool ids are builder-local bookkeeping only: every cross-builder
// order (commutative canonicalization, support order) goes through
// StructCompare, which depends on structure alone.
package symbolic

import (
	"fmt"
	"strings"

	"repro/internal/sem"
)

// Op enumerates symbolic expression operators.
type Op int

// OpInvalid is returned by FromASTOp for an operator with no symbolic
// counterpart. Builder.Binary maps it to a fresh opaque value, so an
// unmapped operator degrades to a non-constant jump function instead of
// crashing the analysis.
const OpInvalid Op = -1

const (
	OpConst  Op = iota // integer constant (K)
	OpBool             // boolean constant (B)
	OpParam            // entry value of a formal parameter (Param)
	OpGlobal           // entry value of a COMMON global (Global)
	OpOpaque           // unknown, non-constant value (K = identity)

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpPow
	OpNeg

	OpMod
	OpMax
	OpMin
	OpAbs

	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	OpAnd
	OpOr
	OpNot

	// OpGamma is the gated-SSA γ function: Args are [predicate, value
	// when true, value when false]. The paper (§4.2) observes that jump
	// functions built on gated single-assignment form would subsume the
	// "complete propagation" results; Gamma is what makes that possible
	// — a merged value stays evaluable once the predicate is known.
	OpGamma
)

var opNames = map[Op]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpBool: "bool", OpParam: "param", OpGlobal: "global",
	OpOpaque: "opaque",
	OpAdd:    "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**", OpNeg: "neg",
	OpMod: "MOD", OpMax: "MAX", OpMin: "MIN", OpAbs: "ABS",
	OpEq: ".EQ.", OpNe: ".NE.", OpLt: ".LT.", OpLe: ".LE.", OpGt: ".GT.", OpGe: ".GE.",
	OpAnd: ".AND.", OpOr: ".OR.", OpNot: ".NOT.", OpGamma: "γ",
}

func (o Op) String() string { return opNames[o] }

// Expr is an interned symbolic expression. Compare with ==. Exprs are
// allocated from their Builder's arena; the pool id is builder-local
// and never leaks into any cross-builder order.
type Expr struct {
	Op   Op
	Args []*Expr

	K      int64          // OpConst value; OpOpaque identity
	B      bool           // OpBool value
	Param  *sem.Symbol    // OpParam leaf
	Global *sem.GlobalVar // OpGlobal leaf

	id      uint32
	size    int  // node count, this node included
	opaque  bool // contains an OpOpaque anywhere
	support []*Expr
}

// Size returns the expression's node count (leaves are size 1). Shared
// subexpressions count once per occurrence, matching evaluation cost.
func (e *Expr) Size() int { return e.size }

// IsConst reports whether the expression is an integer constant.
func (e *Expr) IsConst() (int64, bool) { return e.K, e.Op == OpConst }

// IsBool reports whether the expression is a boolean constant.
func (e *Expr) IsBool() (bool, bool) { return e.B, e.Op == OpBool }

// HasOpaque reports whether any subexpression is opaque (and hence the
// expression can never evaluate to a constant).
func (e *Expr) HasOpaque() bool { return e.opaque }

// Support returns the Param/Global leaves the expression depends on —
// the "support" of a jump function in the paper's terminology. The
// result is shared; callers must not modify it.
func (e *Expr) Support() []*Expr { return e.support }

// String renders the expression readably, e.g. "(+ N 1)".
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		return fmt.Sprintf("%d", e.K)
	case OpBool:
		if e.B {
			return ".TRUE."
		}
		return ".FALSE."
	case OpParam:
		return e.Param.Name
	case OpGlobal:
		return e.Global.Key()
	case OpOpaque:
		return fmt.Sprintf("?%d", e.K)
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", e.Op, strings.Join(parts, " "))
}

const (
	// exprChunk is the arena chunk size: nodes per slab allocation.
	exprChunk = 512
	// ptrChunk is the shared Args/support slab chunk size.
	ptrChunk = 2048
	// noKid marks an unused argument slot in an internKey. No node can
	// hold this id: the pool would have to contain 2^32 nodes first.
	noKid = ^uint32(0)
)

// internKey identifies an interior node by operator and packed argument
// pool ids. The widest constructor (Gamma) has three arguments.
type internKey struct {
	op         Op
	a0, a1, a2 uint32
}

// internSlot is one open-addressed table entry; e == nil means empty.
type internSlot struct {
	key internKey
	e   *Expr
}

// Builder interns expressions. One Builder serves a whole program
// analysis; it is not safe for concurrent use.
type Builder struct {
	// Arena. cur is the chunk currently being filled; chunks records
	// every chunk ever allocated (for introspection — the *Expr handles
	// themselves keep the memory alive).
	chunks [][]Expr
	cur    []Expr
	nextID uint32

	// Open-addressed intern table for interior nodes. len(table) is a
	// power of two; grows at 3/4 load.
	table []internSlot
	used  int

	// Shared backing slab for Args and support slices: small per-node
	// slices become sub-slices of one large allocation.
	ptrSlab []*Expr

	supScratch []*Expr // computeSupport working space, reused

	params   map[*sem.Symbol]*Expr
	globals  map[*sem.GlobalVar]*Expr
	opaques  map[int64]*Expr
	consts   map[int64]*Expr
	trueE    *Expr
	falseE   *Expr
	nextAnon int64 // generator for fresh opaque identities

	maxSize   int // expression-size budget; 0 = unlimited
	truncated int // expressions degraded to opaque by the budget
}

// SetMaxSize installs an expression-size budget: any interior node
// whose node count would exceed n is replaced by a fresh opaque value
// (which evaluates to ⊥ — a sound under-approximation). n <= 0 removes
// the budget.
func (b *Builder) SetMaxSize(n int) { b.maxSize = n }

// MaxSize returns the current expression-size budget (0 = unlimited),
// so per-worker builders can inherit the primary builder's cap.
func (b *Builder) MaxSize() int { return b.maxSize }

// Truncated reports how many expressions the size budget degraded to
// opaque since the builder was created (including counts folded in via
// AddTruncated).
func (b *Builder) Truncated() int { return b.truncated }

// AddTruncated folds n more truncation events into the builder's count.
// The parallel pipeline gives each worker its own Builder (the
// hash-consing tables are not goroutine-safe); after the workers join,
// their truncation counts are summed into the primary builder so the
// degradation warning reports the whole program's count, not one
// shard's. Call only after the contributing workers have finished.
func (b *Builder) AddTruncated(n int) {
	if n > 0 {
		b.truncated += n
	}
}

// NewBuilder returns an empty interning pool.
func NewBuilder() *Builder {
	return &Builder{
		params:  make(map[*sem.Symbol]*Expr),
		globals: make(map[*sem.GlobalVar]*Expr),
		opaques: make(map[int64]*Expr),
		consts:  make(map[int64]*Expr),
	}
}

// NumExprs returns the number of nodes interned in the pool.
func (b *Builder) NumExprs() int { return int(b.nextID) }

// NumChunks returns how many arena chunks back the pool.
func (b *Builder) NumChunks() int { return len(b.chunks) }

// alloc carves the next node out of the arena. Returned memory is
// zeroed; the *Expr address is stable for the life of the Builder.
func (b *Builder) alloc() *Expr {
	if len(b.cur) == cap(b.cur) {
		b.cur = make([]Expr, 0, exprChunk)
		b.chunks = append(b.chunks, b.cur)
	}
	b.cur = b.cur[:len(b.cur)+1]
	return &b.cur[len(b.cur)-1]
}

// span carves an n-pointer sub-slice (capacity-clamped) out of the
// shared slab.
func (b *Builder) span(n int) []*Expr {
	if len(b.ptrSlab)+n > cap(b.ptrSlab) {
		c := ptrChunk
		if n > c {
			c = n
		}
		b.ptrSlab = make([]*Expr, 0, c)
	}
	lo := len(b.ptrSlab)
	b.ptrSlab = b.ptrSlab[:lo+n]
	return b.ptrSlab[lo : lo+n : lo+n]
}

// intern finishes a freshly arena-allocated node: assigns its pool id
// and computes the derived facts once.
func (b *Builder) intern(e *Expr) *Expr {
	e.id = b.nextID
	b.nextID++
	e.size = 1
	for _, a := range e.Args {
		e.size += a.size
		if a.opaque {
			e.opaque = true
		}
	}
	if e.Op == OpOpaque {
		e.opaque = true
	}
	e.support = b.computeSupport(e)
	return e
}

func (b *Builder) computeSupport(e *Expr) []*Expr {
	if e.Op == OpParam || e.Op == OpGlobal {
		s := b.span(1)
		s[0] = e
		return s
	}
	// A support slice is immutable once interned, so when at most one
	// child contributes leaves the child's slice is shared outright —
	// most interior nodes take this allocation-free path.
	var first []*Expr
	n := 0
	for _, a := range e.Args {
		if len(a.support) > 0 {
			if first == nil {
				first = a.support
			}
			n += len(a.support)
		}
	}
	if n == len(first) {
		return first
	}
	// Gather contributors into the reusable scratch buffer, order them
	// structurally, and dedup in place before committing to the slab.
	//
	// Order structurally, not by interning id: ids depend on which
	// Builder interned the leaf first, and the parallel pipeline builds
	// expressions in per-worker Builders. A structural order keeps the
	// support — and everything downstream of it, like the binding-graph
	// solver's evaluation order — identical between serial and parallel
	// runs. Distinct interned exprs of one builder never compare equal,
	// so duplicates are exactly the repeated pointers, adjacent after
	// the sort. Supports are tiny (a handful of leaves), so an
	// insertion sort beats sort.Slice and allocates nothing.
	sc := b.supScratch[:0]
	for _, a := range e.Args {
		sc = append(sc, a.support...)
	}
	for i := 1; i < len(sc); i++ {
		x := sc[i]
		j := i
		for j > 0 && StructCompare(sc[j-1], x) > 0 {
			sc[j] = sc[j-1]
			j--
		}
		sc[j] = x
	}
	w := 1
	for i := 1; i < len(sc); i++ {
		if sc[i] != sc[w-1] {
			sc[w] = sc[i]
			w++
		}
	}
	b.supScratch = sc
	out := b.span(w)
	copy(out, sc[:w])
	return out
}

// StructCompare totally orders expressions by structure alone,
// independent of the Builder that interned them: by operator, then leaf
// payload, then arity, then arguments recursively. Within one Builder
// it is consistent with (but coarser than — never equal for distinct
// interned exprs of the same builder, since interning is structural)
// pointer identity. Pool ids must never feed an order: they record
// interning history, which differs between per-worker builders.
func StructCompare(x, y *Expr) int {
	if x == y {
		return 0
	}
	if x.Op != y.Op {
		if x.Op < y.Op {
			return -1
		}
		return 1
	}
	cmpInt64 := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch x.Op {
	case OpConst, OpOpaque:
		return cmpInt64(x.K, y.K)
	case OpBool:
		switch {
		case x.B == y.B:
			return 0
		case y.B:
			return -1
		}
		return 1
	case OpParam:
		if c := cmpInt64(int64(x.Param.FormalIndex), int64(y.Param.FormalIndex)); c != 0 {
			return c
		}
		return strings.Compare(x.Param.Name, y.Param.Name)
	case OpGlobal:
		if c := strings.Compare(x.Global.Block, y.Global.Block); c != 0 {
			return c
		}
		return cmpInt64(int64(x.Global.Index), int64(y.Global.Index))
	}
	if c := cmpInt64(int64(len(x.Args)), int64(len(y.Args))); c != 0 {
		return c
	}
	for i := range x.Args {
		if c := StructCompare(x.Args[i], y.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Const returns the interned constant c.
func (b *Builder) Const(c int64) *Expr {
	if e, ok := b.consts[c]; ok {
		return e
	}
	e := b.alloc()
	e.Op = OpConst
	e.K = c
	b.intern(e)
	b.consts[c] = e
	return e
}

// Bool returns the interned boolean constant.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		if b.trueE == nil {
			b.trueE = b.alloc()
			b.trueE.Op = OpBool
			b.trueE.B = true
			b.intern(b.trueE)
		}
		return b.trueE
	}
	if b.falseE == nil {
		b.falseE = b.alloc()
		b.falseE.Op = OpBool
		b.intern(b.falseE)
	}
	return b.falseE
}

// ParamLeaf returns the leaf for a formal parameter's entry value.
func (b *Builder) ParamLeaf(s *sem.Symbol) *Expr {
	if e, ok := b.params[s]; ok {
		return e
	}
	e := b.alloc()
	e.Op = OpParam
	e.Param = s
	b.intern(e)
	b.params[s] = e
	return e
}

// GlobalLeaf returns the leaf for a COMMON global's entry value.
func (b *Builder) GlobalLeaf(g *sem.GlobalVar) *Expr {
	if e, ok := b.globals[g]; ok {
		return e
	}
	e := b.alloc()
	e.Op = OpGlobal
	e.Global = g
	b.intern(e)
	b.globals[g] = e
	return e
}

// Opaque returns the opaque expression with the given identity. Two
// opaque expressions are equal iff their identities are equal.
func (b *Builder) Opaque(id int64) *Expr {
	if e, ok := b.opaques[id]; ok {
		return e
	}
	e := b.alloc()
	e.Op = OpOpaque
	e.K = id
	b.intern(e)
	b.opaques[id] = e
	return e
}

// FreshOpaque returns an opaque expression with a new identity,
// distinct from all ids passed to Opaque (fresh ids are negative).
func (b *Builder) FreshOpaque() *Expr {
	b.nextAnon--
	return b.Opaque(b.nextAnon)
}

func hashKey(k internKey) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	h = (h ^ uint32(k.op)) * prime
	h = (h ^ k.a0) * prime
	h = (h ^ k.a1) * prime
	h = (h ^ k.a2) * prime
	return h
}

// find probes the open-addressed table for an interned interior node.
func (b *Builder) find(k internKey) *Expr {
	if len(b.table) == 0 {
		return nil
	}
	mask := uint32(len(b.table) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		s := &b.table[i]
		if s.e == nil {
			return nil
		}
		if s.key == k {
			return s.e
		}
	}
}

// insert adds a fresh interior node to the table, growing it first if
// the next entry would push the load factor past 3/4.
func (b *Builder) insert(k internKey, e *Expr) {
	if 4*(b.used+1) > 3*len(b.table) {
		b.growTable()
	}
	mask := uint32(len(b.table) - 1)
	i := hashKey(k) & mask
	for b.table[i].e != nil {
		i = (i + 1) & mask
	}
	b.table[i] = internSlot{key: k, e: e}
	b.used++
}

func (b *Builder) growTable() {
	n := 256
	if len(b.table) > 0 {
		n = 2 * len(b.table)
	}
	old := b.table
	b.table = make([]internSlot, n)
	mask := uint32(n - 1)
	for i := range old {
		s := old[i]
		if s.e == nil {
			continue
		}
		j := hashKey(s.key) & mask
		for b.table[j].e != nil {
			j = (j + 1) & mask
		}
		b.table[j] = s
	}
}

// overBudget applies the expression-size budget to a node about to be
// built from children totalling kidSize nodes.
func (b *Builder) overBudget(kidSize int) bool {
	if b.maxSize > 0 && 1+kidSize > b.maxSize {
		b.truncated++
		return true
	}
	return false
}

// node1, node2, node3 intern interior nodes after simplification
// decided to keep them. Fixed arities let the intern-table probe run
// BEFORE any allocation: on a hit — the common case once a program's
// expressions converge — the constructors touch only the arena-resident
// table and return the existing node.

func (b *Builder) node1(op Op, x *Expr) *Expr {
	if b.overBudget(x.size) {
		return b.FreshOpaque()
	}
	k := internKey{op: op, a0: x.id, a1: noKid, a2: noKid}
	if e := b.find(k); e != nil {
		return e
	}
	e := b.alloc()
	e.Op = op
	args := b.span(1)
	args[0] = x
	e.Args = args
	b.intern(e)
	b.insert(k, e)
	return e
}

func (b *Builder) node2(op Op, x, y *Expr) *Expr {
	if b.overBudget(x.size + y.size) {
		return b.FreshOpaque()
	}
	k := internKey{op: op, a0: x.id, a1: y.id, a2: noKid}
	if e := b.find(k); e != nil {
		return e
	}
	e := b.alloc()
	e.Op = op
	args := b.span(2)
	args[0], args[1] = x, y
	e.Args = args
	b.intern(e)
	b.insert(k, e)
	return e
}

func (b *Builder) node3(op Op, x, y, z *Expr) *Expr {
	if b.overBudget(x.size + y.size + z.size) {
		return b.FreshOpaque()
	}
	k := internKey{op: op, a0: x.id, a1: y.id, a2: z.id}
	if e := b.find(k); e != nil {
		return e
	}
	e := b.alloc()
	e.Op = op
	args := b.span(3)
	args[0], args[1], args[2] = x, y, z
	e.Args = args
	b.intern(e)
	b.insert(k, e)
	return e
}
