// Package symbolic implements hash-consed symbolic expressions over a
// procedure's entry values (formal parameters and COMMON globals).
//
// These expressions are the currency of the jump-function framework:
//   - a *forward jump function* J_s^y is a symbolic expression giving
//     the value of actual y at call site s in terms of the caller's
//     entry values;
//   - a *return jump function* R_p^x is a symbolic expression giving
//     the value of formal x on return from p in terms of p's entry
//     values.
//
// Expressions are interned in a Builder, so pointer equality is
// structural equality — this is what makes the value-numbering-based
// construction of §3 cheap. Construction folds integer constants and
// applies simple algebraic identities.
package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sem"
)

// Op enumerates symbolic expression operators.
type Op int

// OpInvalid is returned by FromASTOp for an operator with no symbolic
// counterpart. Builder.Binary maps it to a fresh opaque value, so an
// unmapped operator degrades to a non-constant jump function instead of
// crashing the analysis.
const OpInvalid Op = -1

const (
	OpConst  Op = iota // integer constant (K)
	OpBool             // boolean constant (B)
	OpParam            // entry value of a formal parameter (Param)
	OpGlobal           // entry value of a COMMON global (Global)
	OpOpaque           // unknown, non-constant value (K = identity)

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpPow
	OpNeg

	OpMod
	OpMax
	OpMin
	OpAbs

	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	OpAnd
	OpOr
	OpNot

	// OpGamma is the gated-SSA γ function: Args are [predicate, value
	// when true, value when false]. The paper (§4.2) observes that jump
	// functions built on gated single-assignment form would subsume the
	// "complete propagation" results; Gamma is what makes that possible
	// — a merged value stays evaluable once the predicate is known.
	OpGamma
)

var opNames = map[Op]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpBool: "bool", OpParam: "param", OpGlobal: "global",
	OpOpaque: "opaque",
	OpAdd:    "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**", OpNeg: "neg",
	OpMod: "MOD", OpMax: "MAX", OpMin: "MIN", OpAbs: "ABS",
	OpEq: ".EQ.", OpNe: ".NE.", OpLt: ".LT.", OpLe: ".LE.", OpGt: ".GT.", OpGe: ".GE.",
	OpAnd: ".AND.", OpOr: ".OR.", OpNot: ".NOT.", OpGamma: "γ",
}

func (o Op) String() string { return opNames[o] }

// Expr is an interned symbolic expression. Compare with ==.
type Expr struct {
	Op   Op
	Args []*Expr

	K      int64          // OpConst value; OpOpaque identity
	B      bool           // OpBool value
	Param  *sem.Symbol    // OpParam leaf
	Global *sem.GlobalVar // OpGlobal leaf

	id      int
	size    int  // node count, this node included
	opaque  bool // contains an OpOpaque anywhere
	support []*Expr
}

// Size returns the expression's node count (leaves are size 1). Shared
// subexpressions count once per occurrence, matching evaluation cost.
func (e *Expr) Size() int { return e.size }

// IsConst reports whether the expression is an integer constant.
func (e *Expr) IsConst() (int64, bool) { return e.K, e.Op == OpConst }

// IsBool reports whether the expression is a boolean constant.
func (e *Expr) IsBool() (bool, bool) { return e.B, e.Op == OpBool }

// HasOpaque reports whether any subexpression is opaque (and hence the
// expression can never evaluate to a constant).
func (e *Expr) HasOpaque() bool { return e.opaque }

// Support returns the Param/Global leaves the expression depends on —
// the "support" of a jump function in the paper's terminology. The
// result is shared; callers must not modify it.
func (e *Expr) Support() []*Expr { return e.support }

// String renders the expression readably, e.g. "(+ N 1)".
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		return fmt.Sprintf("%d", e.K)
	case OpBool:
		if e.B {
			return ".TRUE."
		}
		return ".FALSE."
	case OpParam:
		return e.Param.Name
	case OpGlobal:
		return e.Global.Key()
	case OpOpaque:
		return fmt.Sprintf("?%d", e.K)
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", e.Op, strings.Join(parts, " "))
}

// Builder interns expressions. One Builder serves a whole program
// analysis; it is not safe for concurrent use.
type Builder struct {
	byKey    map[nodeKey]*Expr
	params   map[*sem.Symbol]*Expr
	globals  map[*sem.GlobalVar]*Expr
	opaques  map[int64]*Expr
	consts   map[int64]*Expr
	nextID   int
	trueE    *Expr
	falseE   *Expr
	nextAnon int64 // generator for fresh opaque identities

	maxSize   int // expression-size budget; 0 = unlimited
	truncated int // expressions degraded to opaque by the budget
}

// SetMaxSize installs an expression-size budget: any interior node
// whose node count would exceed n is replaced by a fresh opaque value
// (which evaluates to ⊥ — a sound under-approximation). n <= 0 removes
// the budget.
func (b *Builder) SetMaxSize(n int) { b.maxSize = n }

// MaxSize returns the current expression-size budget (0 = unlimited),
// so per-worker builders can inherit the primary builder's cap.
func (b *Builder) MaxSize() int { return b.maxSize }

// Truncated reports how many expressions the size budget degraded to
// opaque since the builder was created (including counts folded in via
// AddTruncated).
func (b *Builder) Truncated() int { return b.truncated }

// AddTruncated folds n more truncation events into the builder's count.
// The parallel pipeline gives each worker its own Builder (the
// hash-consing maps are not goroutine-safe); after the workers join,
// their truncation counts are summed into the primary builder so the
// degradation warning reports the whole program's count, not one
// shard's. Call only after the contributing workers have finished.
func (b *Builder) AddTruncated(n int) {
	if n > 0 {
		b.truncated += n
	}
}

// NewBuilder returns an empty interning table.
func NewBuilder() *Builder {
	return &Builder{
		byKey:   make(map[nodeKey]*Expr),
		params:  make(map[*sem.Symbol]*Expr),
		globals: make(map[*sem.GlobalVar]*Expr),
		opaques: make(map[int64]*Expr),
		consts:  make(map[int64]*Expr),
	}
}

func (b *Builder) intern(e *Expr) *Expr {
	e.id = b.nextID
	b.nextID++
	// Compute derived facts once.
	e.size = 1
	for _, a := range e.Args {
		e.size += a.size
		if a.opaque {
			e.opaque = true
		}
	}
	if e.Op == OpOpaque {
		e.opaque = true
	}
	e.support = computeSupport(e)
	return e
}

func computeSupport(e *Expr) []*Expr {
	if e.Op == OpParam || e.Op == OpGlobal {
		return []*Expr{e}
	}
	// A support slice is immutable once interned, so when at most one
	// child contributes leaves the child's slice is shared outright —
	// most interior nodes take this allocation-free path.
	var first []*Expr
	n := 0
	for _, a := range e.Args {
		if len(a.support) > 0 {
			if first == nil {
				first = a.support
			}
			n += len(a.support)
		}
	}
	if n == len(first) {
		return first
	}
	out := make([]*Expr, 0, n)
	for _, a := range e.Args {
		out = append(out, a.support...)
	}
	// Order structurally, not by interning id: ids depend on which
	// Builder interned the leaf first, and the parallel pipeline builds
	// expressions in per-worker Builders. A structural order keeps the
	// support — and everything downstream of it, like the binding-graph
	// solver's evaluation order — identical between serial and parallel
	// runs. Distinct interned exprs of one builder never compare equal,
	// so duplicates are exactly the adjacent repeated pointers.
	sort.Slice(out, func(i, j int) bool { return StructCompare(out[i], out[j]) < 0 })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// StructCompare totally orders expressions by structure alone,
// independent of the Builder that interned them: by operator, then leaf
// payload, then arity, then arguments recursively. Within one Builder
// it is consistent with (but coarser than — never equal for distinct
// interned exprs of the same builder, since interning is structural)
// pointer identity.
func StructCompare(x, y *Expr) int {
	if x == y {
		return 0
	}
	if x.Op != y.Op {
		if x.Op < y.Op {
			return -1
		}
		return 1
	}
	cmpInt64 := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch x.Op {
	case OpConst, OpOpaque:
		return cmpInt64(x.K, y.K)
	case OpBool:
		switch {
		case x.B == y.B:
			return 0
		case y.B:
			return -1
		}
		return 1
	case OpParam:
		if c := cmpInt64(int64(x.Param.FormalIndex), int64(y.Param.FormalIndex)); c != 0 {
			return c
		}
		return strings.Compare(x.Param.Name, y.Param.Name)
	case OpGlobal:
		if c := strings.Compare(x.Global.Block, y.Global.Block); c != 0 {
			return c
		}
		return cmpInt64(int64(x.Global.Index), int64(y.Global.Index))
	}
	if c := cmpInt64(int64(len(x.Args)), int64(len(y.Args))); c != 0 {
		return c
	}
	for i := range x.Args {
		if c := StructCompare(x.Args[i], y.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Const returns the interned constant c.
func (b *Builder) Const(c int64) *Expr {
	if e, ok := b.consts[c]; ok {
		return e
	}
	e := b.intern(&Expr{Op: OpConst, K: c})
	b.consts[c] = e
	return e
}

// Bool returns the interned boolean constant.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		if b.trueE == nil {
			b.trueE = b.intern(&Expr{Op: OpBool, B: true})
		}
		return b.trueE
	}
	if b.falseE == nil {
		b.falseE = b.intern(&Expr{Op: OpBool, B: false})
	}
	return b.falseE
}

// ParamLeaf returns the leaf for a formal parameter's entry value.
func (b *Builder) ParamLeaf(s *sem.Symbol) *Expr {
	if e, ok := b.params[s]; ok {
		return e
	}
	e := b.intern(&Expr{Op: OpParam, Param: s})
	b.params[s] = e
	return e
}

// GlobalLeaf returns the leaf for a COMMON global's entry value.
func (b *Builder) GlobalLeaf(g *sem.GlobalVar) *Expr {
	if e, ok := b.globals[g]; ok {
		return e
	}
	e := b.intern(&Expr{Op: OpGlobal, Global: g})
	b.globals[g] = e
	return e
}

// Opaque returns the opaque expression with the given identity. Two
// opaque expressions are equal iff their identities are equal.
func (b *Builder) Opaque(id int64) *Expr {
	if e, ok := b.opaques[id]; ok {
		return e
	}
	e := b.intern(&Expr{Op: OpOpaque, K: id})
	b.opaques[id] = e
	return e
}

// FreshOpaque returns an opaque expression with a new identity,
// distinct from all ids passed to Opaque (fresh ids are negative).
func (b *Builder) FreshOpaque() *Expr {
	b.nextAnon--
	return b.Opaque(b.nextAnon)
}

// nodeKey identifies an interior node by operator and argument ids.
// The widest constructor (Gamma) has three arguments; unused slots hold
// -1, which no interned expression's id can be.
type nodeKey struct {
	op         Op
	a0, a1, a2 int
}

// node interns an interior node after simplification decided to keep it.
func (b *Builder) node(op Op, args ...*Expr) *Expr {
	if b.maxSize > 0 {
		size := 1
		for _, a := range args {
			size += a.size
		}
		if size > b.maxSize {
			b.truncated++
			return b.FreshOpaque()
		}
	}
	if len(args) > 3 {
		panic("symbolic: interior node arity exceeds nodeKey capacity")
	}
	k := nodeKey{op: op, a0: -1, a1: -1, a2: -1}
	if len(args) > 0 {
		k.a0 = args[0].id
	}
	if len(args) > 1 {
		k.a1 = args[1].id
	}
	if len(args) > 2 {
		k.a2 = args[2].id
	}
	if e, ok := b.byKey[k]; ok {
		return e
	}
	e := b.intern(&Expr{Op: op, Args: args})
	b.byKey[k] = e
	return e
}
