package symbolic

import (
	"fmt"
	"testing"
)

// buildDistinct interns count structurally distinct non-leaf
// expressions over the param leaf n and returns them in construction
// order.
func buildDistinct(b *Builder, n *Expr, count int) []*Expr {
	out := make([]*Expr, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, b.Binary(OpAdd, n, b.Const(int64(i+1))))
	}
	return out
}

// TestArenaGrowth pushes one builder well past several slab chunks and
// checks the properties the arena must preserve across reallocation:
// node handles stay valid (slabs grow by chaining fresh chunks, never
// by moving old ones) and interning still dedups against nodes in
// earlier chunks.
func TestArenaGrowth(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	const count = 4 * exprChunk
	exprs := buildDistinct(b, n, count)

	if got := b.NumChunks(); got < 2 {
		t.Fatalf("expected multiple arena chunks after %d interns, got %d", b.NumExprs(), got)
	}
	// count OpAdd nodes + count OpConst leaves + the shared param leaf.
	if got, want := b.NumExprs(), 2*count+1; got != want {
		t.Errorf("NumExprs = %d, want %d", got, want)
	}
	// Handles taken before growth still describe the same nodes.
	for i, e := range exprs {
		if e.Op != OpAdd {
			t.Fatalf("expr %d: op changed to %v after arena growth", i, e.Op)
		}
		if c, ok := e.Args[1].IsConst(); !ok || c != int64(i+1) {
			t.Fatalf("expr %d: rhs no longer the constant %d", i, i+1)
		}
	}
	// Re-interning the same structures must hit the intern table, not
	// allocate: pointer identity across the whole id space.
	before := b.NumExprs()
	again := buildDistinct(b, n, count)
	if b.NumExprs() != before {
		t.Errorf("re-interning allocated %d new nodes", b.NumExprs()-before)
	}
	for i := range exprs {
		if exprs[i] != again[i] {
			t.Fatalf("expr %d: re-interning returned a different node", i)
		}
	}
}

// TestInternTableCollisions drives the open-addressed intern table
// through many growth cycles (the table starts small) with keys that
// necessarily collide along the way, and checks that lookups never
// confuse two distinct structures and never duplicate an equal one.
func TestInternTableCollisions(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	type made struct {
		e     *Expr
		shape string
	}
	var all []made
	// Mix shapes so keys differ in op, in kid ids, and in arity. The
	// constants start at 2 to stay clear of the identity folds (n+0 and
	// n*1 both simplify to n, which would look like aliasing here).
	for i := 0; i < 3000; i++ {
		c := b.Const(int64(i + 2))
		var e *Expr
		var shape string
		switch i % 3 {
		case 0:
			e, shape = b.Binary(OpAdd, n, c), fmt.Sprintf("add%d", i)
		case 1:
			e, shape = b.Binary(OpMul, n, c), fmt.Sprintf("mul%d", i)
		default:
			e, shape = b.Binary(OpSub, c, n), fmt.Sprintf("sub%d", i)
		}
		all = append(all, made{e, shape})
	}
	seen := make(map[*Expr]string, len(all))
	for _, m := range all {
		if prev, dup := seen[m.e]; dup && prev != m.shape {
			t.Fatalf("collision aliased %s and %s to one node", prev, m.shape)
		}
		seen[m.e] = m.shape
	}
	// Rebuild every shape: each must intern to its original node.
	for i, m := range all {
		c := b.Const(int64(i + 2))
		var e *Expr
		switch i % 3 {
		case 0:
			e = b.Binary(OpAdd, n, c)
		case 1:
			e = b.Binary(OpMul, n, c)
		default:
			e = b.Binary(OpSub, c, n)
		}
		if e != m.e {
			t.Fatalf("%s re-interned to a different node", m.shape)
		}
	}
}

// TestStructCompareAcrossPoolLayouts is the determinism regression for
// the u32-indexed pool: two builders interning the same expressions in
// different orders assign different ids, and StructCompare must still
// order every pair identically (structural order, never pool order).
// This is what keeps per-worker builders in the parallel pipeline
// byte-compatible with the serial one.
func TestStructCompareAcrossPoolLayouts(t *testing.T) {
	build := func(b *Builder, reversed bool) []*Expr {
		n := b.ParamLeaf(newSym("N"))
		m := b.ParamLeaf(newSym("M"))
		mk := []func() *Expr{
			func() *Expr { return b.Binary(OpAdd, n, b.Const(1)) },
			func() *Expr { return b.Binary(OpAdd, m, b.Const(1)) },
			func() *Expr { return b.Binary(OpMul, n, m) },
			func() *Expr { return b.Binary(OpSub, b.Const(7), n) },
			func() *Expr { return b.Binary(OpDiv, m, b.Const(2)) },
			func() *Expr { return b.Gamma(b.Binary(OpLt, n, m), n, m) },
			func() *Expr { return b.Const(42) },
			func() *Expr { return n },
		}
		out := make([]*Expr, len(mk))
		if reversed {
			for i := len(mk) - 1; i >= 0; i-- {
				out[i] = mk[i]()
			}
		} else {
			for i := range mk {
				out[i] = mk[i]()
			}
		}
		return out
	}
	fwd := build(NewBuilder(), false)
	rev := build(NewBuilder(), true)
	for i := range fwd {
		for j := range fwd {
			got, want := StructCompare(rev[i], rev[j]), StructCompare(fwd[i], fwd[j])
			if got != want {
				t.Errorf("compare(%d,%d): reversed layout gives %d, forward gives %d",
					i, j, got, want)
			}
		}
	}
}

// FuzzStructCompareOrder generalizes the pool-layout regression: an
// arbitrary byte string picks a set of expressions, which two builders
// intern in opposite orders. The comparison matrix must be
// layout-independent and a strict weak order (antisymmetric, and zero
// only for the same structure).
func FuzzStructCompareOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{9, 9, 9, 1, 200, 3, 77})
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		build := func(reversed bool) []*Expr {
			b := NewBuilder()
			n := b.ParamLeaf(newSym("N"))
			mk := make([]func() *Expr, len(data))
			for i := range data {
				c := int64(data[i])
				switch data[i] % 5 {
				case 0:
					mk[i] = func() *Expr { return b.Const(c) }
				case 1:
					mk[i] = func() *Expr { return b.Binary(OpAdd, n, b.Const(c)) }
				case 2:
					mk[i] = func() *Expr { return b.Binary(OpMul, b.Const(c), n) }
				case 3:
					mk[i] = func() *Expr { return b.Binary(OpSub, n, b.Const(c)) }
				default:
					mk[i] = func() *Expr { return b.Gamma(b.Binary(OpLt, n, b.Const(c)), n, b.Const(c)) }
				}
			}
			out := make([]*Expr, len(mk))
			if reversed {
				for i := len(mk) - 1; i >= 0; i-- {
					out[i] = mk[i]()
				}
			} else {
				for i := range mk {
					out[i] = mk[i]()
				}
			}
			return out
		}
		fwd := build(false)
		rev := build(true)
		for i := range fwd {
			for j := range fwd {
				got, want := StructCompare(rev[i], rev[j]), StructCompare(fwd[i], fwd[j])
				if got != want {
					t.Fatalf("compare(%d,%d): layouts disagree (%d vs %d)", i, j, got, want)
				}
				if back := StructCompare(fwd[j], fwd[i]); back != -want {
					t.Fatalf("compare(%d,%d): not antisymmetric (%d vs %d)", i, j, want, back)
				}
				if (want == 0) != (fwd[i] == fwd[j]) {
					t.Fatalf("compare(%d,%d)=0 must coincide with interned identity", i, j)
				}
			}
		}
	})
}
