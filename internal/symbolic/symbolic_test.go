package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/sem"
)

func newSym(name string) *sem.Symbol {
	return &sem.Symbol{Name: name, Kind: sem.SymFormal, Type: ast.TypeInteger}
}

func TestInterning(t *testing.T) {
	b := NewBuilder()
	n := newSym("N")
	x1 := b.Binary(OpAdd, b.ParamLeaf(n), b.Const(1))
	x2 := b.Binary(OpAdd, b.ParamLeaf(n), b.Const(1))
	if x1 != x2 {
		t.Error("structurally equal expressions must be pointer-equal")
	}
	if b.Const(5) != b.Const(5) || b.Bool(true) != b.Bool(true) {
		t.Error("constants must intern")
	}
	if b.Opaque(3) != b.Opaque(3) {
		t.Error("same-identity opaques must intern")
	}
	if b.Opaque(3) == b.Opaque(4) {
		t.Error("different-identity opaques must differ")
	}
	if b.FreshOpaque() == b.FreshOpaque() {
		t.Error("fresh opaques must be distinct")
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	cases := []struct {
		op   Op
		x, y int64
		want int64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpMul, 4, 5, 20},
		{OpDiv, 7, 2, 3},
		{OpDiv, -7, 2, -3}, // trunc toward zero
		{OpPow, 2, 10, 1024},
		{OpPow, 3, 0, 1},
		{OpMod, 7, 3, 1},
		{OpMod, -7, 3, -1}, // FORTRAN MOD keeps the dividend's sign
		{OpMax, 3, 9, 9},
		{OpMin, 3, 9, 3},
	}
	for _, c := range cases {
		e := b.Binary(c.op, b.Const(c.x), b.Const(c.y))
		if got, ok := e.IsConst(); !ok || got != c.want {
			t.Errorf("%v(%d,%d) = %v, want %d", c.op, c.x, c.y, e, c.want)
		}
	}
}

func TestUndefinedFoldsToOpaque(t *testing.T) {
	b := NewBuilder()
	if e := b.Binary(OpDiv, b.Const(1), b.Const(0)); !e.HasOpaque() {
		t.Errorf("1/0 = %v, want opaque", e)
	}
	if e := b.Binary(OpMod, b.Const(1), b.Const(0)); !e.HasOpaque() {
		t.Errorf("MOD(1,0) = %v, want opaque", e)
	}
	if e := b.Binary(OpPow, b.Const(0), b.Const(-1)); !e.HasOpaque() {
		t.Errorf("0**-1 = %v, want opaque", e)
	}
}

func TestIdentitiesPreservePassThrough(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	cases := []*Expr{
		b.Binary(OpAdd, n, b.Const(0)),
		b.Binary(OpAdd, b.Const(0), n),
		b.Binary(OpSub, n, b.Const(0)),
		b.Binary(OpMul, n, b.Const(1)),
		b.Binary(OpMul, b.Const(1), n),
		b.Binary(OpDiv, n, b.Const(1)),
		b.Binary(OpPow, n, b.Const(1)),
	}
	for i, e := range cases {
		if e != n {
			t.Errorf("case %d: %v should simplify to N", i, e)
		}
	}
	if e := b.Binary(OpMul, n, b.Const(0)); mustConst(t, e) != 0 {
		t.Error("N*0 should fold to 0")
	}
	if e := b.Binary(OpSub, n, n); mustConst(t, e) != 0 {
		t.Error("N-N should fold to 0")
	}
	if e := b.Binary(OpPow, n, b.Const(0)); mustConst(t, e) != 1 {
		t.Error("N**0 should fold to 1")
	}
}

func mustConst(t *testing.T, e *Expr) int64 {
	t.Helper()
	c, ok := e.IsConst()
	if !ok {
		t.Fatalf("%v is not constant", e)
	}
	return c
}

func TestCompareFolding(t *testing.T) {
	b := NewBuilder()
	if v, ok := b.Binary(OpLt, b.Const(1), b.Const(2)).IsBool(); !ok || !v {
		t.Error("1<2 should fold to true")
	}
	if v, ok := b.Binary(OpEq, b.Const(1), b.Const(2)).IsBool(); !ok || v {
		t.Error("1==2 should fold to false")
	}
	n := b.ParamLeaf(newSym("N"))
	if v, ok := b.Binary(OpEq, n, n).IsBool(); !ok || !v {
		t.Error("N==N should fold to true")
	}
	if v, ok := b.Binary(OpLt, n, n).IsBool(); !ok || v {
		t.Error("N<N should fold to false")
	}
	if _, ok := b.Binary(OpLt, n, b.Const(2)).IsBool(); ok {
		t.Error("N<2 should not fold")
	}
}

func TestLogicFolding(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	l := b.Binary(OpLt, n, b.Const(2))
	if b.Binary(OpAnd, b.Bool(true), l) != l {
		t.Error("true .AND. l should be l")
	}
	if v, ok := b.Binary(OpAnd, b.Bool(false), l).IsBool(); !ok || v {
		t.Error("false .AND. l should be false")
	}
	if v, ok := b.Binary(OpOr, l, b.Bool(true)).IsBool(); !ok || !v {
		t.Error("l .OR. true should be true")
	}
	if b.Binary(OpOr, b.Bool(false), l) != l {
		t.Error("false .OR. l should be l")
	}
	if b.Not(b.Not(l)) != l {
		t.Error("double negation should cancel")
	}
	if v, ok := b.Not(b.Bool(true)).IsBool(); !ok || v {
		t.Error(".NOT. true should fold")
	}
}

func TestNegAndAbs(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	if mustConst(t, b.Neg(b.Const(5))) != -5 {
		t.Error("-5 fold")
	}
	if b.Neg(b.Neg(n)) != n {
		t.Error("double negation")
	}
	if mustConst(t, b.Abs(b.Const(-3))) != 3 || mustConst(t, b.Abs(b.Const(3))) != 3 {
		t.Error("ABS fold")
	}
	if b.Abs(b.Abs(n)) != b.Abs(n) {
		t.Error("ABS idempotent")
	}
}

func TestIntrinsicConstruction(t *testing.T) {
	b := NewBuilder()
	if mustConst(t, b.Intrinsic("MAX", []*Expr{b.Const(1), b.Const(7), b.Const(3)})) != 7 {
		t.Error("variadic MAX")
	}
	if mustConst(t, b.Intrinsic("MIN", []*Expr{b.Const(4), b.Const(2)})) != 2 {
		t.Error("MIN")
	}
	if mustConst(t, b.Intrinsic("MOD", []*Expr{b.Const(9), b.Const(4)})) != 1 {
		t.Error("MOD")
	}
	if mustConst(t, b.Intrinsic("IABS", []*Expr{b.Const(-2)})) != 2 {
		t.Error("IABS")
	}
	if !b.Intrinsic("UNKNOWN", nil).HasOpaque() {
		t.Error("unknown intrinsic should be opaque")
	}
}

func TestSupport(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	m := b.ParamLeaf(newSym("M"))
	g := b.GlobalLeaf(&sem.GlobalVar{Block: "B", Index: 0, Name: "G"})
	e := b.Binary(OpAdd, b.Binary(OpMul, n, m), b.Binary(OpAdd, g, n))
	sup := e.Support()
	if len(sup) != 3 {
		t.Fatalf("support = %v, want 3 leaves", sup)
	}
	if len(b.Const(5).Support()) != 0 {
		t.Error("constants have empty support")
	}
	if len(n.Support()) != 1 || n.Support()[0] != n {
		t.Error("param supports itself")
	}
}

func TestOpaquePropagation(t *testing.T) {
	b := NewBuilder()
	o := b.FreshOpaque()
	e := b.Binary(OpAdd, o, b.Const(1))
	if !e.HasOpaque() {
		t.Error("opaque must propagate")
	}
	n := b.ParamLeaf(newSym("N"))
	if b.Binary(OpAdd, n, b.Const(1)).HasOpaque() {
		t.Error("non-opaque marked opaque")
	}
}

func TestEval(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	m := b.ParamLeaf(newSym("M"))
	e := b.Binary(OpAdd, b.Binary(OpMul, n, b.Const(2)), m) // 2N + M

	env := func(vals map[*Expr]lattice.Value) Env {
		return ConstEnv(vals, lattice.BottomValue())
	}

	v := Eval(e, env(map[*Expr]lattice.Value{n: lattice.ConstValue(3), m: lattice.ConstValue(4)}))
	if c, ok := v.IsConst(); !ok || c != 10 {
		t.Errorf("eval = %v, want 10", v)
	}

	v = Eval(e, env(map[*Expr]lattice.Value{n: lattice.ConstValue(3), m: lattice.BottomValue()}))
	if !v.IsBottom() {
		t.Errorf("eval with ⊥ input = %v, want ⊥", v)
	}

	v = Eval(e, env(map[*Expr]lattice.Value{n: lattice.ConstValue(3), m: lattice.TopValue()}))
	if !v.IsTop() {
		t.Errorf("eval with ⊤ input = %v, want ⊤ (optimistic)", v)
	}

	if !Eval(b.FreshOpaque(), env(nil)).IsBottom() {
		t.Error("opaque evaluates to ⊥")
	}
	if !Eval(b.Bool(true), env(nil)).IsBottom() {
		t.Error("booleans evaluate to ⊥ (only integers propagate)")
	}
	if c, ok := Eval(b.Neg(n), env(map[*Expr]lattice.Value{n: lattice.ConstValue(3)})).IsConst(); !ok || c != -3 {
		t.Error("neg eval")
	}
	if c, ok := Eval(b.Abs(n), env(map[*Expr]lattice.Value{n: lattice.ConstValue(-3)})).IsConst(); !ok || c != 3 {
		t.Error("abs eval")
	}
}

func TestEvalDivByZeroIsBottom(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	e := b.Binary(OpDiv, b.Const(1), n)
	v := Eval(e, ConstEnv(map[*Expr]lattice.Value{n: lattice.ConstValue(0)}, lattice.BottomValue()))
	if !v.IsBottom() {
		t.Errorf("1/0 at eval time = %v, want ⊥", v)
	}
}

func TestSubstitute(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	m := b.ParamLeaf(newSym("M"))
	e := b.Binary(OpAdd, n, b.Binary(OpMul, m, b.Const(3))) // N + 3M

	// N→5, M→2 should fold to 11.
	got := b.Substitute(e, func(leaf *Expr) *Expr {
		switch leaf {
		case n:
			return b.Const(5)
		case m:
			return b.Const(2)
		}
		return leaf
	})
	if mustConst(t, got) != 11 {
		t.Errorf("substitute+fold = %v", got)
	}

	// Substituting a param for a param keeps a symbolic polynomial.
	k := b.ParamLeaf(newSym("K"))
	got = b.Substitute(e, func(leaf *Expr) *Expr {
		if leaf == n {
			return k
		}
		return leaf
	})
	if got.HasOpaque() {
		t.Error("param-for-param substitution should stay transparent")
	}
	wantSup := 2
	if len(got.Support()) != wantSup {
		t.Errorf("support after substitution = %d, want %d", len(got.Support()), wantSup)
	}
}

// Property: folding agrees with evaluating the unfolded tree — build a
// random expression two ways (folded via Builder, and evaluated
// numerically) and compare.
func TestFoldMatchesEval(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpPow, OpMod, OpMax, OpMin}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		// Random constant tree of depth 3.
		var gen func(d int) (*Expr, int64, bool)
		gen = func(d int) (*Expr, int64, bool) {
			if d == 0 || r.Intn(3) == 0 {
				c := int64(r.Intn(11) - 5)
				return b.Const(c), c, true
			}
			op := ops[r.Intn(len(ops))]
			if op == OpPow {
				// Keep exponents small and non-negative.
				xe, xv, xok := gen(d - 1)
				c := int64(r.Intn(4))
				e := b.Binary(op, xe, b.Const(c))
				v, ok := IntBinop(op, xv, c)
				return e, v, xok && ok
			}
			xe, xv, xok := gen(d - 1)
			ye, yv, yok := gen(d - 1)
			e := b.Binary(op, xe, ye)
			v, ok := IntBinop(op, xv, yv)
			return e, v, xok && yok && ok
		}
		e, want, defined := gen(3)
		if !defined {
			// Undefined somewhere: the folded expr must be opaque or the
			// undefinedness was masked by an identity (e.g. 0 * (1/0) —
			// our folding short-circuits 0*x). Either is acceptable;
			// just require that if it claims a constant while some
			// sub-evaluation was undefined, we do not compare.
			return true
		}
		got, ok := e.IsConst()
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	g := b.GlobalLeaf(&sem.GlobalVar{Block: "BLK", Index: 1, Name: "Q"})
	e := b.Binary(OpAdd, n, g)
	s := e.String()
	if s != "(+ N BLK#1)" {
		t.Errorf("String = %q", s)
	}
	if b.Bool(true).String() != ".TRUE." || b.Bool(false).String() != ".FALSE." {
		t.Error("bool strings")
	}
	if b.Opaque(7).String() != "?7" {
		t.Error("opaque string")
	}
}

func TestFromASTOp(t *testing.T) {
	pairs := []struct {
		a ast.Op
		s Op
	}{
		{ast.OpAdd, OpAdd}, {ast.OpSub, OpSub}, {ast.OpMul, OpMul},
		{ast.OpDiv, OpDiv}, {ast.OpPow, OpPow}, {ast.OpEq, OpEq},
		{ast.OpNe, OpNe}, {ast.OpLt, OpLt}, {ast.OpLe, OpLe},
		{ast.OpGt, OpGt}, {ast.OpGe, OpGe}, {ast.OpAnd, OpAnd},
		{ast.OpOr, OpOr}, {ast.OpNot, OpNot}, {ast.OpNeg, OpNeg},
	}
	for _, p := range pairs {
		if FromASTOp(p.a) != p.s {
			t.Errorf("FromASTOp(%v) = %v, want %v", p.a, FromASTOp(p.a), p.s)
		}
	}
}

func TestGammaConstruction(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	cond := b.Binary(OpEq, n, b.Const(1))
	g := b.Gamma(cond, b.Const(5), b.Const(6))
	if g.Op != OpGamma {
		t.Fatalf("gamma = %v", g)
	}
	// Folds on a constant predicate.
	if v := b.Gamma(b.Bool(true), b.Const(5), b.Const(6)); mustConst(t, v) != 5 {
		t.Error("true gamma should fold to then-arm")
	}
	if v := b.Gamma(b.Bool(false), b.Const(5), b.Const(6)); mustConst(t, v) != 6 {
		t.Error("false gamma should fold to else-arm")
	}
	// Folds when the arms agree.
	if v := b.Gamma(cond, b.Const(9), b.Const(9)); mustConst(t, v) != 9 {
		t.Error("equal arms should fold")
	}
	// Support includes the predicate's leaves.
	if len(g.Support()) != 1 || g.Support()[0] != n {
		t.Errorf("gamma support = %v", g.Support())
	}
}

func TestGammaEval(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	cond := b.Binary(OpEq, n, b.Const(1))
	g := b.Gamma(cond, b.Const(5), b.Const(6))

	env := func(v lattice.Value) Env {
		return ConstEnv(map[*Expr]lattice.Value{n: v}, lattice.BottomValue())
	}
	if c, ok := Eval(g, env(lattice.ConstValue(1))).IsConst(); !ok || c != 5 {
		t.Errorf("gamma(N=1) = %v", Eval(g, env(lattice.ConstValue(1))))
	}
	if c, ok := Eval(g, env(lattice.ConstValue(2))).IsConst(); !ok || c != 6 {
		t.Errorf("gamma(N=2) = %v", Eval(g, env(lattice.ConstValue(2))))
	}
	// Unknown predicate with distinct arms: the meet, i.e. ⊥.
	if !Eval(g, env(lattice.BottomValue())).IsBottom() {
		t.Error("gamma with unknown predicate and distinct arms should be ⊥")
	}
	// Unknown predicate with agreeing arms folds at construction; build
	// an unfoldable variant via substitution instead.
	g2 := b.Gamma(cond, b.Binary(OpAdd, n, b.Const(4)), b.Const(5))
	if c, ok := Eval(g2, env(lattice.ConstValue(1))).IsConst(); !ok || c != 5 {
		t.Errorf("gamma arm expression eval = %v", Eval(g2, env(lattice.ConstValue(1))))
	}
}

func TestGammaSubstitute(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	cond := b.Binary(OpEq, n, b.Const(1))
	g := b.Gamma(cond, b.Const(5), b.Const(6))
	// Substituting N=1 folds the predicate and hence the gamma.
	out := b.Substitute(g, func(leaf *Expr) *Expr {
		if leaf == n {
			return b.Const(1)
		}
		return leaf
	})
	if mustConst(t, out) != 5 {
		t.Errorf("substituted gamma = %v", out)
	}
}

func TestEvalBool(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	envC := ConstEnv(map[*Expr]lattice.Value{n: lattice.ConstValue(3)}, lattice.BottomValue())
	envB := ConstEnv(nil, lattice.BottomValue())

	lt := b.Binary(OpLt, n, b.Const(5))
	if v, ok := EvalBool(lt, envC); !ok || !v {
		t.Error("3 < 5 should be true")
	}
	if _, ok := EvalBool(lt, envB); ok {
		t.Error("unknown N should be undecided")
	}
	// Short-circuit: false .AND. unknown = false.
	f := b.Binary(OpEq, n, b.Const(9))
	unknown := b.Binary(OpGt, b.FreshOpaque(), b.Const(0))
	and := b.node2(OpAnd, f, unknown) // bypass folding to exercise EvalBool
	if v, ok := EvalBool(and, envC); !ok || v {
		t.Error("false .AND. unknown should be false")
	}
	tr := b.Binary(OpLe, n, b.Const(3))
	or := b.node2(OpOr, unknown, tr)
	if v, ok := EvalBool(or, envC); !ok || !v {
		t.Error("unknown .OR. true should be true")
	}
	not := b.node1(OpNot, f)
	if v, ok := EvalBool(not, envC); !ok || !v {
		t.Error(".NOT. false should be true")
	}
}

// TestSubstituteIdentity: substituting every leaf for itself is the
// identity (interning makes this literal pointer equality).
func TestSubstituteIdentity(t *testing.T) {
	b := NewBuilder()
	n := b.ParamLeaf(newSym("N"))
	m := b.ParamLeaf(newSym("M"))
	exprs := []*Expr{
		n,
		b.Const(5),
		b.Binary(OpAdd, n, b.Binary(OpMul, m, b.Const(3))),
		b.Gamma(b.Binary(OpLt, n, m), n, b.Neg(m)),
		b.Intrinsic("MAX", []*Expr{n, m, b.Const(0)}),
		b.Not(b.Binary(OpEq, n, b.Const(1))),
	}
	for _, e := range exprs {
		if got := b.Substitute(e, func(leaf *Expr) *Expr { return leaf }); got != e {
			t.Errorf("identity substitution changed %v into %v", e, got)
		}
	}
}
