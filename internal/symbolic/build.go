package symbolic

import "repro/internal/ast"

// Constructors with simplification. Every constructor returns an
// interned expression; constant operands fold, and a handful of
// algebraic identities keep pass-through parameters recognizable
// (e.g. N+0 simplifies to N, so a formal passed through arithmetic
// no-ops still matches the pass-through jump function).

// Binary builds a binary arithmetic/relational/logical node. OpInvalid
// (an operator FromASTOp could not map) yields a fresh opaque value, so
// an internal inconsistency degrades to a non-constant jump function
// rather than killing the process.
func (b *Builder) Binary(op Op, x, y *Expr) *Expr {
	switch op {
	case OpInvalid:
		return b.FreshOpaque()
	case OpAdd, OpSub, OpMul, OpDiv, OpPow, OpMod, OpMax, OpMin:
		return b.arith(op, x, y)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return b.compare(op, x, y)
	case OpAnd, OpOr:
		return b.logic(op, x, y)
	}
	return b.node2(op, x, y)
}

// FromASTOp converts an ast binary operator to the symbolic Op. An
// operator with no mapping returns OpInvalid (which Binary turns into
// an opaque, non-constant value); it never panics, so a front-end bug
// cannot crash an analysis.
func FromASTOp(op ast.Op) Op {
	switch op {
	case ast.OpAdd:
		return OpAdd
	case ast.OpSub:
		return OpSub
	case ast.OpMul:
		return OpMul
	case ast.OpDiv:
		return OpDiv
	case ast.OpPow:
		return OpPow
	case ast.OpEq:
		return OpEq
	case ast.OpNe:
		return OpNe
	case ast.OpLt:
		return OpLt
	case ast.OpLe:
		return OpLe
	case ast.OpGt:
		return OpGt
	case ast.OpGe:
		return OpGe
	case ast.OpAnd:
		return OpAnd
	case ast.OpOr:
		return OpOr
	case ast.OpNot:
		return OpNot
	case ast.OpNeg:
		return OpNeg
	}
	return OpInvalid
}

func (b *Builder) arith(op Op, x, y *Expr) *Expr {
	xc, xIsC := x.IsConst()
	yc, yIsC := y.IsConst()
	if xIsC && yIsC {
		if v, ok := IntBinop(op, xc, yc); ok {
			return b.Const(v)
		}
		return b.FreshOpaque() // undefined (e.g. division by zero)
	}
	// Identities that preserve pass-through shapes.
	switch op {
	case OpAdd:
		if xIsC && xc == 0 {
			return y
		}
		if yIsC && yc == 0 {
			return x
		}
		// Canonicalize: constant on the right.
		if xIsC {
			x, y = y, x
		}
	case OpSub:
		if yIsC && yc == 0 {
			return x
		}
		if x == y {
			return b.Const(0)
		}
	case OpMul:
		if xIsC {
			x, y = y, x
			xc, xIsC, yc, yIsC = yc, yIsC, xc, xIsC
		}
		if yIsC {
			switch yc {
			case 0:
				return b.Const(0)
			case 1:
				return x
			}
		}
	case OpDiv:
		if yIsC && yc == 1 {
			return x
		}
		if yIsC && yc == 0 {
			return b.FreshOpaque()
		}
	case OpPow:
		if yIsC {
			switch yc {
			case 0:
				return b.Const(1)
			case 1:
				return x
			}
		}
		if xIsC && xc == 1 {
			return b.Const(1)
		}
	case OpMax, OpMin:
		if x == y {
			return x
		}
		// Canonicalize commutative operands structurally: interning ids
		// differ between per-worker builders, so an id-based order would
		// make parallel runs intern (MAX a b) where serial runs intern
		// (MAX b a).
		if StructCompare(x, y) > 0 {
			x, y = y, x
		}
	}
	return b.node2(op, x, y)
}

func (b *Builder) compare(op Op, x, y *Expr) *Expr {
	if xc, ok := x.IsConst(); ok {
		if yc, ok2 := y.IsConst(); ok2 {
			return b.Bool(IntCompare(op, xc, yc))
		}
	}
	if x == y && !x.opaque {
		// x ⊙ x folds for non-opaque x (opaque values are distinct
		// unknowns only when their identities differ, so x==x is safe
		// even then, but stay conservative about NaN-free integers only).
		switch op {
		case OpEq, OpLe, OpGe:
			return b.Bool(true)
		case OpNe, OpLt, OpGt:
			return b.Bool(false)
		}
	}
	return b.node2(op, x, y)
}

func (b *Builder) logic(op Op, x, y *Expr) *Expr {
	xb, xIsB := x.IsBool()
	yb, yIsB := y.IsBool()
	switch op {
	case OpAnd:
		if xIsB {
			if !xb {
				return b.Bool(false)
			}
			return y
		}
		if yIsB {
			if !yb {
				return b.Bool(false)
			}
			return x
		}
	case OpOr:
		if xIsB {
			if xb {
				return b.Bool(true)
			}
			return y
		}
		if yIsB {
			if yb {
				return b.Bool(true)
			}
			return x
		}
	}
	if x == y {
		return x
	}
	if StructCompare(x, y) > 0 {
		x, y = y, x
	}
	return b.node2(op, x, y)
}

// Neg builds unary minus.
func (b *Builder) Neg(x *Expr) *Expr {
	if c, ok := x.IsConst(); ok {
		return b.Const(-c)
	}
	if x.Op == OpNeg {
		return x.Args[0]
	}
	return b.node1(OpNeg, x)
}

// Not builds logical negation.
func (b *Builder) Not(x *Expr) *Expr {
	if v, ok := x.IsBool(); ok {
		return b.Bool(!v)
	}
	if x.Op == OpNot {
		return x.Args[0]
	}
	return b.node1(OpNot, x)
}

// Abs builds the ABS intrinsic.
func (b *Builder) Abs(x *Expr) *Expr {
	if c, ok := x.IsConst(); ok {
		if c < 0 {
			return b.Const(-c)
		}
		return b.Const(c)
	}
	if x.Op == OpAbs {
		return x
	}
	return b.node1(OpAbs, x)
}

// Gamma builds the gated-SSA γ node: cond selects between t (true) and
// f (false). Folds when the predicate is a known boolean or both arms
// agree.
func (b *Builder) Gamma(cond, t, f *Expr) *Expr {
	if v, ok := cond.IsBool(); ok {
		if v {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	return b.node3(OpGamma, cond, t, f)
}

// Intrinsic builds a call to a named intrinsic over already-built
// arguments. Variadic MAX/MIN fold pairwise.
func (b *Builder) Intrinsic(name string, args []*Expr) *Expr {
	switch name {
	case "ABS", "IABS":
		if len(args) == 1 {
			return b.Abs(args[0])
		}
	case "MOD":
		if len(args) == 2 {
			return b.arith(OpMod, args[0], args[1])
		}
	case "MAX", "MIN":
		op := OpMax
		if name == "MIN" {
			op = OpMin
		}
		if len(args) >= 1 {
			e := args[0]
			for _, a := range args[1:] {
				e = b.arith(op, e, a)
			}
			return e
		}
	}
	return b.FreshOpaque()
}
