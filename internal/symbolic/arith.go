package symbolic

// Integer arithmetic helpers shared by constant folding here and by the
// interpreter (so compile-time folding agrees exactly with run-time
// evaluation).

// IntPow computes a**b with FORTRAN integer semantics. ok is false when
// the result is undefined (0**negative).
func IntPow(a, b int64) (int64, bool) {
	if b < 0 {
		// Integer exponentiation with a negative exponent truncates:
		// 1**-n = 1, (-1)**-n alternates, |a|>1 → 0, 0**-n undefined.
		switch {
		case a == 0:
			return 0, false
		case a == 1:
			return 1, true
		case a == -1:
			if b%2 == 0 {
				return 1, true
			}
			return -1, true
		default:
			return 0, true
		}
	}
	// Square-and-multiply with two's-complement wraparound: identical
	// results to the naive repeated product for every input, but O(log b)
	// time, so a huge propagated exponent cannot stall an evaluation.
	r, base := int64(1), a
	for e := b; e > 0; e >>= 1 {
		if e&1 == 1 {
			r *= base
		}
		base *= base
	}
	return r, true
}

// IntBinop folds a binary arithmetic operation on integers. ok is false
// when the operation is undefined (division by zero, 0**negative).
func IntBinop(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true // Go truncates toward zero, same as FORTRAN
	case OpPow:
		return IntPow(a, b)
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpMax:
		if a > b {
			return a, true
		}
		return b, true
	case OpMin:
		if a < b {
			return a, true
		}
		return b, true
	}
	return 0, false
}

// IntCompare folds a relational operation on integers.
func IntCompare(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}
