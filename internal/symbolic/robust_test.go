package symbolic

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/lattice"
)

func TestFromASTOpUnmappedIsInvalid(t *testing.T) {
	if op := FromASTOp(ast.Op(999)); op != OpInvalid {
		t.Fatalf("FromASTOp(bogus) = %v, want OpInvalid", op)
	}
}

func TestBinaryInvalidOpDegradesToOpaque(t *testing.T) {
	b := NewBuilder()
	e := b.Binary(OpInvalid, b.Const(1), b.Const(2))
	if !e.HasOpaque() {
		t.Fatalf("Binary(OpInvalid, ...) = %s, want an opaque expression", e)
	}
	if v := Eval(e, func(*Expr) lattice.Value { return lattice.TopValue() }); !v.IsBottom() {
		t.Errorf("invalid-op expression must evaluate to ⊥, got %s", v)
	}
}

func TestExprSize(t *testing.T) {
	b := NewBuilder()
	x := b.FreshOpaque()
	y := b.FreshOpaque()
	if got := x.Size(); got != 1 {
		t.Errorf("leaf size = %d, want 1", got)
	}
	sum := b.Binary(OpAdd, x, y)
	if got := sum.Size(); got != 3 {
		t.Errorf("(+ x y) size = %d, want 3", got)
	}
	nested := b.Binary(OpMul, sum, sum)
	if got := nested.Size(); got != 7 {
		t.Errorf("(* (+ x y) (+ x y)) size = %d, want 7", got)
	}
}

func TestSizeBudgetTruncatesToOpaque(t *testing.T) {
	b := NewBuilder()
	b.SetMaxSize(5)
	x, y := b.FreshOpaque(), b.FreshOpaque()
	small := b.Binary(OpAdd, x, y) // size 3: kept
	if small.Op != OpAdd {
		t.Fatalf("under-budget expression truncated: %s", small)
	}
	big := b.Binary(OpMul, small, small) // size 7 > 5: degraded
	if big.Op != OpOpaque {
		t.Fatalf("over-budget expression kept: %s (size %d)", big, big.Size())
	}
	if b.Truncated() != 1 {
		t.Errorf("Truncated() = %d, want 1", b.Truncated())
	}
	// Constant folding happens before node construction and must be
	// unaffected by the budget.
	if c, ok := b.Binary(OpAdd, b.Const(2), b.Const(3)).IsConst(); !ok || c != 5 {
		t.Error("constant folding must bypass the size budget")
	}
}
