package intra

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/symbolic"
)

type harness struct {
	prog *sem.Program
	cg   *callgraph.Graph
	info *modref.Info
	b    *symbolic.Builder
}

func newHarness(t *testing.T, src string) *harness {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	return &harness{prog: prog, cg: cg, info: modref.Compute(cg), b: symbolic.NewBuilder()}
}

func (h *harness) ssaOf(name string, useMod bool) *ssa.Func {
	n := h.cg.Nodes[name]
	dt := dom.Compute(n.CFG)
	opts := ssa.Options{Globals: h.prog.Globals()}
	if useMod {
		opts.Kills = h.info.Kills
	}
	return ssa.Build(n.CFG, dt, opts)
}

func (h *harness) analyze(t *testing.T, name string, opts Options) (*Result, *ssa.Func) {
	t.Helper()
	fn := h.ssaOf(name, true)
	opts.Builder = h.b
	return Analyze(fn, opts), fn
}

// exprOfUse finds the expression of the i-th argument of the only PRINT.
func printArgExpr(t *testing.T, r *Result, fn *ssa.Func, i int) *symbolic.Expr {
	t.Helper()
	for _, blk := range fn.Graph.Blocks {
		for _, in := range blk.Instrs {
			if in.Kind == cfg.InstrPrint {
				return r.ExprOf(fn.UseVal[in.Args[i]])
			}
		}
	}
	t.Fatal("no PRINT found")
	return nil
}

func TestStraightLineConstants(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I, J
I = 2 + 3
J = I * 4
PRINT *, J
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 20 {
		t.Errorf("J = %v, want 20", e)
	}
}

func TestFormalsStaySymbolic(t *testing.T) {
	h := newHarness(t, `PROGRAM MAIN
CALL S(3)
END
SUBROUTINE S(N)
INTEGER N, M
M = N + 1
PRINT *, M
END
`)
	r, fn := h.analyze(t, "S", Options{})
	e := printArgExpr(t, r, fn, 0)
	if _, ok := e.IsConst(); ok {
		t.Fatalf("M should be symbolic (N+1), got %v", e)
	}
	if len(e.Support()) != 1 || e.Support()[0].Param == nil || e.Support()[0].Param.Name != "N" {
		t.Errorf("support of M = %v", e.Support())
	}
}

func TestEntryEnvironmentFolds(t *testing.T) {
	h := newHarness(t, `PROGRAM MAIN
CALL S(3)
END
SUBROUTINE S(N)
INTEGER N, M
M = N + 1
PRINT *, M
END
`)
	s := h.prog.Procs["S"]
	entry := map[ssa.Var]int64{ssa.VarOf(s.Formals[0]): 3}
	r, fn := h.analyze(t, "S", Options{Entry: entry})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 4 {
		t.Errorf("M = %v, want 4", e)
	}
}

func TestPhiMergeEqualValues(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .GT. 0) THEN
  J = 7
ELSE
  J = 7
ENDIF
PRINT *, J
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 7 {
		t.Errorf("J = %v, want 7 (both arms equal)", e)
	}
}

func TestPhiMergeDifferentValues(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .GT. 0) THEN
  J = 7
ELSE
  J = 8
ENDIF
PRINT *, J
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if !e.HasOpaque() {
		t.Errorf("J = %v, want opaque", e)
	}
}

func TestLoopInvariantConstant(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I, K, S
K = 5
S = 0
DO I = 1, 10
  S = S + K
ENDDO
PRINT *, K, S
END
`)
	r, fn := h.analyze(t, "P", Options{})
	k := printArgExpr(t, r, fn, 0)
	if c, ok := k.IsConst(); !ok || c != 5 {
		t.Errorf("K = %v, want 5 through the loop", k)
	}
	s := printArgExpr(t, r, fn, 1)
	if _, ok := s.IsConst(); ok {
		t.Errorf("S = %v, must not be constant", s)
	}
}

func TestPruningFoldsConstantBranch(t *testing.T) {
	src := `PROGRAM P
INTEGER I, J
I = 1
IF (I .EQ. 1) THEN
  J = 10
ELSE
  J = 20
ENDIF
PRINT *, J
END
`
	h := newHarness(t, src)
	// Without pruning: both arms merge, J is opaque.
	r, fn := h.analyze(t, "P", Options{Prune: false})
	e := printArgExpr(t, r, fn, 0)
	if _, ok := e.IsConst(); ok {
		t.Errorf("without pruning J should not be constant, got %v", e)
	}
	// With pruning: only the true arm executes, J = 10.
	h2 := newHarness(t, src)
	r2, fn2 := h2.analyze(t, "P", Options{Prune: true})
	e2 := printArgExpr(t, r2, fn2, 0)
	if c, ok := e2.IsConst(); !ok || c != 10 {
		t.Errorf("with pruning J = %v, want 10", e2)
	}
	// And the dead block is not executable.
	deadSeen := false
	for _, blk := range fn2.Graph.Blocks {
		if !r2.BlockExecutable(blk) && blk != fn2.Graph.Exit {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Error("pruning should leave the ELSE arm non-executable")
	}
}

func TestCallKillsWithoutReturnJF(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER X
X = 1
CALL S(X)
PRINT *, X
END
SUBROUTINE S(A)
INTEGER A
A = 2
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if !e.HasOpaque() {
		t.Errorf("X after call = %v, want opaque (no return JFs)", e)
	}
}

func TestReturnJFMakesPostCallConstant(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER X
X = 1
CALL S(X)
PRINT *, X
END
SUBROUTINE S(A)
INTEGER A
A = 2
END
`)
	s := h.prog.Procs["S"]
	rjf := &ReturnSummary{
		Proc:    s,
		Formals: map[int]*symbolic.Expr{0: h.b.Const(2)},
	}
	r, fn := h.analyze(t, "P", Options{
		ReturnJF: func(callee string) *ReturnSummary {
			if callee == "S" {
				return rjf
			}
			return nil
		},
	})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 2 {
		t.Errorf("X after call = %v, want 2 via return JF", e)
	}
}

func TestReturnJFSubstitutesActuals(t *testing.T) {
	// S sets A = B + 1; calling S(X, 4) must leave X = 5.
	h := newHarness(t, `PROGRAM P
INTEGER X
X = 1
CALL S(X, 4)
PRINT *, X
END
SUBROUTINE S(A, B)
INTEGER A, B
A = B + 1
END
`)
	s := h.prog.Procs["S"]
	bLeaf := h.b.ParamLeaf(s.Formals[1])
	rjf := &ReturnSummary{
		Proc:    s,
		Formals: map[int]*symbolic.Expr{0: h.b.Binary(symbolic.OpAdd, bLeaf, h.b.Const(1))},
	}
	r, fn := h.analyze(t, "P", Options{
		ReturnJF: func(string) *ReturnSummary { return rjf },
	})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 5 {
		t.Errorf("X = %v, want 5", e)
	}
}

func TestPaperLimitationNonConstantRJF(t *testing.T) {
	// S sets A = B + 1 where B's actual is the caller's formal: the
	// substituted RJF is symbolic. The paper's implementation drops it
	// to ⊥; FullSubstitution keeps it.
	src := `PROGRAM MAIN
INTEGER I
I = 1
CALL CALLER(I)
END
SUBROUTINE CALLER(N)
INTEGER N, X
X = 0
CALL S(X, N)
PRINT *, X
END
SUBROUTINE S(A, B)
INTEGER A, B
A = B + 1
END
`
	build := func(h *harness) *ReturnSummary {
		s := h.prog.Procs["S"]
		return &ReturnSummary{
			Proc:    s,
			Formals: map[int]*symbolic.Expr{0: h.b.Binary(symbolic.OpAdd, h.b.ParamLeaf(s.Formals[1]), h.b.Const(1))},
		}
	}
	h := newHarness(t, src)
	rjf := build(h)
	r, fn := h.analyze(t, "CALLER", Options{
		ReturnJF: func(string) *ReturnSummary { return rjf },
	})
	e := printArgExpr(t, r, fn, 0)
	if !e.HasOpaque() {
		t.Errorf("paper mode: X = %v, want opaque", e)
	}

	h2 := newHarness(t, src)
	rjf2 := build(h2)
	r2, fn2 := h2.analyze(t, "CALLER", Options{
		ReturnJF:         func(string) *ReturnSummary { return rjf2 },
		FullSubstitution: true,
	})
	e2 := printArgExpr(t, r2, fn2, 0)
	if e2.HasOpaque() {
		t.Errorf("full substitution: X = %v, want symbolic N+1", e2)
	}
	if len(e2.Support()) != 1 {
		t.Errorf("support = %v", e2.Support())
	}
}

func TestFunctionResultViaRJF(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I
I = F(4)
PRINT *, I
END
INTEGER FUNCTION F(X)
INTEGER X
F = X * 10
END
`)
	f := h.prog.Procs["F"]
	rjf := &ReturnSummary{
		Proc:   f,
		Result: h.b.Binary(symbolic.OpMul, h.b.ParamLeaf(f.Formals[0]), h.b.Const(10)),
	}
	r, fn := h.analyze(t, "P", Options{
		ReturnJF: func(string) *ReturnSummary { return rjf },
	})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 40 {
		t.Errorf("I = %v, want 40", e)
	}
}

func TestGlobalPassThroughCall(t *testing.T) {
	// A call that does not touch the global (with MOD info) leaves the
	// global's constant intact.
	h := newHarness(t, `PROGRAM P
INTEGER X, G
COMMON /C/ G
G = 11
X = 0
CALL S(X)
PRINT *, G
END
SUBROUTINE S(A)
INTEGER A
A = 1
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 11 {
		t.Errorf("G after untouching call = %v, want 11", e)
	}
}

func TestExitExprForReturnJFGeneration(t *testing.T) {
	h := newHarness(t, `PROGRAM MAIN
INTEGER I
CALL S(I, 3)
END
SUBROUTINE S(A, B)
INTEGER A, B
A = B * B + 1
END
`)
	r, fn := h.analyze(t, "S", Options{})
	s := h.prog.Procs["S"]
	av := fn.ExitVals[ssa.VarOf(s.Formals[0])]
	e := r.ExprOf(av)
	if e == nil || e.HasOpaque() {
		t.Fatalf("exit expr of A = %v", e)
	}
	// Evaluate at B=3 → 10.
	got := h.b.Substitute(e, func(leaf *symbolic.Expr) *symbolic.Expr {
		if leaf.Param == s.Formals[1] {
			return h.b.Const(3)
		}
		return leaf
	})
	if c, ok := got.IsConst(); !ok || c != 10 {
		t.Errorf("A(B=3) = %v, want 10", got)
	}
}

func TestDeadCodeValuesStayTop(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I, J
I = 1
IF (I .EQ. 2) THEN
  J = 3
ELSE
  J = 4
ENDIF
PRINT *, J
END
`)
	r, fn := h.analyze(t, "P", Options{Prune: true})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 4 {
		t.Errorf("J = %v, want 4 (true arm dead)", e)
	}
}

func TestIntrinsicThroughEngine(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I
I = MAX(MOD(17, 5), MIN(9, 4))
PRINT *, I
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 4 {
		t.Errorf("I = %v, want 4", e)
	}
}

func TestEdgeExecutability(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER J
IF (1 .GT. 2) THEN
  J = 1
ELSE
  J = 2
ENDIF
PRINT *, J
END
`)
	r, fn := h.analyze(t, "P", Options{Prune: true})
	entry := fn.Graph.Entry
	if r.EdgeExecutable(entry, 0) {
		t.Error("true edge of a false condition should be dead")
	}
	if !r.EdgeExecutable(entry, 1) {
		t.Error("false edge should be live")
	}
}

func TestConstOfHelper(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I
I = 6 * 7
PRINT *, I
END
`)
	r, fn := h.analyze(t, "P", Options{})
	for _, blk := range fn.Graph.Blocks {
		for _, in := range blk.Instrs {
			if in.Kind == cfg.InstrPrint {
				if c, ok := r.ConstOf(fn.UseVal[in.Args[0]]); !ok || c != 42 {
					t.Errorf("ConstOf = %v %v", c, ok)
				}
			}
		}
	}
	if _, ok := r.ConstOf(nil); ok {
		t.Error("ConstOf(nil) should be false")
	}
}

func TestGatedGammaInEngine(t *testing.T) {
	h := newHarness(t, `PROGRAM MAIN
CALL S(2)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 10
ELSE
  M = 20
ENDIF
PRINT *, M
END
`)
	r, fn := h.analyze(t, "S", Options{Gated: true})
	e := printArgExpr(t, r, fn, 0)
	if e.Op != symbolic.OpGamma {
		t.Fatalf("M = %v, want a γ expression", e)
	}
	// Its support is exactly K.
	if len(e.Support()) != 1 || e.Support()[0].Param.Name != "K" {
		t.Errorf("support = %v", e.Support())
	}
	// Substituting K=2 folds to 20.
	got := h.b.Substitute(e, func(leaf *symbolic.Expr) *symbolic.Expr {
		return h.b.Const(2)
	})
	if c, ok := got.IsConst(); !ok || c != 20 {
		t.Errorf("γ(K=2) = %v, want 20", got)
	}
}

func TestGatedFallsBackOnLoops(t *testing.T) {
	// A loop-carried phi has no controlling two-way conditional at its
	// immediate dominator in the required shape — gated mode must fall
	// back to ⊥, never mis-gate.
	h := newHarness(t, `PROGRAM MAIN
CALL S(3)
END
SUBROUTINE S(K)
INTEGER K, M, I
M = 0
DO I = 1, K
  M = M + I
ENDDO
PRINT *, M
END
`)
	r, fn := h.analyze(t, "S", Options{Gated: true})
	e := printArgExpr(t, r, fn, 0)
	if !e.HasOpaque() {
		t.Errorf("loop-carried M = %v, want opaque", e)
	}
}

func TestUnaryArithInEngine(t *testing.T) {
	h := newHarness(t, `PROGRAM P
INTEGER I
LOGICAL L
I = -(3 + 4)
L = .NOT. (1 .GT. 2)
PRINT *, I
END
`)
	r, fn := h.analyze(t, "P", Options{})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != -7 {
		t.Errorf("I = %v, want -7", e)
	}
}

func TestPostCallGlobalViaReturnSummary(t *testing.T) {
	// A global killed at a call is restored by the callee's global
	// return jump function.
	h := newHarness(t, `PROGRAM P
INTEGER NG
COMMON /C/ NG
NG = 1
CALL SETG
PRINT *, NG
END
SUBROUTINE SETG()
INTEGER NH
COMMON /C/ NH
NH = 77
END
`)
	g := h.prog.CommonBlocks["C"][0]
	sum := &ReturnSummary{
		Proc:    h.prog.Procs["SETG"],
		Globals: map[*sem.GlobalVar]*symbolic.Expr{g: h.b.Const(77)},
	}
	r, fn := h.analyze(t, "P", Options{
		ReturnJF: func(string) *ReturnSummary { return sum },
		GMod:     func(string, *sem.GlobalVar) bool { return true },
	})
	e := printArgExpr(t, r, fn, 0)
	if c, ok := e.IsConst(); !ok || c != 77 {
		t.Errorf("NG after call = %v, want 77", e)
	}
}

func TestAliasGuardInEngine(t *testing.T) {
	// Global passed as an actual while the callee GMODs it: opaque.
	h := newHarness(t, `PROGRAM P
INTEGER NG
COMMON /C/ NG
NG = 13
CALL BOTH(NG)
PRINT *, NG
END
SUBROUTINE BOTH(K)
INTEGER K, NH
COMMON /C/ NH
NH = 27
END
`)
	g := h.prog.CommonBlocks["C"][0]
	both := h.prog.Procs["BOTH"]
	sum := &ReturnSummary{
		Proc:    both,
		Formals: map[int]*symbolic.Expr{0: h.b.ParamLeaf(both.Formals[0])}, // identity
		Globals: map[*sem.GlobalVar]*symbolic.Expr{g: h.b.Const(27)},
	}
	r, fn := h.analyze(t, "P", Options{
		ReturnJF: func(string) *ReturnSummary { return sum },
		GMod:     func(string, *sem.GlobalVar) bool { return true },
	})
	e := printArgExpr(t, r, fn, 0)
	if !e.HasOpaque() {
		t.Errorf("aliased NG = %v, want opaque", e)
	}
}
