// Package intra is the intraprocedural analysis engine: a symbolic,
// SCCP-style evaluation over a procedure's SSA graph.
//
// Every SSA value is assigned a symbolic expression (package symbolic)
// over the procedure's entry values. Because expressions are interned,
// this assignment is exactly a global value numbering: two values with
// the same expression are congruent. The paper's analyzer was built the
// same way ("we built a set of jump functions on top of an existing
// framework for global value numbering").
//
// The engine serves every phase of the interprocedural analysis:
//
//   - jump-function construction runs it with formals/globals as
//     symbolic atoms and reads off call-site expressions (gcp, §3.1);
//   - return-jump-function construction reads off exit expressions;
//   - the substitution pass re-runs it with the final CONSTANTS values
//     bound to the entry atoms and counts constant uses;
//   - dead-code elimination uses its block-executability facts.
package intra

import (
	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/sem"
	"repro/internal/ssa"
	"repro/internal/symbolic"
)

// ReturnSummary is a procedure's set of return jump functions: the
// symbolic value of each modified formal, each modified global, and the
// function result at procedure exit, expressed over the procedure's own
// entry values. A nil map entry means "no jump function" (the value is
// unknown on return).
type ReturnSummary struct {
	Proc *sem.Procedure
	// Formals maps formal index → exit expression.
	Formals map[int]*symbolic.Expr
	// Globals maps program global → exit expression.
	Globals map[*sem.GlobalVar]*symbolic.Expr
	// Result is the function-result expression (functions only).
	Result *symbolic.Expr
}

// Options configures one run of the engine.
type Options struct {
	// Builder is the program-wide expression interner.
	Builder *symbolic.Builder
	// OpaqueBase offsets opaque identities so different procedures'
	// unknowns never collide in the shared Builder.
	OpaqueBase int64
	// Entry gives known constant entry values (from interprocedural
	// propagation). Variables not present stay symbolic atoms.
	Entry map[ssa.Var]int64
	// Prune enables SCCP branch pruning: blocks whose conditions fold
	// are not considered executable on the dead side. The paper's plain
	// propagation does not prune (value numbering alone); the "complete
	// propagation" of Table 3 does, via explicit dead-code elimination.
	Prune bool
	// ReturnJF supplies return jump functions for callees (nil, or a
	// function returning nil, disables them).
	ReturnJF func(callee string) *ReturnSummary
	// GMod reports whether a callee may modify a global directly (its
	// GMOD set). It guards an aliasing hazard: when a COMMON global is
	// passed as an actual, the callee's formal aliases the global, and
	// the formal's return jump function only describes writes through
	// the formal. nil means "unknown": assume it may (conservative).
	GMod func(callee string, g *sem.GlobalVar) bool
	// FullSubstitution keeps symbolic (non-constant) results of return
	// jump function substitution. The paper's implementation sets any
	// non-constant result to ⊥ ("return jump functions that depend on
	// parameters to the calling procedure can never be evaluated as
	// constant"); this option lifts that limitation (an extension).
	FullSubstitution bool
	// Gated builds γ (gated-SSA) expressions at two-way joins whose
	// controlling predicate is transparent, instead of going opaque.
	// This realizes the paper's §4.2 remark that a jump-function
	// generator based on gated single-assignment form would produce the
	// complete-propagation results without iterating.
	Gated bool
}

// Result holds the engine's findings for one procedure.
type Result struct {
	F     *ssa.Func
	Opts  Options
	exprs []*symbolic.Expr // indexed by value ID; nil = ⊤ (never executed)
	// execBlock and execEdge are dense executability sets indexed by
	// block ID (block IDs are dense after CFG assembly). A block has at
	// most two successors, so edge (blk, idx) lives at 2*blk.ID + idx.
	execBlock []bool
	execEdge  []bool
}

// ExprOf returns the symbolic expression of an SSA value (nil if the
// value was never reached — dead code).
func (r *Result) ExprOf(v *ssa.Value) *symbolic.Expr {
	if v == nil {
		return nil
	}
	return r.exprs[v.ID]
}

// ConstOf reports whether the value is a known integer constant.
func (r *Result) ConstOf(v *ssa.Value) (int64, bool) {
	e := r.ExprOf(v)
	if e == nil {
		return 0, false
	}
	return e.IsConst()
}

// BlockExecutable reports whether the block is reachable under the
// analyzed entry environment.
func (r *Result) BlockExecutable(blk *cfg.Block) bool {
	return blk.ID < len(r.execBlock) && r.execBlock[blk.ID]
}

// EdgeExecutable reports whether control can flow along the given
// successor edge under the analyzed entry environment.
func (r *Result) EdgeExecutable(from *cfg.Block, succIdx int) bool {
	i := 2*from.ID + succIdx
	return succIdx < 2 && i < len(r.execEdge) && r.execEdge[i]
}

// Analyze runs the engine to fixpoint.
func Analyze(f *ssa.Func, opts Options) *Result {
	if opts.Builder == nil {
		opts.Builder = symbolic.NewBuilder()
	}
	n := len(f.Graph.Blocks)
	r := &Result{
		F:         f,
		Opts:      opts,
		exprs:     make([]*symbolic.Expr, len(f.Values)),
		execBlock: make([]bool, n),
		execEdge:  make([]bool, 2*n),
	}
	e := &engine{r: r, f: f, b: opts.Builder, opts: opts}
	e.run()
	return r
}

type engine struct {
	r    *Result
	f    *ssa.Func
	b    *symbolic.Builder
	opts Options
	// postCalls indexes OpPostCall values by site, so call-effect
	// re-evaluation does not rescan the whole value list.
	postCalls map[*cfg.CallSite][]*ssa.Value
	// argScratch is reused for intrinsic argument vectors; Intrinsic
	// folds its arguments pairwise and never retains the slice.
	argScratch []*symbolic.Expr
}

// opaque returns the canonical unknown for an SSA value.
func (e *engine) opaque(v *ssa.Value) *symbolic.Expr {
	return e.b.Opaque(e.opts.OpaqueBase + int64(v.ID))
}

func (e *engine) run() {
	r := e.r
	r.execBlock[e.f.Graph.Entry.ID] = true
	e.postCalls = make(map[*cfg.CallSite][]*ssa.Value)
	for _, v := range e.f.Values {
		if v.Op == ssa.OpPostCall {
			e.postCalls[v.AuxSite] = append(e.postCalls[v.AuxSite], v)
		}
	}
	// Source values (no dependencies) are fixed up front; everything
	// else is computed during the fixpoint iteration. Without this,
	// never-referenced entry values (e.g. an unused formal flowing to
	// the exit) would stay ⊤.
	for _, v := range e.f.Values {
		switch v.Op {
		case ssa.OpConst:
			r.exprs[v.ID] = e.b.Const(v.AuxInt)
		case ssa.OpBoolConst:
			r.exprs[v.ID] = e.b.Bool(v.AuxBool)
		case ssa.OpParam, ssa.OpGlobalIn:
			r.exprs[v.ID] = e.entryLeaf(v.AuxVar)
		case ssa.OpRealConst, ssa.OpStr, ssa.OpArrayLoad, ssa.OpRead, ssa.OpUndef, ssa.OpCast:
			// Casts are always opaque: they only arise on int↔real
			// conversions, and REAL values are outside the propagated
			// domain.
			r.exprs[v.ID] = e.opaque(v)
		}
		// Only INTEGER and LOGICAL values participate; REAL-typed values
		// are opaque so integer folding never touches real arithmetic.
		if r.exprs[v.ID] != nil && v.Type == ast.TypeReal {
			r.exprs[v.ID] = e.opaque(v)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range e.f.Dom.RPO {
			if !r.execBlock[blk.ID] {
				continue
			}
			// Phis first (they are defined at block entry).
			for _, phi := range e.f.Phis[blk] {
				if e.update(phi, e.evalPhi(phi)) {
					changed = true
				}
			}
			for _, in := range blk.Instrs {
				if e.evalInstr(blk, in) {
					changed = true
				}
			}
			if e.propagateEdges(blk) {
				changed = true
			}
		}
	}
}

// update installs a (monotone) new expression for a value. Once a value
// holds expression x, any different recomputed expression lowers it to
// its opaque unknown — this keeps phi-driven recomputation monotone and
// guarantees termination.
func (e *engine) update(v *ssa.Value, nx *symbolic.Expr) bool {
	if nx != nil && v.Type == ast.TypeReal {
		nx = e.opaque(v)
	}
	old := e.r.exprs[v.ID]
	if nx == nil || nx == old {
		return false
	}
	if old != nil {
		op := e.opaque(v)
		if old == op {
			return false
		}
		e.r.exprs[v.ID] = op
		return true
	}
	e.r.exprs[v.ID] = nx
	return true
}

func (e *engine) evalInstr(blk *cfg.Block, in *cfg.Instr) bool {
	changed := false
	switch in.Kind {
	case cfg.InstrAssign:
		if e.evalExprTree(in.Rhs) {
			changed = true
		}
		for _, s := range in.Subs {
			if e.evalExprTree(s) {
				changed = true
			}
		}
	case cfg.InstrRead:
		for _, t := range in.Targets {
			for _, s := range t.Subs {
				if e.evalExprTree(s) {
					changed = true
				}
			}
		}
		// The OpRead defs themselves are opaque; set once.
	case cfg.InstrPrint:
		for _, a := range in.Args {
			if e.evalExprTree(a) {
				changed = true
			}
		}
	case cfg.InstrCall:
		for _, a := range in.Site.Args {
			if e.evalExprTree(a) {
				changed = true
			}
		}
		if e.evalCallEffects(in) {
			changed = true
		}
	}
	return changed
}

// evalExprTree (re)computes the SSA values of an AST expression
// occurrence bottom-up, reporting whether anything changed.
func (e *engine) evalExprTree(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	changed := false
	// Postorder: children first, then this occurrence.
	switch x := expr.(type) {
	case *ast.Unary:
		if e.evalExprTree(x.X) {
			changed = true
		}
	case *ast.Binary:
		if e.evalExprTree(x.X) {
			changed = true
		}
		if e.evalExprTree(x.Y) {
			changed = true
		}
	case *ast.Apply:
		for _, a := range x.Args {
			if e.evalExprTree(a) {
				changed = true
			}
		}
	}
	v := e.f.UseVal[expr]
	if v == nil {
		return changed
	}
	if e.update(v, e.evalValue(v)) {
		changed = true
	}
	return changed
}

// evalValue computes the current expression for a non-phi value.
func (e *engine) evalValue(v *ssa.Value) *symbolic.Expr {
	switch v.Op {
	case ssa.OpConst:
		return e.b.Const(v.AuxInt)
	case ssa.OpBoolConst:
		return e.b.Bool(v.AuxBool)
	case ssa.OpRealConst, ssa.OpStr, ssa.OpArrayLoad, ssa.OpRead, ssa.OpUndef:
		return e.opaque(v)
	case ssa.OpParam:
		return e.entryLeaf(v.AuxVar)
	case ssa.OpGlobalIn:
		return e.entryLeaf(v.AuxVar)
	case ssa.OpArith:
		return e.evalArith(v)
	case ssa.OpIntrinsic:
		args := e.argScratch[:0]
		for _, a := range v.Args {
			ae := e.r.exprs[a.ID]
			if ae == nil {
				return nil // ⊤ input: wait
			}
			args = append(args, ae)
		}
		e.argScratch = args
		return e.b.Intrinsic(v.AuxName, args)
	case ssa.OpCallRes, ssa.OpPostCall:
		// Handled by evalCallEffects; if asked directly, use the stored
		// value (or ⊤).
		return e.r.exprs[v.ID]
	case ssa.OpPhi:
		return e.evalPhi(v)
	}
	return e.opaque(v)
}

// entryLeaf gives the expression for an entry value: a constant when
// the interprocedural environment knows one, else the symbolic atom.
func (e *engine) entryLeaf(v ssa.Var) *symbolic.Expr {
	if c, ok := e.opts.Entry[v]; ok {
		return e.b.Const(c)
	}
	if v.Glob != nil {
		return e.b.GlobalLeaf(v.Glob)
	}
	return e.b.ParamLeaf(v.Sym)
}

func (e *engine) evalArith(v *ssa.Value) *symbolic.Expr {
	if len(v.Args) == 1 {
		a := e.r.exprs[v.Args[0].ID]
		if a == nil {
			return nil
		}
		switch v.AuxOp {
		case ast.OpNeg:
			return e.b.Neg(a)
		case ast.OpNot:
			return e.b.Not(a)
		}
		return e.opaque(v)
	}
	x := e.r.exprs[v.Args[0].ID]
	y := e.r.exprs[v.Args[1].ID]
	if x == nil || y == nil {
		return nil // ⊤: wait for inputs
	}
	// Mixed-type arithmetic (REAL operands) is outside the integer
	// domain: if either side is opaque-real the result is opaque anyway;
	// integer folding handles the rest.
	return e.b.Binary(symbolic.FromASTOp(v.AuxOp), x, y)
}

func (e *engine) evalPhi(phi *ssa.Value) *symbolic.Expr {
	blk := phi.Block
	var acc *symbolic.Expr
	for i, pred := range blk.Preds {
		if e.opts.Prune && !e.r.execEdge[2*pred.ID+succIndex(pred, blk, i)] {
			continue
		}
		if !e.r.execBlock[pred.ID] {
			continue
		}
		arg := phi.Args[i]
		if arg == nil {
			continue
		}
		ae := e.r.exprs[arg.ID]
		if ae == nil {
			continue // ⊤ contributes nothing (optimism)
		}
		if acc == nil {
			acc = ae
		} else if acc != ae {
			if e.opts.Gated {
				if g := e.gammaFor(phi); g != nil {
					return g
				}
			}
			return e.opaque(phi)
		}
	}
	return acc
}

// gammaFor tries to express a two-way join as a γ over the controlling
// branch predicate: phi(x₁, x₂) at the join of an if-then-else (or
// if-then) whose condition is a transparent expression becomes
// γ(cond, x_true, x_false). Requirements: exactly two predecessors,
// both arms' values known, the join's immediate dominator ends in the
// controlling conditional, and each arm is reached through exactly one
// of its successor edges.
func (e *engine) gammaFor(phi *ssa.Value) *symbolic.Expr {
	blk := phi.Block
	if len(blk.Preds) != 2 || len(phi.Args) != 2 {
		return nil
	}
	idom := e.f.Dom.Idom[blk.ID]
	if idom == nil || idom.Term.Kind != cfg.TermCond || len(idom.Succs) != 2 {
		return nil
	}
	cv := e.f.TermVal[idom]
	if cv == nil {
		return nil
	}
	ce := e.r.exprs[cv.ID]
	if ce == nil || ce.HasOpaque() {
		return nil
	}
	// Map each predecessor to the branch arm it belongs to.
	var arm [2]*symbolic.Expr
	for i, pred := range blk.Preds {
		if phi.Args[i] == nil {
			return nil
		}
		ae := e.r.exprs[phi.Args[i].ID]
		if ae == nil {
			return nil
		}
		side := -1
		if pred == idom {
			// Empty arm: the edge from the conditional directly to the
			// join. Find which successor slot it is.
			for si, s := range idom.Succs {
				if s == blk {
					side = si
				}
			}
		} else {
			t0 := e.f.Dom.Reachable(idom.Succs[0]) && e.f.Dom.Dominates(idom.Succs[0], pred)
			t1 := e.f.Dom.Reachable(idom.Succs[1]) && e.f.Dom.Dominates(idom.Succs[1], pred)
			if t0 && !t1 {
				side = 0
			} else if t1 && !t0 {
				side = 1
			}
		}
		if side < 0 || arm[side] != nil {
			return nil // irreducible / shared arm: stay conservative
		}
		arm[side] = ae
	}
	if arm[0] == nil || arm[1] == nil {
		return nil
	}
	return e.b.Gamma(ce, arm[0], arm[1])
}

// succIndex finds which successor slot of pred leads to blk for the
// pi-th predecessor entry. Because a block can appear twice in Succs
// (both arms of a branch), we must count occurrences.
func succIndex(pred, blk *cfg.Block, predSlot int) int {
	// Count how many earlier preds entries of blk equal pred: the k-th
	// occurrence of pred in blk.Preds corresponds to the k-th occurrence
	// of blk in pred.Succs (cfg links them in matching order).
	k := 0
	for i := 0; i < predSlot; i++ {
		if blk.Preds[i] == pred {
			k++
		}
	}
	seen := 0
	for si, s := range pred.Succs {
		if s == blk {
			if seen == k {
				return si
			}
			seen++
		}
	}
	return 0
}

// evalCallEffects computes CallRes and PostCall values at a site using
// the callee's return jump functions.
func (e *engine) evalCallEffects(in *cfg.Instr) bool {
	site := in.Site
	info := e.f.Calls[site]
	if info == nil {
		return false
	}
	var summary *ReturnSummary
	if e.opts.ReturnJF != nil {
		summary = e.opts.ReturnJF(site.Callee)
	}
	changed := false

	// Post-call values of killed variables.
	for _, v := range e.postCalls[site] {
		nx := e.postCallExpr(v, info, summary)
		if e.update(v, nx) {
			changed = true
		}
	}
	// Function result.
	if info.Result != nil {
		var nx *symbolic.Expr
		if summary != nil && summary.Result != nil {
			nx = e.substituteAtSite(summary.Result, info, summary.Proc)
			nx = e.restrictFor(nx, info.Result)
		} else {
			nx = e.opaque(info.Result)
		}
		if e.update(info.Result, nx) {
			changed = true
		}
	}
	return changed
}

// postCallExpr computes the value of variable v.AuxVar after the call.
func (e *engine) postCallExpr(v *ssa.Value, info *ssa.CallInfo, summary *ReturnSummary) *symbolic.Expr {
	if summary == nil {
		return e.opaque(v)
	}
	var rjf *symbolic.Expr
	if v.AuxVar.Glob != nil {
		// Killed either as a global or as an actual bound to a formal.
		if idx, multi := actualIndexOfVar(e.f, info, v.AuxVar); multi {
			return e.opaque(v)
		} else if idx >= 0 {
			// The global aliases the formal inside the callee. The
			// formal's return jump function is valid only if the callee
			// cannot also write the storage under its COMMON name.
			if e.opts.GMod == nil || e.opts.GMod(info.Site.Callee, v.AuxVar.Glob) {
				return e.opaque(v)
			}
			rjf = summary.Formals[idx]
		} else {
			rjf = summary.Globals[v.AuxVar.Glob]
		}
	} else {
		idx, multi := actualIndexOfVar(e.f, info, v.AuxVar)
		if multi || idx < 0 {
			return e.opaque(v)
		}
		rjf = summary.Formals[idx]
	}
	if rjf == nil {
		return e.opaque(v)
	}
	nx := e.substituteAtSite(rjf, info, summary.Proc)
	return e.restrictFor(nx, v)
}

// actualIndexOfVar finds the (unique) actual-argument position that
// passes exactly the variable v. multi is true when the variable is
// passed more than once (aliasing; conservatively opaque).
func actualIndexOfVar(f *ssa.Func, info *ssa.CallInfo, v ssa.Var) (int, bool) {
	idx := -1
	for i, arg := range info.Site.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		s := f.Proc.Lookup(id.Name)
		if s == nil || s.IsArray {
			continue
		}
		if ssa.VarOf(s) == v {
			if idx >= 0 {
				return idx, true
			}
			idx = i
		}
	}
	return idx, false
}

// substituteAtSite rewrites a callee-side expression into the caller's
// terms: the callee's formal leaves become the actuals' expressions and
// global leaves become the globals' values at the call. A nil result
// means some input is still ⊤.
func (e *engine) substituteAtSite(rjf *symbolic.Expr, info *ssa.CallInfo, callee *sem.Procedure) *symbolic.Expr {
	// First check all needed inputs are known (≠ ⊤).
	for _, leaf := range rjf.Support() {
		if le := e.leafValueAtSite(leaf, info, callee); le == nil {
			return nil
		}
	}
	return e.b.Substitute(rjf, func(leaf *symbolic.Expr) *symbolic.Expr {
		if le := e.leafValueAtSite(leaf, info, callee); le != nil {
			return le
		}
		return e.b.FreshOpaque()
	})
}

func (e *engine) leafValueAtSite(leaf *symbolic.Expr, info *ssa.CallInfo, callee *sem.Procedure) *symbolic.Expr {
	switch leaf.Op {
	case symbolic.OpParam:
		idx := leaf.Param.FormalIndex
		if idx < 0 || idx >= len(info.ArgVals) || info.ArgVals[idx] == nil {
			return e.b.FreshOpaque()
		}
		return e.r.exprs[info.ArgVals[idx].ID]
	case symbolic.OpGlobal:
		gv := info.GlobalVals[leaf.Global]
		if gv == nil {
			return e.b.FreshOpaque()
		}
		return e.r.exprs[gv.ID]
	}
	return leaf
}

// restrictFor applies the paper's limitation: a substituted return
// jump function is kept only when it evaluated to a constant (unless
// FullSubstitution is enabled and the result is transparent).
func (e *engine) restrictFor(nx *symbolic.Expr, v *ssa.Value) *symbolic.Expr {
	if nx == nil {
		return nil
	}
	if _, ok := nx.IsConst(); ok {
		return nx
	}
	if e.opts.FullSubstitution && !nx.HasOpaque() {
		return nx
	}
	return e.opaque(v)
}

// propagateEdges marks successor edges/blocks executable based on the
// terminator's condition value.
func (e *engine) propagateEdges(blk *cfg.Block) bool {
	mark := func(idx int) bool {
		if idx >= len(blk.Succs) {
			return false
		}
		changed := false
		if k := 2*blk.ID + idx; !e.r.execEdge[k] {
			e.r.execEdge[k] = true
			changed = true
		}
		succ := blk.Succs[idx]
		if !e.r.execBlock[succ.ID] {
			e.r.execBlock[succ.ID] = true
			changed = true
		}
		return changed
	}
	switch blk.Term.Kind {
	case cfg.TermJump, cfg.TermReturn, cfg.TermStop:
		changed := false
		for i := range blk.Succs {
			if mark(i) {
				changed = true
			}
		}
		return changed
	case cfg.TermCond:
		cv := e.f.TermVal[blk]
		var ce *symbolic.Expr
		if cv != nil {
			// Make sure the condition value itself is up to date.
			e.evalExprTree(blk.Term.Cond)
			ce = e.r.exprs[cv.ID]
		}
		if e.opts.Prune {
			if ce == nil {
				return false // ⊤: no edge executable yet
			}
			if b, ok := ce.IsBool(); ok {
				if b {
					return mark(0)
				}
				return mark(1)
			}
		}
		changed := mark(0)
		if mark(1) {
			changed = true
		}
		return changed
	}
	return false
}
