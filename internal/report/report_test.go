package report

import (
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	var b strings.Builder
	if err := Figure1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"⊤", "⊥", "ci ∧ cj", "depth: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := ComputeTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lines == 0 || r.Procs == 0 || r.MeanLines == 0 {
			t.Errorf("%s: empty characteristics %+v", r.Name, r)
		}
	}
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ocean") {
		t.Error("Table 1 missing ocean row")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := ComputeTable2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r

		// Global invariants from the paper.
		if !(r.Literal <= r.Intra && r.Intra <= r.PassThru && r.PassThru <= r.Poly) {
			t.Errorf("%s: hierarchy violated: %+v", r.Name, r)
		}
		if r.PTNoRet > r.PassThru || r.PolyNoRet > r.Poly {
			t.Errorf("%s: return JFs lost constants: %+v", r.Name, r)
		}
	}
	// Pass-through equals polynomial on the paper's programs.
	for _, r := range rows {
		if r.Name == "polybench" {
			if r.Poly <= r.PassThru {
				t.Errorf("polybench should separate polynomial from pass-through: %+v", r)
			}
			continue
		}
		if r.Poly != r.PassThru {
			t.Errorf("%s: pass-through != polynomial: %+v", r.Name, r)
		}
	}
	// The ocean return-jump-function effect: ≥3×.
	oc := byName["ocean"]
	if oc.PassThru < 3*oc.PTNoRet {
		t.Errorf("ocean: %d vs %d without return JFs — want ≥3×", oc.PassThru, oc.PTNoRet)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := ComputeTable3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoMOD > r.WithMOD {
			t.Errorf("%s: no-MOD should not beat MOD: %+v", r.Name, r)
		}
		if r.Complete < r.WithMOD {
			t.Errorf("%s: complete propagation lost constants: %+v", r.Name, r)
		}
		if r.IntraOnly > r.WithMOD {
			t.Errorf("%s: intraprocedural baseline should not beat interprocedural: %+v", r.Name, r)
		}
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// MOD matters a lot for simple; complete propagation only helps
	// ocean and spec77.
	if s := byName["simple"]; s.NoMOD*2 > s.WithMOD {
		t.Errorf("simple: expected a large MOD effect: %+v", s)
	}
	for _, name := range []string{"ocean", "spec77"} {
		if r := byName[name]; r.Complete <= r.WithMOD {
			t.Errorf("%s: complete propagation should add constants: %+v", name, r)
		}
	}
	if r := byName["trfd"]; r.Complete != r.WithMOD {
		t.Errorf("trfd: complete propagation should change nothing: %+v", r)
	}
}

func TestFullRendersEverything(t *testing.T) {
	var b strings.Builder
	if err := Full(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 1", "Table 1", "Table 2", "Table 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Full output missing %q", want)
		}
	}
}

func TestCheckPasses(t *testing.T) {
	var b strings.Builder
	if err := Check(&b); err != nil {
		t.Fatalf("Check failed: %v\n%s", err, b.String())
	}
	out := b.String()
	if strings.Contains(out, "FAIL") || !strings.Contains(out, "all reproduction claims hold") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestCSVOutputs(t *testing.T) {
	var b2 strings.Builder
	if err := Table2CSV(&b2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b2.String()), "\n")
	if len(lines) != 14 { // header + 13 programs
		t.Errorf("table2 csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "program,polynomial") {
		t.Errorf("header = %q", lines[0])
	}
	var b3 strings.Builder
	if err := Table3CSV(&b3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), "ocean,") {
		t.Errorf("table3 csv:\n%s", b3.String())
	}
}
