package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Check verifies the paper's qualitative findings against freshly
// computed tables and reports each as pass/fail. It returns an error if
// any claim fails — `ipcp-tables -check` is therefore a one-command
// reproduction check.
func Check(w io.Writer) error {
	t2, err := ComputeTable2()
	if err != nil {
		return err
	}
	t3, err := ComputeTable3()
	if err != nil {
		return err
	}
	t2by := map[string]Table2Row{}
	for _, r := range t2 {
		t2by[r.Name] = r
	}
	t3by := map[string]Table3Row{}
	for _, r := range t3 {
		t3by[r.Name] = r
	}

	failures := 0
	claim := func(ok bool, format string, args ...interface{}) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "[%s] %s\n", status, fmt.Sprintf(format, args...))
	}

	// Claim 1: the jump-function hierarchy holds per program.
	ok := true
	for _, r := range t2 {
		if !(r.Literal <= r.Intra && r.Intra <= r.PassThru && r.PassThru <= r.Poly) {
			ok = false
		}
	}
	claim(ok, "Table 2: literal ≤ intraprocedural ≤ pass-through ≤ polynomial in every row")

	// Claim 2: pass-through = polynomial on the paper's programs.
	ok = true
	for _, r := range t2 {
		if r.Name == "polybench" {
			continue
		}
		if r.Poly != r.PassThru {
			ok = false
		}
	}
	claim(ok, "Table 2: pass-through equals polynomial on all paper programs")
	claim(t2by["polybench"].Poly > t2by["polybench"].PassThru,
		"Table 2: polybench (our addition) separates polynomial from pass-through")

	// Claim 3: the ocean return-jump-function effect (≥3×).
	oc := t2by["ocean"]
	claim(oc.PTNoRet > 0 && oc.PassThru >= 3*oc.PTNoRet,
		"Table 2: return jump functions ≥3× ocean (%d vs %d; paper 194 vs 62)", oc.PassThru, oc.PTNoRet)

	// Claim 4: MOD information is decisive where the paper saw it.
	ok = true
	for _, name := range []string{"adm", "linpackd", "matrix300", "ocean", "simple", "spec77"} {
		r := t3by[name]
		if r.NoMOD*2 > r.WithMOD {
			ok = false
		}
	}
	claim(ok, "Table 3: removing MOD collapses counts by ≥2× on the MOD-sensitive programs")
	dd := t3by["doduc"]
	claim(dd.NoMOD*4 >= dd.WithMOD*3,
		"Table 3: doduc stays robust without MOD (%d vs %d; paper 288 vs 289)", dd.NoMOD, dd.WithMOD)

	// Claim 5: complete propagation helps only ocean and spec77.
	ok = true
	for _, r := range t3 {
		gain := r.Complete - r.WithMOD
		switch r.Name {
		case "ocean", "spec77":
			if gain <= 0 {
				ok = false
			}
		default:
			if gain != 0 {
				ok = false
			}
		}
	}
	claim(ok, "Table 3: complete propagation gains only in ocean and spec77 (paper: +10, +4)")

	// Claim 6: interprocedural ≥ intraprocedural everywhere, with a
	// doduc-sized chasm somewhere.
	ok = true
	chasm := false
	for _, r := range t3 {
		if r.IntraOnly > r.WithMOD {
			ok = false
		}
		if r.IntraOnly > 0 && r.WithMOD >= 10*r.IntraOnly {
			chasm = true
		}
	}
	claim(ok && t3by["doduc"].WithMOD > 10*t3by["doduc"].IntraOnly || chasm,
		"Table 3: interprocedural dominates the intraprocedural baseline (doduc-style chasm present)")

	if failures > 0 {
		return fmt.Errorf("%d reproduction claim(s) failed", failures)
	}
	fmt.Fprintln(w, "all reproduction claims hold")
	return nil
}

// Table2CSV writes Table 2 as CSV for downstream plotting.
func Table2CSV(w io.Writer) error {
	rows, err := ComputeTable2()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"program", "polynomial", "passthrough", "intraprocedural", "literal", "polynomial_noret", "passthrough_noret"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Name,
			strconv.Itoa(r.Poly), strconv.Itoa(r.PassThru), strconv.Itoa(r.Intra),
			strconv.Itoa(r.Literal), strconv.Itoa(r.PolyNoRet), strconv.Itoa(r.PTNoRet)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes Table 3 as CSV.
func Table3CSV(w io.Writer) error {
	rows, err := ComputeTable3()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"program", "poly_nomod", "poly_mod", "complete", "intraprocedural"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Name,
			strconv.Itoa(r.NoMOD), strconv.Itoa(r.WithMOD),
			strconv.Itoa(r.Complete), strconv.Itoa(r.IntraOnly)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
