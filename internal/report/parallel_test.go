package report

import (
	"strings"
	"testing"
)

// The sweep fan-out must not change a single byte of the rendered
// tables: Table2With/Table3With at four workers must match the serial
// render exactly.

func TestTable2ParallelMatchesSerial(t *testing.T) {
	var serial, parallel strings.Builder
	if err := Table2With(&serial, 1); err != nil {
		t.Fatal(err)
	}
	if err := Table2With(&parallel, 4); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("Table 2 diverges between serial and parallel sweeps\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
}

func TestTable3ParallelMatchesSerial(t *testing.T) {
	var serial, parallel strings.Builder
	if err := Table3With(&serial, 1); err != nil {
		t.Fatal(err)
	}
	if err := Table3With(&parallel, 4); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("Table 3 diverges between serial and parallel sweeps\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
}
