// Package report regenerates the paper's exhibits — Figure 1 and
// Tables 1–3 — over the synthesized benchmark suite. Each table is
// printed in the paper's layout so the two can be compared row by row
// (see EXPERIMENTS.md for the side-by-side record).
package report

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/par"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/suite"
)

// loadProgram synthesizes and analyzes one suite program's front end.
func loadProgram(spec suite.Spec) (*sem.Program, string, error) {
	src := suite.Source(spec)
	var diags source.ErrorList
	f := parser.ParseSource(spec.Name+".f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if err := diags.Err(); err != nil {
		return nil, "", fmt.Errorf("suite program %s: %w", spec.Name, err)
	}
	return prog, src, nil
}

func countWith(prog *sem.Program, cfg core.Config) int {
	return core.AnalyzeProgram(prog, cfg).Substitute().Total
}

// jc builds a sweep-cell configuration. The cell analyses run serially
// inside (Parallelism 1): the sweep fans out across cells, and nesting
// per-procedure workers under per-cell workers would oversubscribe the
// machine without helping wall-clock time.
func jc(kind jump.Kind, useMod, rjf bool) core.Config {
	return core.Config{
		Jump:        jump.Config{Kind: kind, UseMOD: useMod, UseReturnJFs: rjf},
		Parallelism: 1,
	}
}

// ---------------------------------------------------------------------
// Figure 1

// Figure1 prints the constant-propagation lattice and its meet table.
func Figure1(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: the constant propagation lattice")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "                ⊤")
	fmt.Fprintln(w, "   ... c-2  c-1  c0  c1  c2 ...")
	fmt.Fprintln(w, "                ⊥")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "meet rules (∧):")
	top, bot := lattice.TopValue(), lattice.BottomValue()
	ci, cj := lattice.ConstValue(1), lattice.ConstValue(2)
	describe := func(v, a, b lattice.Value) string {
		switch {
		case v.IsTop():
			return "⊤"
		case v.IsBottom():
			return "⊥"
		case v == a:
			return "left operand"
		case v == b:
			return "right operand"
		default:
			return v.String()
		}
	}
	rows := []struct {
		label string
		a, b  lattice.Value
	}{
		{"⊤ ∧ x", top, cj},
		{"x ∧ ⊤", ci, top},
		{"⊥ ∧ x", bot, cj},
		{"x ∧ ⊥", ci, bot},
		{"ci ∧ ci", ci, ci},
		{"ci ∧ cj (ci ≠ cj)", ci, cj},
	}
	for _, r := range rows {
		m := lattice.Meet(r.a, r.b)
		fmt.Fprintf(w, "  %-20s = %s\n", r.label, describe(m, r.a, r.b))
	}
	fmt.Fprintf(w, "\nlattice depth: %d (a value lowers at most twice: ⊤ → c → ⊥)\n", lattice.Depth)
	return nil
}

// ---------------------------------------------------------------------
// Table 1

// Table1Row is one program's characteristics.
type Table1Row struct {
	suite.Characteristics
	TargetLines int
	TargetProcs int
}

// ComputeTable1 characterizes every suite program.
func ComputeTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range suite.Programs() {
		src := suite.Source(spec)
		rows = append(rows, Table1Row{
			Characteristics: suite.Characterize(spec.Name, src),
			TargetLines:     spec.TargetLines,
			TargetProcs:     spec.TargetProcs,
		})
	}
	return rows, nil
}

// Table1 prints program characteristics (paper Table 1).
func Table1(w io.Writer) error {
	rows, err := ComputeTable1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1: characteristics of program test suite")
	fmt.Fprintf(w, "%-12s %8s %8s %12s %14s\n", "Program", "Lines", "Procs", "Mean l/proc", "Median l/proc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %12d %14d\n", r.Name, r.Lines, r.Procs, r.MeanLines, r.MedianLine)
	}
	return nil
}

// ---------------------------------------------------------------------
// Table 2

// Table2Row holds the six configurations of paper Table 2 for one
// program: four jump functions with return jump functions, then
// polynomial and pass-through without them.
type Table2Row struct {
	Name      string
	Poly      int
	PassThru  int
	Intra     int
	Literal   int
	PolyNoRet int
	PTNoRet   int
}

var (
	table2Once sync.Once
	table2Rows []Table2Row
	table2Err  error
	table3Once sync.Once
	table3Rows []Table3Row
	table3Err  error
)

// ComputeTable2 runs all six configurations over every program. The
// suite is deterministic, so the result is computed once and cached.
func ComputeTable2() ([]Table2Row, error) {
	table2Once.Do(func() { table2Rows, table2Err = ComputeTable2With(0) })
	return table2Rows, table2Err
}

// ComputeTable2With is the uncached sweep with an explicit parallelism
// knob (<= 0 selects GOMAXPROCS): every (program, configuration) cell is
// an independent analysis, so the fan-out is over all cells at once, not
// per program — six cells per program keeps the pool busy even when the
// programs differ wildly in size. Each cell front-ends its own copy of
// the program: an analysis builds CFGs and temporaries into the
// sem.Program it is handed, so concurrent cells must not share one. The
// benchmark harness uses this variant to measure serial-vs-parallel
// sweep time.
func ComputeTable2With(parallelism int) ([]Table2Row, error) {
	specs := suite.Programs()
	configs := []core.Config{
		jc(jump.Polynomial, true, true),
		jc(jump.PassThrough, true, true),
		jc(jump.Intraprocedural, true, true),
		jc(jump.Literal, true, true),
		jc(jump.Polynomial, true, false),
		jc(jump.PassThrough, true, false),
	}
	nc := len(configs)
	cells := make([]int, len(specs)*nc)
	err := par.ForEach(parallelism, len(cells), func(k int) error {
		prog, _, err := loadProgram(specs[k/nc])
		if err != nil {
			return err
		}
		cells[k] = countWith(prog, configs[k%nc])
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(specs))
	for i, spec := range specs {
		c := cells[i*nc:]
		rows[i] = Table2Row{
			Name: spec.Name,
			Poly: c[0], PassThru: c[1], Intra: c[2],
			Literal: c[3], PolyNoRet: c[4], PTNoRet: c[5],
		}
	}
	return rows, nil
}

// Table2 prints constants found through use of jump functions (paper
// Table 2).
func Table2(w io.Writer) error {
	rows, err := ComputeTable2()
	if err != nil {
		return err
	}
	return renderTable2(w, rows)
}

// Table2With is Table2 with an explicit sweep parallelism (uncached).
func Table2With(w io.Writer, parallelism int) error {
	rows, err := ComputeTable2With(parallelism)
	if err != nil {
		return err
	}
	return renderTable2(w, rows)
}

func renderTable2(w io.Writer, rows []Table2Row) error {
	fmt.Fprintln(w, "Table 2: constants found through use of jump functions")
	fmt.Fprintln(w, "                    ---- using return JFs ----   -- no return JFs --")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"Program", "Polynomial", "Pass-thru", "Intraproc", "Literal", "Polynomial", "Pass-thru")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %10d %10d %10d %10d %10d\n",
			r.Name, r.Poly, r.PassThru, r.Intra, r.Literal, r.PolyNoRet, r.PTNoRet)
	}
	return nil
}

// ---------------------------------------------------------------------
// Table 3

// Table3Row holds paper Table 3 for one program: polynomial without
// MOD, polynomial with MOD, complete propagation, and the purely
// intraprocedural baseline.
type Table3Row struct {
	Name      string
	NoMOD     int
	WithMOD   int
	Complete  int
	IntraOnly int
}

// ComputeTable3 runs the four techniques over every program (cached,
// like ComputeTable2).
func ComputeTable3() ([]Table3Row, error) {
	table3Once.Do(func() { table3Rows, table3Err = ComputeTable3With(0) })
	return table3Rows, table3Err
}

// ComputeTable3With is the uncached Table 3 sweep with an explicit
// parallelism knob, fanning out over all (program, technique) cells —
// each on its own front-ended program copy — like ComputeTable2With.
func ComputeTable3With(parallelism int) ([]Table3Row, error) {
	specs := suite.Programs()
	complete := jc(jump.Polynomial, true, true)
	complete.Complete = true
	configs := []core.Config{
		jc(jump.Polynomial, false, true),
		jc(jump.Polynomial, true, true),
		complete,
		{}, // placeholder: the intraprocedural baseline has its own entry point
	}
	nc := len(configs)
	cells := make([]int, len(specs)*nc)
	err := par.ForEach(parallelism, len(cells), func(k int) error {
		i, j := k/nc, k%nc
		prog, _, err := loadProgram(specs[i])
		if err != nil {
			return err
		}
		if j == nc-1 {
			cells[k] = core.IntraproceduralCount(prog).Total
		} else {
			cells[k] = countWith(prog, configs[j])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(specs))
	for i, spec := range specs {
		c := cells[i*nc:]
		rows[i] = Table3Row{Name: spec.Name, NoMOD: c[0], WithMOD: c[1], Complete: c[2], IntraOnly: c[3]}
	}
	return rows, nil
}

// Table3 prints the technique comparison (paper Table 3).
func Table3(w io.Writer) error {
	rows, err := ComputeTable3()
	if err != nil {
		return err
	}
	return renderTable3(w, rows)
}

// Table3With is Table3 with an explicit sweep parallelism (uncached).
func Table3With(w io.Writer, parallelism int) error {
	rows, err := ComputeTable3With(parallelism)
	if err != nil {
		return err
	}
	return renderTable3(w, rows)
}

func renderTable3(w io.Writer, rows []Table3Row) error {
	fmt.Fprintln(w, "Table 3: comparison of most precise jump function with other propagation techniques")
	fmt.Fprintf(w, "%-12s %14s %14s %14s %16s\n",
		"Program", "Poly w/o MOD", "Poly w/ MOD", "Complete", "Intraprocedural")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14d %14d %14d %16d\n",
			r.Name, r.NoMOD, r.WithMOD, r.Complete, r.IntraOnly)
	}
	return nil
}

// Full prints every exhibit.
func Full(w io.Writer) error {
	if err := Figure1(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Table1(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Table2(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return Table3(w)
}
