package gen

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// TestGeneratedProgramsAreValid: every generated program parses, passes
// semantic analysis, and terminates under the interpreter.
func TestGeneratedProgramsAreValid(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := Program(Config{Seed: seed, WithReads: seed%3 == 0})
		var diags source.ErrorList
		f := parser.ParseSource("gen.f", src, &diags)
		prog := sem.Analyze(f, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: invalid program:\n%s\n--- source ---\n%s", seed, diags.Error(), src)
		}
		if _, err := interp.Run(prog, interp.Options{Input: []int64{3, 1, 4, 1, 5}, MaxSteps: 1 << 18}); err != nil {
			t.Fatalf("seed %d: execution failed: %v\n--- source ---\n%s", seed, err, src)
		}
	}
}

// TestDeterminism: same seed, same program.
func TestDeterminism(t *testing.T) {
	a := Program(Config{Seed: 42})
	b := Program(Config{Seed: 42})
	if a != b {
		t.Error("generator must be deterministic per seed")
	}
	c := Program(Config{Seed: 43})
	if a == c {
		t.Error("different seeds should give different programs")
	}
}

// TestSizeScaling: the size knobs actually scale the program.
func TestSizeScaling(t *testing.T) {
	small := Program(Config{Seed: 7, NumProcs: 2, StmtsPerProc: 3})
	big := Program(Config{Seed: 7, NumProcs: 12, StmtsPerProc: 30})
	if len(big) < 2*len(small) {
		t.Errorf("scaling broken: small=%d big=%d", len(small), len(big))
	}
}
