// Package gen generates random — but always valid and terminating —
// F77s programs. The soundness property tests run the interprocedural
// analyzer over generated programs and then execute them, checking that
// every constant the analyzer reports matches the value observed at run
// time. The benchmark harness uses the same generator for size sweeps.
//
// Guarantees (by construction):
//   - the program parses and passes semantic analysis;
//   - execution terminates: the call graph is acyclic (procedures only
//     call later-defined ones) and every DO loop has small constant
//     trip bounds;
//   - no undefined arithmetic: divisors and MOD operands are non-zero
//     constants, exponents are small non-negative constants.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes the generator.
type Config struct {
	Seed int64
	// NumProcs is the number of subroutines/functions besides MAIN
	// (default 4).
	NumProcs int
	// StmtsPerProc is the approximate body length (default 8).
	StmtsPerProc int
	// MaxFormals bounds formal-parameter counts (default 3).
	MaxFormals int
	// Globals is the number of COMMON integers shared program-wide
	// (default 2).
	Globals int
	// WithReads sprinkles READ statements (runtime inputs) when true.
	WithReads bool
}

func (c *Config) setDefaults() {
	if c.NumProcs <= 0 {
		c.NumProcs = 4
	}
	if c.StmtsPerProc <= 0 {
		c.StmtsPerProc = 8
	}
	if c.MaxFormals <= 0 {
		c.MaxFormals = 3
	}
	if c.Globals < 0 {
		c.Globals = 0
	} else if c.Globals == 0 {
		c.Globals = 2
	}
}

// procSpec describes one generated procedure.
type procSpec struct {
	name       string
	isFunction bool
	formals    []string
}

type generator struct {
	r       *rand.Rand
	cfg     Config
	procs   []procSpec // procs[i] may only call procs[j] for j > i
	globals []string
	b       strings.Builder
	// per-procedure state:
	locals    []string
	depth     int
	callsLeft int
	loopVars  map[string]bool // active DO variables: not writable (F77 rule)
	nextLabel int             // generator for forward-jump labels
}

// Program returns the source text of a random program.
func Program(cfg Config) string {
	cfg.setDefaults()
	g := &generator{r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}

	for i := 0; i < cfg.Globals; i++ {
		g.globals = append(g.globals, fmt.Sprintf("NG%d", i))
	}
	// MAIN is procs[0].
	g.procs = append(g.procs, procSpec{name: "MAIN"})
	for i := 1; i <= cfg.NumProcs; i++ {
		spec := procSpec{
			name:       fmt.Sprintf("P%d", i),
			isFunction: g.r.Intn(4) == 0,
		}
		nf := g.r.Intn(cfg.MaxFormals + 1)
		if spec.isFunction && nf == 0 {
			nf = 1
		}
		for j := 0; j < nf; j++ {
			spec.formals = append(spec.formals, fmt.Sprintf("K%d", j))
		}
		g.procs = append(g.procs, spec)
	}

	for i := range g.procs {
		g.emitProc(i)
		g.b.WriteString("\n")
	}
	return g.b.String()
}

func (g *generator) line(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, "%s%s\n", strings.Repeat("  ", g.depth), fmt.Sprintf(format, args...))
}

func (g *generator) emitProc(idx int) {
	spec := g.procs[idx]
	g.locals = nil
	nLocals := 2 + g.r.Intn(3)
	for i := 0; i < nLocals; i++ {
		g.locals = append(g.locals, fmt.Sprintf("L%d", i))
	}

	switch {
	case idx == 0:
		g.line("PROGRAM MAIN")
	case spec.isFunction:
		g.line("INTEGER FUNCTION %s(%s)", spec.name, strings.Join(spec.formals, ", "))
	default:
		g.line("SUBROUTINE %s(%s)", spec.name, strings.Join(spec.formals, ", "))
	}
	g.depth = 1
	decls := append([]string{}, g.locals...)
	decls = append(decls, spec.formals...)
	g.line("INTEGER %s", strings.Join(decls, ", "))
	g.line("INTEGER IVEC(8)")
	if len(g.globals) > 0 {
		g.line("INTEGER %s", strings.Join(g.globals, ", "))
		g.line("COMMON /GBL/ %s", strings.Join(g.globals, ", "))
	}

	// Initialize locals so uses are defined.
	for _, l := range g.locals {
		g.line("%s = %s", l, intLit(g.r.Intn(20)-5))
	}
	if idx == 0 && len(g.globals) > 0 {
		for _, gl := range g.globals {
			if g.r.Intn(2) == 0 {
				g.line("%s = %d", gl, g.r.Intn(50))
			}
		}
	}

	// Cap outgoing calls so the dynamic call tree stays small (the
	// static call graph is acyclic, so total work is bounded by the
	// product of per-procedure call counts).
	g.callsLeft = 3
	g.loopVars = make(map[string]bool)
	g.nextLabel = 100
	n := 1 + g.r.Intn(g.cfg.StmtsPerProc)
	for i := 0; i < n; i++ {
		g.stmt(idx, 0, true)
	}

	if spec.isFunction {
		g.line("%s = %s", spec.name, g.expr(idx, 2))
	}
	if g.r.Intn(3) == 0 {
		g.line("PRINT *, %s", g.readableVar(idx))
	}
	g.depth = 0
	g.line("END")
}

// vars in scope for reading (locals + formals + globals).
func (g *generator) scope(idx int) []string {
	spec := g.procs[idx]
	vars := append([]string{}, g.locals...)
	vars = append(vars, spec.formals...)
	vars = append(vars, g.globals...)
	return vars
}

func (g *generator) readableVar(idx int) string {
	vars := g.scope(idx)
	return vars[g.r.Intn(len(vars))]
}

// writableVar picks an assignment target, never an active DO variable.
func (g *generator) writableVar(idx int) string {
	for tries := 0; tries < 8; tries++ {
		v := g.readableVar(idx)
		if !g.loopVars[v] {
			return v
		}
	}
	return g.locals[len(g.locals)-1]
}

func (g *generator) stmt(idx int, nest int, allowCalls bool) {
	choice := g.r.Intn(12)
	switch {
	case choice < 4: // assignment
		g.line("%s = %s", g.writableVar(idx), g.expr(idx, 2))
	case choice == 10: // array store (index provably in 1..8)
		g.line("IVEC(MOD(ABS(%s), 8) + 1) = %s", g.expr(idx, 1), g.expr(idx, 1))
	case choice == 11: // array load
		g.line("%s = IVEC(MOD(ABS(%s), 8) + 1)", g.writableVar(idx), g.expr(idx, 1))
	case choice < 6 && nest < 2: // IF
		g.line("IF (%s) THEN", g.cond(idx))
		g.depth++
		g.stmt(idx, nest+1, allowCalls)
		g.depth--
		if g.r.Intn(2) == 0 {
			g.line("ELSE")
			g.depth++
			g.stmt(idx, nest+1, allowCalls)
			g.depth--
		}
		g.line("ENDIF")
	case choice < 7 && nest < 2: // DO loop with small constant bounds
		v := g.freeLoopVar()
		if v == "" {
			g.line("%s = %s", g.writableVar(idx), g.expr(idx, 1))
			return
		}
		g.line("DO %s = 1, %d", v, 1+g.r.Intn(4))
		g.loopVars[v] = true
		g.depth++
		g.stmt(idx, nest+1, false) // no calls inside loops: bounds work
		g.depth--
		delete(g.loopVars, v)
		g.line("ENDDO")
	case choice < 9: // call a later procedure
		callees := g.callableFrom(idx)
		if len(callees) == 0 || !allowCalls || g.callsLeft == 0 {
			g.line("%s = %s", g.writableVar(idx), g.expr(idx, 1))
			return
		}
		g.callsLeft--
		target := callees[g.r.Intn(len(callees))]
		spec := g.procs[target]
		args := make([]string, len(spec.formals))
		for i := range args {
			switch g.r.Intn(4) {
			case 0:
				args[i] = fmt.Sprintf("%d", g.r.Intn(30))
			case 1:
				args[i] = g.readableVar(idx)
			default:
				args[i] = g.expr(idx, 1)
			}
		}
		if spec.isFunction {
			g.line("%s = %s(%s)", g.writableVar(idx), spec.name, strings.Join(args, ", "))
		} else {
			g.line("CALL %s(%s)", spec.name, strings.Join(args, ", "))
		}
	default:
		switch {
		case nest == 0 && g.r.Intn(4) == 0:
			g.classicBranch(idx)
		case g.cfg.WithReads && g.r.Intn(2) == 0:
			g.line("READ *, %s", g.writableVar(idx))
		default:
			g.line("PRINT *, %s", g.expr(idx, 1))
		}
	}
}

// classicBranch emits a forward-jumping arithmetic IF or computed GOTO
// diamond (labels are unique and strictly forward, preserving
// termination).
func (g *generator) classicBranch(idx int) {
	l1, l2, l3, out := g.nextLabel, g.nextLabel+1, g.nextLabel+2, g.nextLabel+3
	g.nextLabel += 4
	if g.r.Intn(2) == 0 {
		g.line("IF (%s) %d, %d, %d", g.expr(idx, 1), l1, l2, l3)
	} else {
		g.line("GOTO (%d, %d, %d), %s", l1, l2, l3, g.expr(idx, 1))
		g.line("%s = %s", g.writableVar(idx), g.expr(idx, 1)) // fall-through
		g.line("GOTO %d", out)
	}
	g.line("%d %s = %s", l1, g.writableVar(idx), g.expr(idx, 1))
	g.line("GOTO %d", out)
	g.line("%d %s = %s", l2, g.writableVar(idx), g.expr(idx, 1))
	g.line("GOTO %d", out)
	g.line("%d %s = %s", l3, g.writableVar(idx), g.expr(idx, 1))
	g.line("%d CONTINUE", out)
}

// freeLoopVar picks a local not already used as a DO variable.
func (g *generator) freeLoopVar() string {
	for tries := 0; tries < 8; tries++ {
		v := g.locals[g.r.Intn(len(g.locals))]
		if !g.loopVars[v] {
			return v
		}
	}
	return ""
}

func (g *generator) callableFrom(idx int) []int {
	var out []int
	for j := idx + 1; j < len(g.procs); j++ {
		out = append(out, j)
	}
	return out
}

// expr produces an integer expression of bounded depth with no
// undefined operations.
func (g *generator) expr(idx int, depth int) string {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return intLit(g.r.Intn(40) - 10)
		}
		return g.readableVar(idx)
	}
	a := g.expr(idx, depth-1)
	b := g.expr(idx, depth-1)
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / %d)", a, 1+g.r.Intn(6)) // non-zero divisor
	case 4:
		return fmt.Sprintf("MOD(%s, %d)", a, 2+g.r.Intn(5))
	case 5:
		return fmt.Sprintf("MAX(%s, %s)", a, b)
	case 6:
		return fmt.Sprintf("MIN(%s, %s)", a, b)
	default:
		return fmt.Sprintf("ABS(%s)", a)
	}
}

// intLit renders an integer literal; negative values are parenthesized
// so they remain valid as operands (F77 forbids `X - -4`).
func intLit(v int) string {
	if v < 0 {
		return fmt.Sprintf("(-%d)", -v)
	}
	return fmt.Sprintf("%d", v)
}

func (g *generator) cond(idx int) string {
	ops := []string{".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE."}
	c := fmt.Sprintf("%s %s %s", g.expr(idx, 1), ops[g.r.Intn(len(ops))], g.expr(idx, 1))
	if g.r.Intn(4) == 0 {
		c = fmt.Sprintf("%s .AND. %s %s %s", c, g.expr(idx, 1), ops[g.r.Intn(len(ops))], g.expr(idx, 1))
	}
	return c
}
