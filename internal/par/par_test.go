package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", got)
	}
}

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 100
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Index 3 and 7 both fail; the reported error must be index 3's,
	// whatever the scheduling.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(4, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want errA", trial, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_ = ForEach(1, 100, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if got := ran.Load(); got != 3 {
		t.Errorf("serial ForEach ran %d tasks after early error, want 3", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "kaboom" {
					t.Errorf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = ForEach(workers, 10, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachZeroCount(t *testing.T) {
	if err := ForEach(4, 0, func(i int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCtxCancelMidFanout(t *testing.T) {
	// A cancellation fired from inside task 8 must stop the pool from
	// claiming the rest of the batch: workers observe ctx.Done() between
	// tasks, so at most the tasks already in flight complete.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachCtx(ctx, workers, 1000, func(i int) error {
			if ran.Add(1) == 8 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= 1000 || got < 8 {
			t.Fatalf("workers=%d: %d tasks ran after mid-fan-out cancel, want a handful", workers, got)
		}
	}
}

func TestForEachCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			t.Errorf("workers=%d: task %d ran under a dead context", workers, i)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

func TestForEachCtxTaskErrorWinsOverCancel(t *testing.T) {
	// When a task has already failed, its error is more informative than
	// the raw context error (the pipeline's budget checks wrap it with
	// the site that noticed); the pool must prefer it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want task error", err)
	}
}

func TestForEachCtxNilCtxCompletes(t *testing.T) {
	var ran atomic.Int32
	if err := ForEachCtx(nil, 4, 50, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
}
