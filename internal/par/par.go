// Package par provides the bounded worker pools that fan the analysis
// pipeline out across CPUs: per-unit semantic checks, per-procedure
// SSA and jump-function construction, per-procedure substitution, and
// the table-sweep cells all run through ForEach.
//
// The package is deliberately tiny and dependency-free (like guard) so
// every layer can use it. Two invariants matter to callers:
//
//   - Determinism: tasks are identified by index; error selection is by
//     lowest index, so a fan-out returns the same error a serial loop
//     would have hit first (among the tasks that ran), regardless of
//     scheduling.
//
//   - Fault attribution: a panic inside a task is re-raised on the
//     caller's goroutine, so the guard.Repanic chain wrapping each
//     pipeline phase observes it exactly as in the serial code path and
//     the public API still reports a structured internal error instead
//     of crashing the process.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob against a task count: n <= 0
// means one worker per CPU (GOMAXPROCS); the result is clamped to
// [1, count] (with a floor of 1 even for count == 0).
func Workers(n, count int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > count {
		n = count
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, count) on up to workers
// goroutines (workers <= 0 selects GOMAXPROCS) and returns the error of
// the lowest-indexed failing task. After a task fails or panics the
// remaining tasks are skipped (tasks already running complete), which
// propagates budget exhaustion and context cancellation to the whole
// pool promptly. A panicking task wins over a higher-indexed error,
// mirroring what a serial loop would have hit first; the panic value is
// re-raised on the caller's goroutine.
func ForEach(workers, count int, fn func(i int) error) error {
	return ForEachCtx(nil, workers, count, fn)
}

// ForEachCtx is ForEach bounded by a context: every worker observes
// ctx.Done() between tasks, so a cancelled or deadline-exceeded fan-out
// stops claiming new tasks instead of finishing the whole batch. Tasks
// already running complete (fn is never interrupted mid-flight).
//
// The error contract extends ForEach's: a task panic is re-raised
// first; otherwise the lowest-indexed task error wins (cancellation
// usually surfaces there too, as the tasks' own budget checks fail);
// otherwise, if the context was cancelled — whether or not any tasks
// were skipped — ctx.Err() is returned so a partial fan-out can never
// be mistaken for a completed one. A nil ctx means no cancellation.
func ForEachCtx(ctx context.Context, workers, count int, fn func(i int) error) error {
	if count <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers = Workers(workers, count)
	if workers == 1 {
		for i := 0; i < count; i++ {
			if cancelled() {
				return ctx.Err()
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		if cancelled() {
			return ctx.Err()
		}
		return nil
	}

	var (
		cursor atomic.Int64
		stop   atomic.Bool
		mu     sync.Mutex
		wg     sync.WaitGroup

		errIdx   = count
		firstErr error
		panIdx   = count
		panVal   interface{}
		panicked bool
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(cursor.Add(1))
				if i >= count || stop.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stop.Store(true)
							mu.Lock()
							if i < panIdx {
								panIdx, panVal, panicked = i, r, true
							}
							mu.Unlock()
						}
					}()
					if err := fn(i); err != nil {
						stop.Store(true)
						mu.Lock()
						if i < errIdx {
							errIdx, firstErr = i, err
						}
						mu.Unlock()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicked && panIdx <= errIdx {
		panic(panVal)
	}
	if firstErr != nil {
		return firstErr
	}
	if cancelled() {
		return ctx.Err()
	}
	return nil
}
