// Package subst implements the paper's effectiveness metric: the number
// of constants the analyzer actually substitutes into the program text.
//
// Metzger and Stroud argue this is the right measurement — it "relates
// more directly to code improvement" and "factors out procedure length
// and modularity", because a constant global that a procedure never
// references is known but irrelevant. A use of a scalar variable is
// substituted when the engine proves its value is an integer constant
// at that use, under a given configuration's final entry environments.
//
// Substitution is refused where it would change program semantics:
// assignment targets, READ targets, DO variables, and actual arguments
// that the callee may modify (call-by-reference out-parameters).
package subst

import (
	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/dom"
	"repro/internal/guard"
	"repro/internal/intra"
	"repro/internal/modref"
	"repro/internal/par"
	"repro/internal/sem"
	"repro/internal/ssa"
	"repro/internal/symbolic"
	"strconv"
)

// Options configures a substitution pass.
type Options struct {
	// UseMOD: kill sets at calls come from MOD summaries; otherwise
	// worst-case.
	UseMOD bool
	// UseReturnJFs consults callee return summaries during the re-run.
	UseReturnJFs bool
	// Returns supplies the return summaries when UseReturnJFs is set.
	Returns map[*sem.Procedure]*intra.ReturnSummary
	// FullSubstitution: see intra.Options.
	FullSubstitution bool
	// Gated: see intra.Options.
	Gated bool
	// Prune removes dead code before counting (complete propagation).
	Prune bool
	// Entry provides the final interprocedural entry environment per
	// procedure (nil for a purely intraprocedural count).
	Entry func(p *sem.Procedure) map[ssa.Var]int64
	// Builder is the shared expression interner (one is created when
	// nil).
	Builder *symbolic.Builder
	// Memo, when non-nil, memoizes per-procedure substitution results
	// across Run calls: a Lookup hit skips the procedure's re-analysis;
	// fresh results are offered back via Store. Lookup is called
	// concurrently and must be read-only; Store must be safe for
	// concurrent use. Stored replacement maps must never be mutated.
	Memo Memo
	// Parallelism bounds the worker goroutines counting procedures
	// concurrently: <= 0 selects GOMAXPROCS, 1 is serial. Counts and
	// replacements are identical either way (procedures are independent;
	// workers get private builders and merge in call-graph order).
	Parallelism int
}

// Memo caches per-procedure substitution results across Run calls. See
// Options.Memo.
type Memo interface {
	Lookup(p *sem.Procedure) (count int, repl map[ast.Expr]string, ok bool)
	Store(p *sem.Procedure, count int, repl map[ast.Expr]string)
}

// Result reports what was (or would be) substituted.
type Result struct {
	// PerProc counts substituted uses per procedure.
	PerProc map[*sem.Procedure]int
	// Total is the program-wide count — the number reported in the
	// paper's Tables 2 and 3.
	Total int
	// Replacements maps each substituted use to its constant text,
	// ready for ast.WriteFileSubst.
	Replacements map[ast.Expr]string
}

// Run counts (and records) constant substitutions for the whole
// program under the given configuration.
func Run(cg *callgraph.Graph, mod *modref.Info, opts Options) *Result {
	defer guard.Repanic("subst")
	guard.InjectPanic("subst")
	if opts.Builder == nil {
		opts.Builder = symbolic.NewBuilder()
	}
	res := &Result{
		PerProc:      make(map[*sem.Procedure]int),
		Replacements: make(map[ast.Expr]string),
	}
	workers := par.Workers(opts.Parallelism, len(cg.Order))
	counts := make([]int, len(cg.Order))
	repls := make([]map[ast.Expr]string, len(cg.Order))
	workerBuilders := make([]*symbolic.Builder, len(cg.Order))
	_ = par.ForEach(workers, len(cg.Order), func(i int) error {
		n := cg.Order[i]
		if opts.Memo != nil {
			if count, repl, ok := opts.Memo.Lookup(n.Proc); ok {
				counts[i], repls[i] = count, repl
				return nil
			}
		}
		popts := opts
		if workers > 1 {
			// Private interner per procedure: the hash-consing tables are
			// not goroutine-safe. Replacement keys are this procedure's own
			// AST nodes, so per-procedure maps merge without collisions.
			pb := symbolic.NewBuilder()
			pb.SetMaxSize(opts.Builder.MaxSize())
			popts.Builder = pb
			workerBuilders[i] = pb
		}
		repls[i] = make(map[ast.Expr]string)
		counts[i] = substProcGuarded(cg, mod, n, int64(i+1)<<32, popts, repls[i])
		if opts.Memo != nil {
			opts.Memo.Store(n.Proc, counts[i], repls[i])
		}
		return nil
	})
	for i, n := range cg.Order {
		if pb := workerBuilders[i]; pb != nil {
			opts.Builder.AddTruncated(pb.Truncated())
		}
		res.PerProc[n.Proc] = counts[i]
		res.Total += counts[i]
		for k, v := range repls[i] {
			res.Replacements[k] = v
		}
	}
	return res
}

// substProcGuarded tags panics with the failing procedure's name.
func substProcGuarded(cg *callgraph.Graph, mod *modref.Info, n *callgraph.Node, opaqueBase int64, opts Options, repl map[ast.Expr]string) int {
	defer guard.Repanic("subst", n.Proc.Name)
	return substProc(cg, mod, n, opaqueBase, opts, repl)
}

func substProc(cg *callgraph.Graph, mod *modref.Info, n *callgraph.Node, opaqueBase int64, opts Options, repl map[ast.Expr]string) int {
	ssaOpts := ssa.Options{Globals: cg.Prog.Globals()}
	if opts.UseMOD {
		ssaOpts.Kills = mod.Kills
	}
	dt := dom.Compute(n.CFG)
	fn := ssa.Build(n.CFG, dt, ssaOpts)

	iopts := intra.Options{
		Builder:          opts.Builder,
		OpaqueBase:       opaqueBase,
		Prune:            opts.Prune,
		FullSubstitution: opts.FullSubstitution,
		Gated:            opts.Gated,
	}
	if opts.Entry != nil {
		iopts.Entry = opts.Entry(n.Proc)
	}
	if opts.UseReturnJFs && opts.Returns != nil {
		iopts.ReturnJF = func(callee string) *intra.ReturnSummary {
			if cn := cg.Nodes[callee]; cn != nil {
				return opts.Returns[cn.Proc]
			}
			return nil
		}
		if opts.UseMOD {
			iopts.GMod = func(callee string, g *sem.GlobalVar) bool {
				cn := cg.Nodes[callee]
				if cn == nil {
					return true
				}
				return mod.GMod(cn.Proc, g)
			}
		}
	}
	r := intra.Analyze(fn, iopts)

	c := &counter{
		proc: n.Proc, cg: cg, mod: mod, fn: fn, res: r,
		useMOD: opts.UseMOD, repl: repl,
	}
	c.walkStmts(n.Proc.Unit.Body)
	return c.count
}

type counter struct {
	proc   *sem.Procedure
	cg     *callgraph.Graph
	mod    *modref.Info
	fn     *ssa.Func
	res    *intra.Result
	useMOD bool
	repl   map[ast.Expr]string
	count  int
}

func (c *counter) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.walkStmt(s)
	}
}

func (c *counter) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		// The target is not substitutable, but array subscripts on the
		// left are rvalues.
		if ap, ok := x.Lhs.(*ast.Apply); ok {
			for _, sub := range ap.Args {
				c.visitRvalue(sub)
			}
		}
		c.visitRvalue(x.Rhs)
	case *ast.CallStmt:
		c.visitCallArgs(x.Name, x.Args)
	case *ast.IfStmt:
		c.visitRvalue(x.Cond)
		c.walkStmts(x.Then)
		for _, ei := range x.ElseIfs {
			c.visitRvalue(ei.Cond)
			c.walkStmts(ei.Body)
		}
		c.walkStmts(x.Else)
	case *ast.DoStmt:
		// The DO variable itself is not substitutable; bounds are.
		c.visitRvalue(x.From)
		c.visitRvalue(x.To)
		if x.Step != nil {
			c.visitRvalue(x.Step)
		}
		c.walkStmts(x.Body)
	case *ast.ReadStmt:
		// Targets are written; only array subscripts are rvalues.
		for _, t := range x.Args {
			if ap, ok := t.(*ast.Apply); ok {
				for _, sub := range ap.Args {
					c.visitRvalue(sub)
				}
			}
		}
	case *ast.PrintStmt:
		for _, a := range x.Args {
			c.visitRvalue(a)
		}
	case *ast.ComputedGotoStmt:
		c.visitRvalue(x.Index)
	case *ast.ArithIfStmt:
		c.visitRvalue(x.Expr)
	}
}

// visitRvalue descends an expression counting substitutable constant
// uses of scalar variables.
func (c *counter) visitRvalue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		c.tryCount(x)
	case *ast.Unary:
		c.visitRvalue(x.X)
	case *ast.Binary:
		c.visitRvalue(x.X)
		c.visitRvalue(x.Y)
	case *ast.Apply:
		switch c.cg.Prog.ApplyKindOf(x) {
		case sem.ApplyCall:
			c.visitCallArgs(x.Name, x.Args)
		default: // array element or intrinsic: arguments are plain rvalues
			for _, a := range x.Args {
				c.visitRvalue(a)
			}
		}
	}
}

// visitCallArgs handles by-reference actuals: a variable actual bound
// to a formal the callee may modify cannot be replaced by a constant.
func (c *counter) visitCallArgs(callee string, args []ast.Expr) {
	calleeNode := c.cg.Nodes[callee]
	for i, a := range args {
		if id, ok := a.(*ast.Ident); ok {
			if s := c.proc.Lookup(id.Name); s != nil && !s.IsArray && s.Kind != sem.SymConst {
				modified := true // worst case
				if c.useMOD && calleeNode != nil {
					modified = c.mod.Mod(calleeNode.Proc, i)
				}
				if modified {
					continue // out-parameter: not substitutable
				}
			}
		}
		c.visitRvalue(a)
	}
}

// tryCount counts one Ident use if its value is a known constant.
func (c *counter) tryCount(id *ast.Ident) {
	s := c.proc.Lookup(id.Name)
	if s == nil || s.IsArray || s.Type != ast.TypeInteger {
		return
	}
	switch s.Kind {
	case sem.SymConst, sem.SymProc:
		// PARAMETER names are already compile-time constants; not an
		// analysis result.
		return
	}
	v := c.fn.UseVal[id]
	if v == nil {
		return
	}
	if blk := c.fn.UseBlock[id]; blk != nil && !c.res.BlockExecutable(blk) {
		return // the use is in dead code (pruned): nothing to substitute
	}
	e := c.res.ExprOf(v)
	if e == nil {
		return // value never computed (unreached)
	}
	if k, ok := e.IsConst(); ok {
		c.count++
		if c.repl != nil {
			txt := strconv.FormatInt(k, 10)
			if k < 0 {
				// `X - -3` is invalid FORTRAN; parenthesize.
				txt = "(" + txt + ")"
			}
			c.repl[id] = txt
		}
	}
}
