package subst

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/ssa"
)

func run(t *testing.T, src string, opts Options) (*Result, *sem.Program, *ast.File) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	return Run(cg, mod, opts), prog, f
}

func TestCountsLocalConstants(t *testing.T) {
	res, prog, _ := run(t, `PROGRAM P
INTEGER K, M
K = 5
M = K + K
PRINT *, M
END
`, Options{UseMOD: true})
	// Uses: K (twice in K+K) and M (in PRINT) = 3.
	if res.Total != 3 {
		t.Errorf("total = %d, want 3", res.Total)
	}
	if res.PerProc[prog.Main] != 3 {
		t.Errorf("per-proc = %v", res.PerProc)
	}
}

func TestEntryEnvironmentEnablesInterprocedural(t *testing.T) {
	src := `PROGRAM P
CALL S(4)
END
SUBROUTINE S(N)
INTEGER N, M
M = N * 2
PRINT *, M
END
`
	// Parse once so symbol identities are stable across both runs.
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)

	// Without an entry environment the formal is unknown: 0 uses.
	res := Run(cg, mod, Options{UseMOD: true})
	if res.Total != 0 {
		t.Errorf("without env: total = %d, want 0", res.Total)
	}
	// With N=4: uses of N and M count.
	sp := prog.Procs["S"]
	res2 := Run(cg, mod, Options{UseMOD: true, Entry: func(p *sem.Procedure) map[ssa.Var]int64 {
		if p == sp {
			return map[ssa.Var]int64{ssa.VarOf(sp.Formals[0]): 4}
		}
		return nil
	}})
	if res2.Total != 2 {
		t.Errorf("with env: total = %d, want 2 (N and M uses)", res2.Total)
	}
}

func TestExclusions(t *testing.T) {
	src := `PROGRAM P
INTEGER K, A(10), I
K = 3
A(K) = K
READ *, A(K)
DO I = 1, K
  PRINT *, I
ENDDO
CALL IN(K)
CALL OUT(K)
END
SUBROUTINE OUT(X)
INTEGER X
X = 9
END
SUBROUTINE IN(X)
INTEGER X
PRINT *, X
END
`
	res, _, f := run(t, src, Options{UseMOD: true})
	// Countable uses of K: subscript in A(K)=..., RHS K, subscript in
	// READ's A(K), DO bound, and the actual to IN (not modified).
	// NOT countable: the actual to OUT (X is modified — substituting
	// would break the program, and K is no longer constant afterwards
	// anyway); lhs positions; the DO variable I (non-constant anyway).
	if res.Total != 5 {
		var b strings.Builder
		_ = ast.WriteFileSubst(&b, f, res.Replacements)
		t.Errorf("total = %d, want 5\n%s", res.Total, b.String())
	}
	// Verify OUT's argument survived substitution.
	var b strings.Builder
	_ = ast.WriteFileSubst(&b, f, res.Replacements)
	out := b.String()
	if !strings.Contains(out, "CALL OUT(K)") {
		t.Errorf("out-parameter actual must not be substituted:\n%s", out)
	}
	if !strings.Contains(out, "CALL IN(3)") {
		t.Errorf("read-only actual should be substituted:\n%s", out)
	}
}

func TestWithoutMODNoActualsSubstituted(t *testing.T) {
	src := `PROGRAM P
INTEGER K
K = 3
CALL IN(K)
END
SUBROUTINE IN(X)
INTEGER X
PRINT *, X
END
`
	res, _, _ := run(t, src, Options{UseMOD: false})
	// Without MOD, any variable actual may be modified: K's use at the
	// call is not substitutable. (X inside IN is unknown anyway.)
	if res.Total != 0 {
		t.Errorf("total = %d, want 0", res.Total)
	}
}

func TestParameterConstantsNotCounted(t *testing.T) {
	res, _, _ := run(t, `PROGRAM P
PARAMETER (N = 10)
INTEGER K
K = N
PRINT *, K
END
`, Options{UseMOD: true})
	// N is a PARAMETER (already a compile-time constant — not an
	// analysis result); K's use counts.
	if res.Total != 1 {
		t.Errorf("total = %d, want 1", res.Total)
	}
}

func TestPruneSkipsDeadUses(t *testing.T) {
	src := `PROGRAM P
INTEGER K, M
K = 1
IF (K .EQ. 2) THEN
  M = 7
  PRINT *, M
ENDIF
PRINT *, K
END
`
	plain, _, _ := run(t, src, Options{UseMOD: true})
	pruned, _, _ := run(t, src, Options{UseMOD: true, Prune: true})
	// The dead arm's M use disappears under pruning; K's uses remain.
	if pruned.Total >= plain.Total {
		t.Errorf("pruned (%d) should count fewer than plain (%d)", pruned.Total, plain.Total)
	}
}

func TestNegativeConstantsParenthesized(t *testing.T) {
	src := `PROGRAM P
INTEGER K, M
K = -3
M = 10 - K
PRINT *, M
END
`
	res, _, f := run(t, src, Options{UseMOD: true})
	var b strings.Builder
	_ = ast.WriteFileSubst(&b, f, res.Replacements)
	out := b.String()
	if !strings.Contains(out, "10 - (-3)") {
		t.Errorf("negative substitution must parenthesize:\n%s", out)
	}
	// And it must reparse.
	var diags source.ErrorList
	parser.ParseSource("t2.f", out, &diags)
	if diags.HasErrors() {
		t.Errorf("substituted source does not parse:\n%s", diags.Error())
	}
}

func TestRealVariablesNotCounted(t *testing.T) {
	res, _, _ := run(t, `PROGRAM P
REAL X
INTEGER K
X = 2.5
K = 3
PRINT *, X, K
END
`, Options{UseMOD: true})
	if res.Total != 1 {
		t.Errorf("total = %d, want 1 (only the integer use)", res.Total)
	}
}
