package interp

import (
	"strings"
	"testing"
)

// Classic F77 control flow: arithmetic IF and computed GOTO.

func TestArithmeticIf(t *testing.T) {
	src := `PROGRAM P
INTEGER I
READ *, I
IF (I - 5) 10, 20, 30
10 PRINT *, 'neg'
GOTO 40
20 PRINT *, 'zero'
GOTO 40
30 PRINT *, 'pos'
40 CONTINUE
END
`
	for _, c := range []struct {
		in   int64
		want string
	}{{1, "neg"}, {5, "zero"}, {9, "pos"}} {
		res := run(t, src, Options{Input: []int64{c.in}})
		if got := strings.TrimSpace(res.Output); got != c.want {
			t.Errorf("I=%d: output %q, want %q", c.in, got, c.want)
		}
	}
}

func TestArithmeticIfReal(t *testing.T) {
	src := `PROGRAM P
REAL X
X = 0.5
IF (X - 1.0) 10, 20, 30
10 PRINT *, 'lt'
GOTO 40
20 PRINT *, 'eq'
GOTO 40
30 PRINT *, 'gt'
40 CONTINUE
END
`
	res := run(t, src, Options{})
	if got := strings.TrimSpace(res.Output); got != "lt" {
		t.Errorf("output %q, want lt (0.5-1.0 is negative, no truncation)", got)
	}
}

func TestComputedGoto(t *testing.T) {
	src := `PROGRAM P
INTEGER I
READ *, I
GOTO (10, 20, 30), I
PRINT *, 'fall'
GOTO 40
10 PRINT *, 'one'
GOTO 40
20 PRINT *, 'two'
GOTO 40
30 PRINT *, 'three'
40 CONTINUE
END
`
	for _, c := range []struct {
		in   int64
		want string
	}{{1, "one"}, {2, "two"}, {3, "three"}, {0, "fall"}, {4, "fall"}, {-7, "fall"}} {
		res := run(t, src, Options{Input: []int64{c.in}})
		if got := strings.TrimSpace(res.Output); got != c.want {
			t.Errorf("I=%d: output %q, want %q", c.in, got, c.want)
		}
	}
}

func TestComputedGotoLoop(t *testing.T) {
	// A small state machine driven by computed GOTO.
	src := `PROGRAM P
INTEGER S, C
S = 1
C = 0
10 CONTINUE
C = C + 1
IF (C .GT. 10) GOTO 99
GOTO (20, 30), S
20 S = 2
GOTO 10
30 S = 1
GOTO 10
99 PRINT *, C, S
END
`
	res := run(t, src, Options{})
	if got := strings.TrimSpace(res.Output); got != "11 1" {
		t.Errorf("output %q", got)
	}
}
