package interp

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	return res
}

func TestHelloArithmetic(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER I
I = 2 + 3*4
PRINT *, I, I - 1, I/2, MOD(I, 5), 2**5
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "14 13 7 4 32" {
		t.Errorf("output = %q", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `PROGRAM P
INTEGER I
READ *, I
IF (I .GT. 10) THEN
  PRINT *, 'big'
ELSEIF (I .GT. 5) THEN
  PRINT *, 'mid'
ELSE
  PRINT *, 'small'
ENDIF
END
`
	for _, c := range []struct {
		in   int64
		want string
	}{{20, "big"}, {7, "mid"}, {1, "small"}} {
		res := run(t, src, Options{Input: []int64{c.in}})
		if got := strings.TrimSpace(res.Output); got != c.want {
			t.Errorf("input %d: output %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDoLoops(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER I, S
S = 0
DO 10 I = 1, 10
  S = S + I
10 CONTINUE
PRINT *, S
DO I = 10, 1, -2
  S = S - 1
ENDDO
PRINT *, S
DO I = 5, 1
  S = 999
ENDDO
PRINT *, S
END
`, Options{})
	lines := strings.Fields(strings.ReplaceAll(res.Output, "\n", " "))
	if len(lines) != 3 || lines[0] != "55" || lines[1] != "50" || lines[2] != "50" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestDoLoopBoundSnapshot(t *testing.T) {
	// Changing N inside the loop must not affect the trip count.
	res := run(t, `PROGRAM P
INTEGER I, N, C
N = 3
C = 0
DO I = 1, N
  N = 100
  C = C + 1
ENDDO
PRINT *, C
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "3" {
		t.Errorf("trip count = %q, want 3", got)
	}
}

func TestCallByReference(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER X
X = 1
CALL BUMP(X)
CALL BUMP(X)
PRINT *, X
END
SUBROUTINE BUMP(A)
INTEGER A
A = A + 10
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "21" {
		t.Errorf("X = %q, want 21", got)
	}
}

func TestExpressionActualIsCopied(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER X
X = 5
CALL CLOBBER(X + 0)
PRINT *, X
END
SUBROUTINE CLOBBER(A)
INTEGER A
A = 999
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "5" {
		t.Errorf("X = %q, want 5 (expression passed by value)", got)
	}
}

func TestArraysAndElements(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER A(5), I
DO I = 1, 5
  A(I) = I*I
ENDDO
CALL TWIDDLE(A, 5)
PRINT *, A(1), A(5)
CALL SETEL(A(3))
PRINT *, A(3)
END
SUBROUTINE TWIDDLE(B, N)
INTEGER N, B(N)
B(1) = B(N)
END
SUBROUTINE SETEL(E)
INTEGER E
E = -7
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "25 25" || lines[1] != "-7" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestCommonStorageShared(t *testing.T) {
	res := run(t, `PROGRAM P
COMMON /C/ N
N = 5
CALL TWICE
PRINT *, N
END
SUBROUTINE TWICE()
COMMON /C/ M
M = M*2
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "10" {
		t.Errorf("N = %q, want 10", got)
	}
}

func TestFunctionCalls(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER R
R = ADD(2, 3) * ADD(1, 1)
PRINT *, R
PRINT *, FACT(5)
END
INTEGER FUNCTION ADD(A, B)
INTEGER A, B
ADD = A + B
END
INTEGER FUNCTION FACT(N)
INTEGER N
IF (N .LE. 1) THEN
  FACT = 1
ELSE
  FACT = N * FACT(N - 1)
ENDIF
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "10" || lines[1] != "120" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestGotoLoop(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER I
I = 0
10 I = I + 1
IF (I .LT. 4) GOTO 10
PRINT *, I
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "4" {
		t.Errorf("I = %q", got)
	}
}

func TestGotoOutOfLoop(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER I
DO I = 1, 100
  IF (I .EQ. 3) GOTO 20
ENDDO
20 PRINT *, I
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "3" {
		t.Errorf("I = %q, want 3", got)
	}
}

func TestStop(t *testing.T) {
	res := run(t, `PROGRAM P
PRINT *, 1
STOP
PRINT *, 2
END
`, Options{})
	if !res.Stopped {
		t.Error("Stopped flag not set")
	}
	if strings.Contains(res.Output, "2") {
		t.Errorf("statements after STOP ran: %q", res.Output)
	}
}

func TestStopInsideSubroutine(t *testing.T) {
	res := run(t, `PROGRAM P
CALL HALT
PRINT *, 'after'
END
SUBROUTINE HALT()
PRINT *, 'halting'
STOP
END
`, Options{})
	if !res.Stopped || strings.Contains(res.Output, "after") {
		t.Errorf("STOP in subroutine mishandled: %q", res.Output)
	}
}

func TestReadInput(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER A, B
READ *, A, B
PRINT *, A + B
END
`, Options{Input: []int64{30, 12}})
	if got := strings.TrimSpace(res.Output); got != "42" {
		t.Errorf("output = %q", got)
	}
}

func TestStepLimit(t *testing.T) {
	var diags source.ErrorList
	f := parser.ParseSource("t.f", `PROGRAM P
INTEGER I
I = 0
10 I = I + 1
IF (I .GT. 0) GOTO 10
END
`, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	_, err := Run(prog, Options{MaxSteps: 1000})
	if err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestEntrySnapshots(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER G
COMMON /C/ G
G = 9
CALL S(1)
CALL S(2)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`, Options{})
	var sProc *sem.Procedure
	for p := range res.Entries {
		if p.Name == "S" {
			sProc = p
		}
	}
	if sProc == nil {
		t.Fatal("no snapshots for S")
	}
	snaps := res.Entries[sProc]
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].Formals[0] != 1 || snaps[1].Formals[0] != 2 {
		t.Errorf("formal snapshots: %+v", snaps)
	}
	for _, s := range snaps {
		found := false
		for g, v := range s.Globals {
			if g.Block == "C" && v == 9 {
				found = true
			}
		}
		if !found {
			t.Errorf("global snapshot missing: %+v", s.Globals)
		}
	}
}

func TestParameterConstantsInExpressions(t *testing.T) {
	res := run(t, `PROGRAM P
PARAMETER (N = 6)
INTEGER A(N)
A(N) = N*7
PRINT *, A(N)
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K
PRINT *, K
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "42" || lines[1] != "6" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestRealArithmetic(t *testing.T) {
	res := run(t, `PROGRAM P
REAL X
X = 1.5 * 4
PRINT *, X
PRINT *, MAX(2.5, 1.0)
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "6" || lines[1] != "2.5" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestIntegerDivisionTruncation(t *testing.T) {
	res := run(t, `PROGRAM P
PRINT *, 7/2, -7/2, MOD(-7, 3)
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "3 -3 -1" {
		t.Errorf("output = %q", got)
	}
}

func TestLogicalOps(t *testing.T) {
	res := run(t, `PROGRAM P
LOGICAL A, B
A = .TRUE.
B = .NOT. A .OR. 1 .LT. 2 .AND. A
PRINT *, B
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "T" {
		t.Errorf("output = %q", got)
	}
}

func TestDataInits(t *testing.T) {
	res := run(t, `PROGRAM P
COMMON /C/ N
INTEGER K
DATA K / 7 /
PRINT *, N + K
END
SUBROUTINE UNUSED()
COMMON /C/ M
DATA M / 35 /
M = 0
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "42" {
		t.Errorf("output = %q (COMMON DATA from any unit + local DATA)", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"mod-zero", `PROGRAM P
INTEGER I, J
J = 0
I = MOD(5, J)
END
`, "MOD by zero"},
		{"int-div-zero", `PROGRAM P
INTEGER I, J
J = 0
I = 5 / J
END
`, "undefined integer operation"},
		{"real-div-zero", `PROGRAM P
REAL X, Y
Y = 0.0
X = 1.0 / Y
END
`, "division by zero"},
		{"zero-step", `PROGRAM P
INTEGER I, J
J = 0
DO I = 1, 5, J
ENDDO
END
`, "zero DO step"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var diags source.ErrorList
			f := parser.ParseSource("t.f", c.src, &diags)
			prog := sem.Analyze(f, &diags)
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			_, err := Run(prog, Options{})
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("err = %v, want contains %q", err, c.frag)
			}
		})
	}
}

func TestCallDepthLimit(t *testing.T) {
	// Unbounded recursion must hit the depth guard, not the Go stack.
	src := `PROGRAM P
CALL R(1)
END
SUBROUTINE R(N)
INTEGER N
CALL R(N + 1)
END
`
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	_, err := Run(prog, Options{})
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Errorf("err = %v, want depth limit", err)
	}
}

func TestDimensionlessArrayFormal(t *testing.T) {
	// An array formal declared without dimensions gets default storage
	// when invoked with a fresh array (main passes a real array here, so
	// the binding shares storage).
	res := run(t, `PROGRAM P
INTEGER A(5), I
DO I = 1, 5
  A(I) = I
ENDDO
CALL SUM5(A)
END
SUBROUTINE SUM5(B)
INTEGER B(5), S, I
S = 0
DO I = 1, 5
  S = S + B(I)
ENDDO
PRINT *, S
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "15" {
		t.Errorf("sum = %q, want 15", got)
	}
}

func TestRealPowAndRealIntrinsics(t *testing.T) {
	res := run(t, `PROGRAM P
REAL X, Y
X = 2.0 ** 3
Y = 2.0 ** (-2)
PRINT *, X, Y
PRINT *, MIN(1.5, 2.5), MAX(3, 1.5)
PRINT *, ABS(-2.5)
PRINT *, MOD(10, 3)
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "8 0.25" {
		t.Errorf("pow line = %q", lines[0])
	}
	if lines[1] != "1.5 3" {
		t.Errorf("minmax line = %q", lines[1])
	}
	if lines[2] != "2.5" {
		t.Errorf("abs line = %q", lines[2])
	}
	if lines[3] != "1" {
		t.Errorf("mod line = %q", lines[3])
	}
}

func TestReadIntoCommonAndArrays(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER NG, A(4), I
COMMON /C/ NG
READ *, NG, A(2)
CALL SHOW
PRINT *, A(2)
DO I = 1, 2
  READ *, A(I)
ENDDO
PRINT *, A(1) + A(2)
END
SUBROUTINE SHOW()
INTEGER NH
COMMON /C/ NH
PRINT *, NH
END
`, Options{Input: []int64{9, 8, 7, 6}})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "9" || lines[1] != "8" || lines[2] != "13" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestCommonArrays(t *testing.T) {
	res := run(t, `PROGRAM P
INTEGER BUF(5), I
COMMON /SH/ BUF
DO I = 1, 5
  BUF(I) = I*I
ENDDO
CALL TOTAL
END
SUBROUTINE TOTAL()
INTEGER ARR(5), S, I
COMMON /SH/ ARR
S = 0
DO I = 1, 5
  S = S + ARR(I)
ENDDO
PRINT *, S
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "55" {
		t.Errorf("shared-array sum = %q, want 55", got)
	}
}

func TestRealDataAndLogicalData(t *testing.T) {
	res := run(t, `PROGRAM P
REAL X
LOGICAL L
DATA X / 2.5 /
DATA L / .TRUE. /
PRINT *, X, L
END
`, Options{})
	if got := strings.TrimSpace(res.Output); got != "2.5 T" {
		t.Errorf("output = %q", got)
	}
}

func TestMixedComparisonsAndConversions(t *testing.T) {
	res := run(t, `PROGRAM P
REAL X
INTEGER I
LOGICAL L
X = 2.5
I = X
L = X .GT. 2
PRINT *, I, L
L = 2 .EQ. 2.0
PRINT *, L
END
`, Options{})
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "2 T" || lines[1] != "T" {
		t.Errorf("output = %q", res.Output)
	}
}
