package interp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/symbolic"
)

// call invokes a procedure with bound argument cells. args[i] supplies
// either a scalar cell or an array; nil entries are filled with fresh
// cells (used for the main program).
type binding struct {
	cell  *Value  // scalar reference
	array []Value // whole-array reference
}

func (m *machine) call(p *sem.Procedure, args []binding) (Value, error) {
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > 2000 {
		return Value{}, fmt.Errorf("interp: call depth limit in %s", p.Name)
	}

	f := &frame{
		proc:   p,
		vars:   make(map[*sem.Symbol]*Value),
		arrays: make(map[*sem.Symbol][]Value),
	}
	// Bind formals.
	for i, s := range p.Formals {
		var b binding
		if i < len(args) {
			b = args[i]
		}
		if s.IsArray {
			if b.array == nil {
				// Fresh array (size from declared dims, or a default).
				n, err := m.arraySize(f, s)
				if err != nil {
					return Value{}, err
				}
				b.array = make([]Value, n)
			}
			f.arrays[s] = b.array
		} else {
			if b.cell == nil {
				v := zeroOf(s.Type)
				b.cell = &v
			}
			f.vars[s] = b.cell
		}
	}
	// Result cell.
	if p.Result != nil {
		v := zeroOf(p.Result.Type)
		f.vars[p.Result] = &v
	}
	// DATA-initialized locals.
	for _, d := range p.Unit.Decls {
		dd, ok := d.(*ast.DataDecl)
		if !ok {
			continue
		}
		for i, name := range dd.Names {
			if i >= len(dd.Values) {
				break
			}
			s := p.Lookup(name)
			if s == nil || s.Kind != sem.SymLocal || s.IsArray {
				continue
			}
			v, err := m.literal(dd.Values[i])
			if err != nil {
				return Value{}, err
			}
			cv := convert(v, s.Type)
			f.vars[s] = &cv
		}
	}

	m.snapshot(p, f)

	ctl, err := m.execList(f, p.Unit.Body)
	if err != nil {
		return Value{}, err
	}
	if ctl.sig == sigGoto {
		return Value{}, fmt.Errorf("interp: GOTO %s jumps into a block in %s", ctl.label, p.Name)
	}
	if ctl.sig == sigStop {
		m.result.Stopped = true
		return Value{}, errStop
	}
	if p.Result != nil {
		return *f.vars[p.Result], nil
	}
	return Value{}, nil
}

// errStop unwinds the interpreter on STOP; Run treats it as success.
var errStop = fmt.Errorf("interp: STOP")

// snapshot records entry values for the soundness oracle.
func (m *machine) snapshot(p *sem.Procedure, f *frame) {
	entries := m.result.Entries[p]
	if len(entries) >= m.opts.SnapshotLimit {
		return
	}
	snap := EntrySnapshot{Formals: make(map[int]int64), Globals: make(map[*sem.GlobalVar]int64)}
	for i, s := range p.Formals {
		if s.IsArray || s.Type != ast.TypeInteger {
			continue
		}
		if cell := f.vars[s]; cell != nil && cell.Kind == KInt {
			snap.Formals[i] = cell.I
		}
	}
	for g, cell := range m.globals {
		if g.Type == ast.TypeInteger && cell.Kind == KInt {
			snap.Globals[g] = cell.I
		}
	}
	m.result.Entries[p] = append(entries, snap)
}

// arraySize computes the total element count of an array symbol.
func (m *machine) arraySize(f *frame, s *sem.Symbol) (int, error) {
	n := 1
	for _, d := range s.Dims {
		v, err := m.eval(f, d)
		if err != nil {
			return 0, err
		}
		dim := int(convert(v, ast.TypeInteger).I)
		if dim <= 0 {
			dim = 1
		}
		n *= dim
		if n > 1<<22 {
			return 0, fmt.Errorf("interp: array %s too large", s.Name)
		}
	}
	if len(s.Dims) == 0 {
		n = 64 // dimensionless array formal: modest default
	}
	return n, nil
}

// lookupArray finds (or lazily allocates) array storage.
func (m *machine) lookupArray(f *frame, s *sem.Symbol) ([]Value, error) {
	if s.Kind == sem.SymCommon {
		if arr := m.garrays[s.Global]; arr != nil {
			return arr, nil
		}
		n, err := m.arraySize(f, s)
		if err != nil {
			return nil, err
		}
		arr := make([]Value, n)
		m.garrays[s.Global] = arr
		return arr, nil
	}
	if arr := f.arrays[s]; arr != nil {
		return arr, nil
	}
	n, err := m.arraySize(f, s)
	if err != nil {
		return nil, err
	}
	arr := make([]Value, n)
	f.arrays[s] = arr
	return arr, nil
}

// cellOf finds (or lazily allocates) the scalar cell of a symbol.
func (m *machine) cellOf(f *frame, s *sem.Symbol) *Value {
	if s.Kind == sem.SymCommon {
		return m.globals[s.Global]
	}
	if cell := f.vars[s]; cell != nil {
		return cell
	}
	v := zeroOf(s.Type)
	f.vars[s] = &v
	return &v
}

// elementIndex linearizes subscripts (column-major like FORTRAN; bounds
// are clamped into range to keep random programs executable).
func (m *machine) elementIndex(f *frame, s *sem.Symbol, subs []ast.Expr, arr []Value) (int, error) {
	idx := 0
	stride := 1
	for k, sub := range subs {
		v, err := m.eval(f, sub)
		if err != nil {
			return 0, err
		}
		i := int(convert(v, ast.TypeInteger).I) - 1 // 1-based
		if i < 0 {
			i = 0
		}
		idx += i * stride
		if k < len(s.Dims) {
			dv, err := m.eval(f, s.Dims[k])
			if err == nil {
				d := int(convert(dv, ast.TypeInteger).I)
				if d > 0 {
					stride *= d
				}
			}
		}
	}
	if len(arr) == 0 {
		return 0, fmt.Errorf("interp: empty array %s", s.Name)
	}
	if idx < 0 || idx >= len(arr) {
		idx = ((idx % len(arr)) + len(arr)) % len(arr)
	}
	return idx, nil
}

// ---------------------------------------------------------------------
// Statement execution

func (m *machine) execList(f *frame, stmts []ast.Stmt) (control, error) {
	i := 0
	for i < len(stmts) {
		ctl, err := m.exec(f, stmts[i])
		if err != nil {
			return flowNone, err
		}
		switch ctl.sig {
		case sigNone:
			i++
		case sigGoto:
			// Resolve within this list; otherwise propagate outward.
			found := -1
			for j, s := range stmts {
				if s.Label() == ctl.label {
					found = j
					break
				}
			}
			if found < 0 {
				return ctl, nil
			}
			i = found
		default:
			return ctl, nil
		}
	}
	return flowNone, nil
}

func (m *machine) step() error {
	m.steps++
	m.result.Steps = m.steps
	if m.steps > m.opts.MaxSteps {
		return ErrStepLimit
	}
	return nil
}

func (m *machine) exec(f *frame, s ast.Stmt) (control, error) {
	if err := m.step(); err != nil {
		return flowNone, err
	}
	switch x := s.(type) {
	case *ast.AssignStmt:
		return flowNone, m.assign(f, x)
	case *ast.CallStmt:
		callee := m.prog.Procs[x.Name]
		if callee == nil {
			return flowNone, fmt.Errorf("interp: call to undefined %s", x.Name)
		}
		args, err := m.bindArgs(f, callee, x.Args)
		if err != nil {
			return flowNone, err
		}
		_, err = m.call(callee, args)
		if err == errStop {
			return control{sig: sigStop}, nil
		}
		return flowNone, err
	case *ast.IfStmt:
		cond, err := m.eval(f, x.Cond)
		if err != nil {
			return flowNone, err
		}
		if truthy(cond) {
			return m.execList(f, x.Then)
		}
		for _, ei := range x.ElseIfs {
			c, err := m.eval(f, ei.Cond)
			if err != nil {
				return flowNone, err
			}
			if truthy(c) {
				return m.execList(f, ei.Body)
			}
		}
		return m.execList(f, x.Else)
	case *ast.DoStmt:
		return m.execDo(f, x)
	case *ast.GotoStmt:
		return control{sig: sigGoto, label: x.Target}, nil
	case *ast.ComputedGotoStmt:
		v, err := m.eval(f, x.Index)
		if err != nil {
			return flowNone, err
		}
		i := convert(v, ast.TypeInteger).I
		if i >= 1 && int(i) <= len(x.Targets) {
			return control{sig: sigGoto, label: x.Targets[i-1]}, nil
		}
		return flowNone, nil // out of range: fall through (F77 §11.2)
	case *ast.ArithIfStmt:
		v, err := m.eval(f, x.Expr)
		if err != nil {
			return flowNone, err
		}
		switch {
		case v.Kind == KReal && v.R < 0, v.Kind != KReal && v.I < 0:
			return control{sig: sigGoto, label: x.LtLabel}, nil
		case v.Kind == KReal && v.R == 0, v.Kind != KReal && v.I == 0:
			return control{sig: sigGoto, label: x.EqLabel}, nil
		default:
			return control{sig: sigGoto, label: x.GtLabel}, nil
		}
	case *ast.ContinueStmt:
		return flowNone, nil
	case *ast.ReturnStmt:
		return control{sig: sigReturn}, nil
	case *ast.StopStmt:
		return control{sig: sigStop}, nil
	case *ast.ReadStmt:
		for _, target := range x.Args {
			if err := m.readInto(f, target); err != nil {
				return flowNone, err
			}
		}
		return flowNone, nil
	case *ast.PrintStmt:
		parts := make([]string, 0, len(x.Args))
		for _, a := range x.Args {
			if str, ok := a.(*ast.StrLit); ok {
				parts = append(parts, str.Value)
				continue
			}
			v, err := m.eval(f, a)
			if err != nil {
				return flowNone, err
			}
			parts = append(parts, v.String())
		}
		fmt.Fprintln(&m.out, joinSpace(parts))
		return flowNone, nil
	}
	return flowNone, fmt.Errorf("interp: unsupported statement %T", s)
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

func truthy(v Value) bool {
	if v.Kind == KLog {
		return v.B
	}
	return v.I != 0
}

func (m *machine) assign(f *frame, x *ast.AssignStmt) error {
	rhs, err := m.eval(f, x.Rhs)
	if err != nil {
		return err
	}
	switch lhs := x.Lhs.(type) {
	case *ast.Ident:
		s := f.proc.Lookup(lhs.Name)
		if s == nil {
			return fmt.Errorf("interp: assignment to unknown %s", lhs.Name)
		}
		cell := m.cellOf(f, s)
		*cell = convert(rhs, s.Type)
		return nil
	case *ast.Apply:
		s := f.proc.Lookup(lhs.Name)
		if s == nil || !s.IsArray {
			return fmt.Errorf("interp: %s is not an array", lhs.Name)
		}
		arr, err := m.lookupArray(f, s)
		if err != nil {
			return err
		}
		idx, err := m.elementIndex(f, s, lhs.Args, arr)
		if err != nil {
			return err
		}
		arr[idx] = convert(rhs, s.Type)
		return nil
	}
	return fmt.Errorf("interp: bad assignment target")
}

func (m *machine) readInto(f *frame, target ast.Expr) error {
	next := func() int64 {
		if len(m.opts.Input) == 0 {
			return 0
		}
		v := m.opts.Input[m.inPos%len(m.opts.Input)]
		m.inPos++
		return v
	}
	switch t := target.(type) {
	case *ast.Ident:
		s := f.proc.Lookup(t.Name)
		if s == nil {
			return fmt.Errorf("interp: READ into unknown %s", t.Name)
		}
		cell := m.cellOf(f, s)
		*cell = convert(IntVal(next()), s.Type)
		return nil
	case *ast.Apply:
		s := f.proc.Lookup(t.Name)
		if s == nil || !s.IsArray {
			return fmt.Errorf("interp: READ into non-array %s", t.Name)
		}
		arr, err := m.lookupArray(f, s)
		if err != nil {
			return err
		}
		idx, err := m.elementIndex(f, s, t.Args, arr)
		if err != nil {
			return err
		}
		arr[idx] = convert(IntVal(next()), s.Type)
		return nil
	}
	return fmt.Errorf("interp: bad READ target")
}

func (m *machine) execDo(f *frame, x *ast.DoStmt) (control, error) {
	s := f.proc.Lookup(x.Var)
	if s == nil {
		return flowNone, fmt.Errorf("interp: unknown DO variable %s", x.Var)
	}
	cell := m.cellOf(f, s)

	fromV, err := m.eval(f, x.From)
	if err != nil {
		return flowNone, err
	}
	toV, err := m.eval(f, x.To)
	if err != nil {
		return flowNone, err
	}
	step := int64(1)
	if x.Step != nil {
		sv, err := m.eval(f, x.Step)
		if err != nil {
			return flowNone, err
		}
		step = convert(sv, ast.TypeInteger).I
		if step == 0 {
			return flowNone, fmt.Errorf("interp: zero DO step")
		}
	}
	i := convert(fromV, ast.TypeInteger).I
	limit := convert(toV, ast.TypeInteger).I
	*cell = IntVal(i)
	for (step > 0 && cell.I <= limit) || (step < 0 && cell.I >= limit) {
		if err := m.step(); err != nil {
			return flowNone, err
		}
		ctl, err := m.execList(f, x.Body)
		if err != nil {
			return flowNone, err
		}
		switch ctl.sig {
		case sigReturn, sigStop:
			return ctl, nil
		case sigGoto:
			// The terminating label of a label-DO lives inside Body and
			// was handled by execList; anything escaping here targets an
			// enclosing scope.
			return ctl, nil
		}
		*cell = IntVal(cell.I + step)
	}
	return flowNone, nil
}

// bindArgs prepares by-reference bindings for a call.
func (m *machine) bindArgs(f *frame, callee *sem.Procedure, args []ast.Expr) ([]binding, error) {
	out := make([]binding, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case *ast.Ident:
			s := f.proc.Lookup(x.Name)
			if s == nil {
				return nil, fmt.Errorf("interp: unknown actual %s", x.Name)
			}
			if s.Kind == sem.SymConst {
				v := IntVal(s.ConstValue)
				out[i] = binding{cell: &v}
				continue
			}
			if s.IsArray {
				arr, err := m.lookupArray(f, s)
				if err != nil {
					return nil, err
				}
				out[i] = binding{array: arr}
				continue
			}
			out[i] = binding{cell: m.cellOf(f, s)}
		case *ast.Apply:
			s := f.proc.Lookup(x.Name)
			if s != nil && s.IsArray {
				arr, err := m.lookupArray(f, s)
				if err != nil {
					return nil, err
				}
				idx, err := m.elementIndex(f, s, x.Args, arr)
				if err != nil {
					return nil, err
				}
				out[i] = binding{cell: &arr[idx]}
				continue
			}
			// Function call or intrinsic: by value.
			v, err := m.eval(f, a)
			if err != nil {
				return nil, err
			}
			out[i] = binding{cell: &v}
		default:
			v, err := m.eval(f, a)
			if err != nil {
				return nil, err
			}
			out[i] = binding{cell: &v}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Expression evaluation

func (m *machine) eval(f *frame, e ast.Expr) (Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntVal(x.Value), nil
	case *ast.RealLit:
		return RealVal(x.Value), nil
	case *ast.LogLit:
		return LogVal(x.Value), nil
	case *ast.StrLit:
		return IntVal(0), nil // strings only appear in PRINT; print as 0 is avoided below
	case *ast.Ident:
		s := f.proc.Lookup(x.Name)
		if s == nil {
			return Value{}, fmt.Errorf("interp: unknown variable %s", x.Name)
		}
		if s.Kind == sem.SymConst {
			return IntVal(s.ConstValue), nil
		}
		if s.IsArray {
			return Value{}, fmt.Errorf("interp: whole-array reference %s in expression", x.Name)
		}
		return *m.cellOf(f, s), nil
	case *ast.Unary:
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case ast.OpNeg:
			if v.Kind == KReal {
				return RealVal(-v.R), nil
			}
			return IntVal(-v.I), nil
		case ast.OpNot:
			return LogVal(!truthy(v)), nil
		}
		return Value{}, fmt.Errorf("interp: bad unary op")
	case *ast.Binary:
		return m.evalBinary(f, x)
	case *ast.Apply:
		return m.evalApply(f, x)
	}
	return Value{}, fmt.Errorf("interp: unsupported expression %T", e)
}

func (m *machine) evalBinary(f *frame, x *ast.Binary) (Value, error) {
	l, err := m.eval(f, x.X)
	if err != nil {
		return Value{}, err
	}
	r, err := m.eval(f, x.Y)
	if err != nil {
		return Value{}, err
	}
	switch {
	case x.Op.IsLogical():
		switch x.Op {
		case ast.OpAnd:
			return LogVal(truthy(l) && truthy(r)), nil
		case ast.OpOr:
			return LogVal(truthy(l) || truthy(r)), nil
		}
	case x.Op.IsRelational():
		if l.Kind == KReal || r.Kind == KReal {
			a, b := l.asReal(), r.asReal()
			switch x.Op {
			case ast.OpEq:
				return LogVal(a == b), nil
			case ast.OpNe:
				return LogVal(a != b), nil
			case ast.OpLt:
				return LogVal(a < b), nil
			case ast.OpLe:
				return LogVal(a <= b), nil
			case ast.OpGt:
				return LogVal(a > b), nil
			case ast.OpGe:
				return LogVal(a >= b), nil
			}
		}
		return LogVal(symbolic.IntCompare(symbolic.FromASTOp(x.Op), l.I, r.I)), nil
	default: // arithmetic
		if l.Kind == KReal || r.Kind == KReal {
			a, b := l.asReal(), r.asReal()
			switch x.Op {
			case ast.OpAdd:
				return RealVal(a + b), nil
			case ast.OpSub:
				return RealVal(a - b), nil
			case ast.OpMul:
				return RealVal(a * b), nil
			case ast.OpDiv:
				if b == 0 {
					return Value{}, fmt.Errorf("interp: real division by zero")
				}
				return RealVal(a / b), nil
			case ast.OpPow:
				return RealVal(realPow(a, b)), nil
			}
		}
		v, ok := symbolic.IntBinop(symbolic.FromASTOp(x.Op), l.I, r.I)
		if !ok {
			return Value{}, fmt.Errorf("interp: undefined integer operation %s on %d, %d", x.Op, l.I, r.I)
		}
		return IntVal(v), nil
	}
	return Value{}, fmt.Errorf("interp: bad binary op %s", x.Op)
}

func realPow(a, b float64) float64 {
	// Minimal real exponentiation: repeated multiplication for small
	// integral exponents; otherwise a crude exp/log-free approximation
	// is unnecessary for our workloads, which only use integral powers.
	n := int64(b)
	if float64(n) != b {
		return 0
	}
	r := 1.0
	neg := n < 0
	if neg {
		n = -n
	}
	for i := int64(0); i < n; i++ {
		r *= a
	}
	if neg {
		if r == 0 {
			return 0
		}
		return 1 / r
	}
	return r
}

func (m *machine) evalApply(f *frame, x *ast.Apply) (Value, error) {
	// Array element?
	if s := f.proc.Lookup(x.Name); s != nil && s.IsArray {
		arr, err := m.lookupArray(f, s)
		if err != nil {
			return Value{}, err
		}
		idx, err := m.elementIndex(f, s, x.Args, arr)
		if err != nil {
			return Value{}, err
		}
		v := arr[idx]
		if v.Kind == KInt && s.Type == ast.TypeReal {
			return convert(v, s.Type), nil
		}
		return v, nil
	}
	// Intrinsic?
	if _, ok := sem.Intrinsics[x.Name]; ok {
		return m.evalIntrinsic(f, x)
	}
	// User function.
	callee := m.prog.Procs[x.Name]
	if callee == nil || callee.Unit.Kind != ast.FunctionUnit {
		return Value{}, fmt.Errorf("interp: %s is not a function", x.Name)
	}
	args, err := m.bindArgs(f, callee, x.Args)
	if err != nil {
		return Value{}, err
	}
	return m.call(callee, args)
}

func (m *machine) evalIntrinsic(f *frame, x *ast.Apply) (Value, error) {
	vals := make([]Value, len(x.Args))
	anyReal := false
	for i, a := range x.Args {
		v, err := m.eval(f, a)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
		if v.Kind == KReal {
			anyReal = true
		}
	}
	switch x.Name {
	case "ABS", "IABS":
		v := vals[0]
		if v.Kind == KReal {
			if v.R < 0 {
				return RealVal(-v.R), nil
			}
			return v, nil
		}
		if v.I < 0 {
			return IntVal(-v.I), nil
		}
		return v, nil
	case "MOD":
		if anyReal {
			return Value{}, fmt.Errorf("interp: real MOD unsupported")
		}
		r, ok := symbolic.IntBinop(symbolic.OpMod, vals[0].I, vals[1].I)
		if !ok {
			return Value{}, fmt.Errorf("interp: MOD by zero")
		}
		return IntVal(r), nil
	case "MAX", "MIN":
		if anyReal {
			best := vals[0].asReal()
			for _, v := range vals[1:] {
				r := v.asReal()
				if (x.Name == "MAX" && r > best) || (x.Name == "MIN" && r < best) {
					best = r
				}
			}
			return RealVal(best), nil
		}
		best := vals[0].I
		for _, v := range vals[1:] {
			if (x.Name == "MAX" && v.I > best) || (x.Name == "MIN" && v.I < best) {
				best = v.I
			}
		}
		return IntVal(best), nil
	}
	return Value{}, fmt.Errorf("interp: unknown intrinsic %s", x.Name)
}
