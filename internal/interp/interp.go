// Package interp is a reference interpreter for F77s. It exists to
// validate the analyses: the soundness property tests execute random
// programs and check that every (name, value) pair in a CONSTANTS(p)
// set matches the value actually observed on entry to p, for every call
// that occurs at run time.
//
// Semantics notes (kept deliberately aligned with the analyses):
//   - scalars and arrays are passed by reference; expression actuals
//     are passed as fresh unmodifiable cells;
//   - DO loops snapshot their bound and step at entry and run as a
//     pre-tested while loop, exactly like the CFG lowering;
//   - integer arithmetic matches symbolic.IntBinop (truncating
//     division, FORTRAN MOD, integer exponentiation);
//   - DATA statements initialize COMMON storage at program start and
//     procedure-local storage at frame creation;
//   - GOTO may only target a label in the current statement list or an
//     enclosing one (jumping into a block is an error, as in F77).
package interp

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/sem"
)

// Kind tags runtime values.
type Kind int

const (
	KInt Kind = iota
	KReal
	KLog
)

// Value is a runtime scalar value.
type Value struct {
	Kind Kind
	I    int64
	R    float64
	B    bool
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// RealVal makes a real value.
func RealVal(r float64) Value { return Value{Kind: KReal, R: r} }

// LogVal makes a logical value.
func LogVal(b bool) Value { return Value{Kind: KLog, B: b} }

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KReal:
		return fmt.Sprintf("%g", v.R)
	default:
		if v.B {
			return "T"
		}
		return "F"
	}
}

// asReal coerces to float64.
func (v Value) asReal() float64 {
	if v.Kind == KReal {
		return v.R
	}
	return float64(v.I)
}

// EntrySnapshot records the values observed on entry to a procedure at
// one dynamic call: the soundness oracle for CONSTANTS sets.
type EntrySnapshot struct {
	// Formals holds the integer formal values by index; non-integer or
	// array formals are absent.
	Formals map[int]int64
	// Globals holds the integer COMMON values at entry.
	Globals map[*sem.GlobalVar]int64
}

// Options configures an execution.
type Options struct {
	// Input supplies values consumed by READ statements (recycled when
	// exhausted; zero when empty).
	Input []int64
	// MaxSteps bounds executed statements (default 1 << 20).
	MaxSteps int
	// SnapshotLimit bounds recorded entry snapshots per procedure
	// (default 64).
	SnapshotLimit int
}

// Result is the outcome of running a program.
type Result struct {
	Output string
	// Entries maps each procedure to the entry snapshots observed.
	Entries map[*sem.Procedure][]EntrySnapshot
	// Steps is the number of statements executed.
	Steps int
	// Stopped reports whether the program ended via STOP.
	Stopped bool
}

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Run executes the program from its PROGRAM unit.
func Run(prog *sem.Program, opts Options) (*Result, error) {
	if prog.Main == nil {
		return nil, errors.New("interp: no PROGRAM unit")
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 20
	}
	if opts.SnapshotLimit <= 0 {
		opts.SnapshotLimit = 64
	}
	m := &machine{
		prog:    prog,
		opts:    opts,
		globals: make(map[*sem.GlobalVar]*Value),
		garrays: make(map[*sem.GlobalVar][]Value),
		result:  &Result{Entries: make(map[*sem.Procedure][]EntrySnapshot)},
	}
	// Allocate global storage.
	for _, g := range prog.Globals() {
		if g.IsArray {
			m.garrays[g] = nil // sized lazily at first binding
		} else {
			v := zeroOf(g.Type)
			m.globals[g] = &v
		}
	}
	// Load-time DATA initialization of COMMON storage (any unit).
	for _, p := range prog.Order {
		for _, d := range p.Unit.Decls {
			dd, ok := d.(*ast.DataDecl)
			if !ok {
				continue
			}
			for i, name := range dd.Names {
				if i >= len(dd.Values) {
					break
				}
				s := p.Lookup(name)
				if s == nil || s.Kind != sem.SymCommon || s.IsArray {
					continue
				}
				v, err := m.literal(dd.Values[i])
				if err != nil {
					return nil, err
				}
				*m.globals[s.Global] = convert(v, s.Type)
			}
		}
	}
	_, err := m.call(prog.Main, nil)
	if err == errStop {
		err = nil
	}
	m.result.Output = m.out.String()
	return m.result, err
}

type machine struct {
	prog    *sem.Program
	opts    Options
	globals map[*sem.GlobalVar]*Value
	garrays map[*sem.GlobalVar][]Value
	out     strings.Builder
	steps   int
	inPos   int
	result  *Result
	depth   int
}

// frame is one procedure activation.
type frame struct {
	proc   *sem.Procedure
	vars   map[*sem.Symbol]*Value
	arrays map[*sem.Symbol][]Value
}

// signal models non-sequential control flow.
type signal int

const (
	sigNone signal = iota
	sigReturn
	sigStop
	sigGoto
)

type control struct {
	sig   signal
	label string
}

var flowNone = control{}

func zeroOf(t ast.BaseType) Value {
	switch t {
	case ast.TypeReal:
		return RealVal(0)
	case ast.TypeLogical:
		return LogVal(false)
	default:
		return IntVal(0)
	}
}

// convert coerces a value to a declared type.
func convert(v Value, t ast.BaseType) Value {
	switch t {
	case ast.TypeInteger:
		if v.Kind == KReal {
			return IntVal(int64(v.R))
		}
		if v.Kind == KLog {
			if v.B {
				return IntVal(1)
			}
			return IntVal(0)
		}
		return v
	case ast.TypeReal:
		if v.Kind != KReal {
			return RealVal(v.asReal())
		}
		return v
	case ast.TypeLogical:
		if v.Kind != KLog {
			return LogVal(v.I != 0)
		}
		return v
	}
	return v
}

func (m *machine) literal(e ast.Expr) (Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntVal(x.Value), nil
	case *ast.RealLit:
		return RealVal(x.Value), nil
	case *ast.LogLit:
		return LogVal(x.Value), nil
	case *ast.Unary:
		if x.Op == ast.OpNeg {
			v, err := m.literal(x.X)
			if err != nil {
				return Value{}, err
			}
			if v.Kind == KReal {
				return RealVal(-v.R), nil
			}
			return IntVal(-v.I), nil
		}
	}
	return Value{}, fmt.Errorf("interp: unsupported DATA value %s", ast.ExprString(e))
}
