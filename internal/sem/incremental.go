package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// This file is the front end's delta-edit entry point: re-analyzing
// exactly one replaced program unit inside an already-analyzed Program,
// in place. The point of the in-place discipline is identity
// preservation — every other unit keeps its *Procedure, every COMMON
// member keeps its *GlobalVar — so downstream artifacts keyed by those
// pointers (CFGs, jump functions, substitution decisions, value
// contexts) stay valid without any content-addressed re-keying.
//
// The operation is deliberately narrow. It succeeds only when the new
// unit leaves the program's interface facts untouched: same unit name
// and kind, and a semantic pass that neither extends nor retypes any
// COMMON block layout. Anything else — including any diagnostic from
// the new unit — makes ReplaceUnit restore the layout snapshot and
// report failure, and the caller falls back to a full re-analysis. A
// rejected replacement can cost time, never correctness.

// ReplaceUnit re-analyzes File.Units[idx] replaced by unit, mutating
// the Program in place. On success it returns the new procedure and
// true: the program is re-sealed and every untouched procedure and
// global keeps its identity. On failure it returns nil and false, and
// the program is unchanged (the caller must rebuild from source).
//
// The caller is responsible for ensuring the replacement is
// interface-preserving before calling (sessions gate on a declaration
// fingerprint); ReplaceUnit re-verifies the COMMON layout invariants it
// depends on and rejects rather than trusting the caller. diags
// receives the new unit's semantic diagnostics; any error among them
// rejects the replacement.
func (pr *Program) ReplaceUnit(idx int, unit *ast.Unit, diags *source.ErrorList) (*Procedure, bool) {
	if idx < 0 || idx >= len(pr.Order) || len(pr.Order) != len(pr.File.Units) {
		return nil, false
	}
	old := pr.Order[idx]
	if old.Unit != pr.File.Units[idx] || unit.Name != old.Name || unit.Kind != old.Unit.Kind {
		return nil, false
	}

	// Snapshot the COMMON layout facts pass 2 may mutate, to verify the
	// replacement is interface-preserving and to restore on rejection.
	type globalSnap struct {
		g       *GlobalVar
		typ     ast.BaseType
		isArray bool
	}
	var snap []globalSnap
	blockLens := make(map[string]int, len(pr.CommonBlocks))
	for block, layout := range pr.CommonBlocks {
		blockLens[block] = len(layout)
		for _, g := range layout {
			snap = append(snap, globalSnap{g, g.Type, g.IsArray})
		}
	}
	restore := func() {
		for _, s := range snap {
			s.g.Type = s.typ
			s.g.IsArray = s.isArray
		}
		for block, n := range blockLens {
			if layout := pr.CommonBlocks[block]; len(layout) > n {
				pr.CommonBlocks[block] = layout[:n]
			}
		}
		for block := range pr.CommonBlocks {
			if _, known := blockLens[block]; !known {
				delete(pr.CommonBlocks, block)
			}
		}
	}

	p := &Procedure{
		Unit:    unit,
		Name:    unit.Name,
		Symbols: make(map[string]*Symbol),
		Labels:  make(map[string]ast.Stmt),
	}
	var local source.ErrorList
	a := &analyzer{prog: pr, diags: &local, applyKinds: pr.applyKinds, exprTypes: pr.exprTypes}

	// Pass 2 and 3 for the one new procedure. Procs still maps the name
	// to the old procedure during the passes; that is what checkCall
	// resolves self-calls against, and the old interface equals the new
	// one by the checks below.
	a.declareSymbols(p)
	// Interface check: other units' pass-3 results read the callee's
	// formal list (count, names, types, array-ness) and result type
	// (checkCall), so the replacement must preserve them exactly — the
	// callers are not re-checked.
	if unit.Result != old.Unit.Result || len(p.Formals) != len(old.Formals) {
		restore()
		return nil, false
	}
	for i, f := range p.Formals {
		of := old.Formals[i]
		if f.Name != of.Name || f.Type != of.Type || f.IsArray != of.IsArray {
			restore()
			return nil, false
		}
	}
	layoutOK := true
	for block, layout := range pr.CommonBlocks {
		n, known := blockLens[block]
		if !known || len(layout) != n {
			layoutOK = false
			break
		}
	}
	if layoutOK {
		for _, s := range snap {
			if s.g.Type != s.typ || s.g.IsArray != s.isArray {
				layoutOK = false
				break
			}
		}
	}
	if !layoutOK {
		restore()
		return nil, false
	}
	a.checkBodyGuarded(p)
	diags.Diags = append(diags.Diags, local.Diags...)
	if local.HasErrors() {
		restore()
		return nil, false
	}

	pr.Order[idx] = p
	pr.Procs[p.Name] = p
	pr.File.Units[idx] = unit
	if pr.Main == old {
		pr.Main = p
	}
	// Re-seal: procIdx must map the new procedure; the global order is
	// reproduced bit-for-bit since every GlobalVar pointer survived.
	pr.sealGlobals()
	return p, true
}
