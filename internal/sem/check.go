package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// ---------------------------------------------------------------------
// Pass 3: bodies — label collection, expression resolution, type checks

func (a *analyzer) checkBody(p *Procedure) {
	// Collect labels first so forward GOTOs resolve.
	ast.WalkStmts(p.Unit.Body, func(s ast.Stmt) bool {
		if l := s.Label(); l != "" {
			if _, dup := p.Labels[l]; dup {
				a.errorf(s.Pos(), "duplicate label %s in %s", l, p.Name)
			} else {
				p.Labels[l] = s
			}
		}
		return true
	})
	a.checkStmts(p, p.Unit.Body)

	// A function must assign its result somewhere.
	if p.IsFunction() && p.Result != nil {
		assigned := false
		ast.WalkStmts(p.Unit.Body, func(s ast.Stmt) bool {
			if as, ok := s.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == p.Name {
					assigned = true
				}
			}
			return true
		})
		if !assigned {
			a.diags.Warnf(p.Unit.Pos(), "function %s never assigns its result", p.Name)
		}
	}
}

func (a *analyzer) checkStmts(p *Procedure, stmts []ast.Stmt) {
	for _, s := range stmts {
		a.checkStmt(p, s)
	}
}

func (a *analyzer) checkStmt(p *Procedure, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		lt := a.checkLvalue(p, x.Lhs)
		rt := a.exprType(p, x.Rhs)
		a.checkAssignable(x.Pos(), lt, rt)
	case *ast.CallStmt:
		a.checkCall(p, x.Pos(), x.Name, x.Args, false)
	case *ast.IfStmt:
		if t := a.exprType(p, x.Cond); t != ast.TypeLogical && t != ast.TypeNone {
			a.errorf(x.Cond.Pos(), "IF condition must be LOGICAL, got %s", t)
		}
		a.checkStmts(p, x.Then)
		for _, ei := range x.ElseIfs {
			if t := a.exprType(p, ei.Cond); t != ast.TypeLogical && t != ast.TypeNone {
				a.errorf(ei.Cond.Pos(), "ELSEIF condition must be LOGICAL, got %s", t)
			}
			a.checkStmts(p, ei.Body)
		}
		a.checkStmts(p, x.Else)
	case *ast.DoStmt:
		v := a.ensureVar(p, x.Var, x.Pos())
		if v.Kind == SymConst || v.Kind == SymProc {
			a.errorf(x.Pos(), "DO variable %s is a %s", x.Var, v.Kind)
		}
		if v.IsArray {
			a.errorf(x.Pos(), "DO variable %s is an array", x.Var)
		}
		a.intOperand(p, x.From, "DO initial value")
		a.intOperand(p, x.To, "DO bound")
		if x.Step != nil {
			a.intOperand(p, x.Step, "DO step")
		}
		a.checkStmts(p, x.Body)
	case *ast.GotoStmt:
		if _, ok := p.Labels[x.Target]; !ok {
			a.errorf(x.Pos(), "GOTO target label %s not defined in %s", x.Target, p.Name)
		}
	case *ast.ComputedGotoStmt:
		a.intOperand(p, x.Index, "computed GOTO index")
		for _, l := range x.Targets {
			if _, ok := p.Labels[l]; !ok {
				a.errorf(x.Pos(), "GOTO target label %s not defined in %s", l, p.Name)
			}
		}
	case *ast.ArithIfStmt:
		if t := a.exprType(p, x.Expr); t == ast.TypeLogical {
			a.errorf(x.Expr.Pos(), "arithmetic IF requires an arithmetic expression, got %s", t)
		}
		for _, l := range []string{x.LtLabel, x.EqLabel, x.GtLabel} {
			if _, ok := p.Labels[l]; !ok {
				a.errorf(x.Pos(), "IF target label %s not defined in %s", l, p.Name)
			}
		}
	case *ast.ReadStmt:
		for _, arg := range x.Args {
			a.checkLvalue(p, arg)
		}
	case *ast.PrintStmt:
		for _, arg := range x.Args {
			a.exprType(p, arg)
		}
	case *ast.ReturnStmt, *ast.StopStmt, *ast.ContinueStmt:
		// Nothing to check.
	}
}

// checkAssignable reports an error when a value of type rt cannot be
// assigned to a target of type lt. INTEGER and REAL interconvert;
// LOGICAL only matches itself.
func (a *analyzer) checkAssignable(pos source.Position, lt, rt ast.BaseType) {
	if lt == ast.TypeNone || rt == ast.TypeNone {
		return // earlier error already reported
	}
	if lt == ast.TypeLogical || rt == ast.TypeLogical {
		if lt != rt {
			a.errorf(pos, "cannot assign %s to %s", rt, lt)
		}
	}
}

// intOperand types e and requires it to be INTEGER.
func (a *analyzer) intOperand(p *Procedure, e ast.Expr, what string) {
	if t := a.exprType(p, e); t != ast.TypeInteger && t != ast.TypeNone {
		a.errorf(e.Pos(), "%s must be INTEGER, got %s", what, t)
	}
}

// checkLvalue types an assignment / READ target and returns its type.
func (a *analyzer) checkLvalue(p *Procedure, e ast.Expr) ast.BaseType {
	switch x := e.(type) {
	case *ast.Ident:
		s := a.ensureVar(p, x.Name, x.Pos())
		switch s.Kind {
		case SymConst:
			a.errorf(x.Pos(), "cannot assign to PARAMETER constant %s", x.Name)
		case SymProc:
			a.errorf(x.Pos(), "cannot assign to procedure %s", x.Name)
		}
		if s.IsArray {
			a.errorf(x.Pos(), "array %s assigned without subscripts", x.Name)
		}
		a.exprTypes[e] = s.Type
		return s.Type
	case *ast.Apply:
		// Must be an array element on the left-hand side.
		s, ok := p.Symbols[x.Name]
		if !ok || !s.IsArray {
			a.errorf(x.Pos(), "%s is not an array", x.Name)
			a.exprTypes[e] = ast.TypeNone
			return ast.TypeNone
		}
		a.applyKinds[x] = ApplyArray
		a.checkSubscripts(p, x, s)
		a.exprTypes[e] = s.Type
		return s.Type
	}
	a.errorf(e.Pos(), "invalid assignment target")
	return ast.TypeNone
}

func (a *analyzer) checkSubscripts(p *Procedure, x *ast.Apply, s *Symbol) {
	if len(s.Dims) > 0 && len(x.Args) != len(s.Dims) {
		a.errorf(x.Pos(), "array %s has %d dimension(s), subscripted with %d", x.Name, len(s.Dims), len(x.Args))
	}
	for _, sub := range x.Args {
		a.intOperand(p, sub, "array subscript")
	}
}

// checkCall validates a CALL statement or function reference and returns
// the result type for function calls.
func (a *analyzer) checkCall(p *Procedure, pos source.Position, name string, args []ast.Expr, wantValue bool) ast.BaseType {
	for _, arg := range args {
		a.exprType(p, arg)
	}
	callee, ok := a.prog.Procs[name]
	if !ok {
		a.errorf(pos, "call to undefined procedure %s", name)
		return ast.TypeNone
	}
	if wantValue && callee.Unit.Kind != ast.FunctionUnit {
		a.errorf(pos, "%s is a %s, not a FUNCTION", name, callee.Unit.Kind)
		return ast.TypeNone
	}
	if !wantValue && callee.Unit.Kind != ast.SubroutineUnit {
		a.errorf(pos, "CALL target %s is a %s, not a SUBROUTINE", name, callee.Unit.Kind)
		return ast.TypeNone
	}
	if len(args) != len(callee.Formals) {
		a.errorf(pos, "%s takes %d argument(s), got %d", name, len(callee.Formals), len(args))
	}
	// Array actuals must be passed whole or as elements — both fine; but
	// passing an array where a scalar formal is expected is flagged.
	for i, arg := range args {
		if i >= len(callee.Formals) {
			break
		}
		formal := callee.Formals[i]
		if id, ok := arg.(*ast.Ident); ok {
			if s := p.Lookup(id.Name); s != nil && s.IsArray && !formal.IsArray {
				a.errorf(arg.Pos(), "argument %d of %s: array %s passed to scalar formal %s", i+1, name, id.Name, formal.Name)
			}
		}
	}
	if callee.Unit.Kind == ast.FunctionUnit {
		return callee.Unit.Result
	}
	return ast.TypeNone
}

// exprType resolves and types an expression, recording results in the
// program's side tables.
func (a *analyzer) exprType(p *Procedure, e ast.Expr) ast.BaseType {
	t := a.exprType1(p, e)
	a.exprTypes[e] = t
	return t
}

func (a *analyzer) exprType1(p *Procedure, e ast.Expr) ast.BaseType {
	switch x := e.(type) {
	case *ast.IntLit:
		return ast.TypeInteger
	case *ast.RealLit:
		return ast.TypeReal
	case *ast.LogLit:
		return ast.TypeLogical
	case *ast.StrLit:
		return ast.TypeNone // strings only appear in PRINT
	case *ast.Ident:
		s := a.ensureVar(p, x.Name, x.Pos())
		if s.Kind == SymResult {
			// Reading the result variable is allowed inside the function.
			return s.Type
		}
		return s.Type
	case *ast.Unary:
		t := a.exprType(p, x.X)
		if x.Op == ast.OpNot {
			if t != ast.TypeLogical && t != ast.TypeNone {
				a.errorf(x.Pos(), ".NOT. applied to %s", t)
			}
			return ast.TypeLogical
		}
		if t == ast.TypeLogical {
			a.errorf(x.Pos(), "unary %s applied to LOGICAL", x.Op)
			return ast.TypeNone
		}
		return t
	case *ast.Binary:
		lt := a.exprType(p, x.X)
		rt := a.exprType(p, x.Y)
		switch {
		case x.Op.IsLogical():
			if (lt != ast.TypeLogical && lt != ast.TypeNone) || (rt != ast.TypeLogical && rt != ast.TypeNone) {
				a.errorf(x.Pos(), "%s applied to non-LOGICAL operands (%s, %s)", x.Op, lt, rt)
			}
			return ast.TypeLogical
		case x.Op.IsRelational():
			if lt == ast.TypeLogical || rt == ast.TypeLogical {
				a.errorf(x.Pos(), "%s cannot compare LOGICAL values", x.Op)
			}
			return ast.TypeLogical
		default: // arithmetic
			if lt == ast.TypeLogical || rt == ast.TypeLogical {
				a.errorf(x.Pos(), "arithmetic %s applied to LOGICAL", x.Op)
				return ast.TypeNone
			}
			if lt == ast.TypeReal || rt == ast.TypeReal {
				return ast.TypeReal
			}
			if lt == ast.TypeNone || rt == ast.TypeNone {
				return ast.TypeNone
			}
			return ast.TypeInteger
		}
	case *ast.Apply:
		return a.applyType(p, x)
	}
	return ast.TypeNone
}

// applyType resolves NAME(args) into an array element, an intrinsic
// call, or a user function call.
func (a *analyzer) applyType(p *Procedure, x *ast.Apply) ast.BaseType {
	// 1. Array element, if the name is a declared array.
	if s, ok := p.Symbols[x.Name]; ok && s.IsArray {
		a.applyKinds[x] = ApplyArray
		a.checkSubscripts(p, x, s)
		return s.Type
	}
	// 2. Intrinsic.
	if in, ok := Intrinsics[x.Name]; ok {
		a.applyKinds[x] = ApplyIntrinsic
		if len(x.Args) < in.MinArgs || (in.MaxArgs >= 0 && len(x.Args) > in.MaxArgs) {
			a.errorf(x.Pos(), "intrinsic %s called with %d argument(s)", x.Name, len(x.Args))
		}
		allInt := true
		for _, arg := range x.Args {
			t := a.exprType(p, arg)
			if t == ast.TypeLogical {
				a.errorf(arg.Pos(), "intrinsic %s applied to LOGICAL", x.Name)
			}
			if t != ast.TypeInteger {
				allInt = false
			}
		}
		if in.IntInInt && allInt {
			return ast.TypeInteger
		}
		return ast.TypeReal
	}
	// 3. User function.
	if _, ok := a.prog.Procs[x.Name]; ok {
		a.applyKinds[x] = ApplyCall
		return a.checkCall(p, x.Pos(), x.Name, x.Args, true)
	}
	a.errorf(x.Pos(), "%s is neither an array, an intrinsic, nor a defined function", x.Name)
	return ast.TypeNone
}
