package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
)

func analyze(t *testing.T, src string) (*Program, *source.ErrorList) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.Error())
	}
	prog := Analyze(f, &diags)
	return prog, &diags
}

func analyzeOK(t *testing.T, src string) *Program {
	t.Helper()
	prog, diags := analyze(t, src)
	if diags.HasErrors() {
		t.Fatalf("sem errors:\n%s", diags.Error())
	}
	return prog
}

func expectError(t *testing.T, src, fragment string) {
	t.Helper()
	_, diags := analyze(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(diags.Error(), fragment) {
		t.Fatalf("expected error containing %q, got:\n%s", fragment, diags.Error())
	}
}

func TestBasicProgram(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER I
I = 1
CALL S(I)
END

SUBROUTINE S(N)
INTEGER N
N = N + 1
END
`)
	if prog.Main == nil || prog.Main.Name != "MAIN" {
		t.Fatal("main not identified")
	}
	s := prog.Procs["S"]
	if s == nil || len(s.Formals) != 1 {
		t.Fatalf("S: %+v", s)
	}
	if s.Formals[0].Kind != SymFormal || s.Formals[0].Type != ast.TypeInteger {
		t.Errorf("formal N: %+v", s.Formals[0])
	}
}

func TestImplicitTyping(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
K = 1
X = 2.5
END
`)
	m := prog.Main
	if m.Lookup("K").Type != ast.TypeInteger {
		t.Error("K should be implicitly INTEGER")
	}
	if m.Lookup("X").Type != ast.TypeReal {
		t.Error("X should be implicitly REAL")
	}
}

func TestCommonLinking(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER N, M
COMMON /GRID/ N, M
N = 10
M = 20
CALL USE
END

SUBROUTINE USE()
INTEGER NP, MP
COMMON /GRID/ NP, MP
NP = NP + MP
END
`)
	layout := prog.CommonBlocks["GRID"]
	if len(layout) != 2 {
		t.Fatalf("GRID layout = %d members", len(layout))
	}
	n := prog.Main.Lookup("N")
	np := prog.Procs["USE"].Lookup("NP")
	if n.Global == nil || np.Global == nil {
		t.Fatal("common symbols not linked")
	}
	if n.Global != np.Global {
		t.Error("N and NP should share the same GlobalVar")
	}
	if n.Global.Key() != "GRID#0" {
		t.Errorf("global key = %q", n.Global.Key())
	}
	if got := len(prog.Globals()); got != 2 {
		t.Errorf("Globals() = %d", got)
	}
}

func TestCommonTypeFromPriorDecl(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER Q
COMMON /B/ Q
Q = 1
END
`)
	q := prog.Main.Lookup("Q")
	if q.Kind != SymCommon || q.Type != ast.TypeInteger {
		t.Errorf("Q: %+v", q)
	}
}

func TestParameterConstants(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
PARAMETER (N = 100, M = N*2 + 1)
INTEGER A(M)
A(1) = N
END
`)
	m := prog.Main.Lookup("M")
	if !m.HasConst || m.ConstValue != 201 {
		t.Errorf("M = %+v, want 201", m)
	}
}

func TestArrayVsCallResolution(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER A(10), I
I = F(3)
A(I) = MOD(I, 2)
END

INTEGER FUNCTION F(X)
INTEGER X
F = X*2
END
`)
	var arrays, calls, intrinsics int
	ast.WalkStmts(prog.Main.Unit.Body, func(s ast.Stmt) bool {
		for _, e := range ast.ExprsOf(s) {
			ast.WalkExpr(e, func(x ast.Expr) bool {
				if ap, ok := x.(*ast.Apply); ok {
					switch prog.ApplyKindOf(ap) {
					case ApplyArray:
						arrays++
					case ApplyCall:
						calls++
					case ApplyIntrinsic:
						intrinsics++
					}
				}
				return true
			})
		}
		return true
	})
	if arrays != 1 || calls != 1 || intrinsics != 1 {
		t.Errorf("resolution counts: arrays=%d calls=%d intrinsics=%d", arrays, calls, intrinsics)
	}
}

func TestFunctionResultSymbol(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
I = G(1)
END

INTEGER FUNCTION G(X)
INTEGER X
G = X + 1
END
`)
	g := prog.Procs["G"]
	if g.Result == nil || g.Result.Kind != SymResult || g.Result.Type != ast.TypeInteger {
		t.Errorf("result symbol: %+v", g.Result)
	}
}

func TestTypeOfExpressions(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER I
REAL X
LOGICAL L
I = 1 + 2
X = I + 1.5
L = I .LT. 3
END
`)
	for _, s := range prog.Main.Unit.Body {
		as := s.(*ast.AssignStmt)
		lhs := as.Lhs.(*ast.Ident)
		rt := prog.TypeOf(as.Rhs)
		switch lhs.Name {
		case "I":
			if rt != ast.TypeInteger {
				t.Errorf("I rhs type = %v", rt)
			}
		case "X":
			if rt != ast.TypeReal {
				t.Errorf("X rhs type = %v", rt)
			}
		case "L":
			if rt != ast.TypeLogical {
				t.Errorf("L rhs type = %v", rt)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"PROGRAM A\nEND\nPROGRAM A\nEND\n", "duplicate program unit"},
		{"PROGRAM A\nI = 1\nEND\nPROGRAM B\nEND\n", "multiple PROGRAM units"},
		{"SUBROUTINE S(X)\nX = 1\nEND\n", "no PROGRAM unit"},
		{"PROGRAM P\nCALL NOPE(1)\nEND\n", "undefined procedure"},
		{"PROGRAM P\nCALL S(1, 2)\nEND\nSUBROUTINE S(A)\nA = 1\nEND\n", "takes 1 argument"},
		{"PROGRAM P\nI = S(1)\nEND\nSUBROUTINE S(A)\nA = 1\nEND\n", "not a FUNCTION"},
		{"PROGRAM P\nCALL F(1)\nEND\nINTEGER FUNCTION F(A)\nF = A\nEND\n", "not a SUBROUTINE"},
		{"SUBROUTINE S(A, A)\nEND\nPROGRAM P\nEND\n", "duplicate formal"},
		{"PROGRAM P\nPARAMETER (K = 1)\nK = 2\nEND\n", "cannot assign to PARAMETER"},
		{"PROGRAM P\nIF (1 + 2) THEN\nENDIF\nEND\n", "must be LOGICAL"},
		{"PROGRAM P\nLOGICAL L\nI = L + 1\nEND\n", "applied to LOGICAL"},
		{"PROGRAM P\nLOGICAL L\nL = L .GT. 1\nEND\n", "cannot compare LOGICAL"},
		{"PROGRAM P\nINTEGER A(5)\nA(1, 2) = 0\nEND\n", "1 dimension"},
		{"PROGRAM P\nX = Y(3)\nEND\n", "neither an array"},
		{"PROGRAM P\nINTEGER A(5)\nA = 1\nEND\n", "without subscripts"},
		{"PROGRAM P\nDO 10 K = 1, 2.5\n10 CONTINUE\nEND\n", "must be INTEGER"},
		{"PROGRAM P\n10 CONTINUE\n10 CONTINUE\nEND\n", "duplicate label"},
		{"PROGRAM P\nINTEGER A(3)\nCALL S(A)\nEND\nSUBROUTINE S(X)\nX = 1\nEND\n", "passed to scalar formal"},
		{"PROGRAM P\nMOD = MOD(1, 2, 3)\nEND\n", "with 3 argument"},
		{"PROGRAM P\nIF (I) 10, 20, 99\n10 CONTINUE\n20 CONTINUE\nEND\n", "label 99 not defined"},
		{"PROGRAM P\nLOGICAL L\nIF (L) 10, 10, 10\n10 CONTINUE\nEND\n", "arithmetic IF requires"},
		{"PROGRAM P\nGOTO (10, 99), I\n10 CONTINUE\nEND\n", "label 99 not defined"},
		{"PROGRAM P\nGOTO (10), 2.5\n10 CONTINUE\nEND\n", "computed GOTO index must be INTEGER"},
	}
	for _, c := range cases {
		expectError(t, c.src, c.frag)
	}
}

func TestGotoUndefinedLabelCaughtBySem(t *testing.T) {
	expectError(t, "PROGRAM P\nGOTO 99\nEND\n", "label 99 not defined")
}

func TestFunctionWithoutResultWarns(t *testing.T) {
	_, diags := analyze(t, `PROGRAM P
I = F(1)
END
INTEGER FUNCTION F(A)
A = A + 1
END
`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags.Error())
	}
	found := false
	for _, d := range diags.Diags {
		if d.Severity == source.Warning && strings.Contains(d.Message, "never assigns its result") {
			found = true
		}
	}
	if !found {
		t.Error("expected a warning about missing result assignment")
	}
}

func TestDimensionStatement(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER A
DIMENSION A(10), X(5)
A(3) = 1
X(2) = 1.5
END
`)
	a := prog.Main.Lookup("A")
	if !a.IsArray || a.Type != ast.TypeInteger {
		t.Errorf("A: %+v", a)
	}
	x := prog.Main.Lookup("X")
	if !x.IsArray || x.Type != ast.TypeReal {
		t.Errorf("X: %+v", x)
	}
}

func TestIntrinsicTyping(t *testing.T) {
	prog := analyzeOK(t, `PROGRAM MAIN
INTEGER I
REAL X
I = MAX(1, 2, 3)
X = ABS(-1.5)
END
`)
	_ = prog
}

func TestCommonExtendedLayout(t *testing.T) {
	// Second unit declares more members of the same block.
	prog := analyzeOK(t, `PROGRAM MAIN
COMMON /C/ A
A = 1.0
CALL S
END
SUBROUTINE S()
COMMON /C/ B, N
B = 2.0
N = 3
END
`)
	if len(prog.CommonBlocks["C"]) != 2 {
		t.Errorf("layout = %d", len(prog.CommonBlocks["C"]))
	}
	a := prog.Main.Lookup("A")
	b := prog.Procs["S"].Lookup("B")
	if a.Global != b.Global {
		t.Error("A and B should alias")
	}
}

func TestSymbolStrings(t *testing.T) {
	s := &Symbol{Name: "N", Kind: SymFormal, Type: ast.TypeInteger}
	if got := s.String(); !strings.Contains(got, "formal") || !strings.Contains(got, "N") {
		t.Errorf("Symbol.String = %q", got)
	}
	g := &GlobalVar{Block: "B", Index: 1, Name: "X"}
	if g.String() != "/B/ X" {
		t.Errorf("GlobalVar.String = %q", g.String())
	}
	for _, k := range []SymbolKind{SymLocal, SymFormal, SymCommon, SymConst, SymResult, SymProc} {
		if k.String() == "" {
			t.Error("empty SymbolKind string")
		}
	}
}
