// Package sem performs semantic analysis of F77s programs: it builds
// symbol tables, links COMMON blocks across program units, resolves the
// FORTRAN array-vs-call ambiguity, applies implicit typing, and type
// checks statements. Later phases (CFG, SSA, the interprocedural
// analyses) consume the resulting Program.
package sem

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/guard"
	"repro/internal/par"
	"repro/internal/source"
)

// SymbolKind classifies names within a procedure.
type SymbolKind int

const (
	SymLocal  SymbolKind = iota // local variable
	SymFormal                   // formal parameter
	SymCommon                   // member of a COMMON block
	SymConst                    // PARAMETER named constant
	SymResult                   // the function's own name used as result
	SymProc                     // reference to a procedure (call target)
)

func (k SymbolKind) String() string {
	switch k {
	case SymLocal:
		return "local"
	case SymFormal:
		return "formal"
	case SymCommon:
		return "common"
	case SymConst:
		return "parameter-constant"
	case SymResult:
		return "function-result"
	default:
		return "procedure"
	}
}

// Symbol is one name within a procedure's scope.
type Symbol struct {
	Name    string
	Kind    SymbolKind
	Type    ast.BaseType
	IsArray bool
	Dims    []ast.Expr
	Pos     source.Position

	// FormalIndex is the 0-based position for SymFormal symbols.
	FormalIndex int
	// Global links SymCommon symbols to their program-wide identity.
	Global *GlobalVar
	// ConstValue holds the value of SymConst symbols (integers only;
	// non-integer PARAMETERs keep Const=false).
	ConstValue int64
	HasConst   bool
}

func (s *Symbol) String() string {
	return fmt.Sprintf("%s %s %s", s.Kind, s.Type, s.Name)
}

// GlobalVar is the program-wide identity of a COMMON block member:
// FORTRAN binds COMMON members positionally, so two procedures may use
// different names for the same storage. The paper folds these globals
// into the "parameters" that interprocedural constant propagation
// tracks.
type GlobalVar struct {
	Block   string // COMMON block name
	Index   int    // position within the block
	Name    string // canonical (first-seen) member name
	Type    ast.BaseType
	IsArray bool
}

// Key returns a stable identity string, e.g. "GRID#0".
func (g *GlobalVar) Key() string { return fmt.Sprintf("%s#%d", g.Block, g.Index) }

func (g *GlobalVar) String() string {
	return fmt.Sprintf("/%s/ %s", g.Block, g.Name)
}

// ApplyKind resolves the array-vs-call ambiguity of ast.Apply nodes.
type ApplyKind int

const (
	ApplyArray ApplyKind = iota
	ApplyCall
	ApplyIntrinsic
)

// Intrinsic describes a builtin function.
type Intrinsic struct {
	Name     string
	MinArgs  int
	MaxArgs  int  // -1 = variadic
	IntInInt bool // integer args produce an integer result
}

// Intrinsics lists the supported builtin functions.
var Intrinsics = map[string]*Intrinsic{
	"MOD":  {Name: "MOD", MinArgs: 2, MaxArgs: 2, IntInInt: true},
	"MAX":  {Name: "MAX", MinArgs: 2, MaxArgs: -1, IntInInt: true},
	"MIN":  {Name: "MIN", MinArgs: 2, MaxArgs: -1, IntInInt: true},
	"ABS":  {Name: "ABS", MinArgs: 1, MaxArgs: 1, IntInInt: true},
	"IABS": {Name: "IABS", MinArgs: 1, MaxArgs: 1, IntInInt: true},
}

// Procedure is an analyzed program unit.
type Procedure struct {
	Unit    *ast.Unit
	Name    string
	Symbols map[string]*Symbol
	Formals []*Symbol // in declaration order
	// Commons lists this procedure's COMMON symbols in a stable order.
	Commons []*Symbol
	// Labels maps numeric labels to the labeled statement.
	Labels map[string]ast.Stmt
	// Result is the function-result symbol (functions only).
	Result *Symbol

	nextTemp int
}

// IsFunction reports whether the procedure returns a value.
func (p *Procedure) IsFunction() bool { return p.Unit.Kind == ast.FunctionUnit }

// NewTemp creates a compiler temporary of the given type. Temp names
// start with '@' so they can never collide with source names (the lexer
// rejects '@' in identifiers).
func (p *Procedure) NewTemp(t ast.BaseType) *Symbol {
	if t == ast.TypeNone {
		t = ast.TypeInteger
	}
	name := fmt.Sprintf("@T%d", p.nextTemp)
	p.nextTemp++
	s := &Symbol{Name: name, Kind: SymLocal, Type: t}
	p.Symbols[name] = s
	return s
}

// Lookup returns the symbol for name, or nil.
func (p *Procedure) Lookup(name string) *Symbol { return p.Symbols[name] }

// Program is a fully analyzed F77s program.
type Program struct {
	File  *ast.File
	Procs map[string]*Procedure
	// Order lists procedures in source order; Order[i].Unit == File.Units[i]
	// for well-formed programs.
	Order []*Procedure
	Main  *Procedure

	// CommonBlocks maps block name to the canonical member layout.
	CommonBlocks map[string][]*GlobalVar

	// applyKinds resolves every ast.Apply in the program.
	applyKinds map[*ast.Apply]ApplyKind
	// exprTypes caches the type of every analyzed expression.
	exprTypes map[ast.Expr]ast.BaseType
	// globalsCache is the stable Globals() order, sealed once after
	// analysis so solver inner loops share one slice.
	globalsCache []*GlobalVar
	// procIdx and globalIdx are the dense-index views sealed alongside
	// globalsCache: procIdx[Order[i]] == i and
	// globalIdx[Globals()[j]] == j. They let the solver keep its VAL
	// state in flat slices instead of per-procedure maps.
	procIdx   map[*Procedure]int
	globalIdx map[*GlobalVar]int
}

// ApplyKindOf returns the resolution of an Apply node.
func (pr *Program) ApplyKindOf(a *ast.Apply) ApplyKind { return pr.applyKinds[a] }

// TypeOf returns the analyzed type of an expression (TypeNone if the
// expression was never reached, e.g. due to earlier errors).
func (pr *Program) TypeOf(e ast.Expr) ast.BaseType { return pr.exprTypes[e] }

// Globals returns all COMMON globals in a stable order. The slice is
// computed once when analysis completes and shared thereafter (callers
// sit in solver inner loops); it must not be modified.
func (pr *Program) Globals() []*GlobalVar {
	if pr.globalsCache == nil {
		pr.sealGlobals()
	}
	return pr.globalsCache
}

// sealGlobals fixes the stable global order. Analysis calls it once
// before handing the Program out; after that Globals() is read-only and
// safe for concurrent use.
func (pr *Program) sealGlobals() {
	blocks := make([]string, 0, len(pr.CommonBlocks))
	for b := range pr.CommonBlocks {
		blocks = append(blocks, b)
	}
	sort.Strings(blocks)
	gs := make([]*GlobalVar, 0, len(blocks))
	for _, b := range blocks {
		gs = append(gs, pr.CommonBlocks[b]...)
	}
	pr.globalsCache = gs
	pr.globalIdx = make(map[*GlobalVar]int, len(gs))
	for i, g := range gs {
		pr.globalIdx[g] = i
	}
	pr.procIdx = make(map[*Procedure]int, len(pr.Order))
	for i, p := range pr.Order {
		pr.procIdx[p] = i
	}
}

// ProcIndex returns p's position in Order (-1 if p is not part of this
// program). Sealed with Globals(); safe for concurrent use afterwards.
func (pr *Program) ProcIndex(p *Procedure) int {
	if pr.procIdx == nil {
		pr.sealGlobals()
	}
	if i, ok := pr.procIdx[p]; ok {
		return i
	}
	return -1
}

// GlobalIndex returns g's position in Globals() (-1 if g is not part of
// this program). Sealed with Globals(); safe for concurrent use
// afterwards.
func (pr *Program) GlobalIndex(g *GlobalVar) int {
	if pr.globalIdx == nil {
		pr.sealGlobals()
	}
	if i, ok := pr.globalIdx[g]; ok {
		return i
	}
	return -1
}

// Analyze runs semantic analysis over a parsed file. It always returns a
// Program (possibly partial); callers should check diags for errors
// before trusting it.
func Analyze(file *ast.File, diags *source.ErrorList) *Program {
	return AnalyzeParallel(file, diags, 1)
}

// AnalyzeParallel is Analyze with the body-checking pass (pass 3) fanned
// out over up to workers goroutines (<= 0 selects GOMAXPROCS, 1 is the
// serial pass). Passes 1 and 2 stay serial: they mutate program-wide
// state (unit registration, COMMON block layouts). Pass 3 touches only
// its own unit's symbols plus read-only facts fixed by pass 2 (callee
// formal lists, unit kinds, result types), so units are independent;
// each worker records types, apply resolutions, and diagnostics in a
// private shard, merged in unit order so output is identical to the
// serial pass.
func AnalyzeParallel(file *ast.File, diags *source.ErrorList, workers int) *Program {
	prog, _ := AnalyzeParallelCtx(nil, file, diags, workers)
	return prog
}

// AnalyzeParallelCtx is AnalyzeParallel bounded by a context: workers
// observe ctx.Done() between units, so a cancelled or deadline-exceeded
// analysis stops burning CPU instead of checking every remaining body.
// A cancelled pass returns a nil Program and *guard.Exhausted on the
// deadline axis — a partially checked Program is never handed out,
// because downstream phases would treat missing type facts as bugs. A
// nil ctx never cancels.
func AnalyzeParallelCtx(ctx context.Context, file *ast.File, diags *source.ErrorList, workers int) (*Program, error) {
	defer guard.Repanic("sem")
	guard.InjectPanic("sem")
	prog := &Program{
		File:         file,
		Procs:        make(map[string]*Procedure),
		CommonBlocks: make(map[string][]*GlobalVar),
		applyKinds:   make(map[*ast.Apply]ApplyKind),
		exprTypes:    make(map[ast.Expr]ast.BaseType),
	}
	a := &analyzer{prog: prog, diags: diags, applyKinds: prog.applyKinds, exprTypes: prog.exprTypes}
	a.collectUnits()
	for _, p := range a.prog.Order {
		a.declareSymbols(p)
	}
	n := len(a.prog.Order)
	if par.Workers(workers, n) <= 1 {
		for _, p := range a.prog.Order {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, &guard.Exhausted{Axis: guard.AxisDeadline, Cause: err, Site: "sem"}
				}
			}
			a.checkBodyGuarded(p)
		}
		a.prog.sealGlobals()
		return a.prog, nil
	}
	shards := make([]*analyzer, n)
	err := par.ForEachCtx(ctx, workers, n, func(i int) error {
		sh := &analyzer{
			prog:       prog,
			diags:      &source.ErrorList{},
			applyKinds: make(map[*ast.Apply]ApplyKind),
			exprTypes:  make(map[ast.Expr]ast.BaseType),
		}
		shards[i] = sh
		sh.checkBodyGuarded(prog.Order[i])
		return nil
	})
	if err != nil {
		return nil, &guard.Exhausted{Axis: guard.AxisDeadline, Cause: err, Site: "sem"}
	}
	for _, sh := range shards {
		for k, v := range sh.applyKinds {
			prog.applyKinds[k] = v
		}
		for k, v := range sh.exprTypes {
			prog.exprTypes[k] = v
		}
		diags.Diags = append(diags.Diags, sh.diags.Diags...)
	}
	a.prog.sealGlobals()
	return a.prog, nil
}

type analyzer struct {
	prog  *Program
	diags *source.ErrorList
	// applyKinds and exprTypes are the side-table sinks for pass 3: they
	// alias prog's maps in serial mode, and per-unit shards in parallel
	// mode (an AST node belongs to exactly one unit, so shards are
	// disjoint and merge without conflicts).
	applyKinds map[*ast.Apply]ApplyKind
	exprTypes  map[ast.Expr]ast.BaseType
}

// checkBodyGuarded tags panics during body checking with the unit name,
// so fault attribution survives both the serial and the parallel pass.
func (a *analyzer) checkBodyGuarded(p *Procedure) {
	defer guard.Repanic("sem", p.Name)
	a.checkBody(p)
}

func (a *analyzer) errorf(pos source.Position, format string, args ...interface{}) {
	a.diags.Errorf(pos, format, args...)
}

// implicitType applies FORTRAN implicit typing: names beginning with
// I..N are INTEGER, everything else REAL.
func implicitType(name string) ast.BaseType {
	if name == "" {
		return ast.TypeReal
	}
	if c := name[0]; c >= 'I' && c <= 'N' {
		return ast.TypeInteger
	}
	return ast.TypeReal
}

// ---------------------------------------------------------------------
// Pass 1: collect program units

func (a *analyzer) collectUnits() {
	for _, u := range a.prog.File.Units {
		if prev, dup := a.prog.Procs[u.Name]; dup {
			a.errorf(u.Pos(), "duplicate program unit %s (previously defined at %s)", u.Name, prev.Unit.Pos())
			continue
		}
		p := &Procedure{
			Unit:    u,
			Name:    u.Name,
			Symbols: make(map[string]*Symbol),
			Labels:  make(map[string]ast.Stmt),
		}
		a.prog.Procs[u.Name] = p
		a.prog.Order = append(a.prog.Order, p)
		if u.Kind == ast.ProgramUnit {
			if a.prog.Main != nil {
				a.errorf(u.Pos(), "multiple PROGRAM units (%s and %s)", a.prog.Main.Name, u.Name)
			} else {
				a.prog.Main = p
			}
		}
	}
	if a.prog.Main == nil && len(a.prog.Order) > 0 {
		a.errorf(a.prog.File.Pos(), "no PROGRAM unit found")
	}
}

// ---------------------------------------------------------------------
// Pass 2: declarations and symbol tables

func (a *analyzer) declareSymbols(p *Procedure) {
	u := p.Unit

	// Formal parameters first; types may be refined by declarations.
	for i, f := range u.Params {
		if _, dup := p.Symbols[f.Name]; dup {
			a.errorf(f.Pos(), "duplicate formal parameter %s in %s", f.Name, p.Name)
			continue
		}
		s := &Symbol{Name: f.Name, Kind: SymFormal, Type: implicitType(f.Name), FormalIndex: i, Pos: f.Pos()}
		p.Symbols[f.Name] = s
		p.Formals = append(p.Formals, s)
	}

	// Function result symbol.
	if u.Kind == ast.FunctionUnit {
		if _, dup := p.Symbols[u.Name]; dup {
			a.errorf(u.Pos(), "function name %s collides with a formal parameter", u.Name)
		} else {
			s := &Symbol{Name: u.Name, Kind: SymResult, Type: u.Result, Pos: u.Pos()}
			p.Symbols[u.Name] = s
			p.Result = s
		}
	}

	for _, d := range u.Decls {
		switch decl := d.(type) {
		case *ast.VarDecl:
			for _, it := range decl.Items {
				a.declareItem(p, it, decl.Type)
			}
		case *ast.DimensionDecl:
			for _, it := range decl.Items {
				if len(it.Dims) == 0 {
					a.errorf(it.Pos(), "DIMENSION item %s has no dimensions", it.Name)
					continue
				}
				a.declareItem(p, it, ast.TypeNone)
			}
		case *ast.CommonDecl:
			a.declareCommon(p, decl)
		case *ast.ParamDecl:
			for i, name := range decl.Names {
				if _, dup := p.Symbols[name]; dup {
					a.errorf(decl.Pos(), "PARAMETER %s redeclares an existing name", name)
					continue
				}
				s := &Symbol{Name: name, Kind: SymConst, Type: implicitType(name), Pos: decl.Pos()}
				if v, ok := a.constEval(p, decl.Values[i]); ok {
					s.ConstValue = v
					s.HasConst = true
					s.Type = ast.TypeInteger
				}
				p.Symbols[name] = s
			}
		case *ast.DataDecl:
			// DATA names must exist (declared or implicit); treated as an
			// initializing assignment by later phases.
			for _, name := range decl.Names {
				a.ensureVar(p, name, decl.Pos())
			}
		}
	}
}

// declareItem declares (or refines) one variable. typ == TypeNone means
// "keep the existing or implicit type" (DIMENSION statements).
func (a *analyzer) declareItem(p *Procedure, it *ast.DeclItem, typ ast.BaseType) {
	if s, exists := p.Symbols[it.Name]; exists {
		// Refining an existing symbol (formal, result, or common member).
		if typ != ast.TypeNone {
			s.Type = typ
		}
		if len(it.Dims) > 0 {
			if s.IsArray {
				a.errorf(it.Pos(), "%s already has dimensions", it.Name)
			}
			s.IsArray = true
			s.Dims = it.Dims
			if s.Global != nil {
				s.Global.IsArray = true
			}
		}
		if s.Global != nil && typ != ast.TypeNone {
			s.Global.Type = typ
		}
		return
	}
	t := typ
	if t == ast.TypeNone {
		t = implicitType(it.Name)
	}
	p.Symbols[it.Name] = &Symbol{
		Name: it.Name, Kind: SymLocal, Type: t,
		IsArray: len(it.Dims) > 0, Dims: it.Dims, Pos: it.Pos(),
	}
}

func (a *analyzer) declareCommon(p *Procedure, decl *ast.CommonDecl) {
	block := decl.Block
	layout := a.prog.CommonBlocks[block]
	for i, it := range decl.Items {
		// Extend the canonical layout if this procedure declares more
		// members than any previous one.
		if i >= len(layout) {
			layout = append(layout, &GlobalVar{
				Block: block, Index: i, Name: it.Name,
				Type: implicitType(it.Name), IsArray: len(it.Dims) > 0,
			})
		}
		g := layout[i]
		if s, exists := p.Symbols[it.Name]; exists {
			// A prior type declaration (e.g. INTEGER N before COMMON) is
			// folded into the common symbol.
			if s.Kind != SymLocal {
				a.errorf(it.Pos(), "%s cannot appear in COMMON (already a %s)", it.Name, s.Kind)
				continue
			}
			s.Kind = SymCommon
			s.Global = g
			g.Type = s.Type
			if s.IsArray {
				g.IsArray = true
			}
			p.Commons = append(p.Commons, s)
			continue
		}
		s := &Symbol{
			Name: it.Name, Kind: SymCommon, Type: implicitType(it.Name),
			IsArray: len(it.Dims) > 0, Dims: it.Dims, Global: g, Pos: it.Pos(),
		}
		p.Symbols[it.Name] = s
		p.Commons = append(p.Commons, s)
	}
	a.prog.CommonBlocks[block] = layout
}

// ensureVar returns the symbol for name, creating an implicitly typed
// local if the name is new.
func (a *analyzer) ensureVar(p *Procedure, name string, pos source.Position) *Symbol {
	if s, ok := p.Symbols[name]; ok {
		return s
	}
	s := &Symbol{Name: name, Kind: SymLocal, Type: implicitType(name), Pos: pos}
	p.Symbols[name] = s
	return s
}

// constEval evaluates integer constant expressions (PARAMETER values,
// which may reference earlier PARAMETERs).
func (a *analyzer) constEval(p *Procedure, e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Ident:
		if s, ok := p.Symbols[x.Name]; ok && s.Kind == SymConst && s.HasConst {
			return s.ConstValue, true
		}
	case *ast.Unary:
		if x.Op == ast.OpNeg {
			if v, ok := a.constEval(p, x.X); ok {
				return -v, true
			}
		}
	case *ast.Binary:
		l, lok := a.constEval(p, x.X)
		r, rok := a.constEval(p, x.Y)
		if lok && rok {
			switch x.Op {
			case ast.OpAdd:
				return l + r, true
			case ast.OpSub:
				return l - r, true
			case ast.OpMul:
				return l * r, true
			case ast.OpDiv:
				if r != 0 {
					return l / r, true
				}
			case ast.OpPow:
				if r >= 0 && r < 63 {
					v := int64(1)
					for i := int64(0); i < r; i++ {
						v *= l
					}
					return v, true
				}
			}
		}
	}
	return 0, false
}
