package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestCheckerConcurrentExhaustion drives one Checker's step budget to
// exhaustion from many goroutines at once. Under `go test -race` this
// is the regression test for the atomic step counter: the old plain-int
// accounting raced as soon as two workers of the parallel pipeline
// shared an attempt's Checker.
func TestCheckerConcurrentExhaustion(t *testing.T) {
	const (
		workers = 16
		perG    = 1000
		limit   = workers * perG / 2
	)
	c := NewChecker(context.Background(), Budget{MaxSolverSteps: limit})

	var wg sync.WaitGroup
	exhausted := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
				if err := c.Check("solve"); err != nil {
					var ex *Exhausted
					if !errors.As(err, &ex) || ex.Axis != AxisSolverSteps {
						t.Errorf("worker %d: got %v, want solver-steps Exhausted", w, err)
					}
					exhausted[w] = true
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Used(); got < int64(limit) {
		t.Errorf("accounted %d steps, want at least the limit %d", got, limit)
	}
	anyExhausted := false
	for _, e := range exhausted {
		anyExhausted = anyExhausted || e
	}
	if !anyExhausted {
		t.Error("no worker observed budget exhaustion")
	}
	// Every late check agrees the budget is gone (exhaustion is sticky).
	if err := c.Check("solve"); err == nil {
		t.Error("Check after exhaustion returned nil")
	}
}

// TestCheckerConcurrentRounds exercises the atomic round counter.
func TestCheckerConcurrentRounds(t *testing.T) {
	c := NewChecker(nil, Budget{})
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AddRound()
		}()
	}
	wg.Wait()
	if got := c.Rounds(); got != n {
		t.Errorf("Rounds() = %d, want %d", got, n)
	}
}

// TestCheckerConcurrentDeadline verifies cancellation propagates to
// every concurrent checker user.
func TestCheckerConcurrentDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, Budget{})
	cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Check("jump"); err == nil {
				t.Error("Check ignored a cancelled context")
			}
			if err := c.Deadline("jump"); err == nil {
				t.Error("Deadline ignored a cancelled context")
			}
		}()
	}
	wg.Wait()
}

// TestNilCheckerCounters: the nil Checker stays a no-op for the new
// counter API, like the rest of the Checker surface.
func TestNilCheckerCounters(t *testing.T) {
	var c *Checker
	if c.Add(5) != 0 || c.Used() != 0 || c.AddRound() != 0 || c.Rounds() != 0 {
		t.Error("nil Checker counters must be zero")
	}
	if err := c.Check("solve"); err != nil {
		t.Errorf("nil Checker.Check = %v", err)
	}
}
