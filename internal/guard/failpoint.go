package guard

import (
	"os"
	"sync"
	"sync/atomic"
)

// EnvFailPoints is the environment variable that must be non-empty for
// fail points to arm. Production processes never set it, so the hooks
// compile to a single atomic load on the hot path.
const EnvFailPoints = "IPCP_FAILPOINTS"

// Hook is a fault-injection action. It may panic (to inject a crash) or
// return an error (to inject budget exhaustion at sites that handle
// errors).
type Hook func() error

var (
	fpArmed atomic.Int32
	fpMu    sync.Mutex
	fpHooks map[string]Hook
)

// Enabled reports whether fault injection is switched on for this
// process (the IPCP_FAILPOINTS environment variable is non-empty).
func Enabled() bool { return os.Getenv(EnvFailPoints) != "" }

// Set arms a fail point at the named site and returns a function that
// disarms it. It is a no-op (returning a no-op disarm) unless Enabled.
func Set(site string, h Hook) (remove func()) {
	if !Enabled() {
		return func() {}
	}
	fpMu.Lock()
	if fpHooks == nil {
		fpHooks = make(map[string]Hook)
	}
	fpHooks[site] = h
	fpMu.Unlock()
	fpArmed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			fpMu.Lock()
			delete(fpHooks, site)
			fpMu.Unlock()
			fpArmed.Add(-1)
		})
	}
}

// Inject runs the hook armed at site, if any, and returns its error.
// Sites that can propagate errors (the solvers) use it so tests can
// inject budget exhaustion; an armed hook may also panic.
func Inject(site string) error {
	if fpArmed.Load() == 0 {
		return nil
	}
	fpMu.Lock()
	h := fpHooks[site]
	fpMu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}

// InjectPanic is Inject for sites with no error path: a hook-returned
// error is raised as a panic (and then captured by the phase's Repanic).
func InjectPanic(site string) {
	if err := Inject(site); err != nil {
		panic(err)
	}
}
