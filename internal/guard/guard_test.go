package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheckerUnlimited(t *testing.T) {
	c := NewChecker(nil, Budget{})
	for i := 0; i < 1000; i++ {
		if err := c.Steps("solve", i); err != nil {
			t.Fatalf("unlimited budget exhausted at step %d: %v", i, err)
		}
	}
	var nilC *Checker
	if err := nilC.Steps("solve", 1<<30); err != nil {
		t.Fatalf("nil checker must be unlimited, got %v", err)
	}
}

func TestCheckerSteps(t *testing.T) {
	c := NewChecker(context.Background(), Budget{MaxSolverSteps: 10})
	if err := c.Steps("solve", 10); err != nil {
		t.Fatalf("at the limit should pass: %v", err)
	}
	err := c.Steps("solve", 11)
	var ex *Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("want *Exhausted, got %v", err)
	}
	if ex.Axis != AxisSolverSteps || ex.Limit != 10 || ex.Site != "solve" {
		t.Errorf("bad exhaustion: %+v", ex)
	}
	if !strings.Contains(ex.Error(), "solver-steps") {
		t.Errorf("error text should name the axis: %q", ex.Error())
	}
}

func TestCheckerDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewChecker(ctx, Budget{})
	err := c.Steps("solve", 0)
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Axis != AxisDeadline {
		t.Fatalf("want deadline exhaustion, got %v", err)
	}
	if ex.Cause == nil {
		t.Error("deadline exhaustion should carry the context error")
	}
}

func TestRepanicWrapsInnermost(t *testing.T) {
	inner := func() {
		defer Repanic("lex")
		panic("boom")
	}
	outer := func() {
		defer Repanic("parse", "MAIN")
		inner()
	}
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("want *PanicError, got %T %v", r, r)
		}
		if pe.Site != "lex" {
			t.Errorf("innermost site must win, got %q", pe.Site)
		}
		if pe.Value != "boom" {
			t.Errorf("panic value lost: %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("stack not captured")
		}
	}()
	outer()
}

func TestRepanicNoPanic(t *testing.T) {
	func() {
		defer Repanic("solve")
	}() // must not panic on the no-panic path
}

func TestFailPointsDisabledWithoutEnv(t *testing.T) {
	if Enabled() {
		t.Skip("IPCP_FAILPOINTS set in environment")
	}
	remove := Set("solve", func() error { return errors.New("injected") })
	defer remove()
	if err := Inject("solve"); err != nil {
		t.Fatalf("fail points must stay dormant without %s: %v", EnvFailPoints, err)
	}
}

func TestFailPointsInject(t *testing.T) {
	t.Setenv(EnvFailPoints, "1")
	remove := Set("solve", func() error { return &Exhausted{Axis: AxisSolverSteps, Limit: 1, Site: "solve"} })
	if err := Inject("solve"); err == nil {
		t.Fatal("armed fail point did not fire")
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	remove()
	remove() // disarming twice is safe
	if err := Inject("solve"); err != nil {
		t.Fatalf("disarmed fail point fired: %v", err)
	}
}

func TestInjectPanicRaisesError(t *testing.T) {
	t.Setenv(EnvFailPoints, "1")
	defer Set("sem", func() error { return errors.New("injected sem fault") })()
	defer func() {
		if recover() == nil {
			t.Error("InjectPanic should panic on a hook error")
		}
	}()
	InjectPanic("sem")
}
