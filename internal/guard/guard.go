// Package guard is the fault-tolerance layer of the analyzer. It has
// three concerns, all deliberately small and dependency-free so every
// other package can use them:
//
//   - Resource budgets (Budget, Checker): a wall-clock deadline carried
//     by a context.Context, a cap on solver work, a cap on
//     complete-propagation rounds, and a cap on jump-function
//     expression size. Budget exhaustion is reported as *Exhausted so
//     the driver can degrade to a cheaper-but-sound configuration
//     instead of hanging or crashing.
//
//   - Panic attribution (Repanic, PanicError): each pipeline phase
//     wraps itself with `defer guard.Repanic("phase")`; a panic
//     escaping the phase is re-panicked as a *PanicError carrying the
//     phase name, the program unit being processed, and the stack at
//     the point of failure. The public API (package ipcp) recovers the
//     wrapped value and returns it as a structured internal error —
//     library users never see a raw panic.
//
//   - Fault injection (Inject, InjectPanic, Set): test-only hooks,
//     enabled by the IPCP_FAILPOINTS environment variable, that let the
//     test suite inject panics, budget exhaustion, and malformed values
//     into each phase to prove recovery and degradation actually work.
package guard

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Axis names a budget dimension; it appears in Exhausted errors and in
// degradation warnings so callers can tell what ran out.
type Axis string

const (
	// AxisDeadline is the wall-clock budget (context deadline or
	// cancellation).
	AxisDeadline Axis = "deadline"
	// AxisSolverSteps is the cap on jump-function evaluations performed
	// by the interprocedural solver.
	AxisSolverSteps Axis = "solver-steps"
	// AxisRounds is the cap on complete-propagation rounds.
	AxisRounds Axis = "rounds"
	// AxisExprSize is the cap on jump-function expression size
	// (symbolic nodes per expression).
	AxisExprSize Axis = "jf-expr-size"
)

// Budget bounds the work one analysis may perform. The zero Budget is
// unlimited on every axis; the deadline axis is carried separately by
// the context given to NewChecker.
type Budget struct {
	// MaxSolverSteps caps jump-function evaluations across the whole
	// interprocedural propagation (0 = unlimited).
	MaxSolverSteps int
	// MaxRounds caps complete-propagation rounds (0 = unlimited, i.e.
	// the driver's own safety net applies).
	MaxRounds int
	// MaxExprSize caps the node count of any one symbolic jump-function
	// expression; larger expressions degrade to opaque (⊥), which is
	// sound (0 = unlimited).
	MaxExprSize int
}

// Exhausted reports that a budget axis ran out. It is an error, not a
// panic: the analysis driver catches it and degrades the configuration.
type Exhausted struct {
	Axis  Axis
	Limit int    // the configured limit (0 for the deadline axis)
	Cause error  // non-nil for the deadline axis (context error)
	Site  string // pipeline site that noticed, e.g. "solve"
}

func (e *Exhausted) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("guard: %s budget exhausted at %s: %v", e.Axis, e.Site, e.Cause)
	}
	return fmt.Sprintf("guard: %s budget exhausted at %s (limit %d)", e.Axis, e.Site, e.Limit)
}

// Unwrap exposes the cause (the context error on the deadline axis) so
// errors.Is can see context.Canceled / context.DeadlineExceeded through
// an Exhausted.
func (e *Exhausted) Unwrap() error { return e.Cause }

// Checker enforces a Budget plus a context deadline during an analysis
// attempt. Each attempt gets its own Checker; one Checker is safe for
// concurrent use from many goroutines — the parallel pipeline shares a
// single Checker across all workers of an attempt, so the budget bounds
// the attempt's total work, not per-worker work. Work is accounted with
// the atomic Add/AddRound counters and checked with Check.
type Checker struct {
	ctx    context.Context
	budget Budget
	steps  atomic.Int64
	rounds atomic.Int64
}

// NewChecker returns a Checker over ctx and b. A nil ctx means no
// deadline.
func NewChecker(ctx context.Context, b Budget) *Checker {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Checker{ctx: ctx, budget: b}
}

// Budget returns the checker's budget.
func (c *Checker) Budget() Budget { return c.budget }

// Steps checks the solver-step and deadline axes given an externally
// maintained step count; it returns *Exhausted when either is out. The
// count is the caller's — prefer Add/Check, whose internal counter is
// atomic and therefore safe when many workers account work at once.
func (c *Checker) Steps(site string, steps int) error {
	if c == nil {
		return nil
	}
	if c.budget.MaxSolverSteps > 0 && steps > c.budget.MaxSolverSteps {
		return &Exhausted{Axis: AxisSolverSteps, Limit: c.budget.MaxSolverSteps, Site: site}
	}
	return c.Deadline(site)
}

// Add atomically records n more units of solver work and returns the
// accumulated total. Safe from any number of goroutines; pair with
// Check to enforce the step budget.
func (c *Checker) Add(n int) int64 {
	if c == nil {
		return 0
	}
	return c.steps.Add(int64(n))
}

// Used returns the work accounted so far via Add.
func (c *Checker) Used() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// AddRound atomically records one more complete-propagation round and
// returns the total.
func (c *Checker) AddRound() int64 {
	if c == nil {
		return 0
	}
	return c.rounds.Add(1)
}

// Rounds returns the rounds accounted so far via AddRound.
func (c *Checker) Rounds() int64 {
	if c == nil {
		return 0
	}
	return c.rounds.Load()
}

// Check tests the accumulated step counter against the step budget and
// the context against the deadline; it returns *Exhausted when either
// is out. Safe for concurrent use.
func (c *Checker) Check(site string) error {
	if c == nil {
		return nil
	}
	if c.budget.MaxSolverSteps > 0 && c.steps.Load() > int64(c.budget.MaxSolverSteps) {
		return &Exhausted{Axis: AxisSolverSteps, Limit: c.budget.MaxSolverSteps, Site: site}
	}
	return c.Deadline(site)
}

// Deadline checks only the wall-clock axis.
func (c *Checker) Deadline(site string) error {
	if c == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return &Exhausted{Axis: AxisDeadline, Cause: err, Site: site}
	}
	return nil
}

// PanicError is a panic captured at a phase boundary. Re-panicked by
// Repanic so the outermost recover sees the innermost phase.
type PanicError struct {
	Site  string // pipeline phase: lex, parse, sem, jump, solve, subst, ...
	Unit  string // program unit being processed, when known
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Unit != "" {
		return fmt.Sprintf("guard: panic in %s (unit %s): %v", e.Site, e.Unit, e.Value)
	}
	return fmt.Sprintf("guard: panic in %s: %v", e.Site, e.Value)
}

// Repanic is deferred at a phase boundary: it converts an escaping
// panic into a *PanicError carrying the phase (and optional program
// unit), preserving an already-wrapped inner panic so attribution
// points at the innermost phase.
//
//	defer guard.Repanic("solve")
func Repanic(site string, unit ...string) {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(*PanicError); ok {
		panic(pe) // innermost attribution wins
	}
	pe := &PanicError{Site: site, Value: r, Stack: debug.Stack()}
	if len(unit) > 0 {
		pe.Unit = unit[0]
	}
	panic(pe)
}
