package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// arbitrary produces a random lattice element.
func arbitrary(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return TopValue()
	case 1:
		return BottomValue()
	default:
		return ConstValue(int64(r.Intn(5) - 2)) // small range forces collisions
	}
}

func TestMeetTable(t *testing.T) {
	top, bot := TopValue(), BottomValue()
	c1, c2 := ConstValue(1), ConstValue(2)
	cases := []struct{ a, b, want Value }{
		{top, top, top},
		{top, c1, c1},
		{c1, top, c1},
		{top, bot, bot},
		{bot, top, bot},
		{bot, bot, bot},
		{bot, c1, bot},
		{c1, bot, bot},
		{c1, c1, c1},
		{c1, c2, bot},
		{c2, c1, bot},
	}
	for _, c := range cases {
		if got := Meet(c.a, c.b); got != c.want {
			t.Errorf("Meet(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMeetCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		r := rand.New(rand.NewSource(seedA ^ seedB))
		a, b := arbitrary(r), arbitrary(r)
		return Meet(a, b) == Meet(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := arbitrary(r), arbitrary(r), arbitrary(r)
		return Meet(Meet(a, b), c) == Meet(a, Meet(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := arbitrary(r)
		return Meet(a, a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopIsIdentityBottomAbsorbs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := arbitrary(r)
		return Meet(TopValue(), a) == a && Meet(BottomValue(), a) == BottomValue()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBoundedDepth verifies the property the paper's complexity bounds
// rely on: any chain of meets lowers a value at most Depth times.
func TestBoundedDepth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := TopValue()
		lowerings := 0
		for i := 0; i < 100; i++ {
			nv := Meet(v, arbitrary(r))
			if nv != v {
				lowerings++
			}
			v = nv
		}
		return lowerings <= Depth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeetMonotone(t *testing.T) {
	// a ⊑ b implies a ∧ c ⊑ b ∧ c.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := arbitrary(r), arbitrary(r), arbitrary(r)
		if !Leq(a, b) {
			return true // vacuous
		}
		return Leq(Meet(a, c), Meet(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeq(t *testing.T) {
	if !Leq(BottomValue(), TopValue()) || !Leq(BottomValue(), ConstValue(5)) ||
		!Leq(ConstValue(5), TopValue()) || !Leq(ConstValue(5), ConstValue(5)) {
		t.Error("expected ⊑ relations missing")
	}
	if Leq(TopValue(), ConstValue(5)) || Leq(ConstValue(5), ConstValue(6)) ||
		Leq(ConstValue(5), BottomValue()) {
		t.Error("unexpected ⊑ relations")
	}
}

func TestMeetAll(t *testing.T) {
	if !MeetAll().IsTop() {
		t.Error("empty MeetAll should be ⊤")
	}
	if v := MeetAll(ConstValue(3), TopValue(), ConstValue(3)); v != ConstValue(3) {
		t.Errorf("MeetAll = %v", v)
	}
	if v := MeetAll(ConstValue(3), ConstValue(4)); !v.IsBottom() {
		t.Errorf("MeetAll of differing constants = %v", v)
	}
}

func TestAccessors(t *testing.T) {
	v := ConstValue(42)
	if c, ok := v.IsConst(); !ok || c != 42 {
		t.Errorf("IsConst = %v %v", c, ok)
	}
	if v.Const() != 42 {
		t.Error("Const() wrong")
	}
	if v.IsTop() || v.IsBottom() {
		t.Error("constant misclassified")
	}
	if !TopValue().IsTop() || !BottomValue().IsBottom() {
		t.Error("Top/Bottom misclassified")
	}
	var zero Value
	if !zero.IsTop() {
		t.Error("zero Value must be ⊤")
	}
	if v.Level() != Const || TopValue().Level() != Top {
		t.Error("Level() wrong")
	}
}

func TestConstPanicsOnNonConst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Const() on ⊤ should panic")
		}
	}()
	_ = TopValue().Const()
}

func TestStrings(t *testing.T) {
	if TopValue().String() != "⊤" || BottomValue().String() != "⊥" || ConstValue(-7).String() != "-7" {
		t.Error("String() wrong")
	}
}
