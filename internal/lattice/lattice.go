// Package lattice implements the constant-propagation lattice of
// Figure 1 of the paper:
//
//	      ⊤
//	... c₋₁ c₀ c₁ c₂ ...
//	      ⊥
//
// Meet rules: ⊤ ∧ x = x; ⊥ ∧ x = ⊥; cᵢ ∧ cⱼ = cᵢ if cᵢ = cⱼ, else ⊥.
// The lattice is infinitely wide but only two deep: any value can be
// lowered at most twice (⊤ → constant → ⊥), which bounds the running
// time of the interprocedural propagation.
package lattice

import "fmt"

// Level classifies a lattice element.
type Level int8

const (
	Top    Level = iota // ⊤: no information yet (optimistic initial value)
	Const               // a known integer constant
	Bottom              // ⊥: proven non-constant (or unknowable)
)

// Value is an element of the constant-propagation lattice. The zero
// Value is ⊤.
type Value struct {
	level Level
	c     int64
}

// TopValue returns ⊤.
func TopValue() Value { return Value{} }

// BottomValue returns ⊥.
func BottomValue() Value { return Value{level: Bottom} }

// ConstValue returns the lattice element for the constant c.
func ConstValue(c int64) Value { return Value{level: Const, c: c} }

// Level returns the element's level.
func (v Value) Level() Level { return v.level }

// IsTop reports whether v is ⊤.
func (v Value) IsTop() bool { return v.level == Top }

// IsBottom reports whether v is ⊥.
func (v Value) IsBottom() bool { return v.level == Bottom }

// IsConst reports whether v is a constant, returning it.
func (v Value) IsConst() (int64, bool) { return v.c, v.level == Const }

// ConstOK is the checked accessor for the constant: it returns the
// value and true when v is a constant, and (0, false) otherwise. Use it
// anywhere v's level has not already been proven Const.
func (v Value) ConstOK() (int64, bool) {
	if v.level != Const {
		return 0, false
	}
	return v.c, true
}

// Const returns the constant; it panics unless IsConst. It is the fast
// path for contexts that have already proven v constant — all other
// callers must use ConstOK (or IsConst) so that a malformed value
// degrades recoverably instead of crashing the analysis.
func (v Value) Const() int64 {
	if v.level != Const {
		panic("lattice: Const() on non-constant value " + v.String())
	}
	return v.c
}

// Meet returns v ∧ w per Figure 1.
func Meet(v, w Value) Value {
	switch {
	case v.level == Top:
		return w
	case w.level == Top:
		return v
	case v.level == Bottom || w.level == Bottom:
		return BottomValue()
	case v.c == w.c:
		return v
	default:
		return BottomValue()
	}
}

// MeetAll folds Meet over vs (⊤ for an empty list).
func MeetAll(vs ...Value) Value {
	r := TopValue()
	for _, v := range vs {
		r = Meet(r, v)
		if r.IsBottom() {
			return r // early out: ⊥ is absorbing
		}
	}
	return r
}

// Leq reports whether v ⊑ w (v is lower than or equal to w in the
// lattice order where ⊥ ⊑ c ⊑ ⊤).
func Leq(v, w Value) bool { return Meet(v, w) == v }

// Equal reports whether two elements are identical.
func (v Value) Equal(w Value) bool { return v == w }

func (v Value) String() string {
	switch v.level {
	case Top:
		return "⊤"
	case Bottom:
		return "⊥"
	default:
		return fmt.Sprintf("%d", v.c)
	}
}

// Depth is the height of the lattice: the maximum number of times a
// value can be lowered. The propagation-cost bounds in §3.1.5 of the
// paper rely on this being 2.
const Depth = 2
