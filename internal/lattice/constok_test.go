package lattice

import "testing"

func TestConstOK(t *testing.T) {
	if c, ok := ConstValue(7).ConstOK(); !ok || c != 7 {
		t.Errorf("ConstValue(7).ConstOK() = (%d, %v)", c, ok)
	}
	if c, ok := TopValue().ConstOK(); ok || c != 0 {
		t.Errorf("TopValue().ConstOK() = (%d, %v), want (0, false)", c, ok)
	}
	if c, ok := BottomValue().ConstOK(); ok || c != 0 {
		t.Errorf("BottomValue().ConstOK() = (%d, %v), want (0, false)", c, ok)
	}
}

func TestConstStillPanicsOnMisuse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Const() on ⊥ must panic (the proven-constant fast path)")
		}
	}()
	_ = BottomValue().Const()
}
