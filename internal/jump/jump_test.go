package jump

import (
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/symbolic"
)

func buildFns(t *testing.T, src string, cfg Config) (*Functions, *sem.Program) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	fns, err := Build(nil, cg, mod, symbolic.NewBuilder(), cfg, nil)
	if err != nil {
		t.Fatalf("jump.Build: %v", err)
	}
	return fns, prog
}

// siteOf finds the jump functions for caller's idx-th call site.
func siteOf(t *testing.T, fns *Functions, prog *sem.Program, caller string, idx int) *SiteFunctions {
	t.Helper()
	pf := fns.Procs[prog.Procs[caller]]
	if pf == nil || idx >= len(pf.Sites) {
		t.Fatalf("no site %d in %s", idx, caller)
	}
	return pf.Sites[idx]
}

const chain = `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL A(7, K)
END
SUBROUTINE A(N, M)
INTEGER N, M
CALL B(N, M + 1, 9)
END
SUBROUTINE B(X, Y, Z)
INTEGER X, Y, Z
PRINT *, X + Y + Z
END
`

func TestLiteralKindRestriction(t *testing.T) {
	fns, prog := buildFns(t, chain, Config{Kind: Literal, UseMOD: true})
	// MAIN's site: 7 is literal, K is not.
	sf := siteOf(t, fns, prog, "MAIN", 0)
	if c, ok := sf.Formals[0].IsConst(); !ok || c != 7 {
		t.Errorf("J for N = %v, want 7", sf.Formals[0])
	}
	if sf.Formals[1] != nil {
		t.Errorf("J for M = %v, want ⊥ (K is computed, not literal)", sf.Formals[1])
	}
	// A's site: N pass-through and M+1 polynomial both rejected; 9 kept.
	sf = siteOf(t, fns, prog, "A", 0)
	if sf.Formals[0] != nil || sf.Formals[1] != nil {
		t.Errorf("literal kind should reject non-literal actuals: %v %v", sf.Formals[0], sf.Formals[1])
	}
	if c, ok := sf.Formals[2].IsConst(); !ok || c != 9 {
		t.Errorf("J for Z = %v, want 9", sf.Formals[2])
	}
}

func TestIntraKindRestriction(t *testing.T) {
	fns, prog := buildFns(t, chain, Config{Kind: Intraprocedural, UseMOD: true})
	sf := siteOf(t, fns, prog, "MAIN", 0)
	if c, ok := sf.Formals[1].IsConst(); !ok || c != 5 {
		t.Errorf("J for M = %v, want 5 (2+3 folds)", sf.Formals[1])
	}
	// In A, N is a formal (not intraprocedurally constant).
	sf = siteOf(t, fns, prog, "A", 0)
	if sf.Formals[0] != nil {
		t.Errorf("J for X = %v, want ⊥", sf.Formals[0])
	}
}

func TestPassThroughKindRestriction(t *testing.T) {
	fns, prog := buildFns(t, chain, Config{Kind: PassThrough, UseMOD: true})
	sf := siteOf(t, fns, prog, "A", 0)
	if sf.Formals[0] == nil || sf.Formals[0].Op != symbolic.OpParam {
		t.Errorf("J for X = %v, want Param(N)", sf.Formals[0])
	}
	if sf.Formals[1] != nil {
		t.Errorf("J for Y = %v, want ⊥ (M+1 is polynomial, not pass-through)", sf.Formals[1])
	}
}

func TestPolynomialKindKeepsExpressions(t *testing.T) {
	fns, prog := buildFns(t, chain, Config{Kind: Polynomial, UseMOD: true})
	sf := siteOf(t, fns, prog, "A", 0)
	if sf.Formals[1] == nil {
		t.Fatal("J for Y should be M+1")
	}
	if len(sf.Formals[1].Support()) != 1 {
		t.Errorf("support of M+1 = %v", sf.Formals[1].Support())
	}
}

func TestReturnSummaries(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER I
CALL SETTER(I, 3)
END
SUBROUTINE SETTER(A, B)
INTEGER A, B
A = B * B + 1
END
INTEGER FUNCTION TWICE(X)
INTEGER X
TWICE = X * 2
END
`
	fns, prog := buildFns(t, src, Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true})
	setter := prog.Procs["SETTER"]
	sum := fns.Returns[setter]
	if sum == nil {
		t.Fatal("no return summary for SETTER")
	}
	if sum.Formals[0] == nil {
		t.Fatal("no return JF for A")
	}
	if len(sum.Formals[0].Support()) != 1 {
		t.Errorf("R for A should depend on B: %v", sum.Formals[0])
	}
	// B unmodified: identity return jump function.
	if sum.Formals[1] == nil || sum.Formals[1].Op != symbolic.OpParam {
		t.Errorf("R for B = %v, want identity", sum.Formals[1])
	}
	// Function result summary (TWICE is never called, but bottom-up
	// generation still summarizes it).
	twice := prog.Procs["TWICE"]
	if fns.Returns[twice] == nil || fns.Returns[twice].Result == nil {
		t.Errorf("no result summary for TWICE: %+v", fns.Returns[twice])
	}
}

func TestRecursiveProcedureHasNoSummary(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER I
CALL R(I, 3)
END
SUBROUTINE R(X, N)
INTEGER X, N
X = N
IF (N .GT. 0) CALL R(X, N - 1)
END
`
	fns, prog := buildFns(t, src, Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true})
	if fns.Returns[prog.Procs["R"]] != nil {
		t.Error("recursive procedure should have no return summary")
	}
}

func TestGlobalJumpFunctions(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 5
CALL S
END
SUBROUTINE S()
INTEGER H
COMMON /C/ H
PRINT *, H
END
`
	fns, prog := buildFns(t, src, Config{Kind: Intraprocedural, UseMOD: true})
	sf := siteOf(t, fns, prog, "MAIN", 0)
	g := prog.CommonBlocks["C"][0]
	if c, ok := sf.Globals[g].IsConst(); !ok || c != 5 {
		t.Errorf("J for global = %v, want 5", sf.Globals[g])
	}

	// The literal kind ignores globals entirely.
	fns, prog = buildFns(t, src, Config{Kind: Literal, UseMOD: true})
	sf = siteOf(t, fns, prog, "MAIN", 0)
	if len(sf.Globals) != 0 {
		t.Errorf("literal kind should have no global jump functions: %v", sf.Globals)
	}
}

func TestNonIntegerFormalsSkipped(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(1.5, 2, .TRUE.)
END
SUBROUTINE S(X, N, L)
REAL X
INTEGER N
LOGICAL L
PRINT *, N
END
`
	fns, prog := buildFns(t, src, Config{Kind: Polynomial, UseMOD: true})
	sf := siteOf(t, fns, prog, "MAIN", 0)
	if sf.Formals[0] != nil || sf.Formals[2] != nil {
		t.Errorf("REAL/LOGICAL formals should get no jump functions: %v %v", sf.Formals[0], sf.Formals[2])
	}
	if c, ok := sf.Formals[1].IsConst(); !ok || c != 2 {
		t.Errorf("J for N = %v", sf.Formals[1])
	}
}

func TestDeadSiteMarking(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER I
I = 1
IF (I .EQ. 2) THEN
  CALL S(9)
ENDIF
CALL S(4)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	fns, prog := buildFns(t, src, Config{Kind: Polynomial, UseMOD: true, Prune: true})
	pf := fns.Procs[prog.Procs["MAIN"]]
	if len(pf.Sites) != 2 {
		t.Fatalf("sites = %d", len(pf.Sites))
	}
	deadCount := 0
	for _, s := range pf.Sites {
		if s.Dead {
			deadCount++
		}
	}
	if deadCount != 1 {
		t.Errorf("dead sites = %d, want 1", deadCount)
	}
}

func TestNegativeLiteralAtSite(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(-8)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	fns, prog := buildFns(t, src, Config{Kind: Literal, UseMOD: true})
	sf := siteOf(t, fns, prog, "MAIN", 0)
	if c, ok := sf.Formals[0].IsConst(); !ok || c != -8 {
		t.Errorf("J for N = %v, want -8", sf.Formals[0])
	}
}

func TestKindAndConfigStrings(t *testing.T) {
	names := map[Kind]string{
		Literal: "literal", Intraprocedural: "intraprocedural",
		PassThrough: "pass-through", Polynomial: "polynomial",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	d := DefaultConfig()
	if d.Kind != PassThrough || !d.UseMOD || !d.UseReturnJFs {
		t.Errorf("DefaultConfig = %+v", d)
	}
}

func TestSiteFunctionsString(t *testing.T) {
	fns, prog := buildFns(t, chain, Config{Kind: Polynomial, UseMOD: true})
	sf := siteOf(t, fns, prog, "MAIN", 0)
	s := sf.String()
	if !strings.Contains(s, "N=7") {
		t.Errorf("String = %q", s)
	}
}
