// Package jump constructs jump functions (paper §3).
//
// Forward jump functions: for call site s and callee formal (or global)
// y, J_s^y approximates y's value on entry to the callee as a function
// of the caller's entry values. Four implementations are provided, in
// increasing order of power and cost:
//
//	Literal          — y's actual is a literal constant at s
//	Intraprocedural  — gcp(y, s): intraprocedural constant propagation /
//	                   value numbering (with MOD info) proves y constant
//	Pass-through     — additionally, y's actual is an unmodified formal
//	                   of the caller (so constants flow along paths of
//	                   length > 1 in the call graph)
//	Polynomial       — y's actual is any polynomial of the caller's
//	                   entry values
//
// Return jump functions: for each formal/global x modified by p (and
// the function result), R_p^x approximates x's value on return from p.
// A single polynomial implementation is provided, built bottom-up over
// the call graph as in §3.2; procedures in recursive SCCs are
// summarized conservatively (no return jump functions).
//
// All four forward kinds are derived by *restricting* the symbolic
// expression the value-numbering engine (package intra) computes for
// each actual — mirroring the paper's implementation note that "the
// appropriate function is constructed from the information produced by
// value numbering".
package jump

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/guard"
	"repro/internal/intra"
	"repro/internal/modref"
	"repro/internal/par"
	"repro/internal/sem"
	"repro/internal/ssa"
	"repro/internal/symbolic"
)

// Kind selects a forward jump function implementation.
type Kind int

const (
	Literal Kind = iota
	Intraprocedural
	PassThrough
	Polynomial
)

func (k Kind) String() string {
	switch k {
	case Literal:
		return "literal"
	case Intraprocedural:
		return "intraprocedural"
	case PassThrough:
		return "pass-through"
	default:
		return "polynomial"
	}
}

// Config selects the analysis variant (the experimental axes of the
// paper's Tables 2 and 3).
type Config struct {
	Kind Kind
	// UseMOD uses interprocedural MOD information at call sites; when
	// false, worst-case kill assumptions apply (Table 3, column 1).
	UseMOD bool
	// UseReturnJFs builds and applies return jump functions (Table 2's
	// first four columns vs last two).
	UseReturnJFs bool
	// FullSubstitution lifts the paper's only-constants limitation on
	// return jump function results (an extension; off reproduces the
	// paper).
	FullSubstitution bool
	// Prune enables branch pruning during jump function construction;
	// used by the complete-propagation loop after dead code is found.
	Prune bool
	// Gated builds γ expressions at joins (gated-SSA jump functions, the
	// paper's §4.2 suggestion — an extension that subsumes complete
	// propagation without iterating). Meaningful with Kind Polynomial.
	Gated bool
	// Check, when non-nil, is consulted between procedures during
	// construction; a non-nil return (typically *guard.Exhausted) aborts
	// Build with that error so the driver can degrade the configuration.
	Check func() error
	// Memo, when non-nil, memoizes per-procedure build products across
	// Build calls: a Lookup hit supplies a procedure's return summary
	// and site functions (already expressed in this build's builder),
	// skipping its SSA/value-numbering analysis; freshly built products
	// are offered back via Store. Lookup is called concurrently and must
	// be read-only; Store must be safe for concurrent use. A non-nil
	// Memo forces per-procedure expression builders even serially, so
	// truncation counts stay attributable per procedure.
	Memo Memo
	// Parallelism bounds the worker goroutines that analyze procedures
	// concurrently: <= 0 selects one worker per CPU (GOMAXPROCS), 1 runs
	// the serial pipeline. Results are bit-identical to the serial run:
	// workers get private expression builders (the hash-consing tables
	// are not goroutine-safe) and are merged in call-graph order.
	Parallelism int
}

// DefaultConfig is the paper's recommended configuration: pass-through
// jump functions with MOD information and return jump functions.
func DefaultConfig() Config {
	return Config{Kind: PassThrough, UseMOD: true, UseReturnJFs: true}
}

// SiteFunctions holds the forward jump functions of one call site:
// one per callee formal position and one per program global. A nil
// entry is ⊥ (the jump function that always evaluates to ⊥).
type SiteFunctions struct {
	Site    *cfg.CallSite
	Callee  *sem.Procedure
	Formals []*symbolic.Expr
	Globals map[*sem.GlobalVar]*symbolic.Expr
	// Dead marks sites proven unreachable (branch pruning): they
	// contribute nothing to the callee's VAL set rather than ⊥.
	Dead bool
}

// ProcFunctions bundles everything computed for one procedure.
type ProcFunctions struct {
	Proc  *sem.Procedure
	SSA   *ssa.Func
	Intra *intra.Result
	Sites []*SiteFunctions
}

// Functions is the program-wide result of jump function construction.
type Functions struct {
	Config  Config
	Graph   *callgraph.Graph
	Mod     *modref.Info
	Builder *symbolic.Builder
	// Returns maps each procedure to its return jump functions (absent
	// or nil for recursive procedures and when UseReturnJFs is off).
	Returns map[*sem.Procedure]*intra.ReturnSummary
	// Procs maps each procedure to its forward jump functions.
	Procs map[*sem.Procedure]*ProcFunctions
}

// EntryEnv provides known constant entry values per procedure for
// rebuild rounds of complete propagation; nil means no knowledge.
type EntryEnv func(p *sem.Procedure) map[ssa.Var]int64

// Memo caches per-procedure build products across Build calls. See
// Config.Memo.
type Memo interface {
	Lookup(p *sem.Procedure) *ProcMemo
	Store(p *sem.Procedure, m *ProcMemo)
}

// ProcMemo is one procedure's memoizable build product.
type ProcMemo struct {
	// Summary is the return jump-function summary; nil for recursive
	// procedures and when return jump functions are off.
	Summary *intra.ReturnSummary
	// Sites are the procedure's forward jump functions, aligned with its
	// CFG call sites (program-procedure callees only, in CFG order).
	Sites []*SiteFunctions
	// Truncated is how many expressions the procedure's analysis
	// truncated to ⊥ under the size budget (needed to reproduce the
	// driver's truncation warning exactly).
	Truncated int
}

// Build constructs return and forward jump functions for the whole
// program, in the paper's phase order: return jump functions bottom-up,
// then forward jump functions. It returns an error only when
// cfgr.Check reports budget exhaustion or ctx is cancelled (both
// surface as *guard.Exhausted so the driver can degrade the
// configuration); internal panics are re-raised tagged with the phase
// and the procedure being analyzed. Worker pools observe ctx between
// procedures, so a cancelled build stops claiming work instead of
// analyzing the whole program. A nil ctx never cancels.
func Build(ctx context.Context, cg *callgraph.Graph, mod *modref.Info, b *symbolic.Builder, cfgr Config, entry EntryEnv) (*Functions, error) {
	defer guard.Repanic("jump")
	guard.InjectPanic("jump")
	if b == nil {
		b = symbolic.NewBuilder()
	}
	fns := &Functions{
		Config:  cfgr,
		Graph:   cg,
		Mod:     mod,
		Builder: b,
		Returns: make(map[*sem.Procedure]*intra.ReturnSummary),
		Procs:   make(map[*sem.Procedure]*ProcFunctions),
	}
	builder := &fnBuilder{
		fns:      fns,
		ctx:      ctx,
		entry:    entry,
		workers:  par.Workers(cfgr.Parallelism, len(cg.Order)),
		orderIdx: make(map[*sem.Procedure]int, len(cg.Order)),
	}
	for i, n := range cg.Order {
		builder.orderIdx[n.Proc] = i
	}
	if builder.workers > 1 || cfgr.Memo != nil {
		if builder.workers > 1 {
			builder.prebuildSSA()
		}
		builder.procBuilders = make([]*symbolic.Builder, len(cg.Order))
		for i := range builder.procBuilders {
			pb := symbolic.NewBuilder()
			pb.SetMaxSize(b.MaxSize())
			builder.procBuilders[i] = pb
		}
		// Every worker builder is private until the final merge below, so
		// the truncation sum observes quiescent counters.
		defer func() {
			for _, pb := range builder.procBuilders {
				b.AddTruncated(pb.Truncated())
			}
		}()
	}
	if cfgr.UseReturnJFs {
		if err := builder.buildReturns(); err != nil {
			return nil, err
		}
	}
	if err := builder.buildForwards(); err != nil {
		return nil, err
	}
	return fns, nil
}

// check consults the configured budget hook between procedures.
func (fb *fnBuilder) check() error {
	if fb.fns.Config.Check == nil {
		return nil
	}
	return fb.fns.Config.Check()
}

// ctxErr reports the build context's cancellation as *guard.Exhausted.
func (fb *fnBuilder) ctxErr() error {
	if fb.ctx == nil {
		return nil
	}
	if err := fb.ctx.Err(); err != nil {
		return &guard.Exhausted{Axis: guard.AxisDeadline, Cause: err, Site: "jump"}
	}
	return nil
}

// forEach fans fn out over the build's worker pool under its context,
// normalizing a raw context error (the pool stopped claiming tasks)
// into the same *guard.Exhausted a task-level deadline check produces,
// so the degradation driver sees one error shape either way.
func (fb *fnBuilder) forEach(count int, fn func(i int) error) error {
	err := par.ForEachCtx(fb.ctx, fb.workers, count, fn)
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &guard.Exhausted{Axis: guard.AxisDeadline, Cause: err, Site: "jump"}
	}
	return err
}

type fnBuilder struct {
	fns      *Functions
	ctx      context.Context
	entry    EntryEnv
	workers  int
	orderIdx map[*sem.Procedure]int
	// ssaCache holds one SSA build per procedure: the SSA form depends
	// only on the CFG and the kill assumptions, both fixed for a Build
	// call, so the bottom-up (return JF) and top-down (forward JF)
	// passes can share it.
	ssaCache map[*callgraph.Node]*ssa.Func
	// procBuilders (parallel mode only) gives each procedure a private
	// expression builder: the hash-consing tables are not goroutine-safe,
	// and expressions cross builders only through Substitute, which
	// re-interns. Serial mode keeps the single shared builder.
	procBuilders []*symbolic.Builder
}

// memoHit returns the memoized build product for p, if any. The memo's
// hit set is frozen before Build starts, so this is safe from workers.
func (fb *fnBuilder) memoHit(p *sem.Procedure) *ProcMemo {
	if m := fb.fns.Config.Memo; m != nil {
		return m.Lookup(p)
	}
	return nil
}

func (fb *fnBuilder) opaqueBase(p *sem.Procedure) int64 {
	if i, ok := fb.orderIdx[p]; ok {
		return int64(i+1) << 32
	}
	return int64(len(fb.fns.Graph.Order)+1) << 32
}

// builderFor returns the expression builder procedure p's analysis must
// use: its private one in parallel mode, the shared one serially.
func (fb *fnBuilder) builderFor(p *sem.Procedure) *symbolic.Builder {
	if fb.procBuilders != nil {
		if i, ok := fb.orderIdx[p]; ok {
			return fb.procBuilders[i]
		}
	}
	return fb.fns.Builder
}

// prebuildSSA fills the SSA cache for every procedure concurrently.
// ssa.Build touches only per-procedure structures (the CFG, the dom
// tree, its own Func), so the fan-out needs no synchronization beyond
// the per-index slots.
func (fb *fnBuilder) prebuildSSA() {
	order := fb.fns.Graph.Order
	opts := ssa.Options{Globals: fb.fns.Graph.Prog.Globals()}
	if fb.fns.Config.UseMOD {
		opts.Kills = fb.fns.Mod.Kills
	}
	built := make([]*ssa.Func, len(order))
	// A cancelled prebuild leaves nil cache slots; analyzeProc fills them
	// lazily, and the passes that follow observe the context themselves.
	_ = par.ForEachCtx(fb.ctx, fb.workers, len(order), func(i int) error {
		n := order[i]
		if fb.memoHit(n.Proc) != nil {
			return nil // both passes will reuse the memoized product
		}
		defer guard.Repanic("jump", n.Proc.Name)
		built[i] = ssa.Build(n.CFG, dom.Compute(n.CFG), opts)
		return nil
	})
	fb.ssaCache = make(map[*callgraph.Node]*ssa.Func, len(order))
	for i, n := range order {
		fb.ssaCache[n] = built[i]
	}
}

// analyzeProc runs the SSA + symbolic engine for one procedure under
// the current configuration and the return summaries computed so far.
func (fb *fnBuilder) analyzeProc(n *callgraph.Node) (*ssa.Func, *intra.Result) {
	cfgr := fb.fns.Config
	if fb.ssaCache == nil {
		fb.ssaCache = make(map[*callgraph.Node]*ssa.Func)
	}
	fn := fb.ssaCache[n]
	if fn == nil {
		opts := ssa.Options{Globals: fb.fns.Graph.Prog.Globals()}
		if cfgr.UseMOD {
			opts.Kills = fb.fns.Mod.Kills
		}
		fn = ssa.Build(n.CFG, dom.Compute(n.CFG), opts)
		fb.ssaCache[n] = fn
	}

	iopts := intra.Options{
		Builder:          fb.builderFor(n.Proc),
		OpaqueBase:       fb.opaqueBase(n.Proc),
		Prune:            cfgr.Prune,
		FullSubstitution: cfgr.FullSubstitution,
		Gated:            cfgr.Gated,
	}
	if fb.entry != nil {
		iopts.Entry = fb.entry(n.Proc)
	}
	if cfgr.UseReturnJFs {
		iopts.ReturnJF = func(callee string) *intra.ReturnSummary {
			if cn := fb.fns.Graph.Nodes[callee]; cn != nil {
				return fb.fns.Returns[cn.Proc]
			}
			return nil
		}
		if cfgr.UseMOD {
			iopts.GMod = func(callee string, g *sem.GlobalVar) bool {
				cn := fb.fns.Graph.Nodes[callee]
				if cn == nil {
					return true
				}
				return fb.fns.Mod.GMod(cn.Proc, g)
			}
		}
	}
	return fn, intra.Analyze(fn, iopts)
}

// buildReturns walks the call graph bottom-up, producing a
// ReturnSummary per non-recursive procedure (paper §4.1, first phase).
//
// In parallel mode the bottom-up order relaxes to level scheduling:
// level(p) = 1 + max level of p's callees in other SCCs, so the nodes
// of one level have no summary dependence on each other and can be
// analyzed concurrently. Summaries are installed serially at each level
// barrier, so a worker only ever reads a quiescent Returns map.
func (fb *fnBuilder) buildReturns() error {
	order := fb.fns.Graph.BottomUp()
	// Memoized summaries depend on nothing built this call (their
	// callee closures are part of the memo key), so install them all up
	// front; both the serial sweep and the level barriers below then see
	// them exactly where a fresh build would have put them.
	for _, n := range order {
		if m := fb.memoHit(n.Proc); m != nil && m.Summary != nil {
			fb.fns.Returns[n.Proc] = m.Summary
		}
	}
	if fb.workers <= 1 {
		for _, n := range order {
			if n.Recursive {
				continue // conservative: no return jump functions
			}
			if fb.memoHit(n.Proc) != nil {
				continue
			}
			if err := fb.ctxErr(); err != nil {
				return err
			}
			if err := fb.check(); err != nil {
				return err
			}
			fn, res := fb.analyzeProcGuarded(n)
			fb.fns.Returns[n.Proc] = fb.summarize(n, fn, res)
		}
		return nil
	}

	// BottomUp order lists callees before callers (for nodes in distinct
	// SCCs), so one forward sweep computes every level.
	level := make(map[*callgraph.Node]int, len(order))
	maxLevel := 0
	for _, n := range order {
		lv := 0
		for _, site := range n.Out {
			m := fb.fns.Graph.Nodes[site.Callee]
			if m == nil || m.SCC == n.SCC {
				continue
			}
			if l := level[m] + 1; l > lv {
				lv = l
			}
		}
		level[n] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	for lv := 0; lv <= maxLevel; lv++ {
		var batch []*callgraph.Node
		for _, n := range order {
			if level[n] == lv && !n.Recursive && fb.memoHit(n.Proc) == nil {
				batch = append(batch, n)
			}
		}
		sums := make([]*intra.ReturnSummary, len(batch))
		err := fb.forEach(len(batch), func(i int) error {
			if err := fb.check(); err != nil {
				return err
			}
			n := batch[i]
			fn, res := fb.analyzeProcGuarded(n)
			sums[i] = fb.summarize(n, fn, res)
			return nil
		})
		if err != nil {
			return err
		}
		for i, n := range batch {
			fb.fns.Returns[n.Proc] = sums[i]
		}
	}
	return nil
}

// summarize extracts the return jump functions from one procedure's
// exit state.
func (fb *fnBuilder) summarize(n *callgraph.Node, fn *ssa.Func, res *intra.Result) *intra.ReturnSummary {
	sum := &intra.ReturnSummary{
		Proc:    n.Proc,
		Formals: make(map[int]*symbolic.Expr),
		Globals: make(map[*sem.GlobalVar]*symbolic.Expr),
	}
	for i, f := range n.Proc.Formals {
		if f.IsArray || f.Type != ast.TypeInteger {
			continue
		}
		if e := usableExit(res, fn.ExitVals[ssa.VarOf(f)]); e != nil {
			sum.Formals[i] = e
		}
	}
	for _, g := range fb.fns.Graph.Prog.Globals() {
		if g.IsArray || g.Type != ast.TypeInteger {
			continue
		}
		if e := usableExit(res, fn.ExitVals[ssa.GlobalVar(g)]); e != nil {
			sum.Globals[g] = e
		}
	}
	if r := n.Proc.Result; r != nil {
		sum.Result = usableExit(res, fn.ExitVals[ssa.VarOf(r)])
	}
	return sum
}

// analyzeProcGuarded is analyzeProc with panic attribution: a panic in
// the SSA/value-numbering engine is tagged with the procedure's name.
func (fb *fnBuilder) analyzeProcGuarded(n *callgraph.Node) (*ssa.Func, *intra.Result) {
	defer guard.Repanic("jump", n.Proc.Name)
	return fb.analyzeProc(n)
}

// usableExit filters an exit expression down to a valid return jump
// function: transparent (no opaque parts) and integer-valued.
func usableExit(res *intra.Result, v *ssa.Value) *symbolic.Expr {
	if v == nil {
		return nil
	}
	e := res.ExprOf(v)
	if e == nil || e.HasOpaque() {
		return nil
	}
	if _, isBool := e.IsBool(); isBool {
		return nil
	}
	return e
}

// buildForwards constructs the per-site forward jump functions
// (paper §4.1, second phase; a top-down pass, though with return
// summaries fixed the order no longer matters — which is also what
// makes the pass embarrassingly parallel).
func (fb *fnBuilder) buildForwards() error {
	order := fb.fns.Graph.TopDown()
	pfs := make([]*ProcFunctions, len(order))
	err := fb.forEach(len(order), func(i int) error {
		if err := fb.check(); err != nil {
			return err
		}
		n := order[i]
		if m := fb.memoHit(n.Proc); m != nil {
			// Reuse the memoized product wholesale. The truncation the
			// original analysis observed is credited to this procedure's
			// builder so the driver's warning reproduces exactly.
			pfs[i] = &ProcFunctions{Proc: n.Proc, Sites: m.Sites}
			fb.builderFor(n.Proc).AddTruncated(m.Truncated)
			return nil
		}
		fn, res := fb.analyzeProcGuarded(n)
		pf := &ProcFunctions{Proc: n.Proc, SSA: fn, Intra: res}
		for _, site := range fn.Graph.Sites {
			calleeNode := fb.fns.Graph.Nodes[site.Callee]
			if calleeNode == nil {
				continue
			}
			pf.Sites = append(pf.Sites, fb.siteFunctions(fn, res, site, calleeNode.Proc))
		}
		pfs[i] = pf
		if memo := fb.fns.Config.Memo; memo != nil {
			// Both passes over this procedure used its private builder, so
			// its truncation counter is exactly this procedure's share.
			memo.Store(n.Proc, &ProcMemo{
				Summary:   fb.fns.Returns[n.Proc],
				Sites:     pf.Sites,
				Truncated: fb.builderFor(n.Proc).Truncated(),
			})
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, n := range order {
		fb.fns.Procs[n.Proc] = pfs[i]
	}
	return nil
}

func (fb *fnBuilder) siteFunctions(fn *ssa.Func, res *intra.Result, site *cfg.CallSite, callee *sem.Procedure) *SiteFunctions {
	sf := &SiteFunctions{
		Site:    site,
		Callee:  callee,
		Formals: make([]*symbolic.Expr, len(callee.Formals)),
		Globals: make(map[*sem.GlobalVar]*symbolic.Expr),
	}
	if site.Block != nil && !res.BlockExecutable(site.Block) {
		sf.Dead = true
		return sf
	}
	info := fn.Calls[site]
	kind := fb.fns.Config.Kind
	for i, formal := range callee.Formals {
		if i >= len(site.Args) {
			break
		}
		// Only integer parameters are propagated (paper §4: "the
		// implementation only propagates integer constants").
		if formal.Type != ast.TypeInteger || formal.IsArray {
			continue
		}
		var raw *symbolic.Expr
		if info != nil && i < len(info.ArgVals) && info.ArgVals[i] != nil {
			raw = res.ExprOf(info.ArgVals[i])
		}
		sf.Formals[i] = restrict(kind, raw, site.Args[i])
	}
	// Globals are "implicit actuals": their value at the site is the
	// jump function for the corresponding entry global of the callee.
	// The literal kind misses them entirely (§3.1.1: "this jump function
	// misses any constant globals which are passed implicitly").
	if kind != Literal && info != nil {
		for g, v := range info.GlobalVals {
			if g.Type != ast.TypeInteger || g.IsArray {
				continue
			}
			if e := restrict(kind, res.ExprOf(v), nil); e != nil {
				sf.Globals[g] = e
			}
		}
	}
	return sf
}

// restrict derives the kind-specific jump function from the full
// symbolic expression of an actual (nil = ⊥).
func restrict(kind Kind, raw *symbolic.Expr, actual ast.Expr) *symbolic.Expr {
	switch kind {
	case Literal:
		// Textual scan of the call site: a literal (possibly negated)
		// integer constant. Independent of the engine's expression.
		if raw == nil {
			return nil
		}
		switch a := actual.(type) {
		case *ast.IntLit:
			return raw // raw is the same constant
		case *ast.Unary:
			if a.Op == ast.OpNeg {
				if _, ok := a.X.(*ast.IntLit); ok {
					return raw
				}
			}
		}
		return nil
	case Intraprocedural:
		if raw == nil {
			return nil
		}
		if _, ok := raw.IsConst(); ok {
			return raw
		}
		return nil
	case PassThrough:
		if raw == nil {
			return nil
		}
		if _, ok := raw.IsConst(); ok {
			return raw
		}
		if raw.Op == symbolic.OpParam || raw.Op == symbolic.OpGlobal {
			return raw
		}
		return nil
	default: // Polynomial
		if raw == nil || raw.HasOpaque() {
			return nil
		}
		if _, isBool := raw.IsBool(); isBool {
			return nil
		}
		return raw
	}
}

// String renders the jump functions of a site for debugging.
func (sf *SiteFunctions) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site %s:", sf.Site)
	for i, e := range sf.Formals {
		name := sf.Callee.Formals[i].Name
		if e == nil {
			fmt.Fprintf(&b, " %s=⊥", name)
		} else {
			fmt.Fprintf(&b, " %s=%s", name, e)
		}
	}
	var keys []string
	for g := range sf.Globals {
		keys = append(keys, g.Key())
	}
	sort.Strings(keys)
	for _, k := range keys {
		for g, e := range sf.Globals {
			if g.Key() == k {
				fmt.Fprintf(&b, " %s=%s", k, e)
			}
		}
	}
	return b.String()
}
