// Package callgraph builds the program call graph G used by the
// interprocedural phases: one node per procedure, one edge per call
// site. It also computes Tarjan SCCs so the bottom-up (return jump
// function) and top-down (forward jump function) passes can walk the
// condensation in topological order; procedures in non-trivial SCCs are
// (mutually) recursive and are summarized conservatively.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/sem"
)

// Node is one procedure in the call graph.
type Node struct {
	Proc *sem.Procedure
	CFG  *cfg.Graph
	// Out lists this procedure's call sites (in CFG order).
	Out []*cfg.CallSite
	// In lists the sites that call this procedure.
	In []*cfg.CallSite
	// SCC is the Tarjan component index; components are numbered in
	// reverse topological order (callees before callers).
	SCC int
	// Recursive marks nodes in a non-trivial SCC or with a self loop.
	Recursive bool
}

// Graph is the program call graph.
type Graph struct {
	Prog  *sem.Program
	Nodes map[string]*Node
	// Order lists nodes in source order.
	Order []*Node
	// NumSCCs is the number of strongly connected components.
	NumSCCs int
}

// Build constructs CFGs for every procedure and the call graph over
// them.
func Build(prog *sem.Program) *Graph {
	g := &Graph{Prog: prog, Nodes: make(map[string]*Node)}
	for _, p := range prog.Order {
		n := &Node{Proc: p, CFG: cfg.Build(prog, p)}
		n.Out = n.CFG.Sites
		g.Nodes[p.Name] = n
		g.Order = append(g.Order, n)
	}
	for _, n := range g.Order {
		for _, site := range n.Out {
			if callee, ok := g.Nodes[site.Callee]; ok {
				callee.In = append(callee.In, site)
			}
		}
	}
	g.computeSCCs()
	return g
}

// BuildReuse is Build with per-procedure CFG reuse: procedures present
// in reuse keep their already-built CFG (and therefore their *CallSite
// identities); only absent procedures get a fresh cfg.Build. Everything
// downstream — edge wiring, SCC numbering, recursion marking — is
// recomputed from scratch, so the resulting Graph is indistinguishable
// from Build's for equal bodies. Sessions use this to rebuild the call
// graph after a one-unit edit without re-walking every unchanged body.
func BuildReuse(prog *sem.Program, reuse map[*sem.Procedure]*cfg.Graph) *Graph {
	g := &Graph{Prog: prog, Nodes: make(map[string]*Node)}
	for _, p := range prog.Order {
		c := reuse[p]
		if c == nil {
			c = cfg.Build(prog, p)
		}
		n := &Node{Proc: p, CFG: c}
		n.Out = n.CFG.Sites
		g.Nodes[p.Name] = n
		g.Order = append(g.Order, n)
	}
	for _, n := range g.Order {
		for _, site := range n.Out {
			if callee, ok := g.Nodes[site.Callee]; ok {
				callee.In = append(callee.In, site)
			}
		}
	}
	g.computeSCCs()
	return g
}

// Callee resolves a site's target node.
func (g *Graph) Callee(site *cfg.CallSite) *Node { return g.Nodes[site.Callee] }

// computeSCCs runs Tarjan's algorithm. Component numbering follows the
// order components are completed, which for Tarjan is reverse
// topological: if p calls q (and they are in different components),
// SCC(q) < SCC(p).
func (g *Graph) computeSCCs() {
	index := make(map[*Node]int)
	low := make(map[*Node]int)
	onStack := make(map[*Node]bool)
	var stack []*Node
	next := 0

	var strongConnect func(n *Node)
	strongConnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true

		for _, site := range n.Out {
			m := g.Nodes[site.Callee]
			if m == nil {
				continue
			}
			if _, seen := index[m]; !seen {
				strongConnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] {
				if index[m] < low[n] {
					low[n] = index[m]
				}
			}
		}

		if low[n] == index[n] {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				m.SCC = g.NumSCCs
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			if len(comp) > 1 {
				for _, m := range comp {
					m.Recursive = true
				}
			}
			g.NumSCCs++
		}
	}

	for _, n := range g.Order {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}

	// Self-recursion.
	for _, n := range g.Order {
		for _, site := range n.Out {
			if site.Callee == n.Proc.Name {
				n.Recursive = true
			}
		}
	}
}

// BottomUp returns nodes ordered callees-first (ascending SCC number,
// stable within a component).
func (g *Graph) BottomUp() []*Node {
	out := make([]*Node, len(g.Order))
	copy(out, g.Order)
	sort.SliceStable(out, func(i, j int) bool { return out[i].SCC < out[j].SCC })
	return out
}

// TopDown returns nodes ordered callers-first.
func (g *Graph) TopDown() []*Node {
	out := g.BottomUp()
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// String renders the call graph edges for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Order {
		targets := make([]string, len(n.Out))
		for i, s := range n.Out {
			targets[i] = s.Callee
		}
		fmt.Fprintf(&b, "%s (scc %d) -> [%s]\n", n.Proc.Name, n.SCC, strings.Join(targets, " "))
	}
	return b.String()
}
