package callgraph

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	return Build(prog)
}

const chainSrc = `PROGRAM MAIN
CALL A(1)
CALL B(2)
END
SUBROUTINE A(X)
INTEGER X
CALL B(X)
END
SUBROUTINE B(Y)
INTEGER Y
Y = F(Y)
END
INTEGER FUNCTION F(Z)
INTEGER Z
F = Z + 1
END
`

func TestEdges(t *testing.T) {
	g := build(t, chainSrc)
	if len(g.Order) != 4 {
		t.Fatalf("nodes = %d", len(g.Order))
	}
	main := g.Nodes["MAIN"]
	if len(main.Out) != 2 {
		t.Errorf("MAIN out = %d", len(main.Out))
	}
	b := g.Nodes["B"]
	if len(b.In) != 2 { // from MAIN and A
		t.Errorf("B in = %d", len(b.In))
	}
	f := g.Nodes["F"]
	if len(f.In) != 1 || !f.In[0].IsFunction {
		t.Errorf("F in = %+v", f.In)
	}
}

func TestBottomUpOrder(t *testing.T) {
	g := build(t, chainSrc)
	pos := make(map[string]int)
	for i, n := range g.BottomUp() {
		pos[n.Proc.Name] = i
	}
	// Callees must come before callers.
	if !(pos["F"] < pos["B"] && pos["B"] < pos["A"] && pos["A"] < pos["MAIN"]) {
		t.Errorf("bottom-up order wrong: %v", pos)
	}
	top := g.TopDown()
	if top[0].Proc.Name != "MAIN" {
		t.Errorf("top-down should start at MAIN, got %s", top[0].Proc.Name)
	}
}

func TestRecursionDetection(t *testing.T) {
	g := build(t, `PROGRAM MAIN
CALL R(3)
CALL S(1)
END
SUBROUTINE R(N)
INTEGER N
IF (N .GT. 0) CALL R(N - 1)
END
SUBROUTINE S(X)
INTEGER X
CALL T(X)
END
SUBROUTINE T(X)
INTEGER X
IF (X .GT. 0) CALL S(X - 1)
END
`)
	if !g.Nodes["R"].Recursive {
		t.Error("self-recursive R not detected")
	}
	if !g.Nodes["S"].Recursive || !g.Nodes["T"].Recursive {
		t.Error("mutual recursion S↔T not detected")
	}
	if g.Nodes["MAIN"].Recursive {
		t.Error("MAIN wrongly marked recursive")
	}
	if g.Nodes["S"].SCC != g.Nodes["T"].SCC {
		t.Error("S and T should share an SCC")
	}
	if g.Nodes["MAIN"].SCC <= g.Nodes["S"].SCC {
		t.Error("caller SCC should be numbered after callee SCC")
	}
}

func TestNoCallsGraph(t *testing.T) {
	g := build(t, "PROGRAM MAIN\nI = 1\nEND\n")
	if len(g.Order) != 1 || len(g.Nodes["MAIN"].Out) != 0 {
		t.Error("trivial graph wrong")
	}
	if g.NumSCCs != 1 {
		t.Errorf("NumSCCs = %d", g.NumSCCs)
	}
}

func TestString(t *testing.T) {
	g := build(t, chainSrc)
	s := g.String()
	if !strings.Contains(s, "MAIN") || !strings.Contains(s, "-> [B F]") && !strings.Contains(s, "-> [F]") {
		t.Errorf("String output:\n%s", s)
	}
}

func TestCalleeResolution(t *testing.T) {
	g := build(t, chainSrc)
	for _, n := range g.Order {
		for _, site := range n.Out {
			callee := g.Callee(site)
			if callee == nil {
				t.Errorf("unresolved callee for %v", site)
				continue
			}
			if callee.Proc.Name != site.Callee {
				t.Errorf("callee mismatch: %s vs %s", callee.Proc.Name, site.Callee)
			}
		}
	}
}

// TestGeneratedProgramsAcyclic: the generator promises an acyclic call
// graph; the SCC computation must agree (a cross-check of both).
func TestGeneratedProgramsAcyclic(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := gen.Program(gen.Config{Seed: seed, NumProcs: 6})
		var diags source.ErrorList
		f := parser.ParseSource("gen.f", src, &diags)
		prog := sem.Analyze(f, &diags)
		if diags.HasErrors() {
			t.Fatal(diags.Error())
		}
		g := Build(prog)
		for _, n := range g.Order {
			if n.Recursive {
				t.Fatalf("seed %d: generated program has recursion at %s", seed, n.Proc.Name)
			}
		}
		if g.NumSCCs != len(g.Order) {
			t.Fatalf("seed %d: SCC count %d != node count %d", seed, g.NumSCCs, len(g.Order))
		}
		// Bottom-up order respects edges.
		pos := map[string]int{}
		for i, n := range g.BottomUp() {
			pos[n.Proc.Name] = i
		}
		for _, n := range g.Order {
			for _, site := range n.Out {
				if pos[site.Callee] >= pos[n.Proc.Name] {
					t.Fatalf("seed %d: callee %s not before caller %s", seed, site.Callee, n.Proc.Name)
				}
			}
		}
	}
}
