// Package clone implements goal-directed procedure cloning guided by
// interprocedural constants, after Cooper–Hall–Kennedy and the CONVEX
// Application Compiler experience reported by Metzger & Stroud (both
// cited by the paper as the main consumers of CONSTANTS sets).
//
// The lattice meet destroys constants when different call sites deliver
// different values: c₁ ∧ c₂ = ⊥. Cloning partitions a procedure's call
// sites by the constant vector they deliver and creates one copy per
// partition, so each copy's CONSTANTS set keeps its own sites' values.
// Growth is bounded by per-procedure and total clone budgets.
package clone

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/sem"
	"repro/internal/symbolic"
)

// Options bounds code growth.
type Options struct {
	// MaxClonesPerProc caps the partitions per procedure (default 4).
	MaxClonesPerProc int
	// MaxTotalClones caps program growth (default 32).
	MaxTotalClones int
}

func (o *Options) setDefaults() {
	if o.MaxClonesPerProc <= 0 {
		o.MaxClonesPerProc = 4
	}
	if o.MaxTotalClones <= 0 {
		o.MaxTotalClones = 32
	}
}

// Decision records the cloning of one procedure.
type Decision struct {
	Proc   string
	Clones []string // new procedure names, one per call-site partition
	// Vectors holds the constant vector of each partition, aligned with
	// Clones (for reporting).
	Vectors []string
}

// Report summarizes one cloning pass.
type Report struct {
	Decisions []Decision
	Created   int
}

// Plan decides which procedures to clone under the given analysis. For
// each eligible procedure (non-recursive, not the main program), live
// call sites are grouped by the vector of constant values their jump
// functions deliver under the callers' final VAL sets; cloning pays off
// when at least two groups exist and some group holds a constant the
// merged solution lost.
func Plan(a *core.Analysis, opts Options) []Decision {
	opts.setDefaults()
	prog := a.Prog

	// Collect, per callee, the live sites and their constant vectors.
	type siteVec struct {
		origin ast.Node
		key    string
	}
	groups := make(map[*sem.Procedure][]siteVec)
	for _, caller := range prog.Order {
		pf := a.Funcs.Procs[caller]
		if pf == nil {
			continue
		}
		env := valEnv(a, caller)
		for _, sf := range pf.Sites {
			if sf.Dead || sf.Site.Origin == nil {
				continue
			}
			callee := sf.Callee
			if callee.Unit.Kind == ast.ProgramUnit {
				continue
			}
			groups[callee] = append(groups[callee], siteVec{
				origin: sf.Site.Origin,
				key:    vectorKey(a, sf.Formals, env),
			})
		}
	}

	var decisions []Decision
	total := 0
	for _, callee := range prog.Order {
		sites := groups[callee]
		if len(sites) < 2 {
			continue
		}
		if node := a.Graph.Nodes[callee.Name]; node == nil || node.Recursive {
			continue
		}
		// Partition by vector.
		parts := make(map[string][]ast.Node)
		var order []string
		for _, sv := range sites {
			if _, seen := parts[sv.key]; !seen {
				order = append(order, sv.key)
			}
			parts[sv.key] = append(parts[sv.key], sv.origin)
		}
		if len(parts) < 2 || len(parts) > opts.MaxClonesPerProc {
			continue
		}
		if !cloningPays(a, callee, order) {
			continue
		}
		if total+len(parts) > opts.MaxTotalClones {
			break
		}
		d := Decision{Proc: callee.Name}
		for gi, key := range order {
			d.Clones = append(d.Clones, cloneName(prog, callee.Name, gi+1))
			d.Vectors = append(d.Vectors, key)
		}
		total += len(parts)
		decisions = append(decisions, d)
	}
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].Proc < decisions[j].Proc })
	return decisions
}

// Apply performs one cloning pass over the file, returning the
// transformed source text and the report. The input AST is not
// modified. Callers typically re-analyze the result (and may iterate;
// see ipcp.AnalyzeWithCloning).
func Apply(a *core.Analysis, f *ast.File, opts Options) (string, *Report) {
	opts.setDefaults()
	decisions := Plan(a, opts)
	report := &Report{Decisions: decisions}
	if len(decisions) == 0 {
		return ast.FileString(f), report
	}

	// Recompute the partitions with origins (Plan discards them) and
	// build the origin → clone-name map.
	renames := make(map[ast.Node]string)
	cloneOf := make(map[string][]string) // proc → clone names
	for _, d := range decisions {
		cloneOf[d.Proc] = d.Clones
	}
	for _, caller := range a.Prog.Order {
		pf := a.Funcs.Procs[caller]
		if pf == nil {
			continue
		}
		env := valEnv(a, caller)
		// Group this caller's sites by callee+vector using the same key
		// computation as Plan, then assign clone names in first-seen
		// order per callee (consistent with Plan's ordering).
		for _, sf := range pf.Sites {
			if sf.Dead || sf.Site.Origin == nil {
				continue
			}
			d := findDecision(decisions, sf.Callee.Name)
			if d == nil {
				continue
			}
			key := vectorKey(a, sf.Formals, env)
			for gi, vec := range d.Vectors {
				if vec == key {
					renames[sf.Site.Origin] = d.Clones[gi]
					break
				}
			}
		}
	}

	// Mutate origins, print, restore.
	var undo []func()
	for origin, name := range renames {
		switch n := origin.(type) {
		case *ast.CallStmt:
			old := n.Name
			n.Name = name
			undo = append(undo, func() { n.Name = old })
		case *ast.Apply:
			old := n.Name
			n.Name = name
			undo = append(undo, func() { n.Name = old })
		}
	}

	var out strings.Builder
	for i, u := range f.Units {
		if i > 0 {
			out.WriteString("\n")
		}
		printUnit(&out, u)
		for _, cn := range cloneOf[u.Name] {
			cu := ast.CloneUnit(u)
			cu.Name = cn
			if cu.Kind == ast.FunctionUnit {
				renameResultVar(cu, u.Name, cn)
			}
			out.WriteString("\n")
			printUnit(&out, cu)
			report.Created++
		}
	}

	for _, fn := range undo {
		fn()
	}
	return out.String(), report
}

// renameResultVar rewrites references to a function's own name (its
// result variable) inside a clone's body.
func renameResultVar(u *ast.Unit, from, to string) {
	rename := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == from {
				id.Name = to
			}
			return true
		})
	}
	ast.WalkStmts(u.Body, func(s ast.Stmt) bool {
		for _, e := range ast.ExprsOf(s) {
			rename(e)
		}
		return true
	})
}

func printUnit(w *strings.Builder, u *ast.Unit) {
	tmp := &ast.File{Units: []*ast.Unit{u}}
	_ = ast.WriteFile(w, tmp)
}

func findDecision(ds []Decision, proc string) *Decision {
	for i := range ds {
		if ds[i].Proc == proc {
			return &ds[i]
		}
	}
	return nil
}

// valEnv builds the jump-function evaluation environment from the
// caller's final VAL set.
func valEnv(a *core.Analysis, caller *sem.Procedure) symbolic.Env {
	return func(leaf *symbolic.Expr) lattice.Value {
		switch leaf.Op {
		case symbolic.OpParam:
			return a.Vals.Formal(caller, leaf.Param.FormalIndex)
		case symbolic.OpGlobal:
			return a.Vals.Global(caller, leaf.Global)
		}
		return lattice.BottomValue()
	}
}

// vectorKey renders the constant vector a site delivers, e.g. "8,⊥,3".
func vectorKey(a *core.Analysis, formals []*symbolic.Expr, env symbolic.Env) string {
	parts := make([]string, len(formals))
	for i, jf := range formals {
		if jf == nil {
			parts[i] = "⊥"
			continue
		}
		v := symbolic.Eval(jf, env)
		if c, ok := v.IsConst(); ok {
			parts[i] = fmt.Sprintf("%d", c)
		} else {
			parts[i] = "⊥"
		}
	}
	return strings.Join(parts, ",")
}

// cloningPays reports whether some partition delivers a constant that
// the merged VAL solution lost (i.e. the groups actually disagree on a
// constant position).
func cloningPays(a *core.Analysis, callee *sem.Procedure, keys []string) bool {
	if len(keys) < 2 {
		return false
	}
	n := len(callee.Formals)
	for i := 0; i < n; i++ {
		if _, merged := a.Vals.Formal(callee, i).IsConst(); merged {
			continue // already constant without cloning
		}
		constSeen := false
		for _, k := range keys {
			parts := strings.Split(k, ",")
			if i < len(parts) && parts[i] != "⊥" {
				constSeen = true
			}
		}
		if constSeen {
			return true
		}
	}
	return false
}

// cloneName generates a fresh procedure name.
func cloneName(prog *sem.Program, base string, i int) string {
	name := fmt.Sprintf("%s_%d", base, i)
	for j := 0; ; j++ {
		if _, taken := prog.Procs[name]; !taken {
			return name
		}
		name = fmt.Sprintf("%s_%d_%d", base, i, j)
	}
}
