package clone

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func analyze(t *testing.T, src string) (*core.Analysis, *ast.File, *sem.Program) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cfg := core.Config{Jump: jump.Config{Kind: jump.PassThrough, UseMOD: true, UseReturnJFs: true}}
	return core.AnalyzeProgram(prog, cfg), f, prog
}

const conflicted = `PROGRAM MAIN
CALL SOLVE(8)
CALL SOLVE(512)
CALL SOLVE(8)
CALL UNI(3)
CALL UNI(3)
END
SUBROUTINE SOLVE(N)
INTEGER N, S
S = N * 2
PRINT *, S
END
SUBROUTINE UNI(K)
INTEGER K
PRINT *, K
END
`

func TestPlanFindsConflictedProcedure(t *testing.T) {
	a, _, _ := analyze(t, conflicted)
	ds := Plan(a, Options{})
	if len(ds) != 1 || ds[0].Proc != "SOLVE" {
		t.Fatalf("decisions = %+v", ds)
	}
	if len(ds[0].Clones) != 2 {
		t.Errorf("clones = %v (two distinct vectors: 8 and 512)", ds[0].Clones)
	}
	// UNI receives the same constant everywhere: no cloning needed.
	for _, d := range ds {
		if d.Proc == "UNI" {
			t.Error("UNI should not be cloned")
		}
	}
}

func TestApplyProducesValidProgramWithRecoveredConstants(t *testing.T) {
	a, f, _ := analyze(t, conflicted)
	out, report := Apply(a, f, Options{})
	if report.Created != 2 {
		t.Fatalf("created = %d, want 2", report.Created)
	}
	if !strings.Contains(out, "SUBROUTINE SOLVE_1") || !strings.Contains(out, "SUBROUTINE SOLVE_2") {
		t.Fatalf("clones missing:\n%s", out)
	}

	// The original AST must be unchanged.
	if !strings.Contains(ast.FileString(f), "CALL SOLVE(8)") {
		t.Error("input AST was mutated")
	}

	// Re-analyze the cloned program: each clone has its constant.
	a2, _, prog2 := analyze(t, out)
	c1 := a2.Constants(prog2.Procs["SOLVE_1"])
	c2 := a2.Constants(prog2.Procs["SOLVE_2"])
	if len(c1) != 1 || len(c2) != 1 {
		t.Fatalf("clone constants: %v / %v", c1, c2)
	}
	vals := map[int64]bool{c1[0].Value: true, c2[0].Value: true}
	if !vals[8] || !vals[512] {
		t.Errorf("clone constants = %v / %v, want 8 and 512", c1, c2)
	}
}

func TestCloningPreservesBehaviour(t *testing.T) {
	a, f, prog := analyze(t, conflicted)
	out, _ := Apply(a, f, Options{})

	before, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var diags source.ErrorList
	f2 := parser.ParseSource("c.f", out, &diags)
	prog2 := sem.Analyze(f2, &diags)
	if diags.HasErrors() {
		t.Fatalf("cloned program invalid:\n%s", diags.Error())
	}
	after, err := interp.Run(prog2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output {
		t.Errorf("cloning changed behaviour:\n%q vs %q", before.Output, after.Output)
	}
}

func TestBudgets(t *testing.T) {
	// Five distinct constants: exceeds MaxClonesPerProc (default 4).
	src := `PROGRAM MAIN
CALL S(1)
CALL S(2)
CALL S(3)
CALL S(4)
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	a, _, _ := analyze(t, src)
	if ds := Plan(a, Options{}); len(ds) != 0 {
		t.Errorf("over-budget procedure should not be cloned: %+v", ds)
	}
	if ds := Plan(a, Options{MaxClonesPerProc: 5}); len(ds) != 1 {
		t.Errorf("raised budget should allow cloning: %+v", ds)
	}
	if ds := Plan(a, Options{MaxClonesPerProc: 5, MaxTotalClones: 3}); len(ds) != 0 {
		t.Errorf("total budget should stop cloning: %+v", ds)
	}
}

func TestFunctionCallSitesCloned(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER A, B
A = F(10)
B = F(20)
PRINT *, A + B
END
INTEGER FUNCTION F(N)
INTEGER N
F = N + 1
END
`
	a, f, _ := analyze(t, src)
	out, report := Apply(a, f, Options{})
	if report.Created != 2 {
		t.Fatalf("created = %d\n%s", report.Created, out)
	}
	if !strings.Contains(out, "F_1(10)") && !strings.Contains(out, "F_1(20)") {
		t.Errorf("function reference not retargeted:\n%s", out)
	}
	// Behaviour preserved.
	var diags source.ErrorList
	f2 := parser.ParseSource("c.f", out, &diags)
	prog2 := sem.Analyze(f2, &diags)
	if diags.HasErrors() {
		t.Fatalf("invalid:\n%s", diags.Error())
	}
	res, err := interp.Run(prog2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(res.Output) != "32" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestRecursiveProceduresNotCloned(t *testing.T) {
	src := `PROGRAM MAIN
CALL R(1, 3)
CALL R(2, 3)
END
SUBROUTINE R(C, N)
INTEGER C, N
IF (N .GT. 0) CALL R(C, N - 1)
END
`
	a, _, _ := analyze(t, src)
	if ds := Plan(a, Options{}); len(ds) != 0 {
		t.Errorf("recursive procedure should not be cloned: %+v", ds)
	}
}

func TestNoCloningWhenNothingToGain(t *testing.T) {
	// Sites differ but neither delivers a constant.
	src := `PROGRAM MAIN
INTEGER X, Y
READ *, X, Y
CALL S(X)
CALL S(Y)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	a, _, _ := analyze(t, src)
	if ds := Plan(a, Options{}); len(ds) != 0 {
		t.Errorf("no constants, no cloning: %+v", ds)
	}
}
