! A miniature Gaussian-elimination kernel in F77s: arrays, nested
! loops, a function, and interprocedural constants for the system size.
PROGRAM MAIN
COMMON /DIMS/ NSYS
COMMON /MAT/ A(100), B(10), X(10)
REAL A, B, X
NSYS = 4
CALL BUILD
CALL ELIM
CALL BACKSUB
END

SUBROUTINE BUILD()
INTEGER I, J
COMMON /DIMS/ N
COMMON /MAT/ A(100), B(10), X(10)
REAL A, B, X
DO I = 1, N
  DO J = 1, N
    A((I-1)*N + J) = 1.0 / (I + J - 1)
  ENDDO
  B(I) = I
ENDDO
END

SUBROUTINE ELIM()
INTEGER I, J, K
COMMON /DIMS/ N
COMMON /MAT/ A(100), B(10), X(10)
REAL A, B, X, F
DO K = 1, N - 1
  DO I = K + 1, N
    F = A((I-1)*N + K) / A((K-1)*N + K)
    DO J = K, N
      A((I-1)*N + J) = A((I-1)*N + J) - F*A((K-1)*N + J)
    ENDDO
    B(I) = B(I) - F*B(K)
  ENDDO
ENDDO
END

SUBROUTINE BACKSUB()
INTEGER I, J
COMMON /DIMS/ N
COMMON /MAT/ A(100), B(10), X(10)
REAL A, B, X, S
DO I = N, 1, -1
  S = B(I)
  DO J = I + 1, N
    S = S - A((I-1)*N + J)*X(J)
  ENDDO
  X(I) = S / A((I-1)*N + I)
ENDDO
PRINT *, IDXOF(N)
END

INTEGER FUNCTION IDXOF(N)
INTEGER N
IDXOF = N*N
END
