package core

import (
	"repro/internal/domain"
	"repro/internal/sem"
)

// Value contexts (Padhye & Khedker, "Interprocedural Data Flow Analysis
// in Soot using Value Contexts") give the worklist solver a reuse axis
// stronger than text identity: a procedure's propagation step is a pure
// function of its incoming VAL row, so when the row repeats — across
// edits in a compiler-daemon session, or across analyses of related
// programs — the solver can replay the step's recorded contributions
// instead of re-evaluating every jump function.
//
// Reuse is provably equivalent to recomputation under three conditions,
// all enforced at the consultation site in solveWorklist:
//
//  1. The procedure's jump functions are unchanged since the record was
//     stored. The store's owner (a session) guarantees this by dropping
//     a procedure's records whenever the procedure's jump functions are
//     rebuilt (the edit blast radius).
//  2. The procedure has no self-call site. The evaluation environment
//     reads the live VAL matrix, so a self-call's lowering would mutate
//     the procedure's own row mid-step; such procedures always take the
//     plain path.
//  3. The analysis is not in complete-propagation mode, whose per-round
//     pruning changes the site set between solves of one analysis.
//
// Under those conditions the recorded contribution values equal what a
// cold evaluation would produce (the row is read-only during the step),
// and replaying them through the same Lower calls reproduces the cold
// solver's state transitions, statistics, and budget accounting exactly.

// ContextMemo memoizes per-procedure propagation steps keyed by value
// context: the procedure plus the canonical encoding of its incoming
// VAL row. Implementations must be safe for concurrent use.
type ContextMemo interface {
	// Lookup returns the recorded step for (p, key), if any.
	Lookup(p *sem.Procedure, key string) (*ContextRecord, bool)
	// Store offers a freshly recorded step. Records are immutable after
	// the call.
	Store(p *sem.Procedure, key string, rec *ContextRecord)
}

// ContextRecord is one recorded propagation step: the work it costs
// (jump-function evaluations, for statistics and budget accounting) and
// the abstract contributions it pushes into callees. ⊤ contributions
// are omitted — ⊤ is the meet identity, so they can never change a
// cell.
type ContextRecord struct {
	Evals    int
	Contribs []ContextContrib
}

// ContextContrib is one (callee, slot, value) contribution.
type ContextContrib struct {
	Callee *sem.Procedure
	Formal int            // formal index; ignored when Global is set
	Global *sem.GlobalVar // nil for formal contributions
	Value  domain.Elem
}

// ctxKey renders procedure pi's incoming VAL row — its formal row then
// its global row — as a canonical byte string via the domain's
// injective cell encoding (for the constant domain: 'T' for ⊤, 'B' for
// ⊥, and 'C' followed by the decimal constant, each cell
// ';'-terminated, exactly the pre-generalization format). buf is reused
// across calls to keep the per-pop allocation at one string.
func ctxKey(vals *Values, pi int, buf []byte) (string, []byte) {
	buf = buf[:0]
	for _, v := range vals.formalRow(pi) {
		buf = vals.dom.AppendKey(buf, v)
	}
	for _, v := range vals.globalRow(pi) {
		buf = vals.dom.AppendKey(buf, v)
	}
	return string(buf), buf
}

// replayContext applies a recorded propagation step: the evaluation
// count is credited to the statistics and the budget checker exactly as
// the cold evaluations would have been, and each contribution is met
// into the live VAL matrix (pushing the callee on change, like the cold
// path).
func (a *Analysis) replayContext(vals *Values, rec *ContextRecord, push func(*sem.Procedure)) {
	a.Stats.JFEvaluations += rec.Evals
	a.chk.Add(rec.Evals)
	for i := range rec.Contribs {
		cb := &rec.Contribs[i]
		var changed bool
		if cb.Global != nil {
			changed = vals.LowerGlobal(cb.Callee, cb.Global, cb.Value)
		} else {
			changed = vals.LowerFormal(cb.Callee, cb.Formal, cb.Value)
		}
		if changed {
			a.Stats.Lowerings++
			push(cb.Callee)
		}
	}
}
