package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// renderAnalysis formats an analysis deterministically for golden
// comparison: CONSTANTS per procedure under four configurations, plus
// substitution counts.
func renderAnalysis(prog *sem.Program) string {
	var b strings.Builder
	configs := []struct {
		name string
		cfg  Config
	}{
		{"literal", Config{Jump: jump.Config{Kind: jump.Literal, UseMOD: true, UseReturnJFs: true}}},
		{"pass-through", Config{Jump: jump.Config{Kind: jump.PassThrough, UseMOD: true, UseReturnJFs: true}}},
		{"pass-through/no-RJF", Config{Jump: jump.Config{Kind: jump.PassThrough, UseMOD: true}}},
		{"polynomial/no-MOD", Config{Jump: jump.Config{Kind: jump.Polynomial, UseReturnJFs: true}}},
	}
	for _, c := range configs {
		a := AnalyzeProgram(prog, c.cfg)
		fmt.Fprintf(&b, "== %s ==\n", c.name)
		for _, p := range prog.Order {
			ks := a.Constants(p)
			if len(ks) == 0 {
				continue
			}
			parts := make([]string, len(ks))
			for i, k := range ks {
				ref := ""
				if !k.Referenced {
					ref = " [irrelevant]"
				}
				parts[i] = fmt.Sprintf("(%s, %d)%s", k.Name, k.Value, ref)
			}
			sort.Strings(parts)
			fmt.Fprintf(&b, "CONSTANTS(%s): %s\n", p.Name, strings.Join(parts, " "))
		}
		fmt.Fprintf(&b, "substitutable uses: %d\n\n", a.Substitute().Total)
	}
	return b.String()
}

func TestGoldenPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.f")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".f")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var diags source.ErrorList
			f := parser.ParseSource(file, string(src), &diags)
			prog := sem.Analyze(f, &diags)
			if diags.HasErrors() {
				t.Fatalf("front-end errors:\n%s", diags.Error())
			}

			// Every curated program must execute cleanly.
			if _, err := interp.Run(prog, interp.Options{Input: []int64{1, 2, 3}}); err != nil {
				t.Fatalf("interpreter: %v", err)
			}

			got := renderAnalysis(prog)
			goldenPath := strings.TrimSuffix(file, ".f") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}
