package core

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/jump"
)

// mustDomain resolves a registered domain by name.
func mustDomain(t *testing.T, name string) domain.Domain {
	t.Helper()
	d, err := domain.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// factFor returns the rendered fact for formal i of proc name, or "".
func factFor(a *Analysis, name string, i int) string {
	for _, f := range a.Facts(a.Prog.Procs[name]) {
		if f.FormalIndex == i {
			return f.Value
		}
	}
	return ""
}

// TestIntervalWideningTerminates is the acceptance demo for widening:
// the recursive chain R(N+1) makes VAL(R)[N] descend [1,1] ⊒ [1,2] ⊒
// [1,3] ⊒ … — with the shallow constant lattice every cell lowers at
// most twice, but the interval lattice has no finite descent and the
// naive fixed point would iterate ~2^63 times. The widening hook caps
// the descent, so this test terminating at all (in milliseconds, under
// both solvers) is the point. A formal the loop never disturbs keeps
// its exact singleton range through the widened fixed point.
func TestIntervalWideningTerminates(t *testing.T) {
	src := `PROGRAM MAIN
CALL R(1, 5)
END
SUBROUTINE R(N, K)
INTEGER N, K
CALL R(N + 1, K)
END
`
	for _, solver := range []SolverKind{SolverWorklist, SolverBinding} {
		cfg := configFor(jump.Polynomial)
		cfg.Domain = mustDomain(t, "interval")
		cfg.Solver = solver
		a := analyzeSrc(t, src, cfg)
		// The unbounded counter widens and then degrades to ⊥ (its
		// incremented range crosses the infinity sentinel).
		if e := a.Vals.FormalElem(a.Prog.Procs["R"], 0); e.L != domain.LevelBottom {
			t.Errorf("%v: R.N = %s, want ⊥ after widening", solver, a.Vals.Formal(a.Prog.Procs["R"], 0))
		}
		if got := factFor(a, "R", 1); got != "[5,5]" {
			t.Errorf("%v: R.K fact = %q, want [5,5]", solver, got)
		}
	}
}

// TestIntervalWideningKeepsStableBound: when the re-evaluated transfer
// still fits under the widened range, the half-open bound survives as a
// proven fact instead of collapsing to ⊥. The naive fixed point would
// converge to the exact [1,10] here — widening trades that precision
// for the termination the previous test depends on.
func TestIntervalWideningKeepsStableBound(t *testing.T) {
	src := `PROGRAM MAIN
CALL R(1)
END
SUBROUTINE R(N)
INTEGER N
CALL R(MIN(N, 9) + 1)
END
`
	for _, solver := range []SolverKind{SolverWorklist, SolverBinding} {
		cfg := configFor(jump.Polynomial)
		cfg.Domain = mustDomain(t, "interval")
		cfg.Solver = solver
		a := analyzeSrc(t, src, cfg)
		if got := factFor(a, "R", 0); got != "[1,+inf]" {
			t.Errorf("%v: R.N fact = %q, want [1,+inf]", solver, got)
		}
	}
}

// TestIntervalHullAtMerge: two call sites meet to the convex hull — a
// ranged fact where the constant domain reports ⊥.
func TestIntervalHullAtMerge(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(3)
CALL S(7)
END
SUBROUTINE S(N)
INTEGER N
CALL T(N * 2)
END
SUBROUTINE T(M)
INTEGER M
PRINT *, M
END
`
	cfg := configFor(jump.Polynomial)
	a := analyzeSrc(t, src, cfg)
	wantBottom(t, formalVal(a, "S", 0), "const: S.N")

	cfg.Domain = mustDomain(t, "interval")
	a = analyzeSrc(t, src, cfg)
	if got := factFor(a, "S", 0); got != "[3,7]" {
		t.Errorf("interval: S.N fact = %q, want [3,7]", got)
	}
	if got := factFor(a, "T", 0); got != "[6,14]" {
		t.Errorf("interval: T.M fact = %q, want [6,14]", got)
	}
}

// TestParityFacts: call sites passing 4 and 10 disagree as constants
// but agree on parity; an odd third site kills the fact.
func TestParityFacts(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(4)
CALL S(10)
CALL T(4)
CALL T(7)
END
SUBROUTINE S(N)
INTEGER N
CALL U(N + 3)
END
SUBROUTINE T(N)
INTEGER N
PRINT *, N
END
SUBROUTINE U(M)
INTEGER M
PRINT *, M
END
`
	cfg := configFor(jump.Polynomial)
	cfg.Domain = mustDomain(t, "parity")
	for _, solver := range []SolverKind{SolverWorklist, SolverBinding} {
		cfg.Solver = solver
		a := analyzeSrc(t, src, cfg)
		if got := factFor(a, "S", 0); got != "even" {
			t.Errorf("%v: S.N fact = %q, want even", solver, got)
		}
		// even + 3 is odd, propagated through the jump function.
		if got := factFor(a, "U", 0); got != "odd" {
			t.Errorf("%v: U.M fact = %q, want odd", solver, got)
		}
		if got := factFor(a, "T", 0); got != "" {
			t.Errorf("%v: T.N fact = %q, want none (parities clash)", solver, got)
		}
	}
}

// TestTaintFacts: READ is the taint source (an opaque leaf); values
// derived only from program constants stay provably clean.
func TestTaintFacts(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER X
READ *, X
CALL S(X)
CALL T(40 + 2)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
SUBROUTINE T(M)
INTEGER M
CALL S(M * M)
END
`
	cfg := configFor(jump.Polynomial)
	cfg.Domain = mustDomain(t, "taint")
	a := analyzeSrc(t, src, cfg)
	// S receives the READ value at one site: tainted (⊥), no fact.
	if e := a.Vals.FormalElem(a.Prog.Procs["S"], 0); e.L != domain.LevelBottom {
		t.Errorf("S.N = %s, want tainted", cfg.Domain.Format(e))
	}
	if got := factFor(a, "T", 0); got != "clean" {
		t.Errorf("T.M fact = %q, want clean", got)
	}
}

// TestCondConstMatchesComplete: the cond-const domain is constant
// propagation with branch pruning folded in as a domain property — it
// must find exactly what Config.Complete finds on the paper's Table 3
// shape, including the extra propagation round.
func TestCondConstMatchesComplete(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 1
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	cond := configFor(jump.Polynomial)
	cond.Domain = mustDomain(t, "cond-const")
	a := analyzeSrc(t, src, cond)
	wantConst(t, formalVal(a, "T", 0), 5, "cond-const: T.J (else arm dead)")
	if a.Stats.Rounds < 2 {
		t.Errorf("cond-const rounds = %d, want >= 2", a.Stats.Rounds)
	}

	complete := configFor(jump.Polynomial)
	complete.Complete = true
	b := analyzeSrc(t, src, complete)
	for _, p := range []string{"S", "T"} {
		for i := range a.Prog.Procs[p].Formals {
			if got, want := formalVal(a, p, i), formalVal(b, p, i); got != want {
				t.Errorf("%s formal %d: cond-const %v != complete %v", p, i, got, want)
			}
		}
	}
}

// TestExplicitConstDomainIsDefault: naming the constant domain must be
// indistinguishable from leaving Config.Domain nil — same facts, same
// rendered VAL table.
func TestExplicitConstDomainIsDefault(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 3
CALL S(2, 9)
END
SUBROUTINE S(N, M)
INTEGER N, M, G
COMMON /C/ G
PRINT *, N + M + G
END
`
	for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		implicit := analyzeSrc(t, src, configFor(kind))
		cfg := configFor(kind)
		cfg.Domain = domain.Const()
		explicit := analyzeSrc(t, src, cfg)
		if implicit.Vals.String() != explicit.Vals.String() {
			t.Errorf("%v: explicit const domain VAL differs from default:\n%s\nvs\n%s",
				kind, explicit.Vals.String(), implicit.Vals.String())
		}
	}
}
