package core

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func analyzeSrc(t *testing.T, src string, cfg Config) *Analysis {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	return AnalyzeProgram(prog, cfg)
}

func configFor(kind jump.Kind) Config {
	return Config{Jump: jump.Config{Kind: kind, UseMOD: true, UseReturnJFs: true}}
}

// constOf returns the lattice value of formal i of proc name.
func formalVal(a *Analysis, name string, i int) lattice.Value {
	return a.Vals.Formal(a.Prog.Procs[name], i)
}

func globalVal(a *Analysis, name string, block string, idx int) lattice.Value {
	for _, g := range a.Prog.Globals() {
		if g.Block == block && g.Index == idx {
			return a.Vals.Global(a.Prog.Procs[name], g)
		}
	}
	return lattice.TopValue()
}

func wantConst(t *testing.T, v lattice.Value, c int64, what string) {
	t.Helper()
	if got, ok := v.IsConst(); !ok || got != c {
		t.Errorf("%s = %v, want %d", what, v, c)
	}
}

func wantBottom(t *testing.T, v lattice.Value, what string) {
	t.Helper()
	if !v.IsBottom() {
		t.Errorf("%s = %v, want ⊥", what, v)
	}
}

func TestLiteralConstantAtCallSite(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		a := analyzeSrc(t, src, configFor(kind))
		wantConst(t, formalVal(a, "S", 0), 5, kind.String()+": N")
	}
}

func TestIntraproceduralBeatsLiteral(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL S(K)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	a := analyzeSrc(t, src, configFor(jump.Literal))
	wantBottom(t, formalVal(a, "S", 0), "literal: N")
	a = analyzeSrc(t, src, configFor(jump.Intraprocedural))
	wantConst(t, formalVal(a, "S", 0), 5, "intraprocedural: N")
}

func TestPassThroughPropagatesAlongPaths(t *testing.T) {
	src := `PROGRAM MAIN
CALL A(5)
END
SUBROUTINE A(N)
INTEGER N
CALL B(N)
END
SUBROUTINE B(M)
INTEGER M
PRINT *, M
END
`
	// Literal and intraprocedural only cross one edge: B's M stays ⊥.
	a := analyzeSrc(t, src, configFor(jump.Literal))
	wantConst(t, formalVal(a, "A", 0), 5, "literal: A.N")
	wantBottom(t, formalVal(a, "B", 0), "literal: B.M")

	a = analyzeSrc(t, src, configFor(jump.Intraprocedural))
	wantBottom(t, formalVal(a, "B", 0), "intra: B.M")

	a = analyzeSrc(t, src, configFor(jump.PassThrough))
	wantConst(t, formalVal(a, "B", 0), 5, "pass-through: B.M")

	a = analyzeSrc(t, src, configFor(jump.Polynomial))
	wantConst(t, formalVal(a, "B", 0), 5, "polynomial: B.M")
}

func TestPolynomialBeatsPassThrough(t *testing.T) {
	src := `PROGRAM MAIN
CALL A(5)
END
SUBROUTINE A(N)
INTEGER N
CALL B(N*2 + 1)
END
SUBROUTINE B(M)
INTEGER M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	wantBottom(t, formalVal(a, "B", 0), "pass-through: B.M")

	a = analyzeSrc(t, src, configFor(jump.Polynomial))
	wantConst(t, formalVal(a, "B", 0), 11, "polynomial: B.M")
}

func TestConflictingCallSitesMeetToBottom(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(1)
CALL S(2)
CALL T(3)
CALL T(3)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
SUBROUTINE T(N)
INTEGER N
PRINT *, N
END
`
	a := analyzeSrc(t, src, configFor(jump.Polynomial))
	wantBottom(t, formalVal(a, "S", 0), "S.N (1 ∧ 2)")
	wantConst(t, formalVal(a, "T", 0), 3, "T.N (3 ∧ 3)")
}

func TestNeverCalledStaysTop(t *testing.T) {
	src := `PROGRAM MAIN
I = 1
END
SUBROUTINE DEADPROC(N)
INTEGER N
PRINT *, N
END
`
	a := analyzeSrc(t, src, configFor(jump.Polynomial))
	if !formalVal(a, "DEADPROC", 0).IsTop() {
		t.Errorf("never-called formal = %v, want ⊤", formalVal(a, "DEADPROC", 0))
	}
	// ⊤ must not appear in CONSTANTS.
	if cs := a.Constants(a.Prog.Procs["DEADPROC"]); len(cs) != 0 {
		t.Errorf("CONSTANTS(DEADPROC) = %v, want empty", cs)
	}
}

func TestGlobalConstantPropagation(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 7
CALL S
END
SUBROUTINE S()
INTEGER H
COMMON /C/ H
PRINT *, H
END
`
	// Literal misses implicit globals.
	a := analyzeSrc(t, src, configFor(jump.Literal))
	wantBottom(t, globalVal(a, "S", "C", 0), "literal: S global")

	for _, kind := range []jump.Kind{jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		a := analyzeSrc(t, src, configFor(kind))
		wantConst(t, globalVal(a, "S", "C", 0), 7, kind.String()+": S global")
	}
}

func TestGlobalPassThroughChain(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 7
CALL MID
END
SUBROUTINE MID()
CALL LEAF
END
SUBROUTINE LEAF()
INTEGER H
COMMON /C/ H
PRINT *, H
END
`
	// The global flows through MID (which does not even name it).
	a := analyzeSrc(t, src, configFor(jump.Intraprocedural))
	wantBottom(t, globalVal(a, "LEAF", "C", 0), "intra: LEAF global (single edge only)")

	a = analyzeSrc(t, src, configFor(jump.PassThrough))
	wantConst(t, globalVal(a, "LEAF", "C", 0), 7, "pass-through: LEAF global")
}

func TestReturnJumpFunctionOceanPattern(t *testing.T) {
	// The ocean effect: an initialization routine assigns constants to
	// COMMON variables; return jump functions let later calls see them.
	src := `PROGRAM MAIN
COMMON /CFG/ NX, NY
CALL INIT
CALL WORK
END
SUBROUTINE INIT()
COMMON /CFG/ N1, N2
N1 = 64
N2 = 32
END
SUBROUTINE WORK()
COMMON /CFG/ M1, M2
PRINT *, M1*M2
END
`
	with := configFor(jump.PassThrough)
	a := analyzeSrc(t, src, with)
	wantConst(t, globalVal(a, "WORK", "CFG", 0), 64, "with RJF: WORK NX")
	wantConst(t, globalVal(a, "WORK", "CFG", 1), 32, "with RJF: WORK NY")

	without := with
	without.Jump.UseReturnJFs = false
	a = analyzeSrc(t, src, without)
	wantBottom(t, globalVal(a, "WORK", "CFG", 0), "without RJF: WORK NX")
}

func TestReturnJFOutParameter(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
CALL SETUP(N)
CALL USE(N)
END
SUBROUTINE SETUP(K)
INTEGER K
K = 100
END
SUBROUTINE USE(M)
INTEGER M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	wantConst(t, formalVal(a, "USE", 0), 100, "with RJF: USE.M")

	cfg := configFor(jump.PassThrough)
	cfg.Jump.UseReturnJFs = false
	a = analyzeSrc(t, src, cfg)
	wantBottom(t, formalVal(a, "USE", 0), "without RJF: USE.M")
}

func TestFunctionResultConstant(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = SIZE()
CALL USE(N)
END
INTEGER FUNCTION SIZE()
SIZE = 256
END
SUBROUTINE USE(M)
INTEGER M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	wantConst(t, formalVal(a, "USE", 0), 256, "function result constant")
}

func TestMODEffect(t *testing.T) {
	// X lives in COMMON so a worst-case call may clobber it; with MOD
	// information the analyzer knows OTHER leaves it alone. Return jump
	// functions are disabled to isolate the MOD effect (an identity
	// return jump function would otherwise restore the constant).
	src := `PROGRAM MAIN
INTEGER Y, X
COMMON /XC/ X
X = 1
Y = 0
CALL OTHER(Y)
CALL S(X)
END
SUBROUTINE OTHER(A)
INTEGER A
A = 9
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	withMod := configFor(jump.Polynomial)
	withMod.Jump.UseReturnJFs = false
	a := analyzeSrc(t, src, withMod)
	wantConst(t, formalVal(a, "S", 0), 1, "with MOD: S.N")

	noMod := withMod
	noMod.Jump.UseMOD = false
	a = analyzeSrc(t, src, noMod)
	wantBottom(t, formalVal(a, "S", 0), "without MOD: S.N (call kills X)")
}

func TestLocalsSurviveWorstCaseCalls(t *testing.T) {
	// A local never passed to a callee cannot be modified by it, even
	// under worst-case assumptions (F77 has no aliasing into locals).
	src := `PROGRAM MAIN
INTEGER X, Y
X = 1
Y = 0
CALL OTHER(Y)
CALL S(X)
END
SUBROUTINE OTHER(A)
INTEGER A
A = 9
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	cfg := configFor(jump.Polynomial)
	cfg.Jump.UseMOD = false
	cfg.Jump.UseReturnJFs = false
	a := analyzeSrc(t, src, cfg)
	wantConst(t, formalVal(a, "S", 0), 1, "no-MOD: S.N via unkillable local")
}

func TestNoMODWithReturnJFRecoversConstActual(t *testing.T) {
	// Without MOD every actual is killed, but a return jump function
	// whose substitution evaluates to a constant restores the value —
	// this is how the paper's column 1 (polynomial without MOD) still
	// finds constants.
	src := `PROGRAM MAIN
INTEGER X
X = 1
CALL KEEP(X)
CALL S(X)
END
SUBROUTINE KEEP(A)
INTEGER A
PRINT *, A
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	cfg := configFor(jump.Polynomial)
	cfg.Jump.UseMOD = false
	a := analyzeSrc(t, src, cfg)
	// KEEP does not modify A; its return jump function is the identity
	// Param(A), which substitutes to the constant 1.
	wantConst(t, formalVal(a, "S", 0), 1, "no-MOD + RJF: S.N")

	cfg.Jump.UseReturnJFs = false
	a = analyzeSrc(t, src, cfg)
	wantBottom(t, formalVal(a, "S", 0), "no-MOD no-RJF: S.N")
}

func TestRecursionIsConservativeButSound(t *testing.T) {
	src := `PROGRAM MAIN
CALL R(7, 3)
END
SUBROUTINE R(C, N)
INTEGER C, N
PRINT *, C
IF (N .GT. 0) CALL R(C, N - 1)
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	// C is passed through unchanged in the recursion: stays 7.
	wantConst(t, formalVal(a, "R", 0), 7, "recursive pass-through C")
	// N varies: ⊥.
	wantBottom(t, formalVal(a, "R", 1), "recursive varying N")
}

func TestDataInitialization(t *testing.T) {
	src := `PROGRAM MAIN
COMMON /C/ N
DATA N / 42 /
CALL S
END
SUBROUTINE S()
COMMON /C/ M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	wantConst(t, globalVal(a, "S", "C", 0), 42, "DATA-initialized global")
}

func TestUninitializedGlobalIsBottom(t *testing.T) {
	src := `PROGRAM MAIN
COMMON /C/ N
CALL S
END
SUBROUTINE S()
COMMON /C/ M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	wantBottom(t, globalVal(a, "S", "C", 0), "uninitialized global")
}

func TestCompletePropagationExposesMore(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 1
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	plain := configFor(jump.Polynomial)
	a := analyzeSrc(t, src, plain)
	wantBottom(t, formalVal(a, "T", 0), "plain: T.J (both arms merge)")

	complete := plain
	complete.Complete = true
	a = analyzeSrc(t, src, complete)
	wantConst(t, formalVal(a, "T", 0), 5, "complete: T.J (else arm dead)")
	if a.Stats.Rounds < 2 {
		t.Errorf("complete propagation rounds = %d, want >= 2", a.Stats.Rounds)
	}
	if a.Stats.DeadInstrs == 0 {
		t.Error("complete propagation should report dead instructions")
	}
}

func TestSolverEquivalence(t *testing.T) {
	srcs := []string{
		`PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 7
CALL A(5)
CALL A(5)
CALL B(2)
END
SUBROUTINE A(N)
INTEGER N
CALL B(N)
END
SUBROUTINE B(M)
INTEGER M, H
COMMON /C/ H
PRINT *, M + H
END
`,
		`PROGRAM MAIN
CALL A(5)
CALL A(6)
END
SUBROUTINE A(N)
INTEGER N
CALL B(N*2)
END
SUBROUTINE B(M)
INTEGER M
PRINT *, M
END
`,
		`PROGRAM MAIN
INTEGER N
CALL SETUP(N)
CALL USE(N)
END
SUBROUTINE SETUP(K)
INTEGER K
K = 100
END
SUBROUTINE USE(M)
INTEGER M
CALL USE2(M)
END
SUBROUTINE USE2(M)
INTEGER M
PRINT *, M
END
`,
	}
	for i, src := range srcs {
		for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
			cfgW := configFor(kind)
			cfgB := cfgW
			cfgB.Solver = SolverBinding
			aw := analyzeSrc(t, src, cfgW)
			ab := analyzeSrc(t, src, cfgB)
			for _, p := range aw.Prog.Order {
				pb := ab.Prog.Procs[p.Name]
				for fi := range p.Formals {
					if aw.Vals.Formal(p, fi) != ab.Vals.Formal(pb, fi) {
						t.Errorf("src %d %v: solver mismatch on %s formal %d: %v vs %v",
							i, kind, p.Name, fi, aw.Vals.Formal(p, fi), ab.Vals.Formal(pb, fi))
					}
				}
				for _, g := range aw.Prog.Globals() {
					var gb *sem.GlobalVar
					for _, g2 := range ab.Prog.Globals() {
						if g2.Block == g.Block && g2.Index == g.Index {
							gb = g2
						}
					}
					if aw.Vals.Global(p, g) != ab.Vals.Global(pb, gb) {
						t.Errorf("src %d %v: solver mismatch on %s global %s", i, kind, p.Name, g.Key())
					}
				}
			}
		}
	}
}

func TestSubstitutionCountsHierarchy(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER K, G
COMMON /C/ G
G = 3
K = 2 + 2
CALL A(5)
CALL A(5)
CALL USE(K)
END
SUBROUTINE A(N)
INTEGER N
CALL B(N)
CALL POLY(N*2)
END
SUBROUTINE B(M)
INTEGER M
PRINT *, M + 1
END
SUBROUTINE POLY(P)
INTEGER P
PRINT *, P - 1
END
SUBROUTINE USE(X)
INTEGER X, H
COMMON /C/ H
PRINT *, X*H
END
`
	counts := make(map[jump.Kind]int)
	for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		a := analyzeSrc(t, src, configFor(kind))
		counts[kind] = a.Substitute().Total
	}
	if !(counts[jump.Literal] <= counts[jump.Intraprocedural] &&
		counts[jump.Intraprocedural] <= counts[jump.PassThrough] &&
		counts[jump.PassThrough] <= counts[jump.Polynomial]) {
		t.Errorf("hierarchy violated: %v", counts)
	}
	if counts[jump.Polynomial] <= counts[jump.PassThrough] {
		t.Errorf("polynomial should beat pass-through here: %v", counts)
	}
	if counts[jump.Intraprocedural] <= counts[jump.Literal] {
		t.Errorf("intraprocedural should beat literal here: %v", counts)
	}
}

func TestTransformedSource(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N, M
M = N + 1
PRINT *, M
END
`
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	a := AnalyzeProgram(prog, configFor(jump.PassThrough))
	out := a.TransformedSource(f)
	if !strings.Contains(out, "M = 5 + 1") {
		t.Errorf("transformed source should substitute N:\n%s", out)
	}
	// The transformed source must still parse.
	var diags2 source.ErrorList
	parser.ParseSource("t2.f", out, &diags2)
	if diags2.HasErrors() {
		t.Errorf("transformed source does not parse:\n%s\n%s", out, diags2.Error())
	}
}

func TestConstantsSetContents(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 9
CALL S(4, 5)
END
SUBROUTINE S(A, B)
INTEGER A, B, H
COMMON /C/ H
PRINT *, A + B + H
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	cs := a.Constants(a.Prog.Procs["S"])
	if len(cs) != 3 {
		t.Fatalf("CONSTANTS(S) = %v, want 3 entries", cs)
	}
	byName := make(map[string]int64)
	for _, c := range cs {
		byName[c.Name] = c.Value
	}
	if byName["A"] != 4 || byName["B"] != 5 || byName["G"] != 9 {
		t.Errorf("CONSTANTS(S) = %v", cs)
	}
	all := a.AllConstants()
	if len(all) != 2 {
		t.Errorf("AllConstants procs = %d", len(all))
	}
}

func TestIntraproceduralBaseline(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER K
K = 10
PRINT *, K + 1
CALL S(K)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	res := IntraproceduralCount(mustProg(t, src))
	// K's use in PRINT and in CALL S(K) (N not modified) are constant;
	// N's use in S is not (no interprocedural flow).
	if res.Total != 2 {
		t.Errorf("intraprocedural count = %d, want 2", res.Total)
	}
}

func mustProg(t *testing.T, src string) *sem.Program {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	return prog
}

func TestStatsPopulated(t *testing.T) {
	a := analyzeSrc(t, `PROGRAM MAIN
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`, configFor(jump.PassThrough))
	if a.Stats.JFEvaluations == 0 {
		t.Error("JFEvaluations should be counted")
	}
	if a.Stats.Lowerings == 0 {
		t.Error("Lowerings should be counted")
	}
	if a.Stats.Rounds != 1 {
		t.Errorf("Rounds = %d", a.Stats.Rounds)
	}
}

func TestValuesStringAndSolverString(t *testing.T) {
	a := analyzeSrc(t, `PROGRAM MAIN
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`, configFor(jump.PassThrough))
	if !strings.Contains(a.Vals.String(), "N=5") {
		t.Errorf("Values.String:\n%s", a.Vals.String())
	}
	if SolverWorklist.String() != "worklist" || SolverBinding.String() != "binding-graph" {
		t.Error("SolverKind strings")
	}
}

func TestKnownButIrrelevantConstants(t *testing.T) {
	// G is constant on entry to both procedures, but only USED reads it
	// — in IGNORES it is "known but irrelevant" (Metzger & Stroud).
	src := `PROGRAM MAIN
INTEGER G
COMMON /C/ G
G = 7
CALL USED
CALL IGNORES(2)
END
SUBROUTINE USED()
INTEGER H
COMMON /C/ H
PRINT *, H
END
SUBROUTINE IGNORES(N)
INTEGER N
PRINT *, N
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	used := a.Constants(a.Prog.Procs["USED"])
	if len(used) != 1 || !used[0].Referenced {
		t.Errorf("USED constants = %+v, want one referenced", used)
	}
	ign := a.Constants(a.Prog.Procs["IGNORES"])
	var gRef, nRef *Constant
	for i := range ign {
		if ign[i].Global != nil {
			gRef = &ign[i]
		} else {
			nRef = &ign[i]
		}
	}
	if gRef == nil || gRef.Referenced {
		t.Errorf("global in IGNORES should be known but irrelevant: %+v", ign)
	}
	if nRef == nil || !nRef.Referenced {
		t.Errorf("N in IGNORES is printed, hence referenced: %+v", ign)
	}
}

// TestGlobalPassedAsActualAliasing is the regression test for a bug the
// soundness property test caught during development: a COMMON variable
// passed as an actual aliases the callee's formal, and the callee may
// ALSO write the storage under its COMMON name — so the formal's return
// jump function alone must not determine the post-call value.
func TestGlobalPassedAsActualAliasing(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER NG
COMMON /G/ NG
NG = 13
CALL BOTH(NG)
CALL OBSERVE(NG)
END
SUBROUTINE BOTH(K)
INTEGER K, NG2
COMMON /G/ NG2
NG2 = 27
END
SUBROUTINE OBSERVE(V)
INTEGER V
PRINT *, V
END
`
	// BOTH never writes its formal K, so K's return jump function is the
	// identity — but K aliases NG, which BOTH sets to 27. Claiming
	// NG=13 after the call would be unsound.
	for _, kind := range []jump.Kind{jump.PassThrough, jump.Polynomial} {
		a := analyzeSrc(t, src, configFor(kind))
		wantBottom(t, formalVal(a, "OBSERVE", 0), kind.String()+": OBSERVE.V (aliased global)")
	}
	// The interpreter confirms 27 is observed.
	out, err := interpOutput(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "27" {
		t.Fatalf("interpreter output = %q, want 27", out)
	}
}

func interpOutput(t *testing.T, src string) (string, error) {
	t.Helper()
	prog := mustProg(t, src)
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		return "", err
	}
	return res.Output, nil
}

// TestStopOnlyAndNonReturningProcedures: a procedure that always STOPs
// (or loops forever) has an unreachable exit; analysis must stay sound
// and calm.
func TestStopOnlyAndNonReturningProcedures(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 5
CALL CHECK(N)
CALL AFTER(N)
END
SUBROUTINE CHECK(K)
INTEGER K
IF (K .LT. 0) STOP
END
SUBROUTINE HALT()
STOP
END
SUBROUTINE AFTER(M)
INTEGER M
PRINT *, M
END
`
	a := analyzeSrc(t, src, configFor(jump.PassThrough))
	// CHECK returns normally on the N=5 path; N flows on to AFTER.
	wantConst(t, formalVal(a, "AFTER", 0), 5, "AFTER.M")
	// CHECK's formal received the constant; HALT is never called and
	// never returns: no crash, ⊤ is fine.
	wantConst(t, formalVal(a, "CHECK", 0), 5, "CHECK.K")
}

// TestDeepGammaNesting: gated mode on a cascade of conditionals.
func TestDeepGammaNesting(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(2)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 10
ELSE
  IF (K .EQ. 2) THEN
    M = 20
  ELSE
    IF (K .EQ. 3) THEN
      M = 30
    ELSE
      M = 40
    ENDIF
  ENDIF
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	gated := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true}}
	a := analyzeSrc(t, src, gated)
	wantConst(t, formalVal(a, "T", 0), 20, "gated nested: T.J")
}
