// Package core is the interprocedural constant propagation driver — the
// paper's primary contribution. It wires the pipeline together:
//
//  1. return jump functions, bottom-up over the call graph (§4.1);
//  2. forward jump functions per call site (§3.1);
//  3. interprocedural propagation of VAL sets around the call graph,
//     with a choice of solvers: the simple iterative worklist scheme the
//     paper used, or the binding-graph scheme of Callahan–Cooper–
//     Kennedy–Torczon 1986 that achieves the O(Σ cost(J)) bound;
//  4. recording CONSTANTS(p) and (optionally) substituting the
//     constants into the program text.
//
// The "complete propagation" mode (Table 3) iterates: propagate, use
// the discovered constants to prove branches dead, rebuild jump
// functions on the pruned program, and propagate again from scratch,
// until the solution stabilizes.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/dce"
	"repro/internal/domain"
	"repro/internal/guard"
	"repro/internal/intra"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/modref"
	"repro/internal/pipeline"
	"repro/internal/sem"
	"repro/internal/ssa"
	"repro/internal/subst"
	"repro/internal/symbolic"
)

// SolverKind selects the interprocedural propagation algorithm.
type SolverKind int

const (
	// SolverWorklist is the simple iterative scheme used in the paper's
	// experiments ("a simple worklist iterative scheme").
	SolverWorklist SolverKind = iota
	// SolverBinding models the 1986 paper's binding-graph computation:
	// jump functions are re-evaluated only when a value in their support
	// actually lowers.
	SolverBinding
)

func (s SolverKind) String() string {
	if s == SolverBinding {
		return "binding-graph"
	}
	return "worklist"
}

// Config selects an experimental configuration.
type Config struct {
	Jump jump.Config
	// Domain selects the abstract domain to propagate — the monotone-
	// framework instance supplying the element lattice and transfer
	// function (package domain). nil selects the constant-propagation
	// domain, preserving the original analyzer exactly. The domain is
	// memo-relevant at the whole-program level (it is folded into
	// memo.ProgramFingerprint and the service result cache) but NOT into
	// jump-function cache keys: jump functions are symbolic expressions,
	// built identically for every domain, so those artifacts are shared
	// across domains by design.
	Domain domain.Domain
	// Complete iterates propagation with dead-code elimination
	// (Table 3's "Complete Propagation").
	Complete bool
	// MaxRounds bounds complete-propagation iterations (safety net; the
	// paper observed a single extra round sufficed).
	MaxRounds int
	Solver    SolverKind
	// Budget bounds the work of one analysis. On exhaustion the driver
	// degrades along the sound chain Polynomial → PassThrough →
	// Intraprocedural → Literal (and complete → single round), recording
	// a Warning per step; the zero Budget is unlimited.
	Budget guard.Budget
	// Parallelism bounds the worker goroutines used by the phases that
	// fan out per procedure (jump-function construction, substitution):
	// <= 0 selects GOMAXPROCS, 1 runs everything serially. Results are
	// identical either way.
	Parallelism int
	// FailFast disables the in-driver degradation chain: the first
	// budget or deadline exhaustion aborts the analysis with the
	// *guard.Exhausted error instead of retrying cheaper configurations.
	// Callers that own their own retry policy (the analysis service) use
	// this to keep one attempt per configuration under their control.
	FailFast bool
	// Hooks, when non-nil, lets a memoization layer supply previously
	// computed phase results and collect fresh ones (package memo). The
	// driver consults it only where reuse is provably equivalent to
	// recomputation: never during complete-propagation jump-function
	// rebuild rounds (those need SSA state the cache does not keep).
	Hooks MemoHooks
	// Trace, when non-nil, collects per-phase wall time, units, memo
	// hits, and degradation events for the driver's phases (graph, jump,
	// solve). It does not participate in memo cache keys: the fingerprint
	// layer hashes an explicit field list.
	Trace *pipeline.Trace
	// Contexts, when non-nil, memoizes per-procedure propagation steps
	// by value context — (procedure, incoming lattice row) — so the
	// worklist solver can replay a step whose inputs repeat instead of
	// re-evaluating its jump functions. Consulted only where reuse is
	// provably equivalent (see context.go); it does not participate in
	// memo cache keys for the same reason as Trace.
	Contexts ContextMemo
}

// MemoHooks is the driver-side interface of an incremental-analysis
// cache. All methods must be safe for concurrent use.
type MemoHooks interface {
	// Graph returns the memoized call graph and MOD summaries for the
	// program under analysis.
	Graph() (*callgraph.Graph, *modref.Info)
	// Funcs consults the cache before a round-0 jump-function build.
	// Either fns is non-nil (a whole-build hit — trunc is the truncation
	// count the original build observed, to be credited to b), or memo
	// is a per-procedure cache to thread through jump.Build (nil when
	// nothing at all is cached).
	Funcs(c Config, jc jump.Config, b *symbolic.Builder) (fns *jump.Functions, trunc int, memo jump.Memo)
	// StoreFuncs offers a fresh, successful round-0 build back to the
	// cache. trunc is the builder's truncation count after the build.
	StoreFuncs(c Config, fns *jump.Functions, trunc int)
	// Subst consults the cache before a substitution pass. Either res is
	// non-nil (a whole-pass hit), or memo is a per-procedure cache to
	// thread through subst.Run (nil when nothing is cached).
	Subst(c Config, opts subst.Options) (res *subst.Result, memo subst.Memo)
	// StoreSubst offers a fresh substitution result back to the cache.
	StoreSubst(c Config, opts subst.Options, res *subst.Result)
}

// DefaultConfig is pass-through + MOD + return jump functions — the
// configuration the paper recommends as most cost-effective.
func DefaultConfig() Config {
	return Config{Jump: jump.DefaultConfig(), MaxRounds: 4}
}

// Constant is one (name, value) pair of a CONSTANTS(p) set.
type Constant struct {
	Proc        *sem.Procedure
	Name        string
	FormalIndex int            // -1 for globals
	Global      *sem.GlobalVar // nil for formals
	Value       int64
	// Referenced reports whether p actually reads the value (REF/GREF).
	// Metzger & Stroud observed that procedures often have constant
	// COMMON variables that are "known but irrelevant — that is, they
	// are not referenced inside the procedure"; this flag is how the
	// substitution metric factors them out.
	Referenced bool
}

func (c Constant) String() string { return fmt.Sprintf("(%s, %d)", c.Name, c.Value) }

// Stats counts solver work for the cost comparisons of §3.1.5.
type Stats struct {
	// JFEvaluations counts forward jump function evaluations during
	// propagation.
	JFEvaluations int
	// Lowerings counts lattice value changes.
	Lowerings int
	// Rounds is the number of complete-propagation rounds executed.
	Rounds int
	// DeadInstrs is the dead code found by the final round (complete
	// propagation only).
	DeadInstrs int
}

// Warning describes one step of graceful degradation: which budget axis
// ran out, the configuration that exhausted it, and the sound fallback
// the analysis continued with.
type Warning struct {
	Axis guard.Axis
	// From is the configuration (or behavior) that exhausted the budget.
	From string
	// To is the sound configuration fallen back to; "no-constants" means
	// the all-⊥ solution (every fallback was spent).
	To     string
	Detail string
}

func (w Warning) String() string {
	return fmt.Sprintf("degraded [%s]: %s → %s (%s)", w.Axis, w.From, w.To, w.Detail)
}

// Analysis is the result of interprocedural constant propagation.
type Analysis struct {
	Config Config
	Prog   *sem.Program
	Graph  *callgraph.Graph
	Mod    *modref.Info
	Funcs  *jump.Functions
	Vals   *Values
	Stats  Stats
	// Warnings lists graceful-degradation steps taken to stay within
	// Config.Budget (empty when the analysis ran to completion as
	// configured).
	Warnings []Warning

	builder *symbolic.Builder
	chk     *guard.Checker
	dom     domain.Domain // resolved domain; never nil
}

// Domain returns the analysis's resolved abstract domain (never nil;
// the constant domain when Config.Domain was nil).
func (a *Analysis) Domain() domain.Domain { return a.dom }

// Degraded reports whether any budget axis forced the analysis below
// its requested configuration.
func (a *Analysis) Degraded() bool { return len(a.Warnings) > 0 }

// AnalyzeProgram runs the full interprocedural analysis over an
// analyzed program.
func AnalyzeProgram(prog *sem.Program, cfgg Config) *Analysis {
	return AnalyzeProgramContext(context.Background(), prog, cfgg)
}

// AnalyzeProgramContext is AnalyzeProgram under a context deadline and
// the configuration's Budget. It never fails: on budget exhaustion it
// retries with the next cheaper configuration in the sound chain
// (complete → single round, gated off, then Polynomial → PassThrough →
// Intraprocedural → Literal), and when even the cheapest configuration
// cannot finish it returns the all-⊥ "no constants" solution. Every
// step is recorded in the result's Warnings.
func AnalyzeProgramContext(ctx context.Context, prog *sem.Program, cfgg Config) *Analysis {
	cfgg.FailFast = false
	a, _ := AnalyzeProgramErr(ctx, prog, cfgg)
	return a
}

// AnalyzeProgramErr is AnalyzeProgramContext with the FailFast knob
// honored: with FailFast set it runs exactly one attempt at the given
// configuration and returns the *guard.Exhausted (or injected) error on
// exhaustion, leaving retry-at-a-cheaper-configuration policy to the
// caller. Without FailFast the error is always nil and the degradation
// chain applies as in AnalyzeProgramContext.
func AnalyzeProgramErr(ctx context.Context, prog *sem.Program, cfgg Config) (*Analysis, error) {
	if cfgg.MaxRounds <= 0 {
		cfgg.MaxRounds = 4
	}
	// A pruning domain (conditional constant propagation) requests the
	// complete-propagation loop regardless of Config.Complete; normalize
	// here so degradation, memo gating, and round accounting all see one
	// consistent flag.
	if cfgg.Domain != nil && cfgg.Domain.Prunes() {
		cfgg.Complete = true
	}
	if cfgg.FailFast {
		return analyzeAttempt(ctx, prog, cfgg)
	}
	var warns []Warning
	attempt := cfgg
	for {
		a, err := analyzeAttempt(ctx, prog, attempt)
		if err == nil {
			a.Warnings = append(warns, a.Warnings...)
			return a, nil
		}
		next, ok := degrade(attempt)
		w := Warning{Axis: axisOf(err), From: describeConfig(attempt), To: "no-constants", Detail: err.Error()}
		if ok {
			w.To = describeConfig(next)
		}
		warns = append(warns, w)
		cfgg.Trace.Degradation(siteOf(err))
		if !ok {
			a := bottomAnalysis(prog, attempt)
			a.Warnings = warns
			return a, nil
		}
		attempt = next
	}
}

// degrade returns the next cheaper configuration in the sound fallback
// chain; ok is false when the configuration is already minimal.
func degrade(c Config) (Config, bool) {
	switch {
	case c.Complete:
		c.Complete = false
	case c.Jump.Gated:
		c.Jump.Gated = false
	case c.Jump.Kind > jump.Literal:
		c.Jump.Kind--
	default:
		return c, false
	}
	return c, true
}

// describeConfig names a configuration for degradation warnings.
func describeConfig(c Config) string {
	s := c.Jump.Kind.String()
	if name := domain.NameOf(c.Domain); name != "const" {
		s = name + "/" + s
	}
	if c.Jump.Gated {
		s += "+gated"
	}
	if c.Complete {
		s += "+complete"
	}
	return s
}

// axisOf extracts the budget axis from an attempt error.
func axisOf(err error) guard.Axis {
	var ex *guard.Exhausted
	if errors.As(err, &ex) {
		return ex.Axis
	}
	return guard.Axis("injected")
}

// siteOf extracts the pipeline site that exhausted its budget, for
// trace attribution; injected faults fall back to the driver itself.
func siteOf(err error) string {
	var ex *guard.Exhausted
	if errors.As(err, &ex) && ex.Site != "" {
		return ex.Site
	}
	return "analyze"
}

// attemptState is the shared state of one analysis attempt's pipeline:
// the analysis under construction plus the round-loop variables the
// complete-propagation driver feeds back between phase executions.
type attemptState struct {
	a    *Analysis
	cfg  Config
	prog *sem.Program
	chk  *guard.Checker
	init map[*sem.GlobalVar]lattice.Value

	// Round-loop feedback (complete propagation).
	round int
	prune bool
	entry jump.EntryEnv
	prev  *Values
}

// attemptPhases are the driver's passes. The round loop stays in
// analyzeAttempt (dynamic control flow) and replays the jump and solve
// phases through RunPhase, so every execution shares the middleware
// stack and lands in the same trace.
var (
	phaseGraph = pipeline.Phase[*attemptState]{Name: "graph", Run: runGraph}
	phaseJump  = pipeline.Phase[*attemptState]{Name: "jump", Run: runJump}
	phaseSolve = pipeline.Phase[*attemptState]{Name: "solve", Run: runSolve}
)

// attemptPipeline wires the cross-cutting concerns every driver phase
// needs: wall-time tracing, panic attribution, and a deadline pre-check
// that names the phase (the same *guard.Exhausted the phases' own
// inline checks produce).
func attemptPipeline() *pipeline.Pipeline[*attemptState] {
	return pipeline.New[*attemptState]().Use(
		pipeline.Timed(func(s *attemptState) *pipeline.Trace { return s.cfg.Trace }),
		pipeline.Attributed[*attemptState](),
		pipeline.Guarded(func(s *attemptState) *guard.Checker { return s.chk }),
	)
}

// runGraph builds (or fetches from the memo layer) the call graph and
// MOD/REF summaries.
func runGraph(ctx context.Context, s *attemptState) error {
	if s.cfg.Hooks != nil {
		s.a.Graph, s.a.Mod = s.cfg.Hooks.Graph()
	} else {
		s.a.Graph = callgraph.Build(s.prog)
		s.a.Mod = modref.Compute(s.a.Graph)
	}
	s.cfg.Trace.AddUnits("graph", len(s.prog.Order))
	return nil
}

// runJump builds the round's jump functions, consulting the memo layer
// where reuse is provably equivalent: only the canonical round-0 build —
// rebuild rounds of complete propagation feed back entry environments
// and pruning, which the cache keys do not cover.
func runJump(ctx context.Context, s *attemptState) error {
	jc := s.cfg.Jump
	jc.Prune = s.prune
	jc.Check = func() error { return s.chk.Deadline("jump") }
	jc.Parallelism = s.cfg.Parallelism
	useMemo := s.cfg.Hooks != nil && !s.cfg.Complete && s.round == 0
	var fns *jump.Functions
	if useMemo {
		cached, trunc, pm := s.cfg.Hooks.Funcs(s.cfg, jc, s.a.builder)
		if cached != nil {
			s.a.builder.AddTruncated(trunc)
			fns = cached
			s.cfg.Trace.MemoHit("jump")
		} else {
			jc.Memo = pm
			var err error
			fns, err = jump.Build(ctx, s.a.Graph, s.a.Mod, s.a.builder, jc, s.entry)
			if err != nil {
				return err
			}
			s.cfg.Hooks.StoreFuncs(s.cfg, fns, s.a.builder.Truncated())
		}
	} else {
		var err error
		fns, err = jump.Build(ctx, s.a.Graph, s.a.Mod, s.a.builder, jc, s.entry)
		if err != nil {
			return err
		}
	}
	s.a.Funcs = fns
	s.cfg.Trace.AddUnits("jump", len(s.prog.Order))
	return nil
}

// runSolve propagates VAL sets around the call graph with the
// configured solver.
func runSolve(ctx context.Context, s *attemptState) error {
	before := s.a.Stats.JFEvaluations
	vals, err := s.a.solve(s.init, s.chk)
	if err != nil {
		return err
	}
	s.a.Vals = vals
	s.cfg.Trace.AddUnits("solve", s.a.Stats.JFEvaluations-before)
	return nil
}

// analyzeAttempt runs one analysis attempt under one configuration,
// reporting *guard.Exhausted when a budget axis runs out mid-flight.
func analyzeAttempt(ctx context.Context, prog *sem.Program, cfgg Config) (*Analysis, error) {
	chk := guard.NewChecker(ctx, cfgg.Budget)
	a := &Analysis{
		Config:  cfgg,
		Prog:    prog,
		builder: symbolic.NewBuilder(),
		chk:     chk,
		dom:     resolveDomain(cfgg),
	}
	if cfgg.Budget.MaxExprSize > 0 {
		a.builder.SetMaxSize(cfgg.Budget.MaxExprSize)
	}
	st := &attemptState{a: a, cfg: cfgg, prog: prog, chk: chk}
	pl := attemptPipeline()
	if err := pl.RunPhase(ctx, phaseGraph, st); err != nil {
		return nil, err
	}

	st.init = DataInits(prog)

	// The complete-propagation round cap: the configuration's safety net,
	// tightened further by the budget's rounds axis.
	maxRounds := cfgg.MaxRounds
	roundsCapped := false
	if b := cfgg.Budget.MaxRounds; b > 0 && b < maxRounds {
		maxRounds = b
		roundsCapped = true
	}

	for st.round = 0; ; st.round++ {
		if err := pl.RunPhase(ctx, phaseJump, st); err != nil {
			return nil, err
		}
		if err := pl.RunPhase(ctx, phaseSolve, st); err != nil {
			return nil, err
		}
		a.Stats.Rounds = int(chk.AddRound())
		if !cfgg.Complete || st.round+1 >= maxRounds {
			// Each round's solution is a sound fixed point; stopping at
			// the budget's round cap is graceful degradation, not an
			// abort — note it and keep the last solution.
			if cfgg.Complete && roundsCapped && st.round+1 >= maxRounds && (st.prev == nil || !a.Vals.Equal(st.prev)) {
				a.Warnings = append(a.Warnings, Warning{
					Axis: guard.AxisRounds,
					From: describeConfig(cfgg),
					To:   fmt.Sprintf("%s (stopped after %d round(s))", describeConfig(cfgg), maxRounds),
					Detail: fmt.Sprintf("complete propagation truncated at round cap %d before stabilizing",
						maxRounds),
				})
				cfgg.Trace.Degradation("solve")
			}
			break
		}
		if st.prev != nil && a.Vals.Equal(st.prev) {
			break
		}
		st.prev = a.Vals
		st.entry = a.Vals.EntryEnv
		st.prune = true
	}

	if t := a.builder.Truncated(); t > 0 {
		a.Warnings = append(a.Warnings, Warning{
			Axis: guard.AxisExprSize,
			From: describeConfig(cfgg),
			To:   describeConfig(cfgg),
			Detail: fmt.Sprintf("%d jump-function expression(s) over size cap %d degraded to ⊥",
				t, cfgg.Budget.MaxExprSize),
		})
		cfgg.Trace.Degradation("jump")
	}

	if cfgg.Complete {
		a.Stats.DeadInstrs = a.countDeadInstrs()
	}
	return a, nil
}

// bottomAnalysis is the final fallback: the all-⊥ solution, trivially
// sound (it claims no constants). Substitution over it still performs
// the purely intraprocedural pass, which needs no solver iteration.
func bottomAnalysis(prog *sem.Program, cfgg Config) *Analysis {
	a := &Analysis{
		Config:  cfgg,
		Prog:    prog,
		builder: symbolic.NewBuilder(),
		dom:     resolveDomain(cfgg),
	}
	if cfgg.Hooks != nil {
		a.Graph, a.Mod = cfgg.Hooks.Graph()
	} else {
		a.Graph = callgraph.Build(prog)
		a.Mod = modref.Compute(a.Graph)
	}
	a.Funcs = &jump.Functions{
		Config:  cfgg.Jump,
		Graph:   a.Graph,
		Mod:     a.Mod,
		Builder: a.builder,
		Returns: make(map[*sem.Procedure]*intra.ReturnSummary),
		Procs:   make(map[*sem.Procedure]*jump.ProcFunctions),
	}
	a.Vals = BottomValues(prog, a.dom)
	return a
}

// resolveDomain maps the config's domain selector to a concrete
// instance: nil means the constant domain.
func resolveDomain(c Config) domain.Domain {
	if c.Domain != nil {
		return c.Domain
	}
	return domain.Const()
}

func (a *Analysis) solve(init map[*sem.GlobalVar]lattice.Value, chk *guard.Checker) (*Values, error) {
	switch a.Config.Solver {
	case SolverBinding:
		return a.solveBinding(init, chk)
	default:
		return a.solveWorklist(init, chk)
	}
}

// RunSolver re-runs interprocedural propagation over the analysis's
// final jump functions with the given solver, returning the fresh VAL
// solution and the number of jump-function evaluations it performed.
// The analysis itself is left untouched — Config, Stats, and the budget
// checker are restored on return — so callers can ablate the worklist
// against the binding-graph scheme on identical inputs (the solver
// exhibits of cmd/ipcp-bench). Under complete propagation the final
// jump functions reflect the last round's pruning, so the re-run
// reproduces that round's solve. Not safe for concurrent use with
// other methods of a.
func (a *Analysis) RunSolver(kind SolverKind) (*Values, int, error) {
	savedSolver, savedStats, savedChk := a.Config.Solver, a.Stats, a.chk
	defer func() {
		a.Config.Solver, a.Stats, a.chk = savedSolver, savedStats, savedChk
	}()
	a.Config.Solver = kind
	if a.chk == nil {
		a.chk = guard.NewChecker(context.Background(), guard.Budget{})
	}
	before := a.Stats.JFEvaluations
	vals, err := a.solve(DataInits(a.Prog), a.chk)
	evals := a.Stats.JFEvaluations - before
	if err != nil {
		return nil, evals, err
	}
	return vals, evals, nil
}

func (a *Analysis) countDeadInstrs() int {
	var results []*dce.Result
	for _, pf := range a.Funcs.Procs {
		results = append(results, dce.Analyze(pf.SSA, pf.Intra))
	}
	return dce.TotalDeadInstrs(results)
}

// Constants returns CONSTANTS(p): the formals and globals proven
// constant on every entry to p. ⊤ values (procedure never called) are
// not reported.
func (a *Analysis) Constants(p *sem.Procedure) []Constant {
	var out []Constant
	for i, f := range p.Formals {
		if f.IsArray || f.Type != ast.TypeInteger {
			continue
		}
		if c, ok := a.Vals.Formal(p, i).IsConst(); ok {
			out = append(out, Constant{Proc: p, Name: f.Name, FormalIndex: i, Value: c,
				Referenced: a.Mod.Ref(p, i)})
		}
	}
	for _, g := range a.Prog.Globals() {
		if g.IsArray || g.Type != ast.TypeInteger {
			continue
		}
		if c, ok := a.Vals.Global(p, g).IsConst(); ok {
			out = append(out, Constant{Proc: p, Name: g.Name, FormalIndex: -1, Global: g, Value: c,
				Referenced: a.Mod.GRef(p, g)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fact is one proven abstract fact of a non-constant domain: a formal
// or global whose VAL entry is a Mid element (strictly between ⊤ and
// ⊥), rendered through the domain's Format. For the constant domain
// Facts and Constants coincide (every Mid element is a constant).
type Fact struct {
	Proc        *sem.Procedure
	Name        string
	FormalIndex int            // -1 for globals
	Global      *sem.GlobalVar // nil for formals
	// Value is the domain's rendering, e.g. "[1,10]", "even", "clean".
	Value string
}

// Facts returns the domain facts proven on every entry to p, sorted by
// name — the generic counterpart of Constants.
func (a *Analysis) Facts(p *sem.Procedure) []Fact {
	var out []Fact
	for i, f := range p.Formals {
		if f.IsArray || f.Type != ast.TypeInteger {
			continue
		}
		if e := a.Vals.FormalElem(p, i); e.L == domain.LevelMid {
			out = append(out, Fact{Proc: p, Name: f.Name, FormalIndex: i, Value: a.dom.Format(e)})
		}
	}
	for _, g := range a.Prog.Globals() {
		if g.IsArray || g.Type != ast.TypeInteger {
			continue
		}
		if e := a.Vals.GlobalElem(p, g); e.L == domain.LevelMid {
			out = append(out, Fact{Proc: p, Name: g.Name, FormalIndex: -1, Global: g, Value: a.dom.Format(e)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllConstants returns the CONSTANTS sets of every procedure, in source
// order.
func (a *Analysis) AllConstants() map[*sem.Procedure][]Constant {
	m := make(map[*sem.Procedure][]Constant)
	for _, p := range a.Prog.Order {
		m[p] = a.Constants(p)
	}
	return m
}

// Substitute counts (and records) the constants the analyzer would
// substitute into the program text — the paper's reported metric.
func (a *Analysis) Substitute() *subst.Result {
	opts := subst.Options{
		UseMOD:           a.Config.Jump.UseMOD,
		UseReturnJFs:     a.Config.Jump.UseReturnJFs,
		Returns:          a.Funcs.Returns,
		FullSubstitution: a.Config.Jump.FullSubstitution,
		Gated:            a.Config.Jump.Gated,
		Prune:            a.Config.Complete,
		Entry:            a.Vals.EntryEnv,
		Builder:          a.builder,
		Parallelism:      a.Config.Parallelism,
	}
	if h := a.Config.Hooks; h != nil {
		res, pm := h.Subst(a.Config, opts)
		if res != nil {
			a.Config.Trace.MemoHit("subst")
			return res
		}
		if pm != nil {
			opts.Memo = pm
			res = subst.Run(a.Graph, a.Mod, opts)
			h.StoreSubst(a.Config, opts, res)
			return res
		}
	}
	return subst.Run(a.Graph, a.Mod, opts)
}

// TransformedSource returns the program text with every substituted use
// replaced by its constant (the analyzer's optional output).
func (a *Analysis) TransformedSource(f *ast.File) string {
	return RenderSubstituted(f, a.Substitute())
}

// RenderSubstituted writes the program text with an already-computed
// substitution applied (so callers can cache one subst.Result for both
// counting and rendering).
func RenderSubstituted(f *ast.File, res *subst.Result) string {
	var b strings.Builder
	_ = ast.WriteFileSubst(&b, f, res.Replacements)
	return b.String()
}

// IntraproceduralCount is the Table 3 baseline: purely intraprocedural
// constant propagation (no values cross call boundaries) with MOD
// information.
func IntraproceduralCount(prog *sem.Program) *subst.Result {
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	// Serial: this baseline runs as one cell of the table sweeps, which
	// already fan out across cells.
	return subst.Run(cg, mod, subst.Options{UseMOD: true, Parallelism: 1})
}

// DataInits scans all DATA statements for load-time initializations of
// COMMON globals; they form the initial environment of the main
// program.
func DataInits(prog *sem.Program) map[*sem.GlobalVar]lattice.Value {
	out := make(map[*sem.GlobalVar]lattice.Value)
	for _, p := range prog.Order {
		for _, d := range p.Unit.Decls {
			dd, ok := d.(*ast.DataDecl)
			if !ok {
				continue
			}
			for i, name := range dd.Names {
				if i >= len(dd.Values) {
					break
				}
				s := p.Lookup(name)
				if s == nil || s.Kind != sem.SymCommon || s.IsArray || s.Global.Type != ast.TypeInteger {
					continue
				}
				v := constOfLiteral(dd.Values[i])
				if cur, seen := out[s.Global]; seen {
					out[s.Global] = lattice.Meet(cur, v)
				} else {
					out[s.Global] = v
				}
			}
		}
	}
	return out
}

func constOfLiteral(e ast.Expr) lattice.Value {
	switch x := e.(type) {
	case *ast.IntLit:
		return lattice.ConstValue(x.Value)
	case *ast.Unary:
		if x.Op == ast.OpNeg {
			if lit, ok := x.X.(*ast.IntLit); ok {
				return lattice.ConstValue(-lit.Value)
			}
		}
	}
	return lattice.BottomValue()
}

// ---------------------------------------------------------------------
// VAL sets

// Values holds VAL(p) for every procedure: one abstract element of the
// analysis's domain per formal parameter and per (procedure, global)
// pair. Storage is dense — two flat slices indexed by the program's
// sealed procedure and global indices (sem.Program.ProcIndex /
// GlobalIndex) — so a whole solution is three allocations and the
// solver's meets walk contiguous memory instead of chasing
// per-procedure maps. (The zero domain.Elem is ⊤ for every domain,
// which is what keeps the fresh-solution cost at three allocations.)
//
// For domains of unbounded height (Widens), Values also carries one
// descent counter per cell: after domain.WidenThreshold plain meets, a
// cell's lowering is routed through Domain.Widen, restoring the
// finite-descent property both solvers' termination relies on.
type Values struct {
	prog  *sem.Program
	dom   domain.Domain
	nGlob int
	// formalOff has len(Order)+1 entries; procedure i's formal row is
	// formals[formalOff[i]:formalOff[i+1]].
	formalOff []int32
	formals   []domain.Elem
	// globals is the dense VAL matrix: globals[i*nGlob+j] is
	// VAL(Order[i])[Globals()[j]].
	globals []domain.Elem
	// fCnt/gCnt are per-cell descent counters, allocated only for
	// widening domains (nil otherwise, costing constant-domain runs
	// nothing).
	fCnt, gCnt []uint8
}

// NewValues returns the all-⊤ initial VAL sets over dom.
func NewValues(prog *sem.Program, dom domain.Domain) *Values {
	order := prog.Order
	gs := prog.Globals()
	off := make([]int32, len(order)+1)
	total := 0
	for i, p := range order {
		off[i] = int32(total)
		total += len(p.Formals)
	}
	off[len(order)] = int32(total)
	// The zero domain.Elem is ⊤, so fresh slices need no init pass.
	v := &Values{
		prog:      prog,
		dom:       dom,
		nGlob:     len(gs),
		formalOff: off,
		formals:   make([]domain.Elem, total),
		globals:   make([]domain.Elem, len(order)*len(gs)),
	}
	if dom.Widens() {
		v.fCnt = make([]uint8, total)
		v.gCnt = make([]uint8, len(order)*len(gs))
	}
	return v
}

// BottomValues returns the all-⊥ VAL sets: the trivially sound
// "no facts anywhere" solution used when every budget fallback has been
// spent.
func BottomValues(prog *sem.Program, dom domain.Domain) *Values {
	v := NewValues(prog, dom)
	bot := dom.Bottom()
	for i := range v.formals {
		v.formals[i] = bot
	}
	for i := range v.globals {
		v.globals[i] = bot
	}
	return v
}

// formalRow returns procedure pi's formal row.
func (v *Values) formalRow(pi int) []domain.Elem {
	return v.formals[v.formalOff[pi]:v.formalOff[pi+1]]
}

// globalRow returns procedure pi's global row.
func (v *Values) globalRow(pi int) []domain.Elem {
	return v.globals[pi*v.nGlob : (pi+1)*v.nGlob]
}

// FormalElem returns VAL(p)[formal i] as a raw domain element.
func (v *Values) FormalElem(p *sem.Procedure, i int) domain.Elem {
	pi := v.prog.ProcIndex(p)
	if pi < 0 {
		return v.dom.Bottom()
	}
	fs := v.formalRow(pi)
	if i < 0 || i >= len(fs) {
		return v.dom.Bottom()
	}
	return fs[i]
}

// GlobalElem returns VAL(p)[g] as a raw domain element (⊤ when p or g
// is unknown, matching the never-called procedure's value).
func (v *Values) GlobalElem(p *sem.Procedure, g *sem.GlobalVar) domain.Elem {
	pi, gi := v.prog.ProcIndex(p), v.prog.GlobalIndex(g)
	if pi < 0 || gi < 0 {
		return domain.Top()
	}
	return v.globals[pi*v.nGlob+gi]
}

// Formal returns VAL(p)[formal i] in the constant view: the
// lattice.Value every non-generic consumer (substitution, cloning,
// CONSTANTS) understands. Exact for the constant domain; for other
// domains a Mid element maps to a constant only when the domain proves
// a single value (e.g. a singleton interval).
func (v *Values) Formal(p *sem.Procedure, i int) lattice.Value {
	return domain.ToLattice(v.dom, v.FormalElem(p, i))
}

// Global returns VAL(p)[g] in the constant view.
func (v *Values) Global(p *sem.Procedure, g *sem.GlobalVar) lattice.Value {
	return domain.ToLattice(v.dom, v.GlobalElem(p, g))
}

// LowerFormal meets a new element into VAL(p)[i], reporting change.
func (v *Values) LowerFormal(p *sem.Procedure, i int, nv domain.Elem) bool {
	pi := v.prog.ProcIndex(p)
	if pi < 0 {
		return false
	}
	if i < 0 || int(v.formalOff[pi])+i >= int(v.formalOff[pi+1]) {
		return false
	}
	return v.lowerFormalAt(pi, i, nv)
}

// LowerGlobal meets a new element into VAL(p)[g], reporting change.
func (v *Values) LowerGlobal(p *sem.Procedure, g *sem.GlobalVar, nv domain.Elem) bool {
	pi, gi := v.prog.ProcIndex(p), v.prog.GlobalIndex(g)
	if pi < 0 || gi < 0 {
		return false
	}
	return v.lowerGlobalAt(pi, gi, nv)
}

// lowerFormalAt and lowerGlobalAt are the solver-internal index-based
// variants (no identity lookups in the inner loop).
func (v *Values) lowerFormalAt(pi, i int, nv domain.Elem) bool {
	idx := int(v.formalOff[pi]) + i
	var cnt *uint8
	if v.fCnt != nil {
		cnt = &v.fCnt[idx]
	}
	return v.lowerCell(&v.formals[idx], cnt, nv)
}

func (v *Values) lowerGlobalAt(pi, gi int, nv domain.Elem) bool {
	idx := pi*v.nGlob + gi
	var cnt *uint8
	if v.gCnt != nil {
		cnt = &v.gCnt[idx]
	}
	return v.lowerCell(&v.globals[idx], cnt, nv)
}

// lowerCell meets nv into a cell, reporting change. For widening
// domains the cell's descent counter decides when a plain meet becomes
// a widen: the first WidenThreshold descents are exact (so small
// bounded loops converge precisely), after which Widen accelerates the
// remaining descents to a finite number.
func (v *Values) lowerCell(cell *domain.Elem, cnt *uint8, nv domain.Elem) bool {
	m := v.dom.Meet(*cell, nv)
	if m == *cell {
		return false
	}
	if cnt != nil {
		if *cnt >= domain.WidenThreshold {
			m = v.dom.Widen(*cell, m)
			if m == *cell {
				return false
			}
		} else {
			*cnt++
		}
	}
	*cell = m
	return true
}

// Equal reports whether two VAL solutions coincide.
func (v *Values) Equal(o *Values) bool {
	if len(v.formals) != len(o.formals) || len(v.globals) != len(o.globals) {
		return false
	}
	for i := range v.formals {
		if v.formals[i] != o.formals[i] {
			return false
		}
	}
	for i := range v.globals {
		if v.globals[i] != o.globals[i] {
			return false
		}
	}
	return true
}

// EntryEnv adapts VAL(p) to the intra engine's entry environment: only
// elements that prove a single constant are included (for the constant
// domain, exactly the constants; for intervals, the singleton ranges;
// parity and taint prove values, not constants, and contribute
// nothing — their substitution is purely intraprocedural).
func (v *Values) EntryEnv(p *sem.Procedure) map[ssa.Var]int64 {
	env := make(map[ssa.Var]int64)
	for i, f := range p.Formals {
		if c, ok := v.dom.ConstOf(v.FormalElem(p, i)); ok {
			env[ssa.VarOf(f)] = c
		}
	}
	if pi := v.prog.ProcIndex(p); pi >= 0 {
		gs := v.prog.Globals()
		for gi, val := range v.globalRow(pi) {
			if c, ok := v.dom.ConstOf(val); ok {
				env[ssa.GlobalVar(gs[gi])] = c
			}
		}
	}
	return env
}

// envFor builds the jump-function evaluation environment from VAL(p).
func (v *Values) envFor(p *sem.Procedure) domain.Env {
	return v.envAt(v.prog.ProcIndex(p))
}

// envAt is envFor by sealed procedure index: the caller's identity is
// resolved once, so each leaf evaluation is two slice reads.
func (v *Values) envAt(pi int) domain.Env {
	return func(leaf *symbolic.Expr) domain.Elem {
		switch leaf.Op {
		case symbolic.OpParam:
			// The leaf's symbol belongs to the caller.
			if pi < 0 {
				return v.dom.Bottom()
			}
			fs := v.formalRow(pi)
			if i := leaf.Param.FormalIndex; i >= 0 && i < len(fs) {
				return fs[i]
			}
			return v.dom.Bottom()
		case symbolic.OpGlobal:
			gi := v.prog.GlobalIndex(leaf.Global)
			if pi < 0 || gi < 0 {
				return domain.Top()
			}
			return v.globals[pi*v.nGlob+gi]
		}
		return v.dom.Bottom()
	}
}

// String renders the non-⊤ values for debugging.
func (v *Values) String() string {
	var b strings.Builder
	gs := v.prog.Globals()
	byKey := make([]int, len(gs))
	for i := range byKey {
		byKey[i] = i
	}
	sort.Slice(byKey, func(i, j int) bool { return gs[byKey[i]].Key() < gs[byKey[j]].Key() })
	for pi, p := range v.prog.Order {
		fmt.Fprintf(&b, "%s:", p.Name)
		fs := v.formalRow(pi)
		for i, f := range p.Formals {
			fmt.Fprintf(&b, " %s=%s", f.Name, v.dom.Format(fs[i]))
		}
		row := v.globalRow(pi)
		for _, gi := range byKey {
			if val := row[gi]; !val.IsTop() {
				fmt.Fprintf(&b, " %s=%s", gs[gi].Key(), v.dom.Format(val))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
