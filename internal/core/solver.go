package core

import (
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/sem"
	"repro/internal/symbolic"
)

// evalJF evaluates a forward jump function under the caller's VAL set.
// A nil jump function is the constant-⊥ function. Each evaluation is
// accounted to the attempt's checker atomically, so the step budget
// stays correct if a future solver fans evaluations out.
func (a *Analysis) evalJF(jf *symbolic.Expr, env symbolic.Env) lattice.Value {
	a.Stats.JFEvaluations++
	a.chk.Add(1)
	if jf == nil {
		return lattice.BottomValue()
	}
	return symbolic.Eval(jf, env)
}

// seed installs the main program's initial environment: formals are
// nonexistent, and each global starts at its DATA-statement value (or ⊥
// for uninitialized storage).
func (a *Analysis) seed(vals *Values, init map[*sem.GlobalVar]lattice.Value) {
	main := a.Prog.Main
	if main == nil {
		return
	}
	for _, g := range a.Prog.Globals() {
		v, ok := init[g]
		if !ok {
			v = lattice.BottomValue()
		}
		if vals.LowerGlobal(main, g, v) {
			a.Stats.Lowerings++
		}
	}
}

// ---------------------------------------------------------------------
// Worklist solver (the paper's §4.1 third phase)

// solveWorklist iterates procedure-at-a-time: when VAL(p) changes, all
// call sites in p are re-evaluated. Simple and, as the paper notes for
// its own implementation, "even with this less efficient solver, the
// problems converged quickly". It aborts with *guard.Exhausted when the
// checker's step or deadline budget runs out.
func (a *Analysis) solveWorklist(init map[*sem.GlobalVar]lattice.Value, chk *guard.Checker) (*Values, error) {
	defer guard.Repanic("solve")
	if err := guard.Inject("solve"); err != nil {
		return nil, err
	}
	vals := NewValues(a.Prog)
	a.seed(vals, init)

	inWork := make(map[*sem.Procedure]bool, len(a.Prog.Order))
	work := make([]*sem.Procedure, 0, len(a.Prog.Order))
	push := func(p *sem.Procedure) {
		if !inWork[p] {
			inWork[p] = true
			work = append(work, p)
		}
	}
	// Every procedure is processed at least once so that sites with
	// constant jump functions fire even if the caller's VAL never
	// lowers.
	for _, p := range a.Prog.Order {
		push(p)
	}

	for len(work) > 0 {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		p := work[0]
		work = work[1:]
		inWork[p] = false

		pf := a.Funcs.Procs[p]
		if pf == nil {
			continue
		}
		env := vals.envFor(p)
		for _, site := range pf.Sites {
			if site.Dead {
				continue // unreachable call: contributes ⊤ (nothing)
			}
			q := site.Callee
			for j, jf := range site.Formals {
				v := a.evalJF(jf, env)
				if vals.LowerFormal(q, j, v) {
					a.Stats.Lowerings++
					push(q)
				}
			}
			for _, g := range a.Prog.Globals() {
				v := a.evalJF(site.Globals[g], env)
				if vals.LowerGlobal(q, g, v) {
					a.Stats.Lowerings++
					push(q)
				}
			}
		}
	}
	return vals, nil
}

// ---------------------------------------------------------------------
// Binding-graph solver (Callahan–Cooper–Kennedy–Torczon 1986)

// slotKey identifies one lattice cell: a (procedure, formal) or
// (procedure, global) pair — a node of the binding graph.
type slotKey struct {
	proc   *sem.Procedure
	formal int // -1 for globals
	glob   *sem.GlobalVar
}

// jfInstance is one jump function edge: evaluating caller VAL values
// feeds the target slot.
type jfInstance struct {
	caller *sem.Procedure
	expr   *symbolic.Expr // nil = constant ⊥
	target slotKey
}

// solveBinding builds the binding graph — an edge from each slot in a
// jump function's support to the slot the function feeds — and
// re-evaluates a jump function only when a slot in its support lowers.
// With the shallow lattice (each slot lowers at most twice) the total
// work is O(Σ_s Σ_y cost(J_s^y) · |support(J_s^y)|), and O(Σ cost) for
// the pass-through family whose supports have at most one element —
// the bounds of §3.1.5. Aborts with *guard.Exhausted when the checker's
// step or deadline budget runs out.
func (a *Analysis) solveBinding(init map[*sem.GlobalVar]lattice.Value, chk *guard.Checker) (*Values, error) {
	defer guard.Repanic("solve")
	if err := guard.Inject("solve"); err != nil {
		return nil, err
	}
	vals := NewValues(a.Prog)

	// Collect jump function instances and the dependence index.
	var instances []jfInstance
	deps := make(map[slotKey][]int) // slot → instance indices to re-evaluate
	for _, p := range a.Prog.Order {
		pf := a.Funcs.Procs[p]
		if pf == nil {
			continue
		}
		for _, site := range pf.Sites {
			if site.Dead {
				continue // unreachable call: contributes ⊤ (nothing)
			}
			addInstance := func(expr *symbolic.Expr, target slotKey) {
				idx := len(instances)
				instances = append(instances, jfInstance{caller: p, expr: expr, target: target})
				if expr != nil {
					for _, leaf := range expr.Support() {
						k := leafSlot(p, leaf)
						deps[k] = append(deps[k], idx)
					}
				}
			}
			for j := range site.Formals {
				addInstance(site.Formals[j], slotKey{proc: site.Callee, formal: j})
			}
			for _, g := range a.Prog.Globals() {
				addInstance(site.Globals[g], slotKey{proc: site.Callee, formal: -1, glob: g})
			}
		}
	}

	// Worklist of lowered slots.
	work := make([]slotKey, 0, len(a.Prog.Order))
	inWork := make(map[slotKey]bool, len(a.Prog.Order))
	lower := func(k slotKey, v lattice.Value) {
		var changed bool
		if k.formal >= 0 {
			changed = vals.LowerFormal(k.proc, k.formal, v)
		} else {
			changed = vals.LowerGlobal(k.proc, k.glob, v)
		}
		if changed {
			a.Stats.Lowerings++
			if !inWork[k] {
				inWork[k] = true
				work = append(work, k)
			}
		}
	}

	// Seed: main's globals.
	if main := a.Prog.Main; main != nil {
		for _, g := range a.Prog.Globals() {
			v, ok := init[g]
			if !ok {
				v = lattice.BottomValue()
			}
			lower(slotKey{proc: main, formal: -1, glob: g}, v)
		}
	}

	evalInstance := func(inst jfInstance) {
		lower(inst.target, a.evalJF(inst.expr, vals.envFor(inst.caller)))
	}

	// Initial evaluation of every jump function (support values may be
	// ⊤; constants and ⊥ propagate immediately).
	for _, inst := range instances {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		evalInstance(inst)
	}

	for len(work) > 0 {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		k := work[0]
		work = work[1:]
		inWork[k] = false
		for _, idx := range deps[k] {
			evalInstance(instances[idx])
		}
	}
	return vals, nil
}

func leafSlot(p *sem.Procedure, leaf *symbolic.Expr) slotKey {
	switch leaf.Op {
	case symbolic.OpParam:
		return slotKey{proc: p, formal: leaf.Param.FormalIndex}
	case symbolic.OpGlobal:
		return slotKey{proc: p, formal: -1, glob: leaf.Global}
	}
	return slotKey{proc: p, formal: -1}
}
