package core

import (
	"repro/internal/domain"
	"repro/internal/guard"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/sem"
	"repro/internal/symbolic"
)

// evalJF evaluates a forward jump function under the caller's VAL set,
// through the analysis domain's transfer function. A nil jump function
// is the constant-⊥ function. Each evaluation is accounted to the
// attempt's checker atomically, so the step budget stays correct if a
// future solver fans evaluations out.
func (a *Analysis) evalJF(jf *symbolic.Expr, env domain.Env) domain.Elem {
	a.Stats.JFEvaluations++
	a.chk.Add(1)
	if jf == nil {
		return a.dom.Bottom()
	}
	return a.dom.Eval(jf, env)
}

// seed installs the main program's initial environment: formals are
// nonexistent, and each global starts at the domain's abstraction of
// its DATA-statement value (or ⊥ for uninitialized storage).
func (a *Analysis) seed(vals *Values, init map[*sem.GlobalVar]lattice.Value) {
	main := a.Prog.Main
	if main == nil {
		return
	}
	for _, g := range a.Prog.Globals() {
		v, ok := init[g]
		if !ok {
			v = lattice.BottomValue()
		}
		if vals.LowerGlobal(main, g, domain.OfLattice(a.dom, v)) {
			a.Stats.Lowerings++
		}
	}
}

// ---------------------------------------------------------------------
// Worklist solver (the paper's §4.1 third phase)

// solveWorklist iterates procedure-at-a-time: when VAL(p) changes, all
// call sites in p are re-evaluated. Simple and, as the paper notes for
// its own implementation, "even with this less efficient solver, the
// problems converged quickly". It aborts with *guard.Exhausted when the
// checker's step or deadline budget runs out.
func (a *Analysis) solveWorklist(init map[*sem.GlobalVar]lattice.Value, chk *guard.Checker) (*Values, error) {
	defer guard.Repanic("solve")
	if err := guard.Inject("solve"); err != nil {
		return nil, err
	}
	vals := NewValues(a.Prog, a.dom)
	a.seed(vals, init)

	inWork := make([]bool, len(a.Prog.Order))
	work := make([]*sem.Procedure, 0, len(a.Prog.Order))
	push := func(p *sem.Procedure) {
		if pi := a.Prog.ProcIndex(p); pi >= 0 && !inWork[pi] {
			inWork[pi] = true
			work = append(work, p)
		}
	}
	// Every procedure is processed at least once so that sites with
	// constant jump functions fire even if the caller's VAL never
	// lowers.
	for _, p := range a.Prog.Order {
		push(p)
	}

	// Value-context memoization (see context.go). Disabled in complete
	// propagation, whose per-round pruning changes the site set between
	// solves. Procedures with a self-call site never consult the memo:
	// their evaluation environment can change mid-step.
	ctxm := a.Config.Contexts
	useCtx := ctxm != nil && !a.Config.Complete
	var selfRef []bool
	var keyBuf []byte
	if useCtx {
		selfRef = make([]bool, len(a.Prog.Order))
		for pi, p := range a.Prog.Order {
			if pf := a.Funcs.Procs[p]; pf != nil {
				for _, site := range pf.Sites {
					if site.Callee == p {
						selfRef[pi] = true
						break
					}
				}
			}
		}
	}

	for head := 0; head < len(work); head++ {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		p := work[head]
		pi := a.Prog.ProcIndex(p)
		inWork[pi] = false

		pf := a.Funcs.Procs[p]
		if pf == nil {
			continue
		}
		if useCtx && !selfRef[pi] {
			var key string
			key, keyBuf = ctxKey(vals, pi, keyBuf)
			if rec, ok := ctxm.Lookup(p, key); ok {
				a.replayContext(vals, rec, push)
				continue
			}
			ctxm.Store(p, key, a.stepRecording(vals, pf, push))
			continue
		}
		env := vals.envFor(p)
		for _, site := range pf.Sites {
			if site.Dead {
				continue // unreachable call: contributes ⊤ (nothing)
			}
			q := site.Callee
			for j, jf := range site.Formals {
				v := a.evalJF(jf, env)
				if vals.LowerFormal(q, j, v) {
					a.Stats.Lowerings++
					push(q)
				}
			}
			for _, g := range a.Prog.Globals() {
				v := a.evalJF(site.Globals[g], env)
				if vals.LowerGlobal(q, g, v) {
					a.Stats.Lowerings++
					push(q)
				}
			}
		}
	}
	return vals, nil
}

// stepRecording is the worklist solver's pop body with contribution
// recording: identical evaluations, lowerings, and pushes to the plain
// path, plus a ContextRecord of the step for the context memo. Only
// called for procedures without self-call sites, whose environment is
// fixed for the duration of the step.
func (a *Analysis) stepRecording(vals *Values, pf *jump.ProcFunctions, push func(*sem.Procedure)) *ContextRecord {
	rec := &ContextRecord{}
	env := vals.envFor(pf.Proc)
	for _, site := range pf.Sites {
		if site.Dead {
			continue
		}
		q := site.Callee
		for j, jf := range site.Formals {
			v := a.evalJF(jf, env)
			rec.Evals++
			if !v.IsTop() {
				rec.Contribs = append(rec.Contribs, ContextContrib{Callee: q, Formal: j, Value: v})
			}
			if vals.LowerFormal(q, j, v) {
				a.Stats.Lowerings++
				push(q)
			}
		}
		for _, g := range a.Prog.Globals() {
			v := a.evalJF(site.Globals[g], env)
			rec.Evals++
			if !v.IsTop() {
				rec.Contribs = append(rec.Contribs, ContextContrib{Callee: q, Global: g, Value: v})
			}
			if vals.LowerGlobal(q, g, v) {
				a.Stats.Lowerings++
				push(q)
			}
		}
	}
	return rec
}

// ---------------------------------------------------------------------
// Binding-graph solver (Callahan–Cooper–Kennedy–Torczon 1986)

// Slots — the binding graph's nodes — are dense integers laid out per
// procedure: procedure i owns the contiguous range
// [base[i], base[i+1]), formals first, then one slot per global in the
// program's sealed order. The dependence index, in-worklist flags, and
// worklist are plain slices over these ids, so the propagation loop
// does no hashing at all.

// jfInstance is one jump function edge: evaluating caller VAL values
// feeds the target slot.
type jfInstance struct {
	callerIdx int32          // caller's sealed procedure index
	expr      *symbolic.Expr // nil = constant ⊥
	target    int32          // slot id fed by this function
}

// bindingLayout is the slot numbering shared by the binding solver's
// index structures.
type bindingLayout struct {
	prog  *sem.Program
	nGlob int
	base  []int32 // per-procedure slot range starts; len(Order)+1
}

func newBindingLayout(prog *sem.Program) *bindingLayout {
	order := prog.Order
	l := &bindingLayout{prog: prog, nGlob: len(prog.Globals()), base: make([]int32, len(order)+1)}
	n := int32(0)
	for i, p := range order {
		l.base[i] = n
		n += int32(len(p.Formals) + l.nGlob)
	}
	l.base[len(order)] = n
	return l
}

func (l *bindingLayout) numSlots() int32 { return l.base[len(l.base)-1] }

func (l *bindingLayout) formalSlot(pi, j int) int32 { return l.base[pi] + int32(j) }

func (l *bindingLayout) globalSlot(pi, gi int) int32 {
	return l.base[pi] + int32(len(l.prog.Order[pi].Formals)+gi)
}

// leafSlot maps a support leaf of caller pi to its slot id, or -1 for
// leaves (e.g. opaque values) that no lowering ever feeds.
func (l *bindingLayout) leafSlot(pi int, leaf *symbolic.Expr) int32 {
	switch leaf.Op {
	case symbolic.OpParam:
		return l.formalSlot(pi, leaf.Param.FormalIndex)
	case symbolic.OpGlobal:
		if gi := l.prog.GlobalIndex(leaf.Global); gi >= 0 {
			return l.globalSlot(pi, gi)
		}
	}
	return -1
}

// solveBinding builds the binding graph — an edge from each slot in a
// jump function's support to the slot the function feeds — and
// re-evaluates a jump function only when a slot in its support lowers.
// With the shallow lattice (each slot lowers at most twice) the total
// work is O(Σ_s Σ_y cost(J_s^y) · |support(J_s^y)|), and O(Σ cost) for
// the pass-through family whose supports have at most one element —
// the bounds of §3.1.5. Aborts with *guard.Exhausted when the checker's
// step or deadline budget runs out.
func (a *Analysis) solveBinding(init map[*sem.GlobalVar]lattice.Value, chk *guard.Checker) (*Values, error) {
	defer guard.Repanic("solve")
	if err := guard.Inject("solve"); err != nil {
		return nil, err
	}
	vals := NewValues(a.Prog, a.dom)
	order := a.Prog.Order
	gs := a.Prog.Globals()
	lay := newBindingLayout(a.Prog)

	// Collect jump function instances.
	var instances []jfInstance
	for pi, p := range order {
		pf := a.Funcs.Procs[p]
		if pf == nil {
			continue
		}
		for _, site := range pf.Sites {
			if site.Dead {
				continue // unreachable call: contributes ⊤ (nothing)
			}
			qi := a.Prog.ProcIndex(site.Callee)
			if qi < 0 {
				continue // callee outside the program: nothing to feed
			}
			for j := range site.Formals {
				instances = append(instances, jfInstance{
					callerIdx: int32(pi), expr: site.Formals[j], target: lay.formalSlot(qi, j)})
			}
			for gi, g := range gs {
				instances = append(instances, jfInstance{
					callerIdx: int32(pi), expr: site.Globals[g], target: lay.globalSlot(qi, gi)})
			}
		}
	}

	// Dependence index: slot → instances to re-evaluate when it lowers.
	// Counted first, then carved out of one flat backing array.
	counts := make([]int32, lay.numSlots())
	total := 0
	for i := range instances {
		if instances[i].expr == nil {
			continue
		}
		pi := int(instances[i].callerIdx)
		for _, leaf := range instances[i].expr.Support() {
			if s := lay.leafSlot(pi, leaf); s >= 0 {
				counts[s]++
				total++
			}
		}
	}
	deps := make([][]int32, lay.numSlots())
	backing := make([]int32, 0, total)
	for s := range deps {
		if c := int(counts[s]); c > 0 {
			backing = backing[:len(backing)+c]
			deps[s] = backing[len(backing)-c : len(backing)-c : len(backing)]
		}
	}
	for i := range instances {
		if instances[i].expr == nil {
			continue
		}
		pi := int(instances[i].callerIdx)
		for _, leaf := range instances[i].expr.Support() {
			if s := lay.leafSlot(pi, leaf); s >= 0 {
				deps[s] = append(deps[s], int32(i))
			}
		}
	}

	// One evaluation environment per caller; each closure reads the live
	// VAL state, so building them up front is safe.
	envs := make([]domain.Env, len(order))
	for i := range order {
		envs[i] = vals.envAt(i)
	}

	// Worklist of lowered slots.
	work := make([]int32, 0, len(order))
	inWork := make([]bool, lay.numSlots())
	lower := func(s int32, v domain.Elem) {
		pi := findProc(lay.base, s)
		sub := int(s - lay.base[pi])
		nf := len(order[pi].Formals)
		var changed bool
		if sub < nf {
			changed = vals.lowerFormalAt(pi, sub, v)
		} else {
			changed = vals.lowerGlobalAt(pi, sub-nf, v)
		}
		if changed {
			a.Stats.Lowerings++
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}

	// Seed: main's globals.
	if main := a.Prog.Main; main != nil {
		mi := a.Prog.ProcIndex(main)
		for gi, g := range gs {
			v, ok := init[g]
			if !ok {
				v = lattice.BottomValue()
			}
			lower(lay.globalSlot(mi, gi), domain.OfLattice(a.dom, v))
		}
	}

	evalInstance := func(inst *jfInstance) {
		lower(inst.target, a.evalJF(inst.expr, envs[inst.callerIdx]))
	}

	// Initial evaluation of every jump function (support values may be
	// ⊤; constants and ⊥ propagate immediately).
	for i := range instances {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		evalInstance(&instances[i])
	}

	for head := 0; head < len(work); head++ {
		if err := chk.Check("solve"); err != nil {
			return nil, err
		}
		s := work[head]
		inWork[s] = false
		for _, idx := range deps[s] {
			evalInstance(&instances[idx])
		}
	}
	return vals, nil
}

// findProc returns the procedure index owning slot s: the greatest i
// with base[i] <= s (base is sorted and slot ranges are contiguous).
func findProc(base []int32, s int32) int {
	lo, hi := 0, len(base)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if base[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
