package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/jump"
	"repro/internal/lattice"
)

// TestGatedSubsumesCompletePropagation reproduces the paper's §4.2
// claim: "An analyzer based on gated single-assignment form would never
// consider the dead assignments that we found in the complete
// propagations. This would let the standard polynomial jump function
// produce the results seen with complete propagation."
func TestGatedSubsumesCompletePropagation(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 1
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	gated := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true}}
	a := analyzeSrc(t, src, gated)
	wantConst(t, formalVal(a, "T", 0), 5, "gated: T.J")
	if a.Stats.Rounds != 1 {
		t.Errorf("gated mode should need a single round, took %d", a.Stats.Rounds)
	}

	// And it matches the iterated complete propagation's solution.
	complete := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true}, Complete: true}
	ac := analyzeSrc(t, src, complete)
	for _, p := range a.Prog.Order {
		pc := ac.Prog.Procs[p.Name]
		for fi := range p.Formals {
			if a.Vals.Formal(p, fi) != ac.Vals.Formal(pc, fi) {
				t.Errorf("gated vs complete differ on %s formal %d: %v vs %v",
					p.Name, fi, a.Vals.Formal(p, fi), ac.Vals.Formal(pc, fi))
			}
		}
	}
}

// TestGammaMergesDistinctValuesSoundly: when the predicate stays
// unknown the gamma meets both arms (⊥ for distinct constants).
func TestGammaUnknownPredicate(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
READ *, N
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	gated := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true}}
	a := analyzeSrc(t, src, gated)
	wantBottom(t, formalVal(a, "T", 0), "gated with unknown predicate: T.J")
}

// TestGammaEmptyArm: an if-then without else (one arm is the fall
// through from the conditional itself).
func TestGammaEmptyArm(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 3
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
M = 10
IF (K .GT. 2) THEN
  M = 20
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	gated := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true}}
	a := analyzeSrc(t, src, gated)
	wantConst(t, formalVal(a, "T", 0), 20, "gated empty-arm: T.J (K=3 > 2)")
}

// TestGammaThroughReturnJF: gated return jump functions carry the
// conditional structure back to the caller.
func TestGammaThroughReturnJF(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER R
CALL PICK(R, 1)
CALL USE(R)
END
SUBROUTINE PICK(OUT, SEL)
INTEGER OUT, SEL
IF (SEL .EQ. 1) THEN
  OUT = 111
ELSE
  OUT = 222
ENDIF
END
SUBROUTINE USE(V)
INTEGER V
PRINT *, V
END
`
	plain := Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true}}
	a := analyzeSrc(t, src, plain)
	wantBottom(t, formalVal(a, "USE", 0), "plain: USE.V")

	gated := plain
	gated.Jump.Gated = true
	a = analyzeSrc(t, src, gated)
	wantConst(t, formalVal(a, "USE", 0), 111, "gated RJF: USE.V")
}

// TestGatedMonotoneVsPlain: gated never loses constants relative to
// plain polynomial, on random programs.
func TestGatedMonotoneVsPlain(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		prog, src := genProgram(t, gen.Config{Seed: int64(seed*41 + 7)})
		jc := jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true}
		plain := AnalyzeProgram(prog, Config{Jump: jc})
		jc.Gated = true
		gated := AnalyzeProgram(prog, Config{Jump: jc})
		for _, p := range prog.Order {
			for fi := range p.Formals {
				if !lattice.Leq(plain.Vals.Formal(p, fi), gated.Vals.Formal(p, fi)) {
					t.Fatalf("seed %d: gated lost a constant on %s formal %d: %v vs %v\n%s",
						seed, p.Name, fi, plain.Vals.Formal(p, fi), gated.Vals.Formal(p, fi), src)
				}
			}
		}
	}
}
