package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// genProgram parses a random generated program.
func genProgram(t *testing.T, cfg gen.Config) (*sem.Program, string) {
	t.Helper()
	src := gen.Program(cfg)
	var diags source.ErrorList
	f := parser.ParseSource("gen.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("generated program invalid (seed %d):\n%s\n%s", cfg.Seed, diags.Error(), src)
	}
	return prog, src
}

func allConfigs() []Config {
	var out []Config
	for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		for _, useMod := range []bool{true, false} {
			for _, rjf := range []bool{true, false} {
				out = append(out, Config{Jump: jump.Config{Kind: kind, UseMOD: useMod, UseReturnJFs: rjf}})
			}
		}
	}
	// The extension and completeness variants.
	out = append(out,
		Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, FullSubstitution: true}},
		Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true}, Complete: true},
		Config{Jump: jump.Config{Kind: jump.PassThrough, UseMOD: true, UseReturnJFs: true}, Solver: SolverBinding},
		Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true}},
		Config{Jump: jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true, FullSubstitution: true}},
	)
	return out
}

// TestSoundnessOnRandomPrograms is the central property test of the
// repository: for random programs and every analysis configuration,
// every (name, value) pair in every CONSTANTS(p) set must match the
// value actually observed on entry to p during execution.
func TestSoundnessOnRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	configs := allConfigs()
	for seed := 0; seed < seeds; seed++ {
		cfg := gen.Config{Seed: int64(seed), WithReads: seed%4 == 0, NumProcs: 3 + seed%4}
		prog, src := genProgram(t, cfg)

		run, err := interp.Run(prog, interp.Options{
			Input:    []int64{7, -2, 13, 0, 5, 99},
			MaxSteps: 1 << 19,
		})
		if err != nil {
			t.Fatalf("seed %d: interpreter: %v\n%s", seed, err, src)
		}

		for ci, c := range configs {
			a := AnalyzeProgram(prog, c)
			for _, p := range prog.Order {
				snaps := run.Entries[p]
				if len(snaps) == 0 {
					continue // never called at run time: vacuously sound
				}
				for _, k := range a.Constants(p) {
					for si, snap := range snaps {
						var got int64
						var have bool
						if k.Global != nil {
							got, have = snap.Globals[k.Global]
						} else {
							got, have = snap.Formals[k.FormalIndex]
						}
						if have && got != k.Value {
							t.Fatalf("seed %d config %d (%+v): UNSOUND: %s in %s claimed %d, observed %d at call %d\n%s",
								seed, ci, c.Jump, k.Name, p.Name, k.Value, got, si, src)
						}
					}
				}
			}
		}
	}
}

// TestJumpFunctionHierarchyOnRandomPrograms: per the paper, each jump
// function's constants are a subset of the next more powerful one's —
// lattice-wise, VAL under a weaker configuration is ⊑ VAL under a
// stronger one.
func TestJumpFunctionHierarchyOnRandomPrograms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	kinds := []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial}
	for seed := 0; seed < seeds; seed++ {
		prog, src := genProgram(t, gen.Config{Seed: int64(seed * 31)})
		var analyses []*Analysis
		for _, k := range kinds {
			analyses = append(analyses, AnalyzeProgram(prog, Config{Jump: jump.Config{Kind: k, UseMOD: true, UseReturnJFs: true}}))
		}
		for i := 0; i+1 < len(analyses); i++ {
			lo, hi := analyses[i], analyses[i+1]
			for _, p := range prog.Order {
				for fi := range p.Formals {
					vl, vh := lo.Vals.Formal(p, fi), hi.Vals.Formal(p, fi)
					if !lattice.Leq(vl, vh) {
						t.Fatalf("seed %d: hierarchy violated (%v vs %v) on %s formal %d: %v vs %v\n%s",
							seed, kinds[i], kinds[i+1], p.Name, fi, vl, vh, src)
					}
				}
				for _, g := range prog.Globals() {
					vl, vh := lo.Vals.Global(p, g), hi.Vals.Global(p, g)
					if !lattice.Leq(vl, vh) {
						t.Fatalf("seed %d: hierarchy violated (%v vs %v) on %s global %s: %v vs %v\n%s",
							seed, kinds[i], kinds[i+1], p.Name, g.Key(), vl, vh, src)
					}
				}
			}
		}
		// Substitution counts follow the same order.
		var counts []int
		for _, a := range analyses {
			counts = append(counts, a.Substitute().Total)
		}
		for i := 0; i+1 < len(counts); i++ {
			if counts[i] > counts[i+1] {
				t.Fatalf("seed %d: substitution hierarchy violated: %v\n%s", seed, counts, src)
			}
		}
	}
}

// TestMODAndRJFMonotonicityOnRandomPrograms: adding MOD information or
// return jump functions can only improve the solution.
func TestMODAndRJFMonotonicityOnRandomPrograms(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		prog, src := genProgram(t, gen.Config{Seed: int64(seed*17 + 5)})
		base := jump.Config{Kind: jump.Polynomial, UseMOD: false, UseReturnJFs: false}
		withMod := base
		withMod.UseMOD = true
		withBoth := withMod
		withBoth.UseReturnJFs = true

		aBase := AnalyzeProgram(prog, Config{Jump: base})
		aMod := AnalyzeProgram(prog, Config{Jump: withMod})
		aBoth := AnalyzeProgram(prog, Config{Jump: withBoth})

		check := func(lo, hi *Analysis, what string) {
			t.Helper()
			for _, p := range prog.Order {
				for fi := range p.Formals {
					if !lattice.Leq(lo.Vals.Formal(p, fi), hi.Vals.Formal(p, fi)) {
						t.Fatalf("seed %d: %s monotonicity violated on %s formal %d: %v vs %v\n%s",
							seed, what, p.Name, fi, lo.Vals.Formal(p, fi), hi.Vals.Formal(p, fi), src)
					}
				}
			}
		}
		check(aBase, aMod, "MOD")
		check(aMod, aBoth, "RJF")
	}
}

// TestSolverEquivalenceOnRandomPrograms: the worklist and binding-graph
// solvers must compute identical VAL sets.
func TestSolverEquivalenceOnRandomPrograms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		prog, src := genProgram(t, gen.Config{Seed: int64(seed*7 + 3)})
		for _, kind := range []jump.Kind{jump.Literal, jump.PassThrough, jump.Polynomial} {
			jc := jump.Config{Kind: kind, UseMOD: true, UseReturnJFs: true}
			aw := AnalyzeProgram(prog, Config{Jump: jc, Solver: SolverWorklist})
			ab := AnalyzeProgram(prog, Config{Jump: jc, Solver: SolverBinding})
			if !aw.Vals.Equal(ab.Vals) {
				t.Fatalf("seed %d kind %v: solvers disagree\nworklist:\n%s\nbinding:\n%s\n%s",
					seed, kind, aw.Vals, ab.Vals, src)
			}
		}
	}
}

// TestCompletePropagationMonotone: complete propagation finds at least
// the plain solution.
func TestCompletePropagationMonotone(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		prog, src := genProgram(t, gen.Config{Seed: int64(seed*13 + 1)})
		jc := jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true}
		plain := AnalyzeProgram(prog, Config{Jump: jc})
		complete := AnalyzeProgram(prog, Config{Jump: jc, Complete: true})
		for _, p := range prog.Order {
			for fi := range p.Formals {
				if !lattice.Leq(plain.Vals.Formal(p, fi), complete.Vals.Formal(p, fi)) {
					t.Fatalf("seed %d: complete propagation lost a constant on %s formal %d\n%s",
						seed, p.Name, fi, src)
				}
			}
		}
	}
}

// TestTransformedSourceStillSoundOnRandomPrograms: substituting the
// discovered constants into the text must not change program output.
func TestTransformedSourceStillSoundOnRandomPrograms(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		src := gen.Program(gen.Config{Seed: int64(seed*29 + 11)})
		var diags source.ErrorList
		f := parser.ParseSource("gen.f", src, &diags)
		prog := sem.Analyze(f, &diags)
		if diags.HasErrors() {
			t.Fatal(diags.Error())
		}
		input := []int64{1, 2, 3}
		before, err := interp.Run(prog, interp.Options{Input: input, MaxSteps: 1 << 19})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		a := AnalyzeProgram(prog, DefaultConfig())
		out := a.TransformedSource(f)

		var diags2 source.ErrorList
		f2 := parser.ParseSource("gen2.f", out, &diags2)
		prog2 := sem.Analyze(f2, &diags2)
		if diags2.HasErrors() {
			t.Fatalf("seed %d: transformed source invalid:\n%s\n%s", seed, diags2.Error(), out)
		}
		after, err := interp.Run(prog2, interp.Options{Input: input, MaxSteps: 1 << 19})
		if err != nil {
			t.Fatalf("seed %d: transformed execution: %v", seed, err)
		}
		if before.Output != after.Output {
			t.Fatalf("seed %d: substitution changed behaviour\nbefore:\n%s\nafter:\n%s\ntransformed source:\n%s",
				seed, before.Output, after.Output, out)
		}
	}
}

// TestStressLargerPrograms exercises bigger generated programs end to
// end (no assertions beyond not crashing and staying sound on spot
// checks).
func TestStressLargerPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := 0; seed < 5; seed++ {
		prog, _ := genProgram(t, gen.Config{Seed: int64(seed), NumProcs: 14, StmtsPerProc: 25, Globals: 4})
		a := AnalyzeProgram(prog, DefaultConfig())
		if a.Vals == nil {
			t.Fatal("nil values")
		}
		_ = a.Substitute()
	}
}
