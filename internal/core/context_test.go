package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/jump"
	"repro/internal/sem"
)

// mapContextMemo is a minimal thread-safe ContextMemo for tests (the
// production store lives in internal/memo, which this package cannot
// import).
type mapContextMemo struct {
	mu     sync.Mutex
	recs   map[*sem.Procedure]map[string]*ContextRecord
	hits   int
	stores int
}

func newMapContextMemo() *mapContextMemo {
	return &mapContextMemo{recs: make(map[*sem.Procedure]map[string]*ContextRecord)}
}

func (m *mapContextMemo) Lookup(p *sem.Procedure, key string) (*ContextRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[p][key]
	if ok {
		m.hits++
	}
	return rec, ok
}

func (m *mapContextMemo) Store(p *sem.Procedure, key string, rec *ContextRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recs[p] == nil {
		m.recs[p] = make(map[string]*ContextRecord)
	}
	m.recs[p][key] = rec
	m.stores++
}

// analysisFingerprint flattens everything propagation-derived that the
// public result surfaces: the VAL solution, every CONSTANTS set, and
// the substitution count.
func analysisFingerprint(a *Analysis) string {
	var b strings.Builder
	b.WriteString(a.Vals.String())
	for _, p := range a.Prog.Order {
		for _, c := range a.Constants(p) {
			fmt.Fprintf(&b, "%s:%s ref=%t;", p.Name, c, c.Referenced)
		}
	}
	fmt.Fprintf(&b, "subst=%d", a.Substitute().Total)
	return b.String()
}

// TestValueContextEquivalence proves that propagation with a value-
// context memo — both the recording pass and a fully warmed replay pass
// — produces identical solutions, statistics, and substitution counts
// to the memo-free solver, across every jump-function kind, both
// solvers, and serial/parallel construction. The warmed pass re-solves
// the same program, so every non-self-recursive step replays from the
// memo.
func TestValueContextEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.f"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata: %v", err)
	}
	kinds := []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial}
	solvers := []SolverKind{SolverWorklist, SolverBinding}
	for _, file := range files {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		for _, kind := range kinds {
			for _, solver := range solvers {
				for _, par := range []int{1, 4} {
					name := filepath.Base(file) + "/" + kind.String() + "/" + solver.String()
					if par > 1 {
						name += "/par"
					}
					t.Run(name, func(t *testing.T) {
						cfg := configFor(kind)
						cfg.Solver = solver
						cfg.Parallelism = par
						cold := analyzeSrc(t, src, cfg)
						want := analysisFingerprint(cold)
						wantStats := cold.Stats

						memo := newMapContextMemo()
						cfg.Contexts = memo
						recording := analyzeSrc(t, src, cfg)
						if got := analysisFingerprint(recording); got != want {
							t.Fatalf("recording pass diverged:\ngot  %q\nwant %q", got, want)
						}
						if recording.Stats != wantStats {
							t.Fatalf("recording stats = %+v, want %+v", recording.Stats, wantStats)
						}

						// The warmed pass must re-solve the same procedure
						// identities for the memo keys to match.
						warmed, err := AnalyzeProgramErr(context.Background(), recording.Prog, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if got := analysisFingerprint(warmed); got != want {
							t.Fatalf("warmed pass diverged:\ngot  %q\nwant %q", got, want)
						}
						if warmed.Stats != wantStats {
							t.Fatalf("warmed stats = %+v, want %+v", warmed.Stats, wantStats)
						}
						if solver == SolverWorklist && memo.stores > 0 && memo.hits == 0 {
							t.Fatalf("warmed worklist pass took no context hits (%d stores)", memo.stores)
						}
						if solver == SolverBinding && memo.hits+memo.stores > 0 {
							t.Fatalf("binding solver consulted the context memo (%d hits, %d stores)", memo.hits, memo.stores)
						}
					})
				}
			}
		}
	}
}

// TestValueContextCompleteDisabled proves complete propagation never
// consults the memo (its per-round pruning changes the site set).
func TestValueContextCompleteDisabled(t *testing.T) {
	srcBytes, err := os.ReadFile(filepath.Join("testdata", "classic.f"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := configFor(jump.Polynomial)
	cfg.Complete = true
	memo := newMapContextMemo()
	cfg.Contexts = memo
	a := analyzeSrc(t, string(srcBytes), cfg)
	if a == nil {
		t.Fatal("no analysis")
	}
	if memo.hits+memo.stores > 0 {
		t.Fatalf("complete propagation consulted the context memo (%d hits, %d stores)", memo.hits, memo.stores)
	}
}
