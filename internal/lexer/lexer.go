package lexer

import (
	"strings"

	"repro/internal/guard"
	"repro/internal/source"
)

// Lexer scans an F77s file into tokens.
type Lexer struct {
	file  *source.File
	src   string
	pos   int  // current byte offset
	atBOL bool // at beginning of a (logical) line: labels only valid here
	diags *source.ErrorList
}

// New returns a Lexer over the file, reporting problems to diags.
func New(file *source.File, diags *source.ErrorList) *Lexer {
	return &Lexer{file: file, src: file.Content, atBOL: true, diags: diags}
}

// Tokenize scans the entire file. The result always ends with an EOF
// token. Comment lines vanish; every non-empty statement line produces a
// trailing NEWLINE token.
func Tokenize(file *source.File, diags *source.ErrorList) []Token {
	defer guard.Repanic("lex")
	guard.InjectPanic("lex")
	lx := New(file, diags)
	// One token per ~6 source bytes is a close overestimate for F77;
	// sizing up front keeps the append from reallocating mid-scan.
	toks := make([]Token, 0, len(lx.src)/6+16)
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(off int, format string, args ...interface{}) {
	if l.diags != nil {
		l.diags.Errorf(l.file.Pos(off), format, args...)
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(k int) byte {
	if l.pos+k >= len(l.src) {
		return 0
	}
	return l.src[l.pos+k]
}

// skipBlanksAndComments advances over spaces, tabs, carriage returns, and
// whole comment lines. It stops at a newline (which is significant), at a
// token, or at EOF. Blank lines and comment lines are swallowed entirely,
// including their newlines, so they produce no NEWLINE tokens.
func (l *Lexer) skipBlanksAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '!':
			// Comment to end of line; the newline itself is handled by the
			// caller (it is significant only if the line had tokens).
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case (c == 'C' || c == 'c' || c == '*') && l.atBOL && l.atLineStartColumn() && l.isCommentIntroducer():
			// Classic comment: C or * in column 1 of a line, followed by
			// whitespace or end of line. The whitespace requirement keeps
			// free-form statements like `CALL F(X)` in column 1 working.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			if l.atBOL {
				// Blank (or comment-only) line: swallow silently.
				l.pos++
				continue
			}
			return // significant newline
		default:
			return
		}
	}
}

// atLineStartColumn reports whether pos is at column 1 of its line.
func (l *Lexer) atLineStartColumn() bool {
	return l.pos == 0 || l.src[l.pos-1] == '\n'
}

// isCommentIntroducer reports whether the character at pos begins a
// classic comment: followed by whitespace or end of line, and — for the
// letter C, which is also a perfectly good variable name — not the start
// of an assignment or array store ("C = 0", "C(I) = 1").
func (l *Lexer) isCommentIntroducer() bool {
	c := l.peekAt(1)
	if !(c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == 0) {
		return false
	}
	if l.src[l.pos] == '*' {
		return true // '*' can never start a statement in F77s
	}
	// Skip whitespace after the 'C' and look at the next glyph.
	for k := 1; l.pos+k < len(l.src); k++ {
		switch l.src[l.pos+k] {
		case ' ', '\t', '\r':
			continue
		case '=', '(':
			return false // an assignment to the variable C
		default:
			return true
		}
	}
	return true
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipBlanksAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Offset: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]

	if c == '\n' {
		l.pos++
		l.atBOL = true
		return Token{Kind: NEWLINE, Offset: start}
	}

	wasBOL := l.atBOL
	l.atBOL = false

	switch {
	case isDigit(c):
		return l.scanNumber(start, wasBOL)
	case isLetter(c):
		return l.scanWord(start)
	}

	switch c {
	case '.':
		// Either a .OP. spelling or a real literal like ".5".
		if isDigit(l.peekAt(1)) {
			return l.scanNumber(start, false)
		}
		return l.scanDotOperator(start)
	case '\'':
		return l.scanString(start)
	case '+':
		l.pos++
		return Token{Kind: PLUS, Text: "+", Offset: start}
	case '-':
		l.pos++
		return Token{Kind: MINUS, Text: "-", Offset: start}
	case '*':
		l.pos++
		if l.peek() == '*' {
			l.pos++
			return Token{Kind: POW, Text: "**", Offset: start}
		}
		return Token{Kind: STAR, Text: "*", Offset: start}
	case '/':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: NE, Text: "/=", Offset: start}
		}
		return Token{Kind: SLASH, Text: "/", Offset: start}
	case '(':
		l.pos++
		return Token{Kind: LPAREN, Text: "(", Offset: start}
	case ')':
		l.pos++
		return Token{Kind: RPAREN, Text: ")", Offset: start}
	case ',':
		l.pos++
		return Token{Kind: COMMA, Text: ",", Offset: start}
	case ':':
		l.pos++
		return Token{Kind: COLON, Text: ":", Offset: start}
	case '=':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: EQ, Text: "==", Offset: start}
		}
		return Token{Kind: ASSIGN, Text: "=", Offset: start}
	case '<':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: LE, Text: "<=", Offset: start}
		}
		return Token{Kind: LT, Text: "<", Offset: start}
	case '>':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: GE, Text: ">=", Offset: start}
		}
		return Token{Kind: GT, Text: ">", Offset: start}
	}

	l.pos++
	l.errorf(start, "unexpected character %q", string(c))
	return Token{Kind: ILLEGAL, Text: string(c), Offset: start}
}

func (l *Lexer) scanNumber(start int, wasBOL bool) Token {
	isReal := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	// A '.' makes it real — unless it begins a .OP. spelling
	// (e.g. "1.EQ.2"): look ahead for digits or exponent after the dot.
	if l.peek() == '.' {
		next := l.peekAt(1)
		if isDigit(next) || next == 0 || !isLetter(next) || isExponentStart(l.src[l.pos+1:]) {
			isReal = true
			l.pos++ // consume '.'
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	// Exponent part.
	if c := l.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		save := l.pos
		l.pos++
		if l.peek() == '+' || l.peek() == '-' {
			l.pos++
		}
		if isDigit(l.peek()) {
			isReal = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save // not an exponent (e.g. "10 ELEMENTS")
		}
	}
	text := l.src[start:l.pos]
	if isReal {
		return Token{Kind: REALLIT, Text: strings.ToUpper(text), Offset: start}
	}
	if wasBOL {
		return Token{Kind: LABEL, Text: text, Offset: start}
	}
	return Token{Kind: INTLIT, Text: text, Offset: start}
}

// isExponentStart reports whether s begins like the exponent of a real
// literal after a dot, e.g. "E5" in "1.E5".
func isExponentStart(s string) bool {
	if len(s) == 0 {
		return false
	}
	c := s[0]
	if c != 'e' && c != 'E' && c != 'd' && c != 'D' {
		return false
	}
	i := 1
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	return i < len(s) && isDigit(s[i])
}

func (l *Lexer) scanWord(start int) Token {
	for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.pos++
	}
	text := strings.ToUpper(l.src[start:l.pos])
	// Multi-word spellings: "ELSE IF", "END IF", "END DO", "GO TO",
	// "DOUBLE PRECISION" are normalized by the parser; here we only fold
	// single words.
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Offset: start}
	}
	return Token{Kind: IDENT, Text: text, Offset: start}
}

func (l *Lexer) scanDotOperator(start int) Token {
	l.pos++ // consume '.'
	wordStart := l.pos
	for l.pos < len(l.src) && isLetter(l.src[l.pos]) {
		l.pos++
	}
	word := strings.ToUpper(l.src[wordStart:l.pos])
	if l.peek() != '.' {
		l.errorf(start, "malformed .%s operator (missing closing dot)", word)
		return Token{Kind: ILLEGAL, Text: "." + word, Offset: start}
	}
	l.pos++ // consume trailing '.'
	k, ok := dotOperators[word]
	if !ok {
		l.errorf(start, "unknown operator .%s.", word)
		return Token{Kind: ILLEGAL, Text: "." + word + ".", Offset: start}
	}
	if k == LOGLIT {
		return Token{Kind: LOGLIT, Text: "." + word + ".", Offset: start}
	}
	return Token{Kind: k, Text: "." + word + ".", Offset: start}
}

func (l *Lexer) scanString(start int) Token {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\n' {
			break
		}
		if c == '\'' {
			if l.peekAt(1) == '\'' { // doubled quote escapes
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: STRING, Text: b.String(), Offset: start}
		}
		b.WriteByte(c)
		l.pos++
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: ILLEGAL, Text: b.String(), Offset: start}
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
