package lexer

import (
	"testing"

	"repro/internal/source"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	var diags source.ErrorList
	toks := Tokenize(source.NewFile("t.f", src), &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected diagnostics: %v", diags.Error())
	}
	return toks
}

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func expectKinds(t *testing.T, got []Token, want ...Kind) {
	t.Helper()
	gk := kinds(got)
	if len(gk) != len(want) {
		t.Fatalf("token count = %d, want %d\ngot:  %v\nwant: %v", len(gk), len(want), got, want)
	}
	for i := range gk {
		if gk[i] != want[i] {
			t.Fatalf("token %d = %v, want %v\nall: %v", i, gk[i], want[i], got)
		}
	}
}

func TestSimpleAssignment(t *testing.T) {
	toks := lex(t, "I = 42\n")
	expectKinds(t, toks, IDENT, ASSIGN, INTLIT, NEWLINE, EOF)
	if toks[0].Text != "I" || toks[2].Text != "42" {
		t.Errorf("texts wrong: %v", toks)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	toks := lex(t, "subroutine Foo(x)\n")
	expectKinds(t, toks, KwSubroutine, IDENT, LPAREN, IDENT, RPAREN, NEWLINE, EOF)
	if toks[1].Text != "FOO" || toks[3].Text != "X" {
		t.Errorf("identifiers not upper-cased: %v", toks)
	}
}

func TestOperators(t *testing.T) {
	toks := lex(t, "A = B ** 2 * C / D + E - F\n")
	expectKinds(t, toks, IDENT, ASSIGN, IDENT, POW, INTLIT, STAR, IDENT,
		SLASH, IDENT, PLUS, IDENT, MINUS, IDENT, NEWLINE, EOF)
}

func TestDotOperators(t *testing.T) {
	toks := lex(t, "IF (A .EQ. 1 .AND. B .NE. 2 .OR. .NOT. C) GOTO 10\n")
	expectKinds(t, toks, KwIf, LPAREN, IDENT, EQ, INTLIT, AND, IDENT, NE,
		INTLIT, OR, NOT, IDENT, RPAREN, KwGoto, INTLIT, NEWLINE, EOF)
}

func TestModernRelationalSpellings(t *testing.T) {
	toks := lex(t, "X = A == B\nY = A /= B\nZ = A <= B\nW = A >= B\nV = A < B\nU = A > B\n")
	want := []Kind{EQ, NE, LE, GE, LT, GT}
	var got []Kind
	for _, tok := range toks {
		if tok.Kind.IsRelational() {
			got = append(got, tok.Kind)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("relational ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntegerDotOperatorDisambiguation(t *testing.T) {
	// "1.EQ.2" must lex as INTLIT(1) .EQ. INTLIT(2), not a real literal.
	toks := lex(t, "L = 1.EQ.2\n")
	expectKinds(t, toks, IDENT, ASSIGN, INTLIT, EQ, INTLIT, NEWLINE, EOF)
}

func TestRealLiterals(t *testing.T) {
	cases := []struct{ src, text string }{
		{"X = 3.5\n", "3.5"},
		{"X = 1.\n", "1."},
		{"X = .5\n", ".5"},
		{"X = 1.0E-3\n", "1.0E-3"},
		{"X = 1.E5\n", "1.E5"},
		{"X = 2E10\n", "2E10"},
		{"X = 4.5D0\n", "4.5D0"},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		if toks[2].Kind != REALLIT {
			t.Errorf("%q: token = %v, want REALLIT", c.src, toks[2])
			continue
		}
		if toks[2].Text != c.text {
			t.Errorf("%q: text = %q, want %q", c.src, toks[2].Text, c.text)
		}
	}
}

func TestLogicalLiterals(t *testing.T) {
	toks := lex(t, "L = .TRUE.\nM = .false.\n")
	if toks[2].Kind != LOGLIT || toks[2].Text != ".TRUE." {
		t.Errorf("got %v", toks[2])
	}
	if toks[6].Kind != LOGLIT || toks[6].Text != ".FALSE." {
		t.Errorf("got %v", toks[6])
	}
}

func TestLabels(t *testing.T) {
	toks := lex(t, "10 CONTINUE\nGOTO 10\n")
	expectKinds(t, toks, LABEL, KwContinue, NEWLINE, KwGoto, INTLIT, NEWLINE, EOF)
	if toks[0].Text != "10" {
		t.Errorf("label text = %q", toks[0].Text)
	}
}

func TestLabelOnlyAtLineStart(t *testing.T) {
	toks := lex(t, "DO 10 I = 1, N\n")
	expectKinds(t, toks, KwDo, INTLIT, IDENT, ASSIGN, INTLIT, COMMA, IDENT, NEWLINE, EOF)
}

func TestIndentedLabel(t *testing.T) {
	toks := lex(t, "   20 X = 1\n")
	expectKinds(t, toks, LABEL, IDENT, ASSIGN, INTLIT, NEWLINE, EOF)
}

func TestComments(t *testing.T) {
	src := `C classic comment
* star comment
! modern comment
I = 1 ! trailing comment
c lower classic
J = 2
`
	toks := lex(t, src)
	expectKinds(t, toks, IDENT, ASSIGN, INTLIT, NEWLINE, IDENT, ASSIGN, INTLIT, NEWLINE, EOF)
}

func TestBlankLinesProduceNoNewlines(t *testing.T) {
	toks := lex(t, "\n\nI = 1\n\n\nJ = 2\n\n")
	expectKinds(t, toks, IDENT, ASSIGN, INTLIT, NEWLINE, IDENT, ASSIGN, INTLIT, NEWLINE, EOF)
}

func TestStrings(t *testing.T) {
	toks := lex(t, "PRINT *, 'hello ''world'''\n")
	expectKinds(t, toks, KwPrint, STAR, COMMA, STRING, NEWLINE, EOF)
	if toks[3].Text != "hello 'world'" {
		t.Errorf("string text = %q", toks[3].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	var diags source.ErrorList
	Tokenize(source.NewFile("t.f", "S = 'oops\n"), &diags)
	if !diags.HasErrors() {
		t.Error("expected diagnostic for unterminated string")
	}
}

func TestIllegalCharacter(t *testing.T) {
	var diags source.ErrorList
	toks := Tokenize(source.NewFile("t.f", "I = 1 @ 2\n"), &diags)
	if !diags.HasErrors() {
		t.Error("expected diagnostic for illegal character")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected an ILLEGAL token")
	}
}

func TestMalformedDotOperator(t *testing.T) {
	var diags source.ErrorList
	Tokenize(source.NewFile("t.f", "L = A .BOGUS. B\n"), &diags)
	if !diags.HasErrors() {
		t.Error("expected diagnostic for unknown dot operator")
	}
	var diags2 source.ErrorList
	Tokenize(source.NewFile("t.f", "L = A .EQ B\n"), &diags2)
	if !diags2.HasErrors() {
		t.Error("expected diagnostic for missing closing dot")
	}
}

func TestKeywords(t *testing.T) {
	src := "PROGRAM SUBROUTINE FUNCTION END INTEGER REAL LOGICAL COMMON PARAMETER CALL IF THEN ELSE ELSEIF ENDIF DO ENDDO GOTO CONTINUE RETURN STOP READ PRINT WRITE DIMENSION DATA\n"
	toks := lex(t, src)
	for _, tok := range toks[:len(toks)-2] {
		if !tok.Kind.IsKeyword() {
			t.Errorf("%v not lexed as keyword", tok)
		}
	}
}

func TestOffsetsTrackPositions(t *testing.T) {
	f := source.NewFile("t.f", "I = 1\nJJ = 22\n")
	var diags source.ErrorList
	toks := Tokenize(f, &diags)
	// Token "JJ" starts at offset 6 → line 2 col 1.
	for _, tok := range toks {
		if tok.Text == "JJ" {
			p := f.Pos(tok.Offset)
			if p.Line != 2 || p.Col != 1 {
				t.Errorf("JJ at %v, want 2:1", p)
			}
			return
		}
	}
	t.Fatal("JJ token not found")
}

func TestPowVsStarStar(t *testing.T) {
	toks := lex(t, "X = A**B\nY = A * (-B)\n")
	if toks[3].Kind != POW {
		t.Errorf("expected POW, got %v", toks[3])
	}
}

func TestKindString(t *testing.T) {
	if EOF.String() != "EOF" || POW.String() != "**" {
		t.Error("Kind.String broken")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still format")
	}
}

// TestColumnOneCDisambiguation: a column-1 'C' is a comment only when
// it cannot be an assignment to the variable C.
func TestColumnOneCDisambiguation(t *testing.T) {
	cases := []struct {
		src  string
		toks int // tokens excluding EOF
	}{
		{"C = 1\n", 4},          // assignment: C, =, 1, NEWLINE
		{"C(2) = 1\n", 7},       // array store: C ( 2 ) = 1 NEWLINE
		{"C comment line\n", 0}, // classic comment
		{"C\n", 0},              // bare C line: comment
		{"c lower case note\n", 0},
		{"* star comment\n", 0},
		{"C   = 5\n", 4}, // spaces before '=': still assignment
	}
	for _, c := range cases {
		var diags source.ErrorList
		toks := Tokenize(source.NewFile("t.f", c.src), &diags)
		if got := len(toks) - 1; got != c.toks {
			t.Errorf("%q: %d tokens, want %d (%v)", c.src, got, c.toks, toks)
		}
	}
}
