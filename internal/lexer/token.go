// Package lexer tokenizes F77s, the FORTRAN 77 subset analysed by this
// repository. The lexer is free-form and case-insensitive: keywords and
// identifiers are canonicalized to upper case, statements end at
// end-of-line (there is no semicolon), and both classic ('C' in column 1,
// '*' in column 1) and modern ('!') comments are recognized.
package lexer

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	// Special
	EOF Kind = iota
	NEWLINE
	ILLEGAL

	// Literals and names
	IDENT   // X, LOOPVAR
	INTLIT  // 42
	REALLIT // 3.5, 1.0E-3
	STRING  // 'hello'
	LOGLIT  // .TRUE. .FALSE.
	LABEL   // statement label: an integer in leading position

	// Operators and punctuation
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	LPAREN // (
	RPAREN // )
	COMMA  // ,
	ASSIGN // =
	COLON  // :

	// Relational operators (both .EQ. and == spellings normalize here)
	EQ // .EQ. ==
	NE // .NE. /=
	LT // .LT. <
	LE // .LE. <=
	GT // .GT. >
	GE // .GE. >=

	// Logical operators
	AND // .AND.
	OR  // .OR.
	NOT // .NOT.

	// Keywords
	KwProgram
	KwSubroutine
	KwFunction
	KwEnd
	KwInteger
	KwReal
	KwLogical
	KwDouble
	KwPrecision
	KwCommon
	KwParameter
	KwCall
	KwIf
	KwThen
	KwElse
	KwElseIf
	KwEndIf
	KwDo
	KwEndDo
	KwGoto
	KwContinue
	KwReturn
	KwStop
	KwRead
	KwPrint
	KwWrite
	KwDimension
	KwData
)

var kindNames = map[Kind]string{
	EOF: "EOF", NEWLINE: "end of line", ILLEGAL: "illegal token",
	IDENT: "identifier", INTLIT: "integer literal", REALLIT: "real literal",
	STRING: "string literal", LOGLIT: "logical literal", LABEL: "label",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", POW: "**",
	LPAREN: "(", RPAREN: ")", COMMA: ",", ASSIGN: "=", COLON: ":",
	EQ: ".EQ.", NE: ".NE.", LT: ".LT.", LE: ".LE.", GT: ".GT.", GE: ".GE.",
	AND: ".AND.", OR: ".OR.", NOT: ".NOT.",
	KwProgram: "PROGRAM", KwSubroutine: "SUBROUTINE", KwFunction: "FUNCTION",
	KwEnd: "END", KwInteger: "INTEGER", KwReal: "REAL", KwLogical: "LOGICAL",
	KwDouble: "DOUBLE", KwPrecision: "PRECISION",
	KwCommon: "COMMON", KwParameter: "PARAMETER", KwCall: "CALL",
	KwIf: "IF", KwThen: "THEN", KwElse: "ELSE", KwElseIf: "ELSEIF",
	KwEndIf: "ENDIF", KwDo: "DO", KwEndDo: "ENDDO", KwGoto: "GOTO",
	KwContinue: "CONTINUE", KwReturn: "RETURN", KwStop: "STOP",
	KwRead: "READ", KwPrint: "PRINT", KwWrite: "WRITE",
	KwDimension: "DIMENSION", KwData: "DATA",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps upper-cased identifier text to keyword kinds.
var keywords = map[string]Kind{
	"PROGRAM": KwProgram, "SUBROUTINE": KwSubroutine, "FUNCTION": KwFunction,
	"END": KwEnd, "INTEGER": KwInteger, "REAL": KwReal, "LOGICAL": KwLogical,
	"DOUBLE": KwDouble, "PRECISION": KwPrecision,
	"COMMON": KwCommon, "PARAMETER": KwParameter, "CALL": KwCall,
	"IF": KwIf, "THEN": KwThen, "ELSE": KwElse, "ELSEIF": KwElseIf,
	"ENDIF": KwEndIf, "DO": KwDo, "ENDDO": KwEndDo, "GOTO": KwGoto,
	"CONTINUE": KwContinue, "RETURN": KwReturn, "STOP": KwStop,
	"READ": KwRead, "PRINT": KwPrint, "WRITE": KwWrite,
	"DIMENSION": KwDimension, "DATA": KwData,
}

// dotOperators maps .XX. spellings to their kinds.
var dotOperators = map[string]Kind{
	"EQ": EQ, "NE": NE, "LT": LT, "LE": LE, "GT": GT, "GE": GE,
	"AND": AND, "OR": OR, "NOT": NOT,
	"TRUE": LOGLIT, "FALSE": LOGLIT,
}

// Token is one lexical token.
type Token struct {
	Kind   Kind
	Text   string // canonical (upper-cased for words) text
	Offset int    // byte offset in the file
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT, STRING, LOGLIT, LABEL, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// IsKeyword reports whether the kind is a language keyword.
func (k Kind) IsKeyword() bool { return k >= KwProgram && k <= KwData }

// IsRelational reports whether the kind is a relational comparison.
func (k Kind) IsRelational() bool { return k >= EQ && k <= GE }
