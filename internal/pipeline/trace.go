package pipeline

import (
	"sync"
	"time"
)

// PhaseStat is one phase's aggregated observations over a pipeline run:
// wall time, executions, units of work, memo hits, and degradation
// events. Phases that loop (complete-propagation rounds) accumulate.
type PhaseStat struct {
	// Phase is the phase name.
	Phase string `json:"phase"`
	// Wall is the total wall-clock time spent inside the phase. Phases
	// run sequentially, so summing Wall over a run's phases never
	// exceeds the run's total wall time.
	Wall time.Duration `json:"wall_ns"`
	// Runs counts executions (rounds, retries).
	Runs int64 `json:"runs"`
	// Units counts the phase's units of work: program units parsed,
	// procedures checked or built, jump-function evaluations solved,
	// files looked up.
	Units int64 `json:"units"`
	// MemoHits counts results the phase reused from an incremental-
	// analysis cache instead of recomputing.
	MemoHits int64 `json:"memo_hits"`
	// Degradations counts budget-driven fallback events attributed to
	// the phase.
	Degradations int64 `json:"degradations"`
}

// Trace collects per-phase observability for one pipeline run. All
// methods are safe for concurrent use and are no-ops on a nil receiver,
// so drivers thread a trace unconditionally and callers that do not
// observe pay (almost) nothing.
type Trace struct {
	mu    sync.Mutex
	order []string
	stats map[string]*PhaseStat
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{stats: make(map[string]*PhaseStat)}
}

// stat returns the named phase's accumulator, creating it in first-
// observation order. Caller holds t.mu.
func (t *Trace) stat(phase string) *PhaseStat {
	s := t.stats[phase]
	if s == nil {
		s = &PhaseStat{Phase: phase}
		t.stats[phase] = s
		t.order = append(t.order, phase)
	}
	return s
}

// Start begins timing one execution of the phase and returns the
// function that ends it, recording the wall time and one run.
func (t *Trace) Start(phase string) (stop func()) {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		t.mu.Lock()
		s := t.stat(phase)
		s.Wall += d
		s.Runs++
		t.mu.Unlock()
	}
}

// AddUnits credits n units of work to the phase.
func (t *Trace) AddUnits(phase string, n int) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.stat(phase).Units += int64(n)
	t.mu.Unlock()
}

// MemoHit records one memoized reuse in the phase.
func (t *Trace) MemoHit(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stat(phase).MemoHits++
	t.mu.Unlock()
}

// Degradation records one budget-driven fallback attributed to the
// phase (the pipeline site that exhausted its budget).
func (t *Trace) Degradation(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stat(phase).Degradations++
	t.mu.Unlock()
}

// Snapshot returns the per-phase statistics in first-observation order.
// It is a copy: the trace may keep accumulating.
func (t *Trace) Snapshot() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseStat, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.stats[name])
	}
	return out
}
