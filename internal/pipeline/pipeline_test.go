package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
)

type state struct {
	log   []string
	trace *Trace
	chk   *guard.Checker
}

func logging(tag string) Middleware[*state] {
	return func(phase string, next RunFunc[*state]) RunFunc[*state] {
		return func(ctx context.Context, s *state) error {
			s.log = append(s.log, tag+">"+phase)
			err := next(ctx, s)
			s.log = append(s.log, tag+"<"+phase)
			return err
		}
	}
}

func TestRunOrderAndMiddlewareNesting(t *testing.T) {
	mk := func(name string) Phase[*state] {
		return Phase[*state]{Name: name, Run: func(ctx context.Context, s *state) error {
			s.log = append(s.log, name)
			return nil
		}}
	}
	pl := New(mk("a").With(logging("local")), mk("b")).Use(logging("outer"), logging("inner"))
	st := &state{}
	if err := pl.Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"outer>a", "inner>a", "local>a", "a", "local<a", "inner<a", "outer<a",
		"outer>b", "inner>b", "b", "inner<b", "outer<b",
	}
	if got := strings.Join(st.log, " "); got != strings.Join(want, " ") {
		t.Fatalf("order mismatch:\n got %s\nwant %s", got, strings.Join(want, " "))
	}
}

func TestRunStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := []string{}
	mk := func(name string, err error) Phase[*state] {
		return Phase[*state]{Name: name, Run: func(ctx context.Context, s *state) error {
			ran = append(ran, name)
			return err
		}}
	}
	err := New(mk("a", nil), mk("b", boom), mk("c", nil)).Run(context.Background(), &state{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if strings.Join(ran, " ") != "a b" {
		t.Fatalf("ran %v, want [a b]", ran)
	}
}

func TestSkipElidesPhaseAndMiddleware(t *testing.T) {
	st := &state{trace: NewTrace()}
	ph := Phase[*state]{
		Name: "skipped",
		Run:  func(ctx context.Context, s *state) error { t.Fatal("run called"); return nil },
		Skip: func(s *state) bool { return true },
	}
	pl := New(ph).Use(Timed(func(s *state) *Trace { return s.trace }))
	if err := pl.Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if stats := st.trace.Snapshot(); len(stats) != 0 {
		t.Fatalf("skipped phase was traced: %+v", stats)
	}
}

func TestAttributedNamesThePhase(t *testing.T) {
	ph := Phase[*state]{Name: "solve", Run: func(ctx context.Context, s *state) error {
		panic("kaboom")
	}}
	pl := New(ph).Use(Attributed[*state]())
	defer func() {
		r := recover()
		pe, ok := r.(*guard.PanicError)
		if !ok {
			t.Fatalf("recovered %T %v, want *guard.PanicError", r, r)
		}
		if pe.Site != "solve" {
			t.Fatalf("Site = %q, want solve", pe.Site)
		}
	}()
	_ = pl.Run(context.Background(), &state{})
}

func TestAttributedPreservesInnerAttribution(t *testing.T) {
	ph := Phase[*state]{Name: "outerphase", Run: func(ctx context.Context, s *state) error {
		defer guard.Repanic("innerphase", "unit9")
		panic("kaboom")
	}}
	pl := New(ph).Use(Attributed[*state]())
	defer func() {
		pe, ok := recover().(*guard.PanicError)
		if !ok || pe.Site != "innerphase" || pe.Unit != "unit9" {
			t.Fatalf("got %+v, want innermost attribution innerphase/unit9", pe)
		}
	}()
	_ = pl.Run(context.Background(), &state{})
}

func TestGuardedDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := &state{chk: guard.NewChecker(ctx, guard.Budget{})}
	ran := false
	ph := Phase[*state]{Name: "jump", Run: func(ctx context.Context, s *state) error {
		ran = true
		return nil
	}}
	pl := New(ph).Use(Guarded(func(s *state) *guard.Checker { return s.chk }))
	err := pl.Run(ctx, st)
	var ex *guard.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *guard.Exhausted", err)
	}
	if ex.Site != "jump" || ex.Axis != guard.AxisDeadline {
		t.Fatalf("exhausted at %s/%s, want jump/deadline", ex.Site, ex.Axis)
	}
	if ran {
		t.Fatal("phase ran past a dead context")
	}

	// A nil checker checks nothing.
	st2 := &state{}
	if err := pl.Run(context.Background(), st2); err != nil {
		t.Fatalf("nil checker: %v", err)
	}
}

func TestTraceAccounting(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		stop := tr.Start("solve")
		time.Sleep(time.Millisecond)
		stop()
	}
	tr.AddUnits("solve", 5)
	tr.AddUnits("solve", 2)
	tr.AddUnits("solve", 0) // no-op, must not disturb counts
	tr.MemoHit("jump")
	tr.Degradation("jump")
	tr.Degradation("jump")

	stats := tr.Snapshot()
	if len(stats) != 2 || stats[0].Phase != "solve" || stats[1].Phase != "jump" {
		t.Fatalf("snapshot order = %+v, want [solve jump]", stats)
	}
	s := stats[0]
	if s.Runs != 3 || s.Units != 7 || s.Wall <= 0 {
		t.Fatalf("solve stat = %+v", s)
	}
	j := stats[1]
	if j.MemoHits != 1 || j.Degradations != 2 || j.Runs != 0 {
		t.Fatalf("jump stat = %+v", j)
	}

	// Snapshot is a copy.
	stats[0].Runs = 99
	if tr.Snapshot()[0].Runs != 3 {
		t.Fatal("snapshot aliases the live stat")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Start("x")()
	tr.AddUnits("x", 1)
	tr.MemoHit("x")
	tr.Degradation("x")
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot not nil")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			phase := fmt.Sprintf("p%d", g%2)
			for i := 0; i < 100; i++ {
				stop := tr.Start(phase)
				tr.AddUnits(phase, 1)
				stop()
			}
		}(g)
	}
	wg.Wait()
	var runs, units int64
	for _, s := range tr.Snapshot() {
		runs += s.Runs
		units += s.Units
	}
	if runs != 800 || units != 800 {
		t.Fatalf("runs=%d units=%d, want 800/800", runs, units)
	}
}

func TestRunPhaseDynamicLoop(t *testing.T) {
	st := &state{trace: NewTrace()}
	round := Phase[*state]{Name: "round", Run: func(ctx context.Context, s *state) error { return nil }}
	pl := New[*state]().Use(Timed(func(s *state) *Trace { return s.trace }))
	for i := 0; i < 4; i++ {
		if err := pl.RunPhase(context.Background(), round, st); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.trace.Snapshot()
	if len(stats) != 1 || stats[0].Runs != 4 {
		t.Fatalf("stats = %+v, want one phase with 4 runs", stats)
	}
}
