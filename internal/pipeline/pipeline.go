// Package pipeline is the analyzer's pass manager. Every driver in the
// repository — the public ipcp entry points, the core interprocedural
// driver, and the analysis service's per-request execution — expresses
// its orchestration as an ordered sequence of Phase values run through
// one of these pipelines, instead of hand-threading the cross-cutting
// concerns (panic attribution, deadline checks, timing, memo hooks,
// retries) at every call site.
//
// A Phase is a named unit of work over a driver-chosen state type S.
// Cross-cutting behavior is attached as Middleware, which wraps a
// phase's run function and receives the phase name for attribution:
//
//	pl := pipeline.New(parse, sem, analyze).
//		Use(pipeline.Attributed[*state]())
//	err := pl.Run(ctx, st)
//
// Drivers with dynamic control flow — the complete-propagation round
// loop, the service's retry ladder, the cloning driver — keep their
// loops but run each iteration's phases through RunPhase, so every
// execution of a phase passes the same middleware stack and lands in
// the same Trace.
package pipeline

import (
	"context"

	"repro/internal/guard"
)

// RunFunc is the body of one phase over the pipeline's shared state.
type RunFunc[S any] func(ctx context.Context, s S) error

// Middleware wraps a phase's run function with a cross-cutting concern.
// It receives the phase name so timing, attribution, and budget errors
// can name the phase they apply to.
type Middleware[S any] func(phase string, next RunFunc[S]) RunFunc[S]

// Phase is one named pass of a pipeline.
type Phase[S any] struct {
	// Name identifies the phase in traces, panic attribution, and
	// budget-exhaustion errors.
	Name string
	// Run does the work. A non-nil error stops the pipeline.
	Run RunFunc[S]
	// Skip, when non-nil and true at run time, elides the phase (it is
	// neither run nor traced). Used for conditional passes such as the
	// front end when a memoized world already supplies the program.
	Skip func(s S) bool

	mw []Middleware[S]
}

// With returns a copy of the phase with phase-local middleware
// attached. Phase-local middleware runs inside the pipeline-wide stack:
// pipeline middleware sees the wrapped phase.
func (p Phase[S]) With(mw ...Middleware[S]) Phase[S] {
	p.mw = append(append([]Middleware[S]{}, p.mw...), mw...)
	return p
}

// wrap applies a middleware stack so that the first element is
// outermost.
func wrap[S any](name string, run RunFunc[S], mw []Middleware[S]) RunFunc[S] {
	for i := len(mw) - 1; i >= 0; i-- {
		run = mw[i](name, run)
	}
	return run
}

// Pipeline is an ordered sequence of phases sharing one middleware
// stack. The zero value is usable; New and Use exist for fluent
// construction. A Pipeline is immutable once built and safe to share.
type Pipeline[S any] struct {
	phases []Phase[S]
	mw     []Middleware[S]
}

// New returns a pipeline over the given phases.
func New[S any](phases ...Phase[S]) *Pipeline[S] {
	return &Pipeline[S]{phases: phases}
}

// Use appends pipeline-wide middleware; earlier middleware is
// outermost. It returns the pipeline for chaining.
func (p *Pipeline[S]) Use(mw ...Middleware[S]) *Pipeline[S] {
	p.mw = append(p.mw, mw...)
	return p
}

// Run executes the phases in order, stopping at the first error.
func (p *Pipeline[S]) Run(ctx context.Context, s S) error {
	for _, ph := range p.phases {
		if err := p.RunPhase(ctx, ph, s); err != nil {
			return err
		}
	}
	return nil
}

// RunPhase executes one phase through the pipeline's middleware stack —
// the escape hatch for drivers whose control flow is dynamic (round
// loops, retry ladders): they own the loop, the pipeline owns the
// cross-cutting concerns.
func (p *Pipeline[S]) RunPhase(ctx context.Context, ph Phase[S], s S) error {
	if ph.Skip != nil && ph.Skip(s) {
		return nil
	}
	return wrap(ph.Name, wrap(ph.Name, ph.Run, ph.mw), p.mw)(ctx, s)
}

// ---------------------------------------------------------------------
// Standard middleware

// Attributed converts a panic escaping the phase into a re-panicked
// *guard.PanicError named after the phase. Phases that already attribute
// internally (the front end, jump construction, the solvers) are
// unaffected: Repanic preserves the innermost attribution.
func Attributed[S any]() Middleware[S] {
	return func(phase string, next RunFunc[S]) RunFunc[S] {
		return func(ctx context.Context, s S) error {
			defer guard.Repanic(phase)
			return next(ctx, s)
		}
	}
}

// Timed records each execution's wall time (and a run count) into the
// trace resolved from the state. A nil trace records nothing.
func Timed[S any](trace func(S) *Trace) Middleware[S] {
	return func(phase string, next RunFunc[S]) RunFunc[S] {
		return func(ctx context.Context, s S) error {
			stop := trace(s).Start(phase)
			err := next(ctx, s)
			stop()
			return err
		}
	}
}

// Guarded pre-checks the deadline axis before running the phase,
// attributing exhaustion to the phase name — the same *guard.Exhausted
// the phase's own inline checks produce, so a dead context surfaces
// identically whether it dies before or during the phase. A nil checker
// checks nothing.
func Guarded[S any](chk func(S) *guard.Checker) Middleware[S] {
	return func(phase string, next RunFunc[S]) RunFunc[S] {
		return func(ctx context.Context, s S) error {
			if err := chk(s).Deadline(phase); err != nil {
				return err
			}
			return next(ctx, s)
		}
	}
}
