package session

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jump"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// twoChains has two independent call chains under MAIN, so an edit in
// one chain leaves reusable artifacts in the other:
// MAIN -> TOP -> LEAF and MAIN -> OTHER.
const twoChains = `PROGRAM MAIN
CALL TOP(8, 3)
CALL OTHER(5)
END

SUBROUTINE TOP(N, M)
INTEGER N, M
CALL LEAF(N, M)
END

SUBROUTINE LEAF(N, M)
INTEGER N, M
PRINT *, N + M
END

SUBROUTINE OTHER(K)
INTEGER K
PRINT *, K * 2
END
`

func testConfig(par int) core.Config {
	return core.Config{
		Jump:        jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true},
		Parallelism: par,
	}
}

// coldFingerprint analyzes src from scratch and flattens everything the
// public result surfaces: the VAL solution, the substitution count, and
// the fully substituted rendering. Front-end failures collapse to an
// error marker (sessions must fail on exactly the same inputs).
func coldFingerprint(t *testing.T, src string, cfg core.Config) string {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseFile(source.NewFile("prog.f", src), &diags)
	prog, err := sem.AnalyzeParallelCtx(nil, f, &diags, cfg.Parallelism)
	if err == nil {
		err = diags.Err()
	}
	if err != nil {
		return "ERR"
	}
	a, err := core.AnalyzeProgramErr(context.Background(), prog, cfg)
	if err != nil {
		t.Fatalf("cold analysis: %v", err)
	}
	sub := a.Substitute()
	return fmt.Sprintf("%s|%d|%s", a.Vals.String(), sub.Total, core.RenderSubstituted(f, sub))
}

func sessionFingerprint(t *testing.T, s *Session) string {
	t.Helper()
	a, f, sub, _, err := s.Snapshot()
	if err != nil {
		return "ERR"
	}
	return fmt.Sprintf("%s|%d|%s", a.Vals.String(), sub.Total, core.RenderSubstituted(f, sub))
}

func mustEqualCold(t *testing.T, s *Session, cfg core.Config, when string) {
	t.Helper()
	got := sessionFingerprint(t, s)
	want := coldFingerprint(t, s.Source(), cfg)
	if got != want {
		t.Fatalf("%s: session diverged from cold analysis\ngot  %q\nwant %q", when, got, want)
	}
}

// TestSessionFastPathEquivalence drives a session through fast-path
// replaces and checks byte-identity with a cold analysis of the
// concatenated text after every step, at parallelism 1 and 4.
func TestSessionFastPathEquivalence(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			cfg := testConfig(par)
			s, err := Open(context.Background(), "prog.f", twoChains, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumUnits() != 4 {
				t.Fatalf("NumUnits = %d, want 4", s.NumUnits())
			}
			mustEqualCold(t, s, cfg, "after open")

			// Same-line-count body edit of LEAF (unit 2).
			leaf := strings.Replace(s.units[2], "N + M", "N * M", 1)
			info, err := s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 2, Text: leaf}})
			if err != nil {
				t.Fatal(err)
			}
			if !info.FastPath {
				t.Fatalf("LEAF edit took the slow path: %+v", info)
			}
			// Blast radius: LEAF plus transitive callers TOP and MAIN.
			if info.UnitsInvalidated != 3 {
				t.Fatalf("LEAF blast = %d, want 3", info.UnitsInvalidated)
			}
			if info.JumpReused != 1 {
				t.Fatalf("LEAF edit reused %d jump artifacts, want 1 (OTHER)", info.JumpReused)
			}
			mustEqualCold(t, s, cfg, "after LEAF edit")

			// Last-unit edit may change the line count.
			other := strings.Replace(s.units[3], "PRINT *, K * 2", "PRINT *, K * 2\nPRINT *, K + 7", 1)
			info, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 3, Text: other}})
			if err != nil {
				t.Fatal(err)
			}
			if !info.FastPath {
				t.Fatalf("OTHER edit took the slow path: %+v", info)
			}
			if info.UnitsInvalidated != 2 {
				t.Fatalf("OTHER blast = %d, want 2 (OTHER, MAIN)", info.UnitsInvalidated)
			}
			if info.JumpReused != 2 {
				t.Fatalf("OTHER edit reused %d jump artifacts, want 2 (TOP, LEAF)", info.JumpReused)
			}
			mustEqualCold(t, s, cfg, "after OTHER edit")

			// No-op replace: nothing to invalidate, nothing re-analyzed.
			info, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 1, Text: s.units[1]}})
			if err != nil {
				t.Fatal(err)
			}
			if !info.FastPath || info.UnitsInvalidated != 0 {
				t.Fatalf("no-op replace: %+v", info)
			}
			mustEqualCold(t, s, cfg, "after no-op edit")

			st := s.Stats()
			if st.FastEdits < 3 || st.FullRebuilds != 1 {
				t.Fatalf("stats = %+v, want >=3 fast edits and exactly 1 rebuild", st)
			}
			if st.ContextHits == 0 {
				t.Fatalf("no value-context replays across edits: %+v", st)
			}
		})
	}
}

// TestSessionRebuildPaths exercises the deltas that must fall back to a
// full rebuild — add, delete, and an interface-changing replace — and
// checks cold equivalence after each.
func TestSessionRebuildPaths(t *testing.T) {
	cfg := testConfig(1)
	s, err := Open(context.Background(), "prog.f", twoChains, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Add a new unit and call it from MAIN in one batch.
	main := strings.Replace(s.units[0], "CALL OTHER(5)", "CALL OTHER(5)\nCALL EXTRA(9)", 1)
	extra := "\nSUBROUTINE EXTRA(J)\nINTEGER J\nPRINT *, J - 1\nEND\n"
	info, err := s.Apply(context.Background(), []Edit{
		{Op: OpAdd, Index: 4, Text: extra},
		{Op: OpReplace, Index: 0, Text: main},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.FastPath {
		t.Fatal("add took the fast path")
	}
	if s.NumUnits() != 5 {
		t.Fatalf("NumUnits = %d, want 5", s.NumUnits())
	}
	mustEqualCold(t, s, cfg, "after add")

	// Interface change (arity): sem.ReplaceUnit must reject it and the
	// rebuild must still converge.
	leaf2 := "SUBROUTINE LEAF(N, M, P)\nINTEGER N, M, P\nPRINT *, N + M\nEND\n\n"
	if _, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 2, Text: leaf2}}); err == nil {
		t.Fatal("arity-changing edit produced no error (MIDDLE's call is now wrong)")
	}
	if _, _, _, _, serr := s.Snapshot(); serr == nil {
		t.Fatal("Snapshot after broken edit returned no error")
	}
	mustEqualCold(t, s, cfg, "after broken edit")

	// Repair it; the session must converge again even from error state.
	leaf3 := "SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N - M\nEND\n\n"
	if _, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 2, Text: leaf3}}); err != nil {
		t.Fatal(err)
	}
	mustEqualCold(t, s, cfg, "after repair")

	// Delete the EXTRA unit and drop its call site in the same batch.
	info, err = s.Apply(context.Background(), []Edit{
		{Op: OpReplace, Index: 0, Text: strings.Replace(s.units[0], "\nCALL EXTRA(9)", "", 1)},
		{Op: OpDelete, Index: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumUnits() != 4 {
		t.Fatalf("NumUnits = %d, want 4", s.NumUnits())
	}
	mustEqualCold(t, s, cfg, "after delete")

	// Invalid index leaves the session untouched.
	before := sessionFingerprint(t, s)
	if _, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 99, Text: "X"}}); err == nil {
		t.Fatal("out-of-range edit succeeded")
	}
	if got := sessionFingerprint(t, s); got != before {
		t.Fatal("failed edit mutated the session")
	}
}

// TestSessionSyntaxErrorState checks that a parse-breaking edit puts
// the session in the same error state a cold analysis of the final text
// would produce, and that a later edit repairs it.
func TestSessionSyntaxErrorState(t *testing.T) {
	cfg := testConfig(1)
	s, err := Open(context.Background(), "prog.f", twoChains, cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := s.units[3]
	bad := "SUBROUTINE OTHER(K\nINTEGER K\nPRINT *, K * 2\nEND\n"
	if _, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 3, Text: bad}}); err == nil {
		t.Fatal("syntax-breaking edit produced no error")
	}
	if want := coldFingerprint(t, s.Source(), cfg); want != "ERR" {
		t.Fatalf("cold analysis of broken text did not fail: %q", want)
	}
	if _, err = s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 3, Text: good}}); err != nil {
		t.Fatal(err)
	}
	mustEqualCold(t, s, cfg, "after repair")
}

// TestSessionCompleteMode checks that complete propagation never uses
// the fast path's artifact reuse yet still matches cold analysis.
func TestSessionCompleteMode(t *testing.T) {
	cfg := testConfig(1)
	cfg.Complete = true
	s, err := Open(context.Background(), "prog.f", twoChains, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualCold(t, s, cfg, "after open")
	leaf := strings.Replace(s.units[2], "N + M", "N * M", 1)
	info, err := s.Apply(context.Background(), []Edit{{Op: OpReplace, Index: 2, Text: leaf}})
	if err != nil {
		t.Fatal(err)
	}
	if info.FastPath {
		t.Fatal("complete-mode edit took the fast path")
	}
	mustEqualCold(t, s, cfg, "after edit")
}

// TestReplaceUnitInterfaceGate checks sem.ReplaceUnit directly: body
// edits pass, interface edits are rejected with the program unchanged.
func TestReplaceUnitInterfaceGate(t *testing.T) {
	var diags source.ErrorList
	f := parser.ParseFile(source.NewFile("prog.f", twoChains), &diags)
	prog, err := sem.AnalyzeParallelCtx(nil, f, &diags, 1)
	if err != nil || diags.Err() != nil {
		t.Fatalf("seed program broken: %v %v", err, diags.Err())
	}
	// Body-only replacement of OTHER (index 3) succeeds in place.
	var d1 source.ErrorList
	pf := parser.ParseFile(source.NewFile("prog.f", "SUBROUTINE OTHER(K)\nINTEGER K\nPRINT *, K * 3\nEND\n"), &d1)
	if d1.Err() != nil || len(pf.Units) != 1 {
		t.Fatalf("bad replacement unit: %v", d1.Err())
	}
	oldTop := prog.Procs["TOP"]
	var rdiags source.ErrorList
	p, ok := prog.ReplaceUnit(3, pf.Units[0], &rdiags)
	if !ok || p == nil || len(rdiags.Diags) > 0 {
		t.Fatalf("body replacement rejected: ok=%v diags=%v", ok, rdiags.Diags)
	}
	if prog.Procs["TOP"] != oldTop {
		t.Fatal("untouched procedure lost identity")
	}
	if prog.Order[3] != p || prog.Procs["OTHER"] != p {
		t.Fatal("program maps not updated")
	}

	// Arity change is rejected, program untouched.
	var d2 source.ErrorList
	pf2 := parser.ParseFile(source.NewFile("prog.f", "SUBROUTINE OTHER(K, L)\nINTEGER K, L\nPRINT *, K\nEND\n"), &d2)
	if d2.Err() != nil || len(pf2.Units) != 1 {
		t.Fatalf("bad replacement unit: %v", d2.Err())
	}
	var rdiags2 source.ErrorList
	if _, ok := prog.ReplaceUnit(3, pf2.Units[0], &rdiags2); ok {
		t.Fatal("arity-changing replacement accepted")
	}
	if prog.Procs["OTHER"] != p {
		t.Fatal("rejected replacement mutated the program")
	}
}
