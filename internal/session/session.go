// Package session implements stateful compiler-daemon sessions: delta
// edits over a resident, already-analyzed program.
//
// A session holds one program as a list of per-unit source texts plus
// every artifact of its last analysis — the parsed AST, the semantic
// Program, per-procedure CFGs, jump functions, substitution decisions,
// and the value-context store — all keyed by live pointers, not content
// hashes. A replace-unit delta re-analyzes exactly one unit in place
// (sem.ReplaceUnit), invalidates only along the edited procedure's
// transitive caller chain (the "blast radius"), and reuses every other
// procedure's artifacts directly. This is what drives warm-one-edit
// latency toward warm-identical: the content-addressed cache (package
// memo) must re-split, re-hash, and re-link artifacts into each
// analysis, while a session skips all of that because identity is
// preserved by construction.
//
// Soundness of the blast radius: a procedure's jump functions are built
// from its own body plus its transitive callees' return summaries and
// MOD sets, so the artifacts an edit of E can invalidate belong exactly
// to E and E's transitive callers. A procedure outside that set cannot
// call into it (if p calls q and q is E or a transitive caller of E,
// then p is a transitive caller of E too), so its callee closure — and
// with it its jump functions, substitution decisions, and recorded
// value contexts — is untouched. MOD/REF summaries are cheap and are
// recomputed whole every edit.
//
// Cross-builder discipline: reused jump-function expressions were
// interned by an earlier analysis's builders. That is safe under the
// repo's standing invariant that expressions cross builders only
// through symbolic.Builder.Substitute (which re-interns) or through
// symbolic.Eval (which is purely structural); the session never feeds a
// foreign expression to an interning constructor directly.
//
// Fast-path gates (everything else falls back to a full rebuild, which
// can cost time but never correctness):
//   - the previous analysis was clean: no diagnostics, no degradations,
//     and not complete-propagation mode;
//   - the delta is a replace whose unit parses alone to exactly one
//     clean unit;
//   - the replacement preserves the unit's interface (name, kind,
//     formals, result type, COMMON layout — verified by
//     sem.ReplaceUnit, because callers are not re-checked);
//   - the replacement preserves the unit's line count (or edits the
//     last unit), so every retained AST position matches what a cold
//     parse of the full text would produce.
package session

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jump"
	"repro/internal/memo"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/subst"
	"repro/internal/symbolic"
)

// Op is a delta operation kind.
type Op string

// The delta operations: replace the unit at Index with Text, insert
// Text as a new unit at Index, or delete the unit at Index. Only
// replace can take the fast path; add and delete restructure the unit
// list and always rebuild.
const (
	OpReplace Op = "replace"
	OpAdd     Op = "add"
	OpDelete  Op = "delete"
)

// Edit is one delta against the session's unit list.
type Edit struct {
	Op    Op
	Index int
	Text  string
}

// EditError reports an invalid delta — unknown op, out-of-range index,
// or an empty edit list. The session is unchanged; callers map this to
// a client error rather than an analysis failure.
type EditError struct{ msg string }

func (e *EditError) Error() string { return e.msg }

func editErrorf(format string, args ...interface{}) *EditError {
	return &EditError{msg: fmt.Sprintf(format, args...)}
}

// Stats are the session's cumulative counters.
type Stats struct {
	// Edits counts delta operations applied.
	Edits int64
	// FastEdits counts Apply calls served entirely by the fast path.
	FastEdits int64
	// FullRebuilds counts full re-analyses (including the opening one).
	FullRebuilds int64
	// UnitsInvalidated accumulates blast-radius sizes across fast edits.
	UnitsInvalidated int64
	// JumpReused / SubstReused accumulate per-procedure artifacts reused
	// in place across analyses.
	JumpReused  int64
	SubstReused int64
	// ContextHits / ContextMisses are the value-context store's counters.
	ContextHits   uint64
	ContextMisses uint64
	// DeltaBytes accumulates the raw size of all edit payloads.
	DeltaBytes int64
}

// EditInfo reports what one Apply call did.
type EditInfo struct {
	// FastPath is true when every edit in the call avoided a rebuild.
	FastPath bool
	// UnitsInvalidated is the total blast-radius size (fast path) or the
	// whole program size (rebuild).
	UnitsInvalidated int
	// ContextsReused counts value-context replays during the re-analysis.
	ContextsReused int
	// JumpReused / SubstReused count per-procedure artifacts reused.
	JumpReused  int
	SubstReused int
	// DeltaBytes is the raw size of the call's edit payloads.
	DeltaBytes int
}

// substArt is one procedure's retained substitution decision, valid
// while the procedure is outside every subsequent blast radius and its
// constant entry environment fingerprints identically.
type substArt struct {
	count    int
	repl     map[ast.Expr]string
	entryKey string
}

// Session is one resident program. It is not safe for concurrent use;
// the public wrapper (package ipcp) serializes access.
type Session struct {
	name string
	cfg  core.Config

	// units holds the per-unit source texts; their concatenation is the
	// program text (cold-analysis equivalence is always stated against
	// that concatenation).
	units []string

	file  *ast.File
	prog  *sem.Program
	graph *callgraph.Graph
	mod   *modref.Info

	jf      map[*sem.Procedure]*jump.ProcMemo
	subArts map[*sem.Procedure]*substArt
	ctxs    *memo.ContextStore

	analysis *core.Analysis
	subRes   *subst.Result
	front    []string
	resErr   error

	// clean gates the fast path: the last analysis completed with no
	// diagnostics, no degradations, and artifacts were captured.
	clean bool
	// aligned records that units, file.Units, and prog.Order correspond
	// index-for-index.
	aligned bool

	stats Stats
}

// Open creates a session over a program and runs its first analysis.
// An input with front-end errors fails the open (mirroring a cold
// analysis of the same text).
func Open(ctx context.Context, name, src string, cfg core.Config) (*Session, error) {
	// The session owns its hook wiring; a caller-supplied cache or trace
	// would break the identity-reuse discipline.
	cfg.Hooks = nil
	cfg.Trace = nil
	cfg.Contexts = nil
	s := &Session{
		name:    name,
		cfg:     cfg,
		ctxs:    memo.NewContextStore(),
		jf:      make(map[*sem.Procedure]*jump.ProcMemo),
		subArts: make(map[*sem.Procedure]*substArt),
	}
	s.setUnits(src)
	if err := s.rebuild(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// setUnits renormalizes the unit list to the canonical unit split of
// src (so indices always line up with parsed units); an unsplittable
// text becomes a single unit.
func (s *Session) setUnits(src string) {
	s.units = s.units[:0]
	if chunks, ok := memo.Split(s.name, src); ok {
		for _, c := range chunks {
			s.units = append(s.units, c.Text)
		}
		return
	}
	s.units = append(s.units, src)
}

// Source returns the program text: the concatenation of the unit texts.
func (s *Session) Source() string {
	var b strings.Builder
	for _, u := range s.units {
		b.WriteString(u)
	}
	return b.String()
}

// NumUnits returns the current unit count.
func (s *Session) NumUnits() int { return len(s.units) }

// Stats returns the cumulative counters.
func (s *Session) Stats() Stats { return s.stats }

// MemoryBytes estimates the session's retained size for byte-budgeted
// eviction: the resident front end and analysis scale with the source,
// plus the value-context store's own accounting.
func (s *Session) MemoryBytes() int64 {
	var src int64
	for _, u := range s.units {
		src += int64(len(u))
	}
	return src*24 + 32768 + s.ctxs.Bytes()
}

// Snapshot returns the last analysis outcome: either the artifacts a
// Result is assembled from, or the error the analysis ended with.
func (s *Session) Snapshot() (*core.Analysis, *ast.File, *subst.Result, []string, error) {
	if s.resErr != nil {
		return nil, nil, nil, nil, s.resErr
	}
	return s.analysis, s.file, s.subRes, s.front, nil
}

// Apply applies a sequence of deltas and re-analyzes. Index validation
// covers the whole sequence before anything is applied, so an invalid
// edit leaves the session untouched. Analysis errors (front-end errors
// introduced by the edit, fail-fast budget exhaustion) are returned and
// also retained as the session's result state; the session stays open
// and later edits can repair it.
func (s *Session) Apply(ctx context.Context, edits []Edit) (EditInfo, error) {
	var info EditInfo
	if len(edits) == 0 {
		return info, editErrorf("session: empty edit list")
	}
	n := len(s.units)
	for _, e := range edits {
		switch e.Op {
		case OpReplace:
			if e.Index < 0 || e.Index >= n {
				return info, editErrorf("session: replace index %d out of range (%d units)", e.Index, n)
			}
		case OpAdd:
			if e.Index < 0 || e.Index > n {
				return info, editErrorf("session: add index %d out of range (%d units)", e.Index, n)
			}
			n++
		case OpDelete:
			if e.Index < 0 || e.Index >= n {
				return info, editErrorf("session: delete index %d out of range (%d units)", e.Index, n)
			}
			n--
		default:
			return info, editErrorf("session: unknown edit op %q", e.Op)
		}
	}

	for _, e := range edits {
		info.DeltaBytes += len(e.Text)
	}
	s.stats.Edits += int64(len(edits))
	s.stats.DeltaBytes += int64(info.DeltaBytes)

	needRebuild := false
	for _, e := range edits {
		switch e.Op {
		case OpReplace:
			if !needRebuild && s.tryFastReplace(e, &info) {
				continue
			}
			s.units[e.Index] = e.Text
			needRebuild = true
		case OpAdd:
			s.units = append(s.units, "")
			copy(s.units[e.Index+1:], s.units[e.Index:])
			s.units[e.Index] = e.Text
			needRebuild = true
		case OpDelete:
			s.units = append(s.units[:e.Index], s.units[e.Index+1:]...)
			needRebuild = true
		}
	}

	hitsBefore := s.ctxs.Hits()
	var err error
	if needRebuild {
		info.UnitsInvalidated = len(s.units)
		err = s.rebuild(ctx)
	} else {
		info.FastPath = true
		s.stats.FastEdits++
		var reusedJF, reusedSub int
		err = s.analyze(ctx, nil, &reusedJF, &reusedSub)
		info.JumpReused, info.SubstReused = reusedJF, reusedSub
	}
	info.ContextsReused = int(s.ctxs.Hits() - hitsBefore)
	return info, err
}

// tryFastReplace attempts the in-place path for one replace delta.
// It mutates the session (program, artifacts, unit text) only on
// success; on failure the caller records the text and rebuilds.
func (s *Session) tryFastReplace(e Edit, info *EditInfo) bool {
	if !s.clean || !s.aligned || s.resErr != nil || s.analysis == nil ||
		len(s.front) > 0 || s.cfg.Complete {
		return false
	}
	idx, text := e.Index, e.Text
	old := s.units[idx]
	if text == old {
		return true // no-op delta: nothing to invalidate or re-analyze
	}
	// Position preservation: every retained AST keeps its parse
	// positions, so units after the edited one must not shift. Editing
	// the last unit shifts nothing; otherwise the replacement must hold
	// the line count (and stay newline-terminated so the next unit's
	// header still starts a line in the concatenated text).
	if idx != len(s.units)-1 &&
		(strings.Count(text, "\n") != strings.Count(old, "\n") || !strings.HasSuffix(text, "\n")) {
		return false
	}
	startLine := 1
	for i := 0; i < idx; i++ {
		startLine += strings.Count(s.units[i], "\n")
	}
	// Parse the replacement alone, padded to its absolute position so
	// its AST is byte-for-byte what a cold parse of the full text would
	// hold.
	var pdiags source.ErrorList
	f := parser.ParseFile(source.NewFile(s.name, strings.Repeat("\n", startLine-1)+text), &pdiags)
	if len(pdiags.Diags) > 0 || len(f.Units) != 1 {
		return false
	}
	oldProc := s.prog.Order[idx]
	// Blast radius on the pre-edit graph: the caller set is the same
	// before and after an interface-preserving replace.
	blast := s.blastOf(oldProc)
	var sdiags source.ErrorList
	if _, ok := s.prog.ReplaceUnit(idx, f.Units[0], &sdiags); !ok || len(sdiags.Diags) > 0 {
		// A warned-but-swapped replacement is also rejected here; the
		// rebuild that follows re-parses from the updated unit text, so
		// the swap cannot leak.
		return false
	}
	s.units[idx] = text
	for p := range blast {
		delete(s.jf, p)
		delete(s.subArts, p)
		s.ctxs.Invalidate(p)
	}
	// Re-derive the graph layers, reusing every unedited procedure's
	// CFG (a CFG depends only on its own body; what an edit changes in
	// callers is their jump functions, invalidated above).
	reuse := make(map[*sem.Procedure]*cfg.Graph, len(s.graph.Order))
	for _, n := range s.graph.Order {
		if n.Proc != oldProc {
			reuse[n.Proc] = n.CFG
		}
	}
	s.graph = callgraph.BuildReuse(s.prog, reuse)
	s.mod = modref.Compute(s.graph)
	info.UnitsInvalidated += len(blast)
	s.stats.UnitsInvalidated += int64(len(blast))
	return true
}

// blastOf returns p plus its transitive callers.
func (s *Session) blastOf(p *sem.Procedure) map[*sem.Procedure]bool {
	blast := map[*sem.Procedure]bool{p: true}
	stack := []*sem.Procedure{p}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := s.graph.Nodes[q.Name]
		if n == nil {
			continue
		}
		for _, site := range n.In {
			if !blast[site.Caller] {
				blast[site.Caller] = true
				stack = append(stack, site.Caller)
			}
		}
	}
	return blast
}

// rebuild re-analyzes the whole program from the concatenated unit
// texts, exactly as a cold analysis would, then recaptures artifacts.
func (s *Session) rebuild(ctx context.Context) error {
	s.wipeArtifacts()
	s.stats.FullRebuilds++
	s.file, s.prog, s.graph, s.mod = nil, nil, nil, nil
	s.analysis, s.subRes, s.front, s.resErr = nil, nil, nil, nil
	s.clean, s.aligned = false, false

	src := s.Source()
	s.setUnits(src)
	var diags source.ErrorList
	f := parser.ParseFile(source.NewFile(s.name, src), &diags)
	semCtx := ctx
	if !s.cfg.FailFast {
		semCtx = nil
	}
	prog, err := sem.AnalyzeParallelCtx(semCtx, f, &diags, s.cfg.Parallelism)
	if err != nil {
		s.resErr = err
		return err
	}
	if derr := diags.Err(); derr != nil {
		s.resErr = derr
		return derr
	}
	s.file, s.prog = f, prog
	s.graph = callgraph.Build(prog)
	s.mod = modref.Compute(s.graph)
	s.aligned = len(f.Units) == len(s.units) && len(prog.Order) == len(f.Units)
	var front []string
	for _, d := range diags.Diags {
		front = append(front, d.String())
	}
	return s.analyze(ctx, front, nil, nil)
}

// analyze runs the interprocedural driver over the resident program
// with the session's reuse hooks, computes the substitution eagerly,
// and adopts the freshly captured artifacts.
func (s *Session) analyze(ctx context.Context, front []string, reusedJF, reusedSub *int) error {
	cfg := s.cfg
	h := &hooks{
		graph:    s.graph,
		mod:      s.mod,
		complete: cfg.Complete,
		jfFresh:  make(map[*sem.Procedure]*jump.ProcMemo),
		subFresh: make(map[*sem.Procedure]*substArt),
	}
	if !cfg.Complete {
		h.jfReady = make(map[*sem.Procedure]*jump.ProcMemo, len(s.jf))
		for p, m := range s.jf {
			h.jfReady[p] = m
		}
		h.subReady = make(map[*sem.Procedure]*substArt, len(s.subArts))
		for p, art := range s.subArts {
			h.subReady[p] = art
		}
		cfg.Contexts = s.ctxs
	}
	cfg.Hooks = h

	a, err := core.AnalyzeProgramErr(ctx, s.prog, cfg)
	if err != nil {
		s.wipeArtifacts()
		s.resErr = err
		return err
	}
	sub := a.Substitute()
	s.analysis, s.subRes, s.front, s.resErr = a, sub, front, nil
	s.stats.ContextHits = s.ctxs.Hits()
	s.stats.ContextMisses = s.ctxs.Misses()

	if cfg.Complete || a.Degraded() || len(front) > 0 {
		// Complete propagation's artifacts are round-dependent; degraded
		// analyses may mix configurations from the fallback chain; a
		// program with front-end warnings never takes the fast path. In
		// every case retained artifacts would be dead weight (or worse).
		s.wipeArtifacts()
		s.clean = false
		return nil
	}
	nJF := len(s.prog.Order) - len(h.jfFresh)
	nSub := h.subHits
	if reusedJF != nil {
		*reusedJF = nJF
	}
	if reusedSub != nil {
		*reusedSub = nSub
	}
	s.stats.JumpReused += int64(nJF)
	s.stats.SubstReused += int64(nSub)
	for p, m := range h.jfFresh {
		s.jf[p] = m
	}
	for p, art := range h.subFresh {
		s.subArts[p] = art
	}
	s.clean = true
	return nil
}

func (s *Session) wipeArtifacts() {
	s.jf = make(map[*sem.Procedure]*jump.ProcMemo)
	s.subArts = make(map[*sem.Procedure]*substArt)
	s.ctxs.Reset()
}

// ---------------------------------------------------------------------
// MemoHooks over live pointers

// hooks adapts the session's pointer-keyed artifact maps to the core
// driver's MemoHooks. The ready maps are frozen before the analysis
// starts (jump.Build and subst.Run read them concurrently, lock-free);
// fresh artifacts are collected under the mutex and adopted by the
// session after the analysis completes.
type hooks struct {
	graph    *callgraph.Graph
	mod      *modref.Info
	complete bool

	jfReady  map[*sem.Procedure]*jump.ProcMemo
	subReady map[*sem.Procedure]*substArt

	mu       sync.Mutex
	jfFresh  map[*sem.Procedure]*jump.ProcMemo
	subFresh map[*sem.Procedure]*substArt
	subHits  int
}

func (h *hooks) Graph() (*callgraph.Graph, *modref.Info) { return h.graph, h.mod }

func (h *hooks) Funcs(core.Config, jump.Config, *symbolic.Builder) (*jump.Functions, int, jump.Memo) {
	// Never a whole-build hit: whole-build identity is the trivial
	// no-edit case, which Apply short-circuits before analyzing. The
	// per-procedure memo both serves the ready set and captures fresh
	// builds.
	return nil, 0, jfMemo{h}
}

func (h *hooks) StoreFuncs(core.Config, *jump.Functions, int) {}

func (h *hooks) Subst(_ core.Config, opts subst.Options) (*subst.Result, subst.Memo) {
	if h.complete || opts.Entry == nil {
		return nil, nil
	}
	// A retained decision is valid only if the procedure's constant
	// entry environment still fingerprints identically — the entry
	// environment is the substitution pass's only solver input.
	ready := make(map[*sem.Procedure]*substArt, len(h.subReady))
	for p, art := range h.subReady {
		if art.entryKey == memo.EntryFP(p, opts.Entry(p)) {
			ready[p] = art
		}
	}
	h.mu.Lock()
	h.subHits = len(ready)
	h.mu.Unlock()
	return nil, &subMemo{h: h, ready: ready, entry: opts.Entry}
}

func (h *hooks) StoreSubst(core.Config, subst.Options, *subst.Result) {}

type jfMemo struct{ h *hooks }

func (m jfMemo) Lookup(p *sem.Procedure) *jump.ProcMemo { return m.h.jfReady[p] }

func (m jfMemo) Store(p *sem.Procedure, pm *jump.ProcMemo) {
	m.h.mu.Lock()
	m.h.jfFresh[p] = pm
	m.h.mu.Unlock()
}

type subMemo struct {
	h     *hooks
	ready map[*sem.Procedure]*substArt
	entry func(p *sem.Procedure) map[ssa.Var]int64
}

func (m *subMemo) Lookup(p *sem.Procedure) (int, map[ast.Expr]string, bool) {
	if art, ok := m.ready[p]; ok {
		return art.count, art.repl, true
	}
	return 0, nil, false
}

func (m *subMemo) Store(p *sem.Procedure, count int, repl map[ast.Expr]string) {
	art := &substArt{count: count, repl: repl, entryKey: memo.EntryFP(p, m.entry(p))}
	m.h.mu.Lock()
	m.h.subFresh[p] = art
	m.h.mu.Unlock()
}
