package ast

import (
	"strings"
	"testing"

	"repro/internal/source"
)

// fullFile builds a File exercising every node kind the writer and the
// cloner must handle.
func fullFile() *File {
	i := func(v int64) Expr { return &IntLit{Value: v} }
	id := func(n string) Expr { return &Ident{Name: n} }

	mainUnit := &Unit{
		Kind: ProgramUnit,
		Name: "MAIN",
		Decls: []Decl{
			&VarDecl{Type: TypeInteger, Items: []*DeclItem{
				{Name: "I"},
				{Name: "A", Dims: []Expr{i(10)}},
				{Name: "B", Dims: []Expr{id("N"), i(3)}},
			}},
			&VarDecl{Type: TypeReal, Items: []*DeclItem{{Name: "X"}}},
			&VarDecl{Type: TypeLogical, Items: []*DeclItem{{Name: "FLAG"}}},
			&CommonDecl{Block: "BLK", Items: []*DeclItem{{Name: "N"}, {Name: "M"}}},
			&ParamDecl{Names: []string{"KP"}, Values: []Expr{i(7)}},
			&DimensionDecl{Items: []*DeclItem{{Name: "C", Dims: []Expr{i(4)}}}},
			&DataDecl{Names: []string{"N"}, Values: []Expr{&Unary{Op: OpNeg, X: i(2)}}},
		},
		Body: []Stmt{
			&AssignStmt{Lhs: id("I"), Rhs: &Binary{Op: OpAdd, X: id("N"), Y: i(1)}},
			&AssignStmt{Lhs: &Apply{Name: "A", Args: []Expr{id("I")}}, Rhs: id("I")},
			&CallStmt{Name: "WORK", Args: []Expr{id("I"), &Apply{Name: "MOD", Args: []Expr{id("I"), i(2)}}}},
			&IfStmt{Cond: &Binary{Op: OpGt, X: id("I"), Y: i(0)},
				Then:    []Stmt{&AssignStmt{Lhs: id("I"), Rhs: i(1)}},
				ElseIfs: []*ElseIfClause{{Cond: &Binary{Op: OpLt, X: id("I"), Y: i(0)}, Body: []Stmt{&ContinueStmt{}}}},
				Else:    []Stmt{&AssignStmt{Lhs: id("I"), Rhs: i(2)}},
			},
			&IfStmt{Cond: &LogLit{Value: true}, Logical: true,
				Then: []Stmt{&GotoStmt{Target: "10"}}},
			&DoStmt{Var: "I", From: i(1), To: id("N"), Step: i(2),
				Body: []Stmt{&PrintStmt{Args: []Expr{id("I"), &StrLit{Value: "it's"}}}}},
			func() Stmt {
				s := &DoStmt{Var: "I", From: i(1), To: i(3), EndLabel: "10",
					Body: []Stmt{func() Stmt { c := &ContinueStmt{}; c.SetLabel("10"); return c }()}}
				return s
			}(),
			&ComputedGotoStmt{Targets: []string{"20", "30"}, Index: id("I")},
			func() Stmt { c := &ContinueStmt{}; c.SetLabel("20"); return c }(),
			func() Stmt { c := &ContinueStmt{}; c.SetLabel("30"); return c }(),
			&ArithIfStmt{Expr: &Binary{Op: OpSub, X: id("I"), Y: i(1)}, LtLabel: "20", EqLabel: "30", GtLabel: "20"},
			&ReadStmt{Args: []Expr{id("I"), &Apply{Name: "A", Args: []Expr{i(1)}}}},
			&StopStmt{},
		},
	}
	sub := &Unit{
		Kind:   SubroutineUnit,
		Name:   "WORK",
		Params: []*Param{{Name: "P1"}, {Name: "P2"}},
		Body: []Stmt{
			&AssignStmt{Lhs: id("P1"), Rhs: &Unary{Op: OpNeg, X: id("P2")}},
			&ReturnStmt{},
		},
	}
	fn := &Unit{
		Kind:   FunctionUnit,
		Name:   "SQUARE",
		Result: TypeInteger,
		Params: []*Param{{Name: "V"}},
		Body: []Stmt{
			&AssignStmt{Lhs: id("SQUARE"), Rhs: &Binary{Op: OpPow, X: id("V"), Y: i(2)}},
		},
	}
	return &File{Source: source.NewFile("full.f", ""), Units: []*Unit{mainUnit, sub, fn}}
}

func TestWriterCoversAllNodes(t *testing.T) {
	out := FileString(fullFile())
	for _, want := range []string{
		"PROGRAM MAIN",
		"INTEGER I, A(10), B(N, 3)",
		"REAL X",
		"LOGICAL FLAG",
		"COMMON /BLK/ N, M",
		"PARAMETER (KP = 7)",
		"DIMENSION C(4)",
		"DATA N / -2 /",
		"A(I) = I",
		"CALL WORK(I, MOD(I, 2))",
		"ELSEIF (I .LT. 0) THEN",
		"IF (.TRUE.) GOTO 10",
		"DO I = 1, N, 2",
		"'it''s'",
		"DO 10 I = 1, 3",
		"10 CONTINUE",
		"GOTO (20, 30), I",
		"IF (I - 1) 20, 30, 20",
		"READ *, I, A(1)",
		"STOP",
		"SUBROUTINE WORK(P1, P2)",
		"P1 = -P2",
		"RETURN",
		"INTEGER FUNCTION SQUARE(V)",
		"SQUARE = V**2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("writer output missing %q:\n%s", want, out)
		}
	}
}

func TestCloneIsDeepAndFaithful(t *testing.T) {
	f := fullFile()
	var clones []*Unit
	for _, u := range f.Units {
		clones = append(clones, CloneUnit(u))
	}
	cf := &File{Source: f.Source, Units: clones}
	if FileString(cf) != FileString(f) {
		t.Fatalf("clone prints differently:\n--- original ---\n%s\n--- clone ---\n%s",
			FileString(f), FileString(cf))
	}
	// Mutating the clone must not affect the original.
	clones[0].Name = "CHANGED"
	clones[0].Body[0].(*AssignStmt).Lhs.(*Ident).Name = "ZZ"
	orig := FileString(f)
	if strings.Contains(orig, "CHANGED") || strings.Contains(orig, "ZZ = ") {
		t.Error("clone shares nodes with the original")
	}
}

func TestWriteFileSubstInPackage(t *testing.T) {
	f := fullFile()
	// Substitute the N in "I = N + 1".
	target := f.Units[0].Body[0].(*AssignStmt).Rhs.(*Binary).X
	var b strings.Builder
	err := WriteFileSubst(&b, f, map[Expr]string{target: "99"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "I = 99 + 1") {
		t.Errorf("substitution missing:\n%s", b.String())
	}
	// The same expression node elsewhere is untouched (target is unique).
	if !strings.Contains(b.String(), "DO I = 1, N, 2") {
		t.Errorf("unrelated N was substituted:\n%s", b.String())
	}
}

func TestCloneDeclsIndependent(t *testing.T) {
	orig := &VarDecl{Type: TypeInteger, Items: []*DeclItem{{Name: "A", Dims: []Expr{&IntLit{Value: 5}}}}}
	c := CloneDecl(orig).(*VarDecl)
	c.Items[0].Name = "B"
	c.Items[0].Dims[0].(*IntLit).Value = 9
	if orig.Items[0].Name != "A" || orig.Items[0].Dims[0].(*IntLit).Value != 5 {
		t.Error("CloneDecl shares state")
	}
}
