package ast

// Deep cloning of AST nodes. The clones share positions (they denote
// the same source text) but no node pointers, so transformations like
// procedure cloning can rewrite one copy without disturbing the other.

// CloneUnit returns a deep copy of a program unit.
func CloneUnit(u *Unit) *Unit {
	out := &Unit{
		Position: u.Position,
		Kind:     u.Kind,
		Name:     u.Name,
		Result:   u.Result,
	}
	for _, p := range u.Params {
		out.Params = append(out.Params, &Param{Position: p.Position, Name: p.Name})
	}
	for _, d := range u.Decls {
		out.Decls = append(out.Decls, CloneDecl(d))
	}
	out.Body = CloneStmts(u.Body)
	return out
}

// CloneDecl returns a deep copy of a declaration.
func CloneDecl(d Decl) Decl {
	switch x := d.(type) {
	case *VarDecl:
		return &VarDecl{Position: x.Position, Type: x.Type, Items: cloneItems(x.Items)}
	case *CommonDecl:
		return &CommonDecl{Position: x.Position, Block: x.Block, Items: cloneItems(x.Items)}
	case *ParamDecl:
		out := &ParamDecl{Position: x.Position, Names: append([]string(nil), x.Names...)}
		for _, v := range x.Values {
			out.Values = append(out.Values, CloneExpr(v))
		}
		return out
	case *DimensionDecl:
		return &DimensionDecl{Position: x.Position, Items: cloneItems(x.Items)}
	case *DataDecl:
		out := &DataDecl{Position: x.Position, Names: append([]string(nil), x.Names...)}
		for _, v := range x.Values {
			out.Values = append(out.Values, CloneExpr(v))
		}
		return out
	}
	return d
}

func cloneItems(items []*DeclItem) []*DeclItem {
	out := make([]*DeclItem, len(items))
	for i, it := range items {
		ni := &DeclItem{Position: it.Position, Name: it.Name}
		for _, d := range it.Dims {
			ni.Dims = append(ni.Dims, CloneExpr(d))
		}
		out[i] = ni
	}
	return out
}

// CloneStmts deep-copies a statement list.
func CloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies one statement (labels preserved).
func CloneStmt(s Stmt) Stmt {
	var out Stmt
	switch x := s.(type) {
	case *AssignStmt:
		out = &AssignStmt{StmtBase: x.StmtBase, Lhs: CloneExpr(x.Lhs), Rhs: CloneExpr(x.Rhs)}
	case *CallStmt:
		out = &CallStmt{StmtBase: x.StmtBase, Name: x.Name, Args: cloneExprs(x.Args)}
	case *IfStmt:
		n := &IfStmt{StmtBase: x.StmtBase, Cond: CloneExpr(x.Cond), Logical: x.Logical}
		n.Then = CloneStmts(x.Then)
		for _, ei := range x.ElseIfs {
			n.ElseIfs = append(n.ElseIfs, &ElseIfClause{Position: ei.Position, Cond: CloneExpr(ei.Cond), Body: CloneStmts(ei.Body)})
		}
		n.Else = CloneStmts(x.Else)
		out = n
	case *DoStmt:
		n := &DoStmt{StmtBase: x.StmtBase, Var: x.Var, From: CloneExpr(x.From), To: CloneExpr(x.To), EndLabel: x.EndLabel}
		if x.Step != nil {
			n.Step = CloneExpr(x.Step)
		}
		n.Body = CloneStmts(x.Body)
		out = n
	case *GotoStmt:
		out = &GotoStmt{StmtBase: x.StmtBase, Target: x.Target}
	case *ComputedGotoStmt:
		out = &ComputedGotoStmt{StmtBase: x.StmtBase, Targets: append([]string(nil), x.Targets...), Index: CloneExpr(x.Index)}
	case *ArithIfStmt:
		out = &ArithIfStmt{StmtBase: x.StmtBase, Expr: CloneExpr(x.Expr), LtLabel: x.LtLabel, EqLabel: x.EqLabel, GtLabel: x.GtLabel}
	case *ContinueStmt:
		out = &ContinueStmt{StmtBase: x.StmtBase}
	case *ReturnStmt:
		out = &ReturnStmt{StmtBase: x.StmtBase}
	case *StopStmt:
		out = &StopStmt{StmtBase: x.StmtBase}
	case *ReadStmt:
		out = &ReadStmt{StmtBase: x.StmtBase, Args: cloneExprs(x.Args)}
	case *PrintStmt:
		out = &PrintStmt{StmtBase: x.StmtBase, Args: cloneExprs(x.Args)}
	default:
		return s
	}
	return out
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *IntLit:
		c := *x
		return &c
	case *RealLit:
		c := *x
		return &c
	case *LogLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *Apply:
		return &Apply{Position: x.Position, Name: x.Name, Args: cloneExprs(x.Args)}
	case *Unary:
		return &Unary{Position: x.Position, Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Position: x.Position, Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y)}
	}
	return e
}
