// Package ast defines the abstract syntax tree for F77s program units.
//
// A design note on FORTRAN's classic ambiguity: at parse time `A(I)` may
// be either an array element or a function call. The parser produces an
// Apply node for both; semantic analysis (package sem) resolves each
// Apply into an array reference or a call once declarations are known.
package ast

import "repro/internal/source"

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Position
}

// ---------------------------------------------------------------------
// Program structure

// File is a parsed source file: a sequence of program units.
type File struct {
	Source *source.File
	Units  []*Unit
}

// Pos returns the position of the first unit.
func (f *File) Pos() source.Position {
	if len(f.Units) > 0 {
		return f.Units[0].Pos()
	}
	return source.Position{File: f.Source.Name, Line: 1, Col: 1}
}

// UnitKind distinguishes the three kinds of program unit.
type UnitKind int

const (
	ProgramUnit UnitKind = iota
	SubroutineUnit
	FunctionUnit
)

func (k UnitKind) String() string {
	switch k {
	case ProgramUnit:
		return "PROGRAM"
	case SubroutineUnit:
		return "SUBROUTINE"
	default:
		return "FUNCTION"
	}
}

// Unit is one program unit: the main program, a subroutine, or a
// function.
type Unit struct {
	Position source.Position
	Kind     UnitKind
	Name     string
	Params   []*Param // formal parameters, in declaration order
	Result   BaseType // function result type (TypeNone otherwise)
	Decls    []Decl
	Body     []Stmt
}

func (u *Unit) Pos() source.Position { return u.Position }

// Param is a formal parameter name as written in the unit header.
type Param struct {
	Position source.Position
	Name     string
}

func (p *Param) Pos() source.Position { return p.Position }

// ---------------------------------------------------------------------
// Types

// BaseType is a scalar F77s type.
type BaseType int

const (
	TypeNone BaseType = iota
	TypeInteger
	TypeReal
	TypeLogical
)

func (t BaseType) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	case TypeLogical:
		return "LOGICAL"
	default:
		return "<none>"
	}
}

// ---------------------------------------------------------------------
// Declarations

// Decl is a declaration statement in a unit's specification part.
type Decl interface {
	Node
	declNode()
}

// VarDecl declares one or more variables of a base type, e.g.
// `INTEGER I, A(10), B(N, 3)`.
type VarDecl struct {
	Position source.Position
	Type     BaseType
	Items    []*DeclItem
}

// DeclItem is one declarator: a name with optional array dimensions.
type DeclItem struct {
	Position source.Position
	Name     string
	Dims     []Expr // nil for scalars
}

// CommonDecl places variables in a named COMMON block, e.g.
// `COMMON /GRID/ N, M, H(100)`.
type CommonDecl struct {
	Position source.Position
	Block    string // block name; "" for blank common
	Items    []*DeclItem
}

// ParamDecl is a PARAMETER statement: named compile-time constants, e.g.
// `PARAMETER (N = 100, M = N*2)`.
type ParamDecl struct {
	Position source.Position
	Names    []string
	Values   []Expr
}

// DimensionDecl is a DIMENSION statement giving array bounds to names
// typed elsewhere (or implicitly), e.g. `DIMENSION A(10), B(N)`.
type DimensionDecl struct {
	Position source.Position
	Items    []*DeclItem
}

// DataDecl is a DATA statement initializing variables, e.g.
// `DATA N, M / 3, 4 /`.
type DataDecl struct {
	Position source.Position
	Names    []string
	Values   []Expr
}

func (d *VarDecl) Pos() source.Position       { return d.Position }
func (d *CommonDecl) Pos() source.Position    { return d.Position }
func (d *ParamDecl) Pos() source.Position     { return d.Position }
func (d *DimensionDecl) Pos() source.Position { return d.Position }
func (d *DataDecl) Pos() source.Position      { return d.Position }
func (d *DeclItem) Pos() source.Position      { return d.Position }

func (*VarDecl) declNode()       {}
func (*CommonDecl) declNode()    {}
func (*ParamDecl) declNode()     {}
func (*DimensionDecl) declNode() {}
func (*DataDecl) declNode()      {}

// ---------------------------------------------------------------------
// Statements

// Stmt is an executable statement. Every statement may carry a numeric
// label (the target of GOTOs and DO terminations).
type Stmt interface {
	Node
	stmtNode()
	// Label returns the statement's numeric label, or "" if unlabeled.
	Label() string
	// SetLabel attaches a numeric label.
	SetLabel(string)
}

// StmtBase provides position and label storage for statements.
type StmtBase struct {
	Position source.Position
	Lbl      string
}

func (s *StmtBase) Pos() source.Position { return s.Position }
func (s *StmtBase) Label() string        { return s.Lbl }
func (s *StmtBase) SetLabel(l string)    { s.Lbl = l }

// AssignStmt is `lhs = rhs`. Lhs is an Ident or an Apply (array element).
type AssignStmt struct {
	StmtBase
	Lhs Expr
	Rhs Expr
}

// CallStmt is `CALL name(args...)`.
type CallStmt struct {
	StmtBase
	Name string
	Args []Expr
}

// ElseIfClause is one ELSEIF arm of a block IF.
type ElseIfClause struct {
	Position source.Position
	Cond     Expr
	Body     []Stmt
}

// IfStmt is a block IF/THEN/ELSEIF/ELSE/ENDIF. A logical IF
// (`IF (e) stmt`) parses as an IfStmt whose Then holds one statement and
// whose Logical flag is set.
type IfStmt struct {
	StmtBase
	Cond    Expr
	Then    []Stmt
	ElseIfs []*ElseIfClause
	Else    []Stmt
	Logical bool
}

// DoStmt is a DO loop, either label-terminated (`DO 10 I = 1, N` ...
// `10 CONTINUE`) or ENDDO-terminated. After parsing, the body always
// holds the loop's statements; EndLabel records the terminating label if
// one was used.
type DoStmt struct {
	StmtBase
	Var      string
	From     Expr
	To       Expr
	Step     Expr // nil means step 1
	Body     []Stmt
	EndLabel string // "" when ENDDO-terminated
}

// GotoStmt is `GOTO label`.
type GotoStmt struct {
	StmtBase
	Target string
}

// ComputedGotoStmt is `GOTO (l1, l2, …), e`: control transfers to the
// e-th label when 1 ≤ e ≤ n, and falls through otherwise (F77 §11.2).
type ComputedGotoStmt struct {
	StmtBase
	Targets []string
	Index   Expr
}

// ArithIfStmt is the classic three-way arithmetic IF,
// `IF (e) l1, l2, l3`: control transfers to LtLabel/EqLabel/GtLabel
// when e is negative/zero/positive (F77 §11.4).
type ArithIfStmt struct {
	StmtBase
	Expr    Expr
	LtLabel string
	EqLabel string
	GtLabel string
}

// ContinueStmt is `CONTINUE` (a no-op, usually a label carrier).
type ContinueStmt struct {
	StmtBase
}

// ReturnStmt is `RETURN`.
type ReturnStmt struct {
	StmtBase
}

// StopStmt is `STOP`.
type StopStmt struct {
	StmtBase
}

// ReadStmt is `READ *, vars...`: assigns runtime input to each lvalue.
type ReadStmt struct {
	StmtBase
	Args []Expr
}

// PrintStmt is `PRINT *, exprs...` or `WRITE (*,*) exprs...`.
type PrintStmt struct {
	StmtBase
	Args []Expr
}

func (*AssignStmt) stmtNode()       {}
func (*CallStmt) stmtNode()         {}
func (*IfStmt) stmtNode()           {}
func (*DoStmt) stmtNode()           {}
func (*GotoStmt) stmtNode()         {}
func (*ComputedGotoStmt) stmtNode() {}
func (*ArithIfStmt) stmtNode()      {}
func (*ContinueStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()       {}
func (*StopStmt) stmtNode()         {}
func (*ReadStmt) stmtNode()         {}
func (*PrintStmt) stmtNode()        {}

// ---------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Position source.Position
	Value    int64
}

// RealLit is a real literal; Text preserves the original spelling.
type RealLit struct {
	Position source.Position
	Value    float64
	Text     string
}

// LogLit is `.TRUE.` or `.FALSE.`.
type LogLit struct {
	Position source.Position
	Value    bool
}

// StrLit is a character literal (only printable; not a propagated type).
type StrLit struct {
	Position source.Position
	Value    string
}

// Ident is a bare name: a scalar variable, a PARAMETER constant, or —
// when used as an actual argument — a procedure name.
type Ident struct {
	Position source.Position
	Name     string
}

// Apply is `NAME(args...)`: an array element or a function call,
// disambiguated by package sem.
type Apply struct {
	Position source.Position
	Name     string
	Args     []Expr
}

// Op is an expression operator.
type Op int

const (
	OpAdd Op = iota // +
	OpSub           // -
	OpMul           // *
	OpDiv           // /
	OpPow           // **
	OpNeg           // unary -
	OpEq            // .EQ.
	OpNe            // .NE.
	OpLt            // .LT.
	OpLe            // .LE.
	OpGt            // .GT.
	OpGe            // .GE.
	OpAnd           // .AND.
	OpOr            // .OR.
	OpNot           // .NOT.
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**",
	OpNeg: "-", OpEq: ".EQ.", OpNe: ".NE.", OpLt: ".LT.", OpLe: ".LE.",
	OpGt: ".GT.", OpGe: ".GE.", OpAnd: ".AND.", OpOr: ".OR.", OpNot: ".NOT.",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "?"
}

// IsRelational reports whether the operator compares two values.
func (o Op) IsRelational() bool { return o >= OpEq && o <= OpGe }

// IsLogical reports whether the operator is boolean-valued on booleans.
func (o Op) IsLogical() bool { return o == OpAnd || o == OpOr || o == OpNot }

// IsArith reports whether the operator is arithmetic.
func (o Op) IsArith() bool { return o <= OpNeg }

// Unary is a unary operation (OpNeg or OpNot).
type Unary struct {
	Position source.Position
	Op       Op
	X        Expr
}

// Binary is a binary operation.
type Binary struct {
	Position source.Position
	Op       Op
	X, Y     Expr
}

func (e *IntLit) Pos() source.Position  { return e.Position }
func (e *RealLit) Pos() source.Position { return e.Position }
func (e *LogLit) Pos() source.Position  { return e.Position }
func (e *StrLit) Pos() source.Position  { return e.Position }
func (e *Ident) Pos() source.Position   { return e.Position }
func (e *Apply) Pos() source.Position   { return e.Position }
func (e *Unary) Pos() source.Position   { return e.Position }
func (e *Binary) Pos() source.Position  { return e.Position }

func (*IntLit) exprNode()  {}
func (*RealLit) exprNode() {}
func (*LogLit) exprNode()  {}
func (*StrLit) exprNode()  {}
func (*Ident) exprNode()   {}
func (*Apply) exprNode()   {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}

// ---------------------------------------------------------------------
// Traversal helpers

// WalkExpr calls fn on e and all its subexpressions, preorder. If fn
// returns false the walk does not descend into that node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Apply:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Unary:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	}
}

// WalkStmts calls fn on every statement in the list and, recursively, on
// the bodies of compound statements. If fn returns false the walk does
// not descend into that statement's nested bodies.
func WalkStmts(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		if !fn(s) {
			continue
		}
		switch x := s.(type) {
		case *IfStmt:
			WalkStmts(x.Then, fn)
			for _, ei := range x.ElseIfs {
				WalkStmts(ei.Body, fn)
			}
			WalkStmts(x.Else, fn)
		case *DoStmt:
			WalkStmts(x.Body, fn)
		}
	}
}

// ExprsOf returns the expressions directly contained in a statement
// (conditions, operands, arguments), without descending into nested
// statement bodies.
func ExprsOf(s Stmt) []Expr {
	switch x := s.(type) {
	case *AssignStmt:
		return []Expr{x.Lhs, x.Rhs}
	case *CallStmt:
		return x.Args
	case *IfStmt:
		es := []Expr{x.Cond}
		for _, ei := range x.ElseIfs {
			es = append(es, ei.Cond)
		}
		return es
	case *DoStmt:
		es := []Expr{x.From, x.To}
		if x.Step != nil {
			es = append(es, x.Step)
		}
		return es
	case *ReadStmt:
		return x.Args
	case *PrintStmt:
		return x.Args
	case *ComputedGotoStmt:
		return []Expr{x.Index}
	case *ArithIfStmt:
		return []Expr{x.Expr}
	}
	return nil
}
