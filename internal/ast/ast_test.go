package ast

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func pos() source.Position { return source.Position{Line: 1, Col: 1} }

func TestOpProperties(t *testing.T) {
	if !OpEq.IsRelational() || OpAdd.IsRelational() {
		t.Error("IsRelational wrong")
	}
	if !OpAnd.IsLogical() || OpLt.IsLogical() {
		t.Error("IsLogical wrong")
	}
	if !OpPow.IsArith() || OpOr.IsArith() {
		t.Error("IsArith wrong")
	}
	if OpMul.String() != "*" || OpNot.String() != ".NOT." {
		t.Error("Op.String wrong")
	}
}

func TestUnitKindString(t *testing.T) {
	if ProgramUnit.String() != "PROGRAM" || SubroutineUnit.String() != "SUBROUTINE" || FunctionUnit.String() != "FUNCTION" {
		t.Error("UnitKind.String wrong")
	}
}

func TestBaseTypeString(t *testing.T) {
	if TypeInteger.String() != "INTEGER" || TypeNone.String() != "<none>" {
		t.Error("BaseType.String wrong")
	}
}

func TestWalkExpr(t *testing.T) {
	// MOD(A+1, B)*2
	e := &Binary{Op: OpMul,
		X: &Apply{Name: "MOD", Args: []Expr{
			&Binary{Op: OpAdd, X: &Ident{Name: "A"}, Y: &IntLit{Value: 1}},
			&Ident{Name: "B"},
		}},
		Y: &IntLit{Value: 2},
	}
	var names []string
	var lits int
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Ident:
			names = append(names, n.Name)
		case *IntLit:
			lits++
		}
		return true
	})
	if len(names) != 2 || lits != 2 {
		t.Errorf("walk found names=%v lits=%d", names, lits)
	}

	// Pruning: don't descend into Apply.
	count := 0
	WalkExpr(e, func(x Expr) bool {
		count++
		_, isApply := x.(*Apply)
		return !isApply
	})
	if count != 3 { // Binary, Apply, IntLit(2)
		t.Errorf("pruned walk visited %d nodes, want 3", count)
	}
}

func TestWalkStmts(t *testing.T) {
	inner := &AssignStmt{Lhs: &Ident{Name: "X"}, Rhs: &IntLit{Value: 1}}
	loop := &DoStmt{Var: "I", From: &IntLit{Value: 1}, To: &IntLit{Value: 10},
		Body: []Stmt{inner}}
	ifs := &IfStmt{Cond: &LogLit{Value: true},
		Then:    []Stmt{loop},
		ElseIfs: []*ElseIfClause{{Cond: &LogLit{}, Body: []Stmt{&ContinueStmt{}}}},
		Else:    []Stmt{&ReturnStmt{}},
	}
	var kindsSeen []string
	WalkStmts([]Stmt{ifs}, func(s Stmt) bool {
		switch s.(type) {
		case *IfStmt:
			kindsSeen = append(kindsSeen, "if")
		case *DoStmt:
			kindsSeen = append(kindsSeen, "do")
		case *AssignStmt:
			kindsSeen = append(kindsSeen, "assign")
		case *ContinueStmt:
			kindsSeen = append(kindsSeen, "continue")
		case *ReturnStmt:
			kindsSeen = append(kindsSeen, "return")
		}
		return true
	})
	want := "if do assign continue return"
	if got := strings.Join(kindsSeen, " "); got != want {
		t.Errorf("walk order = %q, want %q", got, want)
	}
}

func TestExprsOf(t *testing.T) {
	d := &DoStmt{From: &IntLit{Value: 1}, To: &IntLit{Value: 2}, Step: &IntLit{Value: 3}}
	if got := len(ExprsOf(d)); got != 3 {
		t.Errorf("DoStmt exprs = %d, want 3", got)
	}
	d.Step = nil
	if got := len(ExprsOf(d)); got != 2 {
		t.Errorf("DoStmt exprs without step = %d, want 2", got)
	}
	c := &CallStmt{Args: []Expr{&IntLit{}, &IntLit{}}}
	if got := len(ExprsOf(c)); got != 2 {
		t.Errorf("CallStmt exprs = %d", got)
	}
	if ExprsOf(&ReturnStmt{}) != nil {
		t.Error("ReturnStmt should have no exprs")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{Value: 42}, "42"},
		{&RealLit{Value: 1.5, Text: "1.5"}, "1.5"},
		{&RealLit{Value: 2.5}, "2.5"},
		{&LogLit{Value: true}, ".TRUE."},
		{&LogLit{Value: false}, ".FALSE."},
		{&StrLit{Value: "a'b"}, "'a''b'"},
		{&Ident{Name: "X"}, "X"},
		{&Unary{Op: OpNeg, X: &Ident{Name: "A"}}, "-A"},
		{&Unary{Op: OpNot, X: &Ident{Name: "L"}}, ".NOT. L"},
		{&Binary{Op: OpAdd, X: &Ident{Name: "A"}, Y: &IntLit{Value: 1}}, "A + 1"},
		{&Binary{Op: OpMul,
			X: &Binary{Op: OpAdd, X: &Ident{Name: "A"}, Y: &Ident{Name: "B"}},
			Y: &Ident{Name: "C"}}, "(A + B)*C"},
		{&Binary{Op: OpSub,
			X: &Ident{Name: "A"},
			Y: &Binary{Op: OpSub, X: &Ident{Name: "B"}, Y: &Ident{Name: "C"}}}, "A - (B - C)"},
		{&Apply{Name: "MOD", Args: []Expr{&Ident{Name: "I"}, &IntLit{Value: 2}}}, "MOD(I, 2)"},
		{&Binary{Op: OpLe, X: &Ident{Name: "I"}, Y: &Ident{Name: "N"}}, "I .LE. N"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestStmtString(t *testing.T) {
	s := &AssignStmt{Lhs: &Ident{Name: "X"}, Rhs: &IntLit{Value: 1}}
	s.SetLabel("10")
	if got := StmtString(s); got != "  10 X = 1" {
		t.Errorf("StmtString = %q", got)
	}
	g := &GotoStmt{Target: "20"}
	if got := strings.TrimSpace(StmtString(g)); got != "GOTO 20" {
		t.Errorf("goto = %q", got)
	}
}

func TestWriteLogicalIf(t *testing.T) {
	s := &IfStmt{Cond: &Binary{Op: OpEq, X: &Ident{Name: "I"}, Y: &IntLit{Value: 0}},
		Then:    []Stmt{&GotoStmt{Target: "10"}},
		Logical: true}
	got := strings.TrimSpace(StmtString(s))
	if got != "IF (I .EQ. 0) GOTO 10" {
		t.Errorf("logical IF = %q", got)
	}
}

func TestFilePosEmpty(t *testing.T) {
	f := &File{Source: source.NewFile("x.f", "")}
	if p := f.Pos(); p.Line != 1 {
		t.Errorf("empty file pos = %v", p)
	}
}
