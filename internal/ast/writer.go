package ast

import (
	"fmt"
	"io"
	"strings"
)

// WriteFile renders a file back to F77s source text. The output
// round-trips through the parser: parse(Write(f)) is structurally equal
// to f (modulo positions). This is the basis of the substitution pass's
// "transformed source" option.
func WriteFile(w io.Writer, f *File) error {
	return WriteFileSubst(w, f, nil)
}

// WriteFileSubst renders a file with substitutions: any expression node
// present in repl prints as the replacement text instead of its normal
// rendering. The substitution pass uses this to emit the "transformed
// version of the original source in which the interprocedural constants
// are textually substituted into the code".
func WriteFileSubst(w io.Writer, f *File, repl map[Expr]string) error {
	pw := &printer{w: w, repl: repl}
	for i, u := range f.Units {
		if i > 0 {
			pw.line(0, "")
		}
		pw.unit(u)
	}
	return pw.err
}

// FileString renders a file to a string.
func FileString(f *File) string {
	var b strings.Builder
	_ = WriteFile(&b, f) // strings.Builder never errors
	return b.String()
}

// ExprString renders an expression as F77s source.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0, nil)
	return b.String()
}

// ExprStringSubst renders an expression applying replacements.
func ExprStringSubst(e Expr, repl map[Expr]string) string {
	var b strings.Builder
	writeExpr(&b, e, 0, repl)
	return b.String()
}

// StmtString renders one statement (and any nested bodies) as source.
func StmtString(s Stmt) string {
	var b strings.Builder
	pw := &printer{w: &b}
	pw.stmt(1, s)
	return strings.TrimRight(b.String(), "\n")
}

// stmtString renders a statement with this printer's substitutions.
func (p *printer) stmtString(s Stmt) string {
	var b strings.Builder
	pw := &printer{w: &b, repl: p.repl}
	pw.stmt(1, s)
	return strings.TrimRight(b.String(), "\n")
}

// lhsString renders an assignment target: the target itself is never
// substituted, but its subscripts are.
func (p *printer) lhsString(e Expr) string {
	if a, ok := e.(*Apply); ok {
		return a.Name + "(" + p.exprList(a.Args) + ")"
	}
	if id, ok := e.(*Ident); ok {
		return id.Name
	}
	return p.expr(e)
}

// readTargets renders READ targets: targets are never substituted, but
// array subscripts are.
func (p *printer) readTargets(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = p.lhsString(e)
	}
	return strings.Join(parts, ", ")
}

type printer struct {
	w    io.Writer
	err  error
	repl map[Expr]string
}

func (p *printer) expr(e Expr) string {
	return ExprStringSubst(e, p.repl)
}

func (p *printer) line(indent int, format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s\n", strings.Repeat("  ", indent), fmt.Sprintf(format, args...))
}

func (p *printer) unit(u *Unit) {
	switch u.Kind {
	case ProgramUnit:
		p.line(0, "PROGRAM %s", u.Name)
	case SubroutineUnit:
		p.line(0, "SUBROUTINE %s(%s)", u.Name, paramList(u.Params))
	case FunctionUnit:
		p.line(0, "%s FUNCTION %s(%s)", u.Result, u.Name, paramList(u.Params))
	}
	for _, d := range u.Decls {
		p.decl(1, d)
	}
	for _, s := range u.Body {
		p.stmt(1, s)
	}
	p.line(0, "END")
}

func paramList(ps []*Param) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

func (p *printer) declItems(items []*DeclItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		if len(it.Dims) == 0 {
			parts[i] = it.Name
		} else {
			dims := make([]string, len(it.Dims))
			for j, d := range it.Dims {
				dims[j] = p.expr(d)
			}
			parts[i] = fmt.Sprintf("%s(%s)", it.Name, strings.Join(dims, ", "))
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) decl(indent int, d Decl) {
	switch x := d.(type) {
	case *VarDecl:
		p.line(indent, "%s %s", x.Type, p.declItems(x.Items))
	case *CommonDecl:
		p.line(indent, "COMMON /%s/ %s", x.Block, p.declItems(x.Items))
	case *ParamDecl:
		parts := make([]string, len(x.Names))
		for i := range x.Names {
			parts[i] = fmt.Sprintf("%s = %s", x.Names[i], p.expr(x.Values[i]))
		}
		p.line(indent, "PARAMETER (%s)", strings.Join(parts, ", "))
	case *DimensionDecl:
		p.line(indent, "DIMENSION %s", p.declItems(x.Items))
	case *DataDecl:
		vals := make([]string, len(x.Values))
		for i, v := range x.Values {
			vals[i] = p.expr(v)
		}
		p.line(indent, "DATA %s / %s /", strings.Join(x.Names, ", "), strings.Join(vals, ", "))
	}
}

func (p *printer) stmt(indent int, s Stmt) {
	lbl := ""
	if s.Label() != "" {
		lbl = s.Label() + " "
	}
	switch x := s.(type) {
	case *AssignStmt:
		p.line(indent, "%s%s = %s", lbl, p.lhsString(x.Lhs), p.expr(x.Rhs))
	case *CallStmt:
		p.line(indent, "%sCALL %s(%s)", lbl, x.Name, p.exprList(x.Args))
	case *IfStmt:
		if x.Logical && len(x.Then) == 1 && len(x.ElseIfs) == 0 && len(x.Else) == 0 {
			inner := p.stmtString(x.Then[0])
			p.line(indent, "%sIF (%s) %s", lbl, p.expr(x.Cond), strings.TrimSpace(inner))
			return
		}
		p.line(indent, "%sIF (%s) THEN", lbl, p.expr(x.Cond))
		for _, t := range x.Then {
			p.stmt(indent+1, t)
		}
		for _, ei := range x.ElseIfs {
			p.line(indent, "ELSEIF (%s) THEN", p.expr(ei.Cond))
			for _, t := range ei.Body {
				p.stmt(indent+1, t)
			}
		}
		if len(x.Else) > 0 {
			p.line(indent, "ELSE")
			for _, t := range x.Else {
				p.stmt(indent+1, t)
			}
		}
		p.line(indent, "ENDIF")
	case *DoStmt:
		step := ""
		if x.Step != nil {
			step = ", " + p.expr(x.Step)
		}
		if x.EndLabel != "" {
			p.line(indent, "%sDO %s %s = %s, %s%s", lbl, x.EndLabel, x.Var, p.expr(x.From), p.expr(x.To), step)
			for _, t := range x.Body {
				p.stmt(indent+1, t)
			}
			// The terminating CONTINUE is part of Body in parsed form; if
			// the body does not end with the labeled terminator, emit one.
			if !endsWithLabel(x.Body, x.EndLabel) {
				p.line(indent, "%s CONTINUE", x.EndLabel)
			}
		} else {
			p.line(indent, "%sDO %s = %s, %s%s", lbl, x.Var, p.expr(x.From), p.expr(x.To), step)
			for _, t := range x.Body {
				p.stmt(indent+1, t)
			}
			p.line(indent, "ENDDO")
		}
	case *GotoStmt:
		p.line(indent, "%sGOTO %s", lbl, x.Target)
	case *ComputedGotoStmt:
		p.line(indent, "%sGOTO (%s), %s", lbl, strings.Join(x.Targets, ", "), p.expr(x.Index))
	case *ArithIfStmt:
		p.line(indent, "%sIF (%s) %s, %s, %s", lbl, p.expr(x.Expr), x.LtLabel, x.EqLabel, x.GtLabel)
	case *ContinueStmt:
		p.line(indent, "%sCONTINUE", lbl)
	case *ReturnStmt:
		p.line(indent, "%sRETURN", lbl)
	case *StopStmt:
		p.line(indent, "%sSTOP", lbl)
	case *ReadStmt:
		p.line(indent, "%sREAD *, %s", lbl, p.readTargets(x.Args))
	case *PrintStmt:
		p.line(indent, "%sPRINT *, %s", lbl, p.exprList(x.Args))
	}
}

func endsWithLabel(body []Stmt, label string) bool {
	return len(body) > 0 && body[len(body)-1].Label() == label
}

func (p *printer) exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = p.expr(e)
	}
	return strings.Join(parts, ", ")
}

// precedence levels for minimal parenthesization, highest binds tightest.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return 4
		case OpAdd, OpSub:
			return 5
		case OpMul, OpDiv:
			return 6
		case OpPow:
			return 7
		}
	case *Unary:
		if x.Op == OpNot {
			return 3
		}
		return 5 // unary minus binds like +/- term
	}
	return 10 // atoms
}

func writeExpr(b *strings.Builder, e Expr, outerPrec int, repl map[Expr]string) {
	if repl != nil {
		if txt, ok := repl[e]; ok {
			b.WriteString(txt)
			return
		}
	}
	prec := exprPrec(e)
	paren := prec < outerPrec
	if paren {
		b.WriteByte('(')
	}
	switch x := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", x.Value)
	case *RealLit:
		if x.Text != "" {
			b.WriteString(x.Text)
		} else {
			fmt.Fprintf(b, "%g", x.Value)
		}
	case *LogLit:
		if x.Value {
			b.WriteString(".TRUE.")
		} else {
			b.WriteString(".FALSE.")
		}
	case *StrLit:
		fmt.Fprintf(b, "'%s'", strings.ReplaceAll(x.Value, "'", "''"))
	case *Ident:
		b.WriteString(x.Name)
	case *Apply:
		b.WriteString(x.Name)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a, 0, repl)
		}
		b.WriteByte(')')
	case *Unary:
		if x.Op == OpNot {
			b.WriteString(".NOT. ")
		} else {
			b.WriteString("-")
		}
		writeExpr(b, x.X, prec+1, repl)
	case *Binary:
		writeExpr(b, x.X, prec, repl)
		switch {
		case x.Op.IsRelational() || x.Op.IsLogical():
			fmt.Fprintf(b, " %s ", x.Op)
		case x.Op == OpAdd || x.Op == OpSub:
			fmt.Fprintf(b, " %s ", x.Op)
		default:
			b.WriteString(x.Op.String())
		}
		// The right operand of an arithmetic binary is always rendered at
		// strictly higher precedence: this preserves left associativity
		// for -, /, ** and guarantees a unary minus can never directly
		// follow an operator (`X + -3` is not valid FORTRAN), even when
		// it is buried at the head of an equal-precedence subexpression.
		rp := prec
		if x.Op.IsArith() {
			rp = prec + 1
		}
		writeExpr(b, x.Y, rp, repl)
	}
	if paren {
		b.WriteByte(')')
	}
}
