package ssa

import (
	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/sem"
)

// Renaming: a preorder walk of the dominator tree maintaining a stack
// of reaching definitions per variable (Cytron et al., fig. 12).

func (b *ssaBuilder) push(v Var, val *Value) {
	b.stacks[v] = append(b.stacks[v], val)
}

func (b *ssaBuilder) top(v Var) *Value {
	st := b.stacks[v]
	if len(st) == 0 {
		// Use of a (possibly) uninitialized variable: one shared undef
		// value per variable.
		if u, ok := b.undefs[v]; ok {
			return u
		}
		u := b.newValue(OpUndef, b.f.Graph.Entry)
		u.AuxVar = v
		u.Type = varType(v)
		b.undefs[v] = u
		return u
	}
	return st[len(st)-1]
}

// varType returns a variable's declared F77s type.
func varType(v Var) ast.BaseType {
	if v.Glob != nil {
		return v.Glob.Type
	}
	return v.Sym.Type
}

// cast wraps a value in a conversion when the assignment target's type
// differs (e.g. an integer expression stored into a REAL variable).
func (b *ssaBuilder) cast(blk *cfg.Block, val *Value, t ast.BaseType) *Value {
	if val.Type == t || t == ast.TypeNone {
		return val
	}
	c := b.newValue(OpCast, blk)
	c.Args = b.argSpan(1)
	c.Args[0] = val
	c.Type = t
	return c
}

func (b *ssaBuilder) rename(blk *cfg.Block, phiVars map[*cfg.Block]map[Var]*Value) {
	mark := len(b.defStack)
	def := func(v Var, val *Value) {
		b.push(v, val)
		b.defStack = append(b.defStack, v)
	}

	// Phis defined at block entry.
	for _, phi := range b.f.Phis[blk] {
		def(phi.AuxVar, phi)
	}

	// Instructions.
	for _, in := range blk.Instrs {
		switch in.Kind {
		case cfg.InstrAssign:
			rhs := b.evalExpr(blk, in.Rhs)
			if in.Lhs != nil {
				def(VarOf(in.Lhs), b.cast(blk, rhs, in.Lhs.Type))
			} else {
				// Array store: evaluate subscripts for their uses; the
				// array itself is untracked.
				for _, s := range in.Subs {
					b.evalExpr(blk, s)
				}
			}
		case cfg.InstrRead:
			for _, t := range in.Targets {
				for _, s := range t.Subs {
					b.evalExpr(blk, s)
				}
				if t.Subs == nil && t.Sym != nil && !t.Sym.IsArray {
					v := b.newValue(OpRead, blk)
					v.AuxVar = VarOf(t.Sym)
					v.Type = t.Sym.Type
					def(VarOf(t.Sym), v)
				}
			}
		case cfg.InstrPrint:
			for _, a := range in.Args {
				b.evalExpr(blk, a)
			}
		case cfg.InstrCall:
			b.renameCall(blk, in, def)
		}
	}

	// Terminator condition.
	if blk.Term.Kind == cfg.TermCond {
		b.f.TermVal[blk] = b.evalExpr(blk, blk.Term.Cond)
	}

	// Record exit values for return jump functions.
	if blk == b.f.Graph.Exit {
		for _, s := range b.f.Proc.Formals {
			if !s.IsArray {
				b.f.ExitVals[VarOf(s)] = b.top(VarOf(s))
			}
		}
		for _, g := range b.opts.Globals {
			if !g.IsArray {
				b.f.ExitVals[GlobalVar(g)] = b.top(GlobalVar(g))
			}
		}
		if r := b.f.Proc.Result; r != nil {
			b.f.ExitVals[VarOf(r)] = b.top(VarOf(r))
		}
	}

	// Fill phi arguments in successors.
	for _, succ := range blk.Succs {
		// This block may appear multiple times among succ's preds (e.g.
		// a conditional with identical arms); fill every matching slot.
		for pi, pred := range succ.Preds {
			if pred != blk {
				continue
			}
			for _, phi := range b.f.Phis[succ] {
				phi.Args[pi] = b.top(phi.AuxVar)
			}
		}
	}

	// Recurse over dominator-tree children.
	for _, child := range b.f.Dom.Children[blk.ID] {
		b.rename(child, phiVars)
	}

	// Pop this block's definitions.
	for i := len(b.defStack) - 1; i >= mark; i-- {
		v := b.defStack[i]
		st := b.stacks[v]
		b.stacks[v] = st[:len(st)-1]
	}
	b.defStack = b.defStack[:mark]
}

func (b *ssaBuilder) renameCall(blk *cfg.Block, in *cfg.Instr, def func(Var, *Value)) {
	site := in.Site
	info := &CallInfo{
		Site:            site,
		ArgVals:         make([]*Value, len(site.Args)),
		ArgIsWholeArray: make([]bool, len(site.Args)),
		GlobalVals:      make(map[*sem.GlobalVar]*Value),
	}
	// Evaluate actuals (before any kills).
	for i, arg := range site.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if s := b.f.Proc.Lookup(id.Name); s != nil && s.IsArray {
				info.ArgIsWholeArray[i] = true
				continue
			}
		}
		info.ArgVals[i] = b.evalExpr(blk, arg)
	}
	// Record the value of every global at the call.
	for _, g := range b.opts.Globals {
		if !g.IsArray {
			info.GlobalVals[g] = b.top(GlobalVar(g))
		}
	}
	// Kills: modified variables get fresh post-call definitions.
	killF, killG := b.killedVars(site)
	for v := range killF {
		pv := b.newValue(OpPostCall, blk)
		pv.AuxVar = v
		pv.AuxSite = site
		pv.Type = varType(v)
		def(v, pv)
	}
	for g := range killG {
		v := GlobalVar(g)
		if killF[v] {
			continue // already killed as an actual
		}
		pv := b.newValue(OpPostCall, blk)
		pv.AuxVar = v
		pv.AuxSite = site
		pv.Type = varType(v)
		def(v, pv)
	}
	// Function result.
	if in.Lhs != nil {
		rv := b.newValue(OpCallRes, blk)
		rv.AuxSite = site
		rv.Type = in.Lhs.Type
		info.Result = rv
		def(VarOf(in.Lhs), rv)
	}
	b.f.Calls[site] = info
}

// evalExpr builds the SSA value of an expression occurrence, recording
// it in UseVal.
func (b *ssaBuilder) evalExpr(blk *cfg.Block, e ast.Expr) *Value {
	v := b.evalExpr1(blk, e)
	b.f.UseVal[e] = v
	b.f.UseBlock[e] = blk
	return v
}

func (b *ssaBuilder) evalExpr1(blk *cfg.Block, e ast.Expr) *Value {
	switch x := e.(type) {
	case *ast.IntLit:
		v := b.newValue(OpConst, blk)
		v.AuxInt = x.Value
		v.Type = ast.TypeInteger
		return v
	case *ast.RealLit:
		v := b.newValue(OpRealConst, blk)
		v.AuxFloat = x.Value
		v.Type = ast.TypeReal
		return v
	case *ast.LogLit:
		v := b.newValue(OpBoolConst, blk)
		v.AuxBool = x.Value
		v.Type = ast.TypeLogical
		return v
	case *ast.StrLit:
		return b.newValue(OpStr, blk)
	case *ast.Ident:
		s := b.f.Proc.Lookup(x.Name)
		if s == nil {
			return b.newValue(OpUndef, blk)
		}
		switch s.Kind {
		case sem.SymConst:
			if s.HasConst {
				v := b.newValue(OpConst, blk)
				v.AuxInt = s.ConstValue
				v.Type = ast.TypeInteger
				return v
			}
			return b.newValue(OpUndef, blk)
		default:
			if s.IsArray {
				// Whole-array reference outside a call: opaque.
				v := b.newValue(OpArrayLoad, blk)
				v.AuxVar = Var{Sym: s}
				v.Type = s.Type
				return v
			}
			return b.top(VarOf(s))
		}
	case *ast.Unary:
		arg := b.evalExpr(blk, x.X)
		v := b.newValue(OpArith, blk)
		v.AuxOp = x.Op
		v.Args = b.argSpan(1)
		v.Args[0] = arg
		if x.Op == ast.OpNot {
			v.Type = ast.TypeLogical
		} else {
			v.Type = arg.Type
		}
		return v
	case *ast.Binary:
		l := b.evalExpr(blk, x.X)
		r := b.evalExpr(blk, x.Y)
		v := b.newValue(OpArith, blk)
		v.AuxOp = x.Op
		v.Args = b.argSpan(2)
		v.Args[0], v.Args[1] = l, r
		switch {
		case x.Op.IsRelational() || x.Op.IsLogical():
			v.Type = ast.TypeLogical
		case l.Type == ast.TypeReal || r.Type == ast.TypeReal:
			v.Type = ast.TypeReal
		default:
			v.Type = ast.TypeInteger
		}
		return v
	case *ast.Apply:
		args := b.argSpan(len(x.Args))
		for i, a := range x.Args {
			args[i] = b.evalExpr(blk, a)
		}
		if s := b.f.Proc.Lookup(x.Name); s != nil && s.IsArray {
			v := b.newValue(OpArrayLoad, blk)
			v.AuxVar = Var{Sym: s}
			v.Args = args
			v.Type = s.Type
			return v
		}
		if in, ok := sem.Intrinsics[x.Name]; ok {
			v := b.newValue(OpIntrinsic, blk)
			v.AuxName = x.Name
			v.Args = args
			v.Type = ast.TypeInteger
			if !in.IntInInt {
				v.Type = ast.TypeReal
			}
			for _, a := range args {
				if a.Type == ast.TypeReal {
					v.Type = ast.TypeReal
				}
			}
			return v
		}
		// User function calls were extracted by the CFG builder; anything
		// left is an error already reported by sem.
		return b.newValue(OpUndef, blk)
	}
	return b.newValue(OpUndef, blk)
}
