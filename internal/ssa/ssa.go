// Package ssa converts a procedure CFG into SSA form (Cytron et al.:
// phi placement on iterated dominance frontiers, then renaming over the
// dominator tree).
//
// The SSA value graph is the substrate the paper's analyzer was built
// on: package intra assigns every value a symbolic expression (global
// value numbering), and package jump derives jump functions from those
// expressions.
//
// Scalar variables (locals, formals, COMMON members, function results,
// compiler temporaries) are renamed. Arrays are not tracked: array
// loads are opaque values, matching the paper's "any references to
// array elements are initialized to ⊥".
package ssa

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/sem"
)

// Var identifies an SSA-tracked variable. COMMON members are identified
// by their program-wide GlobalVar so that every procedure names a given
// global the same way; all other scalars are identified by symbol.
type Var struct {
	Sym  *sem.Symbol
	Glob *sem.GlobalVar
}

// VarOf returns the canonical Var for a symbol.
func VarOf(s *sem.Symbol) Var {
	if s.Global != nil {
		return Var{Glob: s.Global}
	}
	return Var{Sym: s}
}

// GlobalVar returns the Var for a program global.
func GlobalVar(g *sem.GlobalVar) Var { return Var{Glob: g} }

// IsGlobal reports whether the variable is a COMMON global.
func (v Var) IsGlobal() bool { return v.Glob != nil }

func (v Var) String() string {
	if v.Glob != nil {
		return v.Glob.Key()
	}
	return v.Sym.Name
}

// ValOp enumerates SSA value operators.
type ValOp int

const (
	OpParam     ValOp = iota // entry value of a formal (AuxVar.Sym)
	OpGlobalIn               // entry value of a global (AuxVar.Glob)
	OpUndef                  // use of a possibly-uninitialized local
	OpConst                  // integer constant (AuxInt)
	OpRealConst              // real constant (AuxFloat); opaque to propagation
	OpBoolConst              // logical constant (AuxBool)
	OpStr                    // character constant; opaque
	OpPhi                    // φ; Args correspond to Block.Preds order
	OpArith                  // AuxOp applied to Args
	OpIntrinsic              // AuxName applied to Args
	OpArrayLoad              // load from array AuxVar; opaque
	OpCallRes                // result of the function call at AuxSite
	OpPostCall               // value of AuxVar after the call at AuxSite
	OpRead                   // value produced by a READ
	OpCast                   // conversion of Args[0] to the value's Type
)

var valOpNames = [...]string{
	OpParam: "param", OpGlobalIn: "globalin", OpUndef: "undef",
	OpConst: "const", OpRealConst: "realconst", OpBoolConst: "boolconst",
	OpStr: "str", OpPhi: "phi", OpArith: "arith", OpIntrinsic: "intrinsic",
	OpArrayLoad: "arrayload", OpCallRes: "callres", OpPostCall: "postcall",
	OpRead: "read", OpCast: "cast",
}

func (o ValOp) String() string { return valOpNames[o] }

// Value is one SSA value.
type Value struct {
	ID    int
	Op    ValOp
	Args  []*Value
	Block *cfg.Block
	// Type is the value's F77s type. Only INTEGER values participate in
	// constant propagation (the paper's restriction); the symbolic
	// engine treats REAL-typed values as opaque so that integer folding
	// is never applied to real arithmetic.
	Type ast.BaseType

	AuxInt   int64
	AuxFloat float64
	AuxBool  bool
	AuxOp    ast.Op        // OpArith
	AuxName  string        // OpIntrinsic
	AuxVar   Var           // OpParam/OpGlobalIn/OpUndef/OpArrayLoad/OpPostCall/OpPhi
	AuxSite  *cfg.CallSite // OpCallRes/OpPostCall
}

func (v *Value) String() string {
	switch v.Op {
	case OpConst:
		return fmt.Sprintf("v%d=%d", v.ID, v.AuxInt)
	case OpParam, OpGlobalIn, OpUndef:
		return fmt.Sprintf("v%d=%s(%s)", v.ID, v.Op, v.AuxVar)
	case OpPhi:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			if a == nil {
				parts[i] = "nil"
			} else {
				parts[i] = fmt.Sprintf("v%d", a.ID)
			}
		}
		return fmt.Sprintf("v%d=φ(%s)[%s]", v.ID, strings.Join(parts, ","), v.AuxVar)
	case OpArith:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = fmt.Sprintf("v%d", a.ID)
		}
		return fmt.Sprintf("v%d=%s(%s)", v.ID, v.AuxOp, strings.Join(parts, ","))
	default:
		return fmt.Sprintf("v%d=%s", v.ID, v.Op)
	}
}

// CallInfo records the SSA facts at one call site that the jump-function
// builder needs.
type CallInfo struct {
	Site *cfg.CallSite
	// ArgVals holds the value of each actual at the call. nil for whole
	// arrays (which have no scalar value).
	ArgVals []*Value
	// ArgIsWholeArray marks actuals that pass an entire array.
	ArgIsWholeArray []bool
	// GlobalVals holds the value of every program global just before
	// the call — the implicit "actuals" for globals.
	GlobalVals map[*sem.GlobalVar]*Value
	// Result is the OpCallRes value (function sites only).
	Result *Value
}

// Func is a procedure in SSA form.
type Func struct {
	Proc   *sem.Procedure
	Graph  *cfg.Graph
	Dom    *dom.Tree
	Values []*Value
	// Phis lists the phi values placed at each block.
	Phis map[*cfg.Block][]*Value
	// Calls maps each call site to its SSA facts.
	Calls map[*cfg.CallSite]*CallInfo
	// ExitVals holds the value of each tracked variable at procedure
	// exit (used to build return jump functions).
	ExitVals map[Var]*Value
	// UseVal maps source-AST expression occurrences to their values.
	// Reliable only for expressions that occur once in the AST (true for
	// parsed source; compiler-synthesized nodes may repeat).
	UseVal map[ast.Expr]*Value
	// UseBlock maps each occurrence to the block it executes in (the
	// value's own Block is where its *def* lives, which may differ).
	UseBlock map[ast.Expr]*cfg.Block
	// TermVal holds each block's branch-condition value.
	TermVal map[*cfg.Block]*Value
	// Params/GlobalIns give the entry values.
	Params    map[*sem.Symbol]*Value
	GlobalIns map[*sem.GlobalVar]*Value
}

// Options configures SSA construction.
type Options struct {
	// Kills reports which variables a call may modify, from the
	// caller's perspective: the killed actual positions (by formal
	// index) and the killed globals. When nil, worst-case assumptions
	// are used (every reference actual and every global is killed) —
	// the "no MOD information" configuration of Table 3.
	Kills func(site *cfg.CallSite) (formals map[int]bool, globals map[*sem.GlobalVar]bool, all bool)
	// Globals lists every program global (needed to give each one an
	// entry value and record it at call sites).
	Globals []*sem.GlobalVar
}

// Build converts one procedure to SSA form.
func Build(g *cfg.Graph, dt *dom.Tree, opts Options) *Func {
	f := &Func{
		Proc:      g.Proc,
		Graph:     g,
		Dom:       dt,
		Phis:      make(map[*cfg.Block][]*Value),
		Calls:     make(map[*cfg.CallSite]*CallInfo),
		ExitVals:  make(map[Var]*Value),
		UseVal:    make(map[ast.Expr]*Value),
		UseBlock:  make(map[ast.Expr]*cfg.Block),
		TermVal:   make(map[*cfg.Block]*Value),
		Params:    make(map[*sem.Symbol]*Value),
		GlobalIns: make(map[*sem.GlobalVar]*Value),
	}
	b := &ssaBuilder{f: f, opts: opts, stacks: make(map[Var][]*Value), undefs: make(map[Var]*Value)}
	b.build()
	return f
}

// valueChunk is the arena chunk size: SSA values per slab allocation.
// Small procedures fit in one chunk; large ones grow chunk-at-a-time
// with stable *Value addresses throughout.
const valueChunk = 256

type ssaBuilder struct {
	f      *Func
	opts   Options
	stacks map[Var][]*Value
	undefs map[Var]*Value
	// arena is the chunk of Value nodes currently being filled; argSlab
	// is the shared backing store that per-value Args slices are carved
	// from. Both trade per-node heap allocations for slab allocations.
	arena   []Value
	argSlab []*Value
	// defStack is the shared renaming-definition log: rename records a
	// watermark on entry and pops back to it on exit, replacing a
	// per-block pushed slice.
	defStack []Var
}

func (b *ssaBuilder) newValue(op ValOp, blk *cfg.Block) *Value {
	if len(b.arena) == cap(b.arena) {
		b.arena = make([]Value, 0, valueChunk)
	}
	b.arena = b.arena[:len(b.arena)+1]
	v := &b.arena[len(b.arena)-1]
	v.ID = len(b.f.Values)
	v.Op = op
	v.Block = blk
	b.f.Values = append(b.f.Values, v)
	return v
}

// argSpan carves an n-pointer sub-slice (capacity-clamped) out of the
// shared args slab.
func (b *ssaBuilder) argSpan(n int) []*Value {
	if len(b.argSlab)+n > cap(b.argSlab) {
		c := 4 * valueChunk
		if n > c {
			c = n
		}
		b.argSlab = make([]*Value, 0, c)
	}
	lo := len(b.argSlab)
	b.argSlab = b.argSlab[:lo+n]
	return b.argSlab[lo : lo+n : lo+n]
}

// trackedVars returns the set of variables to rename: every scalar,
// non-constant symbol of the procedure plus every program global.
func (b *ssaBuilder) trackedVars() map[Var]bool {
	vars := make(map[Var]bool)
	for _, s := range b.f.Proc.Symbols {
		if s.Kind == sem.SymConst || s.Kind == sem.SymProc || s.IsArray {
			continue
		}
		vars[VarOf(s)] = true
	}
	for _, g := range b.opts.Globals {
		if !g.IsArray {
			vars[GlobalVar(g)] = true
		}
	}
	return vars
}

func (b *ssaBuilder) build() {
	f := b.f
	g := f.Graph
	entry := g.Entry
	vars := b.trackedVars()

	// Entry definitions.
	for _, s := range f.Proc.Formals {
		if s.IsArray {
			continue
		}
		v := b.newValue(OpParam, entry)
		v.AuxVar = VarOf(s)
		v.Type = s.Type
		f.Params[s] = v
		b.push(VarOf(s), v)
	}
	for _, gl := range b.opts.Globals {
		if gl.IsArray {
			continue
		}
		v := b.newValue(OpGlobalIn, entry)
		v.AuxVar = GlobalVar(gl)
		v.Type = gl.Type
		f.GlobalIns[gl] = v
		b.push(GlobalVar(gl), v)
	}

	// Phi placement: collect def blocks per variable, then iterate
	// dominance frontiers.
	defBlocks := b.collectDefBlocks(vars)
	// Per-block phi maps are allocated lazily: most blocks get none.
	phiVars := make(map[*cfg.Block]map[Var]*Value)
	for v, blocks := range defBlocks {
		work := make([]*cfg.Block, 0, len(blocks))
		inWork := make(map[*cfg.Block]bool)
		for blk := range blocks {
			work = append(work, blk)
			inWork[blk] = true
		}
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			if !f.Dom.Reachable(blk) {
				continue
			}
			for _, df := range f.Dom.Frontier[blk.ID] {
				if _, has := phiVars[df][v]; has {
					continue
				}
				phi := b.newValue(OpPhi, df)
				phi.AuxVar = v
				phi.Type = varType(v)
				phi.Args = b.argSpan(len(df.Preds))
				if phiVars[df] == nil {
					phiVars[df] = make(map[Var]*Value)
				}
				phiVars[df][v] = phi
				f.Phis[df] = append(f.Phis[df], phi)
				if !inWork[df] {
					work = append(work, df)
					inWork[df] = true
				}
			}
		}
	}

	// Renaming over the dominator tree.
	b.rename(entry, phiVars)
}

// collectDefBlocks finds, per variable, the blocks containing a def.
// Entry defs (params/globals) are in the entry block.
func (b *ssaBuilder) collectDefBlocks(vars map[Var]bool) map[Var]map[*cfg.Block]bool {
	defs := make(map[Var]map[*cfg.Block]bool)
	add := func(v Var, blk *cfg.Block) {
		if !vars[v] {
			return
		}
		if defs[v] == nil {
			defs[v] = make(map[*cfg.Block]bool)
		}
		defs[v][blk] = true
	}
	entry := b.f.Graph.Entry
	for _, s := range b.f.Proc.Formals {
		if !s.IsArray {
			add(VarOf(s), entry)
		}
	}
	for _, g := range b.opts.Globals {
		if !g.IsArray {
			add(GlobalVar(g), entry)
		}
	}
	for _, blk := range b.f.Graph.Blocks {
		for _, in := range blk.Instrs {
			switch in.Kind {
			case cfg.InstrAssign:
				if in.Lhs != nil {
					add(VarOf(in.Lhs), blk)
				}
			case cfg.InstrRead:
				for _, t := range in.Targets {
					if t.Subs == nil && t.Sym != nil && !t.Sym.IsArray {
						add(VarOf(t.Sym), blk)
					}
				}
			case cfg.InstrCall:
				if in.Lhs != nil {
					add(VarOf(in.Lhs), blk)
				}
				killsF, killsG := b.killedVars(in.Site)
				for v := range killsF {
					add(v, blk)
				}
				for g := range killsG {
					add(GlobalVar(g), blk)
				}
			}
		}
	}
	return defs
}

// killedVars computes the caller-side variables a call may modify:
// scalar variable actuals bound to killed formals, and killed globals.
func (b *ssaBuilder) killedVars(site *cfg.CallSite) (map[Var]bool, map[*sem.GlobalVar]bool) {
	var killF map[int]bool
	var killG map[*sem.GlobalVar]bool
	all := true
	if b.opts.Kills != nil {
		killF, killG, all = b.opts.Kills(site)
	}
	outF := make(map[Var]bool)
	for i, arg := range site.Args {
		if !all && !killF[i] {
			continue
		}
		if id, ok := arg.(*ast.Ident); ok {
			if s := b.f.Proc.Lookup(id.Name); s != nil && !s.IsArray &&
				(s.Kind == sem.SymLocal || s.Kind == sem.SymFormal || s.Kind == sem.SymCommon || s.Kind == sem.SymResult) {
				outF[VarOf(s)] = true
			}
		}
	}
	outG := make(map[*sem.GlobalVar]bool)
	for _, g := range b.opts.Globals {
		if g.IsArray {
			continue
		}
		if all || killG[g] {
			outG[g] = true
		}
	}
	return outF, outG
}
