package ssa

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// buildSSA runs the full front end and returns the SSA of one procedure
// with real MOD-based kills.
func buildSSA(t *testing.T, src, name string) (*Func, *sem.Program) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	info := modref.Compute(cg)
	n := cg.Nodes[name]
	if n == nil {
		t.Fatalf("no procedure %s", name)
	}
	dt := dom.Compute(n.CFG)
	fn := Build(n.CFG, dt, Options{Kills: info.Kills, Globals: prog.Globals()})
	return fn, prog
}

// buildSSANoMod builds SSA with worst-case kill assumptions.
func buildSSANoMod(t *testing.T, src, name string) *Func {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	n := cg.Nodes[name]
	dt := dom.Compute(n.CFG)
	return Build(n.CFG, dt, Options{Globals: prog.Globals()})
}

func TestSingleAssignmentProperty(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, J
I = 1
I = I + 1
IF (I .GT. 0) THEN
  J = I
ELSE
  J = 2
ENDIF
PRINT *, J
END
`, "P")
	// Every value appears exactly once in fn.Values with a unique ID.
	seen := make(map[int]bool)
	for _, v := range fn.Values {
		if seen[v.ID] {
			t.Fatalf("duplicate value ID %d", v.ID)
		}
		seen[v.ID] = true
	}
}

func TestPhiPlacementAtJoin(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .GT. 0) THEN
  J = 1
ELSE
  J = 2
ENDIF
PRINT *, J
END
`, "P")
	// Find a phi for J.
	var phi *Value
	for _, phis := range fn.Phis {
		for _, p := range phis {
			if p.AuxVar.Sym != nil && p.AuxVar.Sym.Name == "J" {
				phi = p
			}
		}
	}
	if phi == nil {
		t.Fatal("no phi for J at the join")
	}
	if len(phi.Args) != 2 {
		t.Fatalf("phi args = %d", len(phi.Args))
	}
	for _, a := range phi.Args {
		if a == nil {
			t.Fatal("phi arg not filled")
		}
		if a.Op != OpConst {
			t.Errorf("phi arg should be a constant, got %v", a)
		}
	}
}

func TestLoopPhi(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, S
S = 0
DO I = 1, 10
  S = S + I
ENDDO
PRINT *, S
END
`, "P")
	// S needs a phi at the loop head merging 0 and S+I.
	var sPhis int
	for _, phis := range fn.Phis {
		for _, p := range phis {
			if p.AuxVar.Sym != nil && p.AuxVar.Sym.Name == "S" {
				sPhis++
			}
		}
	}
	if sPhis == 0 {
		t.Error("no phi for S at the loop head")
	}
}

func TestDominanceOfUses(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, J, K
READ *, I
J = I * 2
IF (J .GT. 4) THEN
  K = J + 1
ELSE
  K = J - 1
ENDIF
PRINT *, K
END
`, "P")
	// SSA invariant: for every non-phi value, each argument's defining
	// block dominates the value's block.
	for _, v := range fn.Values {
		if v.Op == OpPhi {
			// Phi args must be defined in blocks dominating the
			// corresponding predecessor (weaker check: defined somewhere).
			continue
		}
		for _, a := range v.Args {
			if a == nil {
				t.Fatalf("nil arg on %v", v)
			}
			if !fn.Dom.Dominates(a.Block, v.Block) {
				t.Errorf("def %v in b%d does not dominate use %v in b%d", a, a.Block.ID, v, v.Block.ID)
			}
		}
	}
}

func TestParamAndGlobalEntryValues(t *testing.T) {
	fn, prog := buildSSA(t, `PROGRAM MAIN
CALL S(1, 2)
END
SUBROUTINE S(A, B)
INTEGER A, B, G
COMMON /C/ G
PRINT *, A + B + G
END
`, "S")
	s := prog.Procs["S"]
	if fn.Params[s.Formals[0]] == nil || fn.Params[s.Formals[1]] == nil {
		t.Fatal("missing param entry values")
	}
	g := prog.CommonBlocks["C"][0]
	if fn.GlobalIns[g] == nil {
		t.Fatal("missing global entry value")
	}
}

func TestExitValsIdentityForUnmodifiedFormal(t *testing.T) {
	fn, prog := buildSSA(t, `PROGRAM MAIN
INTEGER I
CALL S(I, 2)
END
SUBROUTINE S(A, B)
INTEGER A, B
A = B + 1
END
`, "S")
	s := prog.Procs["S"]
	aVar := VarOf(s.Formals[0])
	bVar := VarOf(s.Formals[1])
	av := fn.ExitVals[aVar]
	bv := fn.ExitVals[bVar]
	if bv == nil || bv.Op != OpParam {
		t.Errorf("unmodified B at exit should be its entry param, got %v", bv)
	}
	if av == nil || av.Op != OpArith {
		t.Errorf("A at exit should be B+1 arith, got %v", av)
	}
}

func TestCallKillsWithMod(t *testing.T) {
	src := `PROGRAM P
INTEGER X, Y
X = 1
Y = 2
CALL S(X, Y)
PRINT *, X, Y
END
SUBROUTINE S(A, B)
INTEGER A, B
A = 99
END
`
	fn, _ := buildSSA(t, src, "P")
	// After the call, X must be a PostCall value; Y must still be the
	// constant 2 (B not in MOD(S)).
	var printInstr *cfg.Instr
	for _, b := range fn.Graph.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == cfg.InstrPrint {
				printInstr = in
			}
		}
	}
	if printInstr == nil {
		t.Fatal("no print instruction")
	}
	xv := fn.UseVal[printInstr.Args[0]]
	yv := fn.UseVal[printInstr.Args[1]]
	if xv == nil || xv.Op != OpPostCall {
		t.Errorf("X after call = %v, want PostCall", xv)
	}
	if yv == nil || yv.Op != OpConst || yv.AuxInt != 2 {
		t.Errorf("Y after call = %v, want const 2", yv)
	}

	// Without MOD info, both are killed.
	fn2 := buildSSANoMod(t, src, "P")
	var print2 *cfg.Instr
	for _, b := range fn2.Graph.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == cfg.InstrPrint {
				print2 = in
			}
		}
	}
	yv2 := fn2.UseVal[print2.Args[1]]
	if yv2 == nil || yv2.Op != OpPostCall {
		t.Errorf("no-MOD: Y after call = %v, want PostCall", yv2)
	}
}

func TestGlobalsKilledByCall(t *testing.T) {
	fn, prog := buildSSA(t, `PROGRAM P
INTEGER G
COMMON /C/ G
G = 5
CALL TOUCH
PRINT *, G
END
SUBROUTINE TOUCH()
INTEGER H
COMMON /C/ H
H = 6
END
`, "P")
	g := prog.CommonBlocks["C"][0]
	var printInstr *cfg.Instr
	for _, b := range fn.Graph.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == cfg.InstrPrint {
				printInstr = in
			}
		}
	}
	gv := fn.UseVal[printInstr.Args[0]]
	if gv == nil || gv.Op != OpPostCall {
		t.Errorf("G after call = %v, want PostCall", gv)
	}
	// The call info must have recorded G's pre-call value (const 5).
	var site *cfg.CallSite
	for s := range fn.Calls {
		site = s
	}
	info := fn.Calls[site]
	pre := info.GlobalVals[g]
	if pre == nil || pre.Op != OpConst || pre.AuxInt != 5 {
		t.Errorf("pre-call global value = %v, want const 5", pre)
	}
}

func TestCallInfoArgVals(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, A(10)
I = 3
CALL S(I, I + 1, A, A(2))
END
SUBROUTINE S(W, X, Y, Z)
INTEGER W, X, Y(10), Z
W = Z + Y(1) + X
END
`, "P")
	if len(fn.Calls) != 1 {
		t.Fatalf("calls = %d", len(fn.Calls))
	}
	for _, info := range fn.Calls {
		if len(info.ArgVals) != 4 {
			t.Fatalf("args = %d", len(info.ArgVals))
		}
		if info.ArgVals[0] == nil || info.ArgVals[0].Op != OpConst {
			t.Errorf("arg0 = %v, want const", info.ArgVals[0])
		}
		if info.ArgVals[1] == nil || info.ArgVals[1].Op != OpArith {
			t.Errorf("arg1 = %v, want arith", info.ArgVals[1])
		}
		if !info.ArgIsWholeArray[2] || info.ArgVals[2] != nil {
			t.Errorf("arg2 should be whole array")
		}
		if info.ArgVals[3] == nil || info.ArgVals[3].Op != OpArrayLoad {
			t.Errorf("arg3 = %v, want arrayload", info.ArgVals[3])
		}
	}
}

func TestFunctionResultValue(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I
I = F(2)
PRINT *, I
END
INTEGER FUNCTION F(X)
INTEGER X
F = X * 2
END
`, "P")
	var hasCallRes bool
	for _, v := range fn.Values {
		if v.Op == OpCallRes {
			hasCallRes = true
		}
	}
	if !hasCallRes {
		t.Error("no OpCallRes value for function call")
	}
}

func TestResultSymbolInExitVals(t *testing.T) {
	fn, prog := buildSSA(t, `PROGRAM P
I = F(2)
END
INTEGER FUNCTION F(X)
INTEGER X
F = X + 40
END
`, "F")
	f := prog.Procs["F"]
	rv := fn.ExitVals[VarOf(f.Result)]
	if rv == nil || rv.Op != OpArith {
		t.Errorf("result exit value = %v, want arith X+40", rv)
	}
}

func TestUndefUse(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, J
J = I + 1
END
`, "P")
	hasUndef := false
	for _, v := range fn.Values {
		if v.Op == OpUndef {
			hasUndef = true
		}
	}
	if !hasUndef {
		t.Error("use of uninitialized I should produce OpUndef")
	}
}

func TestReadProducesOpRead(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER N
READ *, N
PRINT *, N + 1
END
`, "P")
	found := false
	for _, v := range fn.Values {
		if v.Op == OpRead {
			found = true
		}
	}
	if !found {
		t.Error("READ target should define an OpRead value")
	}
}

func TestValueStrings(t *testing.T) {
	fn, _ := buildSSA(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .GT. 0) THEN
  J = 1
ELSE
  J = 2
ENDIF
PRINT *, J
END
`, "P")
	for _, v := range fn.Values {
		if v.String() == "" {
			t.Errorf("empty String for %d", v.ID)
		}
	}
}

// TestSSAInvariantsOnRandomPrograms checks, over generated programs:
// every value has a unique ID; non-phi arguments' defining blocks
// dominate the user's block; phi argument counts match predecessor
// counts; every tracked use resolves to a value.
func TestSSAInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := gen.Program(gen.Config{Seed: seed, NumProcs: 4, StmtsPerProc: 10})
		var diags source.ErrorList
		f := parser.ParseSource("gen.f", src, &diags)
		prog := sem.Analyze(f, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: %s", seed, diags.Error())
		}
		cg := callgraph.Build(prog)
		info := modref.Compute(cg)
		for _, n := range cg.Order {
			dt := dom.Compute(n.CFG)
			fn := Build(n.CFG, dt, Options{Kills: info.Kills, Globals: prog.Globals()})

			seen := make(map[int]bool)
			for _, v := range fn.Values {
				if seen[v.ID] {
					t.Fatalf("seed %d %s: duplicate ID %d", seed, n.Proc.Name, v.ID)
				}
				seen[v.ID] = true
				if v.Op == OpPhi {
					if len(v.Args) != len(v.Block.Preds) {
						t.Fatalf("seed %d %s: phi arity %d != preds %d", seed, n.Proc.Name, len(v.Args), len(v.Block.Preds))
					}
					continue
				}
				for _, a := range v.Args {
					if a == nil {
						t.Fatalf("seed %d %s: nil arg on %v", seed, n.Proc.Name, v)
					}
					if dt.Reachable(v.Block) && dt.Reachable(a.Block) && !dt.Dominates(a.Block, v.Block) {
						t.Fatalf("seed %d %s: def of %v does not dominate use %v", seed, n.Proc.Name, a, v)
					}
				}
			}
			for e, v := range fn.UseVal {
				if v == nil {
					t.Fatalf("seed %d %s: nil UseVal for %T", seed, n.Proc.Name, e)
				}
			}
		}
	}
}
