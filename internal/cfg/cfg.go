// Package cfg builds per-procedure control-flow graphs from analyzed
// F77s program units.
//
// The builder lowers structured statements (block IF, DO) and arbitrary
// GOTOs into a flat instruction list with explicit branches, extracts
// function calls out of expressions into compiler temporaries (fixing
// evaluation order and giving every call a CallSite), and then slices
// the flat list into basic blocks.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
)

// Graph is the control-flow graph of one procedure.
type Graph struct {
	Proc   *sem.Procedure
	Blocks []*Block // Blocks[0] is the entry block
	Entry  *Block
	Exit   *Block // every RETURN/STOP/fall-off-END reaches here
	// Sites lists all call sites in the procedure, in instruction order.
	Sites []*CallSite
}

// Block is a basic block: straight-line instructions plus a terminator.
type Block struct {
	ID     int
	Instrs []*Instr
	Term   Terminator
	Succs  []*Block
	Preds  []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// InstrKind classifies instructions.
type InstrKind int

const (
	// InstrAssign: Lhs = Rhs (Lhs is a scalar symbol), or
	// LhsArray(Subs...) = Rhs when LhsArray != nil.
	InstrAssign InstrKind = iota
	// InstrCall: a call site. For function calls, Lhs receives the
	// result; for CALL statements Lhs is nil.
	InstrCall
	// InstrRead: each target in Targets receives runtime input.
	InstrRead
	// InstrPrint: evaluates Args for output.
	InstrPrint
)

// Instr is one non-branching instruction.
type Instr struct {
	Kind InstrKind
	Pos  source.Position

	// InstrAssign / InstrCall result:
	Lhs      *sem.Symbol // scalar target (nil for array stores and CALL)
	LhsArray *sem.Symbol // array target symbol, with Subs subscripts
	Subs     []ast.Expr
	Rhs      ast.Expr // InstrAssign right-hand side

	Site *CallSite // InstrCall

	Targets []Target   // InstrRead
	Args    []ast.Expr // InstrPrint
}

// Target is a READ destination: a scalar or an array element.
type Target struct {
	Sym  *sem.Symbol
	Subs []ast.Expr // nil for scalars
}

func (in *Instr) String() string {
	switch in.Kind {
	case InstrAssign:
		if in.LhsArray != nil {
			subs := make([]string, len(in.Subs))
			for i, s := range in.Subs {
				subs[i] = ast.ExprString(s)
			}
			return fmt.Sprintf("%s(%s) = %s", in.LhsArray.Name, strings.Join(subs, ", "), ast.ExprString(in.Rhs))
		}
		return fmt.Sprintf("%s = %s", in.Lhs.Name, ast.ExprString(in.Rhs))
	case InstrCall:
		s := in.Site
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = ast.ExprString(a)
		}
		if in.Lhs != nil {
			return fmt.Sprintf("%s = %s(%s)", in.Lhs.Name, s.Callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("CALL %s(%s)", s.Callee, strings.Join(args, ", "))
	case InstrRead:
		parts := make([]string, len(in.Targets))
		for i, t := range in.Targets {
			parts[i] = t.Sym.Name
		}
		return "READ " + strings.Join(parts, ", ")
	default:
		return "PRINT"
	}
}

// CallSite is one static call (CALL statement or function reference).
type CallSite struct {
	ID     int // unique within the procedure
	Caller *sem.Procedure
	Callee string // callee name (resolved procedure)
	Args   []ast.Expr
	Pos    source.Position
	Block  *Block
	// IsFunction marks function-reference sites.
	IsFunction bool
	// Origin points back to the source AST node that produced the site:
	// an *ast.CallStmt for CALL statements or an *ast.Apply for function
	// references. Transformations (e.g. procedure cloning) use it to
	// retarget individual sites.
	Origin ast.Node
}

func (s *CallSite) String() string {
	return fmt.Sprintf("%s→%s@%d", s.Caller.Name, s.Callee, s.ID)
}

// TermKind classifies block terminators.
type TermKind int

const (
	TermJump TermKind = iota
	TermCond
	TermReturn
	TermStop
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	Cond ast.Expr // TermCond
	Pos  source.Position
	// Successor indices into Block.Succs: TermJump uses Succs[0];
	// TermCond uses Succs[0] (true) and Succs[1] (false).
}

// ---------------------------------------------------------------------
// Builder

// Build constructs the CFG for one procedure. prog supplies Apply
// resolution (array vs call).
func Build(prog *sem.Program, proc *sem.Procedure) *Graph {
	b := &builder{prog: prog, proc: proc, labelPCs: make(map[string]int)}
	// DATA statements initialize storage at load time. For the main
	// program (which runs exactly once, first) that is equivalent to
	// assignments at entry; for other units it is not (they may be
	// re-entered), so their DATA values are handled conservatively by
	// the interprocedural driver.
	if proc.Unit.Kind == ast.ProgramUnit {
		for _, d := range proc.Unit.Decls {
			dd, ok := d.(*ast.DataDecl)
			if !ok {
				continue
			}
			for i, name := range dd.Names {
				if i >= len(dd.Values) {
					break
				}
				s := proc.Lookup(name)
				if s == nil || s.IsArray || s.Kind == sem.SymConst {
					continue
				}
				b.emitFlat(flatOp{kind: flatInstr, pos: dd.Pos(),
					instr: b.newInstr(Instr{Kind: InstrAssign, Pos: dd.Pos(), Lhs: s, Rhs: dd.Values[i]})})
			}
		}
	}
	b.flatten(proc.Unit.Body)
	// Fall off the end of the unit = RETURN (STOP for PROGRAM units, but
	// both just reach Exit).
	b.emitFlat(flatOp{kind: flatReturn})
	return b.assemble()
}

// flatOp is one element of the flattened instruction stream.
type flatKind int

const (
	flatInstr       flatKind = iota
	flatJump                 // unconditional to label
	flatBranchFalse          // if !cond goto label
	flatBranchTrue           // if cond goto label
	flatReturn
	flatStop
	flatLabel // label definition point (no code)
)

type flatOp struct {
	kind  flatKind
	instr *Instr
	cond  ast.Expr
	label string // target (jump/branch) or defined label
	pos   source.Position
}

type builder struct {
	prog     *sem.Program
	proc     *sem.Procedure
	ops      []flatOp
	labelPCs map[string]int // label → index in ops of its flatLabel
	nextGen  int            // generator for synthesized labels
	sites    []*CallSite

	// instrArena and blockArena are slab chunks for Instr/Block nodes;
	// blkSlab backs the small Succs/Preds slices. All three trade
	// per-node heap allocations for chunked slab allocations with
	// stable addresses.
	instrArena []Instr
	blockArena []Block
	blkSlab    []*Block
}

// grownChunk sizes the next slab chunk for a builder arena: first on
// an empty arena, then doubling the previous chunk up to max. Builders
// are per-procedure and most procedures are small, so starting small
// matters: a finished Graph pins every chunk its nodes live in (an
// incremental cache retains CFGs long after the builder is gone), and
// fixed large chunks would make tiny procedures retain mostly slack.
// Doubling keeps the chunk count — and so the allocation count —
// logarithmic in procedure size.
func grownChunk(cur, first, max int) int {
	if cur == 0 {
		return first
	}
	if n := 2 * cur; n < max {
		return n
	}
	return max
}

// newInstr allocates an instruction from the arena.
func (b *builder) newInstr(in Instr) *Instr {
	if len(b.instrArena) == cap(b.instrArena) {
		b.instrArena = make([]Instr, 0, grownChunk(cap(b.instrArena), 16, 256))
	}
	b.instrArena = append(b.instrArena, in)
	return &b.instrArena[len(b.instrArena)-1]
}

// edgeAppend appends to a Succs/Preds list, seeding empty lists with a
// capacity-2 window of the shared slab (almost every block has at most
// two successors and two predecessors; rare fan-in growth falls back to
// a normal append).
func (b *builder) edgeAppend(s []*Block, x *Block) []*Block {
	if s == nil {
		if len(b.blkSlab)+2 > cap(b.blkSlab) {
			b.blkSlab = make([]*Block, 0, grownChunk(cap(b.blkSlab), 32, 512))
		}
		lo := len(b.blkSlab)
		b.blkSlab = b.blkSlab[:lo+2]
		s = b.blkSlab[lo : lo : lo+2]
	}
	return append(s, x)
}

func (b *builder) genLabel() string {
	b.nextGen++
	return fmt.Sprintf("@L%d", b.nextGen)
}

func (b *builder) emitFlat(op flatOp) { b.ops = append(b.ops, op) }

func (b *builder) defineLabel(l string) {
	b.labelPCs[l] = len(b.ops)
	b.emitFlat(flatOp{kind: flatLabel, label: l})
}

func (b *builder) flatten(stmts []ast.Stmt) {
	for _, s := range stmts {
		if l := s.Label(); l != "" {
			b.defineLabel(l)
		}
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		rhs := b.extractCalls(x.Rhs)
		in := b.newInstr(Instr{Kind: InstrAssign, Pos: x.Pos(), Rhs: rhs})
		switch lhs := x.Lhs.(type) {
		case *ast.Ident:
			in.Lhs = b.proc.Lookup(lhs.Name)
		case *ast.Apply:
			in.LhsArray = b.proc.Lookup(lhs.Name)
			in.Subs = b.extractCallsList(lhs.Args)
		}
		b.emitFlat(flatOp{kind: flatInstr, instr: in, pos: x.Pos()})
	case *ast.CallStmt:
		args := b.extractCallsList(x.Args)
		site := &CallSite{Caller: b.proc, Callee: x.Name, Args: args, Pos: x.Pos(), Origin: x}
		b.sites = append(b.sites, site)
		b.emitFlat(flatOp{kind: flatInstr, pos: x.Pos(),
			instr: b.newInstr(Instr{Kind: InstrCall, Pos: x.Pos(), Site: site})})
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.DoStmt:
		b.doStmt(x)
	case *ast.GotoStmt:
		b.emitFlat(flatOp{kind: flatJump, label: x.Target, pos: x.Pos()})
	case *ast.ComputedGotoStmt:
		b.computedGoto(x)
	case *ast.ArithIfStmt:
		b.arithIf(x)
	case *ast.ContinueStmt:
		// No code; the label (if any) was already defined.
	case *ast.ReturnStmt:
		b.emitFlat(flatOp{kind: flatReturn, pos: x.Pos()})
	case *ast.StopStmt:
		b.emitFlat(flatOp{kind: flatStop, pos: x.Pos()})
	case *ast.ReadStmt:
		in := b.newInstr(Instr{Kind: InstrRead, Pos: x.Pos()})
		for _, t := range x.Args {
			switch tv := t.(type) {
			case *ast.Ident:
				in.Targets = append(in.Targets, Target{Sym: b.proc.Lookup(tv.Name)})
			case *ast.Apply:
				in.Targets = append(in.Targets, Target{
					Sym:  b.proc.Lookup(tv.Name),
					Subs: b.extractCallsList(tv.Args),
				})
			}
		}
		b.emitFlat(flatOp{kind: flatInstr, instr: in, pos: x.Pos()})
	case *ast.PrintStmt:
		in := b.newInstr(Instr{Kind: InstrPrint, Pos: x.Pos(), Args: b.extractCallsList(x.Args)})
		b.emitFlat(flatOp{kind: flatInstr, instr: in, pos: x.Pos()})
	}
}

func (b *builder) ifStmt(x *ast.IfStmt) {
	endLabel := b.genLabel()
	// Chain of arms: IF, ELSEIFs, ELSE.
	type arm struct {
		cond ast.Expr
		body []ast.Stmt
	}
	arms := []arm{{x.Cond, x.Then}}
	for _, ei := range x.ElseIfs {
		arms = append(arms, arm{ei.Cond, ei.Body})
	}
	for i, a := range arms {
		nextLabel := endLabel
		if i < len(arms)-1 || len(x.Else) > 0 {
			nextLabel = b.genLabel()
		}
		cond := b.extractCalls(a.cond)
		b.emitFlat(flatOp{kind: flatBranchFalse, cond: cond, label: nextLabel, pos: x.Pos()})
		b.flatten(a.body)
		if nextLabel != endLabel {
			b.emitFlat(flatOp{kind: flatJump, label: endLabel, pos: x.Pos()})
			b.defineLabel(nextLabel)
		}
	}
	if len(x.Else) > 0 {
		b.flatten(x.Else)
	}
	b.defineLabel(endLabel)
}

// doStmt lowers a DO loop:
//
//	I = from
//	@limit = to            (snapshot; F77 fixes the bound at entry)
//	@step  = step          (when the step is not a literal)
//	head:  IF (.NOT. cond) GOTO exit
//	       body            (the terminator label, if any, sits in body)
//	       I = I + step
//	       GOTO head
//	exit:
func (b *builder) doStmt(x *ast.DoStmt) {
	v := b.proc.Lookup(x.Var)
	pos := x.Pos()

	from := b.extractCalls(x.From)
	b.emitFlat(flatOp{kind: flatInstr, pos: pos,
		instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: v, Rhs: from})})

	// Snapshot the bound unless it is a literal.
	toExpr := b.extractCalls(x.To)
	var limitRef ast.Expr
	if lit, ok := toExpr.(*ast.IntLit); ok {
		limitRef = lit
	} else {
		limit := b.proc.NewTemp(ast.TypeInteger)
		b.emitFlat(flatOp{kind: flatInstr, pos: pos,
			instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: limit, Rhs: toExpr})})
		limitRef = &ast.Ident{Position: pos, Name: limit.Name}
	}

	// Step: literal 1 when omitted; snapshot when not a literal.
	var stepRef ast.Expr
	stepVal, stepKnown := int64(1), true
	if x.Step != nil {
		se := b.extractCalls(x.Step)
		if lit, ok := se.(*ast.IntLit); ok {
			stepRef = lit
			stepVal = lit.Value
		} else if u, ok := se.(*ast.Unary); ok && u.Op == ast.OpNeg {
			if lit, ok := u.X.(*ast.IntLit); ok {
				stepRef = se
				stepVal = -lit.Value
			}
		}
		if stepRef == nil {
			stepKnown = false
			st := b.proc.NewTemp(ast.TypeInteger)
			b.emitFlat(flatOp{kind: flatInstr, pos: pos,
				instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: st, Rhs: se})})
			stepRef = &ast.Ident{Position: pos, Name: st.Name}
		}
	} else {
		stepRef = &ast.IntLit{Position: pos, Value: 1}
	}

	head := b.genLabel()
	exit := b.genLabel()
	b.defineLabel(head)

	vRef := &ast.Ident{Position: pos, Name: v.Name}
	var cond ast.Expr
	switch {
	case stepKnown && stepVal >= 0:
		cond = &ast.Binary{Position: pos, Op: ast.OpLe, X: vRef, Y: limitRef}
	case stepKnown:
		cond = &ast.Binary{Position: pos, Op: ast.OpGe, X: vRef, Y: limitRef}
	default:
		// Runtime-signed step: (step > 0 .AND. v <= limit) .OR.
		// (step <= 0 .AND. v >= limit).
		up := &ast.Binary{Position: pos, Op: ast.OpAnd,
			X: &ast.Binary{Position: pos, Op: ast.OpGt, X: stepRef, Y: &ast.IntLit{Position: pos, Value: 0}},
			Y: &ast.Binary{Position: pos, Op: ast.OpLe, X: vRef, Y: limitRef}}
		down := &ast.Binary{Position: pos, Op: ast.OpAnd,
			X: &ast.Binary{Position: pos, Op: ast.OpLe, X: stepRef, Y: &ast.IntLit{Position: pos, Value: 0}},
			Y: &ast.Binary{Position: pos, Op: ast.OpGe, X: vRef, Y: limitRef}}
		cond = &ast.Binary{Position: pos, Op: ast.OpOr, X: up, Y: down}
	}
	b.emitFlat(flatOp{kind: flatBranchFalse, cond: cond, label: exit, pos: pos})

	b.flatten(x.Body)

	incr := &ast.Binary{Position: pos, Op: ast.OpAdd, X: vRef, Y: stepRef}
	b.emitFlat(flatOp{kind: flatInstr, pos: pos,
		instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: v, Rhs: incr})})
	b.emitFlat(flatOp{kind: flatJump, label: head, pos: pos})
	b.defineLabel(exit)
}

// computedGoto lowers `GOTO (l1, …, ln), e` into a temp assignment and
// a chain of equality branches; an out-of-range index falls through.
func (b *builder) computedGoto(x *ast.ComputedGotoStmt) {
	pos := x.Pos()
	idx := b.extractCalls(x.Index)
	t := b.proc.NewTemp(ast.TypeInteger)
	b.emitFlat(flatOp{kind: flatInstr, pos: pos,
		instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: t, Rhs: idx})})
	tRef := &ast.Ident{Position: pos, Name: t.Name}
	for i, lbl := range x.Targets {
		cond := &ast.Binary{Position: pos, Op: ast.OpEq, X: tRef, Y: &ast.IntLit{Position: pos, Value: int64(i + 1)}}
		b.emitFlat(flatOp{kind: flatBranchTrue, cond: cond, label: lbl, pos: pos})
	}
}

// arithIf lowers `IF (e) l1, l2, l3` into a temp assignment and two
// branches (negative, zero) with an unconditional jump for positive.
func (b *builder) arithIf(x *ast.ArithIfStmt) {
	pos := x.Pos()
	e := b.extractCalls(x.Expr)
	t := b.proc.NewTemp(b.prog.TypeOf(x.Expr))
	b.emitFlat(flatOp{kind: flatInstr, pos: pos,
		instr: b.newInstr(Instr{Kind: InstrAssign, Pos: pos, Lhs: t, Rhs: e})})
	tRef := &ast.Ident{Position: pos, Name: t.Name}
	zero := &ast.IntLit{Position: pos, Value: 0}
	b.emitFlat(flatOp{kind: flatBranchTrue, pos: pos, label: x.LtLabel,
		cond: &ast.Binary{Position: pos, Op: ast.OpLt, X: tRef, Y: zero}})
	b.emitFlat(flatOp{kind: flatBranchTrue, pos: pos, label: x.EqLabel,
		cond: &ast.Binary{Position: pos, Op: ast.OpEq, X: tRef, Y: zero}})
	b.emitFlat(flatOp{kind: flatJump, label: x.GtLabel, pos: pos})
}

// extractCalls rewrites an expression so that it contains no function
// calls: each user-function Apply becomes a CallSite whose result lands
// in a fresh temporary, and the expression references the temporary.
// Intrinsics and array references are left in place.
//
// Call-free trees — the overwhelmingly common case — are returned
// as-is instead of being deep-copied: downstream consumers key on node
// identity only for single-occurrence source nodes, which sharing
// preserves, and never mutate instruction expressions.
func (b *builder) extractCalls(e ast.Expr) ast.Expr {
	if e == nil || !b.hasCall(e) {
		return e
	}
	return b.extractCallsSlow(e)
}

// hasCall reports whether the tree contains a user-function call.
func (b *builder) hasCall(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Apply:
		if b.prog.ApplyKindOf(x) == sem.ApplyCall {
			return true
		}
		for _, a := range x.Args {
			if b.hasCall(a) {
				return true
			}
		}
	case *ast.Unary:
		return b.hasCall(x.X)
	case *ast.Binary:
		return b.hasCall(x.X) || b.hasCall(x.Y)
	}
	return false
}

func (b *builder) extractCallsSlow(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Apply:
		args := b.extractCallsList(x.Args)
		if b.prog.ApplyKindOf(x) == sem.ApplyCall {
			callee := b.prog.Procs[x.Name]
			t := b.proc.NewTemp(resultType(callee))
			site := &CallSite{Caller: b.proc, Callee: x.Name, Args: args, Pos: x.Pos(), IsFunction: true, Origin: x}
			b.sites = append(b.sites, site)
			b.emitFlat(flatOp{kind: flatInstr, pos: x.Pos(),
				instr: b.newInstr(Instr{Kind: InstrCall, Pos: x.Pos(), Site: site, Lhs: t})})
			return &ast.Ident{Position: x.Pos(), Name: t.Name}
		}
		return &ast.Apply{Position: x.Position, Name: x.Name, Args: args}
	case *ast.Unary:
		return &ast.Unary{Position: x.Position, Op: x.Op, X: b.extractCalls(x.X)}
	case *ast.Binary:
		// Note: both operands are always evaluated (no short-circuit in
		// F77s), left to right.
		return &ast.Binary{Position: x.Position, Op: x.Op, X: b.extractCalls(x.X), Y: b.extractCalls(x.Y)}
	default:
		return e
	}
}

func (b *builder) extractCallsList(es []ast.Expr) []ast.Expr {
	changed := false
	for _, e := range es {
		if b.hasCall(e) {
			changed = true
			break
		}
	}
	if !changed {
		return es
	}
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = b.extractCalls(e)
	}
	return out
}

func resultType(p *sem.Procedure) ast.BaseType {
	if p != nil && p.Unit.Kind == ast.FunctionUnit {
		return p.Unit.Result
	}
	return ast.TypeInteger
}

// ---------------------------------------------------------------------
// Block assembly

func (b *builder) assemble() *Graph {
	g := &Graph{Proc: b.proc}

	// Find leaders: op 0, targets of jumps/branches, ops after
	// jumps/branches/returns/stops.
	isLeader := make([]bool, len(b.ops)+1)
	isLeader[0] = true
	for i, op := range b.ops {
		switch op.kind {
		case flatJump, flatReturn, flatStop:
			isLeader[i+1] = true
		case flatBranchFalse, flatBranchTrue:
			isLeader[i+1] = true
		}
		if op.kind == flatJump || op.kind == flatBranchFalse || op.kind == flatBranchTrue {
			if pc, ok := b.labelPCs[op.label]; ok {
				isLeader[pc] = true
			}
		}
	}

	// Allocate blocks per leader position, arena-backed and indexed by
	// a dense slice over op positions.
	blockAt := make([]*Block, len(b.ops)+1)
	newBlock := func() *Block {
		if len(b.blockArena) == cap(b.blockArena) {
			b.blockArena = make([]Block, 0, grownChunk(cap(b.blockArena), 8, 128))
		}
		b.blockArena = b.blockArena[:len(b.blockArena)+1]
		blk := &b.blockArena[len(b.blockArena)-1]
		blk.ID = len(g.Blocks)
		g.Blocks = append(g.Blocks, blk)
		return blk
	}
	for i := 0; i < len(b.ops); i++ {
		if isLeader[i] {
			blockAt[i] = newBlock()
		}
	}
	g.Exit = newBlock()
	g.Exit.Term = Terminator{Kind: TermReturn}

	// blockOfLabel resolves a label to the block at (or after) its PC.
	blockOfLabel := func(label string, pos source.Position) *Block {
		pc, ok := b.labelPCs[label]
		if !ok {
			// sem already reported undefined GOTO labels; route to exit
			// to keep the graph well-formed.
			return g.Exit
		}
		for pc < len(b.ops) {
			if blk := blockAt[pc]; blk != nil {
				return blk
			}
			pc++
		}
		return g.Exit
	}

	link := func(from, to *Block) {
		from.Succs = b.edgeAppend(from.Succs, to)
		to.Preds = b.edgeAppend(to.Preds, from)
	}

	// Fill blocks.
	var cur *Block
	terminated := false
	for i, op := range b.ops {
		if blk := blockAt[i]; blk != nil {
			if cur != nil && !terminated {
				cur.Term = Terminator{Kind: TermJump}
				link(cur, blk)
			}
			cur = blk
			terminated = false
		}
		if terminated || cur == nil {
			continue // unreachable code after a jump within the block run
		}
		switch op.kind {
		case flatLabel:
			// no code
		case flatInstr:
			cur.Instrs = append(cur.Instrs, op.instr)
			if op.instr.Kind == InstrCall {
				op.instr.Site.Block = cur
			}
		case flatJump:
			cur.Term = Terminator{Kind: TermJump, Pos: op.pos}
			link(cur, blockOfLabel(op.label, op.pos))
			terminated = true
		case flatBranchFalse:
			cur.Term = Terminator{Kind: TermCond, Cond: op.cond, Pos: op.pos}
			// Succs[0] = true (fall through), Succs[1] = false (target).
			fallthroughBlk := blockAt[i+1]
			if fallthroughBlk == nil {
				fallthroughBlk = g.Exit
			}
			link(cur, fallthroughBlk)
			link(cur, blockOfLabel(op.label, op.pos))
			terminated = true
		case flatBranchTrue:
			cur.Term = Terminator{Kind: TermCond, Cond: op.cond, Pos: op.pos}
			// Succs[0] = true (target), Succs[1] = false (fall through).
			link(cur, blockOfLabel(op.label, op.pos))
			fallthroughBlk := blockAt[i+1]
			if fallthroughBlk == nil {
				fallthroughBlk = g.Exit
			}
			link(cur, fallthroughBlk)
			terminated = true
		case flatReturn:
			cur.Term = Terminator{Kind: TermReturn, Pos: op.pos}
			link(cur, g.Exit)
			terminated = true
		case flatStop:
			cur.Term = Terminator{Kind: TermStop, Pos: op.pos}
			link(cur, g.Exit)
			terminated = true
		}
	}

	g.Entry = g.Blocks[0]
	b.pruneUnreachable(g)

	// Number call sites in block order for stable IDs.
	id := 0
	for _, blk := range g.Blocks {
		for _, in := range blk.Instrs {
			if in.Kind == InstrCall {
				in.Site.ID = id
				id++
				g.Sites = append(g.Sites, in.Site)
			}
		}
	}
	return g
}

// pruneUnreachable removes blocks not reachable from the entry (keeping
// the exit block), renumbers, and fixes pred lists.
func (b *builder) pruneUnreachable(g *Graph) {
	reach := make([]bool, len(g.Blocks)) // indexed by pre-prune block ID
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if reach[blk.ID] {
			return
		}
		reach[blk.ID] = true
		for _, s := range blk.Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)
	reach[g.Exit.ID] = true

	kept := g.Blocks[:0]
	for _, blk := range g.Blocks {
		if reach[blk.ID] {
			kept = append(kept, blk)
		}
	}
	// Filter succ lists in place and rebuild pred lists into their
	// existing capacity before renumbering invalidates reach indexing.
	for _, blk := range kept {
		blk.Preds = blk.Preds[:0]
	}
	for _, blk := range kept {
		w := 0
		for _, s := range blk.Succs {
			if reach[s.ID] {
				blk.Succs[w] = s
				w++
				s.Preds = append(s.Preds, blk)
			}
		}
		blk.Succs = blk.Succs[:w]
	}
	for i, blk := range kept {
		blk.ID = i
	}
	g.Blocks = kept
}

// ---------------------------------------------------------------------
// Debug printing

// String renders the CFG for debugging and golden tests.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s (entry b%d, exit b%d)\n", g.Proc.Name, g.Entry.ID, g.Exit.ID)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.ID)
		if len(blk.Preds) > 0 {
			ids := make([]int, len(blk.Preds))
			for i, p := range blk.Preds {
				ids[i] = p.ID
			}
			sort.Ints(ids)
			fmt.Fprintf(&sb, " ; preds %v", ids)
		}
		sb.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		switch blk.Term.Kind {
		case TermJump:
			if len(blk.Succs) > 0 {
				fmt.Fprintf(&sb, "  goto b%d\n", blk.Succs[0].ID)
			}
		case TermCond:
			fmt.Fprintf(&sb, "  if %s then b%d else b%d\n", ast.ExprString(blk.Term.Cond), blk.Succs[0].ID, blk.Succs[1].ID)
		case TermReturn:
			if blk != g.Exit {
				fmt.Fprintf(&sb, "  return\n")
			}
		case TermStop:
			fmt.Fprintf(&sb, "  stop\n")
		}
	}
	return sb.String()
}
