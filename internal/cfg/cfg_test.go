package cfg

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// buildProc parses src and builds the CFG of the named procedure.
func buildProc(t *testing.T, src, name string) *Graph {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	p := prog.Procs[name]
	if p == nil {
		t.Fatalf("no procedure %s", name)
	}
	return Build(prog, p)
}

func TestStraightLine(t *testing.T) {
	g := buildProc(t, `PROGRAM P
I = 1
J = I + 2
PRINT *, J
END
`, "P")
	if len(g.Blocks) != 2 { // entry+code, exit
		t.Fatalf("blocks = %d, want 2\n%s", len(g.Blocks), g)
	}
	if len(g.Entry.Instrs) != 3 {
		t.Errorf("entry instrs = %d, want 3", len(g.Entry.Instrs))
	}
	if g.Entry.Term.Kind != TermReturn {
		t.Errorf("terminator = %v", g.Entry.Term.Kind)
	}
}

func TestIfElse(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, J
I = 1
IF (I .GT. 0) THEN
  J = 1
ELSE
  J = 2
ENDIF
PRINT *, J
END
`, "P")
	// entry (cond), then, else, join, exit.
	if len(g.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5\n%s", len(g.Blocks), g)
	}
	if g.Entry.Term.Kind != TermCond || len(g.Entry.Succs) != 2 {
		t.Fatalf("entry should end in a 2-way branch\n%s", g)
	}
	thenB, elseB := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(thenB.Succs) != 1 || len(elseB.Succs) != 1 || thenB.Succs[0] != elseB.Succs[0] {
		t.Errorf("then/else should join\n%s", g)
	}
}

func TestElseIfChain(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .EQ. 1) THEN
  J = 1
ELSEIF (I .EQ. 2) THEN
  J = 2
ELSE
  J = 3
ENDIF
PRINT *, J
END
`, "P")
	conds := 0
	for _, b := range g.Blocks {
		if b.Term.Kind == TermCond {
			conds++
		}
	}
	if conds != 2 {
		t.Errorf("conditional blocks = %d, want 2\n%s", conds, g)
	}
}

func TestDoLoopShape(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, S
S = 0
DO 10 I = 1, 10
  S = S + I
10 CONTINUE
PRINT *, S
END
`, "P")
	// Expect a block whose terminator is the loop condition with a back
	// edge into it.
	var head *Block
	for _, b := range g.Blocks {
		if b.Term.Kind == TermCond {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head found\n%s", g)
	}
	backedge := false
	for _, p := range head.Preds {
		for _, s := range p.Succs {
			if s == head && p.ID > head.ID {
				backedge = true
			}
		}
	}
	if !backedge {
		t.Errorf("no back edge to loop head\n%s", g)
	}
	// The loop body must increment I after the user statements.
	body := head.Succs[0]
	last := body.Instrs[len(body.Instrs)-1]
	if last.Kind != InstrAssign || last.Lhs == nil || last.Lhs.Name != "I" {
		t.Errorf("loop body should end with increment of I, got %s\n%s", last, g)
	}
}

func TestDoLoopBoundSnapshot(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, N
N = 5
DO I = 1, N
  N = N + 1
ENDDO
END
`, "P")
	// The bound must be snapshotted into a temp before the loop.
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == InstrAssign && in.Lhs != nil && strings.HasPrefix(in.Lhs.Name, "@T") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no snapshot temp for loop bound\n%s", g)
	}
}

func TestGotoLoop(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I
I = 0
10 I = I + 1
IF (I .LT. 5) GOTO 10
PRINT *, I
END
`, "P")
	var head *Block
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			_ = in
		}
		if len(b.Preds) == 2 {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("label block should have two predecessors\n%s", g)
	}
}

func TestCallExtraction(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I
I = F(1) + F(G(2))
CALL S(I, F(3))
END
SUBROUTINE S(A, B)
A = B
END
INTEGER FUNCTION F(X)
F = X + 1
END
INTEGER FUNCTION G(X)
G = X*2
END
`, "P")
	if len(g.Sites) != 5 {
		t.Fatalf("call sites = %d, want 5\n%s", len(g.Sites), g)
	}
	// Order: F(1), G(2), F(G-temp), F(3), S(...).
	names := make([]string, len(g.Sites))
	for i, s := range g.Sites {
		names[i] = s.Callee
	}
	want := []string{"F", "G", "F", "F", "S"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("site order = %v, want %v", names, want)
		}
	}
	// The S call must be a CALL statement (not function).
	if g.Sites[4].IsFunction {
		t.Error("S should not be a function site")
	}
	for _, s := range g.Sites[:4] {
		if !s.IsFunction {
			t.Error("F/G sites should be function sites")
		}
	}
	// Site IDs are 0..n-1 in order.
	for i, s := range g.Sites {
		if s.ID != i {
			t.Errorf("site %d has ID %d", i, s.ID)
		}
	}
}

func TestIntrinsicsNotExtracted(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, A(10)
I = MOD(A(1), 2)
END
`, "P")
	if len(g.Sites) != 0 {
		t.Errorf("intrinsics/arrays should not create call sites, got %d", len(g.Sites))
	}
}

func TestUnreachableCodePruned(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I
I = 1
GOTO 20
I = 2
I = 3
20 PRINT *, I
END
`, "P")
	// The I=2 / I=3 assignments are unreachable and must not appear.
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == InstrAssign && in.Rhs != nil {
				if s := in.String(); s == "I = 2" || s == "I = 3" {
					t.Errorf("unreachable instruction kept: %s", s)
				}
			}
		}
	}
}

func TestStopAndReturn(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I
READ *, I
IF (I .LT. 0) STOP
PRINT *, I
END
`, "P")
	stops := 0
	for _, b := range g.Blocks {
		if b.Term.Kind == TermStop {
			stops++
		}
	}
	if stops != 1 {
		t.Errorf("stop terminators = %d, want 1\n%s", stops, g)
	}
}

func TestMultipleReturnsReachExit(t *testing.T) {
	g := buildProc(t, `SUBROUTINE S(I)
INTEGER I
IF (I .GT. 0) THEN
  I = 1
  RETURN
ENDIF
I = 2
RETURN
END
PROGRAM P
END
`, "S")
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit should have >=2 preds, got %d\n%s", len(g.Exit.Preds), g)
	}
}

func TestReadTargets(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER N, A(10)
READ *, N, A(1)
END
`, "P")
	var read *Instr
	for _, in := range g.Entry.Instrs {
		if in.Kind == InstrRead {
			read = in
		}
	}
	if read == nil || len(read.Targets) != 2 {
		t.Fatalf("read instruction wrong: %+v", read)
	}
	if read.Targets[0].Sym.Name != "N" || read.Targets[1].Sym.Name != "A" {
		t.Errorf("targets: %+v", read.Targets)
	}
	if read.Targets[1].Subs == nil {
		t.Error("array target lost subscripts")
	}
}

func TestNegativeStepLoop(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, S
S = 0
DO I = 10, 1, -1
  S = S + I
ENDDO
END
`, "P")
	// Condition must be .GE. for a negative literal step.
	found := false
	for _, b := range g.Blocks {
		if b.Term.Kind == TermCond && strings.Contains(g.String(), ".GE.") {
			found = true
		}
	}
	if !found {
		t.Errorf("negative-step loop should use .GE. condition\n%s", g)
	}
}

func TestGraphString(t *testing.T) {
	g := buildProc(t, "PROGRAM P\nI = 1\nEND\n", "P")
	s := g.String()
	if !strings.Contains(s, "cfg P") || !strings.Contains(s, "I = 1") {
		t.Errorf("String output unexpected:\n%s", s)
	}
}

// TestGoldenCFG locks the lowering of a program exercising every
// construct: structured IF, both DO forms, arithmetic IF, computed
// GOTO, call extraction, and DATA lowering.
func TestGoldenCFG(t *testing.T) {
	g := buildProc(t, `PROGRAM P
INTEGER I, K, M
COMMON /C/ NG
DATA K / 9 /
M = F(K) + 1
IF (M .GT. 0) THEN
  I = 1
ELSE
  I = 2
ENDIF
DO 10 I = 1, M
10 CONTINUE
IF (M - 5) 20, 30, 40
20 CONTINUE
30 CONTINUE
40 CONTINUE
GOTO (20, 30), I
END
INTEGER FUNCTION F(X)
INTEGER X
F = X*2
END
`, "P")
	got := g.String()
	for _, want := range []string{
		"K = 9",         // DATA lowered at main entry
		"@T0 = F(K)",    // call extracted into a temp
		"M = @T0 + 1",   // expression references the temp
		"if M .GT. 0",   // structured IF branch
		"@T1 = M",       // DO bound snapshot (M may change in the body)
		"if I .LE. @T1", // DO loop pre-test
		"I = I + 1",     // DO increment
		"@T2 = M - 5",   // arithmetic IF temp
		"if @T2 .LT. 0", // arithmetic IF negative branch
		"if @T2 .EQ. 0", // arithmetic IF zero branch
		"@T3 = I",       // computed GOTO temp
		"if @T3 .EQ. 1", // computed GOTO dispatch
	} {
		if !strings.Contains(got, want) {
			t.Errorf("CFG missing %q:\n%s", want, got)
		}
	}
}
