package domain

import (
	"math"
	"strconv"

	"repro/internal/symbolic"
)

// Interval/range propagation: Mid elements are closed ranges [A, B]
// with math.MinInt64/MaxInt64 as the -∞/+∞ sentinels. The meet is the
// convex hull, so the lattice has unbounded descending chains
// ([0,0] ≥ [0,1] ≥ [0,2] ≥ …) and the domain declares Widens: once a
// VAL cell has descended WidenThreshold times, the solvers widen any
// still-moving bound straight to its infinity, which restores the
// finite-descent property the paper's propagation bound relies on.
// The all-integers range [-∞, +∞] is normalized to ⊥.
type intervalDomain struct{}

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

func (intervalDomain) Name() string { return "interval" }
func (intervalDomain) Bottom() Elem { return Elem{L: LevelBottom} }
func (intervalDomain) FromConst(c int64) Elem {
	return mkRange(c, c)
}
func (intervalDomain) Widens() bool { return true }
func (intervalDomain) Prunes() bool { return false }

// mkRange normalizes a bound pair: the universal range is ⊥.
func mkRange(lo, hi int64) Elem {
	if lo == negInf && hi == posInf {
		return Elem{L: LevelBottom}
	}
	return Elem{L: LevelMid, A: lo, B: hi}
}

// Meet is the convex hull (interval join in the analysis order used
// here, where "lower" means "less precise").
func (d intervalDomain) Meet(x, y Elem) Elem {
	switch {
	case x.L == LevelTop:
		return y
	case y.L == LevelTop:
		return x
	case x.L == LevelBottom || y.L == LevelBottom:
		return d.Bottom()
	}
	lo, hi := x.A, x.B
	if y.A < lo {
		lo = y.A
	}
	if y.B > hi {
		hi = y.B
	}
	return mkRange(lo, hi)
}

// Widen jumps any bound that is still descending to its infinity, so a
// cell widens at most twice after the threshold — termination on loops
// (e.g. a recursive CALL R(N+1) chain) that plain interval iteration
// would descend forever.
func (intervalDomain) Widen(old, next Elem) Elem {
	if old.L != LevelMid || next.L != LevelMid {
		return next
	}
	lo, hi := next.A, next.B
	if lo < old.A {
		lo = negInf
	}
	if hi > old.B {
		hi = posInf
	}
	return mkRange(lo, hi)
}

func (d intervalDomain) Eval(e *symbolic.Expr, env Env) Elem { return evalExpr(d, e, env) }

// Interval arithmetic must agree with the wrapping two's-complement
// semantics of the concrete machine (and of symbolic.IntBinop, which
// the singleton fold path uses): a range result is returned only when
// no point of the operand box can wrap — any overflow, or any infinite
// bound feeding an additive or multiplicative operator, degrades the
// whole result to ⊥. Saturating instead would be unsound (the wrapped
// concrete value escapes the saturated range) and non-monotone against
// the wrap-exact singleton fold.

func (d intervalDomain) Unop(op symbolic.Op, x Elem) Elem {
	if x.L != LevelMid {
		return x
	}
	switch op {
	case symbolic.OpNeg:
		if !isFinite(x.A) || !isFinite(x.B) {
			return d.Bottom()
		}
		return mkRange(-x.B, -x.A)
	case symbolic.OpAbs:
		if x.A >= 0 {
			return x
		}
		if !isFinite(x.A) || !isFinite(x.B) {
			return d.Bottom()
		}
		if x.B <= 0 {
			return mkRange(-x.B, -x.A)
		}
		hi := -x.A
		if x.B > hi {
			hi = x.B
		}
		return mkRange(0, hi)
	}
	return d.Bottom()
}

func (d intervalDomain) Binop(op symbolic.Op, x, y Elem) Elem {
	// Singleton × singleton folds exactly through the FORTRAN integer
	// semantics (wrap included), for every operator the constant domain
	// supports.
	if x.A == x.B && y.A == y.B && isFinite(x.A) && isFinite(y.A) {
		if v, ok := symbolic.IntBinop(op, x.A, y.A); ok {
			return mkRange(v, v)
		}
		return d.Bottom()
	}
	switch op {
	case symbolic.OpAdd:
		if lo, ok := addChecked(x.A, y.A); ok {
			if hi, ok2 := addChecked(x.B, y.B); ok2 {
				return mkRange(lo, hi)
			}
		}
	case symbolic.OpSub:
		if lo, ok := subChecked(x.A, y.B); ok {
			if hi, ok2 := subChecked(x.B, y.A); ok2 {
				return mkRange(lo, hi)
			}
		}
	case symbolic.OpMul:
		return mulRange(d, x, y)
	case symbolic.OpMax:
		lo, hi := x.A, x.B
		if y.A > lo {
			lo = y.A
		}
		if y.B > hi {
			hi = y.B
		}
		return mkRange(lo, hi)
	case symbolic.OpMin:
		lo, hi := x.A, x.B
		if y.A < lo {
			lo = y.A
		}
		if y.B < hi {
			hi = y.B
		}
		return mkRange(lo, hi)
	}
	// Div/Pow/Mod over non-singleton ranges: no useful bound is cheap
	// and sound (divisor ranges containing zero, sign flips), so give ⊥.
	// Add/Sub/Mul also land here when a bound is infinite or a corner
	// overflows.
	return d.Bottom()
}

// Cmp decides comparisons between disjoint or ordered ranges — a
// precision win over the constant domain, and still sound: the answer
// holds for every concretization of both ranges.
func (intervalDomain) Cmp(op symbolic.Op, x, y Elem) (bool, bool) {
	if x.L != LevelMid || y.L != LevelMid {
		return false, false
	}
	switch op {
	case symbolic.OpEq:
		if x.A == x.B && y.A == y.B && x.A == y.A {
			return true, true
		}
		if x.B < y.A || y.B < x.A {
			return false, true
		}
	case symbolic.OpNe:
		if x.B < y.A || y.B < x.A {
			return true, true
		}
		if x.A == x.B && y.A == y.B && x.A == y.A {
			return false, true
		}
	case symbolic.OpLt:
		if x.B < y.A {
			return true, true
		}
		if x.A >= y.B {
			return false, true
		}
	case symbolic.OpLe:
		if x.B <= y.A {
			return true, true
		}
		if x.A > y.B {
			return false, true
		}
	case symbolic.OpGt:
		if x.A > y.B {
			return true, true
		}
		if x.B <= y.A {
			return false, true
		}
	case symbolic.OpGe:
		if x.A >= y.B {
			return true, true
		}
		if x.B < y.A {
			return false, true
		}
	}
	return false, false
}

// ConstOf: a finite singleton range proves a constant, so interval
// analysis feeds substitution and branch pruning wherever it proves a
// variable single-valued.
func (intervalDomain) ConstOf(x Elem) (int64, bool) {
	if x.L == LevelMid && x.A == x.B && isFinite(x.A) {
		return x.A, true
	}
	return 0, false
}

func (intervalDomain) Format(x Elem) string {
	switch x.L {
	case LevelTop:
		return "⊤"
	case LevelBottom:
		return "⊥"
	}
	return "[" + boundString(x.A) + "," + boundString(x.B) + "]"
}

func boundString(b int64) string {
	switch b {
	case negInf:
		return "-inf"
	case posInf:
		return "+inf"
	}
	return strconv.FormatInt(b, 10)
}

func (intervalDomain) AppendKey(buf []byte, x Elem) []byte {
	switch x.L {
	case LevelTop:
		buf = append(buf, 'T')
	case LevelBottom:
		buf = append(buf, 'B')
	default:
		buf = append(buf, 'R')
		buf = strconv.AppendInt(buf, x.A, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, x.B, 10)
	}
	return append(buf, ';')
}

// isFinite reports whether a bound is an actual integer rather than an
// infinity sentinel. (The two extreme int64 values are conservatively
// treated as infinite; FromConst of those yields a range arithmetic
// refuses to fold, which is sound.)
func isFinite(b int64) bool { return b != negInf && b != posInf }

// addChecked adds two finite bounds, failing on sentinels or overflow.
func addChecked(a, b int64) (int64, bool) {
	if !isFinite(a) || !isFinite(b) {
		return 0, false
	}
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// subChecked subtracts two finite bounds, failing on sentinels or
// overflow.
func subChecked(a, b int64) (int64, bool) {
	if !isFinite(a) || !isFinite(b) {
		return 0, false
	}
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulChecked multiplies two finite bounds, failing on sentinels or
// overflow.
func mulChecked(a, b int64) (int64, bool) {
	if !isFinite(a) || !isFinite(b) {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || p == negInf || p == posInf {
		return 0, false
	}
	return p, true
}

// mulRange is the classic four-corner interval product; the maximal
// |product| over a box is attained at a corner, so if every corner is
// overflow-free the whole box is wrap-free and the hull is exact.
func mulRange(d intervalDomain, x, y Elem) Elem {
	var c [4]int64
	pairs := [4][2]int64{{x.A, y.A}, {x.A, y.B}, {x.B, y.A}, {x.B, y.B}}
	for i, p := range pairs {
		v, ok := mulChecked(p[0], p[1])
		if !ok {
			return d.Bottom()
		}
		c[i] = v
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return mkRange(lo, hi)
}
