// Package domain generalizes the analysis core into a monotone-
// framework engine. The paper's constant-propagation lattice, jump
// functions, and propagation are one instance of a user-specifiable
// monotone dataflow framework: jump-function *construction* is purely
// symbolic and domain-independent (package jump builds the same
// expressions no matter what is being propagated), while jump-function
// *evaluation* — the transfer function — and the meet are supplied by a
// Domain. Every registered domain therefore inherits the entire
// production stack for free: both solvers, parallelism, the memo layer,
// value contexts, sessions, the fleet service, and the bench gates.
//
// A Domain supplies:
//
//   - the element type (Elem, a fixed-size value: every abstract value
//     of every shipped domain fits a level tag plus two int64 payloads,
//     so the solver's dense VAL slices stay flat and allocation-free);
//   - ⊤ and ⊥ and the meet operator;
//   - the transfer function Eval, interpreting a symbolic jump function
//     over abstract values;
//   - a widening hook for domains of unbounded height (intervals),
//     which the solvers invoke after a per-cell descent threshold so
//     fixed points terminate where naive iteration would not;
//   - ConstOf, the bridge back to the constant world: elements that
//     are provably a single integer feed substitution, branch pruning,
//     and entry environments exactly like propagated constants.
//
// The constant domain is the first registered instance; its Eval
// mirrors symbolic.Eval operation for operation, so analyses through
// the generic engine are byte-identical to the pre-generalization
// analyzer (asserted by TestConstDomainMatchesSymbolicEval and the
// golden/parallel suites in internal/core).
package domain

import (
	"repro/internal/lattice"
	"repro/internal/symbolic"
)

// Level classifies an abstract element. Every domain uses the same
// three-way split so the solvers can short-circuit uniformly: ⊤ is the
// optimistic initial value, ⊥ the fully degraded one, and Mid carries
// the domain-specific payload (a constant, an interval, a parity, a
// cleanliness proof).
type Level int8

const (
	LevelTop    Level = iota // no information yet (optimistic)
	LevelMid                 // a domain-specific fact (payload in A, B)
	LevelBottom              // no fact provable
)

// Elem is an element of a domain's lattice. The zero Elem is ⊤ for
// every domain — the dense VAL slices in the solver rely on this, so a
// fresh solution is still three allocations. Payload meaning is
// per-domain: the constant domain stores the constant in A; intervals
// store [A, B]; parity stores A ∈ {0, 1}; taint uses no payload.
type Elem struct {
	L    Level
	A, B int64
}

// Top returns ⊤ (the zero Elem, for every domain).
func Top() Elem { return Elem{} }

// IsTop reports whether x is ⊤.
func (x Elem) IsTop() bool { return x.L == LevelTop }

// IsBottom reports whether x is ⊥.
func (x Elem) IsBottom() bool { return x.L == LevelBottom }

// Env supplies abstract values for Param and Global leaves during jump
// function evaluation — the generic counterpart of symbolic.Env.
type Env func(leaf *symbolic.Expr) Elem

// Domain is one instance of the monotone framework. Implementations
// must be stateless values (they are embedded in configs, compared for
// identity, and shared across goroutines without synchronization).
type Domain interface {
	// Name is the stable identifier used by the public API's domain
	// selector, the service wire format, and the program fingerprint.
	Name() string
	// Bottom returns ⊥. (⊤ is the zero Elem for every domain.)
	Bottom() Elem
	// FromConst abstracts an integer constant.
	FromConst(c int64) Elem
	// Meet returns x ∧ y. It must be commutative, associative, and
	// idempotent, with ⊤ as identity and ⊥ absorbing (the lattice laws
	// fuzzed by FuzzDomainLaws).
	Meet(x, y Elem) Elem
	// Eval is the transfer function: it interprets a symbolic jump
	// function under an environment of abstract values. A monotone Eval
	// (lower inputs never raise the output) is required for the solvers'
	// fixed points to be sound.
	Eval(e *symbolic.Expr, env Env) Elem
	// ConstOf reports whether x proves a single integer value, which
	// then feeds substitution, entry environments, and branch pruning.
	ConstOf(x Elem) (int64, bool)
	// Widens reports whether the domain has unbounded descending chains
	// and therefore needs the solvers' widening hook.
	Widens() bool
	// Widen accelerates convergence: called instead of a plain meet
	// once a VAL cell has descended widenThreshold times, it must
	// return an element ≤ next from which only finitely many further
	// descents are possible. Domains with Widens() == false never see
	// this call.
	Widen(old, next Elem) Elem
	// Prunes reports whether the domain requests complete propagation
	// (iterated propagate → prove branches dead → rebuild → propagate),
	// as conditional constant propagation does.
	Prunes() bool
	// Format renders an element for human output. The constant domain's
	// rendering is byte-identical to lattice.Value.String.
	Format(x Elem) string
	// AppendKey appends a canonical, injective encoding of x for value-
	// context keys. The constant domain's encoding is byte-identical to
	// the pre-generalization ctxKey cells.
	AppendKey(buf []byte, x Elem) []byte
}

// arith is the internal op set each shipped domain implements; the
// shared evaluator evalExpr composes these into a full transfer
// function with exactly the control flow of symbolic.Eval.
type arith interface {
	Bottom() Elem
	FromConst(c int64) Elem
	Meet(x, y Elem) Elem
	// Unop applies OpNeg or OpAbs to any element (including ⊤/⊥).
	Unop(op symbolic.Op, x Elem) Elem
	// Binop applies an arithmetic operator to two Mid elements.
	Binop(op symbolic.Op, x, y Elem) Elem
	// Cmp decides a relational operator over two elements, reporting
	// whether the truth value is determined.
	Cmp(op symbolic.Op, x, y Elem) (bool, bool)
}

// evalExpr is the generic transfer function. Its structure mirrors
// symbolic.Eval exactly — same optimistic SCCP convention (⊥ inputs
// dominate, then ⊤ short-circuits, then the domain folds), same opaque
// and boolean handling, same γ treatment — so that the constant
// domain's instance reproduces the pre-generalization analyzer bit for
// bit while other domains reinterpret only the leaf and fold steps.
// The type parameter keeps each domain's instantiation monomorphic:
// boxing the domain struct into an interface here would allocate on
// every solver evaluation, the delta-edit hot path.
func evalExpr[D arith](d D, e *symbolic.Expr, env Env) Elem {
	switch e.Op {
	case symbolic.OpConst:
		return d.FromConst(e.K)
	case symbolic.OpBool, symbolic.OpOpaque:
		// Opaque values (READ input, unanalyzable calls) are the frontier
		// of every domain: ⊥ for constants and intervals, tainted for
		// taint. Boolean-valued expressions are never integer facts.
		return d.Bottom()
	case symbolic.OpParam, symbolic.OpGlobal:
		return env(e)
	case symbolic.OpNeg, symbolic.OpAbs:
		return d.Unop(e.Op, evalExpr(d, e.Args[0], env))
	case symbolic.OpNot, symbolic.OpAnd, symbolic.OpOr,
		symbolic.OpEq, symbolic.OpNe, symbolic.OpLt, symbolic.OpLe, symbolic.OpGt, symbolic.OpGe:
		return d.Bottom()
	case symbolic.OpGamma:
		if v, ok := evalBool(d, e.Args[0], env); ok {
			if v {
				return evalExpr(d, e.Args[1], env)
			}
			return evalExpr(d, e.Args[2], env)
		}
		// Predicate unknown: the value is the meet of both arms.
		return d.Meet(evalExpr(d, e.Args[1], env), evalExpr(d, e.Args[2], env))
	default: // binary arithmetic
		x := evalExpr(d, e.Args[0], env)
		y := evalExpr(d, e.Args[1], env)
		if x.L == LevelBottom || y.L == LevelBottom {
			return d.Bottom()
		}
		if x.L == LevelTop || y.L == LevelTop {
			return Elem{}
		}
		return d.Binop(e.Op, x, y)
	}
}

// evalBool mirrors symbolic.EvalBool with the comparison leaves decided
// by the domain (the constant domain compares constants; intervals can
// decide comparisons between disjoint ranges).
func evalBool[D arith](d D, e *symbolic.Expr, env Env) (bool, bool) {
	switch e.Op {
	case symbolic.OpBool:
		return e.B, true
	case symbolic.OpNot:
		if v, ok := evalBool(d, e.Args[0], env); ok {
			return !v, true
		}
	case symbolic.OpAnd:
		l, lok := evalBool(d, e.Args[0], env)
		r, rok := evalBool(d, e.Args[1], env)
		switch {
		case lok && !l:
			return false, true
		case rok && !r:
			return false, true
		case lok && rok:
			return l && r, true
		}
	case symbolic.OpOr:
		l, lok := evalBool(d, e.Args[0], env)
		r, rok := evalBool(d, e.Args[1], env)
		switch {
		case lok && l:
			return true, true
		case rok && r:
			return true, true
		case lok && rok:
			return l || r, true
		}
	case symbolic.OpEq, symbolic.OpNe, symbolic.OpLt, symbolic.OpLe, symbolic.OpGt, symbolic.OpGe:
		x := evalExpr(d, e.Args[0], env)
		y := evalExpr(d, e.Args[1], env)
		return d.Cmp(e.Op, x, y)
	}
	return false, false
}

// WidenThreshold is the per-cell descent count after which the solvers
// route a lowering through Domain.Widen instead of a plain meet. Three
// plain descents let small loops (the common `I = I + 1` bounded by a
// constant test) converge exactly before widening clamps the moving
// bound to ±∞.
const WidenThreshold = 3

// OfLattice abstracts a constant-propagation lattice value into d. It
// is the seeding bridge: DATA-statement initializations are syntactic
// constants regardless of domain.
func OfLattice(d Domain, v lattice.Value) Elem {
	if c, ok := v.IsConst(); ok {
		return d.FromConst(c)
	}
	if v.IsTop() {
		return Elem{}
	}
	return d.Bottom()
}

// ToLattice concretizes x into the constant-propagation lattice: the
// constant view every non-constant consumer (substitution metrics,
// procedure cloning, CONSTANTS sets) understands. Mid elements that do
// not prove a single integer are ⊥ from the constant world's point of
// view. For the constant domain the round trip is the identity.
func ToLattice(d Domain, x Elem) lattice.Value {
	if c, ok := d.ConstOf(x); ok {
		return lattice.ConstValue(c)
	}
	if x.IsTop() {
		return lattice.TopValue()
	}
	return lattice.BottomValue()
}
