package domain

import (
	"strconv"

	"repro/internal/symbolic"
)

// constDomain is the paper's constant-propagation lattice (Figure 1)
// re-expressed as the first registered instance of the monotone
// framework: ⊤ over all integer constants over ⊥, with Mid elements
// storing the constant in A. Its transfer function reproduces
// symbolic.Eval exactly, so the generic engine's output is
// byte-identical to the pre-generalization analyzer.
type constDomain struct {
	name   string
	prunes bool
}

func (d constDomain) Name() string          { return d.name }
func (constDomain) Bottom() Elem            { return Elem{L: LevelBottom} }
func (constDomain) FromConst(c int64) Elem  { return Elem{L: LevelMid, A: c} }
func (constDomain) Widens() bool            { return false }
func (constDomain) Widen(_, next Elem) Elem { return next }
func (d constDomain) Prunes() bool          { return d.prunes }

// Meet implements Figure 1: ⊤ is identity, ⊥ absorbs, equal constants
// meet to themselves, distinct constants to ⊥.
func (d constDomain) Meet(x, y Elem) Elem {
	switch {
	case x.L == LevelTop:
		return y
	case y.L == LevelTop:
		return x
	case x.L == LevelBottom || y.L == LevelBottom:
		return d.Bottom()
	case x.A == y.A:
		return x
	default:
		return d.Bottom()
	}
}

func (d constDomain) Eval(e *symbolic.Expr, env Env) Elem { return evalExpr(d, e, env) }

// Unop folds negation and absolute value over constants, passing ⊤ and
// ⊥ through unchanged — exactly symbolic.Eval's OpNeg/OpAbs cases
// (including two's-complement wrap on -MinInt64).
func (constDomain) Unop(op symbolic.Op, x Elem) Elem {
	if x.L != LevelMid {
		return x
	}
	c := x.A
	switch op {
	case symbolic.OpNeg:
		c = -c
	case symbolic.OpAbs:
		if c < 0 {
			c = -c
		}
	}
	return Elem{L: LevelMid, A: c}
}

// Binop folds two constants through the FORTRAN integer semantics of
// symbolic.IntBinop; undefined results (division by zero) are ⊥.
func (d constDomain) Binop(op symbolic.Op, x, y Elem) Elem {
	if v, ok := symbolic.IntBinop(op, x.A, y.A); ok {
		return Elem{L: LevelMid, A: v}
	}
	return d.Bottom()
}

// Cmp decides a comparison only when both sides are constants,
// mirroring symbolic.EvalBool.
func (constDomain) Cmp(op symbolic.Op, x, y Elem) (bool, bool) {
	if x.L == LevelMid && y.L == LevelMid {
		return symbolic.IntCompare(op, x.A, y.A), true
	}
	return false, false
}

func (x constDomain) ConstOf(e Elem) (int64, bool) {
	return e.A, e.L == LevelMid
}

func (constDomain) Format(x Elem) string {
	switch x.L {
	case LevelTop:
		return "⊤"
	case LevelBottom:
		return "⊥"
	default:
		return strconv.FormatInt(x.A, 10)
	}
}

// AppendKey keeps the pre-generalization value-context cell encoding:
// 'T', 'B', or 'C' followed by the decimal constant, ';'-terminated.
func (constDomain) AppendKey(buf []byte, x Elem) []byte {
	switch x.L {
	case LevelTop:
		buf = append(buf, 'T')
	case LevelBottom:
		buf = append(buf, 'B')
	default:
		buf = append(buf, 'C')
		buf = strconv.AppendInt(buf, x.A, 10)
	}
	return append(buf, ';')
}
