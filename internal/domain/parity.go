package domain

import "repro/internal/symbolic"

// Parity propagation: Mid elements record A ∈ {0, 1} (even, odd). The
// domain is finite (height 2, like the constant lattice) so no
// widening is needed, and it demonstrates that an instance can be
// *more* precise than constants on some programs: N and N+2 meet to a
// common parity where the constant domain gives ⊥.
type parityDomain struct{}

const (
	parityEven = 0
	parityOdd  = 1
)

func (parityDomain) Name() string { return "parity" }
func (parityDomain) Bottom() Elem { return Elem{L: LevelBottom} }

// FromConst abstracts by the low bit; c&1 is correct for negatives in
// two's complement (-3 & 1 == 1).
func (parityDomain) FromConst(c int64) Elem { return Elem{L: LevelMid, A: c & 1} }

func (parityDomain) Widens() bool            { return false }
func (parityDomain) Widen(_, next Elem) Elem { return next }
func (parityDomain) Prunes() bool            { return false }

func (d parityDomain) Meet(x, y Elem) Elem {
	switch {
	case x.L == LevelTop:
		return y
	case y.L == LevelTop:
		return x
	case x.L == LevelBottom || y.L == LevelBottom:
		return d.Bottom()
	case x.A == y.A:
		return x
	default:
		return d.Bottom()
	}
}

func (d parityDomain) Eval(e *symbolic.Expr, env Env) Elem { return evalExpr(d, e, env) }

// Unop: negation and absolute value preserve parity.
func (parityDomain) Unop(_ symbolic.Op, x Elem) Elem { return x }

func (d parityDomain) Binop(op symbolic.Op, x, y Elem) Elem {
	switch op {
	case symbolic.OpAdd, symbolic.OpSub:
		// x ± y ≡ x + y (mod 2).
		return Elem{L: LevelMid, A: (x.A + y.A) & 1}
	case symbolic.OpMul:
		// Odd exactly when both factors are odd.
		return Elem{L: LevelMid, A: x.A & y.A}
	case symbolic.OpMax, symbolic.OpMin:
		if x.A == y.A {
			return x
		}
	}
	// Div truncates, Pow and Mod depend on magnitudes: no parity fact.
	return d.Bottom()
}

// Cmp: differing parity proves inequality; nothing else is decidable.
func (parityDomain) Cmp(op symbolic.Op, x, y Elem) (bool, bool) {
	if x.L != LevelMid || y.L != LevelMid || x.A == y.A {
		return false, false
	}
	switch op {
	case symbolic.OpEq:
		return false, true
	case symbolic.OpNe:
		return true, true
	}
	return false, false
}

// ConstOf: parity never proves a single value.
func (parityDomain) ConstOf(Elem) (int64, bool) { return 0, false }

func (parityDomain) Format(x Elem) string {
	switch x.L {
	case LevelTop:
		return "⊤"
	case LevelBottom:
		return "⊥"
	}
	if x.A == parityOdd {
		return "odd"
	}
	return "even"
}

func (parityDomain) AppendKey(buf []byte, x Elem) []byte {
	switch x.L {
	case LevelTop:
		buf = append(buf, 'T')
	case LevelBottom:
		buf = append(buf, 'B')
	default:
		buf = append(buf, 'P', byte('0'+x.A))
	}
	return append(buf, ';')
}
