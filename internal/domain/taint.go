package domain

import "repro/internal/symbolic"

// Interprocedural taint: Mid means "clean" — every value reaching this
// formal or global derives from program constants alone. ⊥ means
// possibly tainted: influenced by external input. The taint sources are
// exactly the opaque leaves of the jump functions (READ statements and
// other unanalyzable producers map to OpOpaque, which the generic
// evaluator sends to ⊥), so the analysis needs no extra instrumentation
// in the front end: the same jump functions that carry constants carry
// the dependency structure taint needs. Any arithmetic over clean
// inputs stays clean; anything touched by a tainted input is tainted.
type taintDomain struct{}

func (taintDomain) Name() string         { return "taint" }
func (taintDomain) Bottom() Elem         { return Elem{L: LevelBottom} }
func (taintDomain) FromConst(int64) Elem { return Elem{L: LevelMid} }
func (taintDomain) Widens() bool         { return false }
func (taintDomain) Widen(_, n Elem) Elem { return n }
func (taintDomain) Prunes() bool         { return false }

func (d taintDomain) Meet(x, y Elem) Elem {
	switch {
	case x.L == LevelTop:
		return y
	case y.L == LevelTop:
		return x
	case x.L == LevelBottom || y.L == LevelBottom:
		return d.Bottom()
	default:
		return x // clean ∧ clean
	}
}

func (d taintDomain) Eval(e *symbolic.Expr, env Env) Elem { return evalExpr(d, e, env) }

// Unop and Binop: functions of clean values are clean (the generic
// evaluator has already routed tainted operands to ⊥).
func (taintDomain) Unop(_ symbolic.Op, x Elem) Elem     { return x }
func (taintDomain) Binop(_ symbolic.Op, _, _ Elem) Elem { return Elem{L: LevelMid} }

// Cmp: cleanliness never decides a comparison's truth value.
func (taintDomain) Cmp(symbolic.Op, Elem, Elem) (bool, bool) { return false, false }

// ConstOf: clean proves provenance, not a value.
func (taintDomain) ConstOf(Elem) (int64, bool) { return 0, false }

func (taintDomain) Format(x Elem) string {
	switch x.L {
	case LevelTop:
		return "⊤"
	case LevelBottom:
		return "tainted"
	}
	return "clean"
}

func (taintDomain) AppendKey(buf []byte, x Elem) []byte {
	switch x.L {
	case LevelTop:
		buf = append(buf, 'T')
	case LevelBottom:
		buf = append(buf, 'B')
	default:
		buf = append(buf, 'U')
	}
	return append(buf, ';')
}
