package domain

import (
	"fmt"
	"sort"
)

// The registry maps stable names to Domain instances. Registration
// happens in this file only, at package initialization, so lookup needs
// no locking and Names is deterministic.
var registry = map[string]Domain{}

func register(d Domain) {
	if _, dup := registry[d.Name()]; dup {
		panic(fmt.Sprintf("domain: duplicate registration of %q", d.Name()))
	}
	registry[d.Name()] = d
}

func init() {
	register(constDomain{name: "const"})
	// cond-const is conditional (branch-pruning) constant propagation
	// run interprocedurally: the constant domain with Prunes() set, which
	// the driver honors by running the complete-propagation loop
	// (propagate → prove branches dead → rebuild jump functions →
	// propagate) regardless of Config.Complete.
	register(constDomain{name: "cond-const", prunes: true})
	register(intervalDomain{})
	register(parityDomain{})
	register(taintDomain{})
}

// Const returns the default domain: the paper's constant-propagation
// lattice.
func Const() Domain { return registry["const"] }

// Lookup resolves a domain selector. The empty string selects the
// constant domain, preserving the pre-generalization meaning of every
// existing config.
func Lookup(name string) (Domain, error) {
	if name == "" {
		return Const(), nil
	}
	if d, ok := registry[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("domain: unknown domain %q (have %v)", name, Names())
}

// Names lists the registered domains in sorted (deterministic) order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NameOf names a possibly-nil domain for fingerprints and wire
// formats: nil is the constant domain.
func NameOf(d Domain) string {
	if d == nil {
		return "const"
	}
	return d.Name()
}
