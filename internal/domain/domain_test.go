package domain

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sem"
	"repro/internal/symbolic"
)

// elems generates a representative element corpus for a domain: the
// extremes, abstractions of a constant sample, and meets of those (which
// for the interval domain produces genuine multi-point ranges).
func elems(d Domain) []Elem {
	consts := []int64{-9, -2, -1, 0, 1, 2, 3, 7, 1 << 40, math.MinInt64 + 1, math.MaxInt64 - 1}
	out := []Elem{Top(), d.Bottom()}
	for _, c := range consts {
		out = append(out, d.FromConst(c))
	}
	n := len(out)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, d.Meet(out[i], out[j]))
		}
	}
	return out
}

// leq is the lattice order induced by the meet: x ⊑ y iff x ∧ y = x.
func leq(d Domain, x, y Elem) bool { return d.Meet(x, y) == x }

// checkLaws asserts the semilattice laws over a set of elements. Shared
// by the deterministic corpus test and the fuzz target.
func checkLaws(t *testing.T, d Domain, es []Elem) {
	t.Helper()
	for _, x := range es {
		if got := d.Meet(x, x); got != x {
			t.Fatalf("%s: meet not idempotent: %s ∧ %s = %s", d.Name(), d.Format(x), d.Format(x), d.Format(got))
		}
		if got := d.Meet(Top(), x); got != x {
			t.Fatalf("%s: ⊤ not identity: ⊤ ∧ %s = %s", d.Name(), d.Format(x), d.Format(got))
		}
		if got := d.Meet(d.Bottom(), x); got != d.Bottom() {
			t.Fatalf("%s: ⊥ not absorbing: ⊥ ∧ %s = %s", d.Name(), d.Format(x), d.Format(got))
		}
		for _, y := range es {
			xy := d.Meet(x, y)
			if yx := d.Meet(y, x); xy != yx {
				t.Fatalf("%s: meet not commutative: %s ∧ %s = %s but reversed %s",
					d.Name(), d.Format(x), d.Format(y), d.Format(xy), d.Format(yx))
			}
			if !leq(d, xy, x) || !leq(d, xy, y) {
				t.Fatalf("%s: meet not a lower bound: %s ∧ %s = %s",
					d.Name(), d.Format(x), d.Format(y), d.Format(xy))
			}
			for _, z := range es {
				if l, r := d.Meet(d.Meet(x, y), z), d.Meet(x, d.Meet(y, z)); l != r {
					t.Fatalf("%s: meet not associative over (%s, %s, %s): %s vs %s",
						d.Name(), d.Format(x), d.Format(y), d.Format(z), d.Format(l), d.Format(r))
				}
			}
		}
	}
}

func TestLatticeLaws(t *testing.T) {
	for _, name := range Names() {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { checkLaws(t, d, elems(d)) })
	}
}

// TestWidenDescends asserts the widening contract: Widen(old, next) is
// always ≤ next (sound acceleration, never a raise), and for widening
// domains repeated widen steps reach a fixed element (termination).
func TestWidenDescends(t *testing.T) {
	for _, name := range Names() {
		d, _ := Lookup(name)
		es := elems(d)
		for _, old := range es {
			for _, next := range es {
				w := d.Widen(old, next)
				if !leq(d, w, next) {
					t.Fatalf("%s: Widen(%s, %s) = %s is not ≤ next", name, d.Format(old), d.Format(next), d.Format(w))
				}
			}
		}
		if !d.Widens() {
			continue
		}
		// Simulate an endless descent (the loop counter pattern): widening
		// must pin every cell after a bounded number of steps.
		cur := d.FromConst(0)
		for i := int64(1); i < 200; i++ {
			next := d.Meet(cur, d.FromConst(i))
			if next == cur {
				break
			}
			cur = d.Widen(cur, next)
			if i > 10 && cur != d.Widen(cur, d.Meet(cur, d.FromConst(i+1))) {
				t.Fatalf("%s: widening did not stabilize a descending chain by step %d (at %s)", name, i, d.Format(cur))
			}
		}
	}
}

// TestRegistry pins the registered set (the public domain selector
// surface) and the nil/empty defaults.
func TestRegistry(t *testing.T) {
	want := []string{"cond-const", "const", "interval", "parity", "taint"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if d, err := Lookup(""); err != nil || d.Name() != "const" {
		t.Fatalf("Lookup(\"\") = %v, %v; want const", d, err)
	}
	if _, err := Lookup("no-such-domain"); err == nil {
		t.Fatal("Lookup of unknown domain did not fail")
	}
	if NameOf(nil) != "const" {
		t.Fatalf("NameOf(nil) = %q", NameOf(nil))
	}
	cc, _ := Lookup("cond-const")
	if !cc.Prunes() || Const().Prunes() {
		t.Fatal("Prunes(): cond-const must prune, const must not")
	}
	iv, _ := Lookup("interval")
	if !iv.Widens() || Const().Widens() {
		t.Fatal("Widens(): interval must widen, const must not")
	}
}

// randExpr builds a random jump-function expression over two formal
// leaves. The builder hash-conses and folds, so the result exercises
// exactly the shapes real jump functions take, including γ nodes.
func randExpr(r *rand.Rand, b *symbolic.Builder, leaves []*symbolic.Expr, depth int) *symbolic.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return b.Const(r.Int63n(21) - 10)
		case 1:
			return b.Opaque(int64(r.Intn(3)))
		default:
			return leaves[r.Intn(len(leaves))]
		}
	}
	ops := []symbolic.Op{
		symbolic.OpAdd, symbolic.OpSub, symbolic.OpMul, symbolic.OpDiv,
		symbolic.OpMod, symbolic.OpMax, symbolic.OpMin, symbolic.OpPow,
	}
	switch r.Intn(8) {
	case 0:
		return b.Neg(randExpr(r, b, leaves, depth-1))
	case 1:
		return b.Abs(randExpr(r, b, leaves, depth-1))
	case 2:
		cond := b.Binary(
			[]symbolic.Op{symbolic.OpEq, symbolic.OpNe, symbolic.OpLt, symbolic.OpLe, symbolic.OpGt, symbolic.OpGe}[r.Intn(6)],
			randExpr(r, b, leaves, depth-1), randExpr(r, b, leaves, depth-1))
		return b.Gamma(cond, randExpr(r, b, leaves, depth-1), randExpr(r, b, leaves, depth-1))
	default:
		return b.Binary(ops[r.Intn(len(ops))],
			randExpr(r, b, leaves, depth-1), randExpr(r, b, leaves, depth-1))
	}
}

// TestConstDomainMatchesSymbolicEval is the byte-identity keystone: the
// constant domain's transfer function agrees with symbolic.Eval on
// every expression and environment, so analyses routed through the
// generic engine reproduce the pre-generalization analyzer exactly.
func TestConstDomainMatchesSymbolicEval(t *testing.T) {
	d := Const()
	r := rand.New(rand.NewSource(42))
	b := symbolic.NewBuilder()
	leaves := []*symbolic.Expr{
		b.ParamLeaf(&sem.Symbol{Name: "X", Kind: sem.SymFormal, FormalIndex: 0}),
		b.ParamLeaf(&sem.Symbol{Name: "Y", Kind: sem.SymFormal, FormalIndex: 1}),
	}
	vals := []lattice.Value{
		lattice.TopValue(), lattice.BottomValue(),
		lattice.ConstValue(0), lattice.ConstValue(1), lattice.ConstValue(2), lattice.ConstValue(-7),
	}
	for i := 0; i < 5000; i++ {
		e := randExpr(r, b, leaves, 4)
		vx, vy := vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]
		lenv := func(leaf *symbolic.Expr) lattice.Value {
			if leaf == leaves[0] {
				return vx
			}
			return vy
		}
		denv := func(leaf *symbolic.Expr) Elem { return OfLattice(d, lenv(leaf)) }
		want := symbolic.Eval(e, lenv)
		got := ToLattice(d, d.Eval(e, denv))
		if got != want {
			t.Fatalf("expr #%d (%v): const domain eval = %s, symbolic.Eval = %s (env X=%s Y=%s)",
				i, e, got, want, vx, vy)
		}
	}
}

// TestTransferMonotone checks transfer monotonicity for γ-free
// expressions: pointwise-lower environments never raise the output.
// (γ nodes follow the optimistic SCCP convention — an undecided
// predicate meets both arms — which trades strict monotonicity for
// precision; the solvers stay sound because every evaluation is met
// into its target cell.)
func TestTransferMonotone(t *testing.T) {
	for _, name := range Names() {
		d, _ := Lookup(name)
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			b := symbolic.NewBuilder()
			leaves := []*symbolic.Expr{
				b.ParamLeaf(&sem.Symbol{Name: "X", Kind: sem.SymFormal, FormalIndex: 0}),
				b.ParamLeaf(&sem.Symbol{Name: "Y", Kind: sem.SymFormal, FormalIndex: 1}),
			}
			es := elems(d)
			for i := 0; i < 2000; i++ {
				var e *symbolic.Expr
				for {
					e = randExpr(r, b, leaves, 3)
					if !containsGamma(e) {
						break
					}
				}
				hx, hy := es[r.Intn(len(es))], es[r.Intn(len(es))]
				// Lower each input by meeting something else into it.
				lx, ly := d.Meet(hx, es[r.Intn(len(es))]), d.Meet(hy, es[r.Intn(len(es))])
				high := d.Eval(e, func(l *symbolic.Expr) Elem {
					if l == leaves[0] {
						return hx
					}
					return hy
				})
				low := d.Eval(e, func(l *symbolic.Expr) Elem {
					if l == leaves[0] {
						return lx
					}
					return ly
				})
				if !leq(d, low, high) {
					t.Fatalf("%s: transfer not monotone on %v: env(%s,%s) → %s but lower env(%s,%s) → %s",
						name, e, d.Format(hx), d.Format(hy), d.Format(high),
						d.Format(lx), d.Format(ly), d.Format(low))
				}
			}
		})
	}
}

func containsGamma(e *symbolic.Expr) bool {
	if e.Op == symbolic.OpGamma {
		return true
	}
	for _, a := range e.Args {
		if a != nil && containsGamma(a) {
			return true
		}
	}
	return false
}

// TestConstOfAgreesWithFormat sanity-checks the constant bridge on the
// corpus: ConstOf singletons round-trip through FromConst.
func TestConstOfAgreesWithFormat(t *testing.T) {
	for _, name := range Names() {
		d, _ := Lookup(name)
		for _, x := range elems(d) {
			if c, ok := d.ConstOf(x); ok {
				if y := d.Meet(x, d.FromConst(c)); y != x {
					t.Fatalf("%s: ConstOf(%s) = %d but FromConst does not refine it", name, d.Format(x), c)
				}
			}
		}
		if _, ok := d.ConstOf(Top()); ok {
			t.Fatalf("%s: ConstOf(⊤) succeeded", name)
		}
		if _, ok := d.ConstOf(d.Bottom()); ok {
			t.Fatalf("%s: ConstOf(⊥) succeeded", name)
		}
	}
}

// decodeElems turns fuzz bytes into elements of d: a stream of 17-byte
// records (tag + two int64 payloads) built from the domain's own
// constructors, so every decoded element is a legitimate lattice point.
func decodeElems(d Domain, data []byte) []Elem {
	var out []Elem
	for len(data) >= 17 && len(out) < 12 {
		tag := data[0]
		a := int64(binary.LittleEndian.Uint64(data[1:9]))
		b := int64(binary.LittleEndian.Uint64(data[9:17]))
		data = data[17:]
		switch tag % 4 {
		case 0:
			out = append(out, Top())
		case 1:
			out = append(out, d.Bottom())
		case 2:
			out = append(out, d.FromConst(a))
		default:
			out = append(out, d.Meet(d.FromConst(a), d.FromConst(b)))
		}
	}
	return out
}

// FuzzDomainLaws fuzzes the lattice laws for every registered domain at
// once (wired into `make fuzz` and the CI fuzz smoke).
func FuzzDomainLaws(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 3*17)
	for _, rec := range [][2]int64{{0, 0}, {5, -5}, {math.MaxInt64, math.MinInt64}} {
		var buf [17]byte
		buf[0] = 3
		binary.LittleEndian.PutUint64(buf[1:9], uint64(rec[0]))
		binary.LittleEndian.PutUint64(buf[9:17], uint64(rec[1]))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Names() {
			d, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			es := append(decodeElems(d, data), Top(), d.Bottom())
			checkLaws(t, d, es)
			for _, x := range es {
				for _, y := range es {
					if w := d.Widen(x, d.Meet(x, y)); !leq(d, w, d.Meet(x, y)) {
						t.Fatalf("%s: widen raised %s ∧ %s", name, d.Format(x), d.Format(y))
					}
				}
			}
		}
	})
}
