// Package suite synthesizes the 13-program benchmark suite used in the
// paper's evaluation (SPEC + PERFECT: adm, doduc, fpppp, linpackd,
// matrix300, mdg, ocean, qcd, simple, snasa7, spec77, trfd).
//
// The original FORTRAN sources are not redistributable, so each program
// is generated from a specification that mirrors (a) the size and
// modularity characteristics reported in Table 1 and (b) the
// constant-flow structure the paper's results imply. The generator is a
// library of patterns, each exercising one mechanism of the framework:
//
//	LIT     — literal constants at call sites (all four jump functions)
//	LOCAL   — locally computed constants used locally (the
//	          intraprocedural baseline)
//	GLOCAL  — constants in COMMON used across inert calls (need MOD)
//	INTRA   — computed constants passed at call sites (miss the literal
//	          jump function)
//	CHAIN   — constants passed through unmodified formals across ≥2
//	          call-graph edges (need pass-through or polynomial)
//	POLY    — constants passed through arithmetic on formals (need the
//	          polynomial jump function)
//	INIT    — an initialization routine assigns COMMON constants read by
//	          later phases (needs return jump functions; the `ocean`
//	          effect)
//	RET     — constants returned through out-parameters (small return
//	          jump function gains; `doduc`/`mdg`)
//	DEAD    — constants exposed only after constant-driven dead code
//	          elimination ("complete propagation"; `ocean`/`spec77`)
//
// A pattern's uses come in two flavours: direct (robust without MOD
// information) and fragile (the value crosses an inert call chain or is
// passed onward, so worst-case kill assumptions destroy it — the
// mechanism behind the paper's Table 3 column 1 collapse).
package suite

import (
	"fmt"
	"sort"
	"strings"
)

// Spec describes one synthesized benchmark program.
type Spec struct {
	Name string
	// TargetLines and TargetProcs steer filler generation toward the
	// size and modularity reported in Table 1.
	TargetLines int
	TargetProcs int
	// Skewed concentrates filler in a single large routine (the paper
	// notes fpppp and simple each have one routine carrying much of the
	// code).
	Skewed bool

	Lit    Pattern // literal constants at call sites
	Local  Pattern // local constants (intraprocedural baseline)
	Glocal Pattern // COMMON constants across inert calls (MOD-sensitive)
	Intra  Pattern // computed constants at call sites
	Chain  Chain   // pass-through chains
	Poly   Pattern // polynomial-only sites
	Init   Pattern // init-routine globals (return jump functions)
	Ret    Pattern // out-parameter returns
	Dead   Pattern // complete-propagation-only constants
}

// Pattern is a pattern multiplicity: Sites instances, each with Direct
// robust uses and Fragile uses that die without MOD information.
type Pattern struct {
	Sites   int
	Direct  int
	Fragile int
}

// Chain configures pass-through chains.
type Chain struct {
	Chains  int
	Depth   int // number of call-graph edges ≥ 2
	Direct  int
	Fragile int
}

// Programs returns the 13 specifications in the paper's order. The
// pattern multiplicities are scaled roughly 1:10 against the paper's
// substitution counts; size targets follow Table 1 where legible.
func Programs() []Spec {
	return []Spec{
		{
			// adm: all four jump functions tie (110); without MOD the
			// counts collapse (25); the intraprocedural baseline is close
			// to the full result (105).
			Name: "adm", TargetLines: 6100, TargetProcs: 97,
			Lit:    Pattern{Sites: 2, Direct: 1, Fragile: 1},
			Local:  Pattern{Sites: 3, Direct: 1, Fragile: 0},
			Glocal: Pattern{Sites: 4, Direct: 0, Fragile: 2},
		},
		{
			// doduc: essentially everything is a literal at a call site
			// (288 vs 289); robust without MOD; tiny intraprocedural
			// baseline (3); return jump functions add one.
			Name: "doduc", TargetLines: 5330, TargetProcs: 42,
			Lit:   Pattern{Sites: 9, Direct: 3, Fragile: 0},
			Local: Pattern{Sites: 1, Direct: 1, Fragile: 0},
			Ret:   Pattern{Sites: 1, Direct: 1, Fragile: 0},
		},
		{
			// fpppp: literal 49 < intra 54 < pass-through 60; return jump
			// functions matter a little (56 without).
			Name: "fpppp", TargetLines: 2720, TargetProcs: 38, Skewed: true,
			Lit:   Pattern{Sites: 4, Direct: 2, Fragile: 1},
			Intra: Pattern{Sites: 2, Direct: 1, Fragile: 1},
			Chain: Chain{Chains: 1, Depth: 2, Direct: 2, Fragile: 0},
			Init:  Pattern{Sites: 1, Direct: 2, Fragile: 0},
			Local: Pattern{Sites: 2, Direct: 1, Fragile: 1},
		},
		{
			// linpackd: literal misses many (94 vs 170); big MOD effect
			// (33 without); baseline 74.
			Name: "linpackd", TargetLines: 800, TargetProcs: 12,
			Lit:    Pattern{Sites: 3, Direct: 1, Fragile: 3},
			Intra:  Pattern{Sites: 3, Direct: 0, Fragile: 2},
			Glocal: Pattern{Sites: 3, Direct: 0, Fragile: 3},
			Chain:  Chain{Chains: 1, Depth: 2, Direct: 0, Fragile: 2},
		},
		{
			// matrix300: literal 71 < intra 122 < 138; collapses to 18
			// without MOD.
			Name: "matrix300", TargetLines: 440, TargetProcs: 15,
			Lit:    Pattern{Sites: 2, Direct: 0, Fragile: 3},
			Intra:  Pattern{Sites: 3, Direct: 0, Fragile: 2},
			Chain:  Chain{Chains: 1, Depth: 2, Direct: 0, Fragile: 2},
			Glocal: Pattern{Sites: 2, Direct: 0, Fragile: 2},
		},
		{
			// mdg: small counts; return jump functions add one (41 vs 40);
			// baseline equals the no-MOD figure (31).
			Name: "mdg", TargetLines: 1240, TargetProcs: 16,
			Lit:   Pattern{Sites: 2, Direct: 1, Fragile: 0},
			Intra: Pattern{Sites: 1, Direct: 0, Fragile: 1},
			Ret:   Pattern{Sites: 1, Direct: 1, Fragile: 0},
		},
		{
			// ocean: the headline return-jump-function result — an
			// initialization routine seeds COMMON constants used program
			// wide; counts more than triple with return jump functions
			// (62 → 194); complete propagation adds a little (204).
			Name: "ocean", TargetLines: 1730, TargetProcs: 36,
			Lit:   Pattern{Sites: 2, Direct: 1, Fragile: 1},
			Init:  Pattern{Sites: 6, Direct: 3, Fragile: 1},
			Local: Pattern{Sites: 2, Direct: 1, Fragile: 0},
			Dead:  Pattern{Sites: 1, Direct: 1, Fragile: 0},
		},
		{
			// qcd: all four tie (180); mostly robust without MOD (169);
			// baseline nearly everything (179).
			Name: "qcd", TargetLines: 2330, TargetProcs: 35,
			Lit:   Pattern{Sites: 3, Direct: 2, Fragile: 0},
			Local: Pattern{Sites: 5, Direct: 2, Fragile: 1},
		},
		{
			// simple: huge baseline (174 of 183) that almost entirely
			// collapses without MOD (2).
			Name: "simple", TargetLines: 805, TargetProcs: 9, Skewed: true,
			Glocal: Pattern{Sites: 6, Direct: 0, Fragile: 2},
			Local:  Pattern{Sites: 1, Direct: 1, Fragile: 1},
			Intra:  Pattern{Sites: 1, Direct: 1, Fragile: 0},
			Chain:  Chain{Chains: 1, Depth: 2, Direct: 1, Fragile: 0},
		},
		{
			// snasa7: large counts, literal well behind (254 vs 336),
			// fairly robust without MOD (303).
			Name: "snasa7", TargetLines: 700, TargetProcs: 14,
			Lit:   Pattern{Sites: 5, Direct: 3, Fragile: 0},
			Intra: Pattern{Sites: 3, Direct: 2, Fragile: 1},
			Local: Pattern{Sites: 3, Direct: 2, Fragile: 0},
		},
		{
			// spec77: literal 104 < 137; complete propagation adds a few
			// (141); roughly half survives without MOD (76).
			Name: "spec77", TargetLines: 2900, TargetProcs: 65,
			Lit:    Pattern{Sites: 4, Direct: 2, Fragile: 1},
			Intra:  Pattern{Sites: 2, Direct: 1, Fragile: 1},
			Glocal: Pattern{Sites: 1, Direct: 0, Fragile: 2},
			Dead:   Pattern{Sites: 1, Direct: 2, Fragile: 0},
		},
		{
			// trfd: tiny and uniform (16 across the board).
			Name: "trfd", TargetLines: 400, TargetProcs: 8,
			Lit:   Pattern{Sites: 1, Direct: 1, Fragile: 0},
			Local: Pattern{Sites: 1, Direct: 1, Fragile: 0},
		},
		{
			// "polybench" is our addition: a program whose constants need
			// genuinely polynomial jump functions, exercising the one case
			// where pass-through and polynomial differ (the paper found
			// none in its suite and says so; we keep the measurement).
			Name: "polybench", TargetLines: 350, TargetProcs: 8,
			Lit:  Pattern{Sites: 1, Direct: 1, Fragile: 0},
			Poly: Pattern{Sites: 3, Direct: 2, Fragile: 0},
		},
	}
}

// PaperPrograms returns only the paper's 12 programs (excluding our
// polybench addition). Note the paper lists 13 rows because `fpppp`
// appears in both suites; we keep one copy of each distinct program.
func PaperPrograms() []Spec {
	all := Programs()
	return all[:len(all)-1]
}

// ByName finds a spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Programs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all program names in order.
func Names() []string {
	var out []string
	for _, s := range Programs() {
		out = append(out, s.Name)
	}
	return out
}

// Source synthesizes the program for a spec.
func Source(spec Spec) string {
	b := &builder{spec: spec}
	return b.build()
}

// ---------------------------------------------------------------------
// Builder

type builder struct {
	spec  Spec
	units []string // completed program units
	main  strings.Builder
	procN int // generated procedure counter (unique names)

	commons []string // global names in /CFG/
	inertOK bool     // inert helper pair emitted
}

func (b *builder) procName(prefix string) string {
	b.procN++
	return fmt.Sprintf("%s%d", prefix, b.procN)
}

// unit collects a finished program unit.
func (b *builder) unit(text string) { b.units = append(b.units, text) }

// inertPair ensures the INERTA/INERTB helpers exist: INERTA passes its
// argument through a second call without modifying it, so with MOD
// information it is harmless but under worst-case assumptions it kills
// the argument (and every global).
func (b *builder) inertPair() {
	if b.inertOK {
		return
	}
	b.inertOK = true
	b.unit(`SUBROUTINE INERTB(IY)
INTEGER IY, IT
IT = IY + 0
END
`)
	b.unit(`SUBROUTINE INERTA(IX)
INTEGER IX
CALL INERTB(IX)
END
`)
}

// usesBlock emits Direct uses of var v immediately and Fragile uses
// after an inert call that passes v itself: with MOD information the
// call provably leaves v alone, but under worst-case assumptions it
// kills v (and the identity return jump function cannot restore it,
// because INERTA forwards its argument through a second call — the
// paper's "presence of any call … eliminated potential constants"
// mechanism). Each use is one counted substitution opportunity.
func usesBlock(w *strings.Builder, v string, direct, fragile int, tag string) {
	for i := 0; i < direct; i++ {
		fmt.Fprintf(w, "%s%d = %s + %d\n", tag, i, v, i)
	}
	if fragile > 0 {
		fmt.Fprintf(w, "CALL INERTA(%s)\n", v)
		for i := 0; i < fragile; i++ {
			fmt.Fprintf(w, "%s%d = %s * %d\n", tag, direct+i, v, i+2)
		}
	}
}

// declTags declares the integer temporaries usesBlock writes.
func declTags(w *strings.Builder, tag string, n int) {
	if n == 0 {
		return
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", tag, i)
	}
	fmt.Fprintf(w, "INTEGER %s\n", strings.Join(names, ", "))
}

func (b *builder) build() string {
	spec := b.spec
	b.inertPair()

	// COMMON globals for the GLOCAL and INIT patterns.
	nGlobals := spec.Glocal.Sites + spec.Init.Sites
	for i := 0; i < nGlobals; i++ {
		b.commons = append(b.commons, fmt.Sprintf("NCFG%d", i))
	}

	b.emitLit(spec.Lit)
	b.emitLocal(spec.Local)
	b.emitGlocal(spec.Glocal)
	b.emitIntra(spec.Intra)
	b.emitChain(spec.Chain)
	b.emitPoly(spec.Poly)
	b.emitInit(spec.Init)
	b.emitRet(spec.Ret)
	b.emitDead(spec.Dead)

	b.padUnits()
	b.emitFiller()

	// Assemble: MAIN first, then all units.
	var out strings.Builder
	out.WriteString("PROGRAM MAIN\n")
	if len(b.commons) > 0 {
		fmt.Fprintf(&out, "INTEGER %s\n", strings.Join(b.commons, ", "))
		fmt.Fprintf(&out, "COMMON /CFG/ %s\n", strings.Join(b.commons, ", "))
	}
	out.WriteString(b.main.String())
	out.WriteString("END\n\n")
	for _, u := range b.units {
		out.WriteString(u)
		out.WriteString("\n")
	}
	return out.String()
}

// commonDecl renders the COMMON declaration for a generated unit.
func (b *builder) commonDecl(w *strings.Builder) {
	if len(b.commons) == 0 {
		return
	}
	fmt.Fprintf(w, "INTEGER %s\n", strings.Join(b.commons, ", "))
	fmt.Fprintf(w, "COMMON /CFG/ %s\n", strings.Join(b.commons, ", "))
}

// ---------------------------------------------------------------------
// Patterns

// LIT: a literal constant at a call site; the callee uses its formal.
// Sites alternate between SUBROUTINE and INTEGER FUNCTION callees (the
// real codes mix both heavily). The function's result is made opaque on
// purpose so the pattern contributes identically under every
// configuration (no hidden return-jump-function effect).
func (b *builder) emitLit(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		if s%2 == 1 {
			name := b.procName("LFN")
			var u strings.Builder
			fmt.Fprintf(&u, "INTEGER FUNCTION %s(N)\nINTEGER N, IOP\n", name)
			declTags(&u, "IL", p.Direct+p.Fragile)
			usesBlock(&u, "N", p.Direct, p.Fragile, "IL")
			fmt.Fprintf(&u, "%s = N + IOP\n", name) // IOP undefined: opaque result
			u.WriteString("END\n")
			b.unit(u.String())
			fmt.Fprintf(&b.main, "NRES%d = %s(%d)\n", s, name, 100+s)
			continue
		}
		name := b.procName("LIT")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\n", name)
		declTags(&u, "IL", p.Direct+p.Fragile)
		usesBlock(&u, "N", p.Direct, p.Fragile, "IL")
		u.WriteString("END\n")
		b.unit(u.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", name, 100+s)
	}
}

// LOCAL: constants computed and used inside one routine (found even by
// purely intraprocedural propagation).
func (b *builder) emitLocal(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		name := b.procName("LOC")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY, NK\n", name)
		declTags(&u, "IO", p.Direct+p.Fragile)
		fmt.Fprintf(&u, "NK = %d + %d\n", s+1, s+2)
		usesBlock(&u, "NK", p.Direct, p.Fragile, "IO")
		u.WriteString("END\n")
		b.unit(u.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", name, s)
	}
}

// GLOCAL: a COMMON constant set locally, used after an inert call —
// the uses need MOD information to survive.
func (b *builder) emitGlocal(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		g := b.commons[s]
		name := b.procName("GLO")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY\n", name)
		b.commonDecl(&u)
		declTags(&u, "IG", p.Direct+p.Fragile+1)
		fmt.Fprintf(&u, "%s = %d\n", g, 10+s)
		// An inert call between definition and uses: with MOD the global
		// survives; without, it is clobbered.
		fmt.Fprintf(&u, "IG%d = 1\n", p.Direct+p.Fragile)
		fmt.Fprintf(&u, "CALL INERTA(IG%d)\n", p.Direct+p.Fragile)
		usesBlock(&u, g, p.Direct, p.Fragile, "IG")
		u.WriteString("END\n")
		b.unit(u.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", name, s)
	}
}

// INTRA: a computed (non-literal) constant passed at a call site.
func (b *builder) emitIntra(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		callee := b.procName("ITC")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\n", callee)
		declTags(&u, "II", p.Direct+p.Fragile)
		usesBlock(&u, "N", p.Direct, p.Fragile, "II")
		u.WriteString("END\n")
		b.unit(u.String())

		driver := b.procName("ITD")
		var d strings.Builder
		fmt.Fprintf(&d, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY, NV\n", driver)
		fmt.Fprintf(&d, "NV = %d * 3 + 1\n", s+2)
		fmt.Fprintf(&d, "CALL %s(NV)\n", callee)
		d.WriteString("END\n")
		b.unit(d.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", driver, s)
	}
}

// CHAIN: pass-through chains of the given depth; only the pass-through
// and polynomial jump functions cross the interior edges.
func (b *builder) emitChain(c Chain) {
	for s := 0; s < c.Chains; s++ {
		// Innermost consumer.
		leaf := b.procName("CHL")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\n", leaf)
		declTags(&u, "IC", c.Direct+c.Fragile)
		usesBlock(&u, "N", c.Direct, c.Fragile, "IC")
		u.WriteString("END\n")
		b.unit(u.String())

		next := leaf
		for d := 1; d < c.Depth; d++ {
			mid := b.procName("CHM")
			var m strings.Builder
			fmt.Fprintf(&m, "SUBROUTINE %s(N)\nINTEGER N\n", mid)
			fmt.Fprintf(&m, "CALL %s(N)\n", next)
			m.WriteString("END\n")
			b.unit(m.String())
			next = mid
		}
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", next, 50+s)
	}
}

// POLY: the actual is a polynomial of the caller's formal; only the
// polynomial jump function carries the constant.
func (b *builder) emitPoly(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		leaf := b.procName("PLL")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\n", leaf)
		declTags(&u, "IP", p.Direct+p.Fragile)
		usesBlock(&u, "N", p.Direct, p.Fragile, "IP")
		u.WriteString("END\n")
		b.unit(u.String())

		mid := b.procName("PLM")
		var m strings.Builder
		fmt.Fprintf(&m, "SUBROUTINE %s(N)\nINTEGER N\n", mid)
		fmt.Fprintf(&m, "CALL %s(N*%d + %d)\n", leaf, s+2, s+1)
		m.WriteString("END\n")
		b.unit(m.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", mid, 7+s)
	}
}

// INIT: an initialization routine assigns constants to COMMON; worker
// routines called afterwards read them. Constants flow only when return
// jump functions expose the initialization's effect (the ocean result).
func (b *builder) emitInit(p Pattern) {
	if p.Sites == 0 {
		return
	}
	base := b.spec.Glocal.Sites
	initName := b.procName("INI")
	var u strings.Builder
	fmt.Fprintf(&u, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY\n", initName)
	b.commonDecl(&u)
	for s := 0; s < p.Sites; s++ {
		fmt.Fprintf(&u, "%s = %d\n", b.commons[base+s], 64+s)
	}
	u.WriteString("END\n")
	b.unit(u.String())
	fmt.Fprintf(&b.main, "CALL %s(0)\n", initName)

	for s := 0; s < p.Sites; s++ {
		worker := b.procName("WRK")
		var w strings.Builder
		fmt.Fprintf(&w, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY\n", worker)
		b.commonDecl(&w)
		declTags(&w, "IW", p.Direct+p.Fragile)
		usesBlock(&w, b.commons[base+s], p.Direct, p.Fragile, "IW")
		w.WriteString("END\n")
		b.unit(w.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", worker, s)
	}
}

// RET: constants returned through out-parameters, then passed onward.
func (b *builder) emitRet(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		setter := b.procName("SET")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\nN = %d\nEND\n", setter, 200+s)
		b.unit(u.String())

		user := b.procName("USR")
		var w strings.Builder
		fmt.Fprintf(&w, "SUBROUTINE %s(N)\nINTEGER N\n", user)
		declTags(&w, "IR", p.Direct+p.Fragile)
		usesBlock(&w, "N", p.Direct, p.Fragile, "IR")
		w.WriteString("END\n")
		b.unit(w.String())

		driver := b.procName("RTD")
		var d strings.Builder
		fmt.Fprintf(&d, "SUBROUTINE %s(IDUMMY)\nINTEGER IDUMMY, NO\n", driver)
		fmt.Fprintf(&d, "NO = 0\n")
		fmt.Fprintf(&d, "CALL %s(NO)\n", setter)
		fmt.Fprintf(&d, "CALL %s(NO)\n", user)
		d.WriteString("END\n")
		b.unit(d.String())
		fmt.Fprintf(&b.main, "CALL %s(%d)\n", driver, s)
	}
}

// DEAD: a constant reaches the callee only after the dead arm of a
// conditional (whose predicate the analysis can fold) is removed.
func (b *builder) emitDead(p Pattern) {
	for s := 0; s < p.Sites; s++ {
		leaf := b.procName("DCL")
		var u strings.Builder
		fmt.Fprintf(&u, "SUBROUTINE %s(N)\nINTEGER N\n", leaf)
		declTags(&u, "ID", p.Direct+p.Fragile)
		usesBlock(&u, "N", p.Direct, p.Fragile, "ID")
		u.WriteString("END\n")
		b.unit(u.String())

		driver := b.procName("DCD")
		var d strings.Builder
		fmt.Fprintf(&d, "SUBROUTINE %s(K)\nINTEGER K, M\n", driver)
		fmt.Fprintf(&d, "IF (K .EQ. 1) THEN\nM = %d\nELSE\nM = %d\nENDIF\n", 30+s, 90+s)
		fmt.Fprintf(&d, "CALL %s(M)\n", leaf)
		d.WriteString("END\n")
		b.unit(d.String())
		fmt.Fprintf(&b.main, "CALL %s(1)\n", driver)
	}
}

// padUnits grows each small pattern routine toward the program's mean
// lines-per-procedure so the size distribution matches Table 1 (roughly
// uniform, except for the skewed programs). Padding statements iterate
// an uninitialized local, so they contribute no propagatable constants.
func (b *builder) padUnits() {
	if b.spec.TargetProcs == 0 {
		return
	}
	mean := b.spec.TargetLines / b.spec.TargetProcs
	if mean < 8 {
		return
	}
	for i, u := range b.units {
		lines := strings.Count(u, "\n")
		if lines >= mean {
			continue
		}
		// The declaration goes right after the unit header (the
		// specification part); the padding statements go just before the
		// final END (the execution part).
		var body strings.Builder
		for k := 0; k < mean-lines-1; k++ {
			fmt.Fprintf(&body, "IPAD = IPAD + %d\n", k)
		}
		nl := strings.Index(u, "\n")
		end := strings.LastIndex(u, "END\n")
		if nl < 0 || end <= nl {
			continue
		}
		b.units[i] = u[:nl+1] + "INTEGER IPAD\n" + u[nl+1:end] + body.String() + u[end:]
	}
}

// ---------------------------------------------------------------------
// Filler: reaches the Table 1 size/modularity targets without adding
// propagatable constants (all filler routines receive runtime inputs).

func (b *builder) emitFiller() {
	spec := b.spec
	// Count current procedures: units + MAIN.
	remainingProcs := spec.TargetProcs - len(b.units) - 1
	if remainingProcs < 1 {
		remainingProcs = 1
	}
	currentLines := b.approxLines()
	remainingLines := spec.TargetLines - currentLines
	if remainingLines < remainingProcs*6 {
		remainingLines = remainingProcs * 6
	}

	// READ a runtime value in MAIN so filler arguments are unknowable.
	b.main.WriteString("READ *, NRT\n")

	perProc := remainingLines / remainingProcs
	for i := 0; i < remainingProcs; i++ {
		lines := perProc
		if spec.Skewed {
			// One big routine carries half the filler.
			if i == 0 {
				lines = remainingLines / 2
			} else {
				lines = (remainingLines / 2) / remainingProcs
			}
		}
		if lines < 6 {
			lines = 6
		}
		name := b.procName("FIL")
		b.unit(fillerProc(name, lines, i))
		fmt.Fprintf(&b.main, "CALL %s(NRT, NRT + %d)\n", name, i)
	}
}

// fillerProc emits a routine of roughly the requested line count doing
// runtime-dependent arithmetic (nothing constant-propagatable).
func fillerProc(name string, lines, seed int) string {
	var u strings.Builder
	fmt.Fprintf(&u, "SUBROUTINE %s(NIN, NSEL)\n", name)
	u.WriteString("INTEGER NIN, NSEL, IACC, IDX, ITMP\n")
	u.WriteString("INTEGER IARR(20)\n")
	u.WriteString("IACC = NIN\n")
	body := lines - 6
	if body < 1 {
		body = 1
	}
	for i := 0; i < body; i++ {
		switch (i + seed) % 6 {
		case 0:
			fmt.Fprintf(&u, "IACC = IACC + MOD(NIN + %d, 7)\n", i)
		case 1:
			fmt.Fprintf(&u, "ITMP = MAX(IACC, NSEL + %d)\n", i)
		case 2:
			fmt.Fprintf(&u, "IARR(MOD(IACC + %d, 20) + 1) = ITMP\n", i)
		case 3:
			fmt.Fprintf(&u, "IF (IACC .GT. %d) IACC = IACC - NSEL\n", i*3)
		case 4:
			fmt.Fprintf(&u, "IDX = MIN(ABS(ITMP), %d)\n", i+5)
		default:
			fmt.Fprintf(&u, "IACC = IACC * 1 + IDX - ITMP / %d\n", i+2)
		}
	}
	u.WriteString("END\n")
	return u.String()
}

// approxLines counts lines emitted so far (units + main body).
func (b *builder) approxLines() int {
	n := strings.Count(b.main.String(), "\n") + 4
	for _, u := range b.units {
		n += strings.Count(u, "\n")
	}
	return n
}

// Characteristics summarizes a synthesized program for Table 1.
type Characteristics struct {
	Name       string
	Lines      int // non-comment lines
	Procs      int
	MeanLines  int
	MedianLine int
}

// Characterize computes Table 1 metrics from source text.
func Characterize(name, src string) Characteristics {
	c := Characteristics{Name: name}
	var perProc []int
	cur := 0
	inUnit := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" {
			continue
		}
		c.Lines++
		upper := strings.ToUpper(t)
		if strings.HasPrefix(upper, "PROGRAM") || strings.HasPrefix(upper, "SUBROUTINE") ||
			strings.Contains(upper, "FUNCTION ") && !strings.Contains(upper, "=") {
			inUnit = true
			cur = 1
			continue
		}
		if upper == "END" {
			if inUnit {
				perProc = append(perProc, cur+1)
				c.Procs++
				inUnit = false
			}
			continue
		}
		if inUnit {
			cur++
		}
	}
	if c.Procs > 0 {
		total := 0
		for _, n := range perProc {
			total += n
		}
		c.MeanLines = total / c.Procs
		sort.Ints(perProc)
		c.MedianLine = perProc[len(perProc)/2]
	}
	return c
}
