package suite

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func analyzeSuiteProgram(t *testing.T, spec Spec, cfg core.Config) (*core.Analysis, *sem.Program) {
	t.Helper()
	src := Source(spec)
	var diags source.ErrorList
	f := parser.ParseSource(spec.Name+".f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("%s: invalid program:\n%s", spec.Name, diags.Error())
	}
	return core.AnalyzeProgram(prog, cfg), prog
}

func cfgOf(kind jump.Kind, useMod, rjf bool) core.Config {
	return core.Config{Jump: jump.Config{Kind: kind, UseMOD: useMod, UseReturnJFs: rjf}}
}

func count(t *testing.T, spec Spec, cfg core.Config) int {
	t.Helper()
	a, _ := analyzeSuiteProgram(t, spec, cfg)
	return a.Substitute().Total
}

// TestAllProgramsValidAndRunnable: every suite program parses, checks,
// and executes to completion.
func TestAllProgramsValidAndRunnable(t *testing.T) {
	for _, spec := range Programs() {
		src := Source(spec)
		var diags source.ErrorList
		f := parser.ParseSource(spec.Name+".f", src, &diags)
		prog := sem.Analyze(f, &diags)
		if diags.HasErrors() {
			t.Fatalf("%s: %s", spec.Name, diags.Error())
		}
		for _, input := range [][]int64{{3}, {0}, {-5}} {
			if _, err := interp.Run(prog, interp.Options{Input: input, MaxSteps: 1 << 21}); err != nil {
				t.Fatalf("%s (input %v): execution: %v", spec.Name, input, err)
			}
		}
	}
}

// TestSizeTargets: synthesized sizes track Table 1 targets loosely.
func TestSizeTargets(t *testing.T) {
	for _, spec := range Programs() {
		ch := Characterize(spec.Name, Source(spec))
		if ch.Procs < spec.TargetProcs/2 || ch.Procs > spec.TargetProcs*2 {
			t.Errorf("%s: procs = %d, target %d", spec.Name, ch.Procs, spec.TargetProcs)
		}
		if ch.Lines < spec.TargetLines/2 || ch.Lines > spec.TargetLines*2 {
			t.Errorf("%s: lines = %d, target %d", spec.Name, ch.Lines, spec.TargetLines)
		}
	}
}

// TestHierarchyPerProgram reproduces the Table 2 ordering for every
// program: literal ≤ intraprocedural ≤ pass-through ≤ polynomial.
func TestHierarchyPerProgram(t *testing.T) {
	for _, spec := range Programs() {
		lit := count(t, spec, cfgOf(jump.Literal, true, true))
		intra := count(t, spec, cfgOf(jump.Intraprocedural, true, true))
		pt := count(t, spec, cfgOf(jump.PassThrough, true, true))
		poly := count(t, spec, cfgOf(jump.Polynomial, true, true))
		if !(lit <= intra && intra <= pt && pt <= poly) {
			t.Errorf("%s: ordering violated: lit=%d intra=%d pt=%d poly=%d", spec.Name, lit, intra, pt, poly)
		}
	}
}

// TestPassThroughEqualsPolynomialOnPaperSuite: the paper's headline
// result — on its 12 programs the two most powerful jump functions find
// the same constants (only our polybench addition separates them).
func TestPassThroughEqualsPolynomialOnPaperSuite(t *testing.T) {
	for _, spec := range PaperPrograms() {
		pt := count(t, spec, cfgOf(jump.PassThrough, true, true))
		poly := count(t, spec, cfgOf(jump.Polynomial, true, true))
		if pt != poly {
			t.Errorf("%s: pass-through %d != polynomial %d", spec.Name, pt, poly)
		}
	}
	pb, _ := ByName("polybench")
	pt := count(t, pb, cfgOf(jump.PassThrough, true, true))
	poly := count(t, pb, cfgOf(jump.Polynomial, true, true))
	if poly <= pt {
		t.Errorf("polybench: polynomial (%d) should beat pass-through (%d)", poly, pt)
	}
}

// TestOceanReturnJumpFunctions: return jump functions at least triple
// ocean's count, and change little elsewhere (Table 2).
func TestOceanReturnJumpFunctions(t *testing.T) {
	ocean, _ := ByName("ocean")
	with := count(t, ocean, cfgOf(jump.PassThrough, true, true))
	without := count(t, ocean, cfgOf(jump.PassThrough, true, false))
	if with < 3*without {
		t.Errorf("ocean: with RJF %d, without %d — expected ≥3×", with, without)
	}
	// A program without the init pattern barely moves.
	qcd, _ := ByName("qcd")
	qWith := count(t, qcd, cfgOf(jump.PassThrough, true, true))
	qWithout := count(t, qcd, cfgOf(jump.PassThrough, true, false))
	if qWith != qWithout {
		t.Errorf("qcd: RJF should not matter: %d vs %d", qWith, qWithout)
	}
}

// TestMODEffectOnSuite: removing MOD information collapses counts on
// the MOD-sensitive programs (Table 3 columns 1 vs 2).
func TestMODEffectOnSuite(t *testing.T) {
	for _, name := range []string{"adm", "linpackd", "matrix300", "simple"} {
		spec, _ := ByName(name)
		with := count(t, spec, cfgOf(jump.Polynomial, true, true))
		without := count(t, spec, cfgOf(jump.Polynomial, false, true))
		if without >= with {
			t.Errorf("%s: no-MOD (%d) should lose constants vs MOD (%d)", name, without, with)
		}
	}
	// doduc is robust: mostly literals at call sites.
	doduc, _ := ByName("doduc")
	with := count(t, doduc, cfgOf(jump.Polynomial, true, true))
	without := count(t, doduc, cfgOf(jump.Polynomial, false, true))
	if without < with*3/4 {
		t.Errorf("doduc should be robust without MOD: %d vs %d", without, with)
	}
}

// TestCompletePropagationOnSuite: only the DEAD-pattern programs gain
// from complete propagation, and only a little (Table 3 column 3).
func TestCompletePropagationOnSuite(t *testing.T) {
	for _, name := range []string{"ocean", "spec77"} {
		spec, _ := ByName(name)
		plain := count(t, spec, cfgOf(jump.Polynomial, true, true))
		cc := cfgOf(jump.Polynomial, true, true)
		cc.Complete = true
		complete := count(t, spec, cc)
		if complete <= plain {
			t.Errorf("%s: complete (%d) should exceed plain (%d)", name, complete, plain)
		}
	}
	trfd, _ := ByName("trfd")
	plain := count(t, trfd, cfgOf(jump.Polynomial, true, true))
	cc := cfgOf(jump.Polynomial, true, true)
	cc.Complete = true
	complete := count(t, trfd, cc)
	if complete != plain {
		t.Errorf("trfd: complete propagation should change nothing: %d vs %d", complete, plain)
	}
}

// TestInterproceduralBeatsIntraproceduralBaseline (Table 3 column 4).
func TestInterproceduralBeatsIntraproceduralBaseline(t *testing.T) {
	for _, name := range []string{"doduc", "ocean", "linpackd", "snasa7"} {
		spec, _ := ByName(name)
		a, prog := analyzeSuiteProgram(t, spec, cfgOf(jump.Polynomial, true, true))
		inter := a.Substitute().Total
		intra := core.IntraproceduralCount(prog).Total
		if inter <= intra {
			t.Errorf("%s: interprocedural (%d) should beat intraprocedural (%d)", name, inter, intra)
		}
	}
}

// TestUniformPrograms: adm, qcd, trfd tie across all four jump
// functions (Table 2 rows with identical values).
func TestUniformPrograms(t *testing.T) {
	for _, name := range []string{"qcd", "trfd"} {
		spec, _ := ByName(name)
		lit := count(t, spec, cfgOf(jump.Literal, true, true))
		poly := count(t, spec, cfgOf(jump.Polynomial, true, true))
		if lit != poly {
			t.Errorf("%s: literal (%d) should equal polynomial (%d)", name, lit, poly)
		}
		if lit == 0 {
			t.Errorf("%s: counts should be non-zero", name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("ocean"); !ok {
		t.Error("ocean missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("nope should be missing")
	}
	if len(Names()) != 13 {
		t.Errorf("Names() = %d, want 13", len(Names()))
	}
	if len(PaperPrograms()) != 12 {
		t.Errorf("PaperPrograms() = %d, want 12", len(PaperPrograms()))
	}
}

func TestDeterministicSource(t *testing.T) {
	spec, _ := ByName("trfd")
	if Source(spec) != Source(spec) {
		t.Error("Source must be deterministic")
	}
}
