package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/source"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	var diags source.ErrorList
	f := ParseSource("t.f", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.Error())
	}
	return f
}

func parseUnit(t *testing.T, src string) *ast.Unit {
	t.Helper()
	f := parse(t, src)
	if len(f.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(f.Units))
	}
	return f.Units[0]
}

func TestProgramHeader(t *testing.T) {
	u := parseUnit(t, "PROGRAM MAIN\nI = 1\nEND\n")
	if u.Kind != ast.ProgramUnit || u.Name != "MAIN" {
		t.Errorf("unit = %v %q", u.Kind, u.Name)
	}
	if len(u.Body) != 1 {
		t.Errorf("body length = %d", len(u.Body))
	}
}

func TestSubroutineHeader(t *testing.T) {
	u := parseUnit(t, "SUBROUTINE SUB(A, B, C)\nA = B + C\nRETURN\nEND\n")
	if u.Kind != ast.SubroutineUnit || u.Name != "SUB" {
		t.Errorf("unit = %v %q", u.Kind, u.Name)
	}
	if len(u.Params) != 3 || u.Params[0].Name != "A" || u.Params[2].Name != "C" {
		t.Errorf("params = %v", u.Params)
	}
}

func TestFunctionHeaders(t *testing.T) {
	u := parseUnit(t, "INTEGER FUNCTION F(X)\nF = X + 1\nRETURN\nEND\n")
	if u.Kind != ast.FunctionUnit || u.Result != ast.TypeInteger {
		t.Errorf("unit = %v result %v", u.Kind, u.Result)
	}
	u = parseUnit(t, "REAL FUNCTION G()\nG = 1.5\nEND\n")
	if u.Result != ast.TypeReal || len(u.Params) != 0 {
		t.Errorf("G: result %v params %v", u.Result, u.Params)
	}
	u = parseUnit(t, "FUNCTION H(A)\nH = A\nEND\n")
	if u.Result != ast.TypeInteger {
		t.Errorf("untyped FUNCTION should default to INTEGER, got %v", u.Result)
	}
	u = parseUnit(t, "DOUBLE PRECISION FUNCTION D(A)\nD = A\nEND\n")
	if u.Result != ast.TypeReal {
		t.Errorf("DOUBLE PRECISION FUNCTION should map to REAL, got %v", u.Result)
	}
}

func TestDeclarations(t *testing.T) {
	u := parseUnit(t, `SUBROUTINE S(N)
INTEGER N, A(10), B(N, 3)
REAL X
LOGICAL FLAG
COMMON /BLK/ P, Q
PARAMETER (M = 100, K = M*2)
DIMENSION C(5)
DATA P, Q / 1, 2 /
A(1) = N
END
`)
	if len(u.Decls) != 7 {
		t.Fatalf("decl count = %d, want 7", len(u.Decls))
	}
	vd := u.Decls[0].(*ast.VarDecl)
	if vd.Type != ast.TypeInteger || len(vd.Items) != 3 {
		t.Errorf("first decl: %v, %d items", vd.Type, len(vd.Items))
	}
	if len(vd.Items[1].Dims) != 1 || len(vd.Items[2].Dims) != 2 {
		t.Errorf("array dims wrong: %v", vd.Items)
	}
	cd := u.Decls[3].(*ast.CommonDecl)
	if cd.Block != "BLK" || len(cd.Items) != 2 {
		t.Errorf("common: %q %v", cd.Block, cd.Items)
	}
	pd := u.Decls[4].(*ast.ParamDecl)
	if len(pd.Names) != 2 || pd.Names[0] != "M" {
		t.Errorf("parameter: %v", pd.Names)
	}
	dd := u.Decls[6].(*ast.DataDecl)
	if len(dd.Names) != 2 || len(dd.Values) != 2 {
		t.Errorf("data: %v / %v", dd.Names, dd.Values)
	}
}

func TestAssignAndCall(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
I = 2 + 3*4
A(I) = I
CALL FOO(I, A(I), 5)
CALL BAR()
CALL BAZ
END
`)
	as := u.Body[0].(*ast.AssignStmt)
	rhs := as.Rhs.(*ast.Binary)
	if rhs.Op != ast.OpAdd {
		t.Errorf("precedence broken: top op = %v", rhs.Op)
	}
	if _, ok := rhs.Y.(*ast.Binary); !ok {
		t.Errorf("expected 3*4 as right operand")
	}
	as2 := u.Body[1].(*ast.AssignStmt)
	if _, ok := as2.Lhs.(*ast.Apply); !ok {
		t.Errorf("array assignment target should be Apply, got %T", as2.Lhs)
	}
	cs := u.Body[2].(*ast.CallStmt)
	if cs.Name != "FOO" || len(cs.Args) != 3 {
		t.Errorf("call: %q %d args", cs.Name, len(cs.Args))
	}
	if len(u.Body[3].(*ast.CallStmt).Args) != 0 {
		t.Error("empty-paren call should have 0 args")
	}
	if len(u.Body[4].(*ast.CallStmt).Args) != 0 {
		t.Error("paren-less call should have 0 args")
	}
}

func TestBlockIf(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
IF (I .GT. 0) THEN
  J = 1
ELSEIF (I .LT. 0) THEN
  J = 2
ELSE IF (I .EQ. 0) THEN
  J = 3
ELSE
  J = 4
ENDIF
END
`)
	s := u.Body[0].(*ast.IfStmt)
	if s.Logical {
		t.Error("block IF marked logical")
	}
	if len(s.Then) != 1 || len(s.ElseIfs) != 2 || len(s.Else) != 1 {
		t.Errorf("if arms: then=%d elseifs=%d else=%d", len(s.Then), len(s.ElseIfs), len(s.Else))
	}
}

func TestEndIfTwoWords(t *testing.T) {
	u := parseUnit(t, "PROGRAM P\nIF (X .GT. 0) THEN\nY = 1\nEND IF\nEND\n")
	if _, ok := u.Body[0].(*ast.IfStmt); !ok {
		t.Fatalf("expected IfStmt, got %T", u.Body[0])
	}
}

func TestLogicalIf(t *testing.T) {
	u := parseUnit(t, "PROGRAM P\nIF (I .EQ. 0) GOTO 10\n10 CONTINUE\nEND\n")
	s := u.Body[0].(*ast.IfStmt)
	if !s.Logical || len(s.Then) != 1 {
		t.Fatalf("logical IF shape wrong: %+v", s)
	}
	if g, ok := s.Then[0].(*ast.GotoStmt); !ok || g.Target != "10" {
		t.Errorf("inner stmt = %#v", s.Then[0])
	}
	if u.Body[1].Label() != "10" {
		t.Errorf("label = %q", u.Body[1].Label())
	}
}

func TestDoEnddo(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
DO I = 1, 10, 2
  S = S + I
ENDDO
DO J = 1, N
  T = T + J
END DO
END
`)
	d := u.Body[0].(*ast.DoStmt)
	if d.Var != "I" || d.Step == nil || d.EndLabel != "" {
		t.Errorf("do 1: %+v", d)
	}
	d2 := u.Body[1].(*ast.DoStmt)
	if d2.Var != "J" || d2.Step != nil {
		t.Errorf("do 2: %+v", d2)
	}
}

func TestDoLabelTerminated(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
DO 10 I = 1, N
  A(I) = 0
10 CONTINUE
K = 1
END
`)
	d := u.Body[0].(*ast.DoStmt)
	if d.EndLabel != "10" {
		t.Fatalf("end label = %q", d.EndLabel)
	}
	if len(d.Body) != 2 {
		t.Fatalf("body = %d stmts, want 2 (assign + labeled continue)", len(d.Body))
	}
	if d.Body[1].Label() != "10" {
		t.Errorf("terminator label = %q", d.Body[1].Label())
	}
	if len(u.Body) != 2 {
		t.Errorf("statements after loop: %d, want 2 total", len(u.Body))
	}
}

func TestNestedLabeledDo(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
DO 20 I = 1, N
DO 10 J = 1, M
  A = A + 1
10 CONTINUE
20 CONTINUE
END
`)
	outer := u.Body[0].(*ast.DoStmt)
	if len(outer.Body) != 2 {
		t.Fatalf("outer body = %d", len(outer.Body))
	}
	inner, ok := outer.Body[0].(*ast.DoStmt)
	if !ok || inner.EndLabel != "10" {
		t.Fatalf("inner loop wrong: %#v", outer.Body[0])
	}
}

func TestReadPrintWrite(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
READ *, N, M
PRINT *, N, 'result', M+1
WRITE (*,*) N
PRINT *
END
`)
	r := u.Body[0].(*ast.ReadStmt)
	if len(r.Args) != 2 {
		t.Errorf("read args = %d", len(r.Args))
	}
	pr := u.Body[1].(*ast.PrintStmt)
	if len(pr.Args) != 3 {
		t.Errorf("print args = %d", len(pr.Args))
	}
	w := u.Body[2].(*ast.PrintStmt)
	if len(w.Args) != 1 {
		t.Errorf("write args = %d", len(w.Args))
	}
	if len(u.Body[3].(*ast.PrintStmt).Args) != 0 {
		t.Errorf("bare PRINT * should have no args")
	}
}

func TestExpressionForms(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
X = -A + B*C**2 - D/E
L = A .LE. B .AND. .NOT. (C .GT. D) .OR. FLAG
Y = MOD(A, 2) + MAX(B, C, D)
Z = 2**3**2
END
`)
	// 2**3**2 must be right-associative: 2**(3**2).
	z := u.Body[3].(*ast.AssignStmt).Rhs.(*ast.Binary)
	if z.Op != ast.OpPow {
		t.Fatalf("top op = %v", z.Op)
	}
	if inner, ok := z.Y.(*ast.Binary); !ok || inner.Op != ast.OpPow {
		t.Errorf("** not right-associative")
	}
	if _, ok := z.X.(*ast.IntLit); !ok {
		t.Errorf("left of ** should be literal 2")
	}
}

func TestMultipleUnits(t *testing.T) {
	f := parse(t, `PROGRAM MAIN
CALL S(1)
END

SUBROUTINE S(X)
X = X + 1
END

INTEGER FUNCTION F(A, B)
F = A*B
END
`)
	if len(f.Units) != 3 {
		t.Fatalf("units = %d, want 3", len(f.Units))
	}
	if f.Units[1].Name != "S" || f.Units[2].Name != "F" {
		t.Errorf("unit names: %q %q", f.Units[1].Name, f.Units[2].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"PROGRAM\nEND\n",                              // missing name
		"PROGRAM P\nI = \nEND\n",                      // missing expression
		"PROGRAM P\nIF (X THEN\nENDIF\nEND\n",         // missing rparen
		"PROGRAM P\nDO 10 I = 1, N\nJ = 1\nEND\n",     // unterminated labeled DO
		"PROGRAM P\nGOTO X\nEND\n",                    // GOTO needs numeric label
		"PROGRAM P\nIF (X .GT. 0) THEN\nY = 1\nEND\n", // missing ENDIF (END terminates)
		"INTEGER I\nEND\n",                            // declaration outside a unit
	}
	for _, src := range cases {
		var diags source.ErrorList
		ParseSource("t.f", src, &diags)
		if !diags.HasErrors() {
			t.Errorf("no error reported for:\n%s", src)
		}
	}
}

func TestArithmeticIf(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
INTEGER I
I = 1
IF (I - 5) 10, 20, 30
10 CONTINUE
20 CONTINUE
30 CONTINUE
END
`)
	s, ok := u.Body[1].(*ast.ArithIfStmt)
	if !ok {
		t.Fatalf("expected ArithIfStmt, got %T", u.Body[1])
	}
	if s.LtLabel != "10" || s.EqLabel != "20" || s.GtLabel != "30" {
		t.Errorf("labels: %s %s %s", s.LtLabel, s.EqLabel, s.GtLabel)
	}
}

func TestComputedGoto(t *testing.T) {
	u := parseUnit(t, `PROGRAM P
INTEGER I
I = 2
GOTO (10, 20, 30), I
10 CONTINUE
20 CONTINUE
30 CONTINUE
END
`)
	s, ok := u.Body[1].(*ast.ComputedGotoStmt)
	if !ok {
		t.Fatalf("expected ComputedGotoStmt, got %T", u.Body[1])
	}
	if len(s.Targets) != 3 || s.Targets[2] != "30" {
		t.Errorf("targets: %v", s.Targets)
	}
	if _, ok := s.Index.(*ast.Ident); !ok {
		t.Errorf("index: %T", s.Index)
	}
}

func TestColumnOneCAssignment(t *testing.T) {
	// 'C' in column 1 followed by '=' is an assignment, not a comment.
	u := parseUnit(t, "PROGRAM P\nREAL C\nC = 1.5\nC another comment\nPRINT *, C\nEND\n")
	if len(u.Body) != 2 {
		t.Fatalf("body = %d stmts, want 2 (assignment + print)", len(u.Body))
	}
}

func TestRoundTripThroughWriter(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER I, A(10)
COMMON /G/ N
PARAMETER (K = 5)
N = K*2
IF (N - 10) 30, 30, 30
30 CONTINUE
GOTO (40, 50), I
40 CONTINUE
50 CONTINUE
DO 10 I = 1, N
  A(1) = I
  IF (I .EQ. 3) GOTO 10
  CALL WORK(A, I, N)
10 CONTINUE
IF (N .GT. 0) THEN
  PRINT *, N
ELSE
  STOP
ENDIF
END

SUBROUTINE WORK(A, I, N)
INTEGER A(N), I, N
A(I) = MOD(I, 2)
RETURN
END
`
	f1 := parse(t, src)
	out := ast.FileString(f1)
	f2 := parse(t, out)
	out2 := ast.FileString(f2)
	if out != out2 {
		t.Errorf("writer output is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out, out2)
	}
	if len(f2.Units) != 2 {
		t.Errorf("round trip lost units: %d", len(f2.Units))
	}
}

func TestWriterExprParenthesization(t *testing.T) {
	cases := []string{
		"X = (A + B)*C",
		"X = A - (B - C)",
		"X = A/(B*C)",
		"X = -(A + B)",
		"X = A**(B + 1)",
		"L = .NOT. (A .AND. B)",
	}
	for _, stmt := range cases {
		src := "PROGRAM P\n" + stmt + "\nEND\n"
		f := parse(t, src)
		printed := ast.FileString(f)
		f2 := parse(t, printed)
		again := ast.FileString(f2)
		if printed != again {
			t.Errorf("%s: print not stable:\n%s\nvs\n%s", stmt, printed, again)
		}
		if !strings.Contains(printed, "(") {
			t.Errorf("%s: expected parens preserved in %q", stmt, printed)
		}
	}
}
