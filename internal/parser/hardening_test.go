package parser

// Hardening tests for the parser's adversarial-input guards: bounded
// nesting depth, bounded input size, and guaranteed termination.

import (
	"strings"
	"testing"

	"repro/internal/sem"
	"repro/internal/source"
)

// parseNoPanic parses src asserting the front end returns (rather than
// overflowing the stack or hanging) and reports errors when wantErr.
func parseNoPanic(t *testing.T, name, src string, wantErr bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	var diags source.ErrorList
	f := ParseSource(name, src, &diags)
	sem.Analyze(f, &diags)
	if wantErr && !diags.HasErrors() {
		t.Errorf("%s: expected diagnostics, got none", name)
	}
	if !wantErr && diags.HasErrors() {
		t.Errorf("%s: unexpected diagnostics:\n%s", name, diags.Error())
	}
}

func TestDeepParenNesting(t *testing.T) {
	depth := 100_000
	src := "PROGRAM MAIN\nINTEGER X\nX = " +
		strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + "\nEND\n"
	parseNoPanic(t, "parens.f", src, true)
}

func TestDeepUnaryNesting(t *testing.T) {
	src := "PROGRAM MAIN\nINTEGER X\nX = " + strings.Repeat("-", 100_000) + "1\nEND\n"
	parseNoPanic(t, "unary.f", src, true)
}

func TestDeepNotNesting(t *testing.T) {
	src := "PROGRAM MAIN\nLOGICAL L\nL = " + strings.Repeat(".NOT. ", 50_000) + ".TRUE.\nEND\n"
	parseNoPanic(t, "not.f", src, true)
}

func TestDeepExponentNesting(t *testing.T) {
	// ** is right-associative: each step recurses into power().
	src := "PROGRAM MAIN\nINTEGER X\nX = " + strings.Repeat("2 ** ", 50_000) + "2\nEND\n"
	parseNoPanic(t, "power.f", src, true)
}

func TestDeepBlockNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("PROGRAM MAIN\nINTEGER X\nX = 1\n")
	const depth = 20_000
	for i := 0; i < depth; i++ {
		b.WriteString("IF (X .GT. 0) THEN\n")
	}
	b.WriteString("X = 2\n")
	for i := 0; i < depth; i++ {
		b.WriteString("ENDIF\n")
	}
	b.WriteString("END\n")
	parseNoPanic(t, "blocks.f", b.String(), true)
}

func TestNestingBelowCapStillParses(t *testing.T) {
	depth := 50
	src := "PROGRAM MAIN\nINTEGER X\nX = " +
		strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + "\nEND\n"
	parseNoPanic(t, "shallow.f", src, false)
}

func TestOversizedSourceRejected(t *testing.T) {
	src := "PROGRAM MAIN\nC " + strings.Repeat("x", MaxSourceBytes) + "\nEND\n"
	var diags source.ErrorList
	f := ParseSource("huge.f", src, &diags)
	if !diags.HasErrors() {
		t.Error("oversized source accepted without diagnostics")
	}
	if len(f.Units) != 0 {
		t.Errorf("oversized source produced %d units, want 0", len(f.Units))
	}
}

func TestSourceAtLimitAccepted(t *testing.T) {
	pad := MaxSourceBytes - 64
	src := "PROGRAM MAIN\nC " + strings.Repeat("x", pad) + "\nEND\n"
	if len(src) > MaxSourceBytes {
		t.Fatalf("test bug: source is %d bytes", len(src))
	}
	parseNoPanic(t, "atlimit.f", src, false)
}
