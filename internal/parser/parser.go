// Package parser turns F77s tokens into the AST of package ast. It is a
// straightforward recursive-descent parser; statements are line-oriented
// so error recovery simply skips to the next line.
package parser

import (
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/guard"
	"repro/internal/lexer"
	"repro/internal/source"
)

// Hardening limits. Arbitrary input must never exhaust the stack or
// pin the front end: oversized files are rejected with a diagnostic,
// and nesting beyond MaxNestingDepth degrades to placeholder
// expressions (the recursion stops; each capped parse still consumes a
// token, so termination is guaranteed).
const (
	// MaxSourceBytes is the largest source file the parser accepts.
	MaxSourceBytes = 4 << 20
	// MaxNestingDepth bounds combined expression and block-statement
	// nesting. It also protects every downstream tree walker (sem,
	// writer, symbolic construction), which recurse over the AST.
	MaxNestingDepth = 500
)

// ParseFile lexes and parses one source file. Diagnostics go to diags;
// the returned file contains every unit that parsed well enough to keep.
func ParseFile(file *source.File, diags *source.ErrorList) *ast.File {
	defer guard.Repanic("parse")
	guard.InjectPanic("parse")
	if len(file.Content) > MaxSourceBytes {
		diags.Errorf(file.Pos(0), "source exceeds %d bytes (%d); refusing to parse", MaxSourceBytes, len(file.Content))
		return &ast.File{Source: file}
	}
	p := &parser{
		file:  file,
		toks:  lexer.Tokenize(file, diags),
		diags: diags,
	}
	f := &ast.File{Source: file}
	for !p.at(lexer.EOF) {
		u := p.unit()
		if u != nil {
			f.Units = append(f.Units, u)
		}
	}
	return f
}

// ParseSource is a convenience wrapper for parsing from a string.
func ParseSource(name, src string, diags *source.ErrorList) *ast.File {
	return ParseFile(source.NewFile(name, src), diags)
}

type parser struct {
	file  *source.File
	toks  []lexer.Token
	i     int
	diags *source.ErrorList

	depth    int  // current expression/block nesting
	depthErr bool // depth diagnostic already emitted (report once)

	// Slab arenas for the hottest AST nodes. An AST lives and dies as a
	// unit, so chunked slabs cut one heap allocation per expression node
	// down to one per chunk without changing lifetimes.
	identArena []ast.Ident
	intArena   []ast.IntLit
	binArena   []ast.Binary
	argSlab    []ast.Expr
}

// astChunk is the parser slab chunk size.
const astChunk = 128

func (p *parser) newIdent(pos source.Position, name string) *ast.Ident {
	if len(p.identArena) == cap(p.identArena) {
		p.identArena = make([]ast.Ident, 0, astChunk)
	}
	p.identArena = append(p.identArena, ast.Ident{Position: pos, Name: name})
	return &p.identArena[len(p.identArena)-1]
}

func (p *parser) newIntLit(pos source.Position, v int64) *ast.IntLit {
	if len(p.intArena) == cap(p.intArena) {
		p.intArena = make([]ast.IntLit, 0, astChunk)
	}
	p.intArena = append(p.intArena, ast.IntLit{Position: pos, Value: v})
	return &p.intArena[len(p.intArena)-1]
}

func (p *parser) newBinary(pos source.Position, op ast.Op, x, y ast.Expr) *ast.Binary {
	if len(p.binArena) == cap(p.binArena) {
		p.binArena = make([]ast.Binary, 0, astChunk)
	}
	p.binArena = append(p.binArena, ast.Binary{Position: pos, Op: op, X: x, Y: y})
	return &p.binArena[len(p.binArena)-1]
}

// argAppend appends to an argument list, seeding empty lists with a
// capacity-2 window of a shared slab (most argument lists hold one or
// two entries; longer ones fall back to a normal append).
func (p *parser) argAppend(s []ast.Expr, x ast.Expr) []ast.Expr {
	if s == nil {
		if len(p.argSlab)+2 > cap(p.argSlab) {
			p.argSlab = make([]ast.Expr, 0, 4*astChunk)
		}
		lo := len(p.argSlab)
		p.argSlab = p.argSlab[:lo+2]
		s = p.argSlab[lo : lo : lo+2]
	}
	return append(s, x)
}

// nested runs f one nesting level deeper. Past MaxNestingDepth it stops
// recursing: it reports the overflow once, consumes one token (progress
// guarantee), and yields a placeholder zero so parsing can continue.
func (p *parser) nested(f func() ast.Expr) ast.Expr {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > MaxNestingDepth {
		if !p.depthErr {
			p.depthErr = true
			p.errorf("nesting exceeds %d levels", MaxNestingDepth)
		}
		pos := p.pos()
		if !p.at(lexer.NEWLINE) && !p.at(lexer.EOF) {
			p.next()
		}
		return p.newIntLit(pos, 0)
	}
	return f()
}

func (p *parser) tok() lexer.Token     { return p.toks[p.i] }
func (p *parser) at(k lexer.Kind) bool { return p.toks[p.i].Kind == k }
func (p *parser) peek(n int) lexer.Token {
	j := p.i + n
	if j >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[j]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.i]
	if t.Kind != lexer.EOF {
		p.i++
	}
	return t
}

func (p *parser) pos() source.Position { return p.file.Pos(p.tok().Offset) }

func (p *parser) errorf(format string, args ...interface{}) {
	p.diags.Errorf(p.pos(), format, args...)
}

// expect consumes a token of kind k or reports an error.
func (p *parser) expect(k lexer.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.tok())
	return lexer.Token{Kind: k, Offset: p.tok().Offset}
}

// endOfLine consumes the statement terminator (NEWLINE or EOF) and
// reports stray tokens before it.
func (p *parser) endOfLine() {
	if p.at(lexer.NEWLINE) {
		p.next()
		return
	}
	if p.at(lexer.EOF) {
		return
	}
	p.errorf("unexpected %s at end of statement", p.tok())
	p.skipLine()
}

// skipLine discards tokens through the next NEWLINE.
func (p *parser) skipLine() {
	for !p.at(lexer.NEWLINE) && !p.at(lexer.EOF) {
		p.next()
	}
	if p.at(lexer.NEWLINE) {
		p.next()
	}
}

// ---------------------------------------------------------------------
// Program units

func (p *parser) unit() *ast.Unit {
	// Skip stray newlines between units.
	for p.at(lexer.NEWLINE) {
		p.next()
	}
	if p.at(lexer.EOF) {
		return nil
	}
	u := &ast.Unit{Position: p.pos()}
	switch {
	case p.at(lexer.KwProgram):
		p.next()
		u.Kind = ast.ProgramUnit
		u.Name = p.expect(lexer.IDENT).Text
		p.endOfLine()
	case p.at(lexer.KwSubroutine):
		p.next()
		u.Kind = ast.SubroutineUnit
		u.Name = p.expect(lexer.IDENT).Text
		u.Params = p.paramList()
		p.endOfLine()
	case p.at(lexer.KwInteger) || p.at(lexer.KwReal) || p.at(lexer.KwLogical) || p.at(lexer.KwDouble):
		// Typed FUNCTION header, e.g. `INTEGER FUNCTION F(X)`.
		bt := p.baseType()
		if !p.at(lexer.KwFunction) {
			p.errorf("expected FUNCTION after type in unit header (declarations belong inside a unit)")
			p.skipLine()
			return nil
		}
		p.next()
		u.Kind = ast.FunctionUnit
		u.Result = bt
		u.Name = p.expect(lexer.IDENT).Text
		u.Params = p.paramList()
		p.endOfLine()
	case p.at(lexer.KwFunction):
		p.next()
		u.Kind = ast.FunctionUnit
		u.Result = ast.TypeInteger // default: integer-valued function
		u.Name = p.expect(lexer.IDENT).Text
		u.Params = p.paramList()
		p.endOfLine()
	default:
		p.errorf("expected PROGRAM, SUBROUTINE, or FUNCTION, found %s", p.tok())
		p.skipLine()
		return nil
	}

	u.Decls = p.declarations()
	u.Body = p.stmtList(endUnit)
	// Consume the END line.
	if p.at(lexer.KwEnd) {
		p.next()
		p.endOfLine()
	} else {
		p.errorf("expected END of %s %s, found %s", u.Kind, u.Name, p.tok())
	}
	return u
}

func (p *parser) paramList() []*ast.Param {
	var ps []*ast.Param
	if !p.at(lexer.LPAREN) {
		return ps
	}
	p.next()
	if p.at(lexer.RPAREN) {
		p.next()
		return ps
	}
	for {
		t := p.expect(lexer.IDENT)
		ps = append(ps, &ast.Param{Position: p.file.Pos(t.Offset), Name: t.Text})
		if !p.at(lexer.COMMA) {
			break
		}
		p.next()
	}
	p.expect(lexer.RPAREN)
	return ps
}

func (p *parser) baseType() ast.BaseType {
	switch p.tok().Kind {
	case lexer.KwInteger:
		p.next()
		return ast.TypeInteger
	case lexer.KwReal:
		p.next()
		return ast.TypeReal
	case lexer.KwLogical:
		p.next()
		return ast.TypeLogical
	case lexer.KwDouble:
		p.next()
		if p.at(lexer.KwPrecision) {
			p.next()
		} else {
			p.errorf("expected PRECISION after DOUBLE")
		}
		return ast.TypeReal
	}
	p.errorf("expected a type, found %s", p.tok())
	return ast.TypeNone
}

// ---------------------------------------------------------------------
// Declarations

func (p *parser) declarations() []ast.Decl {
	var decls []ast.Decl
	for {
		switch p.tok().Kind {
		case lexer.KwInteger, lexer.KwReal, lexer.KwLogical, lexer.KwDouble:
			pos := p.pos()
			bt := p.baseType()
			d := &ast.VarDecl{Position: pos, Type: bt, Items: p.declItemList()}
			p.endOfLine()
			decls = append(decls, d)
		case lexer.KwCommon:
			pos := p.pos()
			p.next()
			block := ""
			if p.at(lexer.SLASH) {
				p.next()
				block = p.expect(lexer.IDENT).Text
				p.expect(lexer.SLASH)
			}
			d := &ast.CommonDecl{Position: pos, Block: block, Items: p.declItemList()}
			p.endOfLine()
			decls = append(decls, d)
		case lexer.KwParameter:
			pos := p.pos()
			p.next()
			p.expect(lexer.LPAREN)
			d := &ast.ParamDecl{Position: pos}
			for {
				name := p.expect(lexer.IDENT).Text
				p.expect(lexer.ASSIGN)
				d.Names = append(d.Names, name)
				d.Values = append(d.Values, p.expr())
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
			p.expect(lexer.RPAREN)
			p.endOfLine()
			decls = append(decls, d)
		case lexer.KwDimension:
			pos := p.pos()
			p.next()
			d := &ast.DimensionDecl{Position: pos, Items: p.declItemList()}
			p.endOfLine()
			decls = append(decls, d)
		case lexer.KwData:
			pos := p.pos()
			p.next()
			d := &ast.DataDecl{Position: pos}
			for {
				d.Names = append(d.Names, p.expect(lexer.IDENT).Text)
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
			p.expect(lexer.SLASH)
			// DATA values are signed constants, not general expressions:
			// a full expression parse would read the closing '/' as
			// division.
			for {
				d.Values = append(d.Values, p.signedConstant())
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
			p.expect(lexer.SLASH)
			p.endOfLine()
			decls = append(decls, d)
		default:
			return decls
		}
	}
}

func (p *parser) declItemList() []*ast.DeclItem {
	var items []*ast.DeclItem
	for {
		t := p.expect(lexer.IDENT)
		it := &ast.DeclItem{Position: p.file.Pos(t.Offset), Name: t.Text}
		if p.at(lexer.LPAREN) {
			p.next()
			for {
				it.Dims = append(it.Dims, p.expr())
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
			p.expect(lexer.RPAREN)
		}
		items = append(items, it)
		if !p.at(lexer.COMMA) {
			return items
		}
		p.next()
	}
}

// ---------------------------------------------------------------------
// Statements

// stopSet tells stmtList which keywords end the current statement block
// without being consumed.
type stopSet int

const (
	endUnit stopSet = iota // stop at END (unit terminator)
	endIf                  // stop at ELSEIF / ELSE / ENDIF / END IF
	endDo                  // stop at ENDDO / END DO
)

// atBlockEnd reports whether the current token ends the block described
// by stop. It must not consume anything.
func (p *parser) atBlockEnd(stop stopSet) bool {
	if p.at(lexer.EOF) {
		return true
	}
	switch stop {
	case endIf:
		if p.at(lexer.KwElse) || p.at(lexer.KwElseIf) || p.at(lexer.KwEndIf) {
			return true
		}
		// "END IF" written as two words.
		if p.at(lexer.KwEnd) && p.peek(1).Kind == lexer.KwIf {
			return true
		}
	case endDo:
		if p.at(lexer.KwEndDo) {
			return true
		}
		if p.at(lexer.KwEnd) && p.peek(1).Kind == lexer.KwDo {
			return true
		}
	}
	// A bare END always terminates (possibly with a missing-ENDIF error
	// reported by the caller's expect).
	if p.at(lexer.KwEnd) && p.peek(1).Kind != lexer.KwIf && p.peek(1).Kind != lexer.KwDo {
		return true
	}
	return false
}

func (p *parser) stmtList(stop stopSet) []ast.Stmt {
	var stmts []ast.Stmt
	for {
		for p.at(lexer.NEWLINE) {
			p.next()
		}
		if p.atBlockEnd(stop) {
			return stmts
		}
		s := p.statement()
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

// statement parses one labeled or unlabeled statement line.
func (p *parser) statement() ast.Stmt {
	label := ""
	if p.at(lexer.LABEL) {
		label = p.next().Text
	}
	s := p.simpleOrCompound()
	if s != nil && label != "" {
		s.SetLabel(label)
	}
	return s
}

func (p *parser) simpleOrCompound() ast.Stmt {
	pos := p.pos()
	switch p.tok().Kind {
	case lexer.KwIf, lexer.KwDo:
		// Block statements recurse into stmtList; cap their nesting with
		// the same counter as expressions.
		p.depth++
		defer func() { p.depth-- }()
		if p.depth > MaxNestingDepth {
			if !p.depthErr {
				p.depthErr = true
				p.errorf("nesting exceeds %d levels", MaxNestingDepth)
			}
			p.skipLine()
			return nil
		}
		if p.at(lexer.KwIf) {
			return p.ifStmt(pos)
		}
		return p.doStmt(pos)
	default:
		s := p.simpleStmt(pos)
		if s != nil {
			p.endOfLine()
		}
		return s
	}
}

// simpleStmt parses a statement that fits on one line (no THEN blocks or
// DO bodies). It does not consume the end of line.
func (p *parser) simpleStmt(pos source.Position) ast.Stmt {
	switch p.tok().Kind {
	case lexer.KwCall:
		p.next()
		name := p.expect(lexer.IDENT).Text
		s := &ast.CallStmt{StmtBase: ast.StmtBase{Position: pos}, Name: name}
		if p.at(lexer.LPAREN) {
			p.next()
			if !p.at(lexer.RPAREN) {
				for {
					s.Args = append(s.Args, p.expr())
					if !p.at(lexer.COMMA) {
						break
					}
					p.next()
				}
			}
			p.expect(lexer.RPAREN)
		}
		return s
	case lexer.KwGoto:
		p.next()
		if p.at(lexer.LPAREN) {
			// Computed GOTO: GOTO (l1, l2, ...), e
			p.next()
			s := &ast.ComputedGotoStmt{StmtBase: ast.StmtBase{Position: pos}}
			for {
				t := p.expect(lexer.INTLIT)
				s.Targets = append(s.Targets, t.Text)
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
			p.expect(lexer.RPAREN)
			if p.at(lexer.COMMA) {
				p.next()
			}
			s.Index = p.expr()
			return s
		}
		t := p.expect(lexer.INTLIT)
		return &ast.GotoStmt{StmtBase: ast.StmtBase{Position: pos}, Target: t.Text}
	case lexer.KwContinue:
		p.next()
		return &ast.ContinueStmt{StmtBase: ast.StmtBase{Position: pos}}
	case lexer.KwReturn:
		p.next()
		return &ast.ReturnStmt{StmtBase: ast.StmtBase{Position: pos}}
	case lexer.KwStop:
		p.next()
		// Optional stop code, ignored.
		if p.at(lexer.INTLIT) || p.at(lexer.STRING) {
			p.next()
		}
		return &ast.StopStmt{StmtBase: ast.StmtBase{Position: pos}}
	case lexer.KwRead:
		p.next()
		p.ioControl()
		s := &ast.ReadStmt{StmtBase: ast.StmtBase{Position: pos}}
		for {
			s.Args = append(s.Args, p.expr())
			if !p.at(lexer.COMMA) {
				break
			}
			p.next()
		}
		return s
	case lexer.KwPrint, lexer.KwWrite:
		p.next()
		p.ioControl()
		s := &ast.PrintStmt{StmtBase: ast.StmtBase{Position: pos}}
		if !p.at(lexer.NEWLINE) && !p.at(lexer.EOF) {
			for {
				s.Args = append(s.Args, p.expr())
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
		}
		return s
	case lexer.IDENT:
		// Assignment: IDENT [ (subscripts) ] = expr
		lhs := p.primary()
		switch lhs.(type) {
		case *ast.Ident, *ast.Apply:
			// ok as assignment targets
		default:
			p.errorf("invalid assignment target")
		}
		p.expect(lexer.ASSIGN)
		rhs := p.expr()
		return &ast.AssignStmt{StmtBase: ast.StmtBase{Position: pos}, Lhs: lhs, Rhs: rhs}
	}
	p.errorf("expected a statement, found %s", p.tok())
	p.skipLine()
	return nil
}

// ioControl consumes the control part of READ/PRINT/WRITE:
// `*`, `*,` or `(*,*)`.
func (p *parser) ioControl() {
	if p.at(lexer.LPAREN) { // WRITE (*,*) / READ (*,*)
		p.next()
		for !p.at(lexer.RPAREN) && !p.at(lexer.NEWLINE) && !p.at(lexer.EOF) {
			p.next()
		}
		p.expect(lexer.RPAREN)
		if p.at(lexer.COMMA) {
			p.next()
		}
		return
	}
	p.expect(lexer.STAR)
	if p.at(lexer.COMMA) {
		p.next()
	}
}

func (p *parser) ifStmt(pos source.Position) ast.Stmt {
	p.expect(lexer.KwIf)
	p.expect(lexer.LPAREN)
	cond := p.expr()
	p.expect(lexer.RPAREN)

	if p.at(lexer.INTLIT) {
		// Arithmetic IF: IF (e) l1, l2, l3.
		s := &ast.ArithIfStmt{StmtBase: ast.StmtBase{Position: pos}, Expr: cond}
		s.LtLabel = p.expect(lexer.INTLIT).Text
		p.expect(lexer.COMMA)
		s.EqLabel = p.expect(lexer.INTLIT).Text
		p.expect(lexer.COMMA)
		s.GtLabel = p.expect(lexer.INTLIT).Text
		p.endOfLine()
		return s
	}

	if p.at(lexer.KwThen) {
		// Block IF.
		p.next()
		p.endOfLine()
		s := &ast.IfStmt{StmtBase: ast.StmtBase{Position: pos}, Cond: cond}
		s.Then = p.stmtList(endIf)
		for {
			switch {
			case p.at(lexer.KwElseIf):
				eiPos := p.pos()
				p.next()
				p.expect(lexer.LPAREN)
				c := p.expr()
				p.expect(lexer.RPAREN)
				p.expect(lexer.KwThen)
				p.endOfLine()
				s.ElseIfs = append(s.ElseIfs, &ast.ElseIfClause{Position: eiPos, Cond: c, Body: p.stmtList(endIf)})
				continue
			case p.at(lexer.KwElse) && p.peek(1).Kind == lexer.KwIf:
				// "ELSE IF (...) THEN"
				eiPos := p.pos()
				p.next() // ELSE
				p.next() // IF
				p.expect(lexer.LPAREN)
				c := p.expr()
				p.expect(lexer.RPAREN)
				p.expect(lexer.KwThen)
				p.endOfLine()
				s.ElseIfs = append(s.ElseIfs, &ast.ElseIfClause{Position: eiPos, Cond: c, Body: p.stmtList(endIf)})
				continue
			case p.at(lexer.KwElse):
				p.next()
				p.endOfLine()
				s.Else = p.stmtList(endIf)
				continue
			}
			break
		}
		switch {
		case p.at(lexer.KwEndIf):
			p.next()
		case p.at(lexer.KwEnd) && p.peek(1).Kind == lexer.KwIf:
			p.next()
			p.next()
		default:
			p.errorf("expected ENDIF, found %s", p.tok())
		}
		p.endOfLine()
		return s
	}

	// Logical IF: one simple statement on the same line.
	inner := p.simpleStmt(p.pos())
	s := &ast.IfStmt{StmtBase: ast.StmtBase{Position: pos}, Cond: cond, Logical: true}
	if inner != nil {
		s.Then = []ast.Stmt{inner}
		p.endOfLine()
	}
	return s
}

func (p *parser) doStmt(pos source.Position) ast.Stmt {
	p.expect(lexer.KwDo)
	endLabel := ""
	if p.at(lexer.INTLIT) {
		endLabel = p.next().Text
	}
	v := p.expect(lexer.IDENT).Text
	p.expect(lexer.ASSIGN)
	from := p.expr()
	p.expect(lexer.COMMA)
	to := p.expr()
	var step ast.Expr
	if p.at(lexer.COMMA) {
		p.next()
		step = p.expr()
	}
	p.endOfLine()

	s := &ast.DoStmt{StmtBase: ast.StmtBase{Position: pos}, Var: v, From: from, To: to, Step: step, EndLabel: endLabel}
	if endLabel == "" {
		s.Body = p.stmtList(endDo)
		switch {
		case p.at(lexer.KwEndDo):
			p.next()
		case p.at(lexer.KwEnd) && p.peek(1).Kind == lexer.KwDo:
			p.next()
			p.next()
		default:
			p.errorf("expected ENDDO, found %s", p.tok())
		}
		p.endOfLine()
		return s
	}

	// Label-terminated loop: collect statements until we parse the one
	// carrying the terminating label (inclusive).
	for {
		for p.at(lexer.NEWLINE) {
			p.next()
		}
		if p.atBlockEnd(endUnit) {
			p.errorf("DO loop terminated by end of unit; missing label %s", endLabel)
			return s
		}
		inner := p.statement()
		if inner == nil {
			continue
		}
		s.Body = append(s.Body, inner)
		if inner.Label() == endLabel {
			return s
		}
	}
}

// signedConstant parses a literal with an optional sign (DATA values).
func (p *parser) signedConstant() ast.Expr {
	pos := p.pos()
	neg := false
	if p.at(lexer.MINUS) {
		neg = true
		p.next()
	} else if p.at(lexer.PLUS) {
		p.next()
	}
	e := p.primary()
	if neg {
		return &ast.Unary{Position: pos, Op: ast.OpNeg, X: e}
	}
	return e
}

// ---------------------------------------------------------------------
// Expressions

func (p *parser) expr() ast.Expr { return p.nested(p.orExpr) }

func (p *parser) orExpr() ast.Expr {
	x := p.andExpr()
	for p.at(lexer.OR) {
		pos := p.pos()
		p.next()
		x = p.newBinary(pos, ast.OpOr, x, p.andExpr())
	}
	return x
}

func (p *parser) andExpr() ast.Expr {
	x := p.notExpr()
	for p.at(lexer.AND) {
		pos := p.pos()
		p.next()
		x = p.newBinary(pos, ast.OpAnd, x, p.notExpr())
	}
	return x
}

func (p *parser) notExpr() ast.Expr {
	if p.at(lexer.NOT) {
		pos := p.pos()
		p.next()
		return &ast.Unary{Position: pos, Op: ast.OpNot, X: p.nested(p.notExpr)}
	}
	return p.relExpr()
}

var relOps = map[lexer.Kind]ast.Op{
	lexer.EQ: ast.OpEq, lexer.NE: ast.OpNe,
	lexer.LT: ast.OpLt, lexer.LE: ast.OpLe,
	lexer.GT: ast.OpGt, lexer.GE: ast.OpGe,
}

func (p *parser) relExpr() ast.Expr {
	x := p.arith()
	if op, ok := relOps[p.tok().Kind]; ok {
		pos := p.pos()
		p.next()
		return p.newBinary(pos, op, x, p.arith())
	}
	return x
}

func (p *parser) arith() ast.Expr {
	var x ast.Expr
	// Optional leading sign.
	switch p.tok().Kind {
	case lexer.MINUS:
		pos := p.pos()
		p.next()
		x = &ast.Unary{Position: pos, Op: ast.OpNeg, X: p.term()}
	case lexer.PLUS:
		p.next()
		x = p.term()
	default:
		x = p.term()
	}
	for p.at(lexer.PLUS) || p.at(lexer.MINUS) {
		pos := p.pos()
		op := ast.OpAdd
		if p.at(lexer.MINUS) {
			op = ast.OpSub
		}
		p.next()
		x = p.newBinary(pos, op, x, p.term())
	}
	return x
}

func (p *parser) term() ast.Expr {
	x := p.power()
	for p.at(lexer.STAR) || p.at(lexer.SLASH) {
		pos := p.pos()
		op := ast.OpMul
		if p.at(lexer.SLASH) {
			op = ast.OpDiv
		}
		p.next()
		x = p.newBinary(pos, op, x, p.power())
	}
	return x
}

func (p *parser) power() ast.Expr {
	x := p.primary()
	if p.at(lexer.POW) {
		pos := p.pos()
		p.next()
		// ** is right-associative; the exponent may carry its own sign.
		var y ast.Expr
		if p.at(lexer.MINUS) {
			mpos := p.pos()
			p.next()
			y = &ast.Unary{Position: mpos, Op: ast.OpNeg, X: p.nested(p.power)}
		} else {
			y = p.nested(p.power)
		}
		return p.newBinary(pos, ast.OpPow, x, y)
	}
	return x
}

func (p *parser) primary() ast.Expr {
	pos := p.pos()
	switch p.tok().Kind {
	case lexer.INTLIT, lexer.LABEL:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.diags.Errorf(pos, "integer literal %q out of range", t.Text)
		}
		return p.newIntLit(pos, v)
	case lexer.REALLIT:
		t := p.next()
		text := strings.ReplaceAll(strings.ReplaceAll(t.Text, "D", "E"), "d", "e")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.diags.Errorf(pos, "malformed real literal %q", t.Text)
		}
		return &ast.RealLit{Position: pos, Value: v, Text: t.Text}
	case lexer.LOGLIT:
		t := p.next()
		return &ast.LogLit{Position: pos, Value: t.Text == ".TRUE."}
	case lexer.STRING:
		t := p.next()
		return &ast.StrLit{Position: pos, Value: t.Text}
	case lexer.IDENT:
		t := p.next()
		if !p.at(lexer.LPAREN) {
			return p.newIdent(pos, t.Text)
		}
		p.next()
		a := &ast.Apply{Position: pos, Name: t.Text}
		if !p.at(lexer.RPAREN) {
			for {
				a.Args = p.argAppend(a.Args, p.expr())
				if !p.at(lexer.COMMA) {
					break
				}
				p.next()
			}
		}
		p.expect(lexer.RPAREN)
		return a
	case lexer.LPAREN:
		p.next()
		e := p.expr()
		p.expect(lexer.RPAREN)
		return e
	}
	p.errorf("expected an expression, found %s", p.tok())
	p.next()
	return p.newIntLit(pos, 0)
}
