package parser

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
)

// FuzzParse: the parser must terminate without panicking on arbitrary
// input, respecting the nesting and size guards. Seeded from the core
// analysis corpus (internal/core/testdata/*.f).
//
// Run the corpus with `go test`; explore with `go test -fuzz FuzzParse`.
func FuzzParse(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "core", "testdata", "*.f"))
	if len(seeds) == 0 {
		f.Fatal("no seed corpus under ../core/testdata")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		var diags source.ErrorList
		file := ParseSource("fuzz.f", src, &diags)
		if file == nil {
			t.Fatal("ParseSource returned nil file")
		}
	})
}

// FuzzFrontEnd: lexing, parsing, and semantic analysis must never panic
// on arbitrary input, and for accepted programs the writer's output must
// reparse cleanly (print/parse round-trip stability).
//
// Run the corpus with `go test`; explore with `go test -fuzz FuzzFrontEnd`.
func FuzzFrontEnd(f *testing.F) {
	seeds := []string{
		"PROGRAM P\nI = 1\nEND\n",
		"PROGRAM P\nDO 10 I = 1, 10\n10 CONTINUE\nEND\n",
		"PROGRAM P\nIF (I) 1, 2, 3\n1 CONTINUE\n2 CONTINUE\n3 CONTINUE\nEND\n",
		"PROGRAM P\nGOTO (1, 2), I\n1 CONTINUE\n2 CONTINUE\nEND\n",
		"SUBROUTINE S(A, B)\nCOMMON /C/ X\nA = B ** 2\nEND\n",
		"INTEGER FUNCTION F(N)\nF = MOD(N, 2)\nEND\n",
		"PROGRAM P\nC = 1.5\nC comment\nPRINT *, C\nEND\n",
		"PROGRAM P\nPARAMETER (N = 10)\nINTEGER A(N)\nDATA K / -3 /\nEND\n",
		"PROGRAM P\nX = 1.E5 + .5 - 4.5D0\nEND\n",
		"PROGRAM P\nL = 1.EQ.2 .AND. .NOT. .TRUE.\nEND\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var diags source.ErrorList
		file := ParseSource("fuzz.f", src, &diags)
		prog := sem.Analyze(file, &diags)
		_ = prog
		if diags.HasErrors() {
			return // rejected: fine
		}
		// Accepted: the writer must produce re-parseable text.
		printed := ast.FileString(file)
		var diags2 source.ErrorList
		ParseSource("fuzz2.f", printed, &diags2)
		if diags2.HasErrors() {
			t.Fatalf("accepted program's printed form does not reparse:\n--- original ---\n%s\n--- printed ---\n%s\n--- errors ---\n%s",
				src, printed, diags2.Error())
		}
	})
}
