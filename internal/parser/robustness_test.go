package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sem"
	"repro/internal/source"
)

// TestNoPanicsOnMalformedInput: the front end must degrade to
// diagnostics, never panic, on arbitrary garbage.
func TestNoPanicsOnMalformedInput(t *testing.T) {
	cases := []string{
		"",
		"\n\n\n",
		"PROGRAM",
		"PROGRAM P",
		"END",
		"ENDIF\nENDDO\nELSE",
		"PROGRAM P\nIF (((\nEND",
		"PROGRAM P\nDO\nEND",
		"PROGRAM P\nDO 10 I\nEND",
		"PROGRAM P\nCALL\nEND",
		"PROGRAM P\nX = = =\nEND",
		"PROGRAM P\nGOTO\nEND",
		"PROGRAM P\nREAD\nEND",
		"PROGRAM P\nPRINT\nEND",
		"PROGRAM P\nCOMMON //\nEND",
		"PROGRAM P\nPARAMETER (\nEND",
		"PROGRAM P\nDATA X /\nEND",
		"SUBROUTINE (((\nEND",
		"INTEGER FUNCTION\nEND",
		"PROGRAM P\nX = 'unterminated\nEND",
		"PROGRAM P\nX = 1 @@@ 2\nEND",
		"PROGRAM P\nX = 9999999999999999999999999\nEND",
		"PROGRAM P\nIF (X) THEN\nELSEIF\nENDIF\nEND",
		"10 20 30",
		strings.Repeat("(", 500),
		"PROGRAM P\n" + strings.Repeat("IF (X .GT. 0) THEN\n", 100) + "END",
	}
	for i, src := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("case %d panicked: %v\nsource: %q", i, r, src)
				}
			}()
			var diags source.ErrorList
			f := ParseSource("bad.f", src, &diags)
			// Semantic analysis must survive whatever the parser made.
			sem.Analyze(f, &diags)
		}()
	}
}

// TestNoPanicsOnMutatedPrograms: take a valid program and corrupt it at
// random positions.
func TestNoPanicsOnMutatedPrograms(t *testing.T) {
	base := `PROGRAM MAIN
INTEGER I, A(10)
COMMON /C/ N
DO 10 I = 1, 10
  A(I) = MOD(I, 3)
  IF (A(I) .EQ. 0) GOTO 10
  CALL S(A(I), N)
10 CONTINUE
END
SUBROUTINE S(X, Y)
INTEGER X, Y
Y = X**2
END
`
	r := rand.New(rand.NewSource(99))
	glyphs := []byte("()=+-*/,.'X0 \n")
	for trial := 0; trial < 200; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(5); k++ {
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[pos] = glyphs[r.Intn(len(glyphs))]
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{glyphs[r.Intn(len(glyphs))]}, b[pos:]...)...)
			}
		}
		src := string(b)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("trial %d panicked: %v\nsource:\n%s", trial, rec, src)
				}
			}()
			var diags source.ErrorList
			f := ParseSource("mut.f", src, &diags)
			sem.Analyze(f, &diags)
		}()
	}
}
