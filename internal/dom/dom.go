// Package dom computes dominator trees and dominance frontiers for CFGs
// using the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
// Dominance Algorithm"). The dominance frontier drives SSA phi
// placement (Cytron et al.).
package dom

import (
	"repro/internal/cfg"
)

// Tree holds dominance information for one CFG.
type Tree struct {
	Graph *cfg.Graph
	// Idom maps a block ID to its immediate dominator (nil for entry and
	// for blocks unreachable from entry).
	Idom []*cfg.Block
	// Children is the dominator tree: Children[b] lists blocks whose
	// immediate dominator is b.
	Children [][]*cfg.Block
	// Frontier[b] is the dominance frontier of block b.
	Frontier [][]*cfg.Block
	// RPO lists reachable blocks in reverse postorder.
	RPO []*cfg.Block
	// rpoNum[b.ID] is b's index in RPO (-1 if unreachable).
	rpoNum []int
}

// Compute builds dominance information for g.
func Compute(g *cfg.Graph) *Tree {
	t := &Tree{
		Graph:    g,
		Idom:     make([]*cfg.Block, len(g.Blocks)),
		Children: make([][]*cfg.Block, len(g.Blocks)),
		Frontier: make([][]*cfg.Block, len(g.Blocks)),
		rpoNum:   make([]int, len(g.Blocks)),
	}
	for i := range t.rpoNum {
		t.rpoNum[i] = -1
	}
	t.computeRPO()
	t.computeIdom()
	t.computeFrontiers()
	return t
}

func (t *Tree) computeRPO() {
	g := t.Graph
	seen := make([]bool, len(g.Blocks))
	var post []*cfg.Block
	var dfs func(*cfg.Block)
	dfs = func(b *cfg.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i := len(post) - 1; i >= 0; i-- {
		t.rpoNum[post[i].ID] = len(t.RPO)
		t.RPO = append(t.RPO, post[i])
	}
}

func (t *Tree) computeIdom() {
	entry := t.Graph.Entry
	t.Idom[entry.ID] = entry // temporary self-link simplifies intersect
	for changed := true; changed; {
		changed = false
		for _, b := range t.RPO[1:] { // skip entry
			// Pick the first processed predecessor.
			var newIdom *cfg.Block
			for _, p := range b.Preds {
				if t.rpoNum[p.ID] < 0 || t.Idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.Idom[b.ID] != newIdom {
				t.Idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	t.Idom[entry.ID] = nil // entry has no immediate dominator
	// Children lists are carved out of one flat backing array: count
	// per-parent sizes, hand each parent a zero-length window of its
	// final capacity, then append (which now never reallocates).
	counts := make([]int, len(t.Idom))
	n := 0
	for _, b := range t.RPO {
		if id := t.Idom[b.ID]; id != nil {
			counts[id.ID]++
			n++
		}
	}
	backing := make([]*cfg.Block, 0, n)
	for _, b := range t.RPO {
		if c := counts[b.ID]; c > 0 {
			backing = backing[:len(backing)+c]
			t.Children[b.ID] = backing[len(backing)-c : len(backing)-c : len(backing)]
		}
	}
	for _, b := range t.RPO {
		if id := t.Idom[b.ID]; id != nil {
			t.Children[id.ID] = append(t.Children[id.ID], b)
		}
	}
}

func (t *Tree) intersect(a, b *cfg.Block) *cfg.Block {
	for a != b {
		for t.rpoNum[a.ID] > t.rpoNum[b.ID] {
			a = t.Idom[a.ID]
		}
		for t.rpoNum[b.ID] > t.rpoNum[a.ID] {
			b = t.Idom[b.ID]
		}
	}
	return a
}

func (t *Tree) computeFrontiers() {
	for _, b := range t.RPO {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if t.rpoNum[p.ID] < 0 {
				continue // unreachable predecessor
			}
			runner := p
			for runner != nil && runner != t.Idom[b.ID] {
				if !containsBlock(t.Frontier[runner.ID], b) {
					t.Frontier[runner.ID] = append(t.Frontier[runner.ID], b)
				}
				runner = t.Idom[runner.ID]
			}
		}
	}
}

func containsBlock(s []*cfg.Block, b *cfg.Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// Dominates reports whether a dominates b (reflexively).
func (t *Tree) Dominates(a, b *cfg.Block) bool {
	if t.rpoNum[a.ID] < 0 || t.rpoNum[b.ID] < 0 {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		b = t.Idom[b.ID]
	}
	return false
}

// Reachable reports whether b is reachable from the entry block.
func (t *Tree) Reachable(b *cfg.Block) bool { return t.rpoNum[b.ID] >= 0 }
