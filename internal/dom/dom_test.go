package dom

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func buildGraph(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	return cfg.Build(prog, prog.Procs[name])
}

func TestDiamond(t *testing.T) {
	g := buildGraph(t, `PROGRAM P
INTEGER I, J
READ *, I
IF (I .GT. 0) THEN
  J = 1
ELSE
  J = 2
ENDIF
PRINT *, J
END
`, "P")
	tr := Compute(g)
	entry := g.Entry
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	join := thenB.Succs[0]

	if tr.Idom[thenB.ID] != entry || tr.Idom[elseB.ID] != entry {
		t.Errorf("branch arms should be idom'd by entry")
	}
	if tr.Idom[join.ID] != entry {
		t.Errorf("join idom = %v, want entry", tr.Idom[join.ID])
	}
	if !tr.Dominates(entry, join) || tr.Dominates(thenB, join) {
		t.Error("Dominates() wrong on diamond")
	}
	// Frontier of each arm is the join.
	if len(tr.Frontier[thenB.ID]) != 1 || tr.Frontier[thenB.ID][0] != join {
		t.Errorf("DF(then) = %v", tr.Frontier[thenB.ID])
	}
	if len(tr.Frontier[join.ID]) != 0 {
		t.Errorf("DF(join) = %v, want empty", tr.Frontier[join.ID])
	}
}

func TestLoopFrontier(t *testing.T) {
	g := buildGraph(t, `PROGRAM P
INTEGER I, S
S = 0
DO I = 1, 10
  S = S + I
ENDDO
PRINT *, S
END
`, "P")
	tr := Compute(g)
	// Find the loop head: the conditional block.
	var head, body *cfg.Block
	for _, b := range g.Blocks {
		if b.Term.Kind == cfg.TermCond {
			head = b
			body = b.Succs[0]
		}
	}
	if head == nil {
		t.Fatalf("no head\n%s", g)
	}
	// The body's dominance frontier contains the head (back edge).
	foundHead := false
	for _, f := range tr.Frontier[body.ID] {
		if f == head {
			foundHead = true
		}
	}
	if !foundHead {
		t.Errorf("DF(body) = %v should contain head b%d\n%s", tr.Frontier[body.ID], head.ID, g)
	}
	// Head dominates body.
	if !tr.Dominates(head, body) {
		t.Error("head should dominate body")
	}
	// The head's own frontier contains the head (it is in its own loop)?
	// Head is a loop header with a self-frontier via the back edge.
	inOwn := false
	for _, f := range tr.Frontier[head.ID] {
		if f == head {
			inOwn = true
		}
	}
	if !inOwn {
		t.Errorf("loop header should be in its own DF, got %v", tr.Frontier[head.ID])
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	g := buildGraph(t, `PROGRAM P
INTEGER I
I = 0
10 I = I + 1
IF (I .LT. 3) GOTO 10
END
`, "P")
	tr := Compute(g)
	if len(tr.RPO) == 0 || tr.RPO[0] != g.Entry {
		t.Fatal("RPO must start at entry")
	}
	if tr.Idom[g.Entry.ID] != nil {
		t.Error("entry must have no idom")
	}
	// Every non-entry reachable block has an idom that dominates it.
	for _, b := range tr.RPO[1:] {
		id := tr.Idom[b.ID]
		if id == nil {
			t.Errorf("b%d has no idom", b.ID)
			continue
		}
		if !tr.Dominates(id, b) {
			t.Errorf("idom(b%d)=b%d does not dominate it", b.ID, id.ID)
		}
	}
}

// TestDominanceInvariants checks, over several control-flow shapes:
// the entry dominates every reachable block; no block is its own
// immediate dominator; and idom(b) strictly dominates b (transitivity
// through the idom chain is what Dominates walks).
func TestDominanceInvariants(t *testing.T) {
	srcs := []string{
		`PROGRAM P
INTEGER I, J, K
READ *, I
IF (I .GT. 0) THEN
  IF (I .GT. 10) THEN
    J = 1
  ELSE
    J = 2
  ENDIF
ELSE
  DO K = 1, 5
    J = J + K
  ENDDO
ENDIF
PRINT *, J
END
`,
		`PROGRAM P
INTEGER I, N
READ *, N
I = 0
10 CONTINUE
I = I + 1
IF (I .LT. N) GOTO 10
IF (I .GT. 100) GOTO 20
PRINT *, I
20 CONTINUE
END
`,
		`PROGRAM P
INTEGER I, J
DO I = 1, 10
  DO J = 1, 10
    IF (J .EQ. 5) GOTO 30
  ENDDO
30 CONTINUE
ENDDO
END
`,
	}
	for si, src := range srcs {
		g := buildGraph(t, src, "P")
		tr := Compute(g)
		for _, b := range tr.RPO {
			if b != g.Entry && !tr.Dominates(g.Entry, b) {
				t.Errorf("src %d: entry does not dominate b%d", si, b.ID)
			}
		}
		for _, b := range tr.RPO[1:] {
			id := tr.Idom[b.ID]
			if id == b {
				t.Errorf("src %d: b%d is its own idom", si, b.ID)
			}
			if id != nil && !tr.Dominates(id, b) {
				t.Errorf("src %d: idom(b%d) does not dominate it", si, b.ID)
			}
		}
	}
}
