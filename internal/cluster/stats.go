package cluster

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Stats is the coordinator's /statsz document: the fleet view (one
// BackendStats per backend, remote snapshots included) plus the
// coordinator's own routing counters.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Backends        []BackendStats `json:"backends"`
	HealthyBackends int            `json:"healthy_backends"`

	Requests      int64 `json:"requests"`
	OK            int64 `json:"ok"`
	InputErrors   int64 `json:"input_errors"`
	BadRequests   int64 `json:"bad_requests"`
	DrainRejects  int64 `json:"drain_rejects"`
	Unavailable   int64 `json:"unavailable"`
	DeadlineFails int64 `json:"deadline_fails"`
	Abandoned     int64 `json:"abandoned"`

	JobSubmits    int64 `json:"job_submits"`
	JobLookups    int64 `json:"job_lookups"`
	JobBroadcasts int64 `json:"job_broadcasts"`

	SessionOpens      int64 `json:"session_opens"`
	SessionLookups    int64 `json:"session_lookups"`
	SessionBroadcasts int64 `json:"session_broadcasts"`

	Reroutes      int64 `json:"reroutes"`
	HedgesStarted int64 `json:"hedges_started"`
	HedgesWon     int64 `json:"hedges_won"`
	HedgesLost    int64 `json:"hedges_lost"`
	BreakerSkips  int64 `json:"breaker_skips"`
	SlotSkips     int64 `json:"slot_skips"`

	// HedgeDelayMs is the delay the next request's hedge timer would use
	// (adaptive once the latency tracker warms up).
	HedgeDelayMs float64 `json:"hedge_delay_ms"`
}

// BackendStats is one backend's row in the fleet view.
type BackendStats struct {
	URL               string                `json:"url"`
	Healthy           bool                  `json:"healthy"`
	HealthTransitions int64                 `json:"health_transitions"`
	Requests          int64                 `json:"requests"`
	Failures          int64                 `json:"failures"`
	InFlight          int                   `json:"in_flight"`
	Breaker           serve.BreakerSnapshot `json:"breaker"`
	Remote            *serve.StatsSnapshot  `json:"remote,omitempty"`
}

// Stats snapshots the coordinator's counters and fleet view.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		UptimeSeconds:     time.Since(c.started).Seconds(),
		Draining:          c.draining.Load(),
		Requests:          c.stats.requests.Load(),
		OK:                c.stats.ok.Load(),
		InputErrors:       c.stats.inputErrors.Load(),
		BadRequests:       c.stats.badRequests.Load(),
		DrainRejects:      c.stats.drainRejects.Load(),
		Unavailable:       c.stats.unavailable.Load(),
		DeadlineFails:     c.stats.deadlineFails.Load(),
		Abandoned:         c.stats.abandoned.Load(),
		JobSubmits:        c.stats.jobSubmits.Load(),
		JobLookups:        c.stats.jobLookups.Load(),
		JobBroadcasts:     c.stats.jobBroadcasts.Load(),
		SessionOpens:      c.stats.sessionOpens.Load(),
		SessionLookups:    c.stats.sessionLookups.Load(),
		SessionBroadcasts: c.stats.sessionBroadcasts.Load(),
		Reroutes:          c.stats.reroutes.Load(),
		HedgesStarted:     c.stats.hedgesStarted.Load(),
		HedgesWon:         c.stats.hedgesWon.Load(),
		HedgesLost:        c.stats.hedgesLost.Load(),
		BreakerSkips:      c.stats.breakerSkips.Load(),
		SlotSkips:         c.stats.slotSkips.Load(),
		HedgeDelayMs:      float64(c.hedgeDelay()) / float64(time.Millisecond),
	}
	for _, b := range c.backends {
		healthy := b.healthy.Load()
		if healthy {
			s.HealthyBackends++
		}
		s.Backends = append(s.Backends, BackendStats{
			URL:               b.url,
			Healthy:           healthy,
			HealthTransitions: b.transitions.Load(),
			Requests:          b.requests.Load(),
			Failures:          b.failures.Load(),
			InFlight:          len(b.slots),
			Breaker:           b.br.Snapshot(),
			Remote:            b.remote.Load(),
		})
	}
	return s
}

func (c *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	body, err := json.MarshalIndent(c.Stats(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(append(body, '\n'))
}

// handleHealthz is liveness: the coordinator process is up.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: not draining, and at least one backend is
// worth routing to. During drain it answers 503 while the listener
// still accepts, so upstream balancers route away before connections
// close.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	for _, b := range c.backends {
		if b.healthy.Load() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte("no healthy backends\n"))
}
