package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"repro/internal/jobs"
	"repro/internal/serve"
	"repro/ipcp"
)

// This file gives sessions affinity across the fleet. A session is
// memory resident on exactly one backend — the parsed world, jump
// functions, and value-context store it reuses across edits live in
// that process and nowhere else — so unlike /v1/analyze there is no
// failover for an existing session: every edit and result fetch must
// reach the owner.
//
//	POST   /v1/sessions                routed like an analysis — by the
//	                                   program's fingerprint through
//	                                   rendezvous hashing, with failover
//	                                   while nothing is resident yet —
//	                                   and the winning backend recorded
//	                                   as the session's owner.
//	POST   /v1/sessions/{id}/edit      owner map first, broadcast on a
//	GET    /v1/sessions/{id}/result    miss; relayed verbatim.
//	DELETE /v1/sessions/{id}           same owner/broadcast resolution.
//
// Session IDs carry a per-boot random instance tag (see
// internal/serve), so an ID names at most one live session fleet-wide
// and the broadcast fallback cannot relay the wrong backend's session.
// The owner map is memory-only, exactly like the job owner map: after
// a coordinator restart the first lookup broadcasts and re-learns.
//
// Failure semantics are deliberately asymmetric:
//
//   - The owner answers 404: the session is authoritatively gone
//     (evicted, expired, or the backend rebooted and lost its memory).
//     The coordinator answers 404; the client's recovery is to re-open,
//     which routes to a live backend and rebuilds from the full text.
//   - The owner is unreachable and no other backend claims the ID: the
//     coordinator answers a retryable 503 — it cannot distinguish a
//     network blip (the session may still be resident) from a crash
//     (it is not), and a premature 404 would make the client discard a
//     session that may come back.

// handleSessions serves POST /v1/sessions: route the open by the
// program's fingerprint so a re-opened session lands on the backend
// whose memo and result caches already know the program.
func (c *Coordinator) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		c.writeError(w, http.StatusMethodNotAllowed, "method", "POST required", 0)
		return
	}
	c.stats.sessionOpens.Add(1)
	if c.draining.Load() {
		c.stats.drainRejects.Add(1)
		c.writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining", c.cfg.DrainTimeout)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), 0)
		return
	}
	var req serve.OpenSessionRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error(), 0)
		return
	}
	cfg, err := req.Config.ToIPCP()
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	if req.Filename == "" {
		req.Filename = "request.f" // the backends' default, so keys agree
	}
	key := ipcp.Fingerprint(req.Filename, req.Source, cfg)

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	out := c.proxy(ctx, w, rank(c.backends, key), "/v1/sessions", raw)
	if out != nil && out.code == http.StatusOK {
		var resp serve.OpenSessionResponse
		if json.Unmarshal(out.body, &resp) == nil && resp.ID != "" {
			c.recordOwners([]jobs.Ack{{ID: resp.ID}}, out.b)
		}
	}
}

// handleSessionByID resolves /v1/sessions/{id}[/edit|/result] to the
// owning backend and relays its answer verbatim.
func (c *Coordinator) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	switch {
	case id == "":
		c.writeError(w, http.StatusNotFound, "not-found", "missing session id", 0)
		return
	case sub == "" && r.Method == http.MethodDelete:
	case sub == "edit" && r.Method == http.MethodPost:
	case sub == "result" && r.Method == http.MethodGet:
	default:
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", "GET, POST, DELETE")
		c.writeError(w, http.StatusMethodNotAllowed, "method", "POST /edit, GET /result, or DELETE required", 0)
		return
	}
	c.stats.sessionLookups.Add(1)
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			c.stats.badRequests.Add(1)
			c.writeError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), 0)
			return
		}
	}
	path := "/v1/sessions/" + id
	if sub != "" {
		path += "/" + sub
	}

	ownerDown := false
	tried := make(map[*backend]bool)
	if b := c.owner(id); b != nil {
		tried[b] = true
		code, hdr, respBody, err := c.forwardSession(r.Context(), b, r.Method, path, body)
		switch {
		case err == nil && code != http.StatusNotFound:
			writeProxied(w, code, hdr, respBody)
			return
		case err == nil:
			// The owner is reachable and does not have the session: it is
			// authoritatively gone (evicted, expired, or lost to a reboot).
			// No other backend can have it — IDs are fleet-unique — so
			// answer 404 now; the client re-opens.
			c.writeError(w, http.StatusNotFound, "not-found", "unknown session "+id, 0)
			return
		default:
			ownerDown = true
		}
	}
	c.stats.sessionBroadcasts.Add(1)
	reachable := 0
	for _, b := range c.backends {
		if tried[b] {
			continue
		}
		code, hdr, respBody, err := c.forwardSession(r.Context(), b, r.Method, path, body)
		if err != nil {
			continue
		}
		reachable++
		if code == http.StatusNotFound {
			continue
		}
		c.recordOwners([]jobs.Ack{{ID: id}}, b)
		writeProxied(w, code, hdr, respBody)
		return
	}
	if ownerDown {
		// The one backend that may hold the session did not answer, and
		// nobody else claims it. Retryable: the owner may be back (with
		// the session intact) in a moment, or come back empty — in which
		// case the retry gets the authoritative 404 above.
		c.writeUnavailable(w, "session owner unreachable for "+id, 0, "")
		return
	}
	if reachable == 0 {
		c.writeUnavailable(w, "no backend reachable to resolve session "+id, 0, "")
		return
	}
	c.writeError(w, http.StatusNotFound, "not-found", "unknown session "+id, 0)
}

// forwardSession sends one session-API request to one backend. Like
// job lookups these sit outside the failover ladder — there is nothing
// to fail over to, session state lives on exactly one backend — and
// carry no breaker verdict. Unlike job lookups an edit runs a real
// (incremental) analysis, so the forward gets the full request budget
// rather than the short lookup timeout.
func (c *Coordinator) forwardSession(ctx context.Context, b *backend, method, path string, body []byte) (int, http.Header, []byte, error) {
	fctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(fctx, method, b.url+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}
