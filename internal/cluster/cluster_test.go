package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/ipcp"
)

const clusterSrc = `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL WORK(K, 7)
END
SUBROUTINE WORK(N, M)
INTEGER N, M
PRINT *, N + M
END
`

// fakeBackend is a scripted stand-in for ipcp-serve: /readyz and
// /statsz always answer, /v1/analyze runs the test's script.
type fakeBackend struct {
	srv     *httptest.Server
	hits    atomic.Int64
	analyze func(w http.ResponseWriter, r *http.Request)
}

func newFakeBackend(t *testing.T, analyze func(w http.ResponseWriter, r *http.Request)) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{analyze: analyze}
	fb.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/statsz":
			fmt.Fprint(w, "{}\n")
		case "/v1/analyze":
			// Drain the body like a real backend decoding it: until the
			// request body is consumed, the net/http server cannot detect a
			// vanished client, so stalling scripts would never observe
			// cancellation.
			io.Copy(io.Discard, r.Body)
			fb.hits.Add(1)
			fb.analyze(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(fb.srv.Close)
	return fb
}

func answer200(body string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	}
}

func answer503(class string, retryAfter int) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		body, _ := json.Marshal(serve.ErrorResponse{Error: serve.ErrorBody{Class: class, Message: "scripted"}})
		w.Write(body)
	}
}

func newTestCoordinator(t *testing.T, urls []string, mod func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Backends:       urls,
		HealthInterval: time.Hour, // one startup probe, then quiet
		RequestTimeout: 10 * time.Second,
		HedgeAfter:     time.Hour, // tests opt into hedging explicitly
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = c.Shutdown(context.Background()) })
	c.sleep = func(ctx context.Context, d time.Duration) {} // instant failover
	return c
}

func analyzeBody(t *testing.T, filename, src string) []byte {
	t.Helper()
	body, err := json.Marshal(serve.AnalyzeRequest{Filename: filename, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// requestKey mirrors handleAnalyze's key derivation so tests can
// predict the candidate order.
func requestKey(t *testing.T, filename, src string) string {
	t.Helper()
	cfg, err := (serve.RequestConfig{}).ToIPCP()
	if err != nil {
		t.Fatal(err)
	}
	return ipcp.Fingerprint(filename, src, cfg)
}

func post(t *testing.T, c *Coordinator, body []byte) *http.Response {
	t.Helper()
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body)))
	return rec.Result()
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRankRemapsOnlyLostKeys is the rendezvous property the memo
// affinity depends on: when a backend goes unhealthy, keys that
// preferred other backends keep their first choice.
func TestRankRemapsOnlyLostKeys(t *testing.T) {
	var fleet []*backend
	for i := 0; i < 5; i++ {
		b := &backend{url: fmt.Sprintf("http://10.0.0.%d:8077", i)}
		b.healthy.Store(true)
		fleet = append(fleet, b)
	}
	firstChoice := make(map[string]*backend)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		firstChoice[key] = rank(fleet, key)[0]
	}
	// Sanity: the load spread over 5 backends, no backend starved.
	perBackend := make(map[*backend]int)
	for _, b := range firstChoice {
		perBackend[b]++
	}
	if len(perBackend) != len(fleet) {
		t.Fatalf("only %d/%d backends got keys", len(perBackend), len(fleet))
	}

	down := fleet[2]
	down.healthy.Store(false)
	for key, want := range firstChoice {
		got := rank(fleet, key)[0]
		if want != down && got != want {
			t.Fatalf("key %s remapped from %s to %s though its backend stayed healthy", key, want.url, got.url)
		}
		if want == down && got == down {
			t.Fatalf("key %s still routes to the unhealthy backend", key)
		}
	}
	// Recovery restores the original mapping exactly.
	down.healthy.Store(true)
	for key, want := range firstChoice {
		if got := rank(fleet, key)[0]; got != want {
			t.Fatalf("key %s did not return to %s after recovery", key, want.url)
		}
	}
}

// TestProxyRelaysVerbatim: the coordinator must not reformat,
// re-marshal, or otherwise touch a backend's 200.
func TestProxyRelaysVerbatim(t *testing.T) {
	const quirky = "{\n  \"result\": {\"weird\":   true}\n}\n"
	fb := newFakeBackend(t, answer200(quirky))
	c := newTestCoordinator(t, []string{fb.srv.URL}, nil)

	resp := post(t, c, analyzeBody(t, "p.f", clusterSrc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := readBody(t, resp); string(got) != quirky {
		t.Fatalf("body altered in transit:\n got %q\nwant %q", got, quirky)
	}
	if got := c.Stats().OK; got != 1 {
		t.Fatalf("stats.OK = %d, want 1", got)
	}
}

// TestFailoverReroutesOn503: the first-choice backend sheds; the
// request lands on the second choice and the reroute is counted.
func TestFailoverReroutesOn503(t *testing.T) {
	shedder := newFakeBackend(t, answer503("shed", 1))
	healthy := newFakeBackend(t, answer200(`{"ok":true}`))
	key := requestKey(t, "p.f", clusterSrc)

	// Make the shedder the key's first choice: scores are per-URL, so
	// swap the roles (not the list order) when the draw went the other
	// way.
	if rendezvousScore(key, healthy.srv.URL) > rendezvousScore(key, shedder.srv.URL) {
		shedder, healthy = healthy, shedder
		shedder.analyze = answer503("shed", 1)
		healthy.analyze = answer200(`{"ok":true}`)
	}
	c := newTestCoordinator(t, []string{shedder.srv.URL, healthy.srv.URL}, nil)

	resp := post(t, c, analyzeBody(t, "p.f", clusterSrc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover", resp.StatusCode)
	}
	if got := string(readBody(t, resp)); got != `{"ok":true}` {
		t.Fatalf("body = %q", got)
	}
	s := c.Stats()
	if s.Reroutes == 0 {
		t.Fatal("expected a counted reroute")
	}
	if shedder.hits.Load() != 1 || healthy.hits.Load() != 1 {
		t.Fatalf("hits: shedder=%d healthy=%d, want 1 and 1", shedder.hits.Load(), healthy.hits.Load())
	}
}

// TestHedgeWinsOnSlowPrimary: a primary that stalls past HedgeAfter
// loses to the hedge on the next candidate, and the stalled attempt is
// canceled rather than awaited.
func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	stall := func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // until the coordinator cancels the attempt
	}
	a := newFakeBackend(t, stall)
	b := newFakeBackend(t, stall)
	key := requestKey(t, "p.f", clusterSrc)
	fast := b
	if rendezvousScore(key, a.srv.URL) > rendezvousScore(key, b.srv.URL) {
		fast = b
	} else {
		fast = a
	}
	fast.analyze = answer200(`{"fast":true}`)

	c := newTestCoordinator(t, []string{a.srv.URL, b.srv.URL}, func(cfg *Config) {
		cfg.HedgeAfter = 20 * time.Millisecond
	})
	start := time.Now()
	resp := post(t, c, analyzeBody(t, "p.f", clusterSrc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := string(readBody(t, resp)); got != `{"fast":true}` {
		t.Fatalf("body = %q", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge path took %v; the stalled primary was awaited", elapsed)
	}
	s := c.Stats()
	if s.HedgesStarted != 1 || s.HedgesWon != 1 {
		t.Fatalf("hedges started=%d won=%d, want 1 and 1", s.HedgesStarted, s.HedgesWon)
	}
}

// TestBreakerSkipsTrippedBackend: after the circuit opens, the next
// request skips the backend without an attempt (no hit), and the skip
// is counted.
func TestBreakerSkipsTrippedBackend(t *testing.T) {
	dead := newFakeBackend(t, answer503("exhausted:deadline", 1))
	alive := newFakeBackend(t, answer200(`{"ok":true}`))
	key := requestKey(t, "p.f", clusterSrc)
	if rendezvousScore(key, alive.srv.URL) > rendezvousScore(key, dead.srv.URL) {
		dead, alive = alive, dead
		dead.analyze = answer503("exhausted:deadline", 1)
		alive.analyze = answer200(`{"ok":true}`)
	}
	c := newTestCoordinator(t, []string{dead.srv.URL, alive.srv.URL}, func(cfg *Config) {
		cfg.BreakerThreshold = 1 // first failure trips
		cfg.BreakerCooldown = time.Hour
	})

	if resp := post(t, c, analyzeBody(t, "p.f", clusterSrc)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status = %d", resp.StatusCode)
	}
	deadHits := dead.hits.Load()
	if resp := post(t, c, analyzeBody(t, "p.f", clusterSrc)); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status = %d", resp.StatusCode)
	}
	if dead.hits.Load() != deadHits {
		t.Fatal("tripped backend was attempted again inside its cooldown")
	}
	if s := c.Stats(); s.BreakerSkips == 0 {
		t.Fatal("expected a counted breaker skip")
	}
}

// TestUnavailableWhenFleetIsDown: one backend, always shedding — the
// synthesized 503 carries the unavailable class and a Retry-After.
func TestUnavailableWhenFleetIsDown(t *testing.T) {
	fb := newFakeBackend(t, answer503("shed", 3))
	c := newTestCoordinator(t, []string{fb.srv.URL}, nil)

	resp := post(t, c, analyzeBody(t, "p.f", clusterSrc))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(readBody(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Class != "unavailable" {
		t.Fatalf("class = %q, want unavailable", er.Error.Class)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unavailable answer must carry Retry-After")
	}
}

// TestDrainRejectsNewWork: after BeginDrain the analyze path refuses
// with the draining class and /readyz flips, while /healthz stays 200.
func TestDrainRejectsNewWork(t *testing.T) {
	fb := newFakeBackend(t, answer200(`{"ok":true}`))
	c := newTestCoordinator(t, []string{fb.srv.URL}, nil)
	c.BeginDrain()

	resp := post(t, c, analyzeBody(t, "p.f", clusterSrc))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze during drain: status = %d", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(readBody(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Class != "draining" {
		t.Fatalf("class = %q, want draining", er.Error.Class)
	}
	for path, want := range map[string]int{"/readyz": 503, "/healthz": 200} {
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != want {
			t.Fatalf("%s during drain = %d, want %d", path, rec.Code, want)
		}
	}
	if fb.hits.Load() != 0 {
		t.Fatal("draining coordinator still proxied work")
	}
}

// TestBadRequestShortCircuits: malformed JSON never reaches a backend.
func TestBadRequestShortCircuits(t *testing.T) {
	fb := newFakeBackend(t, answer200(`{"ok":true}`))
	c := newTestCoordinator(t, []string{fb.srv.URL}, nil)

	resp := post(t, c, []byte(`{"filename": truncated`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if fb.hits.Load() != 0 {
		t.Fatal("malformed request was proxied")
	}
	if s := c.Stats(); s.BadRequests != 1 {
		t.Fatalf("stats.BadRequests = %d, want 1", s.BadRequests)
	}
}

// TestStatszFleetView: the coordinator's /statsz carries one row per
// backend with health and breaker state.
func TestStatszFleetView(t *testing.T) {
	a := newFakeBackend(t, answer200(`{"ok":true}`))
	b := newFakeBackend(t, answer200(`{"ok":true}`))
	c := newTestCoordinator(t, []string{a.srv.URL, b.srv.URL}, nil)

	// Let the startup probes land so the health view is real, not
	// optimistic default.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := c.Stats(); s.HealthyBackends == 2 && s.Backends[0].Remote != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statsz = %d", rec.Code)
	}
	var s Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Backends) != 2 {
		t.Fatalf("backends = %d, want 2", len(s.Backends))
	}
	if s.HealthyBackends != 2 {
		t.Fatalf("healthy = %d, want 2", s.HealthyBackends)
	}
	for _, row := range s.Backends {
		if row.Breaker.State != "closed" {
			t.Fatalf("backend %s breaker = %q, want closed", row.URL, row.Breaker.State)
		}
	}
}
