package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// healthLoop actively probes one backend until the coordinator shuts
// down: /readyz decides routing priority, /statsz (best-effort) feeds
// the coordinator's fleet view. The first probe runs immediately so a
// dead backend is deprioritized within one HealthTimeout of startup,
// not one HealthInterval.
func (c *Coordinator) healthLoop(b *backend) {
	defer c.healthWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		c.probe(b)
		select {
		case <-c.stopHealth:
			return
		case <-t.C:
		}
	}
}

func (c *Coordinator) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	b.setHealthy(c.get(ctx, b.url+"/readyz", nil) == http.StatusOK)
	// The stats pull is observability only; a failure keeps the last
	// snapshot (stale beats blank when a backend is mid-restart).
	var snap serve.StatsSnapshot
	if c.get(ctx, b.url+"/statsz", &snap) == http.StatusOK {
		b.remote.Store(&snap)
	}
}

// get issues a GET and returns the status code (0 on transport error),
// decoding the body into out when non-nil and the status is 200.
func (c *Coordinator) get(ctx context.Context, url string, out any) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if json.NewDecoder(resp.Body).Decode(out) != nil {
			return 0
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}
