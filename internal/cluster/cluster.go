// Package cluster is the fault-tolerant sharded coordinator: one
// process that fronts N ipcp-serve backends and keeps the fleet
// correct and available while individual backends die, hang, restart,
// or shed load.
//
// Correctness is the non-negotiable: the coordinator never rewrites a
// backend's answer. It decodes a request only far enough to compute
// its routing key, forwards the original body bytes verbatim, and
// relays the first authoritative response (200/400/422) untouched —
// so every 200 a client sees is byte-identical to what a single
// backend would have produced, no matter how many reroutes or hedges
// happened along the way. Analysis is a pure function of
// (source, config), which is what makes duplicate in-flight attempts
// (hedges, failovers) safe: at worst they waste work, never answers.
//
// The machinery, layered in request order:
//
//   - Affinity routing: the routing key is ipcp.Fingerprint — the same
//     content-addressed hashing the incremental-analysis memo cache
//     keys on — ranked by rendezvous (highest-random-weight) hashing,
//     so repeated and edited variants of a program land on the backend
//     whose memo cache is already warm, and backend loss remaps only
//     the keys that preferred the lost backend.
//   - Health checking: every backend's /readyz is probed continuously
//     and its /statsz folded into the coordinator's own /statsz;
//     unhealthy backends are deprioritized (never removed — an
//     answering "down" backend beats a synthesized 503).
//   - Per-backend circuit breakers (serve.Breaker): transport errors
//     and 503s trip a backend's circuit; an open circuit skips the
//     backend until a half-open probe proves it back.
//   - Bounded in-flight per backend: attempts take a slot or skip to
//     the next hash candidate, so one slow backend cannot absorb the
//     fleet's concurrency.
//   - Failover: a retryable failure (transport error, 429, 503)
//     reroutes to the next hash candidate after a capped, jittered
//     backoff that honors the backend's Retry-After hint.
//   - Hedging: when the primary attempt outlives a latency quantile of
//     recent successes, a second attempt goes to the next candidate;
//     the first authoritative answer wins and the loser is canceled.
//   - Graceful drain: /readyz flips, in-flight proxies finish, then
//     the listener closes.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/ipcp"
)

// Config tunes the coordinator. The zero value of each field selects
// the documented default; Backends is required.
type Config struct {
	// Backends lists the ipcp-serve base URLs (e.g.
	// "http://10.0.0.1:8077"). A bare host:port gets "http://"
	// prepended.
	Backends []string
	// HealthInterval is the /readyz + /statsz probe period per backend
	// (default 500ms); HealthTimeout bounds one probe (default
	// HealthInterval, capped at 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// RequestTimeout caps one client request's wall clock across every
	// failover and hedge (default 30s).
	RequestTimeout time.Duration
	// MaxAttempts caps distinct backend attempts per request, hedges
	// included (default len(Backends)+1: every backend once, plus one
	// hedge).
	MaxAttempts int
	// HedgeAfter, when positive, is a fixed delay before the hedge
	// attempt launches. Zero selects adaptive hedging: the
	// HedgeQuantile (default 0.95) of recent successful latencies, once
	// HedgeMinSamples (default 16) have been observed, 100ms before
	// that.
	HedgeAfter      time.Duration
	HedgeQuantile   float64
	HedgeMinSamples int
	// MaxInFlightPerBackend bounds concurrently proxied requests per
	// backend (default 32).
	MaxInFlightPerBackend int
	// RetryBaseDelay and RetryMaxDelay shape the capped, jittered
	// exponential backoff between failover attempts (defaults 5ms and
	// 250ms); a backend's Retry-After hint raises the wait up to
	// RetryHintCap (default 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	RetryHintCap   time.Duration
	// Per-backend circuit settings (defaults: 3 consecutive failures
	// trip, 2s cooldown, 1 probe closes).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerProbes    int
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB, matching the
	// backends).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
		if c.HealthTimeout > time.Second {
			c.HealthTimeout = time.Second
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = len(c.Backends) + 1
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 16
	}
	if c.MaxInFlightPerBackend <= 0 {
		c.MaxInFlightPerBackend = 32
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 250 * time.Millisecond
	}
	if c.RetryHintCap <= 0 {
		c.RetryHintCap = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Coordinator fronts a fleet of ipcp-serve backends.
type Coordinator struct {
	cfg      Config
	backends []*backend
	client   *http.Client
	lat      *latencyTracker
	draining atomic.Bool
	started  time.Time
	http     *http.Server

	stopHealth chan struct{}
	healthWG   sync.WaitGroup

	// owners remembers which backend acked each job ID so polls and
	// cancels go straight to the WAL that holds the job; misses (e.g.
	// after a coordinator restart — the map is memory-only by design,
	// the durable state lives in the backends' WALs) fall back to a
	// fleet-wide broadcast.
	ownerMu sync.Mutex
	owners  map[string]ownerRec

	// test seams
	sleep  func(ctx context.Context, d time.Duration)
	jitter func() float64

	stats coordStats
}

type coordStats struct {
	requests      atomic.Int64 // POST /v1/analyze received
	ok            atomic.Int64 // 200 relayed
	inputErrors   atomic.Int64 // 400/422 relayed from a backend
	badRequests   atomic.Int64 // coordinator-level 400/405
	drainRejects  atomic.Int64 // 503 while draining
	unavailable   atomic.Int64 // 503: no backend could answer
	deadlineFails atomic.Int64 // 503: request budget exhausted
	abandoned     atomic.Int64 // client gone mid-request
	reroutes      atomic.Int64 // failovers to another backend
	hedgesStarted atomic.Int64
	hedgesWon     atomic.Int64 // served response came from the hedge
	hedgesLost    atomic.Int64 // primary won while a hedge was in flight
	breakerSkips  atomic.Int64 // candidates skipped by an open circuit
	slotSkips     atomic.Int64 // candidates skipped with all slots busy

	jobSubmits    atomic.Int64 // POST /v1/jobs received
	jobLookups    atomic.Int64 // per-job GET/DELETE received
	jobBroadcasts atomic.Int64 // lookups that needed a fleet-wide search

	sessionOpens      atomic.Int64 // POST /v1/sessions received
	sessionLookups    atomic.Int64 // per-session edit/result/DELETE received
	sessionBroadcasts atomic.Int64 // lookups that needed a fleet-wide search
}

// New validates cfg and returns a Coordinator with its health checkers
// running.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:        cfg,
		started:    time.Now(),
		lat:        newLatencyTracker(256),
		stopHealth: make(chan struct{}),
		owners:     make(map[string]ownerRec),
		jitter:     rand.Float64,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.MaxInFlightPerBackend,
			},
		},
	}
	c.sleep = func(ctx context.Context, d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	seen := make(map[string]bool)
	for _, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, errors.New("cluster: empty backend URL")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", u)
		}
		seen[u] = true
		b := &backend{
			url:   u,
			slots: make(chan struct{}, cfg.MaxInFlightPerBackend),
			br:    serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerProbes),
		}
		// Optimistic until the first probe answers: a coordinator that
		// boots before its backends must still route, and the breaker
		// catches real refusals immediately.
		b.healthy.Store(true)
		c.backends = append(c.backends, b)
	}
	for _, b := range c.backends {
		c.healthWG.Add(1)
		go c.healthLoop(b)
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", c.handleAnalyze)
	mux.HandleFunc("/v1/jobs", c.handleJobs)
	mux.HandleFunc("/v1/jobs/watch", c.handleJobsWatch)
	mux.HandleFunc("/v1/jobs/", c.handleJobByID)
	mux.HandleFunc("/v1/sessions", c.handleSessions)
	mux.HandleFunc("/v1/sessions/", c.handleSessionByID)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	mux.HandleFunc("/statsz", c.handleStatsz)
	return mux
}

// Serve accepts connections on l until Shutdown; it returns
// http.ErrServerClosed after a graceful shutdown.
func (c *Coordinator) Serve(l net.Listener) error {
	c.http = &http.Server{Handler: c.Handler()}
	return c.http.Serve(l)
}

// BeginDrain flips the coordinator to draining without closing the
// listener: /readyz answers 503 and new analyses are refused, giving
// an upstream load balancer time to route away before Shutdown.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// Shutdown drains the coordinator: new work is refused, in-flight
// proxied requests get up to DrainTimeout to finish, health checkers
// stop, then connections close.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.BeginDrain()
	c.stopHealthChecks()
	defer c.client.CloseIdleConnections()
	if c.http == nil {
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DrainTimeout)
	defer cancel()
	return c.http.Shutdown(dctx)
}

func (c *Coordinator) stopHealthChecks() {
	select {
	case <-c.stopHealth:
	default:
		close(c.stopHealth)
	}
	c.healthWG.Wait()
}

// ---------------------------------------------------------------------
// Request path

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			c.writeError(w, http.StatusServiceUnavailable, "handler-panic", fmt.Sprint(rec), 0)
		}
	}()
	if r.Method != http.MethodPost {
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		c.writeError(w, http.StatusMethodNotAllowed, "method", "POST required", 0)
		return
	}
	c.stats.requests.Add(1)
	if c.draining.Load() {
		c.stats.drainRejects.Add(1)
		c.writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining", c.cfg.DrainTimeout)
		return
	}

	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), 0)
		return
	}
	// Decode only to derive the routing key; the bytes forwarded to the
	// backend are the client's, verbatim, so backend behavior is
	// identical to a direct request.
	var req serve.AnalyzeRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error(), 0)
		return
	}
	cfg, err := req.Config.ToIPCP()
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	if req.Filename == "" {
		req.Filename = "request.f" // the backends' default, so keys agree
	}
	key := ipcp.Fingerprint(req.Filename, req.Source, cfg)

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	c.proxy(ctx, w, rank(c.backends, key), "/v1/analyze", raw)
}

// attemptOutcome is one backend attempt's result.
type attemptOutcome struct {
	b          *backend
	hedge      bool
	code       int
	retryAfter string
	body       []byte
	elapsed    time.Duration
	err        error
	canceled   bool
}

// final reports whether the outcome is an authoritative answer the
// client should see: an analysis (200), a durable job ack (202), or
// the backend's deterministic verdict on the input (400/422).
// Everything else — transport errors, shed 429s, 503s — is the
// backend's unavailability, and the next candidate may still answer.
func (o attemptOutcome) final() bool {
	if o.err != nil {
		return false
	}
	switch o.code {
	case http.StatusOK, http.StatusAccepted, http.StatusBadRequest, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

// retryAfterHint parses the backend's whole-seconds Retry-After, zero
// when absent or unparseable.
func (o attemptOutcome) retryAfterHint() time.Duration {
	if o.retryAfter == "" {
		return 0
	}
	secs, err := strconv.Atoi(o.retryAfter)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// proxy drives one client request through the candidate order:
// primary attempt, hedge on the latency quantile, failover on
// retryable failure, first authoritative answer relayed verbatim.
// It returns the relayed outcome (nil when no candidate answered) so
// callers like the job-submit path can inspect the winning backend.
func (c *Coordinator) proxy(ctx context.Context, w http.ResponseWriter, cands []*backend, path string, raw []byte) *attemptOutcome {
	results := make(chan attemptOutcome, c.cfg.MaxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, cf := range cancels {
			cf()
		}
	}()

	next, attempts, inFlight := 0, 0, 0
	var lastHint time.Duration
	// launch starts an attempt on the next viable candidate: circuit
	// must admit it and a slot must be free, else the candidate is
	// skipped (the skip is free — no backoff, no verdict).
	launch := func(hedge bool) bool {
		for next < len(cands) && attempts < c.cfg.MaxAttempts {
			b := cands[next]
			next++
			ok, after := b.br.Allow()
			if !ok {
				c.stats.breakerSkips.Add(1)
				if after > lastHint {
					lastHint = after
				}
				continue
			}
			if !b.acquire() {
				b.br.Neutral()
				c.stats.slotSkips.Add(1)
				continue
			}
			attempts++
			inFlight++
			actx, cancel := context.WithCancel(ctx)
			cancels = append(cancels, cancel)
			b.requests.Add(1)
			go c.attempt(actx, b, path, raw, hedge, results)
			return true
		}
		return false
	}

	if !launch(false) {
		c.writeUnavailable(w, "every backend rejected the request before an attempt started", lastHint, "")
		return nil
	}
	hedged := false
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()

	reroutes := 0
	var lastFail attemptOutcome
	for {
		select {
		case <-hedgeTimer.C:
			// One hedge per request: the primary has outlived the latency
			// quantile, so race the next candidate against it.
			if !hedged && launch(true) {
				hedged = true
				c.stats.hedgesStarted.Add(1)
			}
			continue
		case out := <-results:
			inFlight--
			if out.final() {
				if hedged {
					if out.hedge {
						c.stats.hedgesWon.Add(1)
					} else {
						c.stats.hedgesLost.Add(1)
					}
				}
				c.relay(w, out)
				return &out
			}
			lastFail = out
			if hint := out.retryAfterHint(); hint > lastHint {
				lastHint = hint
			}
			if inFlight > 0 {
				continue // a sibling attempt may still win
			}
			if out.canceled {
				// Our own context died mid-attempt; report the budget, not
				// the backend.
				break
			}
			// Reroute: back off (honoring the failed backend's hint up to
			// the cap) and try the next candidate.
			reroutes++
			c.stats.reroutes.Add(1)
			c.sleep(ctx, c.failoverDelay(reroutes, lastFail.retryAfterHint()))
			if ctx.Err() == nil && launch(false) {
				continue
			}
			if ctx.Err() != nil {
				break // budget gone: fall through to the deadline answer
			}
			c.writeUnavailable(w, lastFailMessage(lastFail, attempts), lastHint, lastFail.retryAfter)
			return nil
		case <-ctx.Done():
		}
		// ctx died (directly, or observed via a canceled attempt).
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.stats.deadlineFails.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, "deadline", "request budget exhausted across attempts", time.Second)
		} else {
			c.stats.abandoned.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, "canceled", "client went away", 0)
		}
		return nil
	}
}

func lastFailMessage(out attemptOutcome, attempts int) string {
	switch {
	case out.err != nil:
		return fmt.Sprintf("all %d attempts failed; last: %v", attempts, out.err)
	case out.code != 0:
		return fmt.Sprintf("all %d attempts failed; last: backend answered %d", attempts, out.code)
	default:
		return fmt.Sprintf("all %d attempts failed", attempts)
	}
}

// attempt proxies raw to one backend, settles its breaker exactly
// once, releases its slot, and reports the outcome.
func (c *Coordinator) attempt(ctx context.Context, b *backend, path string, raw []byte, hedge bool, results chan<- attemptOutcome) {
	start := time.Now()
	out := attemptOutcome{b: b, hedge: hedge}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(raw))
	if err != nil {
		out.err = err
	} else {
		req.Header.Set("Content-Type", "application/json")
		resp, derr := c.client.Do(req)
		if derr != nil {
			out.err = derr
		} else {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				out.err = rerr
			} else {
				out.code = resp.StatusCode
				out.retryAfter = resp.Header.Get("Retry-After")
				out.body = body
			}
		}
	}
	out.elapsed = time.Since(start)
	b.release()
	switch {
	case out.err != nil:
		if ctx.Err() != nil {
			// The coordinator canceled this attempt (a sibling won, or the
			// request budget died): no verdict on the backend.
			out.canceled = true
			b.br.Neutral()
		} else {
			b.br.Failure("transport")
			b.failures.Add(1)
			// A refused connection is authoritative about liveness; flip
			// immediately instead of waiting for the next probe tick.
			b.setHealthy(false)
		}
	case out.code == http.StatusOK, out.code == http.StatusAccepted:
		b.br.Success()
	case out.code == http.StatusBadRequest,
		out.code == http.StatusUnprocessableEntity,
		out.code == http.StatusTooManyRequests:
		// 400/422 are verdicts on the input; 429 means loaded, not
		// broken — neither says the backend is unhealthy.
		b.br.Neutral()
	default:
		b.br.Failure(failClass(out))
		b.failures.Add(1)
	}
	results <- out
}

// failClass names a failed attempt for the per-backend breaker and
// stats: the backend's own error class when the body parses, the bare
// status code otherwise.
func failClass(out attemptOutcome) string {
	var er serve.ErrorResponse
	if json.Unmarshal(out.body, &er) == nil && er.Error.Class != "" {
		return "upstream:" + er.Error.Class
	}
	return fmt.Sprintf("http-%d", out.code)
}

// hedgeDelay is how long the primary attempt may run before the hedge
// launches: the configured fixed delay, or the adaptive quantile of
// recent successful latencies (100ms until the tracker warms up),
// bounded by a quarter of the request budget.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.cfg.HedgeAfter
	if d <= 0 {
		if q, ok := c.lat.quantile(c.cfg.HedgeQuantile, c.cfg.HedgeMinSamples); ok {
			d = q
		} else {
			d = 100 * time.Millisecond
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max := c.cfg.RequestTimeout / 4; d > max {
		d = max
	}
	return d
}

// failoverDelay is the wait before reroute n (n >= 1): capped jittered
// exponential backoff, raised to the failed backend's Retry-After hint
// up to RetryHintCap.
func (c *Coordinator) failoverDelay(n int, hint time.Duration) time.Duration {
	d := c.cfg.RetryBaseDelay << (n - 1)
	if d > c.cfg.RetryMaxDelay || d <= 0 {
		d = c.cfg.RetryMaxDelay
	}
	d = d/2 + time.Duration(c.jitter()*float64(d/2))
	if hint > d {
		d = hint
		if d > c.cfg.RetryHintCap {
			d = c.cfg.RetryHintCap
		}
	}
	return d
}

// relay writes a backend's authoritative response to the client,
// byte-for-byte.
func (c *Coordinator) relay(w http.ResponseWriter, out attemptOutcome) {
	switch out.code {
	case http.StatusOK:
		c.stats.ok.Add(1)
		c.lat.observe(out.elapsed)
	case http.StatusAccepted:
		// A job ack is a success, but its latency is queueing, not
		// analysis — keep it out of the hedge quantile.
		c.stats.ok.Add(1)
	default:
		c.stats.inputErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	if out.retryAfter != "" {
		w.Header().Set("Retry-After", out.retryAfter)
	}
	w.WriteHeader(out.code)
	_, _ = w.Write(out.body)
}

// writeUnavailable is the give-up answer after every candidate failed.
// When the last backend supplied a Retry-After (verbatim != "") — the
// whole fleet is shedding or draining — that hint is relayed byte-for-
// byte: the backend knows its own drain budget and queue depth, and a
// coordinator-derived value would misinform exactly the clients that
// most need an honest back-off. Otherwise the breaker/hint estimate is
// used, floored at one second.
func (c *Coordinator) writeUnavailable(w http.ResponseWriter, msg string, hint time.Duration, verbatim string) {
	c.stats.unavailable.Add(1)
	if verbatim != "" {
		w.Header().Set("Retry-After", verbatim)
		c.writeError(w, http.StatusServiceUnavailable, "unavailable", msg, 0)
		return
	}
	if hint < time.Second {
		hint = time.Second
	}
	c.writeError(w, http.StatusServiceUnavailable, "unavailable", msg, hint)
}

// writeError renders a coordinator-origin error in the backends' wire
// shape (serve.ErrorResponse), so clients parse one error format
// fleet-wide. Classes originating here: bad-request, method, draining,
// unavailable, deadline, canceled, handler-panic.
func (c *Coordinator) writeError(w http.ResponseWriter, status int, class, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	body, err := json.MarshalIndent(serve.ErrorResponse{Error: serve.ErrorBody{Class: class, Message: msg}}, "", "  ")
	if err != nil {
		body = []byte("{}")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}
