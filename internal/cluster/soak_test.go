package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/serve"
)

// TestClusterChaosSoak is the multi-node acceptance harness for the
// coordinator's central claim: backend loss costs availability points,
// never wrong answers.
//
// Three real ipcp-serve backends run on real sockets with their
// degraded-retry ladder disabled (MaxRetries -1), so each backend
// answers full-fidelity-or-503 and every 200 in the fleet is
// byte-comparable. A killer goroutine hard-kills one backend at a time
// mid-flight and restarts it on the same address; probabilistic fail
// points inject solver panics and budget exhaustion into whichever
// backend is analyzing. Concurrent clients hammer the coordinator and
// assert:
//
//   - every 200 is byte-identical to a single-node reference answer
//     computed before the chaos started (zero wrong answers);
//   - availability over valid programs stays >= 99% despite the kills;
//   - only {200, 400, 422, 503} ever reach a client, always well-formed;
//   - the machinery demonstrably engaged: reroutes and hedges nonzero,
//     backends were really killed;
//   - after the chaos stops, everything drains back to the baseline
//     goroutine count.
//
// The default run is sized for `go test` (about 2s); `make soak-cluster`
// runs it for 10s with 12 clients via IPCP_SOAK_DURATION /
// IPCP_SOAK_CLIENTS.
func TestClusterChaosSoak(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "soak")

	duration := 2 * time.Second
	if v := os.Getenv("IPCP_SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("IPCP_SOAK_DURATION: %v", err)
		}
		duration = d
	}
	clients := 8
	if v := os.Getenv("IPCP_SOAK_CLIENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("IPCP_SOAK_CLIENTS: bad value %q", v)
		}
		clients = n
	}

	baseline := runtime.NumGoroutine()

	// Backends answer full-fidelity-or-503: the coordinator owns retries
	// (across backends, at the same config), which is what keeps every
	// 200 byte-identical to the reference. Their own breakers are set
	// out of the way (threshold 50) — backend-local breaker behavior is
	// the single-node soak's subject, not this one's.
	serveCfg := serve.Config{
		MaxConcurrency:   2,
		QueueDepth:       4,
		RequestTimeout:   2 * time.Second,
		DrainTimeout:     20 * time.Second,
		MaxRetries:       -1,
		BreakerThreshold: 50,
		BreakerCooldown:  100 * time.Millisecond,
	}

	// --- Workloads and their single-node reference answers ------------
	workload := make([][]byte, 24)
	for i := range workload {
		src := fmt.Sprintf("PROGRAM P\nINTEGER I\nI = %d\nCALL Q(I, %d)\nEND\nSUBROUTINE Q(N, M)\nINTEGER N, M\nPRINT *, N + M\nEND\n", i, i*i+1)
		req := serve.AnalyzeRequest{Source: src}
		switch i % 4 {
		case 1:
			req.Config = serve.RequestConfig{Kind: "polynomial", Complete: true}
		case 2:
			req.Want = serve.RequestWant{JumpFunctions: true}
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		workload[i] = b
	}
	invalidBody, _ := json.Marshal(serve.AnalyzeRequest{Source: "PROGRAM P\nCALL NOPE(1)\nEND\n"}) // 422
	malformedBody := []byte("{definitely not json")                                                // 400

	// The reference answers come from one untouched backend before any
	// fault is armed: what a client of a healthy single node would see.
	reference := make([][]byte, len(workload))
	var invalidRef []byte
	{
		ref, err := serve.New(serveCfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ref.Serve(l)
		base := "http://" + l.Addr().String()
		for i, body := range workload {
			status, data := postOnce(t, base, body)
			if status != http.StatusOK {
				t.Fatalf("reference answer for workload %d: status %d body %s", i, status, data)
			}
			reference[i] = data
		}
		var status int
		status, invalidRef = postOnce(t, base, invalidBody)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("reference answer for invalid program: status %d", status)
		}
		sctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		if err := ref.Shutdown(sctx); err != nil {
			t.Fatalf("reference shutdown: %v", err)
		}
		cancel()
	}

	// --- The fleet ----------------------------------------------------
	type node struct {
		addr string
		s    *serve.Server
	}
	nodes := make([]*node, 3)
	startNode := func(n *node) error {
		// Rebind the recorded address: the killer restarts a node on the
		// port the coordinator already routes to, like a supervisor would.
		var l net.Listener
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			l, err = net.Listen("tcp", n.addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rebinding %s: %w", n.addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		ns, err := serve.New(serveCfg)
		if err != nil {
			return err
		}
		n.s = ns
		go n.s.Serve(l)
		return nil
	}
	var urls []string
	for i := range nodes {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns, err := serve.New(serveCfg)
		if err != nil {
			t.Fatal(err)
		}
		n := &node{addr: l.Addr().String(), s: ns}
		go n.s.Serve(l)
		nodes[i] = n
		urls = append(urls, "http://"+n.addr)
	}

	coord, err := New(Config{
		Backends:              urls,
		HealthInterval:        50 * time.Millisecond,
		RequestTimeout:        5 * time.Second,
		MaxAttempts:           6,
		HedgeAfter:            5 * time.Millisecond,
		MaxInFlightPerBackend: 16,
		RetryBaseDelay:        time.Millisecond,
		RetryMaxDelay:         10 * time.Millisecond,
		BreakerThreshold:      3,
		BreakerCooldown:       100 * time.Millisecond,
		DrainTimeout:          20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.Serve(cl) }()
	base := "http://" + cl.Addr().String()

	// --- Fault injection: probabilistic analyzer faults ---------------
	// The hooks run inside whichever backend is analyzing, so every
	// backend misbehaves some of the time — the coordinator's job is to
	// make that invisible.
	var faultMu sync.Mutex
	faultRng := rand.New(rand.NewSource(42))
	defer guard.Set("solve", func() error {
		faultMu.Lock()
		roll := faultRng.Intn(100)
		faultMu.Unlock()
		switch {
		case roll < 3:
			panic("soak: injected solve panic")
		case roll < 8:
			return &guard.Exhausted{Axis: guard.AxisSolverSteps, Limit: 1, Site: "solve"}
		}
		return nil
	})()

	// --- The killer: hard-kill one backend at a time, then restart ----
	var kills atomic.Int64
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	killerErr := make(chan string, 1)
	go func() {
		defer close(killerDone)
		for i := 0; ; i++ {
			select {
			case <-stopKiller:
				return
			case <-time.After(120 * time.Millisecond):
			}
			n := nodes[i%len(nodes)]
			n.s.Close() // abrupt: in-flight connections die mid-request
			kills.Add(1)
			select {
			case <-stopKiller:
				// Leave no node dead behind: the drain checks below expect a
				// whole fleet.
				if err := startNode(n); err != nil {
					select {
					case killerErr <- err.Error():
					default:
					}
				}
				return
			case <-time.After(60 * time.Millisecond):
			}
			if err := startNode(n); err != nil {
				select {
				case killerErr <- err.Error():
				default:
				}
				return
			}
		}
	}()

	// --- Clients ------------------------------------------------------
	allowed := map[int]bool{200: true, 400: true, 422: true, 429: true, 503: true}
	var okValid, failValid, total atomic.Int64
	firstFailure := make(chan string, 1)
	reject := func(format string, args ...interface{}) {
		select {
		case firstFailure <- fmt.Sprintf(format, args...):
		default:
		}
	}
	// Generous client timeout: the coordinator's own 5s budget answers
	// first; a transport timeout here under a loaded -race run would be
	// a false harness failure.
	httpc := &http.Client{Timeout: 30 * time.Second}
	stopClients := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				kind := rng.Intn(10)
				var body []byte
				var ref []byte
				valid := false
				switch {
				case kind == 0:
					body = malformedBody
				case kind == 1:
					body, ref = invalidBody, invalidRef
				default:
					i := rng.Intn(len(workload))
					body, ref, valid = workload[i], reference[i], true
				}
				resp, err := httpc.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					// The coordinator must never die; a transport error to IT
					// is a harness failure.
					reject("transport error to coordinator: %v", err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				total.Add(1)
				if !allowed[resp.StatusCode] {
					reject("status %d body %s", resp.StatusCode, data)
					continue
				}
				if valid {
					if resp.StatusCode == http.StatusOK {
						okValid.Add(1)
					} else {
						failValid.Add(1)
					}
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusUnprocessableEntity:
					// THE invariant: an answer that reached a client is the
					// single-node answer, bit for bit, no matter which backend
					// produced it after how many reroutes and hedges.
					if !bytes.Equal(data, ref) {
						reject("answer diverged from single-node reference (status %d):\n got %s\nwant %s", resp.StatusCode, data, ref)
					}
				default:
					var er serve.ErrorResponse
					if err := json.Unmarshal(data, &er); err != nil || er.Error.Class == "" {
						reject("malformed error body (%d): %s", resp.StatusCode, data)
					}
				}
			}
		}(int64(c) + 1)
	}

	time.Sleep(duration)
	close(stopClients)
	wg.Wait()
	close(stopKiller)
	<-killerDone

	// --- Verdicts -----------------------------------------------------
	select {
	case msg := <-firstFailure:
		t.Errorf("soak violation: %s", msg)
	default:
	}
	select {
	case msg := <-killerErr:
		t.Errorf("killer could not restart a backend: %s", msg)
	default:
	}
	if total.Load() == 0 {
		t.Fatal("soak made no requests")
	}
	if kills.Load() < 2 {
		t.Errorf("only %d kills in %v; the chaos never engaged", kills.Load(), duration)
	}
	ok, fail := okValid.Load(), failValid.Load()
	if ok == 0 {
		t.Fatal("no valid program ever got a 200")
	}
	availability := float64(ok) / float64(ok+fail)
	t.Logf("availability: %.4f (%d ok / %d failed valid requests, %d total, %d kills)",
		availability, ok, fail, total.Load(), kills.Load())
	if availability < 0.99 {
		t.Errorf("availability %.4f below the 99%% floor", availability)
	}

	// The machinery must demonstrably have engaged, observable over the
	// real /statsz endpoint like an operator would see it.
	resp, err := httpc.Get(base + "/statsz")
	if err != nil {
		t.Fatalf("/statsz: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad /statsz body: %v\n%s", err, data)
	}
	t.Logf("coordinator: requests=%d ok=%d reroutes=%d hedges=%d/%d won/%d lost breaker-skips=%d slot-skips=%d unavailable=%d",
		st.Requests, st.OK, st.Reroutes, st.HedgesStarted, st.HedgesWon, st.HedgesLost, st.BreakerSkips, st.SlotSkips, st.Unavailable)
	if st.Reroutes == 0 {
		t.Error("no reroute was ever counted: failover never engaged")
	}
	if st.HedgesStarted == 0 {
		t.Error("no hedge was ever started: tail-latency protection never engaged")
	}
	if len(st.Backends) != len(nodes) {
		t.Errorf("/statsz shows %d backends, want %d", len(st.Backends), len(nodes))
	}
	var transitions int64
	for _, b := range st.Backends {
		transitions += b.HealthTransitions
	}
	if transitions == 0 {
		t.Error("health checker never observed a backend flip despite kills")
	}

	// --- Drain: coordinator first, then the fleet ---------------------
	httpc.CloseIdleConnections()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Shutdown(sctx); err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
	if err := <-coordDone; err != http.ErrServerClosed {
		t.Fatalf("coordinator Serve returned %v, want http.ErrServerClosed", err)
	}
	for i, n := range nodes {
		if err := n.s.Shutdown(sctx); err != nil {
			t.Fatalf("backend %d shutdown: %v", i, err)
		}
	}
	goroutineDeadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		}
		if time.Now().After(goroutineDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck at %d (baseline %d)\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postOnce(t *testing.T, base string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}
