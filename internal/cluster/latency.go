package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a ring of recent successful-attempt latencies
// and answers quantile queries; the coordinator hedges a request when
// its primary attempt outlives the tracked quantile. A ring (rather
// than a decaying histogram) is enough: hedging needs "slower than
// recent peers", not a precise distribution.
type latencyTracker struct {
	mu      sync.Mutex
	ring    []time.Duration
	next    int
	filled  bool
	samples int64
}

func newLatencyTracker(size int) *latencyTracker {
	if size <= 0 {
		size = 256
	}
	return &latencyTracker{ring: make([]time.Duration, size)}
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.samples++
	t.mu.Unlock()
}

// quantile returns the q-th (0 < q < 1) latency over the ring, and
// false while fewer than minSamples observations exist (the caller
// falls back to a fixed hedge delay until the tracker warms up).
func (t *latencyTracker) quantile(q float64, minSamples int) (time.Duration, bool) {
	t.mu.Lock()
	n := t.next
	if t.filled {
		n = len(t.ring)
	}
	if int(t.samples) < minSamples || n == 0 {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()

	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return buf[idx], true
}
