package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/ipcp"
)

// newSessionBackend starts a real ipcp-serve with the session API at
// its defaults, served over a real socket.
func newSessionBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		_ = s.Close()
	})
	return s, srv
}

const sessionClusterSrc = `PROGRAM MAIN
CALL TOP(8, 3)
END

SUBROUTINE TOP(N, M)
INTEGER N, M
CALL LEAF(N, M)
END

SUBROUTINE LEAF(N, M)
INTEGER N, M
PRINT *, N + M
END
`

const sessionClusterLeafEdit = "SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N * M\nEND\n"

func openSessionViaCoord(t *testing.T, c *Coordinator) serve.OpenSessionResponse {
	t.Helper()
	body, _ := json.Marshal(serve.OpenSessionRequest{Filename: "prog.f", Source: sessionClusterSrc})
	code, _, data := coordReq(c, http.MethodPost, "/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("open: %d %s", code, data)
	}
	var resp serve.OpenSessionResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("open body: %v\n%s", err, data)
	}
	return resp
}

// TestSessionRoutedThroughCoordinator: a session opened through the
// coordinator lands on one backend; edits and result fetches follow it
// there and the relayed bytes are the backend's own. After coordinator
// amnesia the owner is re-learned by broadcast.
func TestSessionRoutedThroughCoordinator(t *testing.T) {
	_, b1 := newSessionBackend(t)
	_, b2 := newSessionBackend(t)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	open := openSessionViaCoord(t, c)
	owner := c.owner(open.ID)
	if owner == nil {
		t.Fatal("open did not record a session owner")
	}

	edit, _ := json.Marshal(serve.SessionEditRequest{Edits: []ipcp.UnitEdit{{Op: "replace", Index: 2, Text: sessionClusterLeafEdit}}})
	code, _, data := coordReq(c, http.MethodPost, "/v1/sessions/"+open.ID+"/edit", edit)
	if code != http.StatusOK {
		t.Fatalf("edit: %d %s", code, data)
	}
	var er serve.SessionEditResponse
	if err := json.Unmarshal(data, &er); err != nil || !er.Info.FastPath {
		t.Fatalf("edit response: %v\n%s", err, data)
	}

	code, _, viaCoord := coordReq(c, http.MethodGet, "/v1/sessions/"+open.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, viaCoord)
	}
	direct, err := http.Get(owner.url + "/v1/sessions/" + open.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	directBody := new(bytes.Buffer)
	directBody.ReadFrom(direct.Body)
	direct.Body.Close()
	if !bytes.Equal(viaCoord, directBody.Bytes()) {
		t.Fatalf("coordinator rewrote the result:\nvia:    %s\ndirect: %s", viaCoord, directBody.Bytes())
	}

	// The session result equals a cold /v1/analyze of the edited text,
	// through the coordinator, byte for byte.
	edited := strings.Replace(sessionClusterSrc, "PRINT *, N + M", "PRINT *, N * M", 1)
	code, _, cold := coordReq(c, http.MethodPost, "/v1/analyze", analyzeBody(t, "prog.f", edited))
	if code != http.StatusOK {
		t.Fatalf("cold analyze: %d %s", code, cold)
	}
	if !bytes.Equal(viaCoord, cold) {
		t.Fatalf("session result != cold analyze through coordinator:\nsession: %s\ncold:    %s", viaCoord, cold)
	}

	// Amnesia: the owner map is memory-only; a fresh coordinator (or one
	// that restarted) re-learns it from the broadcast.
	c.ownerMu.Lock()
	c.owners = make(map[string]ownerRec)
	c.ownerMu.Unlock()
	code, _, data = coordReq(c, http.MethodGet, "/v1/sessions/"+open.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("amnesiac result: %d %s", code, data)
	}
	if got := c.owner(open.ID); got == nil || got.url != owner.url {
		t.Fatal("broadcast hit did not re-learn the owner")
	}

	st := c.Stats()
	if st.SessionOpens != 1 || st.SessionLookups < 3 || st.SessionBroadcasts == 0 {
		t.Fatalf("session counters: %+v", st)
	}

	// Unknown IDs resolve to 404 after the fleet denies them.
	if code, _, _ := coordReq(c, http.MethodGet, "/v1/sessions/s-missing-0/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", code)
	}
	// Close through the coordinator.
	if code, _, data := coordReq(c, http.MethodDelete, "/v1/sessions/"+open.ID, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, data)
	}
	if code, _, _ := coordReq(c, http.MethodGet, "/v1/sessions/"+open.ID+"/result", nil); code != http.StatusNotFound {
		t.Fatalf("result after close: %d, want 404", code)
	}
}

// TestSessionChaosOwnerKilled (satellite): kill the backend that owns
// a session mid-flight. The coordinator must surface a well-formed,
// retryable error for the orphaned ID — not a hang, not a garbled
// body — and a re-opened session on the survivors must converge to a
// result byte-identical to a cold analysis of the same final text.
func TestSessionChaosOwnerKilled(t *testing.T) {
	s1, b1 := newSessionBackend(t)
	s2, b2 := newSessionBackend(t)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	open := openSessionViaCoord(t, c)
	owner := c.owner(open.ID)
	if owner == nil {
		t.Fatal("no owner recorded")
	}

	// One successful edit before the crash.
	edit, _ := json.Marshal(serve.SessionEditRequest{Edits: []ipcp.UnitEdit{{Op: "replace", Index: 2, Text: sessionClusterLeafEdit}}})
	if code, _, data := coordReq(c, http.MethodPost, "/v1/sessions/"+open.ID+"/edit", edit); code != http.StatusOK {
		t.Fatalf("pre-kill edit: %d %s", code, data)
	}

	// Hard-kill the owner.
	if owner.url == b1.URL {
		b1.CloseClientConnections()
		b1.Close()
		_ = s1.Close()
	} else {
		b2.CloseClientConnections()
		b2.Close()
		_ = s2.Close()
	}

	// The orphaned session's edit fails retryably: 503, the documented
	// error shape, class "unavailable". The survivor was asked (it
	// answers 404 — IDs are fleet-unique) before the coordinator gave up.
	code, _, data := coordReq(c, http.MethodPost, "/v1/sessions/"+open.ID+"/edit", edit)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-kill edit: %d %s", code, data)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error.Class != "unavailable" {
		t.Fatalf("post-kill error body: %v\n%s", err, data)
	}
	if st := c.Stats(); st.SessionBroadcasts == 0 {
		t.Fatalf("kill did not trigger a broadcast: %+v", st)
	}

	// Recovery: re-open (failover routes around the corpse), replay the
	// edit, and the result must be byte-identical to a cold analysis of
	// the final text on the surviving backend.
	reopened := openSessionViaCoord(t, c)
	if reopened.ID == open.ID {
		t.Fatal("re-opened session reused the dead session's ID")
	}
	if code, _, data := coordReq(c, http.MethodPost, "/v1/sessions/"+reopened.ID+"/edit", edit); code != http.StatusOK {
		t.Fatalf("replayed edit: %d %s", code, data)
	}
	code, _, viaCoord := coordReq(c, http.MethodGet, "/v1/sessions/"+reopened.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("recovered result: %d %s", code, viaCoord)
	}
	edited := strings.Replace(sessionClusterSrc, "PRINT *, N + M", "PRINT *, N * M", 1)
	code, _, cold := coordReq(c, http.MethodPost, "/v1/analyze", analyzeBody(t, "prog.f", edited))
	if code != http.StatusOK {
		t.Fatalf("cold analyze after kill: %d %s", code, cold)
	}
	if !bytes.Equal(viaCoord, cold) {
		t.Fatalf("recovered session diverged from cold analysis:\nsession: %s\ncold:    %s", viaCoord, cold)
	}
}

// TestSessionCoordValidation: bodies the coordinator cannot route are
// rejected locally; method misuse 405s.
func TestSessionCoordValidation(t *testing.T) {
	var hits int
	b := newFakeJobBackend(t, func(w http.ResponseWriter, r *http.Request) { hits++ })
	c := newTestCoordinator(t, []string{b.URL}, nil)
	for _, body := range [][]byte{
		[]byte("{nope"),
		[]byte(`{"source": "X", "config": {"kind": "psychic"}}`),
	} {
		if code, _, data := coordReq(c, http.MethodPost, "/v1/sessions", body); code != http.StatusBadRequest {
			t.Errorf("status = %d, body %s", code, data)
		}
	}
	if hits != 0 {
		t.Fatalf("invalid opens reached a backend %d times", hits)
	}
	if code, _, _ := coordReq(c, http.MethodPut, "/v1/sessions", nil); code != http.StatusMethodNotAllowed {
		t.Error("PUT /v1/sessions must 405")
	}
	if code, _, _ := coordReq(c, http.MethodPut, "/v1/sessions/s-1-1/edit", nil); code != http.StatusMethodNotAllowed {
		t.Error("PUT /v1/sessions/{id}/edit must 405")
	}
}
