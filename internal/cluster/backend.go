package cluster

import (
	"hash/fnv"
	"sort"
	"sync/atomic"

	"repro/internal/serve"
)

// backend is one ipcp-serve process the coordinator fronts.
type backend struct {
	url string // base URL, no trailing slash

	// slots bounds this backend's in-flight proxied requests; an attempt
	// that cannot take a slot skips to the next hash candidate instead
	// of queueing, so one slow backend cannot absorb the fleet's
	// concurrency budget.
	slots chan struct{}

	// br is the per-backend circuit: transport errors and 503s count as
	// failures, authoritative answers (200/400/422) as successes or
	// neutral. An open circuit removes the backend from rotation until a
	// half-open probe proves it back.
	br *serve.Breaker

	// healthy mirrors the active /readyz checks (and flips down
	// immediately on a transport error, without waiting for the next
	// probe tick).
	healthy atomic.Bool

	requests    atomic.Int64 // attempts proxied to this backend
	failures    atomic.Int64 // attempts that counted against its health
	transitions atomic.Int64 // health flips observed by the checker

	// remote is the last /statsz snapshot the health checker pulled,
	// surfaced verbatim in the coordinator's own /statsz.
	remote atomic.Pointer[serve.StatsSnapshot]
}

func (b *backend) acquire() bool {
	select {
	case b.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *backend) release() { <-b.slots }

func (b *backend) setHealthy(up bool) {
	if b.healthy.Swap(up) != up {
		b.transitions.Add(1)
	}
}

// rank orders the backends for one routing key by rendezvous (highest
// random weight) hashing: every backend scores hash(key, backend) and
// the request prefers the highest score. Each key gets an
// independent, uniformly distributed preference order, so removing one
// backend remaps only the keys that preferred it — warm memo entries
// stay put on the survivors — and the second-choice backend (the hedge
// target) is as stable as the first.
//
// Unhealthy backends are not removed from the order, only deprioritized
// behind every healthy one (stably, preserving relative score order):
// health checks lag reality in both directions, and a "down" backend
// that still answers is strictly better than a synthesized 503 when
// everything else is gone.
func rank(backends []*backend, key string) []*backend {
	type scored struct {
		b     *backend
		score uint64
	}
	all := make([]scored, len(backends))
	for i, b := range backends {
		all[i] = scored{b, rendezvousScore(key, b.url)}
	}
	sort.SliceStable(all, func(i, j int) bool {
		hi, hj := all[i].b.healthy.Load(), all[j].b.healthy.Load()
		if hi != hj {
			return hi
		}
		return all[i].score > all[j].score
	})
	out := make([]*backend, len(all))
	for i, s := range all {
		out[i] = s.b
	}
	return out
}

// rendezvousScore hashes (key, member) to a 64-bit weight. FNV-1a is
// sufficient here: the routing key itself is already a SHA-256 digest,
// so inputs are uniformly spread before this hash ever runs.
func rendezvousScore(key, member string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(member))
	return h.Sum64()
}
