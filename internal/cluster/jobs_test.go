package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
)

// newJobBackend starts a real ipcp-serve with the durable job API in a
// temp WAL directory, served over a real socket.
func newJobBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{JobsDir: t.TempDir(), JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		_ = s.Close()
	})
	return s, srv
}

func coordReq(c *Coordinator, method, path string, body []byte) (int, http.Header, []byte) {
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(method, path, bytes.NewReader(body)))
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

// TestJobSubmitRoutedThroughCoordinator: a batch submitted to the
// coordinator lands whole on one real backend; polling and the result
// bytes flow back through the coordinator unchanged.
func TestJobSubmitRoutedThroughCoordinator(t *testing.T) {
	_, b1 := newJobBackend(t)
	_, b2 := newJobBackend(t)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	submit, _ := json.Marshal(serve.JobSubmitRequest{Jobs: []serve.AnalyzeRequest{
		{Source: clusterSrc},
		{Source: "PROGRAM P\nCALL NOPE(1)\nEND\n"},
	}})
	code, _, body := coordReq(c, http.MethodPost, "/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", code, body)
	}
	var resp serve.JobSubmitResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Jobs) != 2 {
		t.Fatalf("acks: %v\n%s", err, body)
	}

	// Both jobs reach terminal state through coordinator polls.
	views := make([]jobs.JobView, 2)
	for i, ack := range resp.Jobs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			code, _, data := coordReq(c, http.MethodGet, "/v1/jobs/"+ack.ID, nil)
			if code != http.StatusOK {
				t.Fatalf("poll %s: status = %d, body %s", ack.ID, code, data)
			}
			if err := json.Unmarshal(data, &views[i]); err != nil {
				t.Fatalf("poll %s: %v\n%s", ack.ID, err, data)
			}
			if views[i].State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", ack.ID, views[i].State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if views[0].Code != http.StatusOK || views[1].Code != http.StatusUnprocessableEntity {
		t.Fatalf("terminal views: %+v", views)
	}

	// The coordinator's relayed result bytes match the owning backend's.
	code, _, viaCoord := coordReq(c, http.MethodGet, "/v1/jobs/"+resp.Jobs[0].ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result status = %d, body %s", code, viaCoord)
	}
	owner := c.owner(resp.Jobs[0].ID)
	if owner == nil {
		t.Fatal("coordinator forgot the job's owner")
	}
	direct, err := http.Get(owner.url + "/v1/jobs/" + resp.Jobs[0].ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	directBody := new(bytes.Buffer)
	directBody.ReadFrom(direct.Body)
	direct.Body.Close()
	if !bytes.Equal(viaCoord, directBody.Bytes()) {
		t.Fatalf("coordinator rewrote the result:\nvia:    %s\ndirect: %s", viaCoord, directBody.Bytes())
	}

	// The merged list sees both jobs; watch drains immediately (all
	// terminal) with one line per job.
	code, _, data := coordReq(c, http.MethodGet, "/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	var list serve.JobListResponse
	if err := json.Unmarshal(data, &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("merged list: %v\n%s", err, data)
	}
	code, _, data = coordReq(c, http.MethodGet, "/v1/jobs/watch", nil)
	if code != http.StatusOK || len(bytes.Split(bytes.TrimSpace(data), []byte("\n"))) != 2 {
		t.Fatalf("watch: status = %d, body %s", code, data)
	}

	st := c.Stats()
	if st.JobSubmits != 1 || st.JobLookups == 0 {
		t.Fatalf("job counters: %+v", st)
	}
}

// TestJobLookupSurvivesCoordinatorAmnesia: the owner map is memory-
// only; after losing it (a coordinator restart) a poll still finds the
// job by broadcasting, and the owner is re-learned.
func TestJobLookupSurvivesCoordinatorAmnesia(t *testing.T) {
	_, b1 := newJobBackend(t)
	_, b2 := newJobBackend(t)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	submit, _ := json.Marshal(serve.JobSubmitRequest{Jobs: []serve.AnalyzeRequest{{Source: clusterSrc}}})
	code, _, body := coordReq(c, http.MethodPost, "/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", code, body)
	}
	var resp serve.JobSubmitResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	id := resp.Jobs[0].ID

	c.ownerMu.Lock()
	c.owners = make(map[string]ownerRec) // simulate restart
	c.ownerMu.Unlock()

	code, _, data := coordReq(c, http.MethodGet, "/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("amnesiac poll: status = %d, body %s", code, data)
	}
	if c.owner(id) == nil {
		t.Fatal("broadcast hit did not re-learn the owner")
	}
	if st := c.Stats(); st.JobBroadcasts == 0 {
		t.Fatalf("broadcast not counted: %+v", st)
	}
	if code, _, _ := coordReq(c, http.MethodGet, "/v1/jobs/j-missing-0000000000000000", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status = %d", code)
	}
}

// TestSaturatedFleetRelaysRetryAfterVerbatim (satellite): when every
// backend sheds a job submission, the coordinator's give-up 503 must
// carry the backend's own Retry-After unchanged — the backend knows
// its queue; a coordinator-invented number would mislead exactly the
// clients being asked to back off.
func TestSaturatedFleetRelaysRetryAfterVerbatim(t *testing.T) {
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "17")
		w.WriteHeader(http.StatusTooManyRequests)
		body, _ := json.Marshal(serve.ErrorResponse{Error: serve.ErrorBody{Class: "shed", Message: "tenant quota"}})
		w.Write(body)
	}
	b1 := newFakeJobBackend(t, shed)
	b2 := newFakeJobBackend(t, shed)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	submit, _ := json.Marshal(serve.JobSubmitRequest{Jobs: []serve.AnalyzeRequest{{Source: clusterSrc}}})
	code, hdr, body := coordReq(c, http.MethodPost, "/v1/jobs", submit)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "17" {
		t.Fatalf("Retry-After = %q, want the backend's own 17, unchanged", got)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Class != "unavailable" {
		t.Fatalf("body: %v\n%s", err, body)
	}
}

// TestDrainingFleetRelaysRetryAfterVerbatim: same propagation rule
// when the backends are draining rather than shedding.
func TestDrainingFleetRelaysRetryAfterVerbatim(t *testing.T) {
	draining := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "23")
		w.WriteHeader(http.StatusServiceUnavailable)
		body, _ := json.Marshal(serve.ErrorResponse{Error: serve.ErrorBody{Class: "draining", Message: "server is draining"}})
		w.Write(body)
	}
	b1 := newFakeJobBackend(t, draining)
	b2 := newFakeJobBackend(t, draining)
	c := newTestCoordinator(t, []string{b1.URL, b2.URL}, nil)

	submit, _ := json.Marshal(serve.JobSubmitRequest{Jobs: []serve.AnalyzeRequest{{Source: clusterSrc}}})
	code, hdr, body := coordReq(c, http.MethodPost, "/v1/jobs", submit)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "23" {
		t.Fatalf("Retry-After = %q, want the backend's own 23, unchanged", got)
	}
}

// newFakeJobBackend scripts only the job-submit endpoint; health
// probes answer like a live backend.
func newFakeJobBackend(t *testing.T, handler func(w http.ResponseWriter, r *http.Request)) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/statsz":
			fmt.Fprint(w, "{}\n")
		case "/v1/jobs":
			handler(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestJobSubmitValidationAtCoordinator: a batch the coordinator cannot
// route (empty, unparseable, bad config) is rejected locally without
// consuming a backend attempt.
func TestJobSubmitValidationAtCoordinator(t *testing.T) {
	var hits int
	b := newFakeJobBackend(t, func(w http.ResponseWriter, r *http.Request) { hits++ })
	c := newTestCoordinator(t, []string{b.URL}, nil)
	for _, body := range [][]byte{
		[]byte("{nope"),
		[]byte(`{"jobs": []}`),
		[]byte(`{"jobs": [{"source": "X", "config": {"kind": "psychic"}}]}`),
	} {
		code, _, data := coordReq(c, http.MethodPost, "/v1/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("status = %d, body %s", code, data)
		}
	}
	if hits != 0 {
		t.Fatalf("invalid batches reached a backend %d times", hits)
	}
	if code, _, _ := coordReq(c, http.MethodPut, "/v1/jobs", nil); code != http.StatusMethodNotAllowed {
		t.Error("PUT /v1/jobs must 405")
	}
}
