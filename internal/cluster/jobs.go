package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
	"repro/ipcp"
)

// This file proxies the durable job API across the fleet. The same
// correctness rule as /v1/analyze applies: the coordinator never
// rewrites a backend's answer.
//
//	POST   /v1/jobs             routed like an analysis — by the first
//	                            job's fingerprint through rendezvous
//	                            hashing, with failover — so a batch
//	                            lands whole on the backend whose memo
//	                            cache and dedupe table already know it.
//	GET    /v1/jobs?tenant=     fan-out: every backend's list, merged.
//	GET    /v1/jobs/{id}        owner map first, broadcast on a miss.
//	GET    /v1/jobs/{id}/result relayed byte-for-byte from the owner.
//	DELETE /v1/jobs/{id}        same owner/broadcast resolution.
//	GET    /v1/jobs/watch       coordinator-side NDJSON aggregation of
//	                            the fleet's job states.
//
// Job IDs carry a per-boot random instance tag (see internal/jobs),
// so an ID names exactly one job fleet-wide and the broadcast
// fallback cannot relay the wrong backend's job.

// ownerTTL bounds how long an idle owner entry is kept; backends
// retain terminal jobs for a bounded window too, so an older entry
// only shields a 404.
const ownerTTL = time.Hour

// ownerPruneLen is the map size past which inserts trigger a prune
// sweep; below it the map is too small to be worth scanning.
const ownerPruneLen = 4096

type ownerRec struct {
	b  *backend
	at time.Time
}

func (c *Coordinator) recordOwners(acks []jobs.Ack, b *backend) {
	c.ownerMu.Lock()
	defer c.ownerMu.Unlock()
	if len(c.owners) >= ownerPruneLen {
		cutoff := time.Now().Add(-ownerTTL)
		for id, rec := range c.owners {
			if rec.at.Before(cutoff) {
				delete(c.owners, id)
			}
		}
	}
	now := time.Now()
	for _, a := range acks {
		c.owners[a.ID] = ownerRec{b: b, at: now}
	}
}

func (c *Coordinator) owner(id string) *backend {
	c.ownerMu.Lock()
	defer c.ownerMu.Unlock()
	rec, ok := c.owners[id]
	if !ok {
		return nil
	}
	if time.Since(rec.at) > ownerTTL {
		delete(c.owners, id)
		return nil
	}
	return rec.b
}

// handleJobs serves POST (submit) and GET (list) on /v1/jobs.
func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		c.handleJobSubmit(w, r)
	case http.MethodGet:
		c.handleJobList(w, r)
	default:
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", "POST, GET")
		c.writeError(w, http.StatusMethodNotAllowed, "method", "POST or GET required", 0)
	}
}

// handleJobSubmit routes a batch to the backend the first job's
// fingerprint prefers and relays the ack verbatim. The whole batch
// goes to one backend: splitting it would scatter one client's jobs
// across WALs and turn a single poll loop into a scavenger hunt.
func (c *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	c.stats.jobSubmits.Add(1)
	if c.draining.Load() {
		c.stats.drainRejects.Add(1)
		c.writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining", c.cfg.DrainTimeout)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), 0)
		return
	}
	var req serve.JobSubmitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error(), 0)
		return
	}
	if len(req.Jobs) == 0 {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", "batch must contain at least one job", 0)
		return
	}
	jr := req.Jobs[0]
	cfg, err := jr.Config.ToIPCP()
	if err != nil {
		c.stats.badRequests.Add(1)
		c.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	if jr.Filename == "" {
		jr.Filename = "request.f" // the backends' default, so keys agree
	}
	key := ipcp.Fingerprint(jr.Filename, jr.Source, cfg)

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	out := c.proxy(ctx, w, rank(c.backends, key), "/v1/jobs", raw)
	if out != nil && out.code == http.StatusAccepted {
		var resp serve.JobSubmitResponse
		if json.Unmarshal(out.body, &resp) == nil {
			c.recordOwners(resp.Jobs, out.b)
		}
	}
}

// handleJobList merges every backend's retained jobs into one
// coordinator-rendered document. This is the one job endpoint whose
// body originates here rather than on a backend: it is an aggregate,
// so there is no single backend answer to relay.
func (c *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	views := c.fanoutList(r.Context(), r.URL.Query().Get("tenant"))
	body, err := json.MarshalIndent(serve.JobListResponse{Jobs: views}, "", "  ")
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(append(body, '\n'))
}

// fanoutList collects the fleet's job views; unreachable backends
// contribute nothing (their jobs reappear when they do).
func (c *Coordinator) fanoutList(ctx context.Context, tenant string) []jobs.JobView {
	views := make([]jobs.JobView, 0)
	seen := make(map[string]bool)
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	for _, b := range c.backends {
		code, _, body, err := c.forwardJob(ctx, b, http.MethodGet, path)
		if err != nil || code != http.StatusOK {
			continue
		}
		var resp serve.JobListResponse
		if json.Unmarshal(body, &resp) != nil {
			continue
		}
		for _, v := range resp.Jobs {
			if !seen[v.ID] {
				seen[v.ID] = true
				views = append(views, v)
			}
		}
	}
	return views
}

// handleJobByID resolves /v1/jobs/{id} and /v1/jobs/{id}/result to
// the backend that owns the job and relays its answer verbatim. The
// owner map is tried first; on a miss — or a 404 from a remembered
// owner whose retention already dropped the job — every backend is
// asked in turn. Any non-404 response is authoritative: only the
// backend holding the job's WAL record can answer about it.
func (c *Coordinator) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	switch {
	case id == "":
		c.writeError(w, http.StatusNotFound, "not-found", "missing job id", 0)
		return
	case sub == "" && (r.Method == http.MethodGet || r.Method == http.MethodDelete):
	case sub == "result" && r.Method == http.MethodGet:
	default:
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", "GET, DELETE")
		c.writeError(w, http.StatusMethodNotAllowed, "method", "GET or DELETE required", 0)
		return
	}
	c.stats.jobLookups.Add(1)
	path := "/v1/jobs/" + id
	if sub != "" {
		path += "/" + sub
	}

	tried := make(map[*backend]bool)
	if b := c.owner(id); b != nil {
		tried[b] = true
		if code, hdr, body, err := c.forwardJob(r.Context(), b, r.Method, path); err == nil && code != http.StatusNotFound {
			writeProxied(w, code, hdr, body)
			return
		}
	}
	c.stats.jobBroadcasts.Add(1)
	reachable := 0
	for _, b := range c.backends {
		if tried[b] {
			continue
		}
		code, hdr, body, err := c.forwardJob(r.Context(), b, r.Method, path)
		if err != nil {
			continue
		}
		reachable++
		if code == http.StatusNotFound {
			continue
		}
		c.recordOwners([]jobs.Ack{{ID: id}}, b)
		writeProxied(w, code, hdr, body)
		return
	}
	if reachable == 0 && len(tried) == 0 {
		c.writeUnavailable(w, "no backend reachable to resolve job "+id, 0, "")
		return
	}
	c.writeError(w, http.StatusNotFound, "not-found", "unknown job "+id, 0)
}

// handleJobsWatch streams the fleet's job state changes as NDJSON by
// polling the merged list — the aggregate of several backends has no
// single stream to relay. Lines are compact jobs.JobView documents,
// exactly like a single backend's watch.
func (c *Coordinator) handleJobsWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodGet)
		c.writeError(w, http.StatusMethodNotAllowed, "method", "GET required", 0)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		c.writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported", 0)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sent := make(map[string]jobs.State)
	for {
		views := c.fanoutList(r.Context(), tenant)
		allTerminal := len(views) > 0
		for _, v := range views {
			if sent[v.ID] != v.State {
				line, err := json.Marshal(v)
				if err != nil {
					continue
				}
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				sent[v.ID] = v.State
			}
			if !v.State.Terminal() {
				allTerminal = false
			}
		}
		fl.Flush()
		if allTerminal || len(views) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(300 * time.Millisecond):
		}
	}
}

// forwardJob sends one bodyless job-API request to one backend. These
// are lightweight lookups outside the failover ladder: a transport
// error just moves the broadcast to the next backend, with no breaker
// verdict (the breaker protects the analysis path's attempt budget).
func (c *Coordinator) forwardJob(ctx context.Context, b *backend, method, path string) (int, http.Header, []byte, error) {
	fctx, cancel := context.WithTimeout(ctx, c.jobLookupTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, method, b.url+path, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

func (c *Coordinator) jobLookupTimeout() time.Duration {
	if d := c.cfg.RequestTimeout / 4; d < 2*time.Second {
		return d
	}
	return 2 * time.Second
}

// writeProxied relays one backend response byte-for-byte, preserving
// the headers that carry semantics (Content-Type, Retry-After).
func writeProxied(w http.ResponseWriter, code int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(code)
	_, _ = w.Write(body)
}
