package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
)

// TestChaosSoak is the crash-only acceptance harness: concurrent
// clients hammer a real HTTP server over a real socket while a fault
// cycler rotates injected panics and budget exhaustion through every
// pipeline phase. The server must never exit, must answer every request
// with well-formed JSON from the documented status set, must trip and
// recover its circuit breaker at least once, and must drain back to the
// baseline goroutine count on shutdown.
//
// The default run is sized for `go test` (about 1.5s); `make soak` runs
// it for 30s with 12 clients via IPCP_SOAK_DURATION / IPCP_SOAK_CLIENTS.
func TestChaosSoak(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "soak")

	duration := 1500 * time.Millisecond
	if v := os.Getenv("IPCP_SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("IPCP_SOAK_DURATION: %v", err)
		}
		duration = d
	}
	clients := 10
	if v := os.Getenv("IPCP_SOAK_CLIENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("IPCP_SOAK_CLIENTS: bad value %q", v)
		}
		clients = n
	}

	baseline := runtime.NumGoroutine()

	// Tight retry/breaker settings so trips and recoveries happen many
	// times within even the short default run: fault windows (~120ms)
	// outlast the breaker cooldown (~80ms), so an open breaker gets its
	// probe while the fault is still hot (reopen) and after it moves on
	// (close).
	s, err := New(Config{
		MaxConcurrency:   2,
		QueueDepth:       2,
		RequestTimeout:   2 * time.Second,
		DrainTimeout:     20 * time.Second,
		MaxRetries:       1,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    4 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  80 * time.Millisecond,
		BreakerProbes:    1,
	})
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()
	httpc := &http.Client{Timeout: 10 * time.Second}

	// --- Fault cycler -------------------------------------------------
	type fault struct {
		name string
		site string
		hook guard.Hook
	}
	faults := []fault{
		{name: "none"},
		{"panic-solve", "solve", func() error { panic("soak: injected solve panic") }},
		{"exhaust-solve", "solve", func() error {
			return &guard.Exhausted{Axis: guard.AxisSolverSteps, Limit: 1, Site: "solve"}
		}},
		{"panic-jump", "jump", func() error { panic("soak: injected jump panic") }},
		{"panic-sem", "sem", func() error { panic("soak: injected sem panic") }},
		{"panic-subst", "subst", func() error { panic("soak: injected subst panic") }},
	}
	stopFaults := make(chan struct{})
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		remove := func() {}
		defer func() { remove() }()
		for i := 0; ; i++ {
			f := faults[i%len(faults)]
			remove()
			remove = func() {}
			if f.site != "" {
				remove = guard.Set(f.site, f.hook)
			}
			select {
			case <-stopFaults:
				return
			case <-time.After(120 * time.Millisecond):
			}
		}
	}()

	// --- Clients ------------------------------------------------------
	bodies := [][]byte{
		mustJSON(t, AnalyzeRequest{Source: okSrc}),
		mustJSON(t, AnalyzeRequest{Source: okSrc, Config: RequestConfig{Kind: "polynomial", Complete: true}}),
		mustJSON(t, AnalyzeRequest{Source: okSrc, Want: RequestWant{JumpFunctions: true}}),
		mustJSON(t, AnalyzeRequest{Source: "PROGRAM P\nCALL NOPE(1)\nEND\n"}), // 422
		[]byte("{definitely not json"),                                        // 400
	}
	// Repeated bodies exercise the result cache (hits bypass the whole
	// worker path); never-seen sources force full analyses so the fault
	// cycler still reaches every pipeline phase.
	uniqueBody := func(n int64) []byte {
		src := fmt.Sprintf("PROGRAM P\nINTEGER I\nI = %d\nCALL Q(I)\nEND\nSUBROUTINE Q(N)\nINTEGER N\nPRINT *, N\nEND\n", n)
		b, _ := json.Marshal(AnalyzeRequest{Source: src})
		return b
	}
	allowed := map[int]bool{200: true, 400: true, 422: true, 429: true, 503: true}
	var statusCounts [600]atomic.Int64
	var badStatus, badBody atomic.Int64
	firstFailure := make(chan string, 1)
	reject := func(format string, args ...interface{}) {
		select {
		case firstFailure <- fmt.Sprintf(format, args...):
		default:
		}
	}

	stopClients := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				body := bodies[rng.Intn(len(bodies))]
				if rng.Intn(4) == 0 {
					body = uniqueBody(rng.Int63())
				}
				resp, err := httpc.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					// The server must never die; a transport error is a
					// harness failure.
					badStatus.Add(1)
					reject("transport error: %v", err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					badStatus.Add(1)
					reject("status %d body %s", resp.StatusCode, data)
					continue
				}
				statusCounts[resp.StatusCode].Add(1)
				if resp.StatusCode == http.StatusOK {
					var r AnalyzeResponse
					if err := json.Unmarshal(data, &r); err != nil || (r.Status != "ok" && r.Status != "degraded") {
						badBody.Add(1)
						reject("malformed 200 body: %s", data)
					}
				} else {
					var r ErrorResponse
					if err := json.Unmarshal(data, &r); err != nil || r.Error.Class == "" {
						badBody.Add(1)
						reject("malformed error body (%d): %s", resp.StatusCode, data)
					}
				}
			}
		}(int64(c) + 1)
	}

	time.Sleep(duration)
	close(stopClients)
	wg.Wait()
	close(stopFaults)
	<-faultsDone

	// --- Recovery window: faults are gone; the breaker must close. ----
	// Probes use fresh sources: a result-cache hit is served before the
	// breaker and would never half-open it.
	recoverDeadline := time.Now().Add(10 * time.Second)
	for probe := int64(1); ; probe++ {
		resp, err := httpc.Post(base+"/v1/analyze", "application/json", bytes.NewReader(uniqueBody(-probe)))
		if err != nil {
			t.Fatalf("recovery request: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if s.Stats().Breaker.State == "closed" && resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("breaker never recovered: %+v", s.Stats().Breaker)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Verdicts -----------------------------------------------------
	select {
	case msg := <-firstFailure:
		t.Errorf("soak violation: %s", msg)
	default:
	}
	if n := badStatus.Load(); n > 0 {
		t.Errorf("%d responses outside {200,400,422,429,503}", n)
	}
	if n := badBody.Load(); n > 0 {
		t.Errorf("%d responses with malformed JSON bodies", n)
	}
	st := s.Stats()
	if st.Breaker.Trips < 1 {
		t.Errorf("breaker never tripped during the soak: %+v", st.Breaker)
	}
	total := int64(0)
	for code := range statusCounts {
		if n := statusCounts[code].Load(); n > 0 {
			t.Logf("status %d: %d", code, n)
			total += n
		}
	}
	t.Logf("requests=%d ok=%d degraded=%d shed=%d input=%d internal=%d deadline=%d breaker-rejects=%d trips=%d reopens=%d",
		st.Requests, st.OK, st.Degraded, st.Shed, st.InputErrors,
		st.InternalFails, st.DeadlineFails, st.BreakerOpen, st.Breaker.Trips, st.Breaker.Reopens)
	if total == 0 {
		t.Fatal("soak made no requests")
	}
	if st.OK+st.Degraded == 0 {
		t.Error("no request ever succeeded during the soak")
	}
	if st.InternalFails+st.BreakerOpen == 0 {
		t.Error("fault injection never produced an internal failure")
	}
	if st.ResultCache == nil || st.AnalysisCache == nil {
		t.Error("cache counters missing from stats snapshot")
	} else {
		t.Logf("result cache: %+v", *st.ResultCache)
		t.Logf("analysis cache: hits=%d misses=%d evictions=%d entries=%d",
			st.AnalysisCache.Hits, st.AnalysisCache.Misses, st.AnalysisCache.Evictions, st.AnalysisCache.Entries)
		if st.ResultCache.Hits == 0 {
			t.Error("result cache never hit during the soak")
		}
		if st.AnalysisCache.Hits == 0 {
			t.Error("analysis cache never hit during the soak")
		}
	}

	// --- Drain: goroutines must return to (near) baseline. ------------
	// Hang up the client's pooled keep-alive connections first:
	// Shutdown treats young StateNew connections as possibly-busy and
	// would otherwise wait several seconds for them to age out.
	httpc.CloseIdleConnections()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	goroutineDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		}
		if time.Now().After(goroutineDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck at %d (baseline %d)\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
