package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives the breaker's now() seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration, probes int) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown, probes)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b.now = clk.now
	return b, clk
}

func mustAllow(t *testing.T, b *Breaker) {
	t.Helper()
	if ok, _ := b.Allow(); !ok {
		t.Fatalf("Allow refused in state %s", b.Snapshot().State)
	}
}

func mustRefuse(t *testing.T, b *Breaker) time.Duration {
	t.Helper()
	ok, after := b.Allow()
	if ok {
		t.Fatalf("Allow admitted in state %s, want refusal", b.Snapshot().State)
	}
	return after
}

// TestBreakerTripsAtThreshold: exactly threshold consecutive failures
// open the circuit; a success in between resets the streak.
func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, 1)
	for i := 0; i < 2; i++ {
		mustAllow(t, b)
		b.Failure("panic:solve")
	}
	// A success wipes the streak: two more failures must not trip.
	mustAllow(t, b)
	b.Success()
	for i := 0; i < 2; i++ {
		mustAllow(t, b)
		b.Failure("panic:solve")
	}
	if s := b.Snapshot(); s.State != "closed" || s.Trips != 0 {
		t.Fatalf("breaker tripped early: %+v", s)
	}
	mustAllow(t, b)
	b.Failure("panic:solve")
	s := b.Snapshot()
	if s.State != "open" || s.Trips != 1 || s.LastTripClass != "panic:solve" {
		t.Fatalf("breaker did not trip at threshold: %+v", s)
	}
}

// TestBreakerOpenRejectsWithRetryAfter: while open, Allow refuses with
// the remaining cooldown.
func TestBreakerOpenRejectsWithRetryAfter(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second, 1)
	mustAllow(t, b)
	b.Failure("exhausted:solver-steps")
	after := mustRefuse(t, b)
	if after != 10*time.Second {
		t.Fatalf("Retry-After = %v, want 10s", after)
	}
	clk.advance(4 * time.Second)
	if after := mustRefuse(t, b); after != 6*time.Second {
		t.Fatalf("Retry-After = %v, want 6s", after)
	}
}

// TestBreakerHalfOpenSingleProbe: after the cooldown one probe is
// admitted at a time; concurrent requests are refused until the probe
// reports back.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, 2)
	mustAllow(t, b)
	b.Failure("panic:jump")
	clk.advance(time.Second)

	mustAllow(t, b) // the probe
	mustRefuse(t, b)
	b.Success() // probe 1 of 2 succeeds: still half-open
	if s := b.Snapshot(); s.State != "half-open" {
		t.Fatalf("state = %s after 1/2 probes, want half-open", s.State)
	}
	mustAllow(t, b)
	b.Success() // probe 2 of 2: closed
	if s := b.Snapshot(); s.State != "closed" {
		t.Fatalf("state = %s after probes, want closed", s.State)
	}
}

// TestBreakerProbeFailureReopens: a failed probe sends the circuit
// straight back to open for a fresh cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, 1)
	mustAllow(t, b)
	b.Failure("panic:solve")
	clk.advance(time.Second)
	mustAllow(t, b)
	b.Failure("panic:solve")
	s := b.Snapshot()
	if s.State != "open" || s.Reopens != 1 {
		t.Fatalf("probe failure did not reopen: %+v", s)
	}
	mustRefuse(t, b)
	// And the path back still works.
	clk.advance(time.Second)
	mustAllow(t, b)
	b.Success()
	if s := b.Snapshot(); s.State != "closed" {
		t.Fatalf("state = %s, want closed", s.State)
	}
}

// TestBreakerHalfOpenConcurrentProbes: when the cooldown elapses and a
// stampede of concurrent requests hits the half-open circuit, exactly
// one is admitted as the probe; every loser is refused with a positive
// Retry-After (the serve layer renders that refusal as 503 +
// Retry-After). After the probe succeeds the circuit closes and admits
// freely again.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, 1)
	mustAllow(t, b)
	b.Failure("panic:solve")
	clk.advance(time.Second)

	const stampede = 32
	var admitted, refused atomic.Int64
	var badRetryAfter atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, after := b.Allow()
			if ok {
				admitted.Add(1)
				return
			}
			refused.Add(1)
			if after <= 0 {
				badRetryAfter.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted.Load())
	}
	if refused.Load() != stampede-1 {
		t.Fatalf("refused = %d, want %d", refused.Load(), stampede-1)
	}
	if n := badRetryAfter.Load(); n > 0 {
		t.Errorf("%d refusals carried a non-positive Retry-After", n)
	}
	if s := b.Snapshot(); s.State != "half-open" {
		t.Fatalf("state = %s with probe in flight, want half-open", s.State)
	}
	// The winning probe reports success: closed, and the stampede may
	// proceed.
	b.Success()
	if s := b.Snapshot(); s.State != "closed" {
		t.Fatalf("state = %s after probe success, want closed", s.State)
	}
	mustAllow(t, b)
	b.Success()
}

// TestBreakerFailureBackoffProportional: Failure's suggested backoff
// grows with the failure streak (cooldown × streak/threshold while
// closed) and reaches the full cooldown on the failure that trips or
// reopens the circuit.
func TestBreakerFailureBackoffProportional(t *testing.T) {
	b, clk := newTestBreaker(4, 8*time.Second, 1)
	want := []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second, 8 * time.Second}
	for i, w := range want {
		mustAllow(t, b)
		if got := b.Failure("panic:solve"); got != w {
			t.Fatalf("failure %d: backoff = %v, want %v", i+1, got, w)
		}
	}
	if s := b.Snapshot(); s.State != "open" {
		t.Fatalf("state = %s after threshold failures, want open", s.State)
	}
	// A probe failure reopens at the full cooldown again.
	clk.advance(8 * time.Second)
	mustAllow(t, b)
	if got := b.Failure("panic:solve"); got != 8*time.Second {
		t.Fatalf("reopen backoff = %v, want the full cooldown", got)
	}
}

// TestBreakerNeutralReleasesProbe: a user-fault outcome frees the probe
// slot without a health verdict in either direction.
func TestBreakerNeutralReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, 1)
	mustAllow(t, b)
	b.Failure("panic:sem")
	clk.advance(time.Second)
	mustAllow(t, b)
	b.Neutral() // probe turned out to be a 422: no verdict
	if s := b.Snapshot(); s.State != "half-open" {
		t.Fatalf("state = %s after neutral probe, want half-open", s.State)
	}
	mustAllow(t, b) // slot must be free again
	b.Success()
	if s := b.Snapshot(); s.State != "closed" {
		t.Fatalf("state = %s, want closed", s.State)
	}
}
