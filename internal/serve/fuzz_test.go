package serve

import (
	"encoding/json"
	"testing"
)

// FuzzJobManifest hammers the job-submission decode path: the manifest
// JSON is the only input the WAL journals verbatim, so everything the
// submit handler derives from it — config translation, fingerprinting,
// the re-marshalled spec the executor will decode after a crash — must
// hold together for arbitrary bytes, and a spec that validates once
// must round-trip through its journaled form to the same fingerprint.
func FuzzJobManifest(f *testing.F) {
	for _, seed := range []string{
		`{"jobs":[{"source":"PROGRAM P\nINTEGER I\nI = 1\nCALL Q(I)\nEND\nSUBROUTINE Q(N)\nINTEGER N\nPRINT *, N\nEND\n"}]}`,
		`{"tenant":"team-a","ttl_ms":60000,"jobs":[{"filename":"a.f","source":"PROGRAM P\nEND\n","config":{"kind":"polynomial","complete":true,"max_solver_steps":32},"want":{"jump_functions":true,"transformed":true}}]}`,
		`{"jobs":[{"source":"PROGRAM P\nEND\n","config":{"kind":"literal","gated":true,"max_rounds":2,"max_jf_expr_size":64},"timeout_ms":100}]}`,
		`{"jobs":[]}`,
		`{"jobs":[{"source":"X","config":{"kind":"psychic"}}]}`,
		`{"tenant":"","jobs":[{"source":""},{"source":"PROGRAM P\nEND\n"}]}`,
		`{"ttl_ms":-5,"jobs":[{"filename":"../../etc/passwd","source":"PROGRAM P\nEND\n"}]}`,
		`[1,2,3]`,
		`{"jobs": [{"source": 42}]}`,
		`{`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req JobSubmitRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // rejected at the handler's decode step
		}
		for i := range req.Jobs {
			jr := &req.Jobs[i]
			cfg, err := jr.Config.ToIPCP()
			if err != nil {
				continue // rejected at the handler's validation step
			}
			if jr.Filename == "" {
				jr.Filename = "request.f"
			}
			fp := fingerprintJob(jr, cfg)
			if fp == "" {
				t.Fatalf("job %d: accepted spec produced an empty fingerprint", i)
			}
			// The journaled form is json.Marshal(jr); the executor decodes
			// it after a crash. It must stay decodable and must fingerprint
			// identically, or replay would re-run under a different
			// identity than the one acknowledged.
			spec, err := json.Marshal(jr)
			if err != nil {
				t.Fatalf("job %d: accepted spec does not journal: %v", i, err)
			}
			var back AnalyzeRequest
			if err := json.Unmarshal(spec, &back); err != nil {
				t.Fatalf("job %d: journaled spec does not decode: %v", i, err)
			}
			bcfg, err := back.Config.ToIPCP()
			if err != nil {
				t.Fatalf("job %d: journaled config no longer validates: %v", i, err)
			}
			if got := fingerprintJob(&back, bcfg); got != fp {
				t.Fatalf("job %d: fingerprint changed across the journal round-trip: %q != %q", i, got, fp)
			}
		}
	})
}
