// Package serve wraps the analyzer in a crash-only HTTP analysis
// service. The library already guarantees that one analysis never
// panics the process (internal/guard); this package turns that into
// availability guarantees for a long-running process handling many
// hostile requests at once:
//
//   - Admission control: a bounded work queue (MaxConcurrency workers,
//     QueueDepth waiters) that sheds overload with 429 + Retry-After
//     instead of accumulating goroutines.
//   - Per-request deadlines: every analysis runs under a context
//     deadline wired through ipcp.AnalyzeContext in FailFast mode, so a
//     slow request dies cleanly instead of wedging a worker.
//   - Retry with degradation: transiently failed requests are re-run
//     with capped, jittered exponential backoff at progressively
//     cheaper configurations (the guard layer's Polynomial →
//     PassThrough → Intraprocedural → Literal chain) before giving up.
//   - Circuit breaking: consecutive internal failures trip the breaker
//     to fail-fast 503s; after a cooldown it half-opens and probes its
//     way back to closed.
//   - Caching: an incremental-analysis cache (ipcp.Cache) shared by all
//     requests reuses per-unit artifacts across analyses, and a result
//     cache replays whole clean responses byte-for-byte for repeated
//     (source, config, want) requests. Both are LRU with byte budgets
//     and report hit/miss/eviction counters in /statsz; a result-cache
//     hit is served even while the breaker is open or workers are busy.
//   - Observability and lifecycle: /healthz, /readyz, a /statsz counter
//     snapshot, and graceful shutdown that drains in-flight work under
//     a drain deadline. Profiling handlers (net/http/pprof) are
//     registered only when EnablePprof is set.
//
// Every response is JSON; the only status codes a well-formed request
// can see are 200 (ok or degraded), 422 (program errors), 429 (shed),
// and 503 (breaker open, draining, deadline, or internal failure after
// retries). Malformed HTTP/JSON gets 400/405.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain"
	"repro/internal/jobs"
	"repro/internal/pipeline"
	"repro/ipcp"
)

// Config tunes the service. The zero value of each field selects the
// documented default.
type Config struct {
	// MaxConcurrency is the number of analyses that may run at once
	// (default GOMAXPROCS).
	MaxConcurrency int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the ones running; anything past MaxConcurrency+QueueDepth
	// is shed with 429 (default 2*MaxConcurrency).
	QueueDepth int
	// RequestTimeout caps one request's wall clock, retries included
	// (default 10s). A request's timeout_ms may shorten it, never
	// lengthen it.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// MaxRetries caps re-runs after a transient failure (default 3).
	// Negative disables the retry/degrade ladder entirely: every
	// response is served at full requested fidelity or not at all — the
	// right setting when a coordinator in front of this server owns the
	// retry policy and reroutes failures to other backends instead.
	MaxRetries int
	// RetryBaseDelay and RetryMaxDelay shape the capped, jittered
	// exponential backoff between attempts (defaults 5ms and 250ms).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold is the consecutive internal failures that trip
	// the circuit (default 5); BreakerCooldown is how long it stays open
	// before half-opening (default 2s); BreakerProbes is the consecutive
	// probe successes that close it again (default 2).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerProbes    int
	// AnalysisParallelism is the per-request ipcp.Config.Parallelism
	// (default 1: each analysis runs serially; the service gets its
	// parallelism from concurrent requests, not nested worker pools).
	AnalysisParallelism int
	// MaxBodyBytes caps the request body (default 8 MiB — comfortably
	// above the parser's own 4 MiB source cap).
	MaxBodyBytes int64
	// AnalysisCacheBytes bounds the incremental-analysis cache shared
	// by every request (default 64 MiB). Negative disables the cache;
	// results are byte-identical either way.
	AnalysisCacheBytes int64
	// ResultCacheBytes bounds the whole-response result cache (default
	// 32 MiB). Negative disables it.
	ResultCacheBytes int64
	// EnablePprof registers the net/http/pprof handlers under
	// /debug/pprof/ on the service mux. Off by default: the profiling
	// endpoints expose internals and cost memory, so they are strictly
	// opt-in (the binary's -pprof flag).
	EnablePprof bool

	// SessionLimit caps resident compiler-daemon sessions (default 32).
	// Negative disables the session API (its endpoints answer 404).
	SessionLimit int
	// SessionBytes bounds the estimated retained size of all resident
	// sessions (default 256 MiB); the least-recently-used session is
	// evicted when either bound is exceeded.
	SessionBytes int64
	// SessionTTL expires sessions idle longer than this (default 10m).
	SessionTTL time.Duration

	// JobsDir enables the durable batch/async job API (/v1/jobs): the
	// write-ahead log lives here and is replayed on startup, so a crash
	// mid-batch loses no acknowledged job. Empty disables the job API
	// (its endpoints answer 404).
	JobsDir string
	// JobWorkers is the number of concurrent job executions (default
	// max(1, MaxConcurrency/2) — async work shares the machine with
	// synchronous requests but must not be able to monopolize it).
	JobWorkers int
	// JobPolicy tunes job retries, TTLs, and retention; JobQuota is the
	// default per-tenant quota and JobTenants pins per-tenant overrides.
	JobPolicy  ipcp.JobPolicy
	JobQuota   ipcp.TenantQuota
	JobTenants map[string]ipcp.TenantQuota
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrency
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 250 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	if c.AnalysisParallelism == 0 {
		c.AnalysisParallelism = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.AnalysisCacheBytes == 0 {
		c.AnalysisCacheBytes = 64 << 20
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 32 << 20
	}
	if c.SessionLimit == 0 {
		c.SessionLimit = 32
	}
	if c.SessionBytes == 0 {
		c.SessionBytes = 256 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = c.MaxConcurrency / 2
		if c.JobWorkers < 1 {
			c.JobWorkers = 1
		}
	}
	return c
}

// Server is the crash-only analysis service.
type Server struct {
	cfg      Config
	sem      chan struct{}
	queued   atomic.Int64
	inFlight atomic.Int64
	draining atomic.Bool
	breaker  *Breaker
	started  time.Time
	// http is published by Serve and read by Shutdown/Close; atomic
	// because a supervisor may restart Serve in a fresh goroutine and
	// later shut the server down from another, with no other
	// synchronization between the two.
	http     atomic.Pointer[http.Server]
	memo     *ipcp.Cache     // nil when AnalysisCacheBytes < 0
	results  *resultCache    // nil when ResultCacheBytes < 0
	jobs     *jobs.Manager   // nil when JobsDir is empty
	sessions *sessionManager // nil when SessionLimit < 0
	// reqPL runs the per-request analysis phase through the shared pass
	// manager, with the retry/degrade ladder attached as middleware.
	reqPL *pipeline.Pipeline[*reqState]

	// test seams
	sleep  func(ctx context.Context, d time.Duration)
	jitter func() float64

	stats serverStats
}

// serverStats is the /statsz counter set. All counters are monotonic.
type serverStats struct {
	requests     atomic.Int64 // POST /v1/analyze received
	ok           atomic.Int64 // 200, no degradation
	degraded     atomic.Int64 // 200 with degradations
	shed         atomic.Int64 // 429
	badRequests  atomic.Int64 // 400/405
	inputErrors  atomic.Int64 // 422
	breakeropen  atomic.Int64 // 503 rejected by open breaker
	drainRejects atomic.Int64 // 503 while draining
	deadline     atomic.Int64 // 503 deadline exhausted
	internal     atomic.Int64 // 503 internal failure after retries
	abandoned    atomic.Int64 // client gone while queued
	retriedReqs  atomic.Int64 // requests retried at least once
	retriesTotal atomic.Int64 // total retry attempts
	// latencyEWMA is an exponentially weighted moving average of served
	// analyses' wall time in nanoseconds (α = 1/8). It sizes the derived
	// Retry-After on shed responses: a queue of depth d drains in about
	// d/workers · EWMA, so that is what clients are told to wait.
	latencyEWMA atomic.Int64

	mu          sync.Mutex
	degByAxis   map[string]int64 // degradations by budget axis
	panicsPhase map[string]int64 // internal errors by pipeline phase
	phaseAgg    map[string]*PhaseLatency
}

// New returns a Server over cfg (zero-value fields defaulted). The
// only failure mode is the durable job subsystem: when cfg.JobsDir is
// set, its write-ahead log is opened and replayed here, and a damaged
// log refuses to start rather than silently dropping acknowledged
// jobs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrency),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerProbes),
		started: time.Now(),
		jitter:  rand.Float64,
	}
	if cfg.AnalysisCacheBytes > 0 {
		s.memo = ipcp.NewCache(ipcp.CacheOptions{MaxBytes: cfg.AnalysisCacheBytes})
	}
	if cfg.ResultCacheBytes > 0 {
		s.results = newResultCache(cfg.ResultCacheBytes)
	}
	if cfg.SessionLimit > 0 {
		s.sessions = newSessionManager(cfg.SessionLimit, cfg.SessionBytes, cfg.SessionTTL)
	}
	s.sleep = func(ctx context.Context, d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	s.stats.degByAxis = make(map[string]int64)
	s.stats.panicsPhase = make(map[string]int64)
	s.stats.phaseAgg = make(map[string]*PhaseLatency)
	s.reqPL = pipeline.New[*reqState]().Use(s.retrying())
	if cfg.JobsDir != "" {
		m, err := jobs.New(jobs.Config{
			Dir:          cfg.JobsDir,
			Executor:     jobExecutor{s},
			Workers:      cfg.JobWorkers,
			Policy:       cfg.JobPolicy,
			DefaultQuota: cfg.JobQuota,
			Tenants:      cfg.JobTenants,
		})
		if err != nil {
			return nil, err
		}
		s.jobs = m
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSessionByID)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/watch", s.handleJobsWatch)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	s.http.Store(hs)
	return hs.Serve(l)
}

// BeginDrain flips the server to draining without closing anything:
// /readyz answers 503 and new analyses are refused with class
// "draining", while the listener keeps accepting connections. Callers
// that sit behind a load balancer or coordinator call this first, wait
// for health checks to route traffic away, then call Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains the server: new work is refused (readyz flips, 503s
// with class "draining", job submissions rejected), in-flight requests
// and running job attempts get up to DrainTimeout to finish, and the
// job queue is checkpointed — queued jobs survive to the next boot
// instead of being discarded. Connections close last.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	var httpErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		if hs := s.http.Load(); hs != nil {
			httpErr = hs.Shutdown(dctx)
		}
	}()
	var jobsErr error
	if s.jobs != nil {
		jobsErr = s.jobs.Drain(dctx)
	}
	<-done
	if httpErr != nil {
		return httpErr
	}
	return jobsErr
}

// Close abruptly terminates the server: the listener and every active
// connection are closed without waiting for in-flight work, and the
// job subsystem is crash-killed (no checkpoint — on-disk state is
// exactly what kill -9 would leave). It exists for chaos harnesses
// that need to kill a backend mid-request the way a crashed process
// would; production shutdown is Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	if s.jobs != nil {
		s.jobs.Kill()
	}
	hs := s.http.Load()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

// ---------------------------------------------------------------------
// Wire types

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	Filename string        `json:"filename"`
	Source   string        `json:"source"`
	Config   RequestConfig `json:"config"`
	// TimeoutMs shortens (never lengthens) the server's RequestTimeout
	// for this request.
	TimeoutMs int         `json:"timeout_ms"`
	Want      RequestWant `json:"want"`
}

// RequestConfig mirrors the CLI's configuration axes in JSON.
type RequestConfig struct {
	// Kind: literal | intra | passthrough | polynomial (default
	// passthrough).
	Kind string `json:"kind"`
	// Mod / Ret default to true when absent.
	Mod      *bool  `json:"mod"`
	Ret      *bool  `json:"ret"`
	Complete bool   `json:"complete"`
	Gated    bool   `json:"gated"`
	Solver   string `json:"solver"` // worklist | binding
	// Domain: abstract domain to propagate — const (default) |
	// interval | parity | taint | cond-const.
	Domain string `json:"domain"`

	MaxSolverSteps int `json:"max_solver_steps"`
	MaxRounds      int `json:"max_rounds"`
	MaxExprSize    int `json:"max_expr_size"`
}

// RequestWant selects optional result payloads.
type RequestWant struct {
	JumpFunctions bool `json:"jump_functions"`
	Transformed   bool `json:"transformed"`
}

// ConstantJSON is one discovered constant.
type ConstantJSON struct {
	Name       string `json:"name"`
	Value      int64  `json:"value"`
	Global     bool   `json:"global,omitempty"`
	Block      string `json:"block,omitempty"`
	Referenced bool   `json:"referenced"`
}

// FactJSON is one abstract-domain fact: the named parameter or COMMON
// variable satisfies Value ("[1,10]", "even", "clean", …) on every
// entry to its procedure. Populated only for non-constant domains —
// for the constant domains, facts and constants coincide.
type FactJSON struct {
	Name   string `json:"name"`
	Value  string `json:"value"`
	Global bool   `json:"global,omitempty"`
	Block  string `json:"block,omitempty"`
}

// DegradationJSON is one graceful-degradation step the analysis took.
type DegradationJSON struct {
	Axis   string `json:"axis"`
	From   string `json:"from"`
	To     string `json:"to"`
	Detail string `json:"detail"`
}

// AnalyzeResponse is the 200 body.
type AnalyzeResponse struct {
	Status        string                    `json:"status"` // "ok" | "degraded"
	Config        string                    `json:"config"` // configuration actually served
	Retries       int                       `json:"retries"`
	Constants     map[string][]ConstantJSON `json:"constants"`
	// Domain and Facts report abstract-domain results; both are absent
	// for the default constant domain, keeping its responses
	// byte-identical to earlier wire versions.
	Domain        string                `json:"domain,omitempty"`
	Facts         map[string][]FactJSON `json:"facts,omitempty"`
	Substitutions int                   `json:"substitutions"`
	Degradations  []DegradationJSON         `json:"degradations,omitempty"`
	Warnings      []string                  `json:"warnings,omitempty"`
	JFEvaluations int                       `json:"jf_evaluations"`
	SolverRounds  int                       `json:"solver_rounds"`
	JumpFunctions []string                  `json:"jump_functions,omitempty"`
	Transformed   string                    `json:"transformed,omitempty"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries a machine-readable class alongside the message.
// Classes: bad-request, method, input, shed, draining, breaker-open,
// exhausted:<axis>, panic:<phase>, canceled, handler-panic.
type ErrorBody struct {
	Class   string `json:"class"`
	Message string `json:"message"`
}

// StatsSnapshot is the /statsz body.
type StatsSnapshot struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Draining       bool             `json:"draining"`
	MaxConcurrency int              `json:"max_concurrency"`
	QueueDepth     int              `json:"queue_depth"`
	InFlight       int64            `json:"in_flight"`
	Queued         int64            `json:"queued"`
	Requests       int64            `json:"requests"`
	OK             int64            `json:"ok"`
	Degraded       int64            `json:"degraded"`
	Shed           int64            `json:"shed"`
	BadRequests    int64            `json:"bad_requests"`
	InputErrors    int64            `json:"input_errors"`
	BreakerOpen    int64            `json:"breaker_rejects"`
	DrainRejects   int64            `json:"drain_rejects"`
	DeadlineFails  int64            `json:"deadline_failures"`
	InternalFails  int64            `json:"internal_failures"`
	Abandoned      int64            `json:"abandoned"`
	RetriedReqs    int64            `json:"requests_retried"`
	RetriesTotal   int64            `json:"retries_total"`
	DegByAxis      map[string]int64 `json:"degradations_by_axis,omitempty"`
	PanicsByPhase  map[string]int64 `json:"panics_by_phase,omitempty"`
	// PhaseLatencies aggregates every served analysis's per-phase wall
	// time (ipcp.Result.PhaseStats) across the server's lifetime, keyed
	// by phase name (lookup, parse, sem, graph, jump, solve, subst,
	// assemble). Empty until the first 200 response.
	PhaseLatencies map[string]PhaseLatency `json:"phase_latencies,omitempty"`
	Breaker        BreakerSnapshot         `json:"breaker"`
	// AnalysisCache counts the incremental-analysis cache's memoized
	// lookups at every granularity (front-end builds, whole-config
	// phase results, per-unit artifacts); ResultCache counts whole
	// replayed responses. Either is absent when that cache is disabled.
	AnalysisCache *CacheCounters `json:"analysis_cache,omitempty"`
	ResultCache   *CacheCounters `json:"result_cache,omitempty"`
	// Jobs is the durable job subsystem's counter block (queue depths,
	// per-tenant counters, WAL fsync latency, poison count). Absent
	// when the job API is disabled.
	Jobs *jobs.Stats `json:"jobs,omitempty"`
	// Sessions is the compiler-daemon session block: resident sessions,
	// eviction counters, and per-session edit/reuse statistics. Absent
	// when the session API is disabled.
	Sessions *SessionCounters `json:"sessions,omitempty"`
}

// PhaseLatency is one phase's latency aggregate across every 200
// response served: how many times the phase ran, its total wall time,
// and the largest single-response wall time observed.
type PhaseLatency struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// ---------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots every counter (exported for the soak harness and the
// binary's shutdown summary).
func (s *Server) Stats() StatsSnapshot {
	st := &s.stats
	snap := StatsSnapshot{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Draining:       s.draining.Load(),
		MaxConcurrency: s.cfg.MaxConcurrency,
		QueueDepth:     s.cfg.QueueDepth,
		InFlight:       s.inFlight.Load(),
		Queued:         s.queued.Load() - s.inFlight.Load(),
		Requests:       st.requests.Load(),
		OK:             st.ok.Load(),
		Degraded:       st.degraded.Load(),
		Shed:           st.shed.Load(),
		BadRequests:    st.badRequests.Load(),
		InputErrors:    st.inputErrors.Load(),
		BreakerOpen:    st.breakeropen.Load(),
		DrainRejects:   st.drainRejects.Load(),
		DeadlineFails:  st.deadline.Load(),
		InternalFails:  st.internal.Load(),
		Abandoned:      st.abandoned.Load(),
		RetriedReqs:    st.retriedReqs.Load(),
		RetriesTotal:   st.retriesTotal.Load(),
		Breaker:        s.breaker.Snapshot(),
	}
	if snap.Queued < 0 {
		snap.Queued = 0
	}
	st.mu.Lock()
	if len(st.degByAxis) > 0 {
		snap.DegByAxis = make(map[string]int64, len(st.degByAxis))
		for k, v := range st.degByAxis {
			snap.DegByAxis[k] = v
		}
	}
	if len(st.panicsPhase) > 0 {
		snap.PanicsByPhase = make(map[string]int64, len(st.panicsPhase))
		for k, v := range st.panicsPhase {
			snap.PanicsByPhase[k] = v
		}
	}
	if len(st.phaseAgg) > 0 {
		snap.PhaseLatencies = make(map[string]PhaseLatency, len(st.phaseAgg))
		for k, v := range st.phaseAgg {
			snap.PhaseLatencies[k] = *v
		}
	}
	st.mu.Unlock()
	if s.memo != nil {
		cs := s.memo.Stats()
		snap.AnalysisCache = &CacheCounters{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, Bytes: cs.Bytes, MaxBytes: cs.MaxBytes,
		}
	}
	if s.results != nil {
		rc := s.results.counters()
		snap.ResultCache = &rc
	}
	if s.jobs != nil {
		js := s.jobs.Stats()
		snap.Jobs = &js
	}
	if s.sessions != nil {
		sc := s.sessions.counters()
		snap.Sessions = &sc
	}
	return snap
}

// handleAnalyze is the crash-only request path: admission control →
// parse → breaker → worker slot → deadline-bounded retry ladder.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	// Last-ditch insurance: the analyzer contract says faults surface as
	// errors, but a handler bug must still produce a response, not kill
	// the connection's goroutine state.
	defer func() {
		if rec := recover(); rec != nil {
			s.writeError(w, http.StatusServiceUnavailable, "handler-panic", fmt.Sprint(rec))
		}
	}()
	if r.Method != http.MethodPost {
		s.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	s.stats.requests.Add(1)

	if s.draining.Load() {
		s.stats.drainRejects.Add(1)
		// By the time the drain budget has passed, either a replacement
		// process is serving or this one is gone; both make the budget the
		// honest back-off horizon.
		w.Header().Set("Retry-After", retryAfter(s.cfg.DrainTimeout))
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	// Admission control: bound running + waiting requests; shed the rest
	// immediately so overload costs one counter increment, not a
	// goroutine parked forever.
	if s.queued.Add(1) > int64(s.cfg.MaxConcurrency+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.stats.shed.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.shedBackoff()))
		s.writeError(w, http.StatusTooManyRequests, "shed", "work queue full")
		return
	}
	defer s.queued.Add(-1)

	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	cfg, err := req.Config.ToIPCP()
	if err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	// The service gets its parallelism from concurrent requests;
	// per-request analysis stays at the configured (default serial)
	// worker count, and FailFast hands the retry/degrade policy to the
	// ladder below instead of the in-library chain.
	cfg.Parallelism = s.cfg.AnalysisParallelism
	cfg.FailFast = true
	cfg.Cache = s.memo

	if req.Filename == "" {
		req.Filename = "request.f"
	}
	// A repeated clean request replays its stored response without
	// consuming a worker slot or a breaker verdict — cached results stay
	// available even while the breaker is open.
	key := resultKey(req.Filename, req.Source, cfg, req.Want)
	if s.results != nil {
		if body, ok := s.results.get(key); ok {
			s.stats.ok.Add(1)
			s.writeRaw(w, http.StatusOK, body)
			return
		}
	}

	if ok, after := s.breaker.Allow(); !ok {
		s.stats.breakeropen.Add(1)
		w.Header().Set("Retry-After", retryAfter(after))
		s.writeError(w, http.StatusServiceUnavailable, "breaker-open", "circuit breaker open")
		return
	}
	// From here on the breaker must hear back exactly once.

	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.breaker.Neutral()
		s.stats.abandoned.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "canceled", "client went away while queued")
		return
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// The breaker has admitted the request; run the analysis phase
	// through the pass manager, whose retrying middleware owns the
	// ladder and writes the response.
	_ = s.reqPL.RunPhase(ctx, phaseRequest, &reqState{w: w, req: &req, cfg: cfg, key: key, start: time.Now()})
}

// shedBackoff estimates how long a shed client should wait before the
// queue has drained: a full queue is capacity requests deep, each
// worker retires one about every EWMA-latency interval. Before any
// request has completed (no latency signal yet) it falls back to 1s;
// the estimate is capped at 30s so a latency spike cannot tell clients
// to go away for minutes, and floored at 1s: "Retry-After: 0" reads as
// "retry immediately" and turns shedding into a tight retry loop, so
// the floor is enforced here at derivation (and again in retryAfter's
// rendering) so no path can emit it.
func (s *Server) shedBackoff() time.Duration {
	ewma := time.Duration(s.stats.latencyEWMA.Load())
	if ewma <= 0 {
		return time.Second
	}
	capacity := s.cfg.MaxConcurrency + s.cfg.QueueDepth
	rounds := (capacity + s.cfg.MaxConcurrency - 1) / s.cfg.MaxConcurrency
	d := time.Duration(rounds) * ewma
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// observeLatency folds one served analysis's wall time into the EWMA
// (α = 1/8) that sizes shed Retry-After values.
func (s *Server) observeLatency(d time.Duration) {
	obs := int64(d)
	for {
		old := s.stats.latencyEWMA.Load()
		next := obs
		if old > 0 {
			next = old + (obs-old)/8
		}
		if s.stats.latencyEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// reqState is one request's pipeline state: the response writer the
// ladder reports into, the (progressively degraded) configuration, and
// the attempt's result.
type reqState struct {
	w       http.ResponseWriter
	req     *AnalyzeRequest
	cfg     ipcp.Config
	key     string
	start   time.Time
	retries int
	res     *ipcp.Result
}

// phaseRequest is one deadline-bounded analysis attempt.
var phaseRequest = pipeline.Phase[*reqState]{
	Name: "analyze",
	Run: func(ctx context.Context, st *reqState) error {
		res, err := ipcp.AnalyzeContext(ctx, st.req.Filename, st.req.Source, st.cfg)
		if err != nil {
			return err
		}
		st.res = res
		return nil
	},
}

// retrying is the service's retry/degrade ladder as pipeline middleware
// around the analysis attempt: transient failures re-run the phase at a
// cheaper configuration after a capped, jittered backoff; every outcome
// writes the response and settles the breaker exactly once.
func (s *Server) retrying() pipeline.Middleware[*reqState] {
	return func(phase string, next pipeline.RunFunc[*reqState]) pipeline.RunFunc[*reqState] {
		return func(ctx context.Context, st *reqState) error {
			for {
				err := next(ctx, st)
				if err == nil {
					s.breaker.Success()
					s.observeLatency(time.Since(st.start))
					s.writeResult(st.w, st.req, st.cfg, st.res, st.retries, st.key)
					return nil
				}
				class, retryable, userFault := classify(err)
				if userFault {
					s.breaker.Neutral()
					s.stats.inputErrors.Add(1)
					s.writeError(st.w, http.StatusUnprocessableEntity, "input", err.Error())
					return nil
				}
				if errors.Is(err, context.Canceled) {
					// The client went away, not the analyzer: no breaker verdict.
					s.breaker.Neutral()
					s.stats.abandoned.Add(1)
					s.writeError(st.w, http.StatusServiceUnavailable, "canceled", "request canceled")
					return nil
				}
				s.recordFailureClass(err)
				if !retryable || st.retries >= s.cfg.MaxRetries || ctx.Err() != nil {
					// The breaker's verdict doubles as the back-off hint: the
					// closer the circuit is to (or into) its cooldown, the
					// longer the client is told to stay away.
					backoff := s.breaker.Failure(class)
					if class == "exhausted:deadline" {
						s.stats.deadline.Add(1)
					} else {
						s.stats.internal.Add(1)
					}
					st.w.Header().Set("Retry-After", retryAfter(backoff))
					s.writeError(st.w, http.StatusServiceUnavailable, class, err.Error())
					return nil
				}
				if st.retries == 0 {
					s.stats.retriedReqs.Add(1)
				}
				st.retries++
				s.stats.retriesTotal.Add(1)
				// Re-run cheaper: one step down the sound degradation chain per
				// retry (staying at Literal once there), after a capped, jittered
				// exponential backoff.
				st.cfg = degradeConfig(st.cfg)
				s.sleep(ctx, s.backoff(st.retries))
			}
		}
	}
}

// backoff returns the jittered, capped exponential delay before retry n
// (n >= 1): base·2^(n-1) capped at max, then jittered to [d/2, d).
func (s *Server) backoff(n int) time.Duration {
	d := s.cfg.RetryBaseDelay << (n - 1)
	if d > s.cfg.RetryMaxDelay || d <= 0 {
		d = s.cfg.RetryMaxDelay
	}
	return d/2 + time.Duration(s.jitter()*float64(d/2))
}

// degradeConfig steps one rung down the sound fallback chain (the same
// chain the in-library degradation uses): complete off, gated off, then
// Polynomial → PassThrough → Intraprocedural → Literal. At Literal it
// returns the config unchanged — a pure backoff retry.
func degradeConfig(c ipcp.Config) ipcp.Config {
	switch {
	case c.Complete:
		c.Complete = false
	case c.Gated:
		c.Gated = false
	case c.Kind > ipcp.Literal:
		c.Kind--
	}
	return c
}

// classify sorts an analysis error into a breaker class and retry
// policy. userFault errors (program diagnostics) are 422s that say
// nothing about service health.
func classify(err error) (class string, retryable, userFault bool) {
	var ie *ipcp.InternalError
	if errors.As(err, &ie) {
		return "panic:" + string(ie.Phase), true, false
	}
	var be *ipcp.BudgetError
	if errors.As(err, &be) {
		if be.Axis == "deadline" {
			// The clock is gone; a retry under the same dead context
			// cannot succeed.
			return "exhausted:deadline", false, false
		}
		return "exhausted:" + be.Axis, true, false
	}
	return "input", false, true
}

// recordFailureClass books per-phase / per-axis failure counters.
func (s *Server) recordFailureClass(err error) {
	var ie *ipcp.InternalError
	if errors.As(err, &ie) {
		s.stats.mu.Lock()
		s.stats.panicsPhase[string(ie.Phase)]++
		s.stats.mu.Unlock()
	}
}

// writeResult renders the 200 response, storing clean ones — status
// "ok", no retries, no degradations — in the result cache so identical
// requests replay identical bytes.
func (s *Server) writeResult(w http.ResponseWriter, req *AnalyzeRequest, cfg ipcp.Config, res *ipcp.Result, retries int, key string) {
	body, degraded := s.renderResult(req, cfg, res, retries)
	if degraded {
		s.stats.degraded.Add(1)
	} else {
		s.stats.ok.Add(1)
	}
	if s.results != nil && !degraded {
		s.results.put(key, body)
	}
	s.writeRaw(w, http.StatusOK, body)
}

// renderResult builds the 200 body for one finished analysis — the
// single rendering path shared by the synchronous handler and the job
// executor, which is what makes an async job's stored result
// byte-identical to the synchronous response for the same request. It
// folds per-phase latencies and degradation counters into /statsz but
// leaves response-disposition counters (ok/degraded, caching, writing)
// to the caller.
func (s *Server) renderResult(req *AnalyzeRequest, cfg ipcp.Config, res *ipcp.Result, retries int) (body []byte, degraded bool) {
	resp := AnalyzeResponse{
		Status:        "ok",
		Config:        describeConfig(cfg),
		Retries:       retries,
		Constants:     make(map[string][]ConstantJSON),
		Substitutions: res.SubstitutionCount(),
		Warnings:      res.Warnings,
	}
	evals, _, rounds := res.Stats()
	resp.JFEvaluations = evals
	resp.SolverRounds = rounds
	for proc, ks := range res.Constants() {
		out := make([]ConstantJSON, 0, len(ks))
		for _, k := range ks {
			out = append(out, ConstantJSON{
				Name: k.Name, Value: k.Value, Global: k.IsGlobal,
				Block: k.Block, Referenced: k.Referenced,
			})
		}
		resp.Constants[proc] = out
	}
	if d := res.Domain(); d != "const" {
		resp.Domain = d
		resp.Facts = make(map[string][]FactJSON)
		for proc, fs := range res.Facts() {
			out := make([]FactJSON, 0, len(fs))
			for _, f := range fs {
				out = append(out, FactJSON{Name: f.Name, Value: f.Value, Global: f.IsGlobal, Block: f.Block})
			}
			resp.Facts[proc] = out
		}
	}
	if len(res.Degradations) > 0 || retries > 0 {
		resp.Status = "degraded"
	}
	s.stats.mu.Lock()
	for _, d := range res.Degradations {
		s.stats.degByAxis[d.Axis]++
		resp.Degradations = append(resp.Degradations, DegradationJSON{
			Axis: d.Axis, From: d.From, To: d.To, Detail: d.Detail,
		})
	}
	for _, ps := range res.PhaseStats {
		agg := s.stats.phaseAgg[ps.Phase]
		if agg == nil {
			agg = &PhaseLatency{}
			s.stats.phaseAgg[ps.Phase] = agg
		}
		agg.Count += ps.Runs
		agg.TotalNs += ps.WallNs
		if ps.WallNs > agg.MaxNs {
			agg.MaxNs = ps.WallNs
		}
	}
	s.stats.mu.Unlock()
	if req.Want.JumpFunctions {
		resp.JumpFunctions = res.JumpFunctions()
	}
	if req.Want.Transformed {
		resp.Transformed = res.TransformedSource()
	}
	return renderJSON(resp), resp.Status == "degraded"
}

// describeConfig names the configuration a response was served at.
func describeConfig(c ipcp.Config) string {
	name := c.Kind.String()
	if c.Gated {
		name += "+gated"
	}
	if c.Complete {
		name += "+complete"
	}
	if c.Domain != "" && c.Domain != "const" {
		name = c.Domain + "/" + name
	}
	return name
}

func (s *Server) writeError(w http.ResponseWriter, status int, class, msg string) {
	s.writeJSON(w, status, ErrorResponse{Error: ErrorBody{Class: class, Message: msg}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	s.writeRaw(w, status, renderJSON(v))
}

func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // client gone: nothing useful to do
}

// renderJSON marshals exactly as the previous streaming encoder did
// (two-space indent, trailing newline) so response bytes — cached or
// not — stay stable.
func renderJSON(v interface{}) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Unreachable for the wire types; keep the response well-formed.
		return []byte("{}\n")
	}
	return append(b, '\n')
}

// retryAfter renders a duration as a whole-seconds Retry-After value
// (minimum 1).
func retryAfter(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ToIPCP converts the wire configuration, validating enum fields. The
// cluster coordinator uses it to derive the routing fingerprint from
// the same conversion the backend will apply.
func (rc RequestConfig) ToIPCP() (ipcp.Config, error) {
	cfg := ipcp.DefaultConfig()
	switch rc.Kind {
	case "", "passthrough":
		cfg.Kind = ipcp.PassThrough
	case "literal":
		cfg.Kind = ipcp.Literal
	case "intra":
		cfg.Kind = ipcp.Intraprocedural
	case "polynomial":
		cfg.Kind = ipcp.Polynomial
	default:
		return cfg, fmt.Errorf("unknown jump function kind %q", rc.Kind)
	}
	if rc.Mod != nil {
		cfg.UseMOD = *rc.Mod
	}
	if rc.Ret != nil {
		cfg.UseReturnJFs = *rc.Ret
	}
	cfg.Complete = rc.Complete
	cfg.Gated = rc.Gated
	switch rc.Solver {
	case "", "worklist":
		cfg.Solver = ipcp.Worklist
	case "binding":
		cfg.Solver = ipcp.BindingGraph
	default:
		return cfg, fmt.Errorf("unknown solver %q", rc.Solver)
	}
	cfg.Domain = rc.Domain
	if _, err := domain.Lookup(rc.Domain); err != nil {
		return cfg, err
	}
	if rc.Domain == "" {
		// Canonicalize so "" and "const" — the same configuration —
		// share one result-cache key and one routing fingerprint.
		cfg.Domain = "const"
	}
	cfg.Budget = ipcp.Budget{
		MaxSolverSteps: rc.MaxSolverSteps,
		MaxRounds:      rc.MaxRounds,
		MaxJFExprSize:  rc.MaxExprSize,
	}
	return cfg, nil
}
