package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a circuit breaker over one dependency. The analysis
// service runs one over the analyzer, watching internal-failure classes
// ("panic:<phase>", "exhausted:<axis>") — never user input errors; the
// cluster coordinator runs one per backend, watching transport errors
// and 503s. Failures becoming systemic trip the circuit to fail-fast
// rejection: threshold consecutive failures open it, a cooldown later
// it half-opens and admits one probe request at a time, and probes
// consecutive probe successes close it again. A probe failure reopens
// the circuit for another cooldown.
//
// The accounting contract: every request admitted by Allow must report
// back exactly once, via Success, Failure, or Neutral (user-fault
// outcomes that prove nothing about the dependency's health).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	probes    int
	now       func() time.Time // test seam

	mu             sync.Mutex
	state          breakerState
	consecFails    int
	openedAt       time.Time
	probeInFlight  bool
	probeSuccesses int
	trips          int64
	reopens        int64
	lastTripClass  string
	failsByClass   map[string]int64
}

// NewBreaker returns a closed circuit that opens after threshold
// consecutive failures, stays open for cooldown, and closes again after
// probes consecutive half-open probe successes.
func NewBreaker(threshold int, cooldown time.Duration, probes int) *Breaker {
	return &Breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		probes:       probes,
		now:          time.Now,
		failsByClass: make(map[string]int64),
	}
}

// Allow reports whether a request may proceed. When it refuses, the
// returned duration is the suggested Retry-After.
func (b *Breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.state = breakerHalfOpen
		b.probeSuccesses = 0
		b.probeInFlight = false
		fallthrough
	default: // half-open
		if b.probeInFlight {
			return false, b.cooldown / 4
		}
		b.probeInFlight = true
		return true, 0
	}
}

// Success reports a healthy completion of an admitted request.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.consecFails = 0
	case breakerHalfOpen:
		b.probeInFlight = false
		b.probeSuccesses++
		if b.probeSuccesses >= b.probes {
			b.state = breakerClosed
			b.consecFails = 0
		}
	}
}

// Failure reports an internal failure of an admitted request, keyed by
// class ("panic:solve", "exhausted:deadline", ...). The returned
// duration is a backoff suggestion for the failed caller, proportional
// to how close the circuit is to (or into) its cooldown: the full
// cooldown when this failure opened the circuit, a streak-proportional
// fraction of it while still closed.
func (b *Breaker) Failure(class string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failsByClass[class]++
	switch b.state {
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
			b.lastTripClass = class
			return b.cooldown
		}
		return b.cooldown * time.Duration(b.consecFails) / time.Duration(b.threshold)
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.reopens++
		b.lastTripClass = class
		b.probeInFlight = false
		return b.cooldown
	default: // already open (late failure report): the cooldown remainder
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining < 0 {
			remaining = 0
		}
		return remaining
	}
}

// Neutral releases an admitted request whose outcome says nothing about
// the dependency's health (malformed program, client disconnect): probe
// slots free up, failure streaks neither grow nor reset.
func (b *Breaker) Neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probeInFlight = false
	}
}

// BreakerSnapshot is the /statsz view of the circuit.
type BreakerSnapshot struct {
	State            string           `json:"state"`
	ConsecutiveFails int              `json:"consecutive_failures"`
	Trips            int64            `json:"trips"`
	Reopens          int64            `json:"reopens"`
	LastTripClass    string           `json:"last_trip_class,omitempty"`
	FailuresByClass  map[string]int64 `json:"failures_by_class,omitempty"`
}

// Snapshot copies the breaker's counters for /statsz.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		State:            b.state.String(),
		ConsecutiveFails: b.consecFails,
		Trips:            b.trips,
		Reopens:          b.reopens,
		LastTripClass:    b.lastTripClass,
	}
	if len(b.failsByClass) > 0 {
		s.FailuresByClass = make(map[string]int64, len(b.failsByClass))
		for k, v := range b.failsByClass {
			s.FailuresByClass[k] = v
		}
	}
	return s
}
