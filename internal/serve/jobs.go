package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/ipcp"
)

// This file fronts internal/jobs with the service's HTTP surface:
//
//	POST   /v1/jobs             submit a batch; 202 with one ack per job
//	GET    /v1/jobs?tenant=     list retained jobs
//	GET    /v1/jobs/{id}        poll one job's state
//	GET    /v1/jobs/{id}/result replay the stored result bytes verbatim
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/watch       NDJSON stream of state changes
//
// The endpoints exist only when Config.JobsDir is set; otherwise they
// answer 404. Submissions are validated (JSON shape, config enums)
// before journaling so the WAL never holds a spec the executor cannot
// decode, and every ack is written to the fsync'd WAL before the 202
// leaves the process.
//
// Result bytes are served by a dedicated endpoint instead of being
// embedded in the status JSON deliberately: re-encoding a stored body
// inside another document (json.Marshal compacts/re-indents embedded
// RawMessage) would break the byte-identity guarantee that a job's
// result is exactly what the synchronous endpoint would have
// returned.

// JobSubmitRequest is the POST /v1/jobs body: a batch of analysis
// requests sharing a tenant and TTL. Each entry is exactly a
// /v1/analyze request body.
type JobSubmitRequest struct {
	// Tenant attributes the batch for fair queueing and quotas
	// (default "default").
	Tenant string `json:"tenant"`
	// TTLMs bounds each job's total lifetime — queued and running —
	// in milliseconds (0 = server default; capped at the server max).
	TTLMs int `json:"ttl_ms"`
	// Jobs is the batch (at least one entry).
	Jobs []AnalyzeRequest `json:"jobs"`
}

// JobSubmitResponse is the 202 body: one ack per submitted job, in
// submission order.
type JobSubmitResponse struct {
	Tenant string     `json:"tenant"`
	Jobs   []jobs.Ack `json:"jobs"`
}

// JobListResponse is the GET /v1/jobs body.
type JobListResponse struct {
	Jobs []jobs.JobView `json:"jobs"`
}

// handleJobs serves POST (submit) and GET (list) on /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusNotFound, "not-found", "job API disabled (start with a jobs directory)")
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List(r.URL.Query().Get("tenant"))})
	default:
		s.stats.badRequests.Add(1)
		w.Header().Set("Allow", "POST, GET")
		s.writeError(w, http.StatusMethodNotAllowed, "method", "POST or GET required")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.stats.drainRejects.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.cfg.DrainTimeout))
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req JobSubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "batch must contain at least one job")
		return
	}
	if req.Tenant == "" {
		req.Tenant = jobs.DefaultTenant
	}
	// Validate every entry before journaling anything: the batch is
	// accepted or rejected whole, and the WAL never holds a spec the
	// executor cannot decode.
	subs := make([]jobs.Submission, len(req.Jobs))
	for i := range req.Jobs {
		jr := &req.Jobs[i]
		cfg, err := jr.Config.ToIPCP()
		if err != nil {
			s.stats.badRequests.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad-request",
				"job "+strconv.Itoa(i)+": "+err.Error())
			return
		}
		if jr.Filename == "" {
			jr.Filename = "request.f"
		}
		spec, err := json.Marshal(jr)
		if err != nil {
			s.stats.badRequests.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad-request", "job "+strconv.Itoa(i)+": "+err.Error())
			return
		}
		subs[i] = jobs.Submission{
			Spec:        spec,
			Fingerprint: fingerprintJob(jr, cfg),
			TTL:         time.Duration(req.TTLMs) * time.Millisecond,
		}
	}
	acks, err := s.jobs.Submit(req.Tenant, subs)
	if err != nil {
		var qe *jobs.QuotaError
		switch {
		case errors.As(err, &qe):
			s.stats.shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(qe.RetryAfter))
			s.writeError(w, http.StatusTooManyRequests, "shed", qe.Error())
		case errors.Is(err, jobs.ErrDraining):
			s.stats.drainRejects.Add(1)
			w.Header().Set("Retry-After", retryAfter(s.cfg.DrainTimeout))
			s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		default:
			s.writeError(w, http.StatusServiceUnavailable, "internal", err.Error())
		}
		return
	}
	s.writeJSON(w, http.StatusAccepted, JobSubmitResponse{Tenant: req.Tenant, Jobs: acks})
}

// fingerprintJob derives the idempotency fingerprint for one job. The
// base is ipcp.Fingerprint over (filename, source, memo-relevant
// config); the want flags are folded in because they change the
// response bytes without changing the analysis.
func fingerprintJob(jr *AnalyzeRequest, cfg ipcp.Config) string {
	fp := ipcp.Fingerprint(jr.Filename, jr.Source, cfg)
	var want string
	if jr.Want.JumpFunctions {
		want += "+jf"
	}
	if jr.Want.Transformed {
		want += "+tx"
	}
	return fp + want
}

// handleJobByID routes /v1/jobs/{id} and /v1/jobs/{id}/result.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusNotFound, "not-found", "job API disabled (start with a jobs directory)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		s.writeError(w, http.StatusNotFound, "not-found", "missing job id")
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		v, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "not-found", "unknown job "+id)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
	case sub == "" && r.Method == http.MethodDelete:
		v, ok := s.jobs.Cancel(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "not-found", "unknown job "+id)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
	case sub == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, id)
	default:
		s.stats.badRequests.Add(1)
		w.Header().Set("Allow", "GET, DELETE")
		s.writeError(w, http.StatusMethodNotAllowed, "method", "GET or DELETE required")
	}
}

// handleJobResult replays a done job's stored bytes verbatim — the
// exactly-once-observable read path. Non-done terminal states get an
// attributed error; non-terminal jobs get 409 so pollers can
// distinguish "not yet" from "never".
func (s *Server) handleJobResult(w http.ResponseWriter, id string) {
	v, body, ok := s.jobs.Result(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not-found", "unknown job "+id)
		return
	}
	switch v.State {
	case jobs.StateDone:
		s.writeRaw(w, v.Code, body)
	case jobs.StatePoisoned:
		s.writeError(w, http.StatusServiceUnavailable, v.Class,
			"job poisoned after "+strconv.Itoa(v.Attempts)+" attempts: "+v.Error)
	case jobs.StateExpired:
		s.writeError(w, http.StatusGone, "expired", "job deadline passed before completion")
	case jobs.StateCanceled:
		s.writeError(w, http.StatusGone, "canceled", "job was canceled")
	default:
		s.writeError(w, http.StatusConflict, "pending", "job is "+string(v.State)+"; poll again later")
	}
}

// handleJobsWatch streams job state changes as NDJSON (one compact
// JobView per line) until every watched job is terminal or the client
// goes away. A line is emitted for each job's current state on
// connect, then once per transition.
func (s *Server) handleJobsWatch(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusNotFound, "not-found", "job API disabled (start with a jobs directory)")
		return
	}
	if r.Method != http.MethodGet {
		s.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "method", "GET required")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	tenant := r.URL.Query().Get("tenant")
	ch, stop := s.jobs.Subscribe()
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sent := make(map[string]jobs.State)
	for {
		views := s.jobs.List(tenant)
		allTerminal := len(views) > 0
		for _, v := range views {
			if sent[v.ID] != v.State {
				line, err := json.Marshal(v)
				if err != nil {
					continue
				}
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				sent[v.ID] = v.State
			}
			if !v.State.Terminal() {
				allTerminal = false
			}
		}
		fl.Flush()
		if allTerminal || len(views) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-time.After(500 * time.Millisecond):
			// Fallback poll so a missed coalesced signal cannot wedge
			// the stream.
		}
	}
}

// jobExecutor adapts the Server's analysis path to jobs.Executor. One
// attempt is exactly one synchronous-request execution at the
// attempt's rung of the degradation ladder: attempt 0 runs the
// requested config, attempt n runs degradeConfig applied n times —
// the same chain the synchronous retry ladder walks — so a job result
// is byte-identical to what a synchronous request (with the same
// retry count) would have returned. Job attempts do not consume the
// synchronous path's worker slots or settle its circuit breaker: the
// job subsystem has its own worker budget and its own failure
// containment (the retry ladder and poison quarantine).
type jobExecutor struct {
	s *Server
}

func (e jobExecutor) Execute(ctx context.Context, spec json.RawMessage, attempt int) jobs.ExecOutcome {
	s := e.s
	var req AnalyzeRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		// Unreachable for journaled specs (submit validates first);
		// terminal so a damaged spec cannot retry forever.
		return jobs.ExecOutcome{Code: http.StatusBadRequest,
			Body: renderJSON(ErrorResponse{Error: ErrorBody{Class: "bad-request", Message: "invalid job spec: " + err.Error()}})}
	}
	cfg, err := req.Config.ToIPCP()
	if err != nil {
		return jobs.ExecOutcome{Code: http.StatusBadRequest,
			Body: renderJSON(ErrorResponse{Error: ErrorBody{Class: "bad-request", Message: err.Error()}})}
	}
	cfg.Parallelism = s.cfg.AnalysisParallelism
	cfg.FailFast = true
	cfg.Cache = s.memo
	if req.Filename == "" {
		req.Filename = "request.f"
	}
	for i := 0; i < attempt; i++ {
		cfg = degradeConfig(cfg)
	}
	key := resultKey(req.Filename, req.Source, cfg, req.Want)
	if attempt == 0 && s.results != nil {
		if body, ok := s.results.get(key); ok {
			return jobs.ExecOutcome{Code: http.StatusOK, Body: body}
		}
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	res, err := ipcp.AnalyzeContext(actx, req.Filename, req.Source, cfg)
	if err != nil {
		class, retryable, userFault := classify(err)
		if userFault {
			// Program diagnostics are a verdict, not a failure: the job
			// is done, and the body is byte-identical to the
			// synchronous 422.
			return jobs.ExecOutcome{Code: http.StatusUnprocessableEntity,
				Body: renderJSON(ErrorResponse{Error: ErrorBody{Class: "input", Message: err.Error()}})}
		}
		s.recordFailureClass(err)
		if class == "exhausted:deadline" {
			// For a synchronous request the deadline is the whole
			// request's clock, so classify marks it non-retryable. Here
			// only this attempt's slice died; whether the job itself is
			// out of time is the manager's TTL decision.
			retryable = true
		}
		return jobs.ExecOutcome{Class: class, Err: err.Error(), Retryable: retryable}
	}
	body, degraded := s.renderResult(&req, cfg, res, attempt)
	s.observeLatency(time.Since(start))
	if attempt == 0 && !degraded && s.results != nil {
		s.results.put(key, body)
	}
	return jobs.ExecOutcome{Code: http.StatusOK, Body: body}
}

// JobsEnabled reports whether the durable job API is active.
func (s *Server) JobsEnabled() bool { return s.jobs != nil }

// JobStats snapshots the job subsystem's counters (nil when disabled).
func (s *Server) JobStats() *jobs.Stats {
	if s.jobs == nil {
		return nil
	}
	st := s.jobs.Stats()
	return &st
}
